file(REMOVE_RECURSE
  "CMakeFiles/gbcast_test.dir/gbcast_test.cpp.o"
  "CMakeFiles/gbcast_test.dir/gbcast_test.cpp.o.d"
  "gbcast_test"
  "gbcast_test.pdb"
  "gbcast_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gbcast_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
