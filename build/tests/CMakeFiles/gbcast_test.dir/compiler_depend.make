# Empty compiler generated dependencies file for gbcast_test.
# This may be replaced when dependencies are built.
