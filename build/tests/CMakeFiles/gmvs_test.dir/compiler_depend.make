# Empty compiler generated dependencies file for gmvs_test.
# This may be replaced when dependencies are built.
