file(REMOVE_RECURSE
  "CMakeFiles/gmvs_test.dir/gmvs_test.cpp.o"
  "CMakeFiles/gmvs_test.dir/gmvs_test.cpp.o.d"
  "gmvs_test"
  "gmvs_test.pdb"
  "gmvs_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gmvs_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
