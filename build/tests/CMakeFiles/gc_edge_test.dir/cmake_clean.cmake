file(REMOVE_RECURSE
  "CMakeFiles/gc_edge_test.dir/gc_edge_test.cpp.o"
  "CMakeFiles/gc_edge_test.dir/gc_edge_test.cpp.o.d"
  "gc_edge_test"
  "gc_edge_test.pdb"
  "gc_edge_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gc_edge_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
