# Empty compiler generated dependencies file for gb_liveness_test.
# This may be replaced when dependencies are built.
