file(REMOVE_RECURSE
  "CMakeFiles/gb_liveness_test.dir/gb_liveness_test.cpp.o"
  "CMakeFiles/gb_liveness_test.dir/gb_liveness_test.cpp.o.d"
  "gb_liveness_test"
  "gb_liveness_test.pdb"
  "gb_liveness_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gb_liveness_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
