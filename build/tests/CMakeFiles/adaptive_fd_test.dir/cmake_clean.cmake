file(REMOVE_RECURSE
  "CMakeFiles/adaptive_fd_test.dir/adaptive_fd_test.cpp.o"
  "CMakeFiles/adaptive_fd_test.dir/adaptive_fd_test.cpp.o.d"
  "adaptive_fd_test"
  "adaptive_fd_test.pdb"
  "adaptive_fd_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adaptive_fd_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
