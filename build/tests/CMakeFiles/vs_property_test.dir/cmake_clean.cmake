file(REMOVE_RECURSE
  "CMakeFiles/vs_property_test.dir/vs_property_test.cpp.o"
  "CMakeFiles/vs_property_test.dir/vs_property_test.cpp.o.d"
  "vs_property_test"
  "vs_property_test.pdb"
  "vs_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vs_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
