# Empty compiler generated dependencies file for vs_property_test.
# This may be replaced when dependencies are built.
