
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/partition_test.cpp" "tests/CMakeFiles/partition_test.dir/partition_test.cpp.o" "gcc" "tests/CMakeFiles/partition_test.dir/partition_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/traditional/CMakeFiles/nggcs_traditional.dir/DependInfo.cmake"
  "/root/repo/build/src/replication/CMakeFiles/nggcs_replication.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/nggcs_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/kernel/CMakeFiles/nggcs_kernel.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/nggcs_core.dir/DependInfo.cmake"
  "/root/repo/build/src/broadcast/CMakeFiles/nggcs_broadcast.dir/DependInfo.cmake"
  "/root/repo/build/src/consensus/CMakeFiles/nggcs_consensus.dir/DependInfo.cmake"
  "/root/repo/build/src/fd/CMakeFiles/nggcs_fd.dir/DependInfo.cmake"
  "/root/repo/build/src/channel/CMakeFiles/nggcs_channel.dir/DependInfo.cmake"
  "/root/repo/build/src/transport/CMakeFiles/nggcs_transport.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/nggcs_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/nggcs_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
