# Empty compiler generated dependencies file for bench_e6_complexity.
# This may be replaced when dependencies are built.
