file(REMOVE_RECURSE
  "../bench/bench_e6_complexity"
  "../bench/bench_e6_complexity.pdb"
  "CMakeFiles/bench_e6_complexity.dir/bench_e6_complexity.cpp.o"
  "CMakeFiles/bench_e6_complexity.dir/bench_e6_complexity.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e6_complexity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
