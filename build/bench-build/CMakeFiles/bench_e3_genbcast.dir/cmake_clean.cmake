file(REMOVE_RECURSE
  "../bench/bench_e3_genbcast"
  "../bench/bench_e3_genbcast.pdb"
  "CMakeFiles/bench_e3_genbcast.dir/bench_e3_genbcast.cpp.o"
  "CMakeFiles/bench_e3_genbcast.dir/bench_e3_genbcast.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e3_genbcast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
