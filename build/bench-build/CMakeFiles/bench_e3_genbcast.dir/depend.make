# Empty dependencies file for bench_e3_genbcast.
# This may be replaced when dependencies are built.
