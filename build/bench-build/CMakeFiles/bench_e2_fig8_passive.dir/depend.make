# Empty dependencies file for bench_e2_fig8_passive.
# This may be replaced when dependencies are built.
