file(REMOVE_RECURSE
  "../bench/bench_e2_fig8_passive"
  "../bench/bench_e2_fig8_passive.pdb"
  "CMakeFiles/bench_e2_fig8_passive.dir/bench_e2_fig8_passive.cpp.o"
  "CMakeFiles/bench_e2_fig8_passive.dir/bench_e2_fig8_passive.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e2_fig8_passive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
