file(REMOVE_RECURSE
  "../bench/bench_e4_responsiveness"
  "../bench/bench_e4_responsiveness.pdb"
  "CMakeFiles/bench_e4_responsiveness.dir/bench_e4_responsiveness.cpp.o"
  "CMakeFiles/bench_e4_responsiveness.dir/bench_e4_responsiveness.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e4_responsiveness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
