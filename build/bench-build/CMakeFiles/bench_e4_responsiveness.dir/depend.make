# Empty dependencies file for bench_e4_responsiveness.
# This may be replaced when dependencies are built.
