file(REMOVE_RECURSE
  "../bench/bench_e1_architectures"
  "../bench/bench_e1_architectures.pdb"
  "CMakeFiles/bench_e1_architectures.dir/bench_e1_architectures.cpp.o"
  "CMakeFiles/bench_e1_architectures.dir/bench_e1_architectures.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e1_architectures.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
