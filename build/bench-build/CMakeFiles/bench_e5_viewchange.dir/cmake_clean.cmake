file(REMOVE_RECURSE
  "../bench/bench_e5_viewchange"
  "../bench/bench_e5_viewchange.pdb"
  "CMakeFiles/bench_e5_viewchange.dir/bench_e5_viewchange.cpp.o"
  "CMakeFiles/bench_e5_viewchange.dir/bench_e5_viewchange.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e5_viewchange.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
