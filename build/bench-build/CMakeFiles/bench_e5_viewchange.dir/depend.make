# Empty dependencies file for bench_e5_viewchange.
# This may be replaced when dependencies are built.
