file(REMOVE_RECURSE
  "CMakeFiles/lock_service.dir/lock_service.cpp.o"
  "CMakeFiles/lock_service.dir/lock_service.cpp.o.d"
  "lock_service"
  "lock_service.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lock_service.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
