# Empty dependencies file for ensemble_stack.
# This may be replaced when dependencies are built.
