file(REMOVE_RECURSE
  "CMakeFiles/ensemble_stack.dir/ensemble_stack.cpp.o"
  "CMakeFiles/ensemble_stack.dir/ensemble_stack.cpp.o.d"
  "ensemble_stack"
  "ensemble_stack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ensemble_stack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
