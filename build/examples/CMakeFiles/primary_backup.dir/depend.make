# Empty dependencies file for primary_backup.
# This may be replaced when dependencies are built.
