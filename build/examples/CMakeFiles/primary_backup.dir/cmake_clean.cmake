file(REMOVE_RECURSE
  "CMakeFiles/primary_backup.dir/primary_backup.cpp.o"
  "CMakeFiles/primary_backup.dir/primary_backup.cpp.o.d"
  "primary_backup"
  "primary_backup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/primary_backup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
