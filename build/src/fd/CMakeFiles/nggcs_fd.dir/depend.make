# Empty dependencies file for nggcs_fd.
# This may be replaced when dependencies are built.
