file(REMOVE_RECURSE
  "libnggcs_fd.a"
)
