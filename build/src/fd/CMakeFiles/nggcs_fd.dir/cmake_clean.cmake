file(REMOVE_RECURSE
  "CMakeFiles/nggcs_fd.dir/failure_detector.cpp.o"
  "CMakeFiles/nggcs_fd.dir/failure_detector.cpp.o.d"
  "libnggcs_fd.a"
  "libnggcs_fd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nggcs_fd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
