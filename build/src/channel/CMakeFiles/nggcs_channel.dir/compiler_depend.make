# Empty compiler generated dependencies file for nggcs_channel.
# This may be replaced when dependencies are built.
