file(REMOVE_RECURSE
  "libnggcs_channel.a"
)
