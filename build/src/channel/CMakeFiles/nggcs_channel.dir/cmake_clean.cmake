file(REMOVE_RECURSE
  "CMakeFiles/nggcs_channel.dir/reliable_channel.cpp.o"
  "CMakeFiles/nggcs_channel.dir/reliable_channel.cpp.o.d"
  "libnggcs_channel.a"
  "libnggcs_channel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nggcs_channel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
