file(REMOVE_RECURSE
  "CMakeFiles/nggcs_kernel.dir/stack.cpp.o"
  "CMakeFiles/nggcs_kernel.dir/stack.cpp.o.d"
  "libnggcs_kernel.a"
  "libnggcs_kernel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nggcs_kernel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
