file(REMOVE_RECURSE
  "libnggcs_kernel.a"
)
