# Empty compiler generated dependencies file for nggcs_kernel.
# This may be replaced when dependencies are built.
