# Empty compiler generated dependencies file for nggcs_traditional.
# This may be replaced when dependencies are built.
