file(REMOVE_RECURSE
  "libnggcs_traditional.a"
)
