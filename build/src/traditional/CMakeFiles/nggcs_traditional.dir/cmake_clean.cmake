file(REMOVE_RECURSE
  "CMakeFiles/nggcs_traditional.dir/gmvs_stack.cpp.o"
  "CMakeFiles/nggcs_traditional.dir/gmvs_stack.cpp.o.d"
  "CMakeFiles/nggcs_traditional.dir/sequencer.cpp.o"
  "CMakeFiles/nggcs_traditional.dir/sequencer.cpp.o.d"
  "CMakeFiles/nggcs_traditional.dir/token_ring.cpp.o"
  "CMakeFiles/nggcs_traditional.dir/token_ring.cpp.o.d"
  "libnggcs_traditional.a"
  "libnggcs_traditional.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nggcs_traditional.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
