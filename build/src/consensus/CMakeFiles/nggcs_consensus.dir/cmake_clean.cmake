file(REMOVE_RECURSE
  "CMakeFiles/nggcs_consensus.dir/consensus.cpp.o"
  "CMakeFiles/nggcs_consensus.dir/consensus.cpp.o.d"
  "CMakeFiles/nggcs_consensus.dir/paxos.cpp.o"
  "CMakeFiles/nggcs_consensus.dir/paxos.cpp.o.d"
  "libnggcs_consensus.a"
  "libnggcs_consensus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nggcs_consensus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
