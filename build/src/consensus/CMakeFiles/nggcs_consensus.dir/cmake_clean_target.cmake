file(REMOVE_RECURSE
  "libnggcs_consensus.a"
)
