# Empty compiler generated dependencies file for nggcs_consensus.
# This may be replaced when dependencies are built.
