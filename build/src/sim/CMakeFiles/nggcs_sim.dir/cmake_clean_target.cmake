file(REMOVE_RECURSE
  "libnggcs_sim.a"
)
