# Empty dependencies file for nggcs_sim.
# This may be replaced when dependencies are built.
