file(REMOVE_RECURSE
  "CMakeFiles/nggcs_sim.dir/engine.cpp.o"
  "CMakeFiles/nggcs_sim.dir/engine.cpp.o.d"
  "CMakeFiles/nggcs_sim.dir/network.cpp.o"
  "CMakeFiles/nggcs_sim.dir/network.cpp.o.d"
  "libnggcs_sim.a"
  "libnggcs_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nggcs_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
