# Empty compiler generated dependencies file for nggcs_util.
# This may be replaced when dependencies are built.
