file(REMOVE_RECURSE
  "libnggcs_util.a"
)
