file(REMOVE_RECURSE
  "CMakeFiles/nggcs_util.dir/codec.cpp.o"
  "CMakeFiles/nggcs_util.dir/codec.cpp.o.d"
  "CMakeFiles/nggcs_util.dir/log.cpp.o"
  "CMakeFiles/nggcs_util.dir/log.cpp.o.d"
  "CMakeFiles/nggcs_util.dir/metrics.cpp.o"
  "CMakeFiles/nggcs_util.dir/metrics.cpp.o.d"
  "CMakeFiles/nggcs_util.dir/types.cpp.o"
  "CMakeFiles/nggcs_util.dir/types.cpp.o.d"
  "libnggcs_util.a"
  "libnggcs_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nggcs_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
