file(REMOVE_RECURSE
  "CMakeFiles/nggcs_runtime.dir/realtime_runner.cpp.o"
  "CMakeFiles/nggcs_runtime.dir/realtime_runner.cpp.o.d"
  "CMakeFiles/nggcs_runtime.dir/udp_transport.cpp.o"
  "CMakeFiles/nggcs_runtime.dir/udp_transport.cpp.o.d"
  "libnggcs_runtime.a"
  "libnggcs_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nggcs_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
