# Empty dependencies file for nggcs_runtime.
# This may be replaced when dependencies are built.
