file(REMOVE_RECURSE
  "libnggcs_runtime.a"
)
