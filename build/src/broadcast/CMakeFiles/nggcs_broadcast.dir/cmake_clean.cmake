file(REMOVE_RECURSE
  "CMakeFiles/nggcs_broadcast.dir/atomic_broadcast.cpp.o"
  "CMakeFiles/nggcs_broadcast.dir/atomic_broadcast.cpp.o.d"
  "CMakeFiles/nggcs_broadcast.dir/causal_broadcast.cpp.o"
  "CMakeFiles/nggcs_broadcast.dir/causal_broadcast.cpp.o.d"
  "CMakeFiles/nggcs_broadcast.dir/reliable_broadcast.cpp.o"
  "CMakeFiles/nggcs_broadcast.dir/reliable_broadcast.cpp.o.d"
  "libnggcs_broadcast.a"
  "libnggcs_broadcast.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nggcs_broadcast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
