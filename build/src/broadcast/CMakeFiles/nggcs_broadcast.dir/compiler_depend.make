# Empty compiler generated dependencies file for nggcs_broadcast.
# This may be replaced when dependencies are built.
