file(REMOVE_RECURSE
  "libnggcs_broadcast.a"
)
