file(REMOVE_RECURSE
  "libnggcs_core.a"
)
