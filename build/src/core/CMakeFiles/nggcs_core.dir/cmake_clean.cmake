file(REMOVE_RECURSE
  "CMakeFiles/nggcs_core.dir/generic_broadcast.cpp.o"
  "CMakeFiles/nggcs_core.dir/generic_broadcast.cpp.o.d"
  "CMakeFiles/nggcs_core.dir/membership.cpp.o"
  "CMakeFiles/nggcs_core.dir/membership.cpp.o.d"
  "CMakeFiles/nggcs_core.dir/monitoring.cpp.o"
  "CMakeFiles/nggcs_core.dir/monitoring.cpp.o.d"
  "CMakeFiles/nggcs_core.dir/stack.cpp.o"
  "CMakeFiles/nggcs_core.dir/stack.cpp.o.d"
  "libnggcs_core.a"
  "libnggcs_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nggcs_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
