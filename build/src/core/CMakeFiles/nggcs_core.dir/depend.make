# Empty dependencies file for nggcs_core.
# This may be replaced when dependencies are built.
