file(REMOVE_RECURSE
  "CMakeFiles/nggcs_replication.dir/active.cpp.o"
  "CMakeFiles/nggcs_replication.dir/active.cpp.o.d"
  "CMakeFiles/nggcs_replication.dir/client.cpp.o"
  "CMakeFiles/nggcs_replication.dir/client.cpp.o.d"
  "CMakeFiles/nggcs_replication.dir/lock_service.cpp.o"
  "CMakeFiles/nggcs_replication.dir/lock_service.cpp.o.d"
  "CMakeFiles/nggcs_replication.dir/passive.cpp.o"
  "CMakeFiles/nggcs_replication.dir/passive.cpp.o.d"
  "libnggcs_replication.a"
  "libnggcs_replication.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nggcs_replication.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
