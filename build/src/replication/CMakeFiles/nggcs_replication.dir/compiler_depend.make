# Empty compiler generated dependencies file for nggcs_replication.
# This may be replaced when dependencies are built.
