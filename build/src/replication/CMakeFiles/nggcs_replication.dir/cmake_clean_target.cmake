file(REMOVE_RECURSE
  "libnggcs_replication.a"
)
