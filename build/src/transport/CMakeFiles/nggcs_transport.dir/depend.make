# Empty dependencies file for nggcs_transport.
# This may be replaced when dependencies are built.
