file(REMOVE_RECURSE
  "libnggcs_transport.a"
)
