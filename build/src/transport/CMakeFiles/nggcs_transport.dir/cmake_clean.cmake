file(REMOVE_RECURSE
  "CMakeFiles/nggcs_transport.dir/sim_transport.cpp.o"
  "CMakeFiles/nggcs_transport.dir/sim_transport.cpp.o.d"
  "libnggcs_transport.a"
  "libnggcs_transport.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nggcs_transport.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
