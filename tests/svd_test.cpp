/// Same-view-delivery property tests (paper §4.4): in the new
/// architecture, every message is delivered in the SAME view at every
/// process (a view change is a totally ordered message, so all deliveries
/// interleave with it identically). The traditional stack guarantees the
/// stronger-but-blocking SENDING view delivery: a message is delivered in
/// the view it was sent in.
#include <gtest/gtest.h>

#include <map>

#include "core/stack.hpp"
#include "traditional/gmvs_stack.hpp"
#include "tests/test_util.hpp"

namespace gcs {
namespace {

using test::bytes_of;

TEST(SameViewDelivery, NewArchitectureDeliversEachMessageInOneView) {
  World::Config cfg;
  cfg.n = 5;
  cfg.seed = 3;
  World w(cfg);
  // Record the view id current at each delivery, per process.
  std::vector<std::map<MsgId, std::uint64_t>> delivery_view(5);
  for (ProcessId p = 0; p < 5; ++p) {
    w.stack(p).on_adeliver([&, p](const MsgId& id, const Bytes&) {
      delivery_view[static_cast<std::size_t>(p)][id] = w.stack(p).view().id;
    });
  }
  w.found_group({0, 1, 2, 3});
  // Traffic across two view changes (a join and a leave).
  int sent = 0;
  auto burst = [&](int k) {
    for (int i = 0; i < k; ++i) {
      w.stack(static_cast<ProcessId>(sent % 3)).abcast(bytes_of(std::to_string(sent)));
      ++sent;
      w.run_for(msec(1));
    }
  };
  burst(5);
  w.stack(4).join(0);
  burst(5);
  ASSERT_TRUE(test::run_until(w.engine(), sec(10),
                              [&] { return w.stack(4).membership().is_member(); }));
  w.stack(3).membership().leave();
  burst(5);
  ASSERT_TRUE(test::run_until(w.engine(), sec(30), [&] {
    return delivery_view[0].size() >= static_cast<std::size_t>(sent) &&
           delivery_view[1].size() >= static_cast<std::size_t>(sent);
  }));
  w.run_for(msec(500));
  // Same view delivery: any two processes that delivered m did so in the
  // same view.
  for (const auto& [id, view_at_0] : delivery_view[0]) {
    for (ProcessId p = 1; p < 5; ++p) {
      const auto& mine = delivery_view[static_cast<std::size_t>(p)];
      auto it = mine.find(id);
      if (it == mine.end()) continue;
      EXPECT_EQ(it->second, view_at_0)
          << "message " << to_string(id) << " delivered in view " << it->second
          << " at p" << p << " but view " << view_at_0 << " at p0";
    }
  }
}

TEST(SendingViewDelivery, TraditionalStackDeliversInTheSendingView) {
  // The stronger property the traditional stack pays blocking for: a
  // message sent in view v is delivered in view v (senders are blocked
  // during transitions, so no message straddles them).
  sim::Engine engine;
  sim::Network network(engine, 5, sim::LinkModel{}, 9);
  traditional::GmVsStack::Config cfg;
  std::vector<std::unique_ptr<traditional::GmVsStack>> stacks;
  for (ProcessId p = 0; p < 5; ++p) {
    stacks.push_back(std::make_unique<traditional::GmVsStack>(engine, network, p, 9, cfg));
  }
  // Track (send view, delivery view) of every message at p1.
  std::map<MsgId, std::uint64_t> send_view;
  std::map<MsgId, std::uint64_t> deliver_view;
  stacks[1]->on_adeliver([&](const MsgId& id, const Bytes&) {
    deliver_view[id] = stacks[1]->view().id;
  });
  for (ProcessId p = 0; p < 4; ++p) {
    stacks[static_cast<std::size_t>(p)]->init_view({0, 1, 2, 3});
    stacks[static_cast<std::size_t>(p)]->start();
  }
  auto send = [&](ProcessId p, int i) {
    auto& s = *stacks[static_cast<std::size_t>(p)];
    const MsgId id = s.abcast(bytes_of(std::to_string(i)));
    // The message is logically sent in the view where it ends up being
    // EMITTED: if the sender is blocked, that is the next view. Record the
    // current view; blocked sends get fixed up below by checking >=.
    send_view[id] = s.view().id;
  };
  for (int i = 0; i < 5; ++i) {
    send(static_cast<ProcessId>(1 + i % 3), i);
    engine.run_until(engine.now() + msec(1));
  }
  stacks[4]->request_join(1);
  stacks[4]->start();
  for (int i = 5; i < 10; ++i) {
    send(static_cast<ProcessId>(1 + i % 3), i);
    engine.run_until(engine.now() + msec(1));
  }
  ASSERT_TRUE(test::run_until(engine, sec(20), [&] {
    return stacks[4]->is_member() && deliver_view.size() >= 10;
  }));
  for (const auto& [id, dv] : deliver_view) {
    auto it = send_view.find(id);
    ASSERT_NE(it, send_view.end());
    // Sending view delivery: delivered in the view of emission. Messages
    // queued while blocked are emitted (and recorded) in the pre-change
    // view but sent in the next one, hence the <= 1 slack.
    EXPECT_GE(dv, it->second);
    EXPECT_LE(dv - it->second, 1u) << to_string(id);
  }
}

}  // namespace
}  // namespace gcs
