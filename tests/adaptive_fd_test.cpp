/// Adaptive (Chen-style) failure-detector timeouts: the timeout tracks the
/// observed heartbeat inter-arrival distribution instead of being guessed.
#include <gtest/gtest.h>

#include <memory>

#include "fd/failure_detector.hpp"
#include "sim/context.hpp"
#include "sim/network.hpp"
#include "transport/sim_transport.hpp"
#include "tests/test_util.hpp"

namespace gcs {
namespace {

struct AdaptiveWorld {
  sim::Engine engine;
  sim::Network network;
  sim::Context c0{0, engine, Rng(1), Logger(), std::make_shared<Metrics>()};
  sim::Context c1{1, engine, Rng(2), Logger(), std::make_shared<Metrics>()};
  SimTransport t0{c0, network};
  SimTransport t1{c1, network};
  FailureDetector fd0{c0, t0, FailureDetector::Config{msec(10)}};
  FailureDetector fd1{c1, t1, FailureDetector::Config{msec(10)}};

  explicit AdaptiveWorld(sim::LinkModel link, std::uint64_t seed = 5)
      : network(engine, 2, link, seed) {}
};

TEST(AdaptiveFd, TimeoutTracksObservedIntervals) {
  AdaptiveWorld w(sim::LinkModel{usec(300), usec(200), 0.0});
  auto cls = w.fd0.add_class(sec(10));  // fixed fallback, absurdly large
  w.fd0.enable_adaptive(cls, 3.0, msec(5), msec(8), sec(1));
  w.fd0.monitor(cls, 1);
  w.fd0.start();
  w.fd1.start();
  w.engine.run_until(sec(2));
  const Duration t = w.fd0.effective_timeout(cls, 1);
  // Heartbeats every 10ms with small jitter: the adapted timeout should be
  // a bit above 10ms + slack, far below the 10s fixed value.
  EXPECT_GE(t, msec(10));
  EXPECT_LE(t, msec(40));
  EXPECT_FALSE(w.fd0.suspects(cls, 1));
}

TEST(AdaptiveFd, NoFalseSuspicionsWhereFixedTightTimeoutMisfires) {
  // A jittery, lossy link. A fixed 20ms timeout misfires (cf. E8a); the
  // adaptive one widens itself and stays quiet.
  const sim::LinkModel link{usec(300), usec(400), 0.10};
  AdaptiveWorld fixed(link, 7);
  auto fixed_cls = fixed.fd0.add_class(msec(20));
  fixed.fd0.monitor(fixed_cls, 1);
  fixed.fd0.start();
  fixed.fd1.start();
  fixed.engine.run_until(sec(20));
  const auto fixed_false = fixed.fd0.false_suspicions();

  AdaptiveWorld adaptive(link, 7);
  auto ad_cls = adaptive.fd0.add_class(msec(20));
  adaptive.fd0.enable_adaptive(ad_cls, 6.0, msec(15), msec(10), msec(500));
  adaptive.fd0.monitor(ad_cls, 1);
  adaptive.fd0.start();
  adaptive.fd1.start();
  adaptive.engine.run_until(sec(20));
  const auto adaptive_false = adaptive.fd0.false_suspicions();

  EXPECT_GT(fixed_false, 0) << "the fixed baseline was supposed to misfire";
  // Loss bursts can still beat any finite margin; the adaptive detector
  // must misfire far less than the fixed 20ms guess on the same link.
  EXPECT_LT(adaptive_false * 4, fixed_false)
      << "adaptive=" << adaptive_false << " fixed=" << fixed_false;
}

TEST(AdaptiveFd, StillDetectsRealCrashQuickly) {
  AdaptiveWorld w(sim::LinkModel{usec(300), usec(200), 0.05}, 9);
  auto cls = w.fd0.add_class(sec(10));
  w.fd0.enable_adaptive(cls, 3.0, msec(5), msec(8), msec(500));
  w.fd0.monitor(cls, 1);
  w.fd0.start();
  w.fd1.start();
  w.engine.run_until(sec(5));  // learn the link
  const TimePoint crash_at = w.engine.now();
  w.network.crash(1);
  ASSERT_TRUE(test::run_until(w.engine, sec(5), [&] { return w.fd0.suspects(cls, 1); }));
  // Detection bounded by the adapted timeout (~tens of ms), not the 10s
  // fixed fallback.
  EXPECT_LT(w.engine.now() - crash_at, msec(100));
}

TEST(AdaptiveFd, UnprimedPeerUsesCeiling) {
  AdaptiveWorld w(sim::LinkModel{});
  auto cls = w.fd0.add_class(msec(77));
  w.fd0.enable_adaptive(cls, 2.0, msec(1), msec(5), msec(300));
  // No heartbeats seen from 1 yet: ceiling applies (be conservative first).
  EXPECT_EQ(w.fd0.effective_timeout(cls, 1), msec(300));
  // Non-adaptive class keeps its fixed timeout.
  auto fixed_cls = w.fd0.add_class(msec(42));
  EXPECT_EQ(w.fd0.effective_timeout(fixed_cls, 1), msec(42));
}

}  // namespace
}  // namespace gcs
