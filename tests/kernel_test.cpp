#include <gtest/gtest.h>

#include <memory>

#include "kernel/layers.hpp"
#include "tests/test_util.hpp"

namespace gcs::kernel {
namespace {

using test::bytes_of;

/// A stack with a trace layer at every position to observe routing.
struct TracedStack {
  ProtocolStack stack;
  TraceLayer* bottom_trace;
  TraceLayer* top_trace;

  TracedStack() {
    auto b = std::make_unique<TraceLayer>("trace-bottom");
    bottom_trace = b.get();
    stack.push_layer(std::move(b));
    auto t = std::make_unique<TraceLayer>("trace-top");
    top_trace = t.get();
    stack.push_layer(std::move(t));
  }
};

TEST(Kernel, DownEventVisitsTopToBottomThenHook) {
  TracedStack s;
  std::vector<std::string> order;
  s.stack.set_bottom_hook([&](Event&) { order.push_back("wire"); });
  s.stack.inject(Event::send_to(1, bytes_of("x")));
  ASSERT_EQ(s.top_trace->entries().size(), 1u);
  ASSERT_EQ(s.bottom_trace->entries().size(), 1u);
  ASSERT_EQ(order, (std::vector<std::string>{"wire"}));
}

TEST(Kernel, UpEventVisitsBottomToTopThenHook) {
  TracedStack s;
  bool topped = false;
  s.stack.set_top_hook([&](Event& e) {
    topped = true;
    EXPECT_EQ(e.peer, 3);
  });
  s.stack.inject(Event::deliver_from(3, bytes_of("y")));
  EXPECT_TRUE(topped);
  EXPECT_EQ(s.bottom_trace->entries().size(), 1u);
  EXPECT_EQ(s.top_trace->entries().size(), 1u);
}

TEST(Kernel, SubscriptionFiltering) {
  // A layer that subscribes only to kProbeTick must not see sends.
  struct PickyLayer final : Layer {
    int seen = 0;
    std::string name() const override { return "picky"; }
    std::set<EventKind> subscriptions() const override { return {kProbeTick}; }
    Verdict handle(Event&, ProtocolStack&) override {
      ++seen;
      return Verdict::kForward;
    }
  };
  ProtocolStack stack;
  auto picky = std::make_unique<PickyLayer>();
  auto* p = picky.get();
  stack.push_layer(std::move(picky));
  stack.inject(Event::send_to(0, bytes_of("ignored")));
  EXPECT_EQ(p->seen, 0);
  Event tick;
  tick.kind = kProbeTick;
  tick.direction = Direction::kDown;
  stack.inject(std::move(tick));
  EXPECT_EQ(p->seen, 1);
}

TEST(Kernel, ConsumeStopsRouting) {
  struct Eater final : Layer {
    std::string name() const override { return "eater"; }
    std::set<EventKind> subscriptions() const override { return {kSendEvent}; }
    Verdict handle(Event&, ProtocolStack&) override { return Verdict::kConsume; }
  };
  ProtocolStack stack;
  auto bottom = std::make_unique<TraceLayer>("below");
  auto* below = bottom.get();
  stack.push_layer(std::move(bottom));
  stack.push_layer(std::make_unique<Eater>());
  bool wired = false;
  stack.set_bottom_hook([&](Event&) { wired = true; });
  stack.inject(Event::send_to(0, bytes_of("z")));  // enters at top: eater first
  EXPECT_FALSE(wired);
  EXPECT_TRUE(below->entries().empty());
}

TEST(Kernel, BounceAtBottomTravelsBackUp) {
  // The paper's §2.2 stability pattern: a down event bounces at the bottom
  // and is seen travelling UP by every layer above.
  ProtocolStack stack;
  auto trace = std::make_unique<TraceLayer>("t");
  auto* t = trace.get();
  stack.push_layer(std::move(trace));
  stack.set_bottom_hook([](Event& e) {
    if (e.kind == kStabilityEvent) e.direction = Direction::kUp;  // bounce
  });
  Event note;
  note.kind = kStabilityEvent;
  note.direction = Direction::kDown;
  stack.inject(std::move(note));
  // The trace saw it twice: once going down, once coming back up.
  ASSERT_EQ(t->entries().size(), 2u);
  EXPECT_EQ(t->entries()[0].direction, Direction::kDown);
  EXPECT_EQ(t->entries()[1].direction, Direction::kUp);
}

TEST(Kernel, EmittedEventsRunAfterCurrentOne) {
  // Run-to-completion: a handler emitting a new event never preempts the
  // event being routed.
  struct Emitter final : Layer {
    std::size_t self = 0;
    std::string name() const override { return "emitter"; }
    std::set<EventKind> subscriptions() const override { return {kSendEvent}; }
    Verdict handle(Event& e, ProtocolStack& s) override {
      if (e.attrs.count("child")) return Verdict::kForward;
      Event child = Event::send_to(e.peer, e.payload);
      child.attrs["child"] = 1;
      s.emit(std::move(child), self);
      return Verdict::kForward;
    }
  };
  ProtocolStack stack;
  std::vector<std::int64_t> arrivals;
  auto em = std::make_unique<Emitter>();
  em->self = 0;
  stack.push_layer(std::move(em));
  stack.set_bottom_hook([&](Event& e) {
    arrivals.push_back(e.attrs.count("child") ? e.attrs.at("child") : 0);
  });
  stack.inject(Event::send_to(2, bytes_of("m")));
  // Parent reached the wire first, then the child.
  ASSERT_EQ(arrivals, (std::vector<std::int64_t>{0, 1}));
}

TEST(Kernel, FifoLayerReordersUpTraffic) {
  ProtocolStack stack;
  auto fifo = std::make_unique<FifoLayer>();
  auto* f = fifo.get();
  f->set_self_index(0);
  stack.push_layer(std::move(fifo));
  std::vector<std::int64_t> delivered;
  stack.set_top_hook([&](Event& e) { delivered.push_back(e.attrs.at("fifo.seq")); });
  // Up-traffic arrives out of order: 1, 0, 2.
  for (std::int64_t seq : {1, 0, 2}) {
    Event e = Event::deliver_from(5, bytes_of("p"));
    e.attrs["fifo.seq"] = seq;
    stack.inject(std::move(e));
  }
  EXPECT_EQ(delivered, (std::vector<std::int64_t>{0, 1, 2}));
  EXPECT_EQ(f->held_back(), 0u);
}

TEST(Kernel, FifoLayerStampsDownTraffic) {
  ProtocolStack stack;
  auto fifo = std::make_unique<FifoLayer>();
  fifo->set_self_index(0);
  stack.push_layer(std::move(fifo));
  std::vector<std::int64_t> stamped;
  stack.set_bottom_hook([&](Event& e) { stamped.push_back(e.attrs.at("fifo.seq")); });
  for (int i = 0; i < 3; ++i) stack.inject(Event::send_to(1, bytes_of("m")));
  EXPECT_EQ(stamped, (std::vector<std::int64_t>{0, 1, 2}));
}

TEST(Kernel, StableLayerNotificationPrunesBufferViaBounce) {
  // Rebuild the Fig 5 interaction in miniature:
  //   [0] buffer   (keeps sent messages for retransmission)
  //   [1] stable   (detects stability, emits the bounced notification)
  ProtocolStack stack;
  auto buffer = std::make_unique<BufferLayer>();
  auto* buf = buffer.get();
  stack.push_layer(std::move(buffer));
  auto stable = std::make_unique<StableLayer>();
  stable->set_self_index(1);
  stack.push_layer(std::move(stable));
  stack.set_bottom_hook([](Event& e) {
    if (e.kind == kStabilityEvent) e.direction = Direction::kUp;  // bounce
  });
  for (int i = 0; i < 4; ++i) stack.inject(Event::send_to(1, bytes_of("m")));
  EXPECT_EQ(buf->buffered(), 4u);
  // Probe: stable emits the notification down; it passes the buffer going
  // down, bounces, and prunes on the way up.
  Event tick;
  tick.kind = kProbeTick;
  tick.direction = Direction::kDown;
  stack.inject(std::move(tick));
  EXPECT_TRUE(buf->saw_down_notification());
  EXPECT_TRUE(buf->saw_up_notification());
  EXPECT_EQ(buf->buffered(), 0u);
}

TEST(Kernel, DescribeListsLayersBottomUp) {
  ProtocolStack stack;
  stack.push_layer(std::make_unique<FifoLayer>());
  stack.push_layer(std::make_unique<BufferLayer>());
  stack.push_layer(std::make_unique<StableLayer>());
  EXPECT_EQ(stack.describe(),
            (std::vector<std::string>{"fifo", "buffer", "stable"}));
}

}  // namespace
}  // namespace gcs::kernel
