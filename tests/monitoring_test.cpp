#include <gtest/gtest.h>

#include "core/stack.hpp"
#include "tests/test_util.hpp"

namespace gcs {
namespace {

using test::bytes_of;

World::Config config_with(StackConfig stack, int n = 3, std::uint64_t seed = 1) {
  World::Config cfg;
  cfg.n = n;
  cfg.seed = seed;
  cfg.stack = std::move(stack);
  return cfg;
}

TEST(Monitoring, CrashedProcessExcludedAfterLongTimeout) {
  StackConfig sc;
  sc.monitoring.exclusion_timeout = msec(500);
  World w(config_with(sc));
  test::ScenarioOracle oracle(w, msec(20), 1);
  w.found_group_all();
  w.run_for(msec(100));
  const TimePoint crash_at = w.engine().now();
  w.crash(2);
  ASSERT_TRUE(test::run_until(w.engine(), sec(10),
                              [&] { return !w.stack(0).view().contains(2); }));
  // Exclusion took at least the long timeout (not the short consensus one).
  EXPECT_GE(w.engine().now() - crash_at, msec(500));
  w.run_for(sec(1));  // settle before the oracle's finalize-time checks
}

TEST(Monitoring, ShortSuspicionsDoNotExclude) {
  // Consensus-class (short) suspicions never remove anyone: inject one and
  // verify the membership is untouched — the decoupling of §3.1.3.
  StackConfig sc;
  sc.consensus_suspect_timeout = msec(30);
  sc.monitoring.exclusion_timeout = sec(30);
  World w(config_with(sc));
  test::ScenarioOracle oracle(w, msec(20), 1);
  w.found_group_all();
  w.run_for(msec(100));
  auto& fd = w.stack(0).fd();
  fd.inject_suspicion(w.stack(0).consensus_fd_class(), 1);
  w.run_for(sec(2));
  EXPECT_TRUE(w.stack(0).view().contains(1));
  EXPECT_EQ(w.stack(0).view().members.size(), 3u);
}

TEST(Monitoring, ThresholdPolicyNeedsMultipleSuspecters) {
  StackConfig sc;
  sc.monitoring.exclusion_timeout = sec(60);  // natural suspicion disabled
  sc.monitoring.suspicion_threshold = 2;
  World w(config_with(sc, 4));
  test::ScenarioOracle oracle(w, msec(20), 1);
  w.found_group_all();
  w.run_for(msec(100));
  // Crash 3 so injected suspicions are not revoked by heartbeats; the
  // natural (60 s) timeout stays out of the picture. Let its in-flight
  // heartbeats drain first, or one would revoke the injected suspicion.
  w.crash(3);
  w.run_for(msec(50));
  // One suspicion is not enough.
  w.stack(0).fd().inject_suspicion(w.stack(0).monitoring().fd_class(), 3);
  w.run_for(sec(1));
  EXPECT_TRUE(w.stack(0).view().contains(3));
  // A second voter crosses the threshold.
  w.stack(1).fd().inject_suspicion(w.stack(1).monitoring().fd_class(), 3);
  ASSERT_TRUE(test::run_until(w.engine(), sec(10),
                              [&] { return !w.stack(0).view().contains(3); }));
  w.run_for(sec(1));  // settle before the oracle's finalize-time checks
}

TEST(Monitoring, ThresholdPolicyExcludesRealCrash) {
  StackConfig sc;
  sc.monitoring.exclusion_timeout = msec(400);
  sc.monitoring.suspicion_threshold = 3;
  World w(config_with(sc, 4));
  test::ScenarioOracle oracle(w, msec(20), 1);
  w.found_group_all();
  w.run_for(msec(100));
  w.crash(3);
  // All three survivors eventually suspect; threshold 3 is reached.
  ASSERT_TRUE(test::run_until(w.engine(), sec(10),
                              [&] { return !w.stack(0).view().contains(3); }));
  EXPECT_EQ(w.stack(0).view().members, (std::vector<ProcessId>{0, 1, 2}));
  w.run_for(sec(1));  // settle before the oracle's finalize-time checks
}

TEST(Monitoring, FalseSuspicionRestoredBeforeThresholdIsHarmless) {
  StackConfig sc;
  sc.monitoring.exclusion_timeout = sec(60);
  sc.monitoring.suspicion_threshold = 2;
  World w(config_with(sc, 4));
  test::ScenarioOracle oracle(w, msec(20), 1);
  w.found_group_all();
  w.run_for(msec(100));
  w.stack(0).fd().inject_suspicion(w.stack(0).monitoring().fd_class(), 3);
  // Heartbeats restore the suspicion and retract the gossip vote.
  w.run_for(sec(1));
  w.stack(1).fd().inject_suspicion(w.stack(1).monitoring().fd_class(), 3);
  w.run_for(sec(1));
  // Votes never overlapped: no exclusion.
  EXPECT_TRUE(w.stack(0).view().contains(3));
}

TEST(Monitoring, OutputTriggeredSuspicionExcludesSilentReceiver) {
  StackConfig sc;
  sc.monitoring.exclusion_timeout = sec(60);  // FD path disabled in practice
  sc.monitoring.output_age_limit = msec(300);
  sc.monitoring.output_check_interval = msec(50);
  World w(config_with(sc));
  test::ScenarioOracle oracle(w, msec(20), 1);
  w.found_group_all();
  w.run_for(msec(100));
  // Crash 2, then have 0 send it a channel message that can never be acked.
  w.crash(2);
  w.stack(0).channel().send(2, Tag::kApp, bytes_of("stuck"));
  ASSERT_TRUE(test::run_until(w.engine(), sec(10),
                              [&] { return !w.stack(0).view().contains(2); }));
  // Exclusion released the buffer (membership calls channel.forget).
  EXPECT_EQ(w.stack(0).channel().unacked_count(2), 0u);
  w.run_for(sec(1));  // settle before the oracle's finalize-time checks
}

TEST(Monitoring, ExclusionRequestsAreIdempotent) {
  StackConfig sc;
  sc.monitoring.exclusion_timeout = msec(300);
  World w(config_with(sc, 4));
  test::ScenarioOracle oracle(w, msec(20), 1);
  w.found_group_all();
  w.run_for(msec(100));
  w.crash(3);
  ASSERT_TRUE(test::run_until(w.engine(), sec(10),
                              [&] { return !w.stack(0).view().contains(3); }));
  const auto views = w.stack(0).membership().views_installed();
  w.run_for(sec(2));
  // All three survivors wanted 3 out, but only one view change happened,
  // and no further changes occur afterwards.
  EXPECT_EQ(w.stack(0).membership().views_installed(), views);
  EXPECT_EQ(w.stack(0).view().members.size(), 3u);
}

}  // namespace
}  // namespace gcs
