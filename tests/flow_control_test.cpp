/// Flow control in the reliable channel (the role Totem's middle layer
/// plays, paper Fig 4): a bounded send window with local queueing.
#include <gtest/gtest.h>

#include <memory>

#include "channel/reliable_channel.hpp"
#include "sim/context.hpp"
#include "sim/network.hpp"
#include "transport/sim_transport.hpp"
#include "tests/test_util.hpp"

namespace gcs {
namespace {

using test::bytes_of;
using test::str_of;

struct FlowWorld {
  sim::Engine engine;
  sim::Network network;
  sim::Context c0{0, engine, Rng(1), Logger(), std::make_shared<Metrics>()};
  sim::Context c1{1, engine, Rng(2), Logger(), std::make_shared<Metrics>()};
  SimTransport t0{c0, network};
  SimTransport t1{c1, network};
  ReliableChannel ch0;
  ReliableChannel ch1;
  std::vector<std::string> received;

  explicit FlowWorld(ReliableChannel::Config cfg, sim::LinkModel link = {})
      : network(engine, 2, link, 1), ch0(c0, t0, cfg), ch1(c1, t1, cfg) {
    ch1.subscribe(Tag::kApp, [this](ProcessId, BytesView b) {
      received.push_back(str_of(b));
    });
  }
};

TEST(FlowControl, WindowLimitsInFlightMessages) {
  ReliableChannel::Config cfg;
  cfg.send_window = 4;
  FlowWorld w(cfg, sim::LinkModel{msec(5), 0, 0.0});
  for (int i = 0; i < 20; ++i) w.ch0.send(1, Tag::kApp, bytes_of(std::to_string(i)));
  // Before anything is acked, only the window's worth is on the wire.
  EXPECT_EQ(w.ch0.queued_by_flow_control(1), 16u);
  EXPECT_EQ(w.ch0.unacked_count(1), 20u);
  // Everything drains eventually, in order.
  ASSERT_TRUE(test::run_until(w.engine, sec(10), [&] { return w.received.size() == 20; }));
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(w.received[static_cast<std::size_t>(i)], std::to_string(i));
  }
  EXPECT_EQ(w.ch0.queued_by_flow_control(1), 0u);
}

TEST(FlowControl, AcksOpenTheWindowProgressively) {
  ReliableChannel::Config cfg;
  cfg.send_window = 2;
  FlowWorld w(cfg, sim::LinkModel{msec(2), 0, 0.0});
  for (int i = 0; i < 6; ++i) w.ch0.send(1, Tag::kApp, bytes_of(std::to_string(i)));
  EXPECT_EQ(w.ch0.queued_by_flow_control(1), 4u);
  // One round trip acks the first two, releasing the next two.
  w.engine.run_until(msec(5));
  EXPECT_EQ(w.ch0.queued_by_flow_control(1), 2u);
  ASSERT_TRUE(test::run_until(w.engine, sec(5), [&] { return w.received.size() == 6; }));
}

TEST(FlowControl, DisabledWindowSendsImmediately) {
  ReliableChannel::Config cfg;  // send_window = 0: off
  FlowWorld w(cfg, sim::LinkModel{msec(5), 0, 0.0});
  for (int i = 0; i < 50; ++i) w.ch0.send(1, Tag::kApp, bytes_of("x"));
  EXPECT_EQ(w.ch0.queued_by_flow_control(1), 0u);
}

TEST(FlowControl, SurvivesLossWithinWindow) {
  ReliableChannel::Config cfg;
  cfg.send_window = 3;
  cfg.rto = msec(5);
  FlowWorld w(cfg, sim::LinkModel{usec(500), usec(300), 0.3});
  for (int i = 0; i < 25; ++i) w.ch0.send(1, Tag::kApp, bytes_of(std::to_string(i)));
  ASSERT_TRUE(test::run_until(w.engine, sec(30), [&] { return w.received.size() == 25; }));
  for (int i = 0; i < 25; ++i) {
    EXPECT_EQ(w.received[static_cast<std::size_t>(i)], std::to_string(i));
  }
}

TEST(FlowControl, OutputTriggeredAgeIgnoresQueuedMessages) {
  // Only transmitted-but-unacked messages count for output-triggered
  // suspicion; locally queued ones are our own doing, not the peer's.
  ReliableChannel::Config cfg;
  cfg.send_window = 1;
  FlowWorld w(cfg, sim::LinkModel{msec(2), 0, 0.0});
  w.network.crash(1);
  w.ch0.send(1, Tag::kApp, bytes_of("a"));  // transmitted, never acked
  w.ch0.send(1, Tag::kApp, bytes_of("b"));  // queued by flow control
  w.engine.run_until(msec(500));
  EXPECT_GE(w.ch0.oldest_unacked_age(1), msec(499));
  EXPECT_EQ(w.ch0.queued_by_flow_control(1), 1u);
  // forget() clears both in-flight and queued.
  w.ch0.forget(1);
  EXPECT_EQ(w.ch0.oldest_unacked_age(1), 0);
  EXPECT_EQ(w.ch0.queued_by_flow_control(1), 0u);
}

TEST(FlowControl, FullStackRunsWithWindowedChannels) {
  // The whole architecture works with small windows (higher latency under
  // bursts, same correctness).
  World::Config cfg;
  cfg.n = 4;
  cfg.seed = 8;
  cfg.stack.channel.send_window = 8;
  World w(cfg);
  std::vector<test::DeliveryLog> logs(4);
  for (ProcessId p = 0; p < 4; ++p) {
    w.stack(p).on_adeliver([&logs, p](const MsgId& id, const Bytes& b) {
      logs[static_cast<std::size_t>(p)].record(id, b);
    });
  }
  w.found_group_all();
  for (int i = 0; i < 20; ++i) {
    w.stack(static_cast<ProcessId>(i % 4)).abcast(bytes_of(std::to_string(i)));
  }
  ASSERT_TRUE(test::run_until(w.engine(), sec(60), [&] {
    for (auto& log : logs) {
      if (log.size() < 20) return false;
    }
    return true;
  }));
  for (ProcessId p = 1; p < 4; ++p) {
    EXPECT_EQ(logs[static_cast<std::size_t>(p)].order, logs[0].order);
  }
}

}  // namespace
}  // namespace gcs
