#include <gtest/gtest.h>

#include <memory>

#include "traditional/gmvs_stack.hpp"
#include "tests/test_util.hpp"

namespace gcs::traditional {
namespace {

using test::bytes_of;
using test::consistent_prefix;

struct TradWorld {
  sim::Engine engine;
  sim::Network network;
  std::vector<std::unique_ptr<GmVsStack>> stacks;
  std::vector<test::DeliveryLog> logs;

  TradWorld(int n, GmVsStack::Config cfg = {}, std::uint64_t seed = 1,
            sim::LinkModel link = {})
      : network(engine, n, link, seed), logs(static_cast<std::size_t>(n)) {
    for (ProcessId p = 0; p < n; ++p) {
      stacks.push_back(std::make_unique<GmVsStack>(engine, network, p, seed, cfg));
      auto& log = logs[static_cast<std::size_t>(p)];
      stacks.back()->on_adeliver(
          [&log](const MsgId& id, const Bytes& b) { log.record(id, b); });
    }
  }

  void found(const std::vector<ProcessId>& members) {
    for (ProcessId p : members) {
      stacks[static_cast<std::size_t>(p)]->init_view(members);
      stacks[static_cast<std::size_t>(p)]->start();
    }
  }
  void found_all() {
    std::vector<ProcessId> all;
    for (std::size_t p = 0; p < stacks.size(); ++p) all.push_back(static_cast<ProcessId>(p));
    found(all);
  }

  GmVsStack& stack(ProcessId p) { return *stacks[static_cast<std::size_t>(p)]; }

  void crash(ProcessId p) { stack(p).crash(); }

  bool all_alive_members_delivered(std::size_t count) {
    for (std::size_t p = 0; p < stacks.size(); ++p) {
      if (!network.alive(static_cast<ProcessId>(p))) continue;
      if (!stacks[p]->is_member()) continue;
      if (logs[p].size() < count) return false;
    }
    return true;
  }

  void expect_total_order() {
    for (std::size_t i = 0; i + 1 < stacks.size(); ++i) {
      EXPECT_TRUE(consistent_prefix(logs[i].order, logs[i + 1].order))
          << "order mismatch between " << i << " and " << i + 1;
    }
  }
};

GmVsStack::Config token_cfg() {
  GmVsStack::Config cfg;
  cfg.ordering = GmVsStack::Ordering::kToken;
  return cfg;
}

TEST(GmVsSequencer, FailureFreeTotalOrder) {
  TradWorld w(4);
  w.found_all();
  for (int i = 0; i < 10; ++i) {
    for (ProcessId p = 0; p < 4; ++p) {
      w.stack(p).abcast(bytes_of("m" + std::to_string(p) + "." + std::to_string(i)));
    }
  }
  ASSERT_TRUE(test::run_until(w.engine, sec(10),
                              [&] { return w.all_alive_members_delivered(40); }));
  w.expect_total_order();
  for (auto& log : w.logs) EXPECT_EQ(log.size(), 40u);
}

TEST(GmVsToken, FailureFreeTotalOrder) {
  TradWorld w(4, token_cfg());
  w.found_all();
  for (int i = 0; i < 10; ++i) {
    for (ProcessId p = 0; p < 4; ++p) {
      w.stack(p).abcast(bytes_of("m" + std::to_string(p) + "." + std::to_string(i)));
    }
  }
  ASSERT_TRUE(test::run_until(w.engine, sec(10),
                              [&] { return w.all_alive_members_delivered(40); }));
  w.expect_total_order();
}

TEST(GmVsSequencer, SequencerCrashRecoversViaViewChange) {
  GmVsStack::Config cfg;
  cfg.suspect_timeout = msec(150);
  TradWorld w(4, cfg);
  w.found_all();
  for (int i = 0; i < 5; ++i) w.stack(1).abcast(bytes_of("pre" + std::to_string(i)));
  ASSERT_TRUE(test::run_until(w.engine, sec(5),
                              [&] { return w.all_alive_members_delivered(5); }));
  // Kill the sequencer (view head = 0).
  w.crash(0);
  for (int i = 0; i < 5; ++i) w.stack(2).abcast(bytes_of("post" + std::to_string(i)));
  ASSERT_TRUE(test::run_until(w.engine, sec(20), [&] {
    return !w.stack(1).view().contains(0) && w.all_alive_members_delivered(10);
  }));
  w.expect_total_order();
  EXPECT_EQ(w.stack(1).view().primary(), 1);  // new sequencer
  EXPECT_GE(w.stack(1).view_changes(), 1u);
}

TEST(GmVsToken, TokenHolderCrashRecoversViaViewChange) {
  auto cfg = token_cfg();
  cfg.suspect_timeout = msec(150);
  TradWorld w(4, cfg);
  w.found_all();
  for (int i = 0; i < 5; ++i) w.stack(1).abcast(bytes_of("pre" + std::to_string(i)));
  ASSERT_TRUE(test::run_until(w.engine, sec(5),
                              [&] { return w.all_alive_members_delivered(5); }));
  w.crash(0);  // token home / view head
  for (int i = 0; i < 5; ++i) w.stack(3).abcast(bytes_of("post" + std::to_string(i)));
  ASSERT_TRUE(test::run_until(w.engine, sec(20), [&] {
    return !w.stack(1).view().contains(0) && w.all_alive_members_delivered(10);
  }));
  w.expect_total_order();
}

TEST(GmVs, SendersBlockDuringViewChange) {
  GmVsStack::Config cfg;
  cfg.suspect_timeout = msec(150);
  TradWorld w(4, cfg);
  w.found_all();
  w.engine.run_until(msec(100));
  EXPECT_EQ(w.stack(1).total_blocked_time(), 0);
  w.crash(0);
  ASSERT_TRUE(test::run_until(w.engine, sec(20),
                              [&] { return !w.stack(1).view().contains(0); }));
  // The flush blocked the senders for a measurable window (> 0): the
  // sending-view-delivery cost of §4.4.
  EXPECT_GT(w.stack(1).total_blocked_time(), 0);
}

TEST(GmVs, MessagesSentWhileBlockedAreDeliveredAfterViewChange) {
  GmVsStack::Config cfg;
  cfg.suspect_timeout = msec(150);
  TradWorld w(4, cfg);
  w.found_all();
  w.engine.run_until(msec(50));
  w.crash(0);
  // Wait until the flush starts (senders blocked), then send.
  ASSERT_TRUE(test::run_until(w.engine, sec(5), [&] { return w.stack(1).is_blocked(); }));
  w.stack(1).abcast(bytes_of("queued-during-flush"));
  EXPECT_GT(w.stack(1).metrics().counter("gmvs.sends_blocked"), 0);
  ASSERT_TRUE(test::run_until(w.engine, sec(20), [&] {
    return w.logs[1].size() >= 1 && w.logs[2].size() >= 1 && w.logs[3].size() >= 1;
  }));
  EXPECT_EQ(w.logs[1].payloads.back(), "queued-during-flush");
  w.expect_total_order();
}

TEST(GmVs, FalseSuspicionCausesExclusionAndRejoin) {
  // THE traditional-architecture pathology (§4.3): a false suspicion kills
  // a perfectly healthy process, which then must rejoin + state-transfer.
  GmVsStack::Config cfg;
  cfg.suspect_timeout = sec(5);  // no natural suspicions
  cfg.rejoin_state_transfer_delay = msec(50);
  TradWorld w(4, cfg);
  w.found_all();
  w.engine.run_until(msec(100));
  // Member 1 falsely suspects member 3.
  w.stack(1).fd().inject_suspicion(w.stack(1).fd_class(), 3);
  ASSERT_TRUE(test::run_until(w.engine, sec(20),
                              [&] { return w.stack(3).exclusions_suffered() >= 1; }));
  // ... and 3 rejoins automatically (state-transfer delay paid).
  ASSERT_TRUE(test::run_until(w.engine, sec(20), [&] {
    return w.stack(3).is_member() && w.stack(0).view().contains(3);
  }));
  EXPECT_GE(w.stack(0).view_changes(), 2u);  // exclusion + rejoin
  // Traffic still totally ordered afterwards.
  for (int i = 0; i < 5; ++i) w.stack(3).abcast(bytes_of("back" + std::to_string(i)));
  ASSERT_TRUE(test::run_until(w.engine, sec(10),
                              [&] { return w.logs[0].size() >= 5; }));
  w.expect_total_order();
}

TEST(GmVs, JoinAddsMemberAndTransfersState) {
  TradWorld w(4);
  w.found({0, 1, 2});
  for (int i = 0; i < 5; ++i) w.stack(0).abcast(bytes_of("pre" + std::to_string(i)));
  ASSERT_TRUE(test::run_until(w.engine, sec(5), [&] { return w.logs[0].size() >= 5; }));
  w.stack(3).request_join(0);
  w.stack(3).start();
  ASSERT_TRUE(test::run_until(w.engine, sec(20), [&] {
    return w.stack(3).is_member() && w.stack(0).view().contains(3);
  }));
  // Joiner missed old messages (state transfer covers them at app level);
  // new messages reach it.
  w.stack(0).abcast(bytes_of("post"));
  ASSERT_TRUE(test::run_until(w.engine, sec(10), [&] { return w.logs[3].size() >= 1; }));
  EXPECT_EQ(w.logs[3].payloads[0], "post");
  // Old members agree on the full order; the joiner's log is a suffix.
  for (std::size_t i = 0; i + 1 < 3; ++i) {
    EXPECT_TRUE(consistent_prefix(w.logs[i].order, w.logs[i + 1].order));
  }
  ASSERT_GE(w.logs[0].size(), w.logs[3].size());
  const std::size_t offset = w.logs[0].size() - w.logs[3].size();
  for (std::size_t i = 0; i < w.logs[3].size(); ++i) {
    EXPECT_EQ(w.logs[3].order[i], w.logs[0].order[offset + i]);
  }
}

TEST(GmVs, TwoSimultaneousCrashes) {
  GmVsStack::Config cfg;
  cfg.suspect_timeout = msec(150);
  TradWorld w(5, cfg);
  w.found_all();
  w.engine.run_until(msec(50));
  w.crash(0);
  w.crash(1);
  for (int i = 0; i < 5; ++i) w.stack(2).abcast(bytes_of("post" + std::to_string(i)));
  ASSERT_TRUE(test::run_until(w.engine, sec(30), [&] {
    return w.stack(2).view().members == std::vector<ProcessId>{2, 3, 4} &&
           w.all_alive_members_delivered(5);
  }));
  w.expect_total_order();
}

TEST(GmVs, LossyLinksStillTotallyOrdered) {
  GmVsStack::Config cfg;
  cfg.suspect_timeout = msec(400);
  TradWorld w(4, cfg, 21, sim::LinkModel{usec(200), usec(300), 0.1});
  w.found_all();
  for (int i = 0; i < 10; ++i) {
    w.stack(static_cast<ProcessId>(i % 4)).abcast(bytes_of(std::to_string(i)));
  }
  ASSERT_TRUE(test::run_until(w.engine, sec(60),
                              [&] { return w.all_alive_members_delivered(10); }));
  w.expect_total_order();
}

TEST(GmVsToken, TokenRotates) {
  TradWorld w(3, token_cfg());
  w.found_all();
  w.engine.run_until(msec(100));
  // The token made full circles: every member acquired it at least once.
  for (ProcessId p = 0; p < 3; ++p) {
    EXPECT_GT(w.stack(p).metrics().counter("token.acquired"), 0) << "p" << p;
  }
}

}  // namespace
}  // namespace gcs::traditional
