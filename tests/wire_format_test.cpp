/// Zero-copy wire path (DESIGN.md §12): slim id-only proposals, payload
/// pull/push fallback, and slim-vs-legacy equivalence. These tests pin the
/// behaviours the wire benchmarks rely on: a process that decides an
/// instance without having rdelivered the payloads (a late joiner) pulls
/// them over the channel and delivers byte-identically, both formats yield
/// the same delivery semantics, and slim resolution keeps generic
/// broadcast's conflict ordering intact.
#include <algorithm>
#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/stack.hpp"
#include "tests/test_util.hpp"

namespace gcs {
namespace {

using test::bytes_of;

World::Config cfg(int n, std::uint64_t seed, WireFormat format) {
  World::Config c;
  c.n = n;
  c.seed = seed;
  c.stack.wire_format = format;
  return c;
}

TEST(WireFormat, LateJoinerPullsMissingPayloadsAndDeliversByteIdentically) {
  // The joiner's state snapshot carries adelivered ids but no payload
  // bytes, and the burst below was flooded to {0,1,2} before the join view
  // installed — so the joiner decides those instances without ever having
  // rdelivered the messages. The only way it can deliver them is the
  // Tag::kAbcast pull/push fallback.
  World w(cfg(4, 23, WireFormat::kSlim));
  std::vector<test::DeliveryLog> logs(4);
  for (ProcessId p = 0; p < 4; ++p) {
    w.stack(p).on_adeliver([&logs, p](const MsgId& id, const Bytes& b) {
      logs[static_cast<std::size_t>(p)].record(id, b);
    });
  }
  w.found_group({0, 1, 2});
  for (int i = 0; i < 10; ++i) {
    w.stack(static_cast<ProcessId>(i % 3)).abcast(bytes_of("pre" + std::to_string(i)));
    w.run_for(msec(5));
  }
  ASSERT_TRUE(test::run_until(w, sec(10), [&] { return logs[0].size() >= 10; }));

  // Join while a steady trickle keeps consensus instances in flight. A
  // message a member submits after the join op is proposed but before its
  // own view installs is flooded to the OLD group only, yet ordered in an
  // instance after the joiner's snapshot — exactly the decide-without-
  // rdeliver case the pull fallback exists for.
  w.stack(3).join(0);
  const int kBurst = 60;
  for (int i = 0; i < kBurst; ++i) {
    w.stack(static_cast<ProcessId>(i % 3)).abcast(bytes_of("burst" + std::to_string(i)));
    w.run_for(msec(1));
  }
  ASSERT_TRUE(test::run_until(w, sec(20), [&] {
    return w.stack(3).membership().is_member() && logs[0].size() >= 10 + kBurst &&
           logs[3].size() >= 5;
  }));
  w.run_for(sec(1));

  EXPECT_GT(w.stack(3).metrics().counter("abcast.pull_requests"), 0)
      << "joiner never exercised the payload-pull fallback";
  // Byte-identical delivery: the joiner's whole log must equal the
  // corresponding window of a founding member's log, ids and payloads.
  const auto& member = logs[0];
  const auto& joiner = logs[3];
  ASSERT_GT(joiner.size(), 0u);
  const auto anchor = std::find(member.order.begin(), member.order.end(), joiner.order[0]);
  ASSERT_NE(anchor, member.order.end()) << "joiner delivered an id no member delivered";
  const std::size_t base =
      static_cast<std::size_t>(std::distance(member.order.begin(), anchor));
  ASSERT_LE(base + joiner.size(), member.size());
  for (std::size_t i = 0; i < joiner.size(); ++i) {
    EXPECT_EQ(joiner.order[i], member.order[base + i]) << "order diverges at " << i;
    EXPECT_EQ(joiner.payloads[i], member.payloads[base + i])
        << "payload bytes diverge at " << i;
  }
}

TEST(WireFormat, SlimAndLegacyDeliverTheSameMessages) {
  // Identical workload under both formats: every process inside each world
  // delivers the same total order, both worlds deliver the same message
  // set byte-for-byte, and the slim format puts strictly fewer bytes
  // through the consensus tag.
  const int kN = 5;
  const int kMsgs = 40;
  const std::string filler(512, 'x');
  std::map<WireFormat, std::vector<test::DeliveryLog>> logs;
  std::map<WireFormat, std::int64_t> consensus_bytes;
  for (const WireFormat format : {WireFormat::kSlim, WireFormat::kLegacy}) {
    World w(cfg(kN, 29, format));
    auto& l = logs[format];
    l.resize(kN);
    for (ProcessId p = 0; p < kN; ++p) {
      w.stack(p).on_adeliver([&l, p](const MsgId& id, const Bytes& b) {
        l[static_cast<std::size_t>(p)].record(id, b);
      });
    }
    w.found_group_all();
    for (int i = 0; i < kMsgs; ++i) {
      w.stack(static_cast<ProcessId>(i % kN))
          .abcast(bytes_of("m" + std::to_string(i) + ":" + filler));
      if (i % 4 == 3) w.run_for(msec(10));
    }
    ASSERT_TRUE(test::run_until(w, sec(30), [&] {
      for (const auto& log : l) {
        if (log.size() < static_cast<std::size_t>(kMsgs)) return false;
      }
      return true;
    }));
    w.run_for(msec(200));
    std::int64_t bytes = 0;
    for (ProcessId p = 0; p < kN; ++p) {
      bytes += w.stack(p).metrics().counter("consensus.wire_bytes");
    }
    consensus_bytes[format] = bytes;
  }

  for (const WireFormat format : {WireFormat::kSlim, WireFormat::kLegacy}) {
    const auto& l = logs[format];
    for (int p = 1; p < kN; ++p) {
      EXPECT_EQ(l[static_cast<std::size_t>(p)].order, l[0].order);
      EXPECT_EQ(l[static_cast<std::size_t>(p)].payloads, l[0].payloads);
    }
  }
  // Cross-format: schedules may interleave differently, but the delivered
  // (id → payload) mapping must be identical.
  std::map<WireFormat, std::map<MsgId, std::string>> sets;
  for (const WireFormat format : {WireFormat::kSlim, WireFormat::kLegacy}) {
    const auto& log = logs[format][0];
    for (std::size_t i = 0; i < log.size(); ++i) sets[format][log.order[i]] = log.payloads[i];
  }
  EXPECT_EQ(sets[WireFormat::kSlim], sets[WireFormat::kLegacy]);
  EXPECT_LT(consensus_bytes[WireFormat::kSlim], consensus_bytes[WireFormat::kLegacy])
      << "slim proposals should shrink consensus wire traffic";
}

TEST(WireFormat, GbSlimResolutionOrdersConflictsConsistently) {
  // Conflicting gbcasts forced through the resolution path under slim
  // reports: every process gdelivers the conflicting class in the same
  // order, with the payload bytes intact.
  const int kN = 3;
  World w(cfg(kN, 31, WireFormat::kSlim));
  std::vector<test::DeliveryLog> logs(kN);
  for (ProcessId p = 0; p < kN; ++p) {
    w.stack(p).on_gdeliver([&logs, p](const MsgId& id, MsgClass, const Bytes& b) {
      logs[static_cast<std::size_t>(p)].record(id, b);
    });
  }
  w.found_group_all();
  const int kRounds = 15;
  for (int i = 0; i < kRounds; ++i) {
    // Concurrent conflicting submissions from every sender: the fast path
    // cannot commit all of them, so rounds resolve via abcast reports.
    for (ProcessId p = 0; p < kN; ++p) {
      w.stack(p).gbcast(kAbcastClass, bytes_of("c" + std::to_string(i) + "p" + std::to_string(p)));
    }
    w.run_for(msec(30));
  }
  const std::size_t total = static_cast<std::size_t>(kRounds * kN);
  ASSERT_TRUE(test::run_until(w, sec(30), [&] {
    for (const auto& log : logs) {
      if (log.size() < total) return false;
    }
    return true;
  }));
  w.run_for(msec(300));
  std::uint64_t resolved = 0;
  for (ProcessId p = 0; p < kN; ++p) {
    resolved += w.stack(p).generic_broadcast().resolved_deliveries();
  }
  EXPECT_GT(resolved, 0u) << "workload never exercised slim resolution reports";
  for (ProcessId p = 0; p < kN; ++p) {
    auto& log = logs[static_cast<std::size_t>(p)];
    EXPECT_EQ(log.size(), total) << "duplicate or lost gdelivery at p" << p;
    EXPECT_EQ(log.order, logs[0].order) << "conflict order diverges at p" << p;
    EXPECT_EQ(log.payloads, logs[0].payloads);
  }
}

}  // namespace
}  // namespace gcs
