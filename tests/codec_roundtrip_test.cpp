/// Property-style codec round-trip tests, seeded via util::Rng.
///
/// Every wire message in nggcs is a flat sequence of codec primitives
/// (varints, zigzag varints, raw bytes, length-prefixed strings/blobs,
/// MsgIds, vectors), so the round-trip property is checked at three levels:
///   1. each primitive over randomized values including the boundary cases
///      the LEB128 / zigzag encodings care about (byte-width edges, sign
///      extremes);
///   2. random typed interleavings — a random "message shape" encoded then
///      decoded field by field (catches cross-field state bugs);
///   3. the structured round-trippers built on the codec: FaultStep and
///      FaultPlan (the schedule explorer's DSL), fuzzed field-wise and via
///      generated plans.
/// Plus the hardening property: every strict prefix of a valid encoding
/// decodes to failure (ok() == false), never to garbage acceptance of a
/// full read.
#include <gtest/gtest.h>

#include <cstdint>
#include <limits>

#include "broadcast/proposal.hpp"
#include "sim/fault_plan.hpp"
#include "util/codec.hpp"
#include "util/rng.hpp"

namespace gcs {
namespace {

// Random u64 with a random effective bit width, so every varint byte count
// (1..10) is exercised rather than mostly 10-byte extremes.
std::uint64_t random_width_u64(Rng& rng) {
  const auto bits = static_cast<int>(rng.next_below(65));
  if (bits == 0) return 0;
  std::uint64_t v = rng.next_u64();
  if (bits < 64) v &= (1ULL << bits) - 1;
  return v;
}

TEST(CodecRoundTrip, UnsignedVarints) {
  Rng rng(0xc0dec);
  std::vector<std::uint64_t> values = {0, 1, 127, 128, 16383, 16384,
                                       std::numeric_limits<std::uint64_t>::max()};
  for (int i = 0; i < 2000; ++i) values.push_back(random_width_u64(rng));
  for (int b = 0; b < 64; ++b) {
    values.push_back(1ULL << b);        // byte-width edges
    values.push_back((1ULL << b) - 1);
  }
  Encoder enc;
  for (std::uint64_t v : values) enc.put_u64(v);
  Decoder dec(enc.bytes());
  for (std::uint64_t v : values) EXPECT_EQ(dec.get_u64(), v);
  EXPECT_TRUE(dec.ok());
  EXPECT_TRUE(dec.at_end());
}

TEST(CodecRoundTrip, SignedVarints) {
  Rng rng(0x51611ed);
  std::vector<std::int64_t> values = {0,  1,  -1, 63, 64, -64, -65,
                                      std::numeric_limits<std::int64_t>::min(),
                                      std::numeric_limits<std::int64_t>::max()};
  for (int i = 0; i < 2000; ++i) {
    const auto raw = static_cast<std::int64_t>(random_width_u64(rng));
    values.push_back(rng.chance(0.5) ? raw : -raw);
  }
  Encoder enc;
  for (std::int64_t v : values) enc.put_i64(v);
  Decoder dec(enc.bytes());
  for (std::int64_t v : values) EXPECT_EQ(dec.get_i64(), v);
  EXPECT_TRUE(dec.ok());
  EXPECT_TRUE(dec.at_end());
}

TEST(CodecRoundTrip, StringsAndBlobsWithArbitraryContent) {
  Rng rng(0xb10b5);
  for (int round = 0; round < 200; ++round) {
    std::string s;
    Bytes b;
    const auto len = rng.next_below(300);
    for (std::uint64_t i = 0; i < len; ++i) {
      s.push_back(static_cast<char>(rng.next_below(256)));  // NULs included
      b.push_back(static_cast<std::uint8_t>(rng.next_below(256)));
    }
    Encoder enc;
    enc.put_string(s);
    enc.put_bytes(b);
    Decoder dec(enc.bytes());
    EXPECT_EQ(dec.get_string(), s);
    EXPECT_EQ(dec.get_bytes(), b);
    EXPECT_TRUE(dec.ok());
    EXPECT_TRUE(dec.at_end());
  }
}

TEST(CodecRoundTrip, MsgIds) {
  Rng rng(0x3513);
  for (int i = 0; i < 500; ++i) {
    MsgId id;
    id.sender = rng.chance(0.1)
                    ? kNoProcess
                    : static_cast<ProcessId>(rng.next_below(1u << 20));
    id.seq = random_width_u64(rng);
    Encoder enc;
    enc.put_msgid(id);
    Decoder dec(enc.bytes());
    EXPECT_EQ(dec.get_msgid(), id);
    EXPECT_TRUE(dec.ok());
  }
}

TEST(CodecRoundTrip, RandomTypedInterleavings) {
  // A random message "shape": sequence of (type, value) fields encoded in
  // order and decoded in the same order.
  Rng rng(0x17e51ea5e);
  for (int round = 0; round < 100; ++round) {
    struct Field {
      int type;
      std::uint64_t u;
      std::int64_t i;
      std::string s;
      MsgId m;
    };
    std::vector<Field> fields;
    Encoder enc;
    const auto count = 1 + rng.next_below(40);
    for (std::uint64_t f = 0; f < count; ++f) {
      Field field;
      field.type = static_cast<int>(rng.next_below(5));
      switch (field.type) {
        case 0:
          field.u = random_width_u64(rng);
          enc.put_u64(field.u);
          break;
        case 1:
          field.i = static_cast<std::int64_t>(random_width_u64(rng)) *
                    (rng.chance(0.5) ? 1 : -1);
          enc.put_i64(field.i);
          break;
        case 2:
          field.u = rng.next_below(256);
          enc.put_byte(static_cast<std::uint8_t>(field.u));
          break;
        case 3: {
          const auto len = rng.next_below(40);
          for (std::uint64_t i = 0; i < len; ++i) {
            field.s.push_back(static_cast<char>(rng.next_below(256)));
          }
          enc.put_string(field.s);
          break;
        }
        case 4:
          field.m = MsgId{static_cast<ProcessId>(rng.next_below(64)), random_width_u64(rng)};
          enc.put_msgid(field.m);
          break;
      }
      fields.push_back(std::move(field));
    }
    Decoder dec(enc.bytes());
    for (const Field& field : fields) {
      switch (field.type) {
        case 0: EXPECT_EQ(dec.get_u64(), field.u); break;
        case 1: EXPECT_EQ(dec.get_i64(), field.i); break;
        case 2: EXPECT_EQ(dec.get_byte(), field.u); break;
        case 3: EXPECT_EQ(dec.get_string(), field.s); break;
        case 4: EXPECT_EQ(dec.get_msgid(), field.m); break;
      }
    }
    EXPECT_TRUE(dec.ok());
    EXPECT_TRUE(dec.at_end());
  }
}

TEST(CodecRoundTrip, EveryStrictPrefixFailsCleanly) {
  // Hardened decode: a truncated message must set the failed flag (or leave
  // trailing state detectable via at_end), never fabricate a full read.
  Encoder enc;
  enc.put_u64(300);
  enc.put_i64(-12345);
  enc.put_string("hello");
  enc.put_msgid(MsgId{3, 17});
  const Bytes full = enc.bytes();
  for (std::size_t cut = 0; cut < full.size(); ++cut) {
    Decoder dec(full.data(), cut);
    dec.get_u64();
    dec.get_i64();
    dec.get_string();
    dec.get_msgid();
    EXPECT_FALSE(dec.ok()) << "prefix of " << cut << " bytes decoded fully";
  }
}

TEST(CodecRoundTrip, FaultStepsFuzzedFieldwise) {
  Rng rng(0xfa017);
  for (int i = 0; i < 1000; ++i) {
    sim::FaultStep step;
    step.at = static_cast<Duration>(random_width_u64(rng) & 0x7fffffffffffffffULL);
    step.op = static_cast<sim::FaultOp>(rng.next_below(
        static_cast<std::uint64_t>(sim::FaultOp::kCount_)));
    step.proc = static_cast<ProcessId>(rng.next_range(-1, 15));
    step.target = static_cast<ProcessId>(rng.next_range(-1, 15));
    step.cls = static_cast<std::uint8_t>(rng.next_below(256));
    step.arg = random_width_u64(rng);
    step.duration = static_cast<Duration>(random_width_u64(rng) & 0x7fffffffffffffffULL);
    Encoder enc;
    step.encode(enc);
    Decoder dec(enc.bytes());
    const sim::FaultStep back = sim::FaultStep::decode(dec);
    EXPECT_TRUE(dec.ok());
    EXPECT_TRUE(dec.at_end());
    EXPECT_EQ(back, step);
  }
}

TEST(CodecRoundTrip, GeneratedFaultPlans) {
  Rng rng(0x9e2);
  for (int i = 0; i < 50; ++i) {
    const std::uint64_t seed = rng.next_u64();
    const sim::FaultPlan plan = sim::FaultPlan::generate(seed);
    Encoder enc;
    plan.encode(enc);
    Decoder dec(enc.bytes());
    const sim::FaultPlan back = sim::FaultPlan::decode(dec);
    ASSERT_TRUE(dec.ok());
    EXPECT_TRUE(dec.at_end());
    EXPECT_EQ(back.steps, plan.steps);
    EXPECT_EQ(back.digest(), plan.digest());
  }
}

TEST(CodecRoundTrip, VectorsOfStructs) {
  Rng rng(0x7ec);
  for (int round = 0; round < 50; ++round) {
    std::vector<MsgId> ids;
    const auto n = rng.next_below(100);
    for (std::uint64_t i = 0; i < n; ++i) {
      ids.push_back(MsgId{static_cast<ProcessId>(rng.next_below(32)), random_width_u64(rng)});
    }
    Encoder enc;
    enc.put_vector(ids, [](Encoder& e, const MsgId& id) { e.put_msgid(id); });
    Decoder dec(enc.bytes());
    const auto back = dec.get_vector<MsgId>([](Decoder& d) { return d.get_msgid(); });
    EXPECT_TRUE(dec.ok());
    EXPECT_TRUE(dec.at_end());
    EXPECT_EQ(back, ids);
  }
}

// -- zero-copy views ---------------------------------------------------------
//
// get_view() hands back a span into the decoder's underlying buffer. The view
// is valid only while that buffer is alive and unmodified: a handler that
// stores the view past its own return (instead of to_bytes()-copying it) has
// a use-after-free once the datagram/pooled buffer is reused. That misuse is
// a lifetime contract, not something a unit test can observe portably — the
// tests below pin down the bounds checking and the aliasing (no-copy)
// behavior, which ARE observable.

TEST(CodecViews, ViewRoundTripAliasesTheBuffer) {
  Rng rng(0x71e35);
  for (int round = 0; round < 200; ++round) {
    Bytes blob;
    const auto len = rng.next_below(300);
    for (std::uint64_t i = 0; i < len; ++i) {
      blob.push_back(static_cast<std::uint8_t>(rng.next_below(256)));
    }
    Encoder enc;
    enc.put_u64(7);
    enc.put_bytes(blob);
    enc.put_u64(9);
    const Bytes& wire = enc.bytes();
    Decoder dec(wire);
    EXPECT_EQ(dec.get_u64(), 7u);
    const BytesView view = dec.get_view();
    EXPECT_EQ(dec.get_u64(), 9u);
    ASSERT_TRUE(dec.ok());
    EXPECT_TRUE(dec.at_end());
    ASSERT_EQ(view.size(), blob.size());
    EXPECT_EQ(to_bytes(view), blob);
    if (!view.empty()) {
      // No copy: the view points into the encoder's buffer.
      EXPECT_GE(view.data(), wire.data());
      EXPECT_LE(view.data() + view.size(), wire.data() + wire.size());
    }
  }
}

TEST(CodecViews, ZeroLengthViewIsEmptyAndOk) {
  Encoder enc;
  enc.put_bytes(Bytes{});
  enc.put_u64(42);
  Decoder dec(enc.bytes());
  const BytesView view = dec.get_view();
  EXPECT_TRUE(view.empty());
  EXPECT_EQ(dec.get_u64(), 42u);
  EXPECT_TRUE(dec.ok());
  EXPECT_TRUE(dec.at_end());
}

TEST(CodecViews, TruncatedBufferFailsEveryPrefix) {
  Encoder enc;
  enc.put_bytes(Bytes{0xde, 0xad, 0xbe, 0xef, 0x01, 0x02, 0x03});
  const Bytes full = enc.bytes();
  for (std::size_t cut = 0; cut < full.size(); ++cut) {
    Decoder dec(full.data(), cut);
    const BytesView view = dec.get_view();
    EXPECT_FALSE(dec.ok()) << "prefix of " << cut << " bytes yielded a view";
    EXPECT_TRUE(view.empty());
  }
}

TEST(CodecViews, HostileLengthPrefixRejected) {
  // Length prefix claims far more bytes than the buffer holds.
  Encoder enc;
  enc.put_u64(1'000'000);
  enc.put_byte(0xaa);
  enc.put_byte(0xbb);
  Decoder dec(enc.bytes());
  const BytesView view = dec.get_view();
  EXPECT_FALSE(dec.ok());
  EXPECT_TRUE(view.empty());
  // get_bytes must reject identically (shared bounds check).
  Decoder dec2(enc.bytes());
  EXPECT_TRUE(dec2.get_bytes().empty());
  EXPECT_FALSE(dec2.ok());
}

// -- batch proposals (the consensus value under the slim wire path) ----------

BatchProposal random_batch(Rng& rng, WireFormat format) {
  BatchProposal batch;
  batch.format = format;
  const auto n = rng.next_below(12);
  for (std::uint64_t i = 0; i < n; ++i) {
    ProposalEntry e;
    e.id = MsgId{static_cast<ProcessId>(rng.next_below(64)), random_width_u64(rng)};
    e.subtag = static_cast<std::uint8_t>(rng.next_below(3));
    if (format == WireFormat::kLegacy) {
      const auto len = rng.next_below(200);
      for (std::uint64_t b = 0; b < len; ++b) {
        e.payload.push_back(static_cast<std::uint8_t>(rng.next_below(256)));
      }
    }
    batch.entries.push_back(std::move(e));
  }
  return batch;
}

TEST(ProposalRoundTrip, SlimAndLegacyFuzz) {
  Rng rng(0xba7c4);
  for (int round = 0; round < 500; ++round) {
    const WireFormat format = rng.chance(0.5) ? WireFormat::kSlim : WireFormat::kLegacy;
    const BatchProposal batch = random_batch(rng, format);
    Encoder enc;
    batch.encode(enc);
    Decoder dec(enc.bytes());
    const BatchProposal back = BatchProposal::decode(dec);
    ASSERT_TRUE(dec.ok());
    EXPECT_TRUE(dec.at_end());
    EXPECT_EQ(back, batch);
  }
}

TEST(ProposalRoundTrip, EveryStrictPrefixFailsCleanly) {
  Rng rng(0x5717);
  for (int round = 0; round < 20; ++round) {
    const WireFormat format = rng.chance(0.5) ? WireFormat::kSlim : WireFormat::kLegacy;
    BatchProposal batch = random_batch(rng, format);
    if (batch.entries.empty()) continue;  // need at least one entry to cut into
    Encoder enc;
    batch.encode(enc);
    const Bytes full = enc.bytes();
    for (std::size_t cut = 0; cut < full.size(); ++cut) {
      Decoder dec(full.data(), cut);
      const BatchProposal back = BatchProposal::decode(dec);
      EXPECT_FALSE(dec.ok()) << "prefix of " << cut << "/" << full.size() << " decoded";
      EXPECT_TRUE(back.entries.empty());
    }
  }
}

TEST(ProposalRoundTrip, UnknownFormatByteRejected) {
  BatchProposal batch;
  batch.entries.push_back(ProposalEntry{MsgId{1, 2}, 0, {}});
  Encoder enc;
  batch.encode(enc);
  Bytes wire = enc.bytes();
  for (int fmt = 2; fmt < 256; fmt += 13) {
    wire[0] = static_cast<std::uint8_t>(fmt);
    Decoder dec(wire);
    const BatchProposal back = BatchProposal::decode(dec);
    EXPECT_FALSE(dec.ok());
    EXPECT_TRUE(back.entries.empty());
  }
}

TEST(ProposalRoundTrip, HostileEntryCountRejected) {
  Encoder enc;
  enc.put_byte(static_cast<std::uint8_t>(WireFormat::kSlim));
  enc.put_u64(std::numeric_limits<std::uint64_t>::max());  // absurd count
  enc.put_byte(0);
  Decoder dec(enc.bytes());
  const BatchProposal back = BatchProposal::decode(dec);
  EXPECT_FALSE(dec.ok());
  EXPECT_TRUE(back.entries.empty());
}

TEST(ProposalRoundTrip, CorruptedBytesNeverCrash) {
  // Random mutations of valid encodings either decode to ok() (benign
  // mutation) or fail cleanly — never UB (run under ASan in CI).
  Rng rng(0xc0a2b7);
  for (int round = 0; round < 500; ++round) {
    const WireFormat format = rng.chance(0.5) ? WireFormat::kSlim : WireFormat::kLegacy;
    const BatchProposal batch = random_batch(rng, format);
    Encoder enc;
    batch.encode(enc);
    Bytes wire = enc.bytes();
    const auto flips = 1 + rng.next_below(4);
    for (std::uint64_t f = 0; f < flips && !wire.empty(); ++f) {
      wire[static_cast<std::size_t>(rng.next_below(wire.size()))] ^=
          static_cast<std::uint8_t>(1 + rng.next_below(255));
    }
    Decoder dec(wire);
    const BatchProposal back = BatchProposal::decode(dec);
    (void)back;  // any outcome is fine as long as it is bounded
  }
}

}  // namespace
}  // namespace gcs
