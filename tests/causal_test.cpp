#include <gtest/gtest.h>

#include <map>
#include <memory>

#include "broadcast/causal_broadcast.hpp"
#include "channel/reliable_channel.hpp"
#include "tests/test_util.hpp"
#include "transport/sim_transport.hpp"

namespace gcs {
namespace {

using test::bytes_of;
using test::str_of;

struct CausalWorld {
  sim::Engine engine;
  sim::Network network;
  struct Proc {
    std::unique_ptr<sim::Context> ctx;
    std::unique_ptr<SimTransport> transport;
    std::unique_ptr<ReliableChannel> channel;
    std::unique_ptr<ReliableBroadcast> rbcast;
    std::unique_ptr<CausalBroadcast> cbcast;
    std::vector<MsgId> order;
  };
  std::vector<Proc> procs;

  explicit CausalWorld(int n, sim::LinkModel link = {}, std::uint64_t seed = 1)
      : network(engine, n, link, seed) {
    procs.resize(static_cast<std::size_t>(n));
    std::vector<ProcessId> all;
    for (ProcessId p = 0; p < n; ++p) all.push_back(p);
    for (ProcessId p = 0; p < n; ++p) {
      auto& proc = procs[static_cast<std::size_t>(p)];
      proc.ctx = std::make_unique<sim::Context>(
          p, engine, Rng(seed * 13 + static_cast<std::uint64_t>(p)), Logger(),
          std::make_shared<Metrics>());
      proc.transport = std::make_unique<SimTransport>(*proc.ctx, network);
      proc.channel = std::make_unique<ReliableChannel>(*proc.ctx, *proc.transport);
      proc.rbcast = std::make_unique<ReliableBroadcast>(*proc.ctx, *proc.channel, Tag::kCbcast);
      proc.cbcast = std::make_unique<CausalBroadcast>(*proc.ctx, *proc.rbcast, n);
      proc.cbcast->set_group(all);
      proc.cbcast->on_deliver(
          [&proc](const MsgId& id, const Bytes&) { proc.order.push_back(id); });
    }
  }

  std::size_t position(ProcessId at, const MsgId& id) const {
    const auto& order = procs[static_cast<std::size_t>(at)].order;
    for (std::size_t i = 0; i < order.size(); ++i) {
      if (order[i] == id) return i;
    }
    return static_cast<std::size_t>(-1);
  }

  bool everyone_delivered(std::size_t count) {
    for (auto& p : procs) {
      if (p.order.size() < count) return false;
    }
    return true;
  }
};

TEST(CausalBroadcast, SelfDeliveryIsImmediate) {
  CausalWorld w(3);
  const MsgId id = w.procs[0].cbcast->cbcast(bytes_of("m"));
  // Loopback latency only.
  w.engine.run_until(msec(1));
  ASSERT_EQ(w.procs[0].order.size(), 1u);
  EXPECT_EQ(w.procs[0].order[0], id);
}

TEST(CausalBroadcast, FifoPerSender) {
  CausalWorld w(3, sim::LinkModel{usec(200), usec(500), 0.0}, 5);
  std::vector<MsgId> sent;
  for (int i = 0; i < 20; ++i) sent.push_back(w.procs[0].cbcast->cbcast(bytes_of("x")));
  ASSERT_TRUE(test::run_until(w.engine, sec(5), [&] { return w.everyone_delivered(20); }));
  for (auto& p : w.procs) {
    for (std::size_t i = 0; i < sent.size(); ++i) {
      EXPECT_EQ(p.order[i], sent[i]);  // per-sender order == send order
    }
  }
}

TEST(CausalBroadcast, CausalChainRespected) {
  // p0 broadcasts m1; p1 delivers m1 then broadcasts m2 (so m1 -> m2).
  // Every process must deliver m1 before m2 even if m2's copies arrive
  // first (we force that with a slow link from p0 to p2).
  CausalWorld w(3);
  w.network.set_link(0, 2, sim::LinkModel{msec(50), 0, 0.0});  // slow
  const MsgId m1 = w.procs[0].cbcast->cbcast(bytes_of("m1"));
  ASSERT_TRUE(test::run_until(w.engine, sec(1),
                              [&] { return w.procs[1].order.size() >= 1; }));
  const MsgId m2 = w.procs[1].cbcast->cbcast(bytes_of("m2"));
  ASSERT_TRUE(test::run_until(w.engine, sec(5), [&] { return w.everyone_delivered(2); }));
  for (ProcessId p = 0; p < 3; ++p) {
    EXPECT_LT(w.position(p, m1), w.position(p, m2)) << "at p" << p;
  }
}

TEST(CausalBroadcast, HoldbackDrainsTransitively) {
  // Chain m1 -> m2 -> m3 across three senders; a process that receives
  // them in reverse order must still deliver in causal order.
  CausalWorld w(4);
  w.network.set_link(0, 3, sim::LinkModel{msec(80), 0, 0.0});
  w.network.set_link(1, 3, sim::LinkModel{msec(40), 0, 0.0});
  const MsgId m1 = w.procs[0].cbcast->cbcast(bytes_of("m1"));
  ASSERT_TRUE(test::run_until(w.engine, sec(1), [&] { return w.procs[1].order.size() >= 1; }));
  const MsgId m2 = w.procs[1].cbcast->cbcast(bytes_of("m2"));
  ASSERT_TRUE(test::run_until(w.engine, sec(1), [&] { return w.procs[2].order.size() >= 2; }));
  const MsgId m3 = w.procs[2].cbcast->cbcast(bytes_of("m3"));
  ASSERT_TRUE(test::run_until(w.engine, sec(5), [&] { return w.everyone_delivered(3); }));
  for (ProcessId p = 0; p < 4; ++p) {
    EXPECT_LT(w.position(p, m1), w.position(p, m2)) << "p" << p;
    EXPECT_LT(w.position(p, m2), w.position(p, m3)) << "p" << p;
  }
}

TEST(CausalBroadcast, ConcurrentMessagesDeliverInAnyOrderButEverywhere) {
  CausalWorld w(4, sim::LinkModel{usec(300), usec(400), 0.1}, 9);
  std::set<MsgId> sent;
  for (int i = 0; i < 5; ++i) {
    for (ProcessId p = 0; p < 4; ++p) {
      sent.insert(w.procs[static_cast<std::size_t>(p)].cbcast->cbcast(bytes_of("c")));
    }
  }
  ASSERT_TRUE(test::run_until(w.engine, sec(10), [&] { return w.everyone_delivered(20); }));
  for (auto& p : w.procs) {
    std::set<MsgId> got(p.order.begin(), p.order.end());
    EXPECT_EQ(got, sent);
  }
}

/// Property: causal order holds under random traffic with jitter and loss.
/// We reconstruct happened-before from (sender fifo + delivered-before-sent)
/// and check every pair at every process.
class CausalProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CausalProperty, HappenedBeforeRespected) {
  const std::uint64_t seed = GetParam();
  Rng rng(seed);
  CausalWorld w(4, sim::LinkModel{usec(100 + rng.next_range(0, 300)),
                                  usec(rng.next_range(0, 800)), rng.next_double() * 0.15},
                seed);
  // Record, for each broadcast, the sender's delivery count at send time —
  // enough to reconstruct causality: m -> m' iff sender(m') had delivered m
  // before sending m', or same sender and earlier.
  struct SendInfo {
    MsgId id;
    ProcessId sender;
    std::vector<MsgId> seen;  // messages delivered at sender before send
  };
  std::vector<SendInfo> sends;
  for (int i = 0; i < 24; ++i) {
    const auto p = static_cast<ProcessId>(rng.next_below(4));
    auto& proc = w.procs[static_cast<std::size_t>(p)];
    SendInfo info;
    info.sender = p;
    info.seen = proc.order;
    info.id = proc.cbcast->cbcast(bytes_of(std::to_string(i)));
    sends.push_back(std::move(info));
    w.engine.run_until(w.engine.now() + rng.next_range(0, msec(2)));
  }
  ASSERT_TRUE(test::run_until(w.engine, sec(30), [&] { return w.everyone_delivered(24); }))
      << "seed=" << seed;
  for (const auto& m2 : sends) {
    for (const MsgId& m1 : m2.seen) {
      // m1 happened-before m2: check delivery order everywhere.
      for (ProcessId p = 0; p < 4; ++p) {
        EXPECT_LT(w.position(p, m1), w.position(p, m2.id))
            << "causality violated at p" << p << " seed=" << seed;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CausalProperty, ::testing::Range<std::uint64_t>(1, 16));

}  // namespace
}  // namespace gcs
