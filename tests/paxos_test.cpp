#include <gtest/gtest.h>

#include <map>
#include <memory>

#include "consensus/paxos.hpp"
#include "core/stack.hpp"
#include "tests/test_util.hpp"

namespace gcs {
namespace {

using test::bytes_of;
using test::consistent_prefix;
using test::str_of;

struct PaxosWorld {
  sim::Engine engine;
  sim::Network network;
  struct Proc {
    std::unique_ptr<sim::Context> ctx;
    std::unique_ptr<SimTransport> transport;
    std::unique_ptr<ReliableChannel> channel;
    std::unique_ptr<FailureDetector> fd;
    FailureDetector::ClassId fd_class = 0;
    std::unique_ptr<PaxosConsensus> paxos;
    std::map<std::uint64_t, std::string> decisions;
  };
  std::vector<Proc> procs;
  std::vector<ProcessId> all;

  explicit PaxosWorld(int n, sim::LinkModel link = {}, Duration suspect_timeout = msec(60),
                      std::uint64_t seed = 1)
      : network(engine, n, link, seed) {
    procs.resize(static_cast<std::size_t>(n));
    for (ProcessId p = 0; p < n; ++p) {
      all.push_back(p);
      auto& proc = procs[static_cast<std::size_t>(p)];
      proc.ctx = std::make_unique<sim::Context>(
          p, engine, Rng(seed * 91 + static_cast<std::uint64_t>(p)), Logger(),
          std::make_shared<Metrics>());
      proc.transport = std::make_unique<SimTransport>(*proc.ctx, network);
      proc.channel = std::make_unique<ReliableChannel>(*proc.ctx, *proc.transport);
      proc.fd = std::make_unique<FailureDetector>(*proc.ctx, *proc.transport);
      proc.fd_class = proc.fd->add_class(suspect_timeout);
      proc.paxos = std::make_unique<PaxosConsensus>(*proc.ctx, *proc.channel, *proc.fd,
                                                    proc.fd_class);
      proc.paxos->on_decide([&proc](std::uint64_t k, const Bytes& v) {
        ASSERT_EQ(proc.decisions.count(k), 0u) << "double decide";
        proc.decisions[k] = str_of(v);
      });
      proc.fd->start();
    }
  }

  void crash(ProcessId p) {
    procs[static_cast<std::size_t>(p)].ctx->kill();
    network.crash(p);
  }

  bool all_alive_decided(std::uint64_t k) {
    for (ProcessId p = 0; p < static_cast<ProcessId>(procs.size()); ++p) {
      if (!network.alive(p)) continue;
      if (!procs[static_cast<std::size_t>(p)].decisions.count(k)) return false;
    }
    return true;
  }

  std::string agreed_value(std::uint64_t k) {
    std::string value;
    for (auto& proc : procs) {
      auto it = proc.decisions.find(k);
      if (it == proc.decisions.end()) continue;
      if (value.empty()) value = it->second;
      else EXPECT_EQ(value, it->second) << "paxos agreement violated at " << k;
    }
    return value;
  }
};

TEST(Paxos, FailureFreeDecides) {
  PaxosWorld w(3);
  for (ProcessId p = 0; p < 3; ++p) {
    w.procs[static_cast<std::size_t>(p)].paxos->propose(
        0, bytes_of("v" + std::to_string(p)), w.all);
  }
  ASSERT_TRUE(test::run_until(w.engine, sec(5), [&] { return w.all_alive_decided(0); }));
  const std::string v = w.agreed_value(0);
  EXPECT_TRUE(v == "v0" || v == "v1" || v == "v2") << v;
}

TEST(Paxos, SingleProposerDecides) {
  PaxosWorld w(3);
  w.procs[1].paxos->propose(0, bytes_of("lone"), w.all);
  ASSERT_TRUE(test::run_until(w.engine, sec(5), [&] { return w.all_alive_decided(0); }));
  EXPECT_EQ(w.agreed_value(0), "lone");
}

TEST(Paxos, BallotZeroOwnerCrashTriggersTakeover) {
  PaxosWorld w(5);
  for (ProcessId p = 0; p < 5; ++p) {
    w.procs[static_cast<std::size_t>(p)].paxos->propose(
        0, bytes_of("v" + std::to_string(p)), w.all);
  }
  w.engine.run_until(usec(200));
  w.crash(0);  // ballot-0 owner
  ASSERT_TRUE(test::run_until(w.engine, sec(10), [&] { return w.all_alive_decided(0); }));
  w.agreed_value(0);
}

TEST(Paxos, SafeUnderFalseSuspicionOfLeader) {
  PaxosWorld w(3);
  for (ProcessId p = 0; p < 3; ++p) {
    w.procs[static_cast<std::size_t>(p)].paxos->propose(
        0, bytes_of("v" + std::to_string(p)), w.all);
  }
  // Two processes wrongly suspect the ballot-0 owner: dueling ballots must
  // still agree on ONE value.
  w.procs[1].fd->monitor(w.procs[1].fd_class, 0);
  w.procs[1].fd->inject_suspicion(w.procs[1].fd_class, 0);
  w.procs[2].fd->monitor(w.procs[2].fd_class, 0);
  w.procs[2].fd->inject_suspicion(w.procs[2].fd_class, 0);
  ASSERT_TRUE(test::run_until(w.engine, sec(10), [&] { return w.all_alive_decided(0); }));
  w.agreed_value(0);
}

TEST(Paxos, ManyInstances) {
  PaxosWorld w(3);
  const int kInstances = 15;
  for (std::uint64_t k = 0; k < kInstances; ++k) {
    for (ProcessId p = 0; p < 3; ++p) {
      w.procs[static_cast<std::size_t>(p)].paxos->propose(
          k, bytes_of("k" + std::to_string(k)), w.all);
    }
  }
  ASSERT_TRUE(test::run_until(w.engine, sec(30), [&] {
    for (std::uint64_t k = 0; k < kInstances; ++k) {
      if (!w.all_alive_decided(k)) return false;
    }
    return true;
  }));
  for (std::uint64_t k = 0; k < kInstances; ++k) {
    EXPECT_EQ(w.agreed_value(k), "k" + std::to_string(k));
  }
}

TEST(Paxos, LossyNetworkTerminates) {
  PaxosWorld w(5, sim::LinkModel{usec(300), usec(300), 0.2}, msec(60), 43);
  for (ProcessId p = 0; p < 5; ++p) {
    w.procs[static_cast<std::size_t>(p)].paxos->propose(
        0, bytes_of("v" + std::to_string(p)), w.all);
  }
  ASSERT_TRUE(test::run_until(w.engine, sec(30), [&] { return w.all_alive_decided(0); }));
  w.agreed_value(0);
}

class PaxosProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PaxosProperty, AgreementValidityTermination) {
  const std::uint64_t seed = GetParam();
  Rng rng(seed);
  const int n = 3 + static_cast<int>(rng.next_below(4));  // 3..6
  const int crashes =
      static_cast<int>(rng.next_below(static_cast<std::uint64_t>((n - 1) / 2 + 1)));
  sim::LinkModel link{usec(100 + rng.next_range(0, 400)), usec(rng.next_range(0, 400)),
                      rng.next_double() * 0.15};
  PaxosWorld w(n, link, msec(60), seed);
  for (ProcessId p = 0; p < n; ++p) {
    w.procs[static_cast<std::size_t>(p)].paxos->propose(
        0, bytes_of("v" + std::to_string(p)), w.all);
  }
  std::set<ProcessId> crashed;
  for (int i = 0; i < crashes; ++i) {
    ProcessId victim;
    do {
      victim = static_cast<ProcessId>(rng.next_below(static_cast<std::uint64_t>(n)));
    } while (crashed.count(victim));
    crashed.insert(victim);
    w.engine.schedule_at(rng.next_range(0, msec(2)), [&w, victim] { w.crash(victim); });
  }
  ASSERT_TRUE(test::run_until(w.engine, sec(60), [&] { return w.all_alive_decided(0); }))
      << "n=" << n << " crashes=" << crashes << " seed=" << seed;
  const std::string v = w.agreed_value(0);
  ASSERT_FALSE(v.empty());
  EXPECT_EQ(v[0], 'v');
}

INSTANTIATE_TEST_SUITE_P(Seeds, PaxosProperty, ::testing::Range<std::uint64_t>(1, 21));

/// The whole architecture on top of Paxos instead of Chandra–Toueg.
TEST(PaxosStack, FullStackTotalOrderAndMembership) {
  World::Config cfg;
  cfg.n = 4;
  cfg.seed = 17;
  cfg.stack.consensus_algorithm = StackConfig::ConsensusAlgo::kPaxos;
  cfg.stack.monitoring.exclusion_timeout = msec(700);
  World w(cfg);
  std::vector<test::DeliveryLog> logs(4);
  for (ProcessId p = 0; p < 4; ++p) {
    w.stack(p).on_adeliver([&logs, p](const MsgId& id, const Bytes& b) {
      logs[static_cast<std::size_t>(p)].record(id, b);
    });
  }
  w.found_group({0, 1, 2});
  for (int i = 0; i < 10; ++i) {
    w.stack(static_cast<ProcessId>(i % 3)).abcast(bytes_of(std::to_string(i)));
  }
  ASSERT_TRUE(test::run_until(w.engine(), sec(30), [&] {
    return logs[0].size() >= 10 && logs[1].size() >= 10 && logs[2].size() >= 10;
  }));
  // Membership on Paxos: join works identically.
  w.stack(3).join(0);
  ASSERT_TRUE(test::run_until(w.engine(), sec(10),
                              [&] { return w.stack(3).membership().is_member(); }));
  // Crash + exclusion on Paxos.
  w.crash(2);
  ASSERT_TRUE(test::run_until(w.engine(), sec(10),
                              [&] { return !w.stack(0).view().contains(2); }));
  w.stack(3).abcast(bytes_of("post"));
  ASSERT_TRUE(test::run_until(w.engine(), sec(10), [&] { return logs[0].size() >= 11; }));
  EXPECT_TRUE(consistent_prefix(logs[0].order, logs[1].order));
  EXPECT_GT(w.stack(0).metrics().counter("paxos.decided"), 0);
}

TEST(PaxosStack, GenericBroadcastFastPathUnaffectedByAlgorithm) {
  World::Config cfg;
  cfg.n = 4;
  cfg.seed = 23;
  cfg.stack.consensus_algorithm = StackConfig::ConsensusAlgo::kPaxos;
  World w(cfg);
  std::size_t delivered = 0;
  w.stack(0).on_gdeliver([&](const MsgId&, MsgClass, const Bytes&) { ++delivered; });
  w.found_group_all();
  for (int i = 0; i < 8; ++i) {
    w.stack(static_cast<ProcessId>(i % 4)).rbcast(bytes_of(std::to_string(i)));
  }
  ASSERT_TRUE(test::run_until(w.engine(), sec(10), [&] { return delivered >= 8; }));
  // Thrifty regardless of the consensus below: nothing decided.
  EXPECT_EQ(w.stack(0).consensus().instances_decided(), 0);
}

}  // namespace
}  // namespace gcs
