/// Generic broadcast with richer conflict relations than the paper's 2x2
/// tables: per-account command classes for a multi-account bank. Deposits
/// to ANY account commute with each other; a withdrawal conflicts only
/// with operations on ITS OWN account (and with other withdrawals there),
/// so independent accounts never pay for each other's ordering.
#include <gtest/gtest.h>

#include <map>

#include "core/stack.hpp"
#include "replication/state_machine.hpp"
#include "tests/test_util.hpp"

namespace gcs {
namespace {

using test::bytes_of;

/// Classes: 0 = deposit (any account, commutes with everything but
/// withdrawals on the same account is unknowable per-class... so classes
/// are per-account: class 2k = deposit to account k, 2k+1 = withdrawal on
/// account k. Deposits commute with everything except withdrawals of the
/// SAME account; withdrawals conflict with everything on their account.
ConflictRelation per_account_relation(int accounts) {
  ConflictRelation rel(2 * accounts);
  for (int a = 0; a < accounts; ++a) {
    const auto dep = static_cast<MsgClass>(2 * a);
    const auto wdr = static_cast<MsgClass>(2 * a + 1);
    rel.set_conflict(dep, wdr);
    rel.set_conflict(wdr, wdr);
  }
  return rel;
}

struct MultiBank {
  std::map<int, std::int64_t> balances;
  void apply(int account, std::int64_t delta, bool is_withdrawal) {
    auto& b = balances[account];
    if (is_withdrawal) {
      if (delta <= b) b -= delta;
    } else {
      b += delta;
    }
  }
};

TEST(MultiClassConflict, RelationShape) {
  const auto rel = per_account_relation(3);
  // Same account: deposit vs withdrawal conflict; withdrawals conflict.
  EXPECT_TRUE(rel.conflicts(0, 1));
  EXPECT_TRUE(rel.conflicts(1, 1));
  EXPECT_FALSE(rel.conflicts(0, 0));
  // Different accounts: nothing conflicts.
  EXPECT_FALSE(rel.conflicts(0, 2));
  EXPECT_FALSE(rel.conflicts(1, 3));
  EXPECT_FALSE(rel.conflicts(1, 2));
  // Unknown classes are conservatively conflicting.
  EXPECT_TRUE(rel.conflicts(6, 0));
}

TEST(MultiClassConflict, IndependentAccountsSkipConsensus) {
  World::Config cfg;
  cfg.n = 4;
  cfg.seed = 3;
  cfg.stack.conflict = per_account_relation(4);
  World w(cfg);
  test::ScenarioOracle oracle(w, msec(20), 3);
  std::size_t delivered = 0;
  w.stack(0).on_gdeliver([&](const MsgId&, MsgClass, const Bytes&) { ++delivered; });
  w.found_group_all();
  // Withdrawals on DIFFERENT accounts: class 1, 3, 5, 7 — no two conflict.
  for (int a = 0; a < 4; ++a) {
    w.stack(static_cast<ProcessId>(a)).gbcast(static_cast<MsgClass>(2 * a + 1),
                                              bytes_of("w" + std::to_string(a)));
  }
  ASSERT_TRUE(test::run_until(w.engine(), sec(5), [&] { return delivered >= 4; }));
  EXPECT_EQ(w.stack(0).consensus().instances_decided(), 0)
      << "independent accounts must not pay for ordering";
  w.run_for(msec(500));  // let the other processes finish before finalize
}

TEST(MultiClassConflict, SameAccountOrdersConsistently) {
  World::Config cfg;
  cfg.n = 4;
  cfg.seed = 5;
  cfg.stack.conflict = per_account_relation(2);
  World w(cfg);
  test::ScenarioOracle oracle(w, msec(20), 5);
  // Replay deliveries into per-process banks; same-account races must end
  // in the same state everywhere.
  std::vector<MultiBank> banks(4);
  std::vector<std::size_t> counts(4, 0);
  for (ProcessId p = 0; p < 4; ++p) {
    w.stack(p).on_gdeliver([&banks, &counts, p](const MsgId&, MsgClass cls, const Bytes& b) {
      Decoder dec(b);
      const std::int64_t amount = dec.get_i64();
      banks[static_cast<std::size_t>(p)].apply(cls / 2, amount, cls % 2 == 1);
      ++counts[static_cast<std::size_t>(p)];
    });
  }
  w.found_group_all();
  auto op = [&](ProcessId from, int account, std::int64_t amount, bool withdrawal) {
    Encoder enc;
    enc.put_i64(amount);
    w.stack(from).gbcast(static_cast<MsgClass>(2 * account + (withdrawal ? 1 : 0)),
                         enc.take());
  };
  // Fund both accounts, then race withdrawals against each other and
  // against deposits on the same account.
  op(0, 0, 100, false);
  op(1, 1, 100, false);
  ASSERT_TRUE(test::run_until(w.engine(), sec(5), [&] { return counts[0] >= 2; }));
  op(0, 0, 70, true);   // withdrawal on account 0...
  op(1, 0, 70, true);   // ...racing another withdrawal on account 0
  op(2, 1, 30, true);   // meanwhile account 1 proceeds independently
  op(3, 1, 5, false);
  ASSERT_TRUE(test::run_until(w.engine(), sec(30), [&] {
    for (auto c : counts) {
      if (c < 6) return false;
    }
    return true;
  }));
  // Exactly one of the racing withdrawals succeeded, identically everywhere.
  for (ProcessId p = 0; p < 4; ++p) {
    EXPECT_EQ(banks[static_cast<std::size_t>(p)].balances[0], 30)
        << "account 0 at p" << p;
    EXPECT_EQ(banks[static_cast<std::size_t>(p)].balances[1], 75)
        << "account 1 at p" << p;
  }
}

/// Property over seeds: per-account sequential consistency with random ops.
class MultiClassProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MultiClassProperty, AccountsConvergeEverywhere) {
  const std::uint64_t seed = GetParam();
  Rng rng(seed);
  const int accounts = 3;
  World::Config cfg;
  cfg.n = 4;
  cfg.seed = seed;
  cfg.stack.conflict = per_account_relation(accounts);
  cfg.link.jitter = usec(rng.next_range(0, 500));
  World w(cfg);
  test::ScenarioOracle oracle(w, msec(20), seed);
  std::vector<MultiBank> banks(4);
  std::vector<std::size_t> counts(4, 0);
  for (ProcessId p = 0; p < 4; ++p) {
    w.stack(p).on_gdeliver([&banks, &counts, p](const MsgId&, MsgClass cls, const Bytes& b) {
      Decoder dec(b);
      banks[static_cast<std::size_t>(p)].apply(cls / 2, dec.get_i64(), cls % 2 == 1);
      ++counts[static_cast<std::size_t>(p)];
    });
  }
  w.found_group_all();
  const int kOps = 18;
  for (int i = 0; i < kOps; ++i) {
    const int account = static_cast<int>(rng.next_below(accounts));
    const bool withdrawal = rng.chance(0.4);
    Encoder enc;
    enc.put_i64(rng.next_range(1, 20));
    w.stack(static_cast<ProcessId>(rng.next_below(4)))
        .gbcast(static_cast<MsgClass>(2 * account + (withdrawal ? 1 : 0)), enc.take());
    w.run_for(rng.next_range(0, msec(2)));
  }
  ASSERT_TRUE(test::run_until(w.engine(), sec(60), [&] {
    for (auto c : counts) {
      if (c < kOps) return false;
    }
    return true;
  })) << "seed=" << seed;
  w.run_for(msec(200));
  for (ProcessId p = 1; p < 4; ++p) {
    EXPECT_EQ(banks[static_cast<std::size_t>(p)].balances, banks[0].balances)
        << "divergence at p" << p << " seed=" << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MultiClassProperty, ::testing::Range<std::uint64_t>(1, 13));

}  // namespace
}  // namespace gcs
