#include <gtest/gtest.h>

#include <memory>

#include "replication/lock_service.hpp"
#include "tests/test_util.hpp"

namespace gcs::replication {
namespace {

TEST(LockTable, AcquireReleaseQueueDiscipline) {
  LockTable t;
  auto r1 = LockTable::decode_result(t.apply(LockTable::make_acquire("L", "a")));
  EXPECT_TRUE(r1.first);
  EXPECT_EQ(r1.second, "a");
  auto r2 = LockTable::decode_result(t.apply(LockTable::make_acquire("L", "b")));
  EXPECT_FALSE(r2.first);
  EXPECT_EQ(r2.second, "a");
  EXPECT_EQ(t.queue_length("L"), 2u);
  t.apply(LockTable::make_release("L", "a"));
  EXPECT_EQ(t.holder("L"), "b");
  t.apply(LockTable::make_release("L", "b"));
  EXPECT_EQ(t.holder("L"), "");
  // Grant log recorded the full holder sequence.
  ASSERT_EQ(t.grant_log().size(), 2u);
  EXPECT_EQ(t.grant_log()[0].second, "a");
  EXPECT_EQ(t.grant_log()[1].second, "b");
}

TEST(LockTable, DuplicateAcquireIsIdempotent) {
  LockTable t;
  t.apply(LockTable::make_acquire("L", "a"));
  t.apply(LockTable::make_acquire("L", "a"));
  EXPECT_EQ(t.queue_length("L"), 1u);
}

TEST(LockTable, AbandonQueueSlot) {
  LockTable t;
  t.apply(LockTable::make_acquire("L", "a"));
  t.apply(LockTable::make_acquire("L", "b"));
  // b leaves the queue without ever holding; no spurious grant.
  t.apply(LockTable::make_release("L", "b"));
  EXPECT_EQ(t.holder("L"), "a");
  EXPECT_EQ(t.grant_log().size(), 1u);
}

TEST(LockTable, CleanupGrantsOnward) {
  LockTable t;
  t.apply(LockTable::make_acquire("L1", "dead"));
  t.apply(LockTable::make_acquire("L1", "alive"));
  t.apply(LockTable::make_acquire("L2", "dead"));
  t.apply(LockTable::make_cleanup("dead"));
  EXPECT_EQ(t.holder("L1"), "alive");
  EXPECT_EQ(t.holder("L2"), "");
}

TEST(LockTable, SnapshotRoundTrip) {
  LockTable a;
  a.apply(LockTable::make_acquire("L", "x"));
  a.apply(LockTable::make_acquire("L", "y"));
  LockTable b;
  b.restore(a.snapshot());
  EXPECT_EQ(b.holder("L"), "x");
  EXPECT_EQ(b.queue_length("L"), 2u);
  EXPECT_EQ(b.grant_log(), a.grant_log());
}

struct LockWorld {
  World world;
  std::vector<std::unique_ptr<LockService>> services;

  explicit LockWorld(int n, std::uint64_t seed = 1, Duration exclusion = sec(60))
      : world(make(n, seed, exclusion)) {
    world.found_group_all();
    for (ProcessId p = 0; p < n; ++p) {
      services.push_back(std::make_unique<LockService>(world.stack(p)));
    }
  }
  static World::Config make(int n, std::uint64_t seed, Duration exclusion) {
    World::Config c;
    c.n = n;
    c.seed = seed;
    c.stack.monitoring.exclusion_timeout = exclusion;
    return c;
  }
};

TEST(LockService, MutualExclusionUnderContention) {
  LockWorld w(4, 3);
  std::vector<int> grant_order;
  for (ProcessId p = 0; p < 4; ++p) {
    w.services[static_cast<std::size_t>(p)]->acquire(
        "mutex", [&grant_order, p, &w](const std::string&) {
          grant_order.push_back(p);
          // Hold briefly, then release.
          w.world.engine().schedule_after(msec(5), [&w, p] {
            w.services[static_cast<std::size_t>(p)]->release("mutex");
          });
        });
  }
  ASSERT_TRUE(test::run_until(w.world.engine(), sec(30),
                              [&] { return grant_order.size() == 4; }));
  w.world.run_for(msec(500));  // let every replica apply the trailing grants
  // Every replica saw the same holder sequence (mutual exclusion audit).
  const auto& ref = w.services[0]->table().grant_log();
  EXPECT_EQ(ref.size(), 4u);
  for (ProcessId p = 1; p < 4; ++p) {
    EXPECT_EQ(w.services[static_cast<std::size_t>(p)]->table().grant_log(), ref);
  }
  // All four distinct processes were granted exactly once.
  std::set<int> uniq(grant_order.begin(), grant_order.end());
  EXPECT_EQ(uniq.size(), 4u);
}

TEST(LockService, CrashedHolderIsCleanedUpAfterExclusion) {
  LockWorld w(4, 7, msec(500));
  bool p1_granted = false;
  w.services[0]->acquire("mutex", [](const std::string&) {});
  ASSERT_TRUE(test::run_until(w.world.engine(), sec(5),
                              [&] { return w.services[0]->holds("mutex"); }));
  w.services[1]->acquire("mutex", [&](const std::string&) { p1_granted = true; });
  w.world.run_for(msec(50));
  EXPECT_FALSE(p1_granted);
  // The holder dies; monitoring excludes it; the view head submits cleanup;
  // p1 inherits the lock.
  w.world.crash(0);
  ASSERT_TRUE(test::run_until(w.world.engine(), sec(20), [&] { return p1_granted; }));
  EXPECT_TRUE(w.services[1]->holds("mutex"));
}

TEST(LockService, IndependentLocksDontInterfere) {
  LockWorld w(3, 9);
  bool a = false, b = false;
  w.services[0]->acquire("lock-a", [&](const std::string&) { a = true; });
  w.services[1]->acquire("lock-b", [&](const std::string&) { b = true; });
  ASSERT_TRUE(test::run_until(w.world.engine(), sec(10), [&] { return a && b; }));
  EXPECT_TRUE(w.services[0]->holds("lock-a"));
  EXPECT_TRUE(w.services[1]->holds("lock-b"));
  EXPECT_FALSE(w.services[0]->holds("lock-b"));
}

}  // namespace
}  // namespace gcs::replication
