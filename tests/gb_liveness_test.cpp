/// Generic-broadcast liveness under crashes DURING resolution: a round's
/// resolution waits for n−f adelivered reports; if a member dies before
/// reporting, the round can only finish once the membership excludes the
/// corpse and the quorum arithmetic shrinks (set_group → re-finalize).
#include <gtest/gtest.h>

#include "core/stack.hpp"
#include "tests/test_util.hpp"

namespace gcs {
namespace {

using test::bytes_of;

TEST(GbLiveness, ResolutionSurvivesReporterCrashViaExclusion) {
  StackConfig sc;
  sc.monitoring.exclusion_timeout = msec(500);
  sc.gb.resolve_timeout = msec(100);
  World::Config cfg;
  cfg.n = 5;  // f = 1 for GB; consensus survives 2 crashes
  cfg.seed = 21;
  cfg.stack = sc;
  World w(cfg);
  test::ScenarioOracle oracle(w, msec(20), 21);
  std::vector<std::vector<MsgId>> logs(5);
  for (ProcessId p = 0; p < 5; ++p) {
    w.stack(p).on_gdeliver([&logs, p](const MsgId& id, MsgClass, const Bytes&) {
      logs[static_cast<std::size_t>(p)].push_back(id);
    });
  }
  w.found_group_all();
  // Two conflicting messages force a resolution...
  w.stack(0).gbcast(kAbcastClass, bytes_of("x"));
  w.stack(1).gbcast(kAbcastClass, bytes_of("y"));
  // ...and TWO members die immediately: only 3 of 5 are alive, below the
  // n−f = 4 report quorum, so (unless their reports were already on the
  // wire) the round stalls until the monitoring exclusions shrink the view
  // to 3 members and set_group() re-finalizes with report_need = 3.
  // Consensus itself survives (3 is a majority of 5), so the exclusions
  // can still be ordered.
  w.run_for(usec(400));
  w.crash(3);
  w.crash(4);
  ASSERT_TRUE(test::run_until(w.engine(), sec(30), [&] {
    for (ProcessId p = 0; p < 3; ++p) {
      if (logs[static_cast<std::size_t>(p)].size() < 2) return false;
    }
    return true;
  }));
  // Conflicting pair ordered identically at the survivors.
  for (ProcessId p = 1; p < 3; ++p) {
    EXPECT_EQ(logs[static_cast<std::size_t>(p)], logs[0]);
  }
  ASSERT_TRUE(test::run_until(w.engine(), sec(30), [&] {
    return !w.stack(0).view().contains(3) && !w.stack(0).view().contains(4);
  }));
  w.run_for(sec(1));  // settle before the oracle's finalize-time checks
}

TEST(GbLiveness, ResolutionAcrossAJoin) {
  // A join lands in the middle of a resolution round: the reports and the
  // view change share the total order, so every member still computes the
  // same first/second sets.
  World::Config cfg;
  cfg.n = 5;
  cfg.seed = 33;
  World w(cfg);
  test::ScenarioOracle oracle(w, msec(20), 33);
  std::vector<std::vector<MsgId>> logs(5);
  for (ProcessId p = 0; p < 5; ++p) {
    w.stack(p).on_gdeliver([&logs, p](const MsgId& id, MsgClass, const Bytes&) {
      logs[static_cast<std::size_t>(p)].push_back(id);
    });
  }
  w.found_group({0, 1, 2, 3});
  // Kick off conflicting traffic and the join "simultaneously".
  w.stack(0).gbcast(kAbcastClass, bytes_of("m1"));
  w.stack(2).gbcast(kAbcastClass, bytes_of("m2"));
  w.stack(4).join(1);
  ASSERT_TRUE(test::run_until(w.engine(), sec(30), [&] {
    if (!w.stack(4).membership().is_member()) return false;
    for (ProcessId p = 0; p < 4; ++p) {
      if (logs[static_cast<std::size_t>(p)].size() < 2) return false;
    }
    return true;
  }));
  for (ProcessId p = 1; p < 4; ++p) {
    EXPECT_EQ(logs[static_cast<std::size_t>(p)], logs[0]);
  }
  // Post-join gbcast reaches the joiner too.
  w.stack(4).gbcast(kAbcastClass, bytes_of("m3"));
  ASSERT_TRUE(test::run_until(w.engine(), sec(20), [&] {
    return !logs[4].empty() && logs[0].size() >= 3;
  }));
  w.run_for(sec(1));  // settle before the oracle's finalize-time checks
}

TEST(GbLiveness, FastPathRecoversAfterRoundEnds) {
  // After a resolution round, the next round's fast path works again: a
  // fresh non-conflicting message avoids consensus.
  World::Config cfg;
  cfg.n = 4;
  cfg.seed = 9;
  World w(cfg);
  test::ScenarioOracle oracle(w, msec(20), 9);
  std::size_t delivered = 0;
  w.stack(0).on_gdeliver([&](const MsgId&, MsgClass, const Bytes&) { ++delivered; });
  w.found_group_all();
  w.stack(0).gbcast(kAbcastClass, bytes_of("c1"));
  w.stack(1).gbcast(kAbcastClass, bytes_of("c2"));
  ASSERT_TRUE(test::run_until(w.engine(), sec(20), [&] { return delivered >= 2; }));
  const auto consensus_after_resolution = w.stack(0).consensus().instances_decided();
  const auto fast_before = w.stack(0).generic_broadcast().fast_deliveries();
  w.stack(2).rbcast(bytes_of("fresh"));
  ASSERT_TRUE(test::run_until(w.engine(), sec(10), [&] { return delivered >= 3; }));
  w.run_for(msec(100));
  EXPECT_GT(w.stack(0).generic_broadcast().fast_deliveries(), fast_before);
  EXPECT_EQ(w.stack(0).consensus().instances_decided(), consensus_after_resolution);
  w.run_for(sec(1));  // settle before the oracle's finalize-time checks
}

}  // namespace
}  // namespace gcs
