/// Edge cases of the garbage-collection paths: consensus decision
/// forgetting, graceful leave, network taps.
#include <gtest/gtest.h>

#include "core/stack.hpp"
#include "tests/test_util.hpp"

namespace gcs {
namespace {

using test::bytes_of;

TEST(GcEdge, ConsensusForgetsOldDecisionValues) {
  World::Config cfg;
  cfg.n = 3;
  cfg.seed = 2;
  World w(cfg);
  std::size_t delivered = 0;
  w.stack(0).on_adeliver([&](const MsgId&, const Bytes&) { ++delivered; });
  w.found_group_all();
  // Drive well past the 16-instance forget tail.
  for (int i = 0; i < 40; ++i) {
    w.stack(static_cast<ProcessId>(i % 3)).abcast(bytes_of(std::to_string(i)));
    w.run_for(msec(5));
  }
  ASSERT_TRUE(test::run_until(w.engine(), sec(30), [&] { return delivered >= 40; }));
  // decided(k) for an ancient instance is now false (value forgotten) but
  // ordering state is intact: more traffic still flows and stays ordered.
  EXPECT_FALSE(w.stack(0).consensus().decided(0));
  EXPECT_GE(w.stack(0).atomic_broadcast().next_instance(), 17u);
  w.stack(1).abcast(bytes_of("after-gc"));
  ASSERT_TRUE(test::run_until(w.engine(), sec(10), [&] { return delivered >= 41; }));
}

TEST(GcEdge, GracefulLeaveStopsHeartbeatsWithoutSuspicion) {
  World::Config cfg;
  cfg.n = 3;
  cfg.seed = 4;
  cfg.stack.monitoring.exclusion_timeout = msec(400);
  World w(cfg);
  w.found_group_all();
  w.run_for(msec(100));
  w.stack(2).leave();
  ASSERT_TRUE(test::run_until(w.engine(), sec(10), [&] {
    return !w.stack(0).view().contains(2) && !w.stack(2).membership().is_member();
  }));
  // No suspicion-driven churn afterwards: the view stays {0,1}.
  const auto views = w.stack(0).membership().views_installed();
  w.run_for(sec(2));
  EXPECT_EQ(w.stack(0).membership().views_installed(), views);
  EXPECT_EQ(w.stack(0).view().members, (std::vector<ProcessId>{0, 1}));
  // The leave was voluntary: monitoring never had to request an exclusion.
  EXPECT_EQ(w.stack(0).metrics().counter("monitoring.exclusions_requested"), 0);
}

TEST(GcEdge, NetworkTapSeesEveryDatagram) {
  World::Config cfg;
  cfg.n = 3;
  cfg.seed = 6;
  World w(cfg);
  std::int64_t tapped = 0;
  std::int64_t tapped_bytes = 0;
  w.network().set_tap([&](ProcessId, ProcessId, const Bytes& b) {
    ++tapped;
    tapped_bytes += static_cast<std::int64_t>(b.size());
  });
  w.found_group_all();
  w.stack(0).abcast(bytes_of("traced"));
  w.run_for(msec(100));
  EXPECT_EQ(tapped, w.network().metrics().counter("net.sent"));
  EXPECT_EQ(tapped_bytes, w.network().metrics().counter("net.bytes_sent"));
  EXPECT_GT(tapped, 0);
}

}  // namespace
}  // namespace gcs
