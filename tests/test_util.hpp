/// \file test_util.hpp
/// Shared helpers for the nggcs test suite.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "core/stack.hpp"
#include "util/types.hpp"

namespace gcs::test {

inline Bytes bytes_of(const std::string& s) { return Bytes(s.begin(), s.end()); }

inline std::string str_of(const Bytes& b) { return std::string(b.begin(), b.end()); }

/// Run the engine until \p predicate holds or \p budget of virtual time has
/// elapsed. Returns true iff the predicate held. The predicate is checked
/// after every event, so self-perpetuating timers (heartbeats) don't hang
/// the test.
inline bool run_until(sim::Engine& engine, Duration budget,
                      const std::function<bool()>& predicate) {
  const TimePoint deadline = engine.now() + budget;
  while (!predicate()) {
    if (engine.now() > deadline) return false;
    if (!engine.step()) return predicate();
  }
  return true;
}

inline bool run_until(World& world, Duration budget, const std::function<bool()>& predicate) {
  return run_until(world.engine(), budget, predicate);
}

/// Records one process's deliveries for order/agreement assertions.
struct DeliveryLog {
  std::vector<MsgId> order;
  std::vector<std::string> payloads;

  void record(const MsgId& id, const Bytes& payload) {
    order.push_back(id);
    payloads.push_back(str_of(payload));
  }
  std::size_t size() const { return order.size(); }
};

/// True iff \p a is a prefix of \p b or vice versa (total-order check for
/// logs of different lengths).
inline bool consistent_prefix(const std::vector<MsgId>& a, const std::vector<MsgId>& b) {
  const std::size_t n = std::min(a.size(), b.size());
  for (std::size_t i = 0; i < n; ++i) {
    if (!(a[i] == b[i])) return false;
  }
  return true;
}

}  // namespace gcs::test
