/// \file test_util.hpp
/// Shared helpers for the nggcs test suite.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/stack.hpp"
#include "obs/exporters.hpp"
#include "obs/oracle.hpp"
#include "obs/probes.hpp"
#include "obs/report.hpp"
#include "obs/trace.hpp"
#include "util/types.hpp"

namespace gcs::test {

inline Bytes bytes_of(const std::string& s) { return Bytes(s.begin(), s.end()); }

inline std::string str_of(const Bytes& b) { return std::string(b.begin(), b.end()); }
inline std::string str_of(BytesView b) { return std::string(b.begin(), b.end()); }

/// Run the engine until \p predicate holds or \p budget of virtual time has
/// elapsed. Returns true iff the predicate held. The predicate is checked
/// after every event, so self-perpetuating timers (heartbeats) don't hang
/// the test.
inline bool run_until(sim::Engine& engine, Duration budget,
                      const std::function<bool()>& predicate) {
  const TimePoint deadline = engine.now() + budget;
  while (!predicate()) {
    if (engine.now() > deadline) return false;
    if (!engine.step()) return predicate();
  }
  return true;
}

inline bool run_until(World& world, Duration budget, const std::function<bool()>& predicate) {
  return run_until(world.engine(), budget, predicate);
}

/// Records one process's deliveries for order/agreement assertions.
struct DeliveryLog {
  std::vector<MsgId> order;
  std::vector<std::string> payloads;

  void record(const MsgId& id, const Bytes& payload) {
    order.push_back(id);
    payloads.push_back(str_of(payload));
  }
  std::size_t size() const { return order.size(); }
};

/// True iff \p a is a prefix of \p b or vice versa (total-order check for
/// logs of different lengths).
inline bool consistent_prefix(const std::vector<MsgId>& a, const std::vector<MsgId>& b) {
  const std::size_t n = std::min(a.size(), b.size());
  for (std::size_t i = 0; i < n; ++i) {
    if (!(a[i] == b[i])) return false;
  }
  return true;
}

/// Post-mortem flight recorder for protocol tests.
///
/// Construct one before the World and pass `fr.install(config.stack)` (or
/// set `config.stack.recorder = fr.recorder()` yourself). Tracing runs into
/// a bounded ring during the test; nothing is printed while the test
/// passes. If the test has a failed assertion when the FlightRecorder goes
/// out of scope, the last `tail` records (optionally restricted to one
/// process) are dumped to stderr, so the failure comes with the protocol
/// history that led to it.
class FlightRecorder {
 public:
  /// Dump-tail length; overridable with the NGGCS_TRACE_TAIL environment
  /// variable (useful when a failure needs deeper history than the
  /// default without recompiling).
  static std::size_t default_tail() {
    if (const char* env = std::getenv("NGGCS_TRACE_TAIL"); env && *env) {
      const long v = std::strtol(env, nullptr, 10);
      if (v > 0) return static_cast<std::size_t>(v);
    }
    return 64;
  }

  /// Ring capacity; grows with an oversized NGGCS_TRACE_TAIL so the
  /// requested tail actually fits.
  static std::size_t default_capacity() {
    const std::size_t tail = default_tail();
    return tail > 4096 ? tail : 4096;
  }

  explicit FlightRecorder(std::size_t capacity = default_capacity(),
                          std::size_t tail = default_tail())
      : recorder_(std::make_shared<obs::Recorder>(capacity)), tail_(tail) {}

  ~FlightRecorder() {
    if (!::testing::Test::HasFailure()) return;
    const auto records = recorder_->tail(proc_, tail_);
    if (records.empty()) return;
    std::fprintf(stderr, "--- flight recorder: last %zu trace records%s ---\n",
                 records.size(),
                 proc_ == kNoProcess ? ""
                                     : (" (p" + std::to_string(proc_) + ")").c_str());
    for (const obs::Record& r : records) {
      std::fprintf(stderr, "%s\n", obs::format_record(r).c_str());
    }
    std::fprintf(stderr, "--- end flight recorder ---\n");
  }

  /// Wire the recorder into a stack config (chainable at World setup).
  StackConfig& install(StackConfig& config) {
    config.recorder = recorder_;
    return config;
  }

  /// Restrict the failure dump to one process's records.
  void focus(ProcessId proc) { proc_ = proc; }

  const std::shared_ptr<obs::Recorder>& recorder() const { return recorder_; }

 private:
  std::shared_ptr<obs::Recorder> recorder_;
  std::size_t tail_;
  ProcessId proc_ = kNoProcess;
};

/// Runs a scenario test under the simulation-global protocol oracle.
///
///   World world(cfg);
///   ScenarioOracle oracle(world);       // before found_group()/join()
///   ... drive the scenario ...
///   // destructor: finalize() + EXPECT no violations + report emission
///
/// Construction taps every stack (attach_oracle) and, by default, starts
/// the state-probe sampler. Destruction finalizes the oracle, adds a test
/// failure listing every violation if any property was violated, and — when
/// NGGCS_REPORT_DIR is set — writes scenario_report_<test-name>.json.
///
/// Scenarios that intentionally end mid-flight (messages still undelivered)
/// can call skip_finalize(); the online safety checks still apply.
/// Negative tests that EXPECT violations call expect_violations().
class ScenarioOracle {
 public:
  explicit ScenarioOracle(World& world, Duration probe_cadence = msec(100),
                          std::uint64_t seed = 0)
      : world_(&world), seed_(seed) {
    world.attach_oracle(oracle_);
    if (probe_cadence > 0) world.enable_probes(probes_, probe_cadence);
  }

  ~ScenarioOracle() {
    if (!skip_finalize_) oracle_.finalize();
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    const std::string name = info ? std::string(info->test_suite_name()) + "." + info->name()
                                  : "scenario";
    if (!expect_violations_ && !oracle_.passed()) {
      ADD_FAILURE() << "protocol oracle violations in " << name << ":\n"
                    << oracle_.summary();
    }
    const std::string json =
        obs::render_scenario_report(name, seed_, oracle_, &probes_, metrics_);
    obs::write_scenario_report(name, json);
  }

  /// Leave the finalize-time agreement checks unchecked (mid-flight end).
  void skip_finalize() { skip_finalize_ = true; }
  /// Invert the destructor check: this scenario is SUPPOSED to violate.
  void expect_violations() { expect_violations_ = true; }
  /// Include this registry's counters/histograms in the report.
  void set_metrics(const Metrics* m) { metrics_ = m; }

  obs::Oracle& oracle() { return oracle_; }
  obs::Probes& probes() { return probes_; }

 private:
  World* world_;
  obs::Oracle oracle_;
  obs::Probes probes_;
  const Metrics* metrics_ = nullptr;
  std::uint64_t seed_ = 0;
  bool skip_finalize_ = false;
  bool expect_violations_ = false;
};

}  // namespace gcs::test
