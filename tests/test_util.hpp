/// \file test_util.hpp
/// Shared helpers for the nggcs test suite.
#pragma once

#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/stack.hpp"
#include "obs/exporters.hpp"
#include "obs/trace.hpp"
#include "util/types.hpp"

namespace gcs::test {

inline Bytes bytes_of(const std::string& s) { return Bytes(s.begin(), s.end()); }

inline std::string str_of(const Bytes& b) { return std::string(b.begin(), b.end()); }

/// Run the engine until \p predicate holds or \p budget of virtual time has
/// elapsed. Returns true iff the predicate held. The predicate is checked
/// after every event, so self-perpetuating timers (heartbeats) don't hang
/// the test.
inline bool run_until(sim::Engine& engine, Duration budget,
                      const std::function<bool()>& predicate) {
  const TimePoint deadline = engine.now() + budget;
  while (!predicate()) {
    if (engine.now() > deadline) return false;
    if (!engine.step()) return predicate();
  }
  return true;
}

inline bool run_until(World& world, Duration budget, const std::function<bool()>& predicate) {
  return run_until(world.engine(), budget, predicate);
}

/// Records one process's deliveries for order/agreement assertions.
struct DeliveryLog {
  std::vector<MsgId> order;
  std::vector<std::string> payloads;

  void record(const MsgId& id, const Bytes& payload) {
    order.push_back(id);
    payloads.push_back(str_of(payload));
  }
  std::size_t size() const { return order.size(); }
};

/// True iff \p a is a prefix of \p b or vice versa (total-order check for
/// logs of different lengths).
inline bool consistent_prefix(const std::vector<MsgId>& a, const std::vector<MsgId>& b) {
  const std::size_t n = std::min(a.size(), b.size());
  for (std::size_t i = 0; i < n; ++i) {
    if (!(a[i] == b[i])) return false;
  }
  return true;
}

/// Post-mortem flight recorder for protocol tests.
///
/// Construct one before the World and pass `fr.install(config.stack)` (or
/// set `config.stack.recorder = fr.recorder()` yourself). Tracing runs into
/// a bounded ring during the test; nothing is printed while the test
/// passes. If the test has a failed assertion when the FlightRecorder goes
/// out of scope, the last `tail` records (optionally restricted to one
/// process) are dumped to stderr, so the failure comes with the protocol
/// history that led to it.
class FlightRecorder {
 public:
  explicit FlightRecorder(std::size_t capacity = 4096, std::size_t tail = 64)
      : recorder_(std::make_shared<obs::Recorder>(capacity)), tail_(tail) {}

  ~FlightRecorder() {
    if (!::testing::Test::HasFailure()) return;
    const auto records = recorder_->tail(proc_, tail_);
    if (records.empty()) return;
    std::fprintf(stderr, "--- flight recorder: last %zu trace records%s ---\n",
                 records.size(),
                 proc_ == kNoProcess ? ""
                                     : (" (p" + std::to_string(proc_) + ")").c_str());
    for (const obs::Record& r : records) {
      std::fprintf(stderr, "%s\n", obs::format_record(r).c_str());
    }
    std::fprintf(stderr, "--- end flight recorder ---\n");
  }

  /// Wire the recorder into a stack config (chainable at World setup).
  StackConfig& install(StackConfig& config) {
    config.recorder = recorder_;
    return config;
  }

  /// Restrict the failure dump to one process's records.
  void focus(ProcessId proc) { proc_ = proc; }

  const std::shared_ptr<obs::Recorder>& recorder() const { return recorder_; }

 private:
  std::shared_ptr<obs::Recorder> recorder_;
  std::size_t tail_;
  ProcessId proc_ = kNoProcess;
};

}  // namespace gcs::test
