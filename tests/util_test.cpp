#include <gtest/gtest.h>

#include "util/codec.hpp"
#include "util/metrics.hpp"
#include "util/rng.hpp"
#include "util/types.hpp"

namespace gcs {
namespace {

TEST(Codec, VarintRoundTripSmall) {
  Encoder enc;
  enc.put_u64(0);
  enc.put_u64(1);
  enc.put_u64(127);
  enc.put_u64(128);
  Decoder dec(enc.bytes());
  EXPECT_EQ(dec.get_u64(), 0u);
  EXPECT_EQ(dec.get_u64(), 1u);
  EXPECT_EQ(dec.get_u64(), 127u);
  EXPECT_EQ(dec.get_u64(), 128u);
  EXPECT_TRUE(dec.ok());
  EXPECT_TRUE(dec.at_end());
}

TEST(Codec, VarintRoundTripLarge) {
  const std::uint64_t values[] = {1ull << 32, 1ull << 63, ~0ull, 0x123456789abcdefull};
  Encoder enc;
  for (auto v : values) enc.put_u64(v);
  Decoder dec(enc.bytes());
  for (auto v : values) EXPECT_EQ(dec.get_u64(), v);
  EXPECT_TRUE(dec.ok());
}

TEST(Codec, SignedZigzag) {
  const std::int64_t values[] = {0, -1, 1, -64, 64, INT64_MIN, INT64_MAX, -123456789};
  Encoder enc;
  for (auto v : values) enc.put_i64(v);
  Decoder dec(enc.bytes());
  for (auto v : values) EXPECT_EQ(dec.get_i64(), v);
  EXPECT_TRUE(dec.ok());
}

TEST(Codec, SmallNegativesAreCompact) {
  Encoder enc;
  enc.put_i64(-1);
  EXPECT_EQ(enc.size(), 1u);  // zigzag: -1 -> 1
}

TEST(Codec, StringsAndBytes) {
  Encoder enc;
  enc.put_string("hello");
  enc.put_string("");
  enc.put_bytes(Bytes{1, 2, 3});
  Decoder dec(enc.bytes());
  EXPECT_EQ(dec.get_string(), "hello");
  EXPECT_EQ(dec.get_string(), "");
  EXPECT_EQ(dec.get_bytes(), (Bytes{1, 2, 3}));
  EXPECT_TRUE(dec.ok());
}

TEST(Codec, MsgIdRoundTrip) {
  Encoder enc;
  enc.put_msgid(MsgId{7, 42});
  enc.put_msgid(MsgId{-1, 0});
  Decoder dec(enc.bytes());
  EXPECT_EQ(dec.get_msgid(), (MsgId{7, 42}));
  EXPECT_EQ(dec.get_msgid(), (MsgId{-1, 0}));
  EXPECT_TRUE(dec.ok());
}

TEST(Codec, VectorRoundTrip) {
  Encoder enc;
  std::vector<std::uint32_t> v{1, 2, 3, 500};
  enc.put_vector(v, [](Encoder& e, std::uint32_t x) { e.put_u32(x); });
  Decoder dec(enc.bytes());
  auto out = dec.get_vector<std::uint32_t>([](Decoder& d) { return d.get_u32(); });
  EXPECT_EQ(out, v);
  EXPECT_TRUE(dec.ok());
}

TEST(Codec, TruncatedInputFailsGracefully) {
  Encoder enc;
  enc.put_string("this is a long string");
  Bytes truncated = enc.take();
  truncated.resize(4);
  Decoder dec(truncated);
  (void)dec.get_string();
  EXPECT_FALSE(dec.ok());
}

TEST(Codec, HostileVectorLengthRejected) {
  Encoder enc;
  enc.put_u64(1ull << 40);  // claims 2^40 elements in a tiny buffer
  Decoder dec(enc.bytes());
  auto out = dec.get_vector<std::uint32_t>([](Decoder& d) { return d.get_u32(); });
  EXPECT_TRUE(out.empty());
  EXPECT_FALSE(dec.ok());
}

TEST(Codec, CorruptVarintFails) {
  Bytes bad(11, 0xff);  // continuation bit forever
  Decoder dec(bad);
  (void)dec.get_u64();
  EXPECT_FALSE(dec.ok());
}

TEST(Rng, Deterministic) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, NextBelowInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.next_below(17), 17u);
  }
  EXPECT_EQ(rng.next_below(0), 0u);
  EXPECT_EQ(rng.next_below(1), 0u);
}

TEST(Rng, RangeInclusive) {
  Rng rng(9);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.next_range(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, DoublesInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, ChanceExtremes) {
  Rng rng(13);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Rng, SplitIndependent) {
  Rng parent(5);
  Rng child = parent.split();
  // Child stream differs from the parent's continued stream.
  EXPECT_NE(parent.next_u64(), child.next_u64());
}

TEST(Histogram, Percentiles) {
  Histogram h;
  for (int i = 1; i <= 100; ++i) h.add(i);
  EXPECT_EQ(h.count(), 100u);
  EXPECT_EQ(h.min(), 1);
  EXPECT_EQ(h.max(), 100);
  EXPECT_DOUBLE_EQ(h.mean(), 50.5);
  EXPECT_NEAR(static_cast<double>(h.percentile(50)), 50.0, 1.0);
  EXPECT_NEAR(static_cast<double>(h.percentile(99)), 99.0, 1.0);
  EXPECT_EQ(h.percentile(0), 1);
  EXPECT_EQ(h.percentile(100), 100);
}

TEST(Histogram, Empty) {
  Histogram h;
  EXPECT_TRUE(h.empty());
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.max(), 0);
  EXPECT_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.percentile(50), 0);
}

TEST(Histogram, SingleSample) {
  Histogram h;
  h.add(42);
  // Every percentile of a one-sample distribution is that sample.
  EXPECT_EQ(h.percentile(0), 42);
  EXPECT_EQ(h.percentile(1), 42);
  EXPECT_EQ(h.percentile(50), 42);
  EXPECT_EQ(h.percentile(99), 42);
  EXPECT_EQ(h.percentile(100), 42);
  EXPECT_EQ(h.min(), 42);
  EXPECT_EQ(h.max(), 42);
  EXPECT_DOUBLE_EQ(h.mean(), 42.0);
}

TEST(Histogram, NearestRankIsExactOnSmallSets) {
  Histogram h;
  h.add(10);
  h.add(20);
  h.add(30);
  h.add(40);
  // Nearest-rank: rank = ceil(q/100 * n), 1-based. For n=4:
  // q=25 -> rank 1, q=50 -> rank 2, q=75 -> rank 3, q=76 -> rank 4.
  EXPECT_EQ(h.percentile(25), 10);
  EXPECT_EQ(h.percentile(50), 20);
  EXPECT_EQ(h.percentile(75), 30);
  EXPECT_EQ(h.percentile(76), 40);
  EXPECT_EQ(h.percentile(100), 40);
}

TEST(Histogram, DuplicateSamples) {
  Histogram h;
  for (int i = 0; i < 10; ++i) h.add(7);
  h.add(100);
  EXPECT_EQ(h.percentile(50), 7);
  EXPECT_EQ(h.percentile(90), 7);
  EXPECT_EQ(h.percentile(100), 100);
  EXPECT_EQ(h.min(), 7);
  EXPECT_EQ(h.max(), 100);
}

TEST(Histogram, CapBoundsRetainedSamples) {
  Histogram h;
  h.set_sample_cap(64);
  for (int i = 1; i <= 10000; ++i) h.add(i);
  // Exact running statistics survive decimation...
  EXPECT_EQ(h.count(), 10000u);
  EXPECT_EQ(h.min(), 1);
  EXPECT_EQ(h.max(), 10000);
  EXPECT_DOUBLE_EQ(h.mean(), 5000.5);
  // ...while the retained set stays bounded and uniformly spread.
  EXPECT_LT(h.samples().size(), 64u);
  EXPECT_GT(h.sample_stride(), 1u);
  // Percentiles come from the thinned set: approximate but in range.
  EXPECT_NEAR(static_cast<double>(h.percentile(50)), 5000.0, 512.0);
  EXPECT_EQ(h.percentile(0), 1);
  EXPECT_EQ(h.percentile(100), 10000);
}

TEST(Histogram, BelowCapStaysExact) {
  Histogram h;
  h.set_sample_cap(1024);
  for (int i = 1; i <= 1000; ++i) h.add(i);
  EXPECT_EQ(h.sample_stride(), 1u);
  EXPECT_EQ(h.samples().size(), 1000u);
  EXPECT_EQ(h.percentile(50), 500);
  EXPECT_EQ(h.percentile(99), 990);
}

TEST(Histogram, CapZeroDisablesDecimation) {
  Histogram h;
  h.set_sample_cap(0);
  for (int i = 0; i < 5000; ++i) h.add(i);
  EXPECT_EQ(h.samples().size(), 5000u);
  EXPECT_EQ(h.sample_stride(), 1u);
}

TEST(Histogram, DecimationIsDeterministic) {
  auto run = [] {
    Histogram h;
    h.set_sample_cap(32);
    for (int i = 0; i < 777; ++i) h.add(i * 3 % 101);
    return h.samples();
  };
  EXPECT_EQ(run(), run());
}

TEST(Histogram, ClearResetsCapState) {
  Histogram h;
  h.set_sample_cap(16);
  for (int i = 0; i < 100; ++i) h.add(i);
  h.clear();
  EXPECT_TRUE(h.empty());
  EXPECT_EQ(h.sample_stride(), 1u);
  h.add(5);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.percentile(50), 5);
}

TEST(Histogram, OutOfRangeQuantilesClamp) {
  Histogram h;
  h.add(1);
  h.add(2);
  h.add(3);
  EXPECT_EQ(h.percentile(-5), 1);    // clamps to min
  EXPECT_EQ(h.percentile(0), 1);
  EXPECT_EQ(h.percentile(100), 3);
  EXPECT_EQ(h.percentile(250), 3);   // clamps to max
}

TEST(Histogram, InterleavedAddAndQuery) {
  Histogram h;
  h.add(10);
  EXPECT_EQ(h.max(), 10);
  h.add(5);  // added after a sorted query
  EXPECT_EQ(h.min(), 5);
  EXPECT_EQ(h.max(), 10);
}

TEST(Metrics, CountersAndHistograms) {
  Metrics m;
  m.inc("a");
  m.inc("a", 2);
  m.inc("b", -1);
  EXPECT_EQ(m.counter("a"), 3);
  EXPECT_EQ(m.counter("b"), -1);
  EXPECT_EQ(m.counter("missing"), 0);
  m.observe("lat", 100);
  m.observe("lat", 200);
  EXPECT_EQ(m.histogram("lat").count(), 2u);
  EXPECT_EQ(m.histogram("missing").count(), 0u);
  m.clear();
  EXPECT_EQ(m.counter("a"), 0);
}

TEST(Metrics, InternedIdsAreStableAndShared) {
  // Interning the same name twice yields the same id, process-wide.
  const MetricId a1 = metric_id("interned.test.a");
  const MetricId a2 = metric_id("interned.test.a");
  const MetricId b = metric_id("interned.test.b");
  EXPECT_EQ(a1, a2);
  EXPECT_NE(a1, b);
  EXPECT_EQ(metric_name(a1), "interned.test.a");
  EXPECT_EQ(find_metric("interned.test.b"), b);
  EXPECT_EQ(find_metric("interned.test.never-registered"), kNoMetric);
}

TEST(Metrics, IdAndStringPathsObserveTheSameSlot) {
  Metrics m;
  const MetricId id = metric_id("interned.test.counter");
  m.inc(id, 4);
  m.inc("interned.test.counter", 1);
  EXPECT_EQ(m.counter(id), 5);
  EXPECT_EQ(m.counter("interned.test.counter"), 5);
  const MetricId h = metric_id("interned.test.hist");
  m.observe(h, 10);
  m.observe("interned.test.hist", 20);
  EXPECT_EQ(m.histogram(h).count(), 2u);
  EXPECT_EQ(m.histogram("interned.test.hist").max(), 20);
}

TEST(Metrics, ReadOfUnknownNameDoesNotIntern) {
  Metrics m;
  EXPECT_EQ(m.counter("interned.test.read-only-probe"), 0);
  // A pure read must not have registered the name.
  EXPECT_EQ(find_metric("interned.test.read-only-probe"), kNoMetric);
}

TEST(Metrics, CountersSnapshotIsSortedAndNonZeroOnly) {
  Metrics m;
  m.inc("z.last", 2);
  m.inc("a.first", 1);
  m.inc("m.zeroed", 5);
  m.inc("m.zeroed", -5);
  const auto snap = m.counters();
  ASSERT_EQ(snap.size(), 2u);
  EXPECT_EQ(snap.begin()->first, "a.first");
  EXPECT_EQ(snap.rbegin()->first, "z.last");
  EXPECT_EQ(snap.count("m.zeroed"), 0u);  // zero counters are elided
}

TEST(Types, MsgIdOrdering) {
  EXPECT_LT((MsgId{1, 5}), (MsgId{2, 0}));
  EXPECT_LT((MsgId{1, 5}), (MsgId{1, 6}));
  EXPECT_EQ((MsgId{1, 5}), (MsgId{1, 5}));
  EXPECT_EQ(to_string(MsgId{3, 17}), "3:17");
}

TEST(Types, DurationHelpers) {
  EXPECT_EQ(usec(5), 5);
  EXPECT_EQ(msec(5), 5000);
  EXPECT_EQ(sec(5), 5000000);
}

}  // namespace
}  // namespace gcs
