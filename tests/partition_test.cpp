/// Primary-partition behaviour (the paper's membership model, §1.1):
/// during a partition only the majority side makes progress; the minority
/// blocks rather than diverging, and catches up after the heal.
#include <gtest/gtest.h>

#include "core/stack.hpp"
#include "tests/test_util.hpp"

namespace gcs {
namespace {

using test::bytes_of;
using test::consistent_prefix;

World::Config cfg(int n, std::uint64_t seed = 1, StackConfig sc = {}) {
  World::Config c;
  c.n = n;
  c.seed = seed;
  c.stack = std::move(sc);
  return c;
}

TEST(Partition, MajoritySideKeepsDeciding) {
  StackConfig sc;
  sc.monitoring.exclusion_timeout = sec(60);  // keep membership static here
  World w(cfg(5, 3, sc));
  test::ScenarioOracle oracle(w, msec(20), 3);
  oracle.skip_finalize();  // ends partitioned: minority is behind by design
  std::vector<test::DeliveryLog> logs(5);
  for (ProcessId p = 0; p < 5; ++p) {
    w.stack(p).on_adeliver([&logs, p](const MsgId& id, const Bytes& b) {
      logs[static_cast<std::size_t>(p)].record(id, b);
    });
  }
  w.found_group_all();
  w.run_for(msec(50));
  w.network().partition({{0, 1, 2}, {3, 4}});
  // Majority side (3 of 5) can still order messages.
  for (int i = 0; i < 5; ++i) w.stack(0).abcast(bytes_of("maj" + std::to_string(i)));
  ASSERT_TRUE(test::run_until(w.engine(), sec(30), [&] {
    return logs[0].size() >= 5 && logs[1].size() >= 5 && logs[2].size() >= 5;
  }));
  // Minority saw nothing new.
  EXPECT_EQ(logs[3].size(), 0u);
  EXPECT_EQ(logs[4].size(), 0u);
}

TEST(Partition, MinoritySideBlocksInsteadOfDiverging) {
  StackConfig sc;
  sc.monitoring.exclusion_timeout = sec(60);
  World w(cfg(5, 5, sc));
  test::ScenarioOracle oracle(w, msec(20), 5);
  oracle.skip_finalize();  // ends partitioned: minority is behind by design
  std::vector<test::DeliveryLog> logs(5);
  for (ProcessId p = 0; p < 5; ++p) {
    w.stack(p).on_adeliver([&logs, p](const MsgId& id, const Bytes& b) {
      logs[static_cast<std::size_t>(p)].record(id, b);
    });
  }
  w.found_group_all();
  w.run_for(msec(50));
  w.network().partition({{0, 1, 2}, {3, 4}});
  // The minority tries to broadcast: nothing may be delivered anywhere in
  // the minority (no majority => no consensus decision).
  w.stack(3).abcast(bytes_of("doomed"));
  w.run_for(sec(3));
  EXPECT_EQ(logs[3].size(), 0u);
  EXPECT_EQ(logs[4].size(), 0u);
  // ...and, critically, NOT in some diverged form on the majority side
  // either: the message never reached them.
  EXPECT_EQ(logs[0].size(), 0u);
}

TEST(Partition, HealLetsEveryoneCatchUpConsistently) {
  StackConfig sc;
  sc.monitoring.exclusion_timeout = sec(60);
  World w(cfg(5, 7, sc));
  test::ScenarioOracle oracle(w, msec(20), 7);
  std::vector<test::DeliveryLog> logs(5);
  for (ProcessId p = 0; p < 5; ++p) {
    w.stack(p).on_adeliver([&logs, p](const MsgId& id, const Bytes& b) {
      logs[static_cast<std::size_t>(p)].record(id, b);
    });
  }
  w.found_group_all();
  w.run_for(msec(50));
  w.network().partition({{0, 1, 2}, {3, 4}});
  for (int i = 0; i < 5; ++i) w.stack(1).abcast(bytes_of("during" + std::to_string(i)));
  w.stack(4).abcast(bytes_of("from minority"));
  ASSERT_TRUE(test::run_until(w.engine(), sec(30), [&] { return logs[0].size() >= 5; }));
  w.network().heal();
  // After the heal everyone delivers everything (6 messages) in one order.
  ASSERT_TRUE(test::run_until(w.engine(), sec(60), [&] {
    for (auto& log : logs) {
      if (log.size() < 6) return false;
    }
    return true;
  }));
  for (ProcessId p = 1; p < 5; ++p) {
    EXPECT_TRUE(consistent_prefix(logs[0].order, logs[static_cast<std::size_t>(p)].order));
  }
}

TEST(Partition, PrimaryPartitionExcludesMinorityAndMovesOn) {
  // With monitoring enabled, the majority eventually removes the
  // unreachable minority and keeps running in the smaller view — the
  // primary-partition model's whole point.
  StackConfig sc;
  sc.monitoring.exclusion_timeout = msec(500);
  World w(cfg(5, 9, sc));
  test::ScenarioOracle oracle(w, msec(20), 9);
  w.found_group_all();
  w.run_for(msec(50));
  w.network().partition({{0, 1, 2}, {3, 4}});
  ASSERT_TRUE(test::run_until(w.engine(), sec(30), [&] {
    return w.stack(0).view().members == std::vector<ProcessId>{0, 1, 2};
  }));
  // The shrunken view has majority 2: it still works.
  test::DeliveryLog log;
  w.stack(1).on_adeliver([&log](const MsgId& id, const Bytes& b) { log.record(id, b); });
  w.stack(2).abcast(bytes_of("post-exclusion"));
  ASSERT_TRUE(test::run_until(w.engine(), sec(10), [&] { return log.size() >= 1; }));
  // The minority members know nothing of their exclusion yet (they're cut
  // off), but they have NOT formed a rival view: still the old 5-member one.
  EXPECT_EQ(w.stack(3).view().members.size(), 5u);
  w.run_for(sec(1));  // settle the majority before the oracle finalizes
}

TEST(Partition, ExcludedMinorityRejoinsAfterHeal) {
  StackConfig sc;
  sc.monitoring.exclusion_timeout = msec(400);
  World w(cfg(4, 11, sc));
  test::ScenarioOracle oracle(w, msec(20), 11);
  w.found_group_all();
  w.run_for(msec(50));
  w.network().partition({{0, 1, 2}, {3}});
  ASSERT_TRUE(test::run_until(w.engine(), sec(30), [&] {
    return w.stack(0).view().members == std::vector<ProcessId>{0, 1, 2};
  }));
  w.network().heal();
  w.run_for(msec(200));
  // p3 rejoins explicitly (the application decides when; here: right away).
  w.stack(3).membership().join(0);
  ASSERT_TRUE(test::run_until(w.engine(), sec(30), [&] {
    return w.stack(3).membership().is_member() && w.stack(0).view().contains(3);
  }));
  EXPECT_EQ(w.stack(0).view().members.size(), 4u);
  w.run_for(sec(1));  // settle before the oracle's finalize-time checks
}

}  // namespace
}  // namespace gcs
