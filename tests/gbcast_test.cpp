#include <gtest/gtest.h>

#include <map>

#include "core/stack.hpp"
#include "tests/test_util.hpp"

namespace gcs {
namespace {

using test::bytes_of;
using test::str_of;

struct GbLog {
  std::vector<MsgId> order;
  std::map<MsgId, MsgClass> classes;
  std::map<MsgId, std::string> payloads;

  void record(const MsgId& id, MsgClass cls, const Bytes& b) {
    order.push_back(id);
    classes[id] = cls;
    payloads[id] = str_of(b);
  }
  /// Position of id in the delivery order, or npos.
  std::size_t position(const MsgId& id) const {
    for (std::size_t i = 0; i < order.size(); ++i) {
      if (order[i] == id) return i;
    }
    return static_cast<std::size_t>(-1);
  }
};

struct GbWorld {
  World world;
  std::vector<GbLog> logs;
  // Declared after `world`: the oracle finalizes before the world tears down.
  std::unique_ptr<test::ScenarioOracle> oracle;

  explicit GbWorld(int n, ConflictRelation rel = ConflictRelation::rbcast_abcast(),
                   std::uint64_t seed = 1, sim::LinkModel link = {})
      : world(make_config(n, std::move(rel), seed, link)), logs(static_cast<std::size_t>(n)) {
    oracle = std::make_unique<test::ScenarioOracle>(world, msec(20), seed);
    for (ProcessId p = 0; p < n; ++p) {
      auto& log = logs[static_cast<std::size_t>(p)];
      world.stack(p).on_gdeliver(
          [&log](const MsgId& id, MsgClass cls, const Bytes& b) { log.record(id, cls, b); });
    }
    world.found_group_all();
  }

  static World::Config make_config(int n, ConflictRelation rel, std::uint64_t seed,
                                   sim::LinkModel link) {
    World::Config cfg;
    cfg.n = n;
    cfg.seed = seed;
    cfg.link = link;
    cfg.stack.conflict = std::move(rel);
    return cfg;
  }

  bool all_alive_delivered(std::size_t count) {
    for (ProcessId p = 0; p < static_cast<ProcessId>(logs.size()); ++p) {
      if (!world.network().alive(p)) continue;
      if (logs[static_cast<std::size_t>(p)].order.size() < count) return false;
    }
    return true;
  }

  /// Check the generic-broadcast order property: conflicting pairs are
  /// delivered in the same relative order at every pair of processes.
  void expect_conflict_order(const ConflictRelation& rel) {
    for (std::size_t a = 0; a < logs.size(); ++a) {
      for (std::size_t b = a + 1; b < logs.size(); ++b) {
        const auto& la = logs[a];
        const auto& lb = logs[b];
        for (std::size_t i = 0; i < la.order.size(); ++i) {
          for (std::size_t j = i + 1; j < la.order.size(); ++j) {
            const MsgId x = la.order[i];
            const MsgId y = la.order[j];
            if (!rel.conflicts(la.classes.at(x), la.classes.at(y))) continue;
            const std::size_t px = lb.position(x);
            const std::size_t py = lb.position(y);
            if (px == static_cast<std::size_t>(-1) || py == static_cast<std::size_t>(-1)) continue;
            EXPECT_LT(px, py) << "conflicting pair " << to_string(x) << "," << to_string(y)
                              << " ordered differently at p" << a << " and p" << b;
          }
        }
      }
    }
  }
};

TEST(GenericBroadcast, NonConflictingFastPathAvoidsConsensus) {
  GbWorld w(4);
  for (int i = 0; i < 10; ++i) {
    w.world.stack(static_cast<ProcessId>(i % 4)).rbcast(bytes_of("m" + std::to_string(i)));
  }
  ASSERT_TRUE(test::run_until(w.world, sec(5), [&] { return w.all_alive_delivered(10); }));
  for (ProcessId p = 0; p < 4; ++p) {
    auto& gb = w.world.stack(p).generic_broadcast();
    EXPECT_EQ(gb.fast_deliveries(), 10u);
    EXPECT_EQ(gb.resolved_deliveries(), 0u);
    EXPECT_EQ(gb.rounds_resolved(), 0u);
    // Thrifty: no consensus ran at all.
    EXPECT_EQ(w.world.stack(p).consensus().instances_decided(), 0);
  }
}

TEST(GenericBroadcast, ConflictingMessagesTriggerResolutionAndAgree) {
  GbWorld w(4);
  // Two conflicting (class 1) messages from different senders, racing.
  const MsgId m1 = w.world.stack(0).gbcast(kAbcastClass, bytes_of("a"));
  const MsgId m2 = w.world.stack(1).gbcast(kAbcastClass, bytes_of("b"));
  ASSERT_TRUE(test::run_until(w.world, sec(10), [&] { return w.all_alive_delivered(2); }));
  w.expect_conflict_order(ConflictRelation::rbcast_abcast());
  // All processes delivered both, in the same order.
  const auto& ref = w.logs[0].order;
  for (ProcessId p = 1; p < 4; ++p) {
    EXPECT_EQ(w.logs[static_cast<std::size_t>(p)].order, ref);
  }
  EXPECT_TRUE((ref[0] == m1 && ref[1] == m2) || (ref[0] == m2 && ref[1] == m1));
  EXPECT_GT(w.world.stack(0).generic_broadcast().rounds_resolved(), 0u);
}

TEST(GenericBroadcast, MixedTrafficOrdersConflictsOnly) {
  GbWorld w(4, ConflictRelation::rbcast_abcast(), 7);
  for (int i = 0; i < 20; ++i) {
    const MsgClass cls = (i % 5 == 0) ? kAbcastClass : kRbcastClass;
    w.world.stack(static_cast<ProcessId>(i % 4)).gbcast(cls, bytes_of(std::to_string(i)));
  }
  ASSERT_TRUE(test::run_until(w.world, sec(20), [&] { return w.all_alive_delivered(20); }));
  w.expect_conflict_order(ConflictRelation::rbcast_abcast());
}

TEST(GenericBroadcast, AllConflictBehavesLikeAtomicBroadcast) {
  GbWorld w(4, ConflictRelation::all_conflict());
  for (int i = 0; i < 8; ++i) {
    w.world.stack(static_cast<ProcessId>(i % 4)).gbcast(0, bytes_of(std::to_string(i)));
  }
  ASSERT_TRUE(test::run_until(w.world, sec(20), [&] { return w.all_alive_delivered(8); }));
  // Total order across ALL messages.
  for (ProcessId p = 1; p < 4; ++p) {
    EXPECT_EQ(w.logs[static_cast<std::size_t>(p)].order, w.logs[0].order);
  }
}

TEST(GenericBroadcast, NoneConflictNeverResolves) {
  GbWorld w(4, ConflictRelation::none_conflict());
  for (int i = 0; i < 12; ++i) {
    w.world.stack(static_cast<ProcessId>(i % 4)).gbcast(static_cast<MsgClass>(i % 2),
                                                        bytes_of(std::to_string(i)));
  }
  ASSERT_TRUE(test::run_until(w.world, sec(5), [&] { return w.all_alive_delivered(12); }));
  for (ProcessId p = 0; p < 4; ++p) {
    EXPECT_EQ(w.world.stack(p).generic_broadcast().rounds_resolved(), 0u);
  }
}

TEST(GenericBroadcast, UpdatePrimaryChangeTable) {
  // The §3.2.3 conflict table: updates commute, primary-change orders all.
  const auto rel = ConflictRelation::update_primary_change();
  EXPECT_FALSE(rel.conflicts(kRbcastClass, kRbcastClass));
  EXPECT_TRUE(rel.conflicts(kRbcastClass, kAbcastClass));
  EXPECT_TRUE(rel.conflicts(kAbcastClass, kRbcastClass));
  EXPECT_TRUE(rel.conflicts(kAbcastClass, kAbcastClass));
}

TEST(GenericBroadcast, DeliveryIsUniformAcrossProcesses) {
  GbWorld w(4, ConflictRelation::rbcast_abcast(), 11,
            sim::LinkModel{usec(200), usec(400), 0.1});
  for (int i = 0; i < 15; ++i) {
    const MsgClass cls = (i % 3 == 0) ? kAbcastClass : kRbcastClass;
    w.world.stack(static_cast<ProcessId>(i % 4)).gbcast(cls, bytes_of(std::to_string(i)));
  }
  ASSERT_TRUE(test::run_until(w.world, sec(30), [&] { return w.all_alive_delivered(15); }));
  // Same message set everywhere.
  std::set<MsgId> ref(w.logs[0].order.begin(), w.logs[0].order.end());
  for (ProcessId p = 1; p < 4; ++p) {
    std::set<MsgId> got(w.logs[static_cast<std::size_t>(p)].order.begin(),
                        w.logs[static_cast<std::size_t>(p)].order.end());
    EXPECT_EQ(got, ref);
  }
  w.expect_conflict_order(ConflictRelation::rbcast_abcast());
}

TEST(GenericBroadcast, SurvivesOneCrashWithTimeoutResolution) {
  GbWorld w(4);
  // Crash one process; fast quorum is 3 of 4, so the fast path still works;
  // when it doesn't (acks lost to the crash), the deadline path resolves.
  w.world.crash(3);
  for (int i = 0; i < 6; ++i) {
    w.world.stack(static_cast<ProcessId>(i % 3)).rbcast(bytes_of(std::to_string(i)));
  }
  ASSERT_TRUE(test::run_until(w.world, sec(30), [&] { return w.all_alive_delivered(6); }));
}

TEST(GenericBroadcast, ConflictAfterFastDeliveryOrdersCorrectly) {
  GbWorld w(4);
  // m1 fast-delivers first; then m2 (conflicting class) arrives. Everyone
  // must order m1 before m2.
  const MsgId m1 = w.world.stack(0).rbcast(bytes_of("update"));
  ASSERT_TRUE(test::run_until(w.world, sec(5), [&] { return w.all_alive_delivered(1); }));
  const MsgId m2 = w.world.stack(1).gbcast(kAbcastClass, bytes_of("primary-change"));
  ASSERT_TRUE(test::run_until(w.world, sec(10), [&] { return w.all_alive_delivered(2); }));
  for (ProcessId p = 0; p < 4; ++p) {
    const auto& log = w.logs[static_cast<std::size_t>(p)];
    EXPECT_LT(log.position(m1), log.position(m2)) << "at p" << p;
  }
}

TEST(GenericBroadcast, ThriftyConsensusCountScalesWithConflicts) {
  // More conflicting messages => more ordering work; zero conflicts => none.
  auto consensus_count = [](double conflict_fraction) {
    GbWorld w(4, ConflictRelation::rbcast_abcast(), 23);
    const int total = 20;
    const int conflicting = static_cast<int>(total * conflict_fraction);
    for (int i = 0; i < total; ++i) {
      const MsgClass cls = (i < conflicting) ? kAbcastClass : kRbcastClass;
      w.world.stack(static_cast<ProcessId>(i % 4)).gbcast(cls, bytes_of(std::to_string(i)));
    }
    test::run_until(w.world, sec(60), [&] { return w.all_alive_delivered(20); });
    return w.world.stack(0).consensus().instances_decided();
  };
  const auto none = consensus_count(0.0);
  const auto all = consensus_count(1.0);
  EXPECT_EQ(none, 0);
  EXPECT_GT(all, 0);
}

/// Property sweep over seeds: agreement on conflicting pairs under jitter,
/// loss and random class mixes.
class GbcastProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GbcastProperty, ConflictOrderHolds) {
  const std::uint64_t seed = GetParam();
  Rng rng(seed);
  sim::LinkModel link{usec(100 + rng.next_range(0, 300)), usec(rng.next_range(0, 500)),
                      rng.next_double() * 0.1};
  GbWorld w(4, ConflictRelation::rbcast_abcast(), seed, link);
  const int total = 12;
  for (int i = 0; i < total; ++i) {
    const MsgClass cls = rng.chance(0.3) ? kAbcastClass : kRbcastClass;
    w.world.stack(static_cast<ProcessId>(rng.next_below(4))).gbcast(
        cls, bytes_of(std::to_string(i)));
  }
  ASSERT_TRUE(test::run_until(w.world, sec(60), [&] {
    return w.all_alive_delivered(static_cast<std::size_t>(total));
  })) << "seed=" << seed;
  w.expect_conflict_order(ConflictRelation::rbcast_abcast());
}

INSTANTIATE_TEST_SUITE_P(Seeds, GbcastProperty, ::testing::Range<std::uint64_t>(1, 21));

}  // namespace
}  // namespace gcs
