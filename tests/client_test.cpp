#include <gtest/gtest.h>

#include <memory>

#include "replication/client.hpp"
#include "replication/state_machine.hpp"
#include "tests/test_util.hpp"

namespace gcs::replication {
namespace {

using test::bytes_of;

TEST(CachingStateMachine, SuppressesDuplicates) {
  CachingStateMachine m(std::make_unique<BankAccount>());
  const Bytes cmd = CachingStateMachine::wrap(7, 1, BankAccount::make_deposit(100));
  const Bytes r1 = m.apply(cmd);
  const Bytes r2 = m.apply(cmd);  // retry of the same request
  EXPECT_EQ(r1, r2);
  EXPECT_EQ(m.duplicates_suppressed(), 1u);
  EXPECT_EQ(static_cast<BankAccount&>(m.inner()).balance(), 100);  // applied once
  // A different request id executes normally.
  m.apply(CachingStateMachine::wrap(7, 2, BankAccount::make_deposit(1)));
  EXPECT_EQ(static_cast<BankAccount&>(m.inner()).balance(), 101);
}

TEST(CachingStateMachine, SnapshotCarriesCache) {
  CachingStateMachine a(std::make_unique<BankAccount>());
  a.apply(CachingStateMachine::wrap(3, 9, BankAccount::make_deposit(50)));
  CachingStateMachine b(std::make_unique<BankAccount>());
  b.restore(a.snapshot());
  EXPECT_TRUE(b.cached(3, 9).has_value());
  EXPECT_EQ(static_cast<BankAccount&>(b.inner()).balance(), 50);
  // The restored cache suppresses the retry too.
  b.apply(CachingStateMachine::wrap(3, 9, BankAccount::make_deposit(50)));
  EXPECT_EQ(static_cast<BankAccount&>(b.inner()).balance(), 50);
}

/// Harness: group of 4 replicas + 1 client (universe process 4).
struct ActiveClientWorld {
  World world;
  std::vector<std::unique_ptr<ActiveService>> services;
  std::unique_ptr<sim::Context> client_ctx;
  std::unique_ptr<Client> client;

  explicit ActiveClientWorld(std::uint64_t seed = 1, Client::Config ccfg = {})
      : world(make(seed)) {
    for (ProcessId p = 0; p < 4; ++p) {
      services.push_back(
          std::make_unique<ActiveService>(world.stack(p), std::make_unique<BankAccount>()));
    }
    world.found_group({0, 1, 2, 3});
    client_ctx = std::make_unique<sim::Context>(4, world.engine(), Rng(99), Logger(),
                                                std::make_shared<Metrics>());
    client = std::make_unique<Client>(*client_ctx, world.network(),
                                      std::vector<ProcessId>{0, 1, 2, 3}, ccfg);
  }
  static World::Config make(std::uint64_t seed) {
    World::Config c;
    c.n = 5;  // 4 replicas + the client slot
    c.seed = seed;
    return c;
  }
};

TEST(ActiveClient, RequestCommitsAndReturnsResult) {
  ActiveClientWorld w;
  bool ok = false;
  std::int64_t balance = -1;
  w.client->submit(BankAccount::make_deposit(25), [&](bool o, const Bytes& r) {
    ok = o;
    balance = BankAccount::decode_result(r).second;
  });
  ASSERT_TRUE(test::run_until(w.world.engine(), sec(10), [&] { return ok; }));
  EXPECT_EQ(balance, 25);
  // All replicas applied it.
  ASSERT_TRUE(test::run_until(w.world.engine(), sec(5), [&] {
    for (auto& s : w.services) {
      if (s->applied() < 1) return false;
    }
    return true;
  }));
  for (auto& s : w.services) {
    EXPECT_EQ(static_cast<BankAccount&>(s->state()).balance(), 25);
  }
}

TEST(ActiveClient, SequentialRequestsKeepOrder) {
  ActiveClientWorld w(3);
  std::vector<std::int64_t> balances;
  int done = 0;
  std::function<void(int)> send_next = [&](int i) {
    if (i >= 5) return;
    w.client->submit(BankAccount::make_deposit(10), [&, i](bool o, const Bytes& r) {
      ASSERT_TRUE(o);
      balances.push_back(BankAccount::decode_result(r).second);
      ++done;
      send_next(i + 1);
    });
  };
  send_next(0);
  ASSERT_TRUE(test::run_until(w.world.engine(), sec(30), [&] { return done >= 5; }));
  EXPECT_EQ(balances, (std::vector<std::int64_t>{10, 20, 30, 40, 50}));
}

TEST(ActiveClient, CrashedReplicaCausesRetryNotDuplicate) {
  Client::Config ccfg;
  ccfg.request_timeout = msec(80);
  ActiveClientWorld w(5, ccfg);
  // Kill the first contact before the request goes out.
  w.world.crash(0);
  bool ok = false;
  std::int64_t balance = -1;
  w.client->submit(BankAccount::make_deposit(40), [&](bool o, const Bytes& r) {
    ok = o;
    balance = BankAccount::decode_result(r).second;
  });
  ASSERT_TRUE(test::run_until(w.world.engine(), sec(20), [&] { return ok; }));
  EXPECT_EQ(balance, 40);
  EXPECT_GE(w.client->retries(), 1u);
  // Exactly-once despite the retry.
  EXPECT_EQ(static_cast<BankAccount&>(w.services[1]->state()).balance(), 40);
}

TEST(ActiveClient, AllReplicasDownEventuallyFails) {
  Client::Config ccfg;
  ccfg.request_timeout = msec(50);
  ccfg.max_attempts = 3;
  ActiveClientWorld w(7, ccfg);
  for (ProcessId p = 0; p < 4; ++p) w.world.crash(p);
  bool completed = false, ok = true;
  w.client->submit(BankAccount::make_deposit(1), [&](bool o, const Bytes&) {
    completed = true;
    ok = o;
  });
  ASSERT_TRUE(test::run_until(w.world.engine(), sec(20), [&] { return completed; }));
  EXPECT_FALSE(ok);
}

struct PassiveClientWorld {
  World world;
  std::vector<std::unique_ptr<PassiveService>> services;
  std::unique_ptr<sim::Context> client_ctx;
  std::unique_ptr<Client> client;

  PassiveClientWorld(std::uint64_t seed, PassiveReplication::Config pcfg,
                     Client::Config ccfg = {})
      : world(make(seed)) {
    world.found_group({0, 1, 2, 3});
    for (ProcessId p = 0; p < 4; ++p) {
      services.push_back(std::make_unique<PassiveService>(
          world.stack(p), std::make_unique<BankAccount>(), pcfg));
    }
    client_ctx = std::make_unique<sim::Context>(4, world.engine(), Rng(77), Logger(),
                                                std::make_shared<Metrics>());
    client = std::make_unique<Client>(*client_ctx, world.network(),
                                      std::vector<ProcessId>{0, 1, 2, 3}, ccfg);
  }
  static World::Config make(std::uint64_t seed) {
    World::Config c;
    c.n = 5;
    c.seed = seed;
    c.stack.conflict = ConflictRelation::update_primary_change();
    return c;
  }
};

TEST(PassiveClient, BackupRedirectsToPrimary) {
  PassiveReplication::Config pcfg;
  pcfg.auto_primary_change = false;
  PassiveClientWorld w(1, pcfg);
  // Point the client at a backup first: it must get redirected to p0.
  w.client = std::make_unique<Client>(*w.client_ctx, w.world.network(),
                                      std::vector<ProcessId>{2, 3, 0, 1});
  bool ok = false;
  w.client->submit(BankAccount::make_deposit(5), [&](bool o, const Bytes&) { ok = o; });
  ASSERT_TRUE(test::run_until(w.world.engine(), sec(10), [&] { return ok; }));
  EXPECT_GE(w.client->redirects_followed(), 1u);
}

TEST(PassiveClient, Fig8EndToEnd_ClientRetriesAfterPrimaryChange) {
  // The complete Figure 8 story: the client's request reaches the primary,
  // a primary-change races the update; whatever the outcome, the client
  // eventually gets its deposit committed exactly once.
  PassiveReplication::Config pcfg;
  pcfg.auto_primary_change = false;
  Client::Config ccfg;
  ccfg.request_timeout = msec(100);
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    PassiveClientWorld w(seed, pcfg, ccfg);
    bool ok = false;
    w.client->submit(BankAccount::make_deposit(100), [&](bool o, const Bytes&) { ok = o; });
    // Race: fire the primary change while the request is in flight.
    w.world.engine().schedule_after(usec(300),
                                    [&] { w.services[1]->replication().request_primary_change(); });
    ASSERT_TRUE(test::run_until(w.world.engine(), sec(30), [&] { return ok; }))
        << "seed=" << seed;
    w.world.run_for(msec(500));
    // Exactly once, at every replica.
    for (auto& s : w.services) {
      EXPECT_EQ(static_cast<BankAccount&>(s->state()).balance(), 100) << "seed=" << seed;
    }
  }
}

TEST(PassiveClient, CrashedPrimaryFailoverServesClient) {
  PassiveReplication::Config pcfg;
  pcfg.primary_suspect_timeout = msec(100);
  Client::Config ccfg;
  ccfg.request_timeout = msec(120);
  PassiveClientWorld w(9, pcfg, ccfg);
  // Commit one through the healthy primary.
  bool first = false;
  w.client->submit(BankAccount::make_deposit(10), [&](bool o, const Bytes&) { first = o; });
  ASSERT_TRUE(test::run_until(w.world.engine(), sec(10), [&] { return first; }));
  // Crash the primary, then submit again: timeout -> retry -> redirect ->
  // new primary serves it.
  w.world.crash(0);
  bool second = false;
  std::int64_t balance = 0;
  w.client->submit(BankAccount::make_deposit(5), [&](bool o, const Bytes& r) {
    second = o;
    balance = BankAccount::decode_result(r).second;
  });
  ASSERT_TRUE(test::run_until(w.world.engine(), sec(30), [&] { return second; }));
  EXPECT_EQ(balance, 15);
}

}  // namespace
}  // namespace gcs::replication
