/// Randomized failure-injection ("chaos") tests: random traffic, crashes,
/// false suspicions, joins and partitions, with the global safety
/// invariants checked at the end of every schedule:
///   - total order: all adelivery logs are prefix-consistent,
///   - no duplication, no creation,
///   - generic broadcast orders all conflicting pairs consistently,
///   - liveness: surviving members keep delivering after the chaos stops.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "core/stack.hpp"
#include "tests/test_util.hpp"

namespace gcs {
namespace {

using test::bytes_of;
using test::consistent_prefix;

struct ChaosRun {
  static constexpr int kN = 5;

  explicit ChaosRun(std::uint64_t seed) : rng(seed ^ 0xabcdef), world(make(seed)) {
    oracle = std::make_unique<test::ScenarioOracle>(world, msec(50), seed);
    oracle->set_metrics(&world.stack(0).metrics());
    alogs.resize(kN);
    glogs.resize(kN);
    gcls.resize(kN);
    for (ProcessId p = 0; p < kN; ++p) {
      world.stack(p).on_adeliver([this, p](const MsgId& id, const Bytes& b) {
        alogs[static_cast<std::size_t>(p)].record(id, b);
      });
      world.stack(p).on_gdeliver([this, p](const MsgId& id, MsgClass cls, const Bytes&) {
        glogs[static_cast<std::size_t>(p)].push_back(id);
        gcls[static_cast<std::size_t>(p)][id] = cls;
      });
    }
    world.found_group_all();
  }

  static World::Config make(std::uint64_t seed) {
    Rng r(seed);
    World::Config c;
    c.n = kN;
    c.seed = seed;
    c.link.base_delay = usec(100 + r.next_range(0, 300));
    c.link.jitter = usec(r.next_range(0, 400));
    c.link.drop_probability = r.next_double() * 0.08;
    c.stack.monitoring.exclusion_timeout = msec(400);
    // Half the schedules run on Paxos instead of Chandra-Toueg: the chaos
    // invariants are algorithm-independent.
    if (seed % 2 == 0) c.stack.consensus_algorithm = StackConfig::ConsensusAlgo::kPaxos;
    return c;
  }

  void random_schedule() {
    int crashes_left = 1;  // keep a solid majority alive: 5 -> at most 1 crash
    const int kSteps = 60;
    for (int step = 0; step < kSteps; ++step) {
      const auto dice = rng.next_below(100);
      const auto p = static_cast<ProcessId>(rng.next_below(kN));
      if (dice < 55) {
        if (alive(p) && world.stack(p).membership().is_member()) {
          sent_abcast.insert(world.stack(p).abcast(bytes_of("a" + std::to_string(step))));
        }
      } else if (dice < 80) {
        if (alive(p) && world.stack(p).membership().is_member()) {
          const MsgClass cls = rng.chance(0.3) ? kAbcastClass : kRbcastClass;
          world.stack(p).gbcast(cls, bytes_of("g" + std::to_string(step)));
          ++sent_gbcast;
        }
      } else if (dice < 88) {
        // False suspicion of a random member at a random member.
        const auto q = static_cast<ProcessId>(rng.next_below(kN));
        if (alive(p) && p != q) {
          world.stack(p).fd().inject_suspicion(world.stack(p).consensus_fd_class(), q);
        }
      } else if (dice < 94 && crashes_left > 0) {
        if (alive(p)) {
          world.crash(p);
          crashed.insert(p);
          --crashes_left;
        }
      } else if (dice < 96) {
        // Briefly partition a minority pair away, healing shortly after.
        if (!partitioned_) {
          partitioned_ = true;
          const auto a = static_cast<ProcessId>(rng.next_below(kN));
          const auto b = static_cast<ProcessId>((a + 1) % kN);
          std::vector<ProcessId> majority;
          for (ProcessId q = 0; q < kN; ++q) {
            if (q != a && q != b) majority.push_back(q);
          }
          world.network().partition({majority, {a, b}});
          world.engine().schedule_after(rng.next_range(msec(5), msec(60)), [this] {
            world.network().heal();
            partitioned_ = false;
          });
        }
      } else {
        // Excluded-but-alive processes try to rejoin.
        if (alive(p) && !world.stack(p).membership().is_member()) {
          for (ProcessId contact = 0; contact < kN; ++contact) {
            if (alive(contact) && world.stack(contact).membership().is_member()) {
              world.stack(p).membership().join(contact);
              break;
            }
          }
        }
      }
      world.run_for(rng.next_range(msec(1), msec(10)));
    }
  }

  bool alive(ProcessId p) { return world.network().alive(p); }

  void check_invariants() {
    // Let everything settle (any in-flight partition heals via its timer).
    world.run_for(sec(5));
    world.network().heal();
    world.run_for(sec(2));
    // (1) total order across ALL processes' abcast logs.
    for (int a = 0; a < kN; ++a) {
      for (int b = a + 1; b < kN; ++b) {
        EXPECT_TRUE(consistent_prefix(alogs[static_cast<std::size_t>(a)].order,
                                      alogs[static_cast<std::size_t>(b)].order))
            << "abcast order mismatch p" << a << " vs p" << b;
      }
    }
    // (2) no duplicates, no creation.
    for (int p = 0; p < kN; ++p) {
      std::set<MsgId> uniq(alogs[static_cast<std::size_t>(p)].order.begin(),
                           alogs[static_cast<std::size_t>(p)].order.end());
      EXPECT_EQ(uniq.size(), alogs[static_cast<std::size_t>(p)].order.size())
          << "duplicate adelivery at p" << p;
      for (const MsgId& id : uniq) {
        EXPECT_TRUE(sent_abcast.count(id)) << "created message at p" << p;
      }
      std::set<MsgId> guniq(glogs[static_cast<std::size_t>(p)].begin(),
                            glogs[static_cast<std::size_t>(p)].end());
      EXPECT_EQ(guniq.size(), glogs[static_cast<std::size_t>(p)].size())
          << "duplicate gdelivery at p" << p;
    }
    // (3) conflicting gbcast pairs ordered identically at every pair of
    // processes that delivered both.
    const auto rel = ConflictRelation::rbcast_abcast();
    for (int a = 0; a < kN; ++a) {
      const auto& la = glogs[static_cast<std::size_t>(a)];
      std::map<MsgId, std::size_t> pos_a;
      for (std::size_t i = 0; i < la.size(); ++i) pos_a[la[i]] = i;
      for (int b = a + 1; b < kN; ++b) {
        const auto& lb = glogs[static_cast<std::size_t>(b)];
        std::map<MsgId, std::size_t> pos_b;
        for (std::size_t i = 0; i < lb.size(); ++i) pos_b[lb[i]] = i;
        for (const auto& [x, xi] : pos_a) {
          for (const auto& [y, yi] : pos_a) {
            if (!(x < y)) continue;
            if (!rel.conflicts(gcls[static_cast<std::size_t>(a)][x],
                               gcls[static_cast<std::size_t>(a)][y])) {
              continue;
            }
            auto bx = pos_b.find(x);
            auto by = pos_b.find(y);
            if (bx == pos_b.end() || by == pos_b.end()) continue;
            EXPECT_EQ(xi < yi, bx->second < by->second)
                << "gbcast conflict order mismatch p" << a << "/p" << b;
          }
        }
      }
    }
    // (4) liveness: an alive member can still get a message through.
    ProcessId sender = kNoProcess;
    for (ProcessId p = 0; p < kN; ++p) {
      if (alive(p) && world.stack(p).membership().is_member()) {
        sender = p;
        break;
      }
    }
    ASSERT_NE(sender, kNoProcess) << "no alive member left?!";
    const std::size_t before = alogs[static_cast<std::size_t>(sender)].size();
    world.stack(sender).abcast(bytes_of("final liveness probe"));
    EXPECT_TRUE(test::run_until(world.engine(), sec(30), [&] {
      return alogs[static_cast<std::size_t>(sender)].size() > before;
    })) << "group wedged after chaos";
    // Let the probe propagate to the other members so the oracle's
    // finalize-time agreement checks see a fully settled run.
    world.run_for(sec(2));
  }

  Rng rng;
  World world;
  // Declared after `world` so the oracle finalizes (and reports) before the
  // world tears down.
  std::unique_ptr<test::ScenarioOracle> oracle;
  std::vector<test::DeliveryLog> alogs;
  std::vector<std::vector<MsgId>> glogs;
  std::vector<std::map<MsgId, MsgClass>> gcls;
  std::set<MsgId> sent_abcast;
  std::set<ProcessId> crashed;
  int sent_gbcast = 0;
  bool partitioned_ = false;
};

class Chaos : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(Chaos, InvariantsHoldUnderRandomFaults) {
  ChaosRun run(GetParam());
  run.random_schedule();
  run.check_invariants();
}

INSTANTIATE_TEST_SUITE_P(Seeds, Chaos, ::testing::Range<std::uint64_t>(1, 21));

}  // namespace
}  // namespace gcs
