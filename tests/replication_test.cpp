#include <gtest/gtest.h>

#include <memory>

#include "replication/active.hpp"
#include "replication/passive.hpp"
#include "replication/state_machine.hpp"
#include "tests/test_util.hpp"

namespace gcs::replication {
namespace {

using test::bytes_of;

TEST(StateMachine, BankAccountSemantics) {
  BankAccount bank;
  auto r1 = BankAccount::decode_result(bank.apply(BankAccount::make_deposit(100)));
  EXPECT_TRUE(r1.first);
  EXPECT_EQ(r1.second, 100);
  auto r2 = BankAccount::decode_result(bank.apply(BankAccount::make_withdraw(40)));
  EXPECT_TRUE(r2.first);
  EXPECT_EQ(r2.second, 60);
  auto r3 = BankAccount::decode_result(bank.apply(BankAccount::make_withdraw(100)));
  EXPECT_FALSE(r3.first);  // insufficient funds
  EXPECT_EQ(bank.balance(), 60);
}

TEST(StateMachine, BankAccountSnapshotRoundTrip) {
  BankAccount a;
  a.apply(BankAccount::make_deposit(42));
  BankAccount b;
  b.restore(a.snapshot());
  EXPECT_EQ(b.balance(), 42);
}

TEST(StateMachine, DepositsCommute) {
  // The §4.2 premise: deposits in any order give the same state.
  BankAccount a, b;
  a.apply(BankAccount::make_deposit(10));
  a.apply(BankAccount::make_deposit(20));
  b.apply(BankAccount::make_deposit(20));
  b.apply(BankAccount::make_deposit(10));
  EXPECT_EQ(a.balance(), b.balance());
}

TEST(StateMachine, WithdrawalsDoNotCommute) {
  // ...while withdrawals near the balance boundary do not.
  BankAccount a, b;
  a.apply(BankAccount::make_deposit(50));
  b.apply(BankAccount::make_deposit(50));
  const auto a1 = BankAccount::decode_result(a.apply(BankAccount::make_withdraw(40)));
  const auto a2 = BankAccount::decode_result(a.apply(BankAccount::make_withdraw(30)));
  const auto b1 = BankAccount::decode_result(b.apply(BankAccount::make_withdraw(30)));
  const auto b2 = BankAccount::decode_result(b.apply(BankAccount::make_withdraw(40)));
  EXPECT_TRUE(a1.first);
  EXPECT_FALSE(a2.first);
  EXPECT_TRUE(b1.first);
  EXPECT_FALSE(b2.first);
  // Different orders succeed for different requests: ordering matters.
  EXPECT_NE(a1.second, b1.second);
}

TEST(StateMachine, KvStore) {
  KvStore kv;
  kv.apply(KvStore::make_put("k", "v1"));
  auto got = KvStore::decode_result(kv.apply(KvStore::make_get("k")));
  EXPECT_TRUE(got.first);
  EXPECT_EQ(got.second, "v1");
  auto missing = KvStore::decode_result(kv.apply(KvStore::make_get("nope")));
  EXPECT_FALSE(missing.first);
  kv.apply(KvStore::make_del("k"));
  EXPECT_EQ(kv.size(), 0u);
  // Snapshot round trip.
  kv.apply(KvStore::make_put("a", "1"));
  kv.apply(KvStore::make_put("b", "2"));
  KvStore kv2;
  kv2.restore(kv.snapshot());
  EXPECT_EQ(kv2.data(), kv.data());
}

struct ActiveWorld {
  World world;
  std::vector<std::unique_ptr<ActiveReplication>> replicas;

  explicit ActiveWorld(int n, std::uint64_t seed = 1) : world(make(n, seed)) {
    for (ProcessId p = 0; p < n; ++p) {
      replicas.push_back(std::make_unique<ActiveReplication>(
          world.stack(p), std::make_unique<BankAccount>()));
    }
    world.found_group_all();
  }
  static World::Config make(int n, std::uint64_t seed) {
    World::Config c;
    c.n = n;
    c.seed = seed;
    return c;
  }
  BankAccount& bank(ProcessId p) {
    return static_cast<BankAccount&>(replicas[static_cast<std::size_t>(p)]->state());
  }
};

TEST(ActiveReplication, AllReplicasConverge) {
  ActiveWorld w(3);
  std::int64_t last_result = -1;
  w.replicas[0]->submit(BankAccount::make_deposit(100));
  w.replicas[1]->submit(BankAccount::make_deposit(50));
  w.replicas[2]->submit(BankAccount::make_withdraw(30), [&](const Bytes& r) {
    last_result = BankAccount::decode_result(r).second;
  });
  ASSERT_TRUE(test::run_until(w.world, sec(10), [&] {
    return w.replicas[0]->applied() >= 3 && w.replicas[1]->applied() >= 3 &&
           w.replicas[2]->applied() >= 3;
  }));
  EXPECT_EQ(w.bank(0).balance(), 120);
  EXPECT_EQ(w.bank(1).balance(), 120);
  EXPECT_EQ(w.bank(2).balance(), 120);
  EXPECT_EQ(last_result, 120);
}

TEST(ActiveReplication, ConcurrentWithdrawalsAreConsistent) {
  ActiveWorld w(3, 7);
  w.replicas[0]->submit(BankAccount::make_deposit(100));
  ASSERT_TRUE(test::run_until(w.world, sec(5),
                              [&] { return w.replicas[0]->applied() >= 1; }));
  // Two racing withdrawals of 70: exactly one can succeed.
  int succeeded = 0, failed = 0;
  auto cb = [&](const Bytes& r) {
    if (BankAccount::decode_result(r).first) ++succeeded;
    else ++failed;
  };
  w.replicas[1]->submit(BankAccount::make_withdraw(70), cb);
  w.replicas[2]->submit(BankAccount::make_withdraw(70), cb);
  ASSERT_TRUE(test::run_until(w.world, sec(10), [&] { return succeeded + failed == 2; }));
  EXPECT_EQ(succeeded, 1);
  EXPECT_EQ(failed, 1);
  ASSERT_TRUE(test::run_until(w.world, sec(10), [&] {
    return w.replicas[0]->applied() >= 3 && w.replicas[1]->applied() >= 3 &&
           w.replicas[2]->applied() >= 3;
  }));
  EXPECT_EQ(w.bank(0).balance(), 30);
  EXPECT_EQ(w.bank(1).balance(), 30);
  EXPECT_EQ(w.bank(2).balance(), 30);
}

TEST(ActiveReplication, JoinerInheritsStateBySnapshot) {
  World::Config c;
  c.n = 4;
  World w(c);
  std::vector<std::unique_ptr<ActiveReplication>> reps;
  for (ProcessId p = 0; p < 4; ++p) {
    reps.push_back(std::make_unique<ActiveReplication>(w.stack(p),
                                                       std::make_unique<BankAccount>()));
  }
  w.found_group({0, 1, 2});
  reps[0]->submit(BankAccount::make_deposit(500));
  ASSERT_TRUE(test::run_until(w.engine(), sec(5), [&] { return reps[0]->applied() >= 1; }));
  w.stack(3).join(0);
  ASSERT_TRUE(test::run_until(w.engine(), sec(10),
                              [&] { return w.stack(3).membership().is_member(); }));
  // The joiner's bank already holds the 500 via the snapshot.
  EXPECT_EQ(static_cast<BankAccount&>(reps[3]->state()).balance(), 500);
  // And it applies subsequent commands.
  reps[3]->submit(BankAccount::make_deposit(1));
  ASSERT_TRUE(test::run_until(w.engine(), sec(10), [&] {
    return static_cast<BankAccount&>(reps[0]->state()).balance() == 501 &&
           static_cast<BankAccount&>(reps[3]->state()).balance() == 501;
  }));
}

struct GenWorld {
  World world;
  std::vector<std::unique_ptr<GenericActiveReplication>> replicas;

  explicit GenWorld(int n, std::uint64_t seed = 1) : world(make(n, seed)) {
    for (ProcessId p = 0; p < n; ++p) {
      replicas.push_back(std::make_unique<GenericActiveReplication>(
          world.stack(p), std::make_unique<BankAccount>()));
    }
    world.found_group_all();
  }
  static World::Config make(int n, std::uint64_t seed) {
    World::Config c;
    c.n = n;
    c.seed = seed;
    c.stack.conflict = ConflictRelation::rbcast_abcast();
    return c;
  }
  BankAccount& bank(ProcessId p) {
    return static_cast<BankAccount&>(replicas[static_cast<std::size_t>(p)]->state());
  }
};

TEST(GenericActiveReplication, DepositsSkipConsensus) {
  GenWorld w(4);
  for (int i = 0; i < 10; ++i) {
    w.replicas[static_cast<std::size_t>(i % 4)]->submit(
        kRbcastClass, BankAccount::make_deposit(10));
  }
  ASSERT_TRUE(test::run_until(w.world, sec(10), [&] {
    for (auto& r : w.replicas) {
      if (r->applied() < 10) return false;
    }
    return true;
  }));
  for (ProcessId p = 0; p < 4; ++p) {
    EXPECT_EQ(w.bank(p).balance(), 100);
    EXPECT_EQ(w.world.stack(p).consensus().instances_decided(), 0) << "thrifty violated";
  }
}

TEST(GenericActiveReplication, MixedDepositsAndWithdrawalsConverge) {
  GenWorld w(4, 11);
  w.replicas[0]->submit(kRbcastClass, BankAccount::make_deposit(100));
  ASSERT_TRUE(test::run_until(w.world, sec(5),
                              [&] { return w.replicas[0]->applied() >= 1; }));
  for (int i = 0; i < 6; ++i) {
    if (i % 3 == 0) {
      w.replicas[static_cast<std::size_t>(i % 4)]->submit(kAbcastClass,
                                                          BankAccount::make_withdraw(20));
    } else {
      w.replicas[static_cast<std::size_t>(i % 4)]->submit(kRbcastClass,
                                                          BankAccount::make_deposit(5));
    }
  }
  ASSERT_TRUE(test::run_until(w.world, sec(30), [&] {
    for (auto& r : w.replicas) {
      if (r->applied() < 7) return false;
    }
    return true;
  }));
  // Deposits: 100 + 4*5 = 120; withdrawals: 2*20 = 40 (balance never goes
  // negative here, so both succeed) => 80 everywhere.
  for (ProcessId p = 0; p < 4; ++p) EXPECT_EQ(w.bank(p).balance(), 80);
}

struct PassiveWorld {
  World world;
  std::vector<std::unique_ptr<PassiveReplication>> replicas;

  PassiveWorld(int n, PassiveReplication::Config cfg, std::uint64_t seed = 1)
      : world(make(n, seed)) {
    world.found_group_all();
    for (ProcessId p = 0; p < n; ++p) {
      replicas.push_back(std::make_unique<PassiveReplication>(
          world.stack(p), std::make_unique<BankAccount>(), cfg));
    }
  }
  static World::Config make(int n, std::uint64_t seed) {
    World::Config c;
    c.n = n;
    c.seed = seed;
    c.stack.conflict = ConflictRelation::update_primary_change();
    return c;
  }
  BankAccount& bank(ProcessId p) {
    return static_cast<BankAccount&>(replicas[static_cast<std::size_t>(p)]->state());
  }
};

TEST(PassiveReplication, PrimaryHandlesAndBackupsFollow) {
  PassiveReplication::Config cfg;
  cfg.auto_primary_change = false;
  PassiveWorld w(4, cfg);
  EXPECT_TRUE(w.replicas[0]->is_primary());
  bool committed = false;
  std::int64_t balance = 0;
  w.replicas[0]->handle_request(BankAccount::make_deposit(100),
                                [&](bool ok, const Bytes& r) {
                                  committed = ok;
                                  balance = BankAccount::decode_result(r).second;
                                });
  ASSERT_TRUE(test::run_until(w.world, sec(10), [&] {
    for (auto& r : w.replicas) {
      if (r->updates_applied() < 1) return false;
    }
    return true;
  }));
  EXPECT_TRUE(committed);
  EXPECT_EQ(balance, 100);
  for (ProcessId p = 0; p < 4; ++p) EXPECT_EQ(w.bank(p).balance(), 100);
}

TEST(PassiveReplication, NonPrimaryRejectsRequests) {
  PassiveReplication::Config cfg;
  cfg.auto_primary_change = false;
  PassiveWorld w(4, cfg);
  bool called = false, ok = true;
  w.replicas[1]->handle_request(BankAccount::make_deposit(1), [&](bool o, const Bytes&) {
    called = true;
    ok = o;
  });
  EXPECT_TRUE(called);
  EXPECT_FALSE(ok);
}

TEST(PassiveReplication, ManualPrimaryChangeRotates) {
  PassiveReplication::Config cfg;
  cfg.auto_primary_change = false;
  PassiveWorld w(4, cfg);
  w.replicas[1]->request_primary_change();
  ASSERT_TRUE(test::run_until(w.world, sec(10), [&] {
    for (auto& r : w.replicas) {
      if (r->primary() != 1) return false;
    }
    return true;
  }));
  for (auto& r : w.replicas) {
    EXPECT_EQ(r->epoch(), 1u);
    EXPECT_EQ(r->replica_order(), (std::vector<ProcessId>{1, 2, 3, 0}));
  }
  // The old primary is NOT excluded (footnote 10).
  EXPECT_EQ(w.world.stack(1).view().members.size(), 4u);
}

TEST(PassiveReplication, CrashedPrimaryFailsOverAutomatically) {
  PassiveReplication::Config cfg;
  cfg.primary_suspect_timeout = msec(100);
  PassiveWorld w(4, cfg);
  bool committed = false;
  w.replicas[0]->handle_request(BankAccount::make_deposit(10),
                                [&](bool ok, const Bytes&) { committed = ok; });
  ASSERT_TRUE(test::run_until(w.world, sec(5), [&] { return committed; }));
  w.world.crash(0);
  // Backups suspect the primary and rotate to 1 — without any exclusion.
  ASSERT_TRUE(test::run_until(w.world, sec(10), [&] {
    return w.replicas[1]->is_primary() && w.replicas[2]->primary() == 1 &&
           w.replicas[3]->primary() == 1;
  }));
  // Service continues at the new primary.
  bool committed2 = false;
  std::int64_t balance = 0;
  w.replicas[1]->handle_request(BankAccount::make_deposit(5),
                                [&](bool ok, const Bytes& r) {
                                  committed2 = ok;
                                  balance = BankAccount::decode_result(r).second;
                                });
  ASSERT_TRUE(test::run_until(w.world, sec(10), [&] { return committed2; }));
  EXPECT_EQ(balance, 15);
}

/// Fig 8 reproduction: race an update against a primary-change and verify
/// only the two legal outcomes occur, consistently at every replica.
class Fig8Property : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(Fig8Property, OnlyTwoOutcomes) {
  const std::uint64_t seed = GetParam();
  PassiveReplication::Config cfg;
  cfg.auto_primary_change = false;
  PassiveWorld w(4, cfg, seed);
  // t ~ same instant: s1 broadcasts update(100); s2 broadcasts
  // primary-change(s1).
  bool update_committed = false, update_failed = false;
  w.replicas[0]->handle_request(BankAccount::make_deposit(100),
                                [&](bool ok, const Bytes&) {
                                  update_committed = ok;
                                  update_failed = !ok;
                                });
  w.replicas[1]->request_primary_change();
  ASSERT_TRUE(test::run_until(w.world, sec(20), [&] {
    if (!(update_committed || update_failed)) return false;
    for (auto& r : w.replicas) {
      if (r->primary_changes() < 1) return false;
    }
    return true;
  })) << "seed=" << seed;
  // All replicas agree on the outcome.
  const std::int64_t expect = update_committed ? 100 : 0;
  for (ProcessId p = 0; p < 4; ++p) {
    EXPECT_EQ(w.bank(p).balance(), expect) << "p" << p << " seed=" << seed;
    EXPECT_EQ(w.replicas[static_cast<std::size_t>(p)]->primary(), 1);
  }
  // Outcome 1: update delivered before the change => applied and committed.
  // Outcome 2: change first => update ignored everywhere.
  if (update_failed) {
    EXPECT_GE(w.replicas[0]->updates_ignored(), 1u);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Fig8Property, ::testing::Range<std::uint64_t>(1, 31));

}  // namespace
}  // namespace gcs::replication
