/// Integration tests: the whole Fig 9 stack end to end, including the
/// paper's headline behaviours (§3.1, §4.3, §4.4).
#include <gtest/gtest.h>

#include "core/stack.hpp"
#include "tests/test_util.hpp"

namespace gcs {
namespace {

using test::bytes_of;
using test::consistent_prefix;

World::Config cfg(int n, std::uint64_t seed = 1, StackConfig sc = {}) {
  World::Config c;
  c.n = n;
  c.seed = seed;
  c.stack = std::move(sc);
  return c;
}

TEST(Stack, EndToEndMixedWorkload) {
  // On assertion failure the recorder dumps the recent protocol history.
  test::FlightRecorder fr;
  StackConfig sc;
  fr.install(sc);
  World w(cfg(4, 1, sc));
  test::ScenarioOracle oracle(w, msec(20), 1);
  std::vector<test::DeliveryLog> alogs(4);
  std::vector<test::DeliveryLog> glogs(4);
  for (ProcessId p = 0; p < 4; ++p) {
    w.stack(p).on_adeliver([&alogs, p](const MsgId& id, const Bytes& b) {
      alogs[static_cast<std::size_t>(p)].record(id, b);
    });
    w.stack(p).on_gdeliver([&glogs, p](const MsgId& id, MsgClass, const Bytes& b) {
      glogs[static_cast<std::size_t>(p)].record(id, b);
    });
  }
  w.found_group_all();
  for (int i = 0; i < 10; ++i) {
    w.stack(static_cast<ProcessId>(i % 4)).abcast(bytes_of("a" + std::to_string(i)));
    w.stack(static_cast<ProcessId>((i + 1) % 4)).rbcast(bytes_of("r" + std::to_string(i)));
  }
  ASSERT_TRUE(test::run_until(w.engine(), sec(30), [&] {
    for (int p = 0; p < 4; ++p) {
      if (alogs[static_cast<std::size_t>(p)].size() < 10) return false;
      if (glogs[static_cast<std::size_t>(p)].size() < 10) return false;
    }
    return true;
  }));
  for (int p = 1; p < 4; ++p) {
    EXPECT_TRUE(consistent_prefix(alogs[0].order, alogs[static_cast<std::size_t>(p)].order));
  }
  w.run_for(sec(1));  // settle before the oracle's finalize-time checks
}

TEST(Stack, AbcastKeepsRunningThroughFalseSuspicions) {
  // The headline §3.1.1 property: atomic broadcast above ◇S consensus does
  // not block or reconfigure when the FD is wrong. Inject a burst of false
  // suspicions of every process while traffic flows.
  StackConfig sc;
  sc.consensus_suspect_timeout = msec(40);
  sc.monitoring.exclusion_timeout = sec(60);
  World w(cfg(4, 3, sc));
  test::ScenarioOracle oracle(w, msec(20), 3);
  std::vector<test::DeliveryLog> alogs(4);
  for (ProcessId p = 0; p < 4; ++p) {
    w.stack(p).on_adeliver([&alogs, p](const MsgId& id, const Bytes& b) {
      alogs[static_cast<std::size_t>(p)].record(id, b);
    });
  }
  w.found_group_all();
  int sent = 0;
  for (int burst = 0; burst < 5; ++burst) {
    for (ProcessId p = 0; p < 4; ++p) {
      w.stack(p).abcast(bytes_of(std::to_string(sent++)));
      // Everyone wrongly suspects the round-robin coordinator candidates.
      w.stack(p).fd().inject_suspicion(w.stack(p).consensus_fd_class(),
                                       static_cast<ProcessId>((p + 1) % 4));
    }
    w.run_for(msec(50));
  }
  ASSERT_TRUE(test::run_until(w.engine(), sec(60), [&] {
    for (int p = 0; p < 4; ++p) {
      if (alogs[static_cast<std::size_t>(p)].size() < static_cast<std::size_t>(sent)) return false;
    }
    return true;
  }));
  // Nobody got excluded: suspicions stayed at the consensus level.
  EXPECT_EQ(w.stack(0).view().members.size(), 4u);
  for (int p = 1; p < 4; ++p) {
    EXPECT_EQ(alogs[static_cast<std::size_t>(p)].order, alogs[0].order);
  }
}

TEST(Stack, CrashRecoveryEndToEnd) {
  // Crash a member mid-traffic: abcast continues (majority), monitoring
  // eventually excludes the corpse, and the group keeps delivering.
  StackConfig sc;
  sc.monitoring.exclusion_timeout = msec(600);
  World w(cfg(5, 9, sc));
  test::ScenarioOracle oracle(w, msec(20), 9);
  oracle.set_metrics(&w.stack(0).metrics());
  std::vector<test::DeliveryLog> alogs(5);
  for (ProcessId p = 0; p < 5; ++p) {
    w.stack(p).on_adeliver([&alogs, p](const MsgId& id, const Bytes& b) {
      alogs[static_cast<std::size_t>(p)].record(id, b);
    });
  }
  w.found_group_all();
  for (int i = 0; i < 5; ++i) w.stack(0).abcast(bytes_of("pre" + std::to_string(i)));
  w.run_for(msec(50));
  w.crash(4);
  for (int i = 0; i < 5; ++i) w.stack(1).abcast(bytes_of("mid" + std::to_string(i)));
  ASSERT_TRUE(test::run_until(w.engine(), sec(20),
                              [&] { return !w.stack(0).view().contains(4); }));
  for (int i = 0; i < 5; ++i) w.stack(2).abcast(bytes_of("post" + std::to_string(i)));
  ASSERT_TRUE(test::run_until(w.engine(), sec(30), [&] {
    for (ProcessId p = 0; p < 4; ++p) {
      if (alogs[static_cast<std::size_t>(p)].size() < 15) return false;
    }
    return true;
  }));
  for (ProcessId p = 1; p < 4; ++p) {
    EXPECT_EQ(alogs[static_cast<std::size_t>(p)].order, alogs[0].order);
  }
}

TEST(Stack, SendersNeverBlockDuringViewChange) {
  // §4.4: with membership above abcast, a join does NOT block senders.
  // Fire traffic continuously across a join and verify that messages sent
  // during the view change are accepted and delivered.
  World w(cfg(4, 5));
  test::ScenarioOracle oracle(w, msec(20), 5);
  std::vector<test::DeliveryLog> alogs(4);
  for (ProcessId p = 0; p < 4; ++p) {
    w.stack(p).on_adeliver([&alogs, p](const MsgId& id, const Bytes& b) {
      alogs[static_cast<std::size_t>(p)].record(id, b);
    });
  }
  w.found_group({0, 1, 2});
  int sent = 0;
  // Interleave: send, start join, keep sending during the change.
  for (int i = 0; i < 3; ++i) w.stack(0).abcast(bytes_of(std::to_string(sent++)));
  w.stack(3).join(1);
  for (int i = 0; i < 10; ++i) {
    w.stack(static_cast<ProcessId>(i % 3)).abcast(bytes_of(std::to_string(sent++)));
    w.run_for(msec(2));
  }
  ASSERT_TRUE(test::run_until(w.engine(), sec(30), [&] {
    return alogs[0].size() >= static_cast<std::size_t>(sent) &&
           w.stack(3).membership().is_member();
  }));
  EXPECT_EQ(alogs[0].size(), static_cast<std::size_t>(sent));
  EXPECT_TRUE(consistent_prefix(alogs[0].order, alogs[1].order));
  w.run_for(sec(1));  // settle before the oracle's finalize-time checks
}

TEST(Stack, GenericBroadcastAndMembershipCompose) {
  // gbcast traffic across a membership change stays safe.
  test::FlightRecorder fr;
  StackConfig sc;
  fr.install(sc);
  World w(cfg(5, 13, sc));
  test::ScenarioOracle oracle(w, msec(20), 13);
  std::vector<test::DeliveryLog> glogs(5);
  for (ProcessId p = 0; p < 5; ++p) {
    w.stack(p).on_gdeliver([&glogs, p](const MsgId& id, MsgClass, const Bytes& b) {
      glogs[static_cast<std::size_t>(p)].record(id, b);
    });
  }
  w.found_group({0, 1, 2, 3});
  for (int i = 0; i < 5; ++i) {
    w.stack(static_cast<ProcessId>(i % 4)).rbcast(bytes_of("pre" + std::to_string(i)));
  }
  w.run_for(msec(50));
  w.stack(4).join(0);
  ASSERT_TRUE(test::run_until(w.engine(), sec(20),
                              [&] { return w.stack(4).membership().is_member(); }));
  for (int i = 0; i < 5; ++i) {
    w.stack(static_cast<ProcessId>(i % 5)).gbcast((i % 2) ? kAbcastClass : kRbcastClass,
                                                  bytes_of("post" + std::to_string(i)));
  }
  ASSERT_TRUE(test::run_until(w.engine(), sec(30), [&] {
    for (ProcessId p = 0; p < 4; ++p) {
      if (glogs[static_cast<std::size_t>(p)].size() < 10) return false;
    }
    return glogs[4].size() >= 5;
  }));
  // Old members delivered everything exactly once.
  for (ProcessId p = 0; p < 4; ++p) {
    std::set<MsgId> uniq(glogs[static_cast<std::size_t>(p)].order.begin(),
                         glogs[static_cast<std::size_t>(p)].order.end());
    EXPECT_EQ(uniq.size(), glogs[static_cast<std::size_t>(p)].order.size());
  }
}

TEST(Stack, DeterministicAcrossRuns) {
  auto run_once = [](std::uint64_t seed) {
    World w(cfg(4, seed));
    std::vector<MsgId> order;
    w.stack(0).on_adeliver([&order](const MsgId& id, const Bytes&) { order.push_back(id); });
    w.found_group_all();
    for (int i = 0; i < 8; ++i) {
      w.stack(static_cast<ProcessId>(i % 4)).abcast(bytes_of(std::to_string(i)));
    }
    test::run_until(w.engine(), sec(10), [&] { return order.size() >= 8; });
    return order;
  };
  EXPECT_EQ(run_once(42), run_once(42));
}


TEST(Stack, CausalBroadcastOperation) {
  // cbcast at the stack level: happened-before order across members.
  World w(cfg(4, 21));
  test::ScenarioOracle oracle(w, msec(20), 21);
  std::vector<std::vector<MsgId>> clogs(4);
  for (ProcessId p = 0; p < 4; ++p) {
    w.stack(p).on_cdeliver([&clogs, p](const MsgId& id, const Bytes&) {
      clogs[static_cast<std::size_t>(p)].push_back(id);
    });
  }
  w.found_group_all();
  const MsgId m1 = w.stack(0).cbcast(bytes_of("cause"));
  ASSERT_TRUE(test::run_until(w.engine(), sec(5), [&] { return !clogs[1].empty(); }));
  const MsgId m2 = w.stack(1).cbcast(bytes_of("effect"));
  ASSERT_TRUE(test::run_until(w.engine(), sec(5), [&] {
    for (auto& log : clogs) {
      if (log.size() < 2) return false;
    }
    return true;
  }));
  for (ProcessId p = 0; p < 4; ++p) {
    const auto& log = clogs[static_cast<std::size_t>(p)];
    EXPECT_EQ(log[0], m1) << "p" << p;
    EXPECT_EQ(log[1], m2) << "p" << p;
  }
  // Causal order costs no consensus.
  EXPECT_EQ(w.stack(0).consensus().instances_decided(), 0);
}

TEST(Stack, MetricsAreExposed) {
  World w(cfg(3));
  w.found_group_all();
  w.stack(0).abcast(bytes_of("x"));
  w.run_for(sec(1));
  EXPECT_GT(w.stack(0).metrics().counter("abcast.broadcasts"), 0);
  EXPECT_GT(w.stack(0).metrics().counter("consensus.decided"), 0);
  EXPECT_GT(w.network().metrics().counter("net.delivered"), 0);
}

}  // namespace
}  // namespace gcs
