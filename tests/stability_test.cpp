/// Stability tracking and garbage collection (the Ensemble `stable`
/// component of paper Fig 5): watermark gossip, floor advancement, dedup
/// pruning, bounded memory on long runs, and floor freezing while a
/// crashed member is still in the group.
#include <gtest/gtest.h>

#include "core/stack.hpp"
#include "tests/test_util.hpp"

namespace gcs {
namespace {

using test::bytes_of;

World::Config cfg(int n, Duration stability, std::uint64_t seed = 1,
                  Duration exclusion = sec(60)) {
  World::Config c;
  c.n = n;
  c.seed = seed;
  c.stack.stability_interval = stability;
  c.stack.monitoring.exclusion_timeout = exclusion;
  return c;
}

TEST(Stability, FloorAdvancesInSteadyState) {
  World w(cfg(3, msec(20)));
  w.found_group_all();
  std::size_t delivered = 0;
  w.stack(0).on_adeliver([&](const MsgId&, const Bytes&) { ++delivered; });
  for (int i = 0; i < 10; ++i) w.stack(1).abcast(bytes_of(std::to_string(i)));
  ASSERT_TRUE(test::run_until(w.engine(), sec(10), [&] { return delivered >= 10; }));
  // A few gossip rounds later the floor covers all 10 messages of p1.
  ASSERT_TRUE(test::run_until(w.engine(), sec(5), [&] {
    return w.stack(0).atomic_broadcast().next_instance() > 0 &&
           w.stack(0).metrics().counter("rbcast.stability_pruned") > 0;
  }));
  w.run_for(msec(200));
  EXPECT_GE(w.stack(0).metrics().counter("rbcast.stability_gossip"), 3);
}

TEST(Stability, DedupMemoryStaysBoundedOnLongRuns) {
  World w(cfg(3, msec(10)));
  w.found_group_all();
  std::size_t delivered = 0;
  w.stack(0).on_adeliver([&](const MsgId&, const Bytes&) { ++delivered; });
  // Long steady run: 500 messages over 5 virtual seconds; sample the dedup
  // set as we go — it must stay small even though 500 ids passed through.
  std::size_t max_dedup = 0;
  for (int i = 0; i < 500; ++i) {
    w.stack(static_cast<ProcessId>(i % 3)).abcast(bytes_of(std::to_string(i)));
    w.run_for(msec(10));
    max_dedup = std::max(max_dedup, w.stack(0).abcast_substrate().dedup_size());
  }
  ASSERT_TRUE(test::run_until(w.engine(), sec(30), [&] { return delivered >= 500; }));
  w.run_for(msec(300));
  EXPECT_GT(w.stack(0).metrics().counter("rbcast.stability_pruned"), 50);
  EXPECT_LT(max_dedup, 100u) << "dedup set grew without bound";
  EXPECT_LT(w.stack(0).abcast_substrate().dedup_size(), 50u);
}

TEST(Stability, AbcastDedupGcIsPerSenderPrefix) {
  // Regression guard for the adelivered-dedup GC: the index is per sender,
  // so each stability event erases exactly the newly stable prefix. The
  // work counter must therefore be bounded by (one probe per event) +
  // (each dedup entry erased once) — the full-set scan this replaced cost
  // events × set-size, i.e. tens of thousands of steps in this workload.
  World w(cfg(3, msec(10), 17));
  w.found_group_all();
  std::size_t delivered = 0;
  w.stack(0).on_adeliver([&](const MsgId&, const Bytes&) { ++delivered; });
  const int kMsgs = 300;
  for (int i = 0; i < kMsgs; ++i) {
    w.stack(static_cast<ProcessId>(i % 3)).abcast(bytes_of(std::to_string(i)));
    w.run_for(msec(5));
  }
  ASSERT_TRUE(test::run_until(w.engine(), sec(30),
                              [&] { return delivered >= static_cast<std::size_t>(kMsgs); }));
  w.run_for(msec(500));
  const auto events = w.stack(0).metrics().counter("rbcast.stability_pruned");
  const auto steps = w.stack(0).atomic_broadcast().stability_gc_steps();
  ASSERT_GT(events, 0);
  EXPECT_GT(steps, 0u);
  EXPECT_LE(steps, static_cast<std::uint64_t>(events) + kMsgs + 64)
      << "dedup GC did more work than event-probes + one-erase-per-entry";
}

TEST(Stability, NoRedeliveryAfterPruning) {
  // Total order and exactly-once must survive pruning: run traffic with
  // aggressive gossip and verify the usual invariants.
  World w(cfg(4, msec(5), 7));
  std::vector<test::DeliveryLog> logs(4);
  for (ProcessId p = 0; p < 4; ++p) {
    w.stack(p).on_adeliver([&logs, p](const MsgId& id, const Bytes& b) {
      logs[static_cast<std::size_t>(p)].record(id, b);
    });
  }
  w.found_group_all();
  for (int i = 0; i < 60; ++i) {
    w.stack(static_cast<ProcessId>(i % 4)).abcast(bytes_of(std::to_string(i)));
    w.run_for(msec(3));
  }
  ASSERT_TRUE(test::run_until(w.engine(), sec(30), [&] {
    for (auto& log : logs) {
      if (log.size() < 60) return false;
    }
    return true;
  }));
  w.run_for(sec(1));
  for (ProcessId p = 0; p < 4; ++p) {
    auto& log = logs[static_cast<std::size_t>(p)];
    EXPECT_EQ(log.size(), 60u) << "duplicate after pruning at p" << p;
    std::set<MsgId> uniq(log.order.begin(), log.order.end());
    EXPECT_EQ(uniq.size(), 60u);
    EXPECT_EQ(log.order, logs[0].order);
  }
}

TEST(Stability, CrashedMemberFreezesFloorUntilExcluded) {
  // A silent member cannot acknowledge stability, so the floor freezes —
  // and resumes once the membership excludes the corpse: the §3.3.2
  // motivation for output-triggered exclusions, seen from the GC side.
  World w(cfg(4, msec(10), 11, /*exclusion=*/msec(800)));
  w.found_group_all();
  std::size_t delivered = 0;
  w.stack(0).on_adeliver([&](const MsgId&, const Bytes&) { ++delivered; });
  for (int i = 0; i < 5; ++i) w.stack(0).abcast(bytes_of("pre" + std::to_string(i)));
  ASSERT_TRUE(test::run_until(w.engine(), sec(5), [&] { return delivered >= 5; }));
  w.run_for(msec(100));  // floors advance for the pre-crash traffic
  const auto pruned_before = w.stack(0).metrics().counter("rbcast.stability_pruned");
  w.crash(3);
  w.run_for(msec(100));  // drain in-flight gossip from p3
  for (int i = 0; i < 5; ++i) w.stack(1).abcast(bytes_of("post" + std::to_string(i)));
  ASSERT_TRUE(test::run_until(w.engine(), sec(10), [&] { return delivered >= 10; }));
  const auto pruned_frozen = w.stack(0).metrics().counter("rbcast.stability_pruned");
  // p3's last gossip may still have covered some early post-crash traffic;
  // after that the floor freezes. Wait for the exclusion, then more
  // traffic must prune again.
  ASSERT_TRUE(test::run_until(w.engine(), sec(10),
                              [&] { return !w.stack(0).view().contains(3); }));
  for (int i = 0; i < 5; ++i) w.stack(2).abcast(bytes_of("fin" + std::to_string(i)));
  ASSERT_TRUE(test::run_until(w.engine(), sec(10), [&] { return delivered >= 15; }));
  w.run_for(msec(500));
  const auto pruned_after = w.stack(0).metrics().counter("rbcast.stability_pruned");
  EXPECT_GT(pruned_before, 0);
  EXPECT_GT(pruned_after, pruned_frozen) << "floor did not resume after exclusion";
}

TEST(Stability, WorksAcrossJoins) {
  World w(cfg(4, msec(10), 13));
  w.found_group({0, 1, 2});
  std::size_t delivered = 0;
  w.stack(0).on_adeliver([&](const MsgId&, const Bytes&) { ++delivered; });
  for (int i = 0; i < 10; ++i) {
    w.stack(static_cast<ProcessId>(i % 3)).abcast(bytes_of(std::to_string(i)));
    w.run_for(msec(5));
  }
  ASSERT_TRUE(test::run_until(w.engine(), sec(10), [&] { return delivered >= 10; }));
  w.stack(3).join(0);
  ASSERT_TRUE(test::run_until(w.engine(), sec(10),
                              [&] { return w.stack(3).membership().is_member(); }));
  // Joiner participates in stability; traffic keeps pruning.
  const auto before = w.stack(0).metrics().counter("rbcast.stability_pruned");
  for (int i = 0; i < 10; ++i) {
    w.stack(static_cast<ProcessId>(i % 4)).abcast(bytes_of("j" + std::to_string(i)));
    w.run_for(msec(5));
  }
  w.run_for(msec(500));
  EXPECT_GT(w.stack(0).metrics().counter("rbcast.stability_pruned"), before);
}

}  // namespace
}  // namespace gcs
