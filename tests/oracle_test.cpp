/// Tests for the omniscient protocol oracle (obs/oracle.hpp): a clean event
/// stream passes every property, and for EACH property a minimal corrupted
/// stream trips exactly the right verdict. The final tests sabotage a real
/// stack (GB fast quorum below 2n/3) and check the oracle catches the
/// resulting ordering violation end to end.
#include <gtest/gtest.h>

#include "core/stack.hpp"
#include "obs/oracle.hpp"
#include "obs/report.hpp"
#include "tests/test_util.hpp"

namespace gcs {
namespace {

using obs::Oracle;
using obs::Property;
using obs::Verdict;
using test::bytes_of;

MsgId mid(ProcessId sender, std::uint64_t seq) { return MsgId{sender, seq}; }

/// Feed a minimal healthy run: one view, one abcast, one gbcast, delivered
/// consistently at both members.
void feed_clean(Oracle& o) {
  o.on_view_install(0, 0, {0, 1}, false);
  o.on_view_install(1, 0, {0, 1}, false);
  const MsgId a = mid(0, 1);
  o.on_abcast_submit(0, a);
  o.on_adeliver(0, a, 0, /*instance=*/0, /*index=*/0);
  o.on_adeliver(1, a, 0, 0, 0);
  const MsgId g = mid(1, 1);
  o.on_gb_submit(1, g, 0);
  o.on_gdeliver(0, g, 0, /*round=*/0, /*fast=*/true, 0);
  o.on_gdeliver(1, g, 0, 0, true, 0);
  const MsgId r = mid(0, 2);
  o.on_rb_broadcast(0, 3, r);
  o.on_rb_deliver(0, 3, r);
  o.on_rb_deliver(1, 3, r);
}

TEST(Oracle, CleanStreamPassesEveryProperty) {
  Oracle o;
  feed_clean(o);
  // Finalize-only properties are reported as not-checked until finalize().
  EXPECT_EQ(o.verdict(Property::kAbUniformAgreement), Verdict::kNotChecked);
  o.finalize();
  EXPECT_TRUE(o.passed()) << o.summary();
  for (std::size_t i = 0; i < obs::kPropertyCount; ++i) {
    EXPECT_EQ(o.verdict(static_cast<Property>(i)), Verdict::kPass)
        << obs::property_name(static_cast<Property>(i));
  }
  EXPECT_EQ(o.stats().adeliveries, 2u);
  EXPECT_EQ(o.stats().gdeliveries, 2u);
  EXPECT_EQ(o.stats().rb_deliveries, 2u);
  EXPECT_EQ(o.stats().view_installs, 2u);
}

TEST(Oracle, AbTotalOrderCoordinateDisagreement) {
  Oracle o;
  const MsgId m1 = mid(0, 1), m2 = mid(1, 1);
  o.on_abcast_submit(0, m1);
  o.on_abcast_submit(1, m2);
  // Two processes disagree about element 0 of consensus instance 0.
  o.on_adeliver(0, m1, 0, 0, 0);
  o.on_adeliver(1, m2, 0, 0, 0);
  EXPECT_EQ(o.verdict(Property::kAbTotalOrder), Verdict::kViolated);
  EXPECT_GE(o.violation_count(Property::kAbTotalOrder), 1u);
  EXPECT_FALSE(o.passed());
}

TEST(Oracle, AbTotalOrderRegressionWithinProcess) {
  Oracle o;
  const MsgId m1 = mid(0, 1), m2 = mid(0, 2);
  o.on_abcast_submit(0, m1);
  o.on_abcast_submit(0, m2);
  o.on_adeliver(0, m2, 0, /*instance=*/1, 0);
  o.on_adeliver(0, m1, 0, /*instance=*/0, 0);  // walks backwards
  EXPECT_EQ(o.verdict(Property::kAbTotalOrder), Verdict::kViolated);
}

TEST(Oracle, AbNoDuplication) {
  Oracle o;
  const MsgId m = mid(0, 1);
  o.on_abcast_submit(0, m);
  o.on_adeliver(0, m, 0, 0, 0);
  o.on_adeliver(0, m, 0, 1, 0);
  EXPECT_EQ(o.verdict(Property::kAbNoDuplication), Verdict::kViolated);
}

TEST(Oracle, AbNoCreation) {
  Oracle o;
  o.on_adeliver(0, mid(7, 9), 0, 0, 0);  // never submitted
  EXPECT_EQ(o.verdict(Property::kAbNoCreation), Verdict::kViolated);
}

TEST(Oracle, AbUniformAgreementCatchesMissingDelivery) {
  Oracle o;
  o.on_view_install(0, 0, {0, 1}, false);
  o.on_view_install(1, 0, {0, 1}, false);
  const MsgId m = mid(0, 1);
  o.on_abcast_submit(0, m);
  o.on_adeliver(0, m, 0, 0, 0);  // p1 never delivers
  o.finalize();
  EXPECT_EQ(o.verdict(Property::kAbUniformAgreement), Verdict::kViolated);
}

TEST(Oracle, CrashedProcessExemptFromAgreement) {
  Oracle o;
  o.on_view_install(0, 0, {0, 1}, false);
  o.on_view_install(1, 0, {0, 1}, false);
  const MsgId m = mid(0, 1);
  o.on_abcast_submit(0, m);
  o.on_adeliver(0, m, 0, 0, 0);
  o.note_crash(1);  // p1's missing delivery is excused
  o.finalize();
  EXPECT_TRUE(o.passed()) << o.summary();
}

TEST(Oracle, RbIntegrity) {
  Oracle o;
  o.on_rb_deliver(0, 3, mid(2, 5));  // never broadcast
  EXPECT_EQ(o.verdict(Property::kRbIntegrity), Verdict::kViolated);
}

TEST(Oracle, RbNoDuplication) {
  Oracle o;
  const MsgId m = mid(0, 1);
  o.on_rb_broadcast(0, 3, m);
  o.on_rb_deliver(1, 3, m);
  o.on_rb_deliver(1, 3, m);
  EXPECT_EQ(o.verdict(Property::kRbNoDuplication), Verdict::kViolated);
  // Distinct tags are distinct rbcast instances: no cross-tag dup.
  Oracle o2;
  o2.on_rb_broadcast(0, 3, m);
  o2.on_rb_broadcast(0, 4, m);
  o2.on_rb_deliver(1, 3, m);
  o2.on_rb_deliver(1, 4, m);
  EXPECT_EQ(o2.verdict(Property::kRbNoDuplication), Verdict::kPass);
}

TEST(Oracle, GbConflictingPairBothFastInOneRound) {
  Oracle o;
  o.set_conflicts([](std::uint8_t, std::uint8_t) { return true; });
  const MsgId m1 = mid(0, 1), m2 = mid(1, 1);
  o.on_gb_submit(0, m1, 1);
  o.on_gb_submit(1, m2, 1);
  // The quorum-intersection failure: both fast-delivered in round 0.
  o.on_gdeliver(0, m1, 1, 0, true, 0);
  o.on_gdeliver(1, m2, 1, 0, true, 0);
  EXPECT_EQ(o.verdict(Property::kGbConflictOrder), Verdict::kViolated);
}

TEST(Oracle, GbFastPathStabilityRoundDisagreement) {
  Oracle o;
  const MsgId m = mid(0, 1);
  o.on_gb_submit(0, m, 0);
  o.on_gdeliver(0, m, 0, /*round=*/0, true, 0);
  o.on_gdeliver(1, m, 0, /*round=*/1, true, 0);  // same msg, another round
  EXPECT_EQ(o.verdict(Property::kGbFastPathStability), Verdict::kViolated);
}

TEST(Oracle, GbNoDuplicationAndNoCreation) {
  Oracle o;
  const MsgId m = mid(0, 1);
  o.on_gb_submit(0, m, 0);
  o.on_gdeliver(0, m, 0, 0, true, 0);
  o.on_gdeliver(0, m, 0, 0, true, 0);
  EXPECT_EQ(o.verdict(Property::kGbNoDuplication), Verdict::kViolated);
  Oracle o2;
  o2.on_gdeliver(0, mid(9, 9), 0, 0, true, 0);
  EXPECT_EQ(o2.verdict(Property::kGbNoCreation), Verdict::kViolated);
}

TEST(Oracle, GbAgreementCatchesMissingDelivery) {
  Oracle o;
  o.on_view_install(0, 0, {0, 1}, false);
  o.on_view_install(1, 0, {0, 1}, false);
  const MsgId m = mid(0, 1);
  o.on_gb_submit(0, m, 0);
  o.on_gdeliver(0, m, 0, 0, true, 0);  // p1 never delivers
  o.finalize();
  EXPECT_EQ(o.verdict(Property::kGbAgreement), Verdict::kViolated);
}

TEST(Oracle, ViewAgreement) {
  Oracle o;
  o.on_view_install(0, 1, {0, 1}, false);
  o.on_view_install(1, 1, {0, 2}, false);  // same id, different membership
  EXPECT_EQ(o.verdict(Property::kViewAgreement), Verdict::kViolated);
}

TEST(Oracle, ViewMonotonicity) {
  Oracle o;
  o.on_view_install(0, 1, {0, 1}, false);
  o.on_view_install(0, 1, {0, 1}, false);  // ids must strictly grow
  EXPECT_EQ(o.verdict(Property::kViewMonotonicity), Verdict::kViolated);
}

TEST(Oracle, ExclusionAccountability) {
  Oracle o;
  o.on_view_install(0, 0, {0, 1, 2}, false);
  // p2 silently vanishes from the next view: nobody ever proposed it.
  o.on_view_install(0, 1, {0, 1}, false);
  EXPECT_EQ(o.verdict(Property::kExclusionAccountability), Verdict::kViolated);

  // With a prior monitoring/admin/voluntary proposal the same exclusion
  // is accountable.
  Oracle o2;
  o2.on_view_install(0, 0, {0, 1, 2}, false);
  o2.on_remove_proposed(0, 2, false);
  o2.on_view_install(0, 1, {0, 1}, false);
  EXPECT_EQ(o2.verdict(Property::kExclusionAccountability), Verdict::kPass);
}

TEST(Oracle, SummaryAndReportAreDeterministic) {
  Oracle o;
  feed_clean(o);
  o.finalize();
  const std::string s = o.summary();
  EXPECT_NE(s.find("ab.total_order: pass"), std::string::npos) << s;
  const std::string r1 = obs::render_scenario_report("t", 1, o, nullptr, nullptr);
  const std::string r2 = obs::render_scenario_report("t", 1, o, nullptr, nullptr);
  EXPECT_EQ(r1, r2);
  EXPECT_NE(r1.find("nggcs.scenario_report.v1"), std::string::npos);
  EXPECT_NE(r1.find("\"passed\":true"), std::string::npos) << r1;
}

TEST(Oracle, ViolationListIsBoundedButCountsAreNot) {
  Oracle o;
  for (std::uint64_t i = 0; i < 200; ++i) {
    o.on_adeliver(0, mid(3, i + 1), 0, i, 0);  // 200 x no-creation
  }
  EXPECT_FALSE(o.passed());
  EXPECT_LE(o.violations().size(), 64u);
  EXPECT_EQ(o.violation_count(Property::kAbNoCreation), 200u);
  EXPECT_GT(o.truncated_violations(), 0u);
}

/// End-to-end negative test: run a REAL stack with the GB fast quorum
/// deliberately broken (2 of 4 <= 2n/3), race conflicting pairs, and
/// require the attached oracle to catch the ordering violation on at least
/// one seed. Mirrors bench_e8's ablation (e).
TEST(OracleStack, BrokenFastQuorumIsCaught) {
  std::uint64_t conflict_violations = 0;
  for (std::uint64_t seed = 1; seed <= 12 && conflict_violations == 0; ++seed) {
    World::Config cfg;
    cfg.n = 4;
    cfg.seed = 1000 + seed;
    cfg.link.jitter = usec(400);
    cfg.stack.gb.unsafe_fast_quorum_override = 2;
    World w(cfg);
    obs::Oracle oracle;
    w.attach_oracle(oracle);
    std::vector<std::size_t> counts(4, 0);
    for (ProcessId p = 0; p < 4; ++p) {
      w.stack(p).on_gdeliver(
          [&counts, p](const MsgId&, MsgClass, const Bytes&) {
            ++counts[static_cast<std::size_t>(p)];
          });
    }
    w.found_group_all();
    for (int i = 0; i < 6; ++i) {
      w.engine().schedule_at(i * msec(3), [&w, i] {
        w.stack(static_cast<ProcessId>(i % 4))
            .gbcast(kAbcastClass, bytes_of("a" + std::to_string(i)));
        w.stack(static_cast<ProcessId>((i + 1) % 4))
            .gbcast(kAbcastClass, bytes_of("b" + std::to_string(i)));
      });
    }
    test::run_until(w.engine(), sec(60), [&] {
      for (auto c : counts) {
        if (c < 12) return false;
      }
      return true;
    });
    conflict_violations = oracle.violation_count(Property::kGbConflictOrder) +
                          oracle.violation_count(Property::kGbFastPathStability);
  }
  EXPECT_GT(conflict_violations, 0u)
      << "a sub-2n/3 fast quorum must eventually double-fast-deliver a "
         "conflicting pair";
}

/// Control for the negative test: the CORRECT quorum under the same race
/// never trips the conflict-order property.
TEST(OracleStack, CorrectQuorumStaysClean) {
  World::Config cfg;
  cfg.n = 4;
  cfg.seed = 1001;
  cfg.link.jitter = usec(400);
  World w(cfg);
  obs::Oracle oracle;
  w.attach_oracle(oracle);
  std::vector<std::size_t> counts(4, 0);
  for (ProcessId p = 0; p < 4; ++p) {
    w.stack(p).on_gdeliver([&counts, p](const MsgId&, MsgClass, const Bytes&) {
      ++counts[static_cast<std::size_t>(p)];
    });
  }
  w.found_group_all();
  for (int i = 0; i < 6; ++i) {
    w.engine().schedule_at(i * msec(3), [&w, i] {
      w.stack(static_cast<ProcessId>(i % 4))
          .gbcast(kAbcastClass, bytes_of("a" + std::to_string(i)));
      w.stack(static_cast<ProcessId>((i + 1) % 4))
          .gbcast(kAbcastClass, bytes_of("b" + std::to_string(i)));
    });
  }
  ASSERT_TRUE(test::run_until(w.engine(), sec(60), [&] {
    for (auto c : counts) {
      if (c < 12) return false;
    }
    return true;
  }));
  w.run_for(sec(1));
  oracle.finalize();
  EXPECT_TRUE(oracle.passed()) << oracle.summary();
}

}  // namespace
}  // namespace gcs
