#include <gtest/gtest.h>

#include <map>
#include <memory>

#include "consensus/consensus.hpp"
#include "tests/test_util.hpp"

namespace gcs {
namespace {

using test::bytes_of;
using test::str_of;

struct ConsensusWorld {
  sim::Engine engine;
  sim::Network network;
  struct Proc {
    std::unique_ptr<sim::Context> ctx;
    std::unique_ptr<SimTransport> transport;
    std::unique_ptr<ReliableChannel> channel;
    std::unique_ptr<FailureDetector> fd;
    FailureDetector::ClassId fd_class = 0;
    std::unique_ptr<Consensus> consensus;
    std::map<std::uint64_t, std::string> decisions;
  };
  std::vector<Proc> procs;
  std::vector<ProcessId> all;

  explicit ConsensusWorld(int n, sim::LinkModel link = {}, Duration suspect_timeout = msec(60),
                          std::uint64_t seed = 1)
      : network(engine, n, link, seed) {
    procs.resize(static_cast<std::size_t>(n));
    for (ProcessId p = 0; p < n; ++p) {
      all.push_back(p);
      auto& proc = procs[static_cast<std::size_t>(p)];
      proc.ctx = std::make_unique<sim::Context>(
          p, engine, Rng(seed * 77 + static_cast<std::uint64_t>(p)), Logger(),
          std::make_shared<Metrics>());
      proc.transport = std::make_unique<SimTransport>(*proc.ctx, network);
      proc.channel = std::make_unique<ReliableChannel>(*proc.ctx, *proc.transport);
      proc.fd = std::make_unique<FailureDetector>(*proc.ctx, *proc.transport);
      proc.fd_class = proc.fd->add_class(suspect_timeout);
      proc.consensus = std::make_unique<Consensus>(*proc.ctx, *proc.channel, *proc.fd,
                                                   proc.fd_class);
      proc.consensus->on_decide([&proc](std::uint64_t k, const Bytes& v) {
        // Exactly-once delivery is part of the contract.
        ASSERT_EQ(proc.decisions.count(k), 0u);
        proc.decisions[k] = str_of(v);
      });
      proc.fd->start();
    }
  }

  void crash(ProcessId p) {
    procs[static_cast<std::size_t>(p)].ctx->kill();
    network.crash(p);
  }

  bool all_alive_decided(std::uint64_t k) {
    for (ProcessId p = 0; p < static_cast<ProcessId>(procs.size()); ++p) {
      if (!network.alive(p)) continue;
      if (!procs[static_cast<std::size_t>(p)].decisions.count(k)) return false;
    }
    return true;
  }

  /// Agreement: all deciders of k decided the same value; returns it.
  std::string agreed_value(std::uint64_t k) {
    std::string value;
    for (auto& proc : procs) {
      auto it = proc.decisions.find(k);
      if (it == proc.decisions.end()) continue;
      if (value.empty()) {
        value = it->second;
      } else {
        EXPECT_EQ(value, it->second) << "agreement violated for instance " << k;
      }
    }
    return value;
  }
};

TEST(Consensus, FailureFreeDecides) {
  ConsensusWorld w(3);
  for (ProcessId p = 0; p < 3; ++p) {
    w.procs[static_cast<std::size_t>(p)].consensus->propose(
        0, bytes_of("v" + std::to_string(p)), w.all);
  }
  ASSERT_TRUE(test::run_until(w.engine, sec(5), [&] { return w.all_alive_decided(0); }));
  const std::string v = w.agreed_value(0);
  // Validity: the decision is one of the proposals.
  EXPECT_TRUE(v == "v0" || v == "v1" || v == "v2") << v;
}

TEST(Consensus, SingleProposerStillDecides) {
  // Other processes participate passively (ACK proposals) even before they
  // propose; a lone proposer coordinating round 0 decides.
  ConsensusWorld w(3);
  w.procs[0].consensus->propose(0, bytes_of("only"), w.all);
  ASSERT_TRUE(test::run_until(w.engine, sec(5), [&] { return w.all_alive_decided(0); }));
  EXPECT_EQ(w.agreed_value(0), "only");
}

TEST(Consensus, ToleratesMinorityCrashBeforePropose) {
  ConsensusWorld w(5);
  w.crash(4);
  for (ProcessId p = 0; p < 4; ++p) {
    w.procs[static_cast<std::size_t>(p)].consensus->propose(
        0, bytes_of("v" + std::to_string(p)), w.all);
  }
  ASSERT_TRUE(test::run_until(w.engine, sec(10), [&] { return w.all_alive_decided(0); }));
  w.agreed_value(0);
}

TEST(Consensus, ToleratesCoordinatorCrash) {
  // Process 0 coordinates round 0 of instance 0; crash it mid-run.
  ConsensusWorld w(5);
  for (ProcessId p = 0; p < 5; ++p) {
    w.procs[static_cast<std::size_t>(p)].consensus->propose(
        0, bytes_of("v" + std::to_string(p)), w.all);
  }
  // Let the coordinator receive some estimates, then kill it.
  w.engine.run_until(usec(300));
  w.crash(0);
  ASSERT_TRUE(test::run_until(w.engine, sec(10), [&] { return w.all_alive_decided(0); }));
  w.agreed_value(0);
}

TEST(Consensus, SafeUnderFalseSuspicions) {
  // Inject false suspicions of the round-0 coordinator at two processes:
  // rounds churn but agreement and termination hold (the ◇S point).
  ConsensusWorld w(3);
  for (ProcessId p = 0; p < 3; ++p) {
    w.procs[static_cast<std::size_t>(p)].consensus->propose(
        0, bytes_of("v" + std::to_string(p)), w.all);
  }
  w.procs[1].fd->monitor(w.procs[1].fd_class, 0);
  w.procs[1].fd->inject_suspicion(w.procs[1].fd_class, 0);
  w.procs[2].fd->monitor(w.procs[2].fd_class, 0);
  w.procs[2].fd->inject_suspicion(w.procs[2].fd_class, 0);
  ASSERT_TRUE(test::run_until(w.engine, sec(10), [&] { return w.all_alive_decided(0); }));
  w.agreed_value(0);
}

TEST(Consensus, ManySequentialInstances) {
  ConsensusWorld w(3);
  const int kInstances = 20;
  for (std::uint64_t k = 0; k < kInstances; ++k) {
    for (ProcessId p = 0; p < 3; ++p) {
      w.procs[static_cast<std::size_t>(p)].consensus->propose(
          k, bytes_of("k" + std::to_string(k) + "p" + std::to_string(p)), w.all);
    }
  }
  ASSERT_TRUE(test::run_until(w.engine, sec(30), [&] {
    for (std::uint64_t k = 0; k < kInstances; ++k) {
      if (!w.all_alive_decided(k)) return false;
    }
    return true;
  }));
  for (std::uint64_t k = 0; k < kInstances; ++k) {
    const std::string v = w.agreed_value(k);
    EXPECT_EQ(v.substr(0, v.find('p')), "k" + std::to_string(k));
  }
}

TEST(Consensus, DecidedInstanceRepropose) {
  ConsensusWorld w(3);
  for (ProcessId p = 0; p < 3; ++p) {
    w.procs[static_cast<std::size_t>(p)].consensus->propose(0, bytes_of("x"), w.all);
  }
  ASSERT_TRUE(test::run_until(w.engine, sec(5), [&] { return w.all_alive_decided(0); }));
  // Proposing again for a decided instance must not re-deliver (the decide
  // callback asserts exactly-once)... it re-delivers to the caller only via
  // the callback; our harness forbids duplicates, so expect death in debug.
  // Here we simply check it does not corrupt state for a following instance.
  for (ProcessId p = 0; p < 3; ++p) {
    w.procs[static_cast<std::size_t>(p)].consensus->propose(1, bytes_of("y"), w.all);
  }
  ASSERT_TRUE(test::run_until(w.engine, sec(5), [&] { return w.all_alive_decided(1); }));
  EXPECT_EQ(w.agreed_value(1), "y");
}

TEST(Consensus, LatePropoerLearnsDecision) {
  ConsensusWorld w(3);
  // Only 0 and 1 propose; 2 stays quiet (it still ACKs passively).
  w.procs[0].consensus->propose(0, bytes_of("early"), w.all);
  w.procs[1].consensus->propose(0, bytes_of("early2"), w.all);
  ASSERT_TRUE(test::run_until(w.engine, sec(5), [&] { return w.all_alive_decided(0); }));
  // 2 received the DECIDE without having proposed.
  EXPECT_TRUE(w.procs[2].decisions.count(0));
}

TEST(Consensus, LossyNetworkStillTerminates) {
  ConsensusWorld w(5, sim::LinkModel{usec(300), usec(300), 0.2}, msec(60), 99);
  for (ProcessId p = 0; p < 5; ++p) {
    w.procs[static_cast<std::size_t>(p)].consensus->propose(
        0, bytes_of("v" + std::to_string(p)), w.all);
  }
  ASSERT_TRUE(test::run_until(w.engine, sec(30), [&] { return w.all_alive_decided(0); }));
  w.agreed_value(0);
}

/// Property sweep: agreement + validity + termination over random seeds,
/// crash schedules and link parameters.
class ConsensusProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ConsensusProperty, AgreementValidityTermination) {
  const std::uint64_t seed = GetParam();
  Rng rng(seed);
  const int n = 3 + static_cast<int>(rng.next_below(4));  // 3..6
  const int max_crashes = (n - 1) / 2;
  const int crashes = static_cast<int>(rng.next_below(static_cast<std::uint64_t>(max_crashes + 1)));
  sim::LinkModel link{usec(100 + rng.next_range(0, 400)), usec(rng.next_range(0, 400)),
                      rng.next_double() * 0.15};
  ConsensusWorld w(n, link, msec(60), seed);
  for (ProcessId p = 0; p < n; ++p) {
    w.procs[static_cast<std::size_t>(p)].consensus->propose(
        0, bytes_of("v" + std::to_string(p)), w.all);
  }
  // Crash a random minority at random times early in the run.
  std::set<ProcessId> crashed;
  for (int i = 0; i < crashes; ++i) {
    ProcessId victim;
    do {
      victim = static_cast<ProcessId>(rng.next_below(static_cast<std::uint64_t>(n)));
    } while (crashed.count(victim));
    crashed.insert(victim);
    const Duration when = rng.next_range(0, msec(2));
    w.engine.schedule_at(when, [&w, victim] { w.crash(victim); });
  }
  ASSERT_TRUE(test::run_until(w.engine, sec(60), [&] { return w.all_alive_decided(0); }))
      << "n=" << n << " crashes=" << crashes << " seed=" << seed;
  const std::string v = w.agreed_value(0);
  ASSERT_FALSE(v.empty());
  EXPECT_EQ(v[0], 'v');  // validity: some process's proposal
}

INSTANTIATE_TEST_SUITE_P(Seeds, ConsensusProperty, ::testing::Range<std::uint64_t>(1, 26));

}  // namespace
}  // namespace gcs
