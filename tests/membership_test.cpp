#include <gtest/gtest.h>

#include "core/stack.hpp"
#include "tests/test_util.hpp"

namespace gcs {
namespace {

using test::bytes_of;
using test::str_of;

struct MemberWorld {
  World world;
  std::vector<std::vector<View>> views;  // per process, installed views
  std::vector<test::DeliveryLog> alogs;  // per process, adeliveries

  explicit MemberWorld(int n, std::uint64_t seed = 1, StackConfig stack = {})
      : world(make_config(n, seed, std::move(stack))),
        views(static_cast<std::size_t>(n)), alogs(static_cast<std::size_t>(n)) {
    for (ProcessId p = 0; p < n; ++p) {
      auto& vlog = views[static_cast<std::size_t>(p)];
      world.stack(p).on_view([&vlog](const View& v) { vlog.push_back(v); });
      auto& alog = alogs[static_cast<std::size_t>(p)];
      world.stack(p).on_adeliver(
          [&alog](const MsgId& id, const Bytes& b) { alog.record(id, b); });
    }
  }

  static World::Config make_config(int n, std::uint64_t seed, StackConfig stack) {
    World::Config cfg;
    cfg.n = n;
    cfg.seed = seed;
    cfg.stack = std::move(stack);
    return cfg;
  }
};

TEST(Membership, InitialViewInstalledEverywhere) {
  MemberWorld w(3);
  w.world.found_group_all();
  for (ProcessId p = 0; p < 3; ++p) {
    ASSERT_EQ(w.views[static_cast<std::size_t>(p)].size(), 1u);
    EXPECT_EQ(w.views[static_cast<std::size_t>(p)][0].id, 0u);
    EXPECT_EQ(w.views[static_cast<std::size_t>(p)][0].members, (std::vector<ProcessId>{0, 1, 2}));
    EXPECT_TRUE(w.world.stack(p).membership().is_member());
    EXPECT_EQ(w.world.stack(p).view().primary(), 0);
  }
}

TEST(Membership, JoinInstallsNewViewAndTransfersState) {
  MemberWorld w(4);
  w.world.found_group({0, 1, 2});
  // Some traffic before the join.
  for (int i = 0; i < 5; ++i) w.world.stack(0).abcast(bytes_of("pre" + std::to_string(i)));
  ASSERT_TRUE(test::run_until(w.world, sec(10), [&] { return w.alogs[0].size() >= 5; }));
  // Process 3 joins via contact 1.
  w.world.stack(3).join(1);
  ASSERT_TRUE(test::run_until(w.world, sec(10), [&] {
    return w.world.stack(3).membership().is_member() &&
           w.world.stack(0).view().contains(3);
  }));
  for (ProcessId p = 0; p < 4; ++p) {
    EXPECT_EQ(w.world.stack(p).view().members, (std::vector<ProcessId>{0, 1, 2, 3}));
  }
  // Joiner must not have re-delivered pre-join messages.
  EXPECT_EQ(w.alogs[3].size(), 0u);
  // Post-join traffic reaches everyone including the joiner.
  w.world.stack(3).abcast(bytes_of("from joiner"));
  ASSERT_TRUE(test::run_until(w.world, sec(10), [&] {
    return w.alogs[3].size() >= 1 && w.alogs[0].size() >= 6;
  }));
  EXPECT_EQ(w.alogs[3].payloads.back(), "from joiner");
}

TEST(Membership, ViewSequenceIsIdenticalEverywhere) {
  MemberWorld w(5);
  w.world.found_group({0, 1, 2});
  w.world.stack(3).join(0);
  ASSERT_TRUE(test::run_until(w.world, sec(10),
                              [&] { return w.world.stack(3).membership().is_member(); }));
  w.world.stack(4).join(2);
  ASSERT_TRUE(test::run_until(w.world, sec(10), [&] {
    if (!w.world.stack(4).membership().is_member()) return false;
    for (ProcessId p = 0; p < 3; ++p) {
      if (w.views[static_cast<std::size_t>(p)].size() < 3) return false;
    }
    return true;
  }));
  // Old members observed the same sequence of member lists.
  const auto& ref = w.views[0];
  ASSERT_GE(ref.size(), 3u);
  for (ProcessId p = 1; p < 3; ++p) {
    const auto& got = w.views[static_cast<std::size_t>(p)];
    ASSERT_EQ(got.size(), ref.size());
    for (std::size_t i = 0; i < ref.size(); ++i) {
      EXPECT_EQ(got[i].id, ref[i].id);
      EXPECT_EQ(got[i].members, ref[i].members);
    }
  }
}

TEST(Membership, RemoveCrashedProcess) {
  MemberWorld w(3);
  w.world.found_group_all();
  w.world.run_for(msec(100));
  w.world.crash(2);
  // Monitoring (long class, default 2 s) eventually excludes it.
  ASSERT_TRUE(test::run_until(w.world, sec(10), [&] {
    return !w.world.stack(0).view().contains(2) && !w.world.stack(1).view().contains(2);
  }));
  EXPECT_EQ(w.world.stack(0).view().members, (std::vector<ProcessId>{0, 1}));
  // The group still makes progress with 2 of 2.
  w.world.stack(1).abcast(bytes_of("post-exclusion"));
  ASSERT_TRUE(test::run_until(w.world, sec(10), [&] { return w.alogs[0].size() >= 1; }));
}

TEST(Membership, VoluntaryLeave) {
  MemberWorld w(3);
  w.world.found_group_all();
  w.world.run_for(msec(50));
  bool excluded_fired = false;
  w.world.stack(2).membership().on_excluded([&] { excluded_fired = true; });
  w.world.stack(2).membership().leave();
  ASSERT_TRUE(test::run_until(w.world, sec(10), [&] {
    return !w.world.stack(0).view().contains(2) && excluded_fired;
  }));
  EXPECT_TRUE(excluded_fired);
  EXPECT_FALSE(w.world.stack(2).membership().is_member());
}

TEST(Membership, WronglyExcludedProcessLearnsOfExclusion) {
  // A false suspicion at the monitoring level: process 2 is alive but gets
  // removed; it must adeliver its own removal and fire on_excluded — the
  // paper's "perfect failure detector emulation" is NOT applied (no forced
  // crash): the process simply knows it is out and may rejoin.
  MemberWorld w(3);
  w.world.found_group_all();
  w.world.run_for(msec(50));
  bool excluded_fired = false;
  w.world.stack(2).membership().on_excluded([&] { excluded_fired = true; });
  w.world.stack(0).membership().remove(2);
  ASSERT_TRUE(test::run_until(w.world, sec(10), [&] { return excluded_fired; }));
  EXPECT_FALSE(w.world.stack(2).membership().is_member());
  // ...and it can rejoin, with state transfer.
  w.world.stack(2).membership().join(0);
  ASSERT_TRUE(test::run_until(w.world, sec(10),
                              [&] { return w.world.stack(2).membership().is_member(); }));
  EXPECT_TRUE(w.world.stack(0).view().contains(2));
}

TEST(Membership, JoinerSeesConsistentOrderWithOldMembers) {
  MemberWorld w(4);
  w.world.found_group({0, 1, 2});
  w.world.stack(3).join(0);
  ASSERT_TRUE(test::run_until(w.world, sec(10),
                              [&] { return w.world.stack(3).membership().is_member(); }));
  for (int i = 0; i < 10; ++i) {
    w.world.stack(static_cast<ProcessId>(i % 4)).abcast(bytes_of(std::to_string(i)));
  }
  ASSERT_TRUE(test::run_until(w.world, sec(20), [&] {
    for (ProcessId p = 0; p < 4; ++p) {
      if (w.alogs[static_cast<std::size_t>(p)].size() < 10) return false;
    }
    return true;
  }));
  // All four logs share the total order (joiner's log is a suffix-aligned
  // sequence of the same 10 messages).
  for (ProcessId p = 1; p < 4; ++p) {
    EXPECT_EQ(w.alogs[static_cast<std::size_t>(p)].order, w.alogs[0].order);
  }
}

TEST(Membership, StateTransferCarriesApplicationSnapshot) {
  MemberWorld w(4);
  std::string app_state_0 = "counter=41";
  w.world.stack(0).membership().set_snapshot_provider(
      [&app_state_0] { return bytes_of(app_state_0); });
  std::string installed;
  w.world.stack(3).membership().set_snapshot_installer(
      [&installed](const Bytes& b) { installed = str_of(b); });
  w.world.found_group({0, 1, 2});
  w.world.run_for(msec(50));
  w.world.stack(3).join(0);
  ASSERT_TRUE(test::run_until(w.world, sec(10),
                              [&] { return w.world.stack(3).membership().is_member(); }));
  // One of the members' snapshots arrived; members 1/2 have no provider, so
  // acceptable values are the explicit snapshot or empty (installer still
  // runs). The first STATE message wins; senders all send.
  EXPECT_TRUE(installed == "counter=41" || installed.empty());
}

TEST(Membership, PrimaryIsHeadOfViewList) {
  MemberWorld w(3);
  w.world.found_group_all();
  w.world.run_for(msec(50));
  EXPECT_EQ(w.world.stack(0).view().primary(), 0);
  // Remove the head: the next member becomes primary.
  w.world.stack(1).membership().remove(0);
  ASSERT_TRUE(test::run_until(w.world, sec(10), [&] {
    return !w.world.stack(1).view().contains(0) && !w.world.stack(2).view().contains(0);
  }));
  EXPECT_EQ(w.world.stack(1).view().primary(), 1);
  EXPECT_EQ(w.world.stack(2).view().primary(), 1);
}

TEST(Membership, ConcurrentRemovesConverge) {
  MemberWorld w(5);
  w.world.found_group_all();
  w.world.run_for(msec(50));
  // Two members propose different removals at the same time.
  w.world.stack(0).membership().remove(3);
  w.world.stack(1).membership().remove(4);
  ASSERT_TRUE(test::run_until(w.world, sec(10), [&] {
    return w.world.stack(0).view().members == std::vector<ProcessId>{0, 1, 2} &&
           w.world.stack(1).view().members == std::vector<ProcessId>{0, 1, 2} &&
           w.world.stack(2).view().members == std::vector<ProcessId>{0, 1, 2};
  }));
  // Identical view history at the survivors.
  EXPECT_EQ(w.views[0].back().id, w.views[1].back().id);
}

TEST(Membership, DuplicateJoinRequestsYieldOneViewChange) {
  MemberWorld w(4);
  w.world.found_group({0, 1, 2});
  w.world.run_for(msec(50));
  const auto views_before = w.world.stack(0).membership().views_installed();
  // The joiner spams the same contact; the sponsor dedupes.
  w.world.stack(3).membership().join(0);
  w.world.stack(3).membership().join(0);
  ASSERT_TRUE(test::run_until(w.world, sec(10),
                              [&] { return w.world.stack(3).membership().is_member(); }));
  w.world.run_for(msec(500));
  EXPECT_EQ(w.world.stack(0).membership().views_installed(), views_before + 1);
}

}  // namespace
}  // namespace gcs
