#include <gtest/gtest.h>

#include <memory>

#include "channel/reliable_channel.hpp"
#include "sim/context.hpp"
#include "sim/network.hpp"
#include "transport/sim_transport.hpp"
#include "tests/test_util.hpp"

namespace gcs {
namespace {

using test::bytes_of;
using test::str_of;

/// Minimal two-(or more-)process harness at the channel layer.
struct ChannelWorld {
  sim::Engine engine;
  sim::Network network;
  struct Proc {
    std::unique_ptr<sim::Context> ctx;
    std::unique_ptr<SimTransport> transport;
    std::unique_ptr<ReliableChannel> channel;
    std::vector<std::pair<ProcessId, std::string>> received;
  };
  std::vector<Proc> procs;

  ChannelWorld(int n, sim::LinkModel link, ReliableChannel::Config cfg = {},
               std::uint64_t seed = 1)
      : network(engine, n, link, seed) {
    procs.resize(static_cast<std::size_t>(n));
    for (ProcessId p = 0; p < n; ++p) {
      auto& proc = procs[static_cast<std::size_t>(p)];
      proc.ctx = std::make_unique<sim::Context>(p, engine, Rng(seed + static_cast<std::uint64_t>(p)),
                                                Logger(), std::make_shared<Metrics>());
      proc.transport = std::make_unique<SimTransport>(*proc.ctx, network);
      proc.channel = std::make_unique<ReliableChannel>(*proc.ctx, *proc.transport, cfg);
      proc.channel->subscribe(Tag::kApp, [&proc](ProcessId from, BytesView b) {
        proc.received.emplace_back(from, str_of(b));
      });
    }
  }
};

TEST(ReliableChannel, BasicDelivery) {
  ChannelWorld w(2, sim::LinkModel{usec(200), 0, 0.0});
  w.procs[0].channel->send(1, Tag::kApp, bytes_of("hi"));
  w.engine.run_until(msec(10));
  ASSERT_EQ(w.procs[1].received.size(), 1u);
  EXPECT_EQ(w.procs[1].received[0], std::make_pair(ProcessId{0}, std::string("hi")));
}

TEST(ReliableChannel, SelfDelivery) {
  ChannelWorld w(1, sim::LinkModel{});
  w.procs[0].channel->send(0, Tag::kApp, bytes_of("loop"));
  w.engine.run_until(msec(1));
  ASSERT_EQ(w.procs[0].received.size(), 1u);
  EXPECT_EQ(w.procs[0].received[0].second, "loop");
}

TEST(ReliableChannel, FifoOrderUnderJitter) {
  // Heavy jitter reorders datagrams; the channel must deliver in order.
  ChannelWorld w(2, sim::LinkModel{usec(100), usec(2000), 0.0});
  for (int i = 0; i < 50; ++i) {
    w.procs[0].channel->send(1, Tag::kApp, bytes_of(std::to_string(i)));
  }
  w.engine.run_until(msec(100));
  ASSERT_EQ(w.procs[1].received.size(), 50u);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(w.procs[1].received[static_cast<std::size_t>(i)].second, std::to_string(i));
  }
}

TEST(ReliableChannel, SurvivesHeavyLoss) {
  ChannelWorld w(2, sim::LinkModel{usec(200), usec(100), 0.4},
                 ReliableChannel::Config{msec(5)});
  for (int i = 0; i < 30; ++i) {
    w.procs[0].channel->send(1, Tag::kApp, bytes_of(std::to_string(i)));
  }
  const bool done = test::run_until(w.engine, sec(10),
                                    [&] { return w.procs[1].received.size() == 30; });
  ASSERT_TRUE(done);
  for (int i = 0; i < 30; ++i) {
    EXPECT_EQ(w.procs[1].received[static_cast<std::size_t>(i)].second, std::to_string(i));
  }
  EXPECT_GT(w.procs[0].ctx->metrics().counter("channel.retransmits"), 0);
}

TEST(ReliableChannel, NoDuplicatesUnderRetransmission) {
  // Perfect link + aggressive rto: retransmissions happen but must not
  // surface as duplicates.
  ChannelWorld w(2, sim::LinkModel{msec(8), 0, 0.0}, ReliableChannel::Config{msec(2)});
  w.procs[0].channel->send(1, Tag::kApp, bytes_of("once"));
  w.engine.run_until(msec(100));
  EXPECT_EQ(w.procs[1].received.size(), 1u);
}

TEST(ReliableChannel, BidirectionalTraffic) {
  ChannelWorld w(2, sim::LinkModel{usec(300), usec(200), 0.1});
  for (int i = 0; i < 20; ++i) {
    w.procs[0].channel->send(1, Tag::kApp, bytes_of("a" + std::to_string(i)));
    w.procs[1].channel->send(0, Tag::kApp, bytes_of("b" + std::to_string(i)));
  }
  const bool done = test::run_until(w.engine, sec(5), [&] {
    return w.procs[0].received.size() == 20 && w.procs[1].received.size() == 20;
  });
  EXPECT_TRUE(done);
}

TEST(ReliableChannel, TagMultiplexing) {
  ChannelWorld w(2, sim::LinkModel{});
  std::vector<std::string> fd_msgs;
  w.procs[1].channel->subscribe(Tag::kConsensus, [&](ProcessId, BytesView b) {
    fd_msgs.push_back(str_of(b));
  });
  w.procs[0].channel->send(1, Tag::kApp, bytes_of("app"));
  w.procs[0].channel->send(1, Tag::kConsensus, bytes_of("cons"));
  w.engine.run_until(msec(10));
  ASSERT_EQ(w.procs[1].received.size(), 1u);
  EXPECT_EQ(w.procs[1].received[0].second, "app");
  ASSERT_EQ(fd_msgs.size(), 1u);
  EXPECT_EQ(fd_msgs[0], "cons");
}

TEST(ReliableChannel, OutputBufferAgeGrowsForDeadPeer) {
  ChannelWorld w(2, sim::LinkModel{usec(200), 0, 0.0});
  w.network.crash(1);
  w.procs[0].channel->send(1, Tag::kApp, bytes_of("never"));
  w.engine.run_until(sec(1));
  EXPECT_EQ(w.procs[0].channel->unacked_count(1), 1u);
  EXPECT_GE(w.procs[0].channel->oldest_unacked_age(1), sec(1) - msec(1));
}

TEST(ReliableChannel, OutputBufferDrainsForLivePeer) {
  ChannelWorld w(2, sim::LinkModel{usec(200), 0, 0.0});
  w.procs[0].channel->send(1, Tag::kApp, bytes_of("x"));
  w.engine.run_until(msec(50));
  EXPECT_EQ(w.procs[0].channel->unacked_count(1), 0u);
  EXPECT_EQ(w.procs[0].channel->oldest_unacked_age(1), 0);
}

TEST(ReliableChannel, ForgetReleasesBuffer) {
  ChannelWorld w(2, sim::LinkModel{usec(200), 0, 0.0});
  w.network.crash(1);
  w.procs[0].channel->send(1, Tag::kApp, bytes_of("never"));
  w.engine.run_until(msec(100));
  w.procs[0].channel->forget(1);
  EXPECT_EQ(w.procs[0].channel->unacked_count(1), 0u);
  EXPECT_EQ(w.procs[0].channel->oldest_unacked_age(1), 0);
  // Retransmission timer must eventually quiesce for the forgotten peer.
  const auto before = w.procs[0].ctx->metrics().counter("channel.retransmits");
  w.engine.run_until(msec(300));
  const auto after = w.procs[0].ctx->metrics().counter("channel.retransmits");
  EXPECT_EQ(before, after);
}

TEST(ReliableChannel, ManyPeers) {
  const int n = 8;
  ChannelWorld w(n, sim::LinkModel{usec(300), usec(300), 0.2},
                 ReliableChannel::Config{msec(5)});
  for (ProcessId from = 0; from < n; ++from) {
    for (ProcessId to = 0; to < n; ++to) {
      if (from == to) continue;
      w.procs[static_cast<std::size_t>(from)].channel->send(to, Tag::kApp, bytes_of("m"));
    }
  }
  const bool done = test::run_until(w.engine, sec(10), [&] {
    for (auto& p : w.procs) {
      if (p.received.size() != static_cast<std::size_t>(n - 1)) return false;
    }
    return true;
  });
  EXPECT_TRUE(done);
}

}  // namespace
}  // namespace gcs
