/// Real-time runtime tests: the same protocol stack over real UDP loopback
/// sockets, driven by the wall-clock runner. These tests take real time
/// (a few hundred ms each) and are inherently timing-dependent, so they
/// assert only coarse outcomes (delivery happened, order agreed).
#include <gtest/gtest.h>

#include <memory>

#include "core/stack.hpp"
#include "runtime/realtime_runner.hpp"
#include "runtime/udp_transport.hpp"
#include "tests/test_util.hpp"

namespace gcs::rt {
namespace {

using test::bytes_of;

struct RtWorld {
  sim::Engine engine;
  RealTimeRunner runner{engine};
  std::vector<std::unique_ptr<sim::Context>> owner_ctxs;  // transports' contexts
  std::vector<std::unique_ptr<GcsStack>> stacks;
  std::vector<test::DeliveryLog> logs;

  RtWorld(int n, std::uint16_t base_port) {
    logs.resize(static_cast<std::size_t>(n));
    StackConfig sc;
    sc.fd.heartbeat_interval = msec(5);
    sc.consensus_suspect_timeout = msec(100);
    sc.monitoring.exclusion_timeout = sec(10);
    for (ProcessId p = 0; p < n; ++p) {
      // The transport needs a context for identity + liveness before the
      // stack exists; give it a lightweight one that shares the engine.
      owner_ctxs.push_back(std::make_unique<sim::Context>(
          p, engine, Rng(static_cast<std::uint64_t>(p) + 1), Logger(),
          std::make_shared<Metrics>()));
      UdpTransport::Config ucfg;
      ucfg.base_port = base_port;
      auto transport = std::make_unique<UdpTransport>(*owner_ctxs.back(), n, ucfg);
      runner.add_pollable([t = transport.get()] { return t->poll(); });
      stacks.push_back(std::make_unique<GcsStack>(engine, std::move(transport), p,
                                                  static_cast<std::uint64_t>(p) + 1, sc));
      auto& log = logs[static_cast<std::size_t>(p)];
      stacks.back()->on_adeliver(
          [&log](const MsgId& id, const Bytes& b) { log.record(id, b); });
    }
  }

  void found_all() {
    std::vector<ProcessId> all;
    for (std::size_t p = 0; p < stacks.size(); ++p) all.push_back(static_cast<ProcessId>(p));
    for (auto& s : stacks) s->init_view(all);
  }
};

TEST(RealTime, UdpTransportDelivers) {
  sim::Engine engine;
  sim::Context c0(0, engine, Rng(1), Logger(), std::make_shared<Metrics>());
  sim::Context c1(1, engine, Rng(2), Logger(), std::make_shared<Metrics>());
  UdpTransport::Config cfg;
  cfg.base_port = 39100;
  UdpTransport t0(c0, 2, cfg), t1(c1, 2, cfg);
  std::vector<std::pair<ProcessId, std::string>> received;
  t1.subscribe(Tag::kApp, [&](ProcessId from, BytesView b) {
    received.emplace_back(from, test::str_of(b));
  });
  t0.u_send(1, Tag::kApp, bytes_of("over the wire"));
  RealTimeRunner runner(engine);
  runner.add_pollable([&] { return t1.poll(); });
  ASSERT_TRUE(runner.run_until(std::chrono::milliseconds(500),
                               [&] { return !received.empty(); }));
  EXPECT_EQ(received[0].first, 0);
  EXPECT_EQ(received[0].second, "over the wire");
}

TEST(RealTime, FullStackAtomicBroadcastOverUdp) {
  RtWorld w(3, 39110);
  w.found_all();
  for (int i = 0; i < 5; ++i) {
    w.stacks[static_cast<std::size_t>(i % 3)]->abcast(bytes_of("rt" + std::to_string(i)));
  }
  ASSERT_TRUE(w.runner.run_until(std::chrono::seconds(10), [&] {
    return w.logs[0].size() >= 5 && w.logs[1].size() >= 5 && w.logs[2].size() >= 5;
  }));
  // Total order over real sockets.
  EXPECT_EQ(w.logs[0].order, w.logs[1].order);
  EXPECT_EQ(w.logs[1].order, w.logs[2].order);
}

TEST(RealTime, GenericBroadcastFastPathOverUdp) {
  RtWorld w(4, 39120);
  std::vector<int> gcount(4, 0);
  for (ProcessId p = 0; p < 4; ++p) {
    w.stacks[static_cast<std::size_t>(p)]->on_gdeliver(
        [&gcount, p](const MsgId&, MsgClass, const Bytes&) {
          ++gcount[static_cast<std::size_t>(p)];
        });
  }
  w.found_all();
  for (int i = 0; i < 4; ++i) {
    w.stacks[static_cast<std::size_t>(i)]->rbcast(bytes_of("fast" + std::to_string(i)));
  }
  ASSERT_TRUE(w.runner.run_until(std::chrono::seconds(10), [&] {
    for (int c : gcount) {
      if (c < 4) return false;
    }
    return true;
  }));
  // Thrifty even over real UDP: no consensus ran.
  EXPECT_EQ(w.stacks[0]->consensus().instances_decided(), 0);
}

}  // namespace
}  // namespace gcs::rt
