/// Virtual synchrony property of the traditional stack (the paper's §1.1
/// definition, footnote 1): processes that transition together from view v
/// to view v' deliver the SAME SET of messages in v.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <set>

#include "traditional/gmvs_stack.hpp"
#include "tests/test_util.hpp"

namespace gcs::traditional {
namespace {

using test::bytes_of;

class VsProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(VsProperty, SurvivorsDeliverSameSetPerView) {
  const std::uint64_t seed = GetParam();
  Rng rng(seed);
  sim::Engine engine;
  sim::Network network(engine, 5,
                       sim::LinkModel{usec(100 + rng.next_range(0, 300)),
                                      usec(rng.next_range(0, 400)), rng.next_double() * 0.05},
                       seed);
  GmVsStack::Config cfg;
  cfg.suspect_timeout = msec(200);
  std::vector<std::unique_ptr<GmVsStack>> stacks;
  // Per process: view id -> set of message ids delivered in that view.
  std::vector<std::map<std::uint64_t, std::set<MsgId>>> per_view(5);
  for (ProcessId p = 0; p < 5; ++p) {
    stacks.push_back(std::make_unique<GmVsStack>(engine, network, p, seed, cfg));
    auto* stack = stacks.back().get();
    stacks.back()->on_adeliver([&per_view, p, stack](const MsgId& id, const Bytes&) {
      per_view[static_cast<std::size_t>(p)][stack->view().id].insert(id);
    });
  }
  std::vector<ProcessId> all{0, 1, 2, 3, 4};
  for (auto& s : stacks) {
    s->init_view(all);
    s->start();
  }
  // Traffic + one crash at a random time.
  const ProcessId victim = static_cast<ProcessId>(rng.next_below(5));
  const Duration crash_at = rng.next_range(msec(5), msec(40));
  engine.schedule_at(crash_at, [&stacks, victim] {
    stacks[static_cast<std::size_t>(victim)]->crash();
  });
  int sent = 0;
  std::function<void()> tick = [&] {
    if (sent >= 40) return;
    const auto p = static_cast<ProcessId>(rng.next_below(5));
    if (network.alive(p) && stacks[static_cast<std::size_t>(p)]->is_member()) {
      stacks[static_cast<std::size_t>(p)]->abcast(bytes_of(std::to_string(sent)));
    }
    ++sent;
    engine.schedule_after(msec(2), tick);
  };
  engine.schedule_after(0, tick);
  // Run until the view change settled and traffic drained.
  ASSERT_TRUE(test::run_until(engine, sec(60), [&] {
    if (sent < 40) return false;
    for (ProcessId p = 0; p < 5; ++p) {
      if (p == victim || !network.alive(p)) continue;
      if (stacks[static_cast<std::size_t>(p)]->view().contains(victim)) return false;
      if (stacks[static_cast<std::size_t>(p)]->is_blocked()) return false;
    }
    return true;
  })) << "seed=" << seed;
  engine.run_until(engine.now() + sec(2));
  // Virtual synchrony: for every CLOSED view (every view except the current
  // one), all surviving members delivered the same message set in it.
  std::uint64_t current_view = 0;
  for (ProcessId p = 0; p < 5; ++p) {
    if (p == victim) continue;
    current_view =
        std::max(current_view, stacks[static_cast<std::size_t>(p)]->view().id);
  }
  for (std::uint64_t v = 0; v < current_view; ++v) {
    const std::set<MsgId>* reference = nullptr;
    for (ProcessId p = 0; p < 5; ++p) {
      if (p == victim) continue;
      // Only compare processes that were members throughout view v; all
      // survivors were (only the victim left).
      const auto& mine = per_view[static_cast<std::size_t>(p)][v];
      if (!reference) {
        reference = &mine;
      } else {
        EXPECT_EQ(mine, *reference)
            << "virtual synchrony violated in view " << v << " at p" << p
            << " seed=" << seed;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, VsProperty, ::testing::Range<std::uint64_t>(1, 13));

}  // namespace
}  // namespace gcs::traditional
