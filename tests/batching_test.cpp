/// Channel batching (piggybacking): multiple messages to one peer pack
/// into one datagram when sent within the batch window.
#include <gtest/gtest.h>

#include <memory>

#include "channel/reliable_channel.hpp"
#include "core/stack.hpp"
#include "sim/context.hpp"
#include "sim/network.hpp"
#include "transport/sim_transport.hpp"
#include "tests/test_util.hpp"

namespace gcs {
namespace {

using test::bytes_of;
using test::str_of;

struct BatchWorld {
  sim::Engine engine;
  sim::Network network;
  sim::Context c0{0, engine, Rng(1), Logger(), std::make_shared<Metrics>()};
  sim::Context c1{1, engine, Rng(2), Logger(), std::make_shared<Metrics>()};
  SimTransport t0{c0, network};
  SimTransport t1{c1, network};
  ReliableChannel ch0;
  ReliableChannel ch1;
  std::vector<std::string> received;

  explicit BatchWorld(ReliableChannel::Config cfg, sim::LinkModel link = {})
      : network(engine, 2, link, 1), ch0(c0, t0, cfg), ch1(c1, t1, cfg) {
    ch1.subscribe(Tag::kApp, [this](ProcessId, BytesView b) {
      received.push_back(str_of(b));
    });
  }
};

TEST(Batching, BurstPacksIntoOneDatagram) {
  ReliableChannel::Config cfg;
  cfg.batch_delay = usec(50);
  BatchWorld w(cfg);
  for (int i = 0; i < 10; ++i) w.ch0.send(1, Tag::kApp, bytes_of(std::to_string(i)));
  w.engine.run_until(msec(10));
  ASSERT_EQ(w.received.size(), 10u);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(w.received[static_cast<std::size_t>(i)], std::to_string(i));
  }
  // One batch datagram (plus nothing else): 10 messages, 1 wire frame.
  EXPECT_EQ(w.ch0.datagrams_sent(), 1);
}

TEST(Batching, SpacedSendsStaySeparate) {
  ReliableChannel::Config cfg;
  cfg.batch_delay = usec(50);
  BatchWorld w(cfg);
  for (int i = 0; i < 3; ++i) {
    w.ch0.send(1, Tag::kApp, bytes_of(std::to_string(i)));
    w.engine.run_until(w.engine.now() + msec(1));
  }
  w.engine.run_until(msec(10));
  EXPECT_EQ(w.received.size(), 3u);
  EXPECT_EQ(w.ch0.datagrams_sent(), 3);
}

TEST(Batching, ReliableUnderLoss) {
  ReliableChannel::Config cfg;
  cfg.batch_delay = usec(100);
  cfg.rto = msec(5);
  BatchWorld w(cfg, sim::LinkModel{usec(300), usec(200), 0.3});
  for (int i = 0; i < 40; ++i) w.ch0.send(1, Tag::kApp, bytes_of(std::to_string(i)));
  ASSERT_TRUE(test::run_until(w.engine, sec(30), [&] { return w.received.size() == 40; }));
  for (int i = 0; i < 40; ++i) {
    EXPECT_EQ(w.received[static_cast<std::size_t>(i)], std::to_string(i));
  }
}

TEST(Batching, ComposesWithFlowControl) {
  ReliableChannel::Config cfg;
  cfg.batch_delay = usec(50);
  cfg.send_window = 5;
  BatchWorld w(cfg, sim::LinkModel{msec(2), 0, 0.0});
  for (int i = 0; i < 20; ++i) w.ch0.send(1, Tag::kApp, bytes_of(std::to_string(i)));
  // First flush sends a 5-message batch; the rest are window-queued.
  w.engine.run_until(msec(1));
  EXPECT_EQ(w.ch0.queued_by_flow_control(1), 15u);
  ASSERT_TRUE(test::run_until(w.engine, sec(10), [&] { return w.received.size() == 20; }));
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(w.received[static_cast<std::size_t>(i)], std::to_string(i));
  }
}

TEST(Batching, FullStackWithBatchingDeliversFewerDatagrams) {
  auto run = [](Duration batch_delay) {
    World::Config cfg;
    cfg.n = 4;
    cfg.seed = 5;
    cfg.stack.channel.batch_delay = batch_delay;
    World w(cfg);
    std::vector<test::DeliveryLog> logs(4);
    for (ProcessId p = 0; p < 4; ++p) {
      w.stack(p).on_adeliver([&logs, p](const MsgId& id, const Bytes& b) {
        logs[static_cast<std::size_t>(p)].record(id, b);
      });
    }
    w.found_group_all();
    for (int i = 0; i < 10; ++i) {
      w.stack(static_cast<ProcessId>(i % 4)).abcast(bytes_of(std::to_string(i)));
    }
    test::run_until(w.engine(), sec(30), [&] {
      for (auto& log : logs) {
        if (log.size() < 10) return false;
      }
      return true;
    });
    // Order intact in both modes.
    for (ProcessId p = 1; p < 4; ++p) {
      EXPECT_EQ(logs[static_cast<std::size_t>(p)].order, logs[0].order);
    }
    std::int64_t datagrams = 0;
    for (ProcessId p = 0; p < 4; ++p) datagrams += w.stack(p).channel().datagrams_sent();
    return datagrams;
  };
  const auto without = run(0);
  const auto with = run(usec(100));
  EXPECT_LT(with, without) << "batching should reduce wire datagrams";
  EXPECT_LT(with * 2, without * 3);  // at least ~1/3 fewer
}

}  // namespace
}  // namespace gcs
