#include <gtest/gtest.h>

#include <memory>

#include "fd/failure_detector.hpp"
#include "sim/context.hpp"
#include "sim/network.hpp"
#include "transport/sim_transport.hpp"
#include "tests/test_util.hpp"

namespace gcs {
namespace {

struct FdWorld {
  sim::Engine engine;
  sim::Network network;
  struct Proc {
    std::unique_ptr<sim::Context> ctx;
    std::unique_ptr<SimTransport> transport;
    std::unique_ptr<FailureDetector> fd;
  };
  std::vector<Proc> procs;

  explicit FdWorld(int n, sim::LinkModel link = {}, FailureDetector::Config cfg = {},
                   std::uint64_t seed = 1)
      : network(engine, n, link, seed) {
    procs.resize(static_cast<std::size_t>(n));
    for (ProcessId p = 0; p < n; ++p) {
      auto& proc = procs[static_cast<std::size_t>(p)];
      proc.ctx = std::make_unique<sim::Context>(
          p, engine, Rng(seed + static_cast<std::uint64_t>(p)), Logger(),
          std::make_shared<Metrics>());
      proc.transport = std::make_unique<SimTransport>(*proc.ctx, network);
      proc.fd = std::make_unique<FailureDetector>(*proc.ctx, *proc.transport, cfg);
    }
  }
};

TEST(FailureDetector, NoSuspicionsWhenAllAlive) {
  FdWorld w(3);
  std::vector<FailureDetector::ClassId> cls;
  for (auto& p : w.procs) {
    cls.push_back(p.fd->add_class(msec(50)));
    p.fd->monitor_group(cls.back(), {0, 1, 2});
    p.fd->start();
  }
  w.engine.run_until(sec(2));
  for (std::size_t i = 0; i < w.procs.size(); ++i) {
    EXPECT_TRUE(w.procs[i].fd->suspected(cls[i]).empty());
  }
}

TEST(FailureDetector, SuspectsCrashedProcessWithinTimeout) {
  FdWorld w(3);
  auto c0 = w.procs[0].fd->add_class(msec(50));
  w.procs[0].fd->monitor_group(c0, {1, 2});
  std::vector<std::pair<TimePoint, ProcessId>> suspicions;
  w.procs[0].fd->on_suspect(c0, [&](ProcessId q) {
    suspicions.emplace_back(w.engine.now(), q);
  });
  for (auto& p : w.procs) p.fd->start();
  w.engine.run_until(msec(200));
  w.network.crash(2);
  const TimePoint crash_time = w.engine.now();
  w.engine.run_until(crash_time + msec(200));
  ASSERT_EQ(suspicions.size(), 1u);
  EXPECT_EQ(suspicions[0].second, 2);
  // Detection latency is about the timeout plus one heartbeat interval.
  EXPECT_LE(suspicions[0].first - crash_time, msec(80));
  EXPECT_TRUE(w.procs[0].fd->suspects(c0, 2));
  EXPECT_FALSE(w.procs[0].fd->suspects(c0, 1));
}

TEST(FailureDetector, InjectedSuspicionIsRestoredByHeartbeat) {
  FdWorld w(2);
  auto c0 = w.procs[0].fd->add_class(msec(100));
  w.procs[0].fd->monitor(c0, 1);
  std::vector<ProcessId> restored;
  w.procs[0].fd->on_restore(c0, [&](ProcessId q) { restored.push_back(q); });
  for (auto& p : w.procs) p.fd->start();
  w.engine.run_until(msec(50));
  w.procs[0].fd->inject_suspicion(c0, 1);
  EXPECT_TRUE(w.procs[0].fd->suspects(c0, 1));
  w.engine.run_until(msec(100));
  EXPECT_FALSE(w.procs[0].fd->suspects(c0, 1));
  ASSERT_EQ(restored.size(), 1u);
  EXPECT_EQ(restored[0], 1);
  EXPECT_EQ(w.procs[0].fd->false_suspicions(), 1);
}

TEST(FailureDetector, ClassesAreIndependent) {
  FdWorld w(2);
  auto& fd = *w.procs[0].fd;
  auto short_cls = fd.add_class(msec(30));
  auto long_cls = fd.add_class(sec(2));
  fd.monitor(short_cls, 1);
  fd.monitor(long_cls, 1);
  for (auto& p : w.procs) p.fd->start();
  w.engine.run_until(msec(100));
  w.network.crash(1);
  const TimePoint crash_time = w.engine.now();
  // Short class fires quickly; long class holds out.
  w.engine.run_until(crash_time + msec(200));
  EXPECT_TRUE(fd.suspects(short_cls, 1));
  EXPECT_FALSE(fd.suspects(long_cls, 1));
  w.engine.run_until(crash_time + sec(3));
  EXPECT_TRUE(fd.suspects(long_cls, 1));
}

TEST(FailureDetector, LossyLinksCauseFalseSuspicionsWithTinyTimeout) {
  // An aggressively small timeout over a lossy link must produce false
  // suspicions that are later restored — the ◇S pattern the new
  // architecture tolerates by design (paper §4.3).
  FdWorld w(2, sim::LinkModel{usec(500), usec(500), 0.5},
            FailureDetector::Config{msec(10)});
  auto c0 = w.procs[0].fd->add_class(msec(20));
  w.procs[0].fd->monitor(c0, 1);
  for (auto& p : w.procs) p.fd->start();
  w.engine.run_until(sec(20));
  EXPECT_GT(w.procs[0].fd->false_suspicions(), 0);
  // And with everything alive, no suspicion is permanent.
  EXPECT_FALSE(w.procs[0].fd->suspects(c0, 1));
}

TEST(FailureDetector, UnmonitorClearsSuspicion) {
  FdWorld w(2);
  auto c0 = w.procs[0].fd->add_class(msec(30));
  w.procs[0].fd->monitor(c0, 1);
  for (auto& p : w.procs) p.fd->start();
  w.network.crash(1);
  w.engine.run_until(msec(200));
  EXPECT_TRUE(w.procs[0].fd->suspects(c0, 1));
  w.procs[0].fd->unmonitor(c0, 1);
  EXPECT_FALSE(w.procs[0].fd->suspects(c0, 1));
}

TEST(FailureDetector, NeverMonitorsSelf) {
  FdWorld w(2);
  auto c0 = w.procs[0].fd->add_class(msec(10));
  w.procs[0].fd->monitor(c0, 0);  // self: ignored
  w.procs[0].fd->start();
  w.engine.run_until(sec(1));
  EXPECT_FALSE(w.procs[0].fd->suspects(c0, 0));
}

TEST(FailureDetector, StopSilencesHeartbeats) {
  FdWorld w(2);
  auto c1 = w.procs[1].fd->add_class(msec(50));
  w.procs[1].fd->monitor(c1, 0);
  for (auto& p : w.procs) p.fd->start();
  w.engine.run_until(msec(100));
  EXPECT_FALSE(w.procs[1].fd->suspects(c1, 0));
  w.procs[0].fd->stop();  // voluntary leave: stops heartbeating
  w.engine.run_until(msec(300));
  EXPECT_TRUE(w.procs[1].fd->suspects(c1, 0));
}

TEST(FailureDetector, TimeoutAdjustableAtRuntime) {
  FdWorld w(2);
  auto c0 = w.procs[0].fd->add_class(sec(10));
  w.procs[0].fd->monitor(c0, 1);
  for (auto& p : w.procs) p.fd->start();
  w.network.crash(1);
  w.engine.run_until(msec(500));
  EXPECT_FALSE(w.procs[0].fd->suspects(c0, 1));
  w.procs[0].fd->set_timeout(c0, msec(100));
  EXPECT_EQ(w.procs[0].fd->timeout(c0), msec(100));
  w.engine.run_until(w.engine.now() + msec(200));
  EXPECT_TRUE(w.procs[0].fd->suspects(c0, 1));
}

}  // namespace
}  // namespace gcs
