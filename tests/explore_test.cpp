/// Schedule-explorer tests: fault-plan determinism and codec round-trips,
/// ddmin shrinking on synthetic predicates, the full planted-bug pipeline
/// (sweep finds the broken-fast-quorum violation, shrinks it to a handful
/// of steps, emits an artifact) and byte-exact replay of that artifact in a
/// fresh World.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "explore/artifact.hpp"
#include "explore/runner.hpp"
#include "explore/shrink.hpp"
#include "explore/sweep.hpp"
#include "sim/fault_plan.hpp"

namespace gcs {
namespace {

TEST(FaultPlan, GenerationIsDeterministic) {
  const sim::FaultPlan a = sim::FaultPlan::generate(7);
  const sim::FaultPlan b = sim::FaultPlan::generate(7);
  ASSERT_EQ(a.steps.size(), b.steps.size());
  EXPECT_EQ(a.steps, b.steps);
  EXPECT_EQ(a.digest(), b.digest());
  EXPECT_EQ(a.link.base_delay, b.link.base_delay);
  EXPECT_NE(a.digest(), sim::FaultPlan::generate(8).digest());
}

TEST(FaultPlan, StepsAreTimeOrderedAndInEnvelope) {
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    const sim::FaultPlan plan = sim::FaultPlan::generate(seed);
    ASSERT_EQ(plan.steps.size(), 60u);
    int crashes = 0;
    Duration prev = 0;
    for (const sim::FaultStep& s : plan.steps) {
      EXPECT_GE(s.at, prev);
      prev = s.at;
      EXPECT_GE(s.proc, 0);
      EXPECT_LT(s.proc, plan.options.n);
      if (s.op == sim::FaultOp::kCrash) ++crashes;
      if (s.op == sim::FaultOp::kPartition) {
        EXPECT_EQ(__builtin_popcountll(s.arg), 2);  // minority pair
        EXPECT_GT(s.duration, 0);
      }
    }
    EXPECT_LE(crashes, plan.options.max_crashes);
  }
}

TEST(FaultPlan, CodecRoundTrip) {
  const sim::FaultPlan plan = sim::FaultPlan::generate(42);
  Encoder enc;
  plan.encode(enc);
  const Bytes wire = enc.bytes();
  Decoder dec(wire);
  const sim::FaultPlan back = sim::FaultPlan::decode(dec);
  ASSERT_TRUE(dec.ok());
  EXPECT_TRUE(dec.at_end());
  EXPECT_EQ(back.seed, plan.seed);
  EXPECT_EQ(back.options, plan.options);
  EXPECT_EQ(back.link.base_delay, plan.link.base_delay);
  EXPECT_EQ(back.link.jitter, plan.link.jitter);
  EXPECT_EQ(back.link.drop_probability, plan.link.drop_probability);
  EXPECT_EQ(back.use_paxos, plan.use_paxos);
  EXPECT_EQ(back.settle, plan.settle);
  EXPECT_EQ(back.steps, plan.steps);
  EXPECT_EQ(back.digest(), plan.digest());
}

TEST(FaultPlan, StepRenderingCoversEveryOp) {
  // Every op kind renders through to_string without falling into the "?"
  // branch (artifact step listings rely on this).
  for (int op = 0; op < static_cast<int>(sim::FaultOp::kCount_); ++op) {
    sim::FaultStep s;
    s.op = static_cast<sim::FaultOp>(op);
    s.arg = 0b11;
    EXPECT_NE(s.to_string().find(sim::fault_op_name(s.op)), std::string::npos);
  }
}

TEST(RngStream, KeyedStreamsAreStableAndIndependent) {
  Rng a = Rng::stream(5, 1);
  Rng b = Rng::stream(5, 1);
  EXPECT_EQ(a.next_u64(), b.next_u64());  // same (seed, key) -> same stream
  // Consuming one stream must not perturb a fresh derivation of another.
  Rng c = Rng::stream(5, 2);
  for (int i = 0; i < 100; ++i) a.next_u64();
  Rng d = Rng::stream(5, 2);
  EXPECT_EQ(c.next_u64(), d.next_u64());
  EXPECT_NE(Rng::stream(5, 1).next_u64(), Rng::stream(5, 2).next_u64());
  EXPECT_NE(Rng::stream(5, 1).next_u64(), Rng::stream(6, 1).next_u64());
}

TEST(Shrink, FindsTheMinimalCulpritSet) {
  // Synthetic predicate: the "bug" needs steps 3 and 17 together.
  std::vector<std::uint32_t> keep(40);
  for (std::uint32_t i = 0; i < 40; ++i) keep[i] = i;
  int runs = 0;
  const auto fails = [&runs](const std::vector<std::uint32_t>& k) {
    ++runs;
    const bool has3 = std::find(k.begin(), k.end(), 3u) != k.end();
    const bool has17 = std::find(k.begin(), k.end(), 17u) != k.end();
    return has3 && has17;
  };
  explore::ShrinkStats stats;
  const auto minimal = explore::shrink(keep, fails, 500, &stats);
  EXPECT_EQ(minimal, (std::vector<std::uint32_t>{3, 17}));
  EXPECT_TRUE(stats.minimal);
  EXPECT_EQ(stats.runs, runs);
  EXPECT_LE(stats.runs, 500);
}

TEST(Shrink, SingleCulprit) {
  std::vector<std::uint32_t> keep(60);
  for (std::uint32_t i = 0; i < 60; ++i) keep[i] = i;
  const auto fails = [](const std::vector<std::uint32_t>& k) {
    return std::find(k.begin(), k.end(), 41u) != k.end();
  };
  EXPECT_EQ(explore::shrink(keep, fails, 500), (std::vector<std::uint32_t>{41}));
}

TEST(Shrink, RespectsBudget) {
  std::vector<std::uint32_t> keep(64);
  for (std::uint32_t i = 0; i < 64; ++i) keep[i] = i;
  int runs = 0;
  const auto fails = [&runs](const std::vector<std::uint32_t>& k) {
    ++runs;
    return k.size() >= 2;  // everything with >= 2 steps "fails"
  };
  explore::ShrinkStats stats;
  explore::shrink(keep, fails, 4, &stats);
  EXPECT_LE(runs, 4);
  EXPECT_FALSE(stats.minimal);  // gave up mid-ddmin, can't certify minimality
}

TEST(Explorer, HealthySeedsRunClean) {
  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    const sim::FaultPlan plan = sim::FaultPlan::generate(seed);
    const explore::RunResult result = explore::run_plan(plan, explore::all_steps(plan));
    EXPECT_EQ(result.outcome, explore::Outcome::kClean) << "seed " << seed;
    EXPECT_GT(result.adeliveries, 0u) << "seed " << seed;
  }
}

TEST(Explorer, RunIsDeterministic) {
  const sim::FaultPlan plan = sim::FaultPlan::generate(3);
  const auto keep = explore::all_steps(plan);
  const explore::RunResult a = explore::run_plan(plan, keep);
  const explore::RunResult b = explore::run_plan(plan, keep);
  EXPECT_EQ(a.report_json, b.report_json);
  EXPECT_EQ(a.trace_tail, b.trace_tail);
  EXPECT_EQ(a.adeliveries, b.adeliveries);
}

TEST(Artifact, MalformedInputIsRejected) {
  EXPECT_FALSE(explore::parse_artifact("").has_value());
  EXPECT_FALSE(explore::parse_artifact("{}").has_value());
  EXPECT_FALSE(explore::parse_artifact("{\"schema\":\"nggcs.repro.v2\"}").has_value());
  EXPECT_FALSE(
      explore::parse_artifact("{\"schema\":\"nggcs.repro.v1\",\"plan_seed\":1}").has_value());
}

// The end-to-end satellite: a stack configured with the unsafe fast quorum
// (2 of 5, well below 2n/3) must be caught by the sweep, shrink to a
// handful of steps, and the repro artifact must replay byte-identically in
// a fresh run.
TEST(Explorer, PlantedFastQuorumBugIsFoundShrunkAndReplayed) {
  explore::SweepOptions options;
  options.begin = 0;
  options.end = 12;
  options.jobs = 2;
  options.run.fast_quorum_override = 2;  // the planted bug
  options.max_failures = 1;
  options.shrink_budget = 120;

  const explore::SweepResult swept = explore::sweep(options);
  ASSERT_FALSE(swept.failures.empty()) << "planted bug not found in 12 seeds";
  const explore::SweepFailure& failure = swept.failures.front();
  EXPECT_EQ(failure.outcome, explore::Outcome::kViolation);
  EXPECT_EQ(failure.first_violation, "gb.conflict_order");
  EXPECT_LE(failure.shrunk_keep.size(), 5u)
      << "shrinker left " << failure.shrunk_keep.size() << " steps";

  // Build the artifact exactly as the sweep would have written it.
  const sim::FaultPlan plan = sim::FaultPlan::generate(failure.seed, options.plan);
  const explore::RunResult minimized =
      explore::run_plan(plan, failure.shrunk_keep, options.run);
  EXPECT_EQ(minimized.outcome, explore::Outcome::kViolation);
  const explore::Artifact artifact =
      explore::make_artifact(plan, failure.shrunk_keep, options.run, minimized);
  const std::string json = explore::render_artifact(artifact);

  // Artifact round-trip: parse back every replay-relevant field.
  const auto parsed = explore::parse_artifact(json);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->plan_seed, plan.seed);
  EXPECT_EQ(parsed->plan_options, plan.options);
  EXPECT_EQ(parsed->plan_digest, plan.digest());
  EXPECT_EQ(parsed->fast_quorum_override, 2);
  EXPECT_EQ(parsed->keep, failure.shrunk_keep);
  EXPECT_EQ(parsed->outcome, "violation");
  EXPECT_EQ(parsed->report_json, minimized.report_json);
  EXPECT_EQ(parsed->trace_tail, minimized.trace_tail);

  // Replay from the artifact alone: regenerate the plan, re-run, and the
  // fresh scenario report must be byte-identical to the embedded one.
  const auto regenerated = explore::regenerate_plan(*parsed);
  ASSERT_TRUE(regenerated.has_value());
  explore::RunOptions replay_options;
  replay_options.fast_quorum_override = parsed->fast_quorum_override;
  const explore::RunResult replayed =
      explore::run_plan(*regenerated, parsed->keep, replay_options);
  EXPECT_EQ(replayed.outcome, explore::Outcome::kViolation);
  EXPECT_EQ(replayed.first_violation, parsed->first_violation);
  EXPECT_EQ(replayed.report_json, parsed->report_json) << "replay diverged from the artifact";
}

TEST(Explorer, CorrectQuorumSurvivesTheSameSchedules) {
  // Control for the planted-bug test: the very seeds that break the unsafe
  // override stay clean under the correct quorum formula.
  explore::SweepOptions options;
  options.begin = 0;
  options.end = 6;
  options.jobs = 2;
  const explore::SweepResult swept = explore::sweep(options);
  EXPECT_EQ(swept.seeds_run, 6u);
  EXPECT_TRUE(swept.failures.empty());
}

}  // namespace
}  // namespace gcs
