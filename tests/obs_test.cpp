/// \file obs_test.cpp
/// Unit tests for the observability subsystem: name interning, the ring
/// flight recorder, the Tracer cost contract, channel-arg packing, and the
/// exporters — plus an end-to-end check that a traced stack records the
/// message lifecycle (GB fast path distinct from the consensus fallback).
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>

#include "core/stack.hpp"
#include "obs/exporters.hpp"
#include "obs/trace.hpp"
#include "tests/test_util.hpp"

namespace gcs {
namespace {

using test::bytes_of;

TEST(ObsNames, InterningIsIdempotent) {
  const obs::NameId a = obs::intern_name("obs.test.alpha");
  const obs::NameId a2 = obs::intern_name("obs.test.alpha");
  const obs::NameId b = obs::intern_name("obs.test.beta");
  EXPECT_EQ(a, a2);
  EXPECT_NE(a, b);
  EXPECT_EQ(obs::name_of(a), "obs.test.alpha");
  EXPECT_EQ(obs::find_name("obs.test.beta"), b);
  EXPECT_EQ(obs::find_name("obs.test.never"), obs::kNoName);
}

TEST(ObsNames, WellKnownNamesAreDistinct) {
  const obs::Names& n = obs::Names::get();
  // Spot-check the table is fully interned and collision-free.
  const obs::NameId ids[] = {n.channel_tx,     n.channel_rx,     n.rbcast_flood,
                             n.consensus_instance, n.consensus_decide, n.abcast_submit,
                             n.abcast_deliver, n.gb_submit,      n.gb_deliver_fast,
                             n.gb_deliver_slow, n.gb_resolve,    n.view_install};
  for (std::size_t i = 0; i < std::size(ids); ++i) {
    EXPECT_NE(ids[i], obs::kNoName);
    EXPECT_FALSE(obs::name_of(ids[i]).empty());
    for (std::size_t j = i + 1; j < std::size(ids); ++j) EXPECT_NE(ids[i], ids[j]);
  }
  // get() returns the same interned table every time.
  EXPECT_EQ(obs::Names::get().channel_tx, n.channel_tx);
}

TEST(ObsChannelArg, PackRoundTrips) {
  const std::int64_t arg = obs::pack_channel_arg(7, static_cast<std::uint8_t>(Tag::kConsensus), 1234);
  EXPECT_EQ(obs::channel_arg_peer(arg), 7);
  EXPECT_EQ(obs::channel_arg_tag(arg), static_cast<std::uint8_t>(Tag::kConsensus));
  EXPECT_EQ(obs::channel_arg_size(arg), 1234u);
  // Large payloads survive (size occupies the high bits).
  const std::int64_t big = obs::pack_channel_arg(255, 15, 1u << 20);
  EXPECT_EQ(obs::channel_arg_size(big), 1u << 20);
}

TEST(ObsRecorder, AppendAndWrapKeepsMostRecentWindow) {
  obs::Recorder rec(4);
  EXPECT_TRUE(rec.enabled());
  EXPECT_EQ(rec.capacity(), 4u);
  const obs::NameId name = obs::intern_name("obs.test.tick");
  for (std::int64_t i = 0; i < 10; ++i) {
    rec.append({i, MsgId{}, i, 0, name, obs::Phase::kInstant});
  }
  EXPECT_EQ(rec.size(), 4u);
  EXPECT_EQ(rec.dropped(), 6u);
  const auto records = rec.records();
  ASSERT_EQ(records.size(), 4u);
  // Oldest-first, and only the last four appends survived.
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(records[i].arg, static_cast<std::int64_t>(6 + i));
  }
}

TEST(ObsRecorder, TailFiltersByProcess) {
  obs::Recorder rec(16);
  const obs::NameId name = obs::intern_name("obs.test.tick");
  for (std::int64_t i = 0; i < 8; ++i) {
    rec.append({i, MsgId{}, i, static_cast<ProcessId>(i % 2), name, obs::Phase::kInstant});
  }
  const auto p1 = rec.tail(1, 3);
  ASSERT_EQ(p1.size(), 3u);
  EXPECT_EQ(p1[0].arg, 3);  // oldest-first within the tail
  EXPECT_EQ(p1[2].arg, 7);
  const auto all = rec.tail(kNoProcess, 100);
  EXPECT_EQ(all.size(), 8u);
}

TEST(ObsRecorder, DisableStopsRecordingAndClearResets) {
  obs::Recorder rec(8);
  const obs::NameId name = obs::intern_name("obs.test.tick");
  rec.append({1, MsgId{}, 0, 0, name, obs::Phase::kInstant});
  rec.disable();
  rec.append({2, MsgId{}, 0, 0, name, obs::Phase::kInstant});
  EXPECT_EQ(rec.size(), 1u);
  rec.clear();
  EXPECT_EQ(rec.size(), 0u);
  EXPECT_EQ(rec.dropped(), 0u);
}

TEST(ObsTracer, DefaultConstructedIsANoOp) {
  obs::Tracer t;
  EXPECT_FALSE(t.enabled());
  // Must be safe to call with no recorder attached.
  t.begin(0, obs::Names::get().consensus_instance, MsgId{0, 1});
  t.end(1, obs::Names::get().consensus_instance, MsgId{0, 1});
  t.instant(2, obs::Names::get().channel_tx);
}

TEST(ObsTracer, RecordsCarryProcessAndPhase) {
  obs::Recorder rec(8);
  obs::Tracer t(&rec, 3);
  const obs::NameId name = obs::intern_name("obs.test.span");
  t.begin(10, name, MsgId{1, 5}, 42);
  t.end(20, name, MsgId{1, 5});
  const auto records = rec.records();
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].proc, 3);
  EXPECT_EQ(records[0].phase, obs::Phase::kBegin);
  EXPECT_EQ(records[0].msg, (MsgId{1, 5}));
  EXPECT_EQ(records[0].arg, 42);
  EXPECT_EQ(records[1].phase, obs::Phase::kEnd);
}

TEST(ObsExporters, ChromeTraceJsonShape) {
  obs::Recorder rec(16);
  obs::Tracer t(&rec, 0);
  const obs::Names& n = obs::Names::get();
  t.begin(100, n.consensus_instance, MsgId{obs::kConsensusKey, 7});
  t.instant(150, n.consensus_decide, MsgId{obs::kConsensusKey, 7}, 4);
  t.end(200, n.consensus_instance, MsgId{obs::kConsensusKey, 7});
  t.instant(300, n.channel_tx, MsgId{},
            obs::pack_channel_arg(1, static_cast<std::uint8_t>(Tag::kRbcast), 19));
  const std::string json = obs::chrome_trace_json(rec);
  // Self-describing envelope with async begin/end on the consensus key.
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"b\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"e\""), std::string::npos);
  EXPECT_NE(json.find("\"id\": \"c:7\""), std::string::npos);
  EXPECT_NE(json.find("consensus.instance"), std::string::npos);
  // Channel instants decode their packed argument.
  EXPECT_NE(json.find("\"tag\": \"rbcast\""), std::string::npos);
  // Balanced braces (cheap well-formedness proxy; the CI smoke test parses
  // the real file with a JSON parser).
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
}

TEST(ObsExporters, FormatRecordMentionsNameAndProcess) {
  const obs::Record r{1500, MsgId{1, 2}, 3, 2, obs::Names::get().abcast_deliver,
                      obs::Phase::kInstant};
  const std::string line = obs::format_record(r);
  EXPECT_NE(line.find("abcast.deliver"), std::string::npos);
  EXPECT_NE(line.find("p2"), std::string::npos);
}

TEST(ObsStack, TracedRunRecordsMessageLifecycle) {
  World::Config config;
  config.n = 3;
  config.seed = 7;
  config.stack.recorder = std::make_shared<obs::Recorder>(1 << 14);
  World w(config);
  w.found_group_all();
  w.run_for(msec(20));

  int delivered = 0;
  for (ProcessId p = 0; p < 3; ++p) {
    w.stack(p).on_adeliver([&delivered](const MsgId&, const Bytes&) { ++delivered; });
  }
  const MsgId id = w.stack(0).abcast(bytes_of("lifecycle"));
  ASSERT_TRUE(test::run_until(w.engine(), sec(5), [&] { return delivered == 3; }));

  const obs::Names& n = obs::Names::get();
  bool saw_submit = false, saw_flood = false, saw_pending = false, saw_deliver = false;
  bool saw_consensus = false;
  for (const obs::Record& r : config.stack.recorder->records()) {
    if (r.msg == id && r.name == n.abcast_submit) saw_submit = true;
    if (r.msg == id && r.name == n.rbcast_flood) saw_flood = true;
    if (r.msg == id && r.name == n.abcast_pending && r.phase == obs::Phase::kBegin) {
      saw_pending = true;
    }
    if (r.msg == id && r.name == n.abcast_deliver) saw_deliver = true;
    if (r.msg.sender == obs::kConsensusKey && r.name == n.consensus_instance) {
      saw_consensus = true;
    }
  }
  // The whole lifecycle is on one correlation key, plus the consensus
  // instance that ordered it on its synthetic key.
  EXPECT_TRUE(saw_submit);
  EXPECT_TRUE(saw_flood);
  EXPECT_TRUE(saw_pending);
  EXPECT_TRUE(saw_deliver);
  EXPECT_TRUE(saw_consensus);
}

TEST(ObsStack, DisabledTracingLeavesNoRecords) {
  // No recorder in the config: the stack runs exactly as before, and
  // nothing observable changes (the tracer is permanently disabled).
  World::Config config;
  config.n = 3;
  config.seed = 7;
  World w(config);
  w.found_group_all();
  int delivered = 0;
  for (ProcessId p = 0; p < 3; ++p) {
    w.stack(p).on_adeliver([&delivered](const MsgId&, const Bytes&) { ++delivered; });
  }
  w.stack(0).abcast(bytes_of("dark"));
  EXPECT_TRUE(test::run_until(w.engine(), sec(5), [&] { return delivered == 3; }));
}

}  // namespace
}  // namespace gcs
