/// Whole-system determinism: identical seeds must give bit-identical
/// delivery traces for every configuration the stack supports. This is the
/// property that makes every other test in this suite trustworthy.
#include <gtest/gtest.h>

#include <memory>

#include "core/stack.hpp"
#include "replication/lock_service.hpp"
#include "tests/test_util.hpp"

namespace gcs {
namespace {

using test::bytes_of;

/// One fairly busy scenario (traffic + gbcast + a crash + a join) reduced
/// to a comparable trace string.
std::string run_trace(std::uint64_t seed, StackConfig sc) {
  World::Config cfg;
  cfg.n = 5;
  cfg.seed = seed;
  cfg.link.jitter = usec(300);
  cfg.link.drop_probability = 0.05;
  cfg.stack = std::move(sc);
  cfg.stack.monitoring.exclusion_timeout = msec(500);
  World w(cfg);
  std::string trace;
  for (ProcessId p = 0; p < 5; ++p) {
    w.stack(p).on_adeliver([&trace, p, &w](const MsgId& id, const Bytes&) {
      trace += "A" + std::to_string(p) + ":" + to_string(id) + "@" +
               std::to_string(w.engine().now()) + ";";
    });
    w.stack(p).on_gdeliver([&trace, p, &w](const MsgId& id, MsgClass cls, const Bytes&) {
      trace += "G" + std::to_string(p) + ":" + to_string(id) + "/" +
               std::to_string(cls) + "@" + std::to_string(w.engine().now()) + ";";
    });
    w.stack(p).on_view([&trace, p](const View& v) {
      trace += "V" + std::to_string(p) + ":" + std::to_string(v.id) + "/" +
               std::to_string(v.members.size()) + ";";
    });
  }
  w.found_group({0, 1, 2, 3});
  for (int i = 0; i < 12; ++i) {
    w.stack(static_cast<ProcessId>(i % 4)).abcast(bytes_of("a" + std::to_string(i)));
    if (i % 3 == 0) {
      w.stack(static_cast<ProcessId>((i + 1) % 4))
          .gbcast(i % 2 ? kAbcastClass : kRbcastClass, bytes_of("g" + std::to_string(i)));
    }
    w.run_for(msec(2));
  }
  w.stack(4).join(1);
  w.run_for(msec(50));
  w.crash(3);
  w.run_for(sec(2));
  return trace;
}

TEST(Determinism, IdenticalSeedsIdenticalTraces) {
  StackConfig sc;
  EXPECT_EQ(run_trace(42, sc), run_trace(42, sc));
}

TEST(Determinism, HoldsWithPaxos) {
  StackConfig sc;
  sc.consensus_algorithm = StackConfig::ConsensusAlgo::kPaxos;
  EXPECT_EQ(run_trace(43, sc), run_trace(43, sc));
}

TEST(Determinism, HoldsWithStabilityAndBatchingAndFlowControl) {
  StackConfig sc;
  sc.stability_interval = msec(20);
  sc.channel.batch_delay = usec(100);
  sc.channel.send_window = 32;
  EXPECT_EQ(run_trace(44, sc), run_trace(44, sc));
}

TEST(Determinism, DifferentSeedsDiffer) {
  StackConfig sc;
  EXPECT_NE(run_trace(42, sc), run_trace(4242, sc));
}

}  // namespace
}  // namespace gcs
