/// Whole-system determinism: identical seeds must give bit-identical
/// delivery traces for every configuration the stack supports. This is the
/// property that makes every other test in this suite trustworthy.
#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>

#include "core/stack.hpp"
#include "replication/lock_service.hpp"
#include "tests/test_util.hpp"

namespace gcs {
namespace {

using test::bytes_of;

/// One fairly busy scenario (traffic + gbcast + a crash + a join) reduced
/// to a comparable trace string.
std::string run_trace(std::uint64_t seed, StackConfig sc) {
  World::Config cfg;
  cfg.n = 5;
  cfg.seed = seed;
  cfg.link.jitter = usec(300);
  cfg.link.drop_probability = 0.05;
  cfg.stack = std::move(sc);
  cfg.stack.monitoring.exclusion_timeout = msec(500);
  World w(cfg);
  std::string trace;
  for (ProcessId p = 0; p < 5; ++p) {
    w.stack(p).on_adeliver([&trace, p, &w](const MsgId& id, const Bytes&) {
      trace += "A" + std::to_string(p) + ":" + to_string(id) + "@" +
               std::to_string(w.engine().now()) + ";";
    });
    w.stack(p).on_gdeliver([&trace, p, &w](const MsgId& id, MsgClass cls, const Bytes&) {
      trace += "G" + std::to_string(p) + ":" + to_string(id) + "/" +
               std::to_string(cls) + "@" + std::to_string(w.engine().now()) + ";";
    });
    w.stack(p).on_view([&trace, p](const View& v) {
      trace += "V" + std::to_string(p) + ":" + std::to_string(v.id) + "/" +
               std::to_string(v.members.size()) + ";";
    });
  }
  w.found_group({0, 1, 2, 3});
  for (int i = 0; i < 12; ++i) {
    w.stack(static_cast<ProcessId>(i % 4)).abcast(bytes_of("a" + std::to_string(i)));
    if (i % 3 == 0) {
      w.stack(static_cast<ProcessId>((i + 1) % 4))
          .gbcast(i % 2 ? kAbcastClass : kRbcastClass, bytes_of("g" + std::to_string(i)));
    }
    w.run_for(msec(2));
  }
  w.stack(4).join(1);
  w.run_for(msec(50));
  w.crash(3);
  w.run_for(sec(2));
  return trace;
}

/// FNV-1a over a string; used to reduce a whole run's metrics to one value.
std::uint64_t fnv1a(const std::string& s) {
  std::uint64_t h = 1469598103934665603ull;
  for (unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

/// E1-style failure-free atomic-broadcast workload reduced to a metrics
/// hash: per-message delivery latencies at p0, every network/stack counter,
/// and the engine's own counters (executed event count and final virtual
/// time). Two runs with the same seed must produce the same hash — this is
/// the regression net for the timer-wheel rewrite: any change in cascade
/// or compaction order shows up in executed()/now()/latency totals.
std::uint64_t run_metrics_hash(std::uint64_t seed) {
  constexpr int kProcs = 4;
  constexpr int kMessages = 100;
  World::Config cfg;
  cfg.n = kProcs;
  cfg.seed = seed;
  cfg.link.jitter = usec(200);
  World w(cfg);
  std::string digest;
  std::map<MsgId, TimePoint> sent_time;
  std::size_t delivered = 0;
  w.stack(0).on_adeliver([&](const MsgId& id, const Bytes&) {
    ++delivered;
    auto it = sent_time.find(id);
    const Duration lat = it == sent_time.end() ? -1 : w.engine().now() - it->second;
    digest += "L" + std::to_string(lat) + ";";
  });
  w.found_group({0, 1, 2, 3});
  int sent = 0;
  std::function<void()> tick = [&] {
    if (sent >= kMessages) return;
    const ProcessId sender = static_cast<ProcessId>(sent % kProcs);
    const MsgId id = w.stack(sender).abcast(test::bytes_of("m" + std::to_string(sent)));
    sent_time[id] = w.engine().now();
    ++sent;
    w.engine().schedule_after(msec(2), tick);
  };
  w.engine().schedule_after(0, tick);
  while (delivered < kMessages && w.engine().now() < sec(120)) {
    if (!w.engine().step()) break;
  }
  w.run_for(msec(50));  // drain trailing protocol traffic
  for (const auto& [name, value] : w.network().metrics().counters()) {
    digest += name + "=" + std::to_string(value) + ";";
  }
  digest += "executed=" + std::to_string(w.engine().executed()) + ";";
  digest += "now=" + std::to_string(w.engine().now()) + ";";
  digest += "pending=" + std::to_string(w.engine().pending()) + ";";
  digest += "delivered=" + std::to_string(delivered) + ";";
  EXPECT_EQ(delivered, static_cast<std::size_t>(kMessages));
  return fnv1a(digest);
}

TEST(Determinism, MetricsHashIsReproducible) {
  EXPECT_EQ(run_metrics_hash(7), run_metrics_hash(7));
}

TEST(Determinism, MetricsHashDependsOnSeed) {
  EXPECT_NE(run_metrics_hash(7), run_metrics_hash(8));
}

TEST(Determinism, IdenticalSeedsIdenticalTraces) {
  StackConfig sc;
  EXPECT_EQ(run_trace(42, sc), run_trace(42, sc));
}

TEST(Determinism, HoldsWithPaxos) {
  StackConfig sc;
  sc.consensus_algorithm = StackConfig::ConsensusAlgo::kPaxos;
  EXPECT_EQ(run_trace(43, sc), run_trace(43, sc));
}

TEST(Determinism, HoldsWithStabilityAndBatchingAndFlowControl) {
  StackConfig sc;
  sc.stability_interval = msec(20);
  sc.channel.batch_delay = usec(100);
  sc.channel.send_window = 32;
  EXPECT_EQ(run_trace(44, sc), run_trace(44, sc));
}

TEST(Determinism, DifferentSeedsDiffer) {
  StackConfig sc;
  EXPECT_NE(run_trace(42, sc), run_trace(4242, sc));
}

/// The chaos scenario of run_trace() executed under the full oracle +
/// probe pipeline, reduced to the rendered scenario report. Byte-identical
/// reports across same-seed runs are what makes CI's report artifacts
/// diffable.
std::string run_report(std::uint64_t seed) {
  World::Config cfg;
  cfg.n = 5;
  cfg.seed = seed;
  cfg.link.jitter = usec(300);
  cfg.link.drop_probability = 0.05;
  cfg.stack.monitoring.exclusion_timeout = msec(500);
  World w(cfg);
  obs::Oracle oracle;
  obs::Probes probes;
  w.attach_oracle(oracle);
  w.enable_probes(probes, msec(10));
  w.found_group({0, 1, 2, 3});
  for (int i = 0; i < 12; ++i) {
    w.stack(static_cast<ProcessId>(i % 4)).abcast(bytes_of("a" + std::to_string(i)));
    if (i % 3 == 0) {
      w.stack(static_cast<ProcessId>((i + 1) % 4))
          .gbcast(i % 2 ? kAbcastClass : kRbcastClass, bytes_of("g" + std::to_string(i)));
    }
    w.run_for(msec(2));
  }
  w.stack(4).join(1);
  w.run_for(msec(50));
  w.crash(3);
  w.run_for(sec(2));
  oracle.finalize();
  return obs::render_scenario_report("determinism", seed, oracle, &probes,
                                     &w.stack(0).metrics());
}

TEST(Determinism, ScenarioReportsAreByteIdentical) {
  const std::string a = run_report(57);
  const std::string b = run_report(57);
  EXPECT_EQ(a, b);
  EXPECT_NE(a.find("\"passed\":true"), std::string::npos) << a;
}

TEST(Determinism, ScenarioReportsDependOnSeed) {
  EXPECT_NE(run_report(57), run_report(58));
}

}  // namespace
}  // namespace gcs
