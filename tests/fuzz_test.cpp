/// Robustness fuzzing: random and truncated byte strings thrown at every
/// wire-message decoder in the system. Nothing may crash, hang, or corrupt
/// a healthy group — a malformed datagram is (at worst) silently dropped.
#include <gtest/gtest.h>

#include "core/stack.hpp"
#include "tests/test_util.hpp"
#include "util/codec.hpp"

namespace gcs {
namespace {

using test::bytes_of;

Bytes random_bytes(Rng& rng, std::size_t max_len) {
  Bytes b(rng.next_below(max_len + 1));
  for (auto& byte : b) byte = static_cast<std::uint8_t>(rng.next_below(256));
  return b;
}

TEST(Fuzz, DecoderNeverReadsOutOfBounds) {
  Rng rng(2024);
  for (int i = 0; i < 2000; ++i) {
    const Bytes buf = random_bytes(rng, 64);
    Decoder dec(buf);
    // Exercise every accessor repeatedly; all failures must be soft.
    for (int j = 0; j < 8; ++j) {
      switch (rng.next_below(6)) {
        case 0: (void)dec.get_u64(); break;
        case 1: (void)dec.get_i64(); break;
        case 2: (void)dec.get_byte(); break;
        case 3: (void)dec.get_string(); break;
        case 4: (void)dec.get_bytes(); break;
        default: (void)dec.get_msgid(); break;
      }
    }
    (void)dec.ok();
  }
  SUCCEED();
}

TEST(Fuzz, VectorDecoderRejectsHostileLengths) {
  Rng rng(7);
  for (int i = 0; i < 500; ++i) {
    Encoder enc;
    enc.put_u64(rng.next_u64());  // often an absurd element count
    Bytes buf = enc.take();
    Decoder dec(buf);
    auto v = dec.get_vector<std::uint64_t>([](Decoder& d) { return d.get_u64(); });
    EXPECT_LE(v.size(), buf.size());
  }
}

/// Inject garbage datagrams into a running group at every wire tag: the
/// group must keep working as if nothing happened.
TEST(Fuzz, GarbageDatagramsDontBreakTheGroup) {
  World::Config cfg;
  cfg.n = 4;
  cfg.seed = 55;
  World w(cfg);
  std::vector<test::DeliveryLog> logs(4);
  for (ProcessId p = 0; p < 4; ++p) {
    w.stack(p).on_adeliver([&logs, p](const MsgId& id, const Bytes& b) {
      logs[static_cast<std::size_t>(p)].record(id, b);
    });
  }
  w.found_group_all();
  Rng rng(99);
  // Interleave real traffic with garbage aimed at every layer's tag.
  for (int i = 0; i < 20; ++i) {
    w.stack(static_cast<ProcessId>(i % 4)).abcast(bytes_of("real" + std::to_string(i)));
    for (int g = 0; g < 5; ++g) {
      Bytes garbage = random_bytes(rng, 48);
      garbage.insert(garbage.begin(),
                     static_cast<std::uint8_t>(1 + rng.next_below(
                                                   static_cast<std::uint64_t>(Tag::kMax) - 1)));
      w.network().send(static_cast<ProcessId>(rng.next_below(4)),
                       static_cast<ProcessId>(rng.next_below(4)), std::move(garbage));
    }
    w.run_for(msec(5));
  }
  ASSERT_TRUE(test::run_until(w.engine(), sec(30), [&] {
    for (auto& log : logs) {
      if (log.size() < 20) return false;
    }
    return true;
  }));
  for (ProcessId p = 1; p < 4; ++p) {
    EXPECT_EQ(logs[static_cast<std::size_t>(p)].order, logs[0].order);
  }
  // Only the real messages were delivered.
  for (auto& log : logs) EXPECT_EQ(log.size(), 20u);
}

/// Same fuzzing against the channel layer specifically: garbage that looks
/// like channel frames (valid tag, broken interior).
TEST(Fuzz, MalformedChannelFramesAreDropped) {
  World::Config cfg;
  cfg.n = 3;
  cfg.seed = 77;
  World w(cfg);
  std::size_t delivered = 0;
  w.stack(0).on_adeliver([&](const MsgId&, const Bytes&) { ++delivered; });
  w.found_group_all();
  Rng rng(123);
  for (int i = 0; i < 10; ++i) {
    w.stack(0).abcast(bytes_of("x"));
    for (int g = 0; g < 10; ++g) {
      Bytes frame = random_bytes(rng, 32);
      frame.insert(frame.begin(), static_cast<std::uint8_t>(Tag::kChannel));
      w.network().send(1, 0, std::move(frame));
    }
    w.run_for(msec(5));
  }
  ASSERT_TRUE(test::run_until(w.engine(), sec(20), [&] { return delivered >= 10; }));
}

TEST(Fuzz, TruncatedRealMessagesAreDropped) {
  // Take REAL encoded protocol messages, truncate them at every length,
  // and replay: decoders must reject every prefix quietly.
  Encoder enc;
  enc.put_byte(0);  // consensus kEstimate
  enc.put_u64(7);
  enc.put_i64(3);
  enc.put_i64(2);
  enc.put_bytes(bytes_of("estimate-payload"));
  const Bytes full = enc.take();
  World::Config cfg;
  cfg.n = 3;
  cfg.seed = 31;
  World w(cfg);
  std::size_t delivered = 0;
  w.stack(0).on_adeliver([&](const MsgId&, const Bytes&) { ++delivered; });
  w.found_group_all();
  for (std::size_t len = 0; len < full.size(); ++len) {
    Bytes truncated(full.begin(), full.begin() + static_cast<std::ptrdiff_t>(len));
    // Wrap as a channel DATA frame the way a peer would send it.
    Encoder frame;
    frame.put_byte(0);  // channel kData
    frame.put_u64(10'000 + len);
    frame.put_byte(static_cast<std::uint8_t>(Tag::kConsensus));
    frame.put_bytes(truncated);
    Bytes wire = frame.take();
    wire.insert(wire.begin(), static_cast<std::uint8_t>(Tag::kChannel));
    w.network().send(1, 0, std::move(wire));
  }
  w.stack(2).abcast(bytes_of("still fine"));
  ASSERT_TRUE(test::run_until(w.engine(), sec(20), [&] { return delivered >= 1; }));
}

}  // namespace
}  // namespace gcs
