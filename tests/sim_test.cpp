#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <iterator>
#include <vector>

#include "sim/context.hpp"
#include "sim/engine.hpp"
#include "sim/network.hpp"

namespace gcs::sim {
namespace {

TEST(Engine, EventsFireInTimeOrder) {
  Engine eng;
  std::vector<int> fired;
  eng.schedule_at(30, [&] { fired.push_back(3); });
  eng.schedule_at(10, [&] { fired.push_back(1); });
  eng.schedule_at(20, [&] { fired.push_back(2); });
  eng.run();
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(eng.now(), 30);
}

TEST(Engine, EqualTimesFireInScheduleOrder) {
  Engine eng;
  std::vector<int> fired;
  for (int i = 0; i < 10; ++i) {
    eng.schedule_at(5, [&fired, i] { fired.push_back(i); });
  }
  eng.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(fired[static_cast<std::size_t>(i)], i);
}

TEST(Engine, Cancel) {
  Engine eng;
  bool fired = false;
  const TimerId id = eng.schedule_at(10, [&] { fired = true; });
  eng.cancel(id);
  eng.run();
  EXPECT_FALSE(fired);
  EXPECT_EQ(eng.pending(), 0u);
}

TEST(Engine, CancelUnknownIsNoop) {
  Engine eng;
  eng.cancel(12345);
  eng.cancel(kNoTimer);
  EXPECT_EQ(eng.pending(), 0u);
}

TEST(Engine, HandlerCanScheduleMore) {
  Engine eng;
  int count = 0;
  std::function<void()> tick = [&] {
    if (++count < 5) eng.schedule_after(10, tick);
  };
  eng.schedule_after(10, tick);
  eng.run();
  EXPECT_EQ(count, 5);
  EXPECT_EQ(eng.now(), 50);
}

TEST(Engine, HandlerCanCancelPending) {
  Engine eng;
  bool second_fired = false;
  TimerId second = kNoTimer;
  eng.schedule_at(10, [&] { eng.cancel(second); });
  second = eng.schedule_at(20, [&] { second_fired = true; });
  eng.run();
  EXPECT_FALSE(second_fired);
}

TEST(Engine, RunUntilAdvancesClockWithoutEvents) {
  Engine eng;
  eng.run_until(1000);
  EXPECT_EQ(eng.now(), 1000);
}

TEST(Engine, RunUntilStopsAtDeadline) {
  Engine eng;
  std::vector<TimePoint> fired;
  eng.schedule_at(10, [&] { fired.push_back(eng.now()); });
  eng.schedule_at(99, [&] { fired.push_back(eng.now()); });
  eng.schedule_at(101, [&] { fired.push_back(eng.now()); });
  eng.run_until(100);
  EXPECT_EQ(fired.size(), 2u);
  EXPECT_EQ(eng.now(), 100);
  eng.run();
  EXPECT_EQ(fired.size(), 3u);
}

TEST(Engine, PastTimeClampsToNow) {
  Engine eng;
  eng.run_until(50);
  TimePoint fired_at = -1;
  eng.schedule_at(10, [&] { fired_at = eng.now(); });
  eng.run();
  EXPECT_EQ(fired_at, 50);
}

TEST(Engine, MaxEventsBound) {
  Engine eng;
  int count = 0;
  std::function<void()> forever = [&] {
    ++count;
    eng.schedule_after(1, forever);
  };
  eng.schedule_after(1, forever);
  eng.run(100);
  EXPECT_EQ(count, 100);
}

TEST(Engine, CancelledIdCannotTouchRecycledSlot) {
  Engine eng;
  int first = 0;
  int second = 0;
  const TimerId id = eng.schedule_after(10, [&first] { ++first; });
  eng.cancel(id);
  // The node is recycled for a new timer; the stale id must not cancel it.
  const TimerId id2 = eng.schedule_after(10, [&second] { ++second; });
  eng.cancel(id);  // no-op: generation mismatch
  eng.run();
  EXPECT_EQ(first, 0);
  EXPECT_EQ(second, 1);
  (void)id2;
}

TEST(Engine, CancelAfterFireIsNoop) {
  Engine eng;
  int fired = 0;
  const TimerId id = eng.schedule_after(5, [&fired] { ++fired; });
  eng.run();
  EXPECT_EQ(fired, 1);
  eng.cancel(id);  // already fired
  // The slot is recycled; the old id must still be dead.
  int later = 0;
  eng.schedule_after(5, [&later] { ++later; });
  eng.cancel(id);
  eng.run();
  EXPECT_EQ(later, 1);
}

TEST(Engine, SelfCancelInsideHandlerIsNoop) {
  Engine eng;
  int fired = 0;
  TimerId id = kNoTimer;
  id = eng.schedule_after(5, [&] {
    ++fired;
    eng.cancel(id);  // own id: already consumed, must not break anything
    eng.schedule_after(5, [&fired] { ++fired; });
  });
  eng.run();
  EXPECT_EQ(fired, 2);
}

// Regression for the lazy-deletion growth bug: a failure-detector-style
// schedule/cancel storm must not accumulate cancelled entries. Compaction
// keeps the queue within a small multiple of the live count, and the node
// pool at its high-water mark, independent of total churn (1M timers).
TEST(Engine, MassCancelKeepsMemoryBounded) {
  Engine eng;
  constexpr int kWindow = 256;
  constexpr int kChurn = 1000000;
  int fired = 0;
  std::vector<TimerId> ids;
  for (int i = 0; i < kWindow; ++i) {
    ids.push_back(eng.schedule_after(1000000 + i, [&fired] { ++fired; }));
  }
  std::size_t max_depth = 0;
  std::size_t max_pool = 0;
  for (int i = 0; i < kChurn; ++i) {
    const auto j = static_cast<std::size_t>(i % kWindow);
    eng.cancel(ids[j]);
    ids[j] = eng.schedule_after(1000000 + i % kWindow, [&fired] { ++fired; });
    if (i % 4096 == 0) {
      max_depth = std::max(max_depth, eng.queue_depth());
      max_pool = std::max(max_pool, eng.pool_size());
    }
  }
  max_depth = std::max(max_depth, eng.queue_depth());
  max_pool = std::max(max_pool, eng.pool_size());
  EXPECT_EQ(eng.pending(), static_cast<std::size_t>(kWindow));
  // Compaction invariant: cancelled entries stay a minority of the queue.
  EXPECT_LE(max_depth, static_cast<std::size_t>(2 * kWindow + 64));
  // Pool never grows past live + lingering-cancelled high water.
  EXPECT_LE(max_pool, static_cast<std::size_t>(2 * kWindow + 64));
  eng.run();
  EXPECT_EQ(fired, kWindow);
  EXPECT_EQ(eng.pending(), 0u);
}

// Cancelling everything mid-flight (crashed process teardown) must leave
// the engine consistent and reusable.
TEST(Engine, CancelAllThenReuse) {
  Engine eng;
  std::vector<TimerId> ids;
  int fired = 0;
  for (int i = 0; i < 10000; ++i) {
    ids.push_back(eng.schedule_after(i, [&fired] { ++fired; }));
  }
  for (const TimerId id : ids) eng.cancel(id);
  EXPECT_EQ(eng.pending(), 0u);
  eng.run();
  EXPECT_EQ(fired, 0);
  eng.schedule_after(1, [&fired] { ++fired; });
  eng.run();
  EXPECT_EQ(fired, 1);
}

// Deadlines spread across many orders of magnitude (microseconds to hours
// of virtual time) must still fire in exact (time, schedule-order) order.
TEST(Engine, WideHorizonFiresInOrder) {
  Engine eng;
  std::vector<std::int64_t> order;
  const std::int64_t deadlines[] = {0,       1,         63,         64,        65,
                                    4095,    4096,      262143,     262144,    16777215,
                                    16777216, 1073741824, 68719476736, 4398046511104};
  // Schedule in reverse so wheel level assignment can't accidentally match
  // schedule order.
  for (int i = static_cast<int>(std::size(deadlines)) - 1; i >= 0; --i) {
    const std::int64_t at = deadlines[i];
    eng.schedule_at(at, [&order, at] { order.push_back(at); });
  }
  // Duplicate deadline scheduled later must fire after the original.
  eng.schedule_at(64, [&order] { order.push_back(-64); });
  eng.run();
  ASSERT_EQ(order.size(), std::size(deadlines) + 1);
  EXPECT_TRUE(std::is_sorted(order.begin(), order.end(),
                             [](std::int64_t a, std::int64_t b) {
                               return std::llabs(a) != std::llabs(b) ? std::llabs(a) < std::llabs(b)
                                                                     : a > b;
                             }));
  EXPECT_EQ(order[3], 64);
  EXPECT_EQ(order[4], -64);
}

TEST(Network, DeliversWithDelay) {
  Engine eng;
  Network net(eng, 2, LinkModel{usec(500), 0, 0.0}, 1);
  TimePoint arrival = -1;
  net.set_handler(1, [&](ProcessId from, const Bytes& b) {
    EXPECT_EQ(from, 0);
    EXPECT_EQ(b.size(), 3u);
    arrival = eng.now();
  });
  net.send(0, 1, Bytes{1, 2, 3});
  eng.run();
  EXPECT_EQ(arrival, 500);
}

TEST(Network, JitterStaysInBounds) {
  Engine eng;
  Network net(eng, 2, LinkModel{usec(100), usec(50), 0.0}, 7);
  std::vector<TimePoint> arrivals;
  net.set_handler(1, [&](ProcessId, const Bytes&) { arrivals.push_back(eng.now()); });
  for (int i = 0; i < 200; ++i) net.send(0, 1, Bytes{0});
  eng.run();
  ASSERT_EQ(arrivals.size(), 200u);
  for (auto t : arrivals) {
    EXPECT_GE(t, 100);
    EXPECT_LE(t, 150);
  }
}

TEST(Network, DropsAreProbabilistic) {
  Engine eng;
  Network net(eng, 2, LinkModel{usec(100), 0, 0.5}, 3);
  int received = 0;
  net.set_handler(1, [&](ProcessId, const Bytes&) { ++received; });
  for (int i = 0; i < 1000; ++i) net.send(0, 1, Bytes{0});
  eng.run();
  EXPECT_GT(received, 350);
  EXPECT_LT(received, 650);
  EXPECT_EQ(net.metrics().counter("net.dropped"), 1000 - received);
}

TEST(Network, CrashStopsDelivery) {
  Engine eng;
  Network net(eng, 2, LinkModel{usec(100), 0, 0.0}, 1);
  int received = 0;
  net.set_handler(1, [&](ProcessId, const Bytes&) { ++received; });
  net.send(0, 1, Bytes{0});
  eng.run();
  EXPECT_EQ(received, 1);
  net.crash(1);
  EXPECT_FALSE(net.alive(1));
  net.send(0, 1, Bytes{0});
  eng.run();
  EXPECT_EQ(received, 1);
}

TEST(Network, CrashedSenderSendsNothing) {
  Engine eng;
  Network net(eng, 2, LinkModel{usec(100), 0, 0.0}, 1);
  int received = 0;
  net.set_handler(1, [&](ProcessId, const Bytes&) { ++received; });
  net.crash(0);
  net.send(0, 1, Bytes{0});
  eng.run();
  EXPECT_EQ(received, 0);
}

TEST(Network, InFlightMessageLostToCrash) {
  Engine eng;
  Network net(eng, 2, LinkModel{usec(100), 0, 0.0}, 1);
  int received = 0;
  net.set_handler(1, [&](ProcessId, const Bytes&) { ++received; });
  net.send(0, 1, Bytes{0});  // in flight
  net.crash(1);              // crashes before delivery
  eng.run();
  EXPECT_EQ(received, 0);
}

TEST(Network, PartitionBlocksAcrossComponents) {
  Engine eng;
  Network net(eng, 4, LinkModel{usec(100), 0, 0.0}, 1);
  std::vector<int> received(4, 0);
  for (ProcessId p = 0; p < 4; ++p) {
    net.set_handler(p, [&received, p](ProcessId, const Bytes&) { ++received[static_cast<std::size_t>(p)]; });
  }
  net.partition({{0, 1}, {2, 3}});
  EXPECT_TRUE(net.connected(0, 1));
  EXPECT_FALSE(net.connected(0, 2));
  net.send(0, 1, Bytes{0});
  net.send(0, 2, Bytes{0});
  net.send(2, 3, Bytes{0});
  eng.run();
  EXPECT_EQ(received[1], 1);
  EXPECT_EQ(received[2], 0);
  EXPECT_EQ(received[3], 1);
  net.heal();
  net.send(0, 2, Bytes{0});
  eng.run();
  EXPECT_EQ(received[2], 1);
}

TEST(Network, UnlistedProcessesAreIsolatedByPartition) {
  Engine eng;
  Network net(eng, 3, LinkModel{usec(100), 0, 0.0}, 1);
  net.partition({{0, 1}});
  EXPECT_FALSE(net.connected(0, 2));
  EXPECT_FALSE(net.connected(1, 2));
  EXPECT_TRUE(net.connected(2, 2));
}

TEST(Network, PartitionAppliesAtDeliveryTime) {
  Engine eng;
  Network net(eng, 2, LinkModel{usec(100), 0, 0.0}, 1);
  int received = 0;
  net.set_handler(1, [&](ProcessId, const Bytes&) { ++received; });
  net.send(0, 1, Bytes{0});          // in flight
  net.partition({{0}, {1}});         // partition before delivery
  eng.run();
  EXPECT_EQ(received, 0);            // in-flight message cut by the partition
}

// Regression: alive() used to index crashed_ with whatever id it was given,
// so out-of-range ids (ghosts) read as alive and fault-injection loops
// happily targeted them. Out-of-universe ids are never alive.
TEST(Network, AliveIsFalseOutsideTheUniverse) {
  Engine eng;
  Network net(eng, 3, LinkModel{usec(100), 0, 0.0}, 1);
  EXPECT_TRUE(net.alive(0));
  EXPECT_TRUE(net.alive(2));
  EXPECT_FALSE(net.alive(-1));
  EXPECT_FALSE(net.alive(3));
  EXPECT_FALSE(net.alive(kNoProcess));
  EXPECT_FALSE(net.alive(1000));
}

TEST(Network, DuplicateKnobDeliversTwoCopies) {
  Engine eng;
  Network net(eng, 2, LinkModel{usec(100), 0, 0.0}, 1);
  std::vector<TimePoint> arrivals;
  net.set_handler(1, [&](ProcessId, const Bytes&) { arrivals.push_back(eng.now()); });
  Network::FaultKnobs knobs;
  knobs.duplicate_probability = 1.0;
  knobs.duplicate_delay = usec(300);
  net.set_fault_knobs(knobs);
  net.send(0, 1, Bytes{0});
  eng.run();
  ASSERT_EQ(arrivals.size(), 2u);
  EXPECT_EQ(arrivals[0], 100);        // original copy on the normal schedule
  EXPECT_EQ(arrivals[1], 100 + 300);  // duplicate trails by duplicate_delay
  EXPECT_EQ(net.metrics().counter("net.duplicated"), 1);
  EXPECT_EQ(net.metrics().counter("net.delivered"), 2);
}

TEST(Network, ReorderKnobLetsLaterSendsOvertake) {
  Engine eng;
  Network net(eng, 2, LinkModel{usec(100), 0, 0.0}, 1);
  std::vector<int> order;
  net.set_handler(1, [&](ProcessId, const Bytes& b) { order.push_back(b[0]); });
  Network::FaultKnobs knobs;
  knobs.reorder_probability = 1.0;
  knobs.reorder_delay = usec(500);
  net.set_fault_knobs(knobs);
  net.send(0, 1, Bytes{1});     // held back 500us
  net.set_fault_knobs({});      // knob off again
  net.send(0, 1, Bytes{2});     // normal schedule: overtakes
  eng.run();
  EXPECT_EQ(order, (std::vector<int>{2, 1}));
  EXPECT_EQ(net.metrics().counter("net.reordered"), 1);
}

TEST(Network, KnobsOffDrawNoRandomness) {
  // With all knob probabilities at 0 the send path must consume exactly the
  // RNG draws it consumed before knobs existed — same seed, same arrivals.
  auto trace = [](bool touch_knobs) {
    Engine eng;
    Network net(eng, 2, LinkModel{usec(100), usec(80), 0.1}, 99);
    if (touch_knobs) net.set_fault_knobs({});  // explicit all-zero knobs
    std::vector<TimePoint> arrivals;
    net.set_handler(1, [&](ProcessId, const Bytes&) { arrivals.push_back(eng.now()); });
    for (int i = 0; i < 100; ++i) net.send(0, 1, Bytes{0});
    eng.run();
    return arrivals;
  };
  EXPECT_EQ(trace(false), trace(true));
}

// The two halves of a crash-mid-flight race: a message sent BEFORE the
// receiver crashes vanishes (checked at delivery), while a message already
// sent by a process that crashes afterwards still arrives — the network
// models datagrams physically in flight, not sender liveness.
TEST(Network, SenderCrashAfterSendStillDelivers) {
  Engine eng;
  Network net(eng, 2, LinkModel{usec(100), 0, 0.0}, 1);
  int received = 0;
  net.set_handler(1, [&](ProcessId, const Bytes&) { ++received; });
  net.send(0, 1, Bytes{0});
  net.crash(0);  // sender dies with the datagram in flight
  eng.run();
  EXPECT_EQ(received, 1);
}

TEST(Network, HealBeforeDeliveryRestoresInFlight) {
  Engine eng;
  Network net(eng, 2, LinkModel{usec(100), 0, 0.0}, 1);
  int received = 0;
  net.set_handler(1, [&](ProcessId, const Bytes&) { ++received; });
  net.send(0, 1, Bytes{0});   // delivery due at t=100
  net.partition({{0}, {1}});
  eng.schedule_at(50, [&] { net.heal(); });  // heal ordered before delivery
  eng.run();
  EXPECT_EQ(received, 1);  // connectivity is judged at delivery time
}

TEST(Network, DuplicateCopyAlsoRespectsPartitionAtDeliveryTime) {
  Engine eng;
  Network net(eng, 2, LinkModel{usec(100), 0, 0.0}, 1);
  int received = 0;
  net.set_handler(1, [&](ProcessId, const Bytes&) { ++received; });
  Network::FaultKnobs knobs;
  knobs.duplicate_probability = 1.0;
  knobs.duplicate_delay = usec(300);
  net.set_fault_knobs(knobs);
  net.send(0, 1, Bytes{0});  // copies due at t=100 and t=400
  eng.schedule_at(200, [&] { net.partition({{0}, {1}}); });
  eng.run();
  EXPECT_EQ(received, 1);  // first copy landed; the duplicate hit the partition
}

TEST(Network, LoopbackIsFast) {
  Engine eng;
  Network net(eng, 2, LinkModel{msec(10), 0, 0.0}, 1);
  TimePoint arrival = -1;
  net.set_handler(0, [&](ProcessId, const Bytes&) { arrival = eng.now(); });
  net.send(0, 0, Bytes{0});
  eng.run();
  EXPECT_LT(arrival, msec(1));
}

TEST(Context, TimersSuppressedAfterKill) {
  Engine eng;
  Context ctx(0, eng, Rng(1), Logger(), std::make_shared<Metrics>());
  int fired = 0;
  ctx.after(10, [&] { ++fired; });
  ctx.after(20, [&] { ++fired; });
  eng.run_until(15);
  EXPECT_EQ(fired, 1);
  ctx.kill();
  eng.run();
  EXPECT_EQ(fired, 1);
}

TEST(Context, DeterministicReplay) {
  auto trace = [](std::uint64_t seed) {
    Engine eng;
    Network net(eng, 3, LinkModel{usec(100), usec(80), 0.1}, seed);
    std::vector<std::pair<TimePoint, ProcessId>> log;
    for (ProcessId p = 0; p < 3; ++p) {
      net.set_handler(p, [&log, &eng, p](ProcessId, const Bytes&) {
        log.emplace_back(eng.now(), p);
      });
    }
    for (int i = 0; i < 50; ++i) {
      net.send(static_cast<ProcessId>(i % 3), static_cast<ProcessId>((i + 1) % 3), Bytes{0});
    }
    eng.run();
    return log;
  };
  EXPECT_EQ(trace(42), trace(42));
  EXPECT_NE(trace(42), trace(43));
}

}  // namespace
}  // namespace gcs::sim
