/// Uniform agreement in reliable broadcast: why receivers RELAY. The lazy
/// variant (no relay, O(n) messages) can deliver a message at a process
/// while correct processes never get it — fatal for replication (a replica
/// acted on a command nobody else will ever see). The eager default
/// (relay-before-deliver, O(n^2)) closes the hole.
#include <gtest/gtest.h>

#include <memory>

#include "broadcast/reliable_broadcast.hpp"
#include "tests/test_util.hpp"
#include "transport/sim_transport.hpp"

namespace gcs {
namespace {

using test::bytes_of;

struct RbWorld {
  sim::Engine engine;
  sim::Network network;
  struct Proc {
    std::unique_ptr<sim::Context> ctx;
    std::unique_ptr<SimTransport> transport;
    std::unique_ptr<ReliableChannel> channel;
    std::unique_ptr<ReliableBroadcast> rbcast;
    std::vector<MsgId> delivered;
  };
  std::vector<Proc> procs;

  explicit RbWorld(int n, bool non_uniform, std::uint64_t seed = 1)
      : network(engine, n, sim::LinkModel{usec(300), usec(100), 0.0}, seed) {
    std::vector<ProcessId> all;
    for (ProcessId p = 0; p < n; ++p) all.push_back(p);
    procs.resize(static_cast<std::size_t>(n));
    for (ProcessId p = 0; p < n; ++p) {
      auto& proc = procs[static_cast<std::size_t>(p)];
      proc.ctx = std::make_unique<sim::Context>(
          p, engine, Rng(seed + static_cast<std::uint64_t>(p)), Logger(),
          std::make_shared<Metrics>());
      proc.transport = std::make_unique<SimTransport>(*proc.ctx, network);
      proc.channel = std::make_unique<ReliableChannel>(*proc.ctx, *proc.transport);
      proc.rbcast = std::make_unique<ReliableBroadcast>(*proc.ctx, *proc.channel, Tag::kRbcast);
      proc.rbcast->unsafe_set_non_uniform(non_uniform);
      proc.rbcast->set_group(all);
      proc.rbcast->on_deliver(
          [&proc](const MsgId& id, BytesView) { proc.delivered.push_back(id); });
    }
  }

  void crash(ProcessId p) {
    procs[static_cast<std::size_t>(p)].ctx->kill();
    network.crash(p);
  }
};

/// The killer schedule: the sender's datagrams to p2/p3 are lost, p1 gets
/// and delivers its copy, the sender crashes before any retransmission
/// succeeds. Without relays the message dies with the sender.
TEST(Uniformity, LazyVariantViolatesUniformAgreement) {
  RbWorld w(4, /*non_uniform=*/true);
  // Everything p0 sends towards p2/p3 is lost (and keeps being lost, so
  // retransmissions don't save it); p0 -> p1 is clean.
  w.network.set_link(0, 2, sim::LinkModel{usec(300), 0, 1.0});
  w.network.set_link(0, 3, sim::LinkModel{usec(300), 0, 1.0});
  w.procs[0].rbcast->broadcast(bytes_of("doomed"));
  w.engine.run_until(msec(2));
  EXPECT_EQ(w.procs[1].delivered.size(), 1u) << "p1 should have delivered already";
  w.crash(0);
  w.engine.run_until(sec(2));
  // Uniform agreement says: if ANY process delivered (p1 did), all correct
  // processes deliver. p1 is correct and has it; p2/p3 are correct and
  // never will: VIOLATION (which this test documents).
  EXPECT_EQ(w.procs[2].delivered.size(), 0u);
  EXPECT_EQ(w.procs[3].delivered.size(), 0u);
}

/// Same schedule, safe default: p1's relay reaches the survivors even
/// though everything from p0 towards them is lost.
TEST(Uniformity, DefaultEagerRelayPreservesUniformAgreement) {
  RbWorld w(4, /*non_uniform=*/false);
  w.network.set_link(0, 2, sim::LinkModel{usec(300), 0, 1.0});
  w.network.set_link(0, 3, sim::LinkModel{usec(300), 0, 1.0});
  w.procs[0].rbcast->broadcast(bytes_of("safe"));
  w.engine.run_until(msec(2));
  EXPECT_EQ(w.procs[1].delivered.size(), 1u);
  w.crash(0);
  w.engine.run_until(sec(2));
  // p1 relayed on first receipt: the survivors have it.
  EXPECT_EQ(w.procs[2].delivered.size(), 1u);
  EXPECT_EQ(w.procs[3].delivered.size(), 1u);
}

}  // namespace
}  // namespace gcs
