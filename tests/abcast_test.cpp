#include <gtest/gtest.h>

#include <memory>

#include "broadcast/atomic_broadcast.hpp"
#include "tests/test_util.hpp"

namespace gcs {
namespace {

using test::bytes_of;
using test::consistent_prefix;

struct AbcastWorld {
  sim::Engine engine;
  sim::Network network;
  struct Proc {
    std::unique_ptr<sim::Context> ctx;
    std::unique_ptr<SimTransport> transport;
    std::unique_ptr<ReliableChannel> channel;
    std::unique_ptr<FailureDetector> fd;
    FailureDetector::ClassId fd_class = 0;
    std::unique_ptr<Consensus> consensus;
    std::unique_ptr<ReliableBroadcast> rbcast;
    std::unique_ptr<AtomicBroadcast> abcast;
    test::DeliveryLog log;
  };
  std::vector<Proc> procs;
  std::vector<ProcessId> all;

  explicit AbcastWorld(int n, sim::LinkModel link = {}, std::uint64_t seed = 1)
      : network(engine, n, link, seed) {
    procs.resize(static_cast<std::size_t>(n));
    for (ProcessId p = 0; p < n; ++p) {
      all.push_back(p);
      auto& proc = procs[static_cast<std::size_t>(p)];
      proc.ctx = std::make_unique<sim::Context>(
          p, engine, Rng(seed * 31 + static_cast<std::uint64_t>(p)), Logger(),
          std::make_shared<Metrics>());
      proc.transport = std::make_unique<SimTransport>(*proc.ctx, network);
      proc.channel = std::make_unique<ReliableChannel>(*proc.ctx, *proc.transport);
      proc.fd = std::make_unique<FailureDetector>(*proc.ctx, *proc.transport);
      proc.fd_class = proc.fd->add_class(msec(60));
      proc.consensus = std::make_unique<Consensus>(*proc.ctx, *proc.channel, *proc.fd,
                                                   proc.fd_class);
      proc.rbcast = std::make_unique<ReliableBroadcast>(*proc.ctx, *proc.channel, Tag::kRbcast);
      proc.abcast = std::make_unique<AtomicBroadcast>(*proc.ctx, *proc.rbcast, *proc.consensus);
      proc.abcast->subscribe(AtomicBroadcast::kApp,
                             [&proc](const MsgId& id, const Bytes& b) { proc.log.record(id, b); });
      proc.fd->monitor_group(proc.fd_class, {});
      proc.fd->start();
    }
    for (auto& proc : procs) proc.abcast->init(all);
  }

  void crash(ProcessId p) {
    procs[static_cast<std::size_t>(p)].ctx->kill();
    network.crash(p);
  }

  bool all_alive_delivered(std::size_t count) {
    for (ProcessId p = 0; p < static_cast<ProcessId>(procs.size()); ++p) {
      if (!network.alive(p)) continue;
      if (procs[static_cast<std::size_t>(p)].log.size() < count) return false;
    }
    return true;
  }

  void expect_total_order() {
    for (std::size_t i = 0; i + 1 < procs.size(); ++i) {
      EXPECT_TRUE(consistent_prefix(procs[i].log.order, procs[i + 1].log.order))
          << "processes " << i << " and " << i + 1 << " disagree on the order";
    }
  }
};

TEST(AtomicBroadcast, SingleMessageDeliveredEverywhere) {
  AbcastWorld w(3);
  const MsgId id = w.procs[0].abcast->abcast(AtomicBroadcast::kApp, bytes_of("hello"));
  ASSERT_TRUE(test::run_until(w.engine, sec(5), [&] { return w.all_alive_delivered(1); }));
  for (auto& proc : w.procs) {
    ASSERT_EQ(proc.log.size(), 1u);
    EXPECT_EQ(proc.log.order[0], id);
    EXPECT_EQ(proc.log.payloads[0], "hello");
  }
}

TEST(AtomicBroadcast, TotalOrderWithConcurrentSenders) {
  AbcastWorld w(4);
  const int kPerSender = 10;
  for (int i = 0; i < kPerSender; ++i) {
    for (ProcessId p = 0; p < 4; ++p) {
      w.procs[static_cast<std::size_t>(p)].abcast->abcast(
          AtomicBroadcast::kApp, bytes_of("m" + std::to_string(p) + "." + std::to_string(i)));
    }
  }
  ASSERT_TRUE(test::run_until(w.engine, sec(30), [&] { return w.all_alive_delivered(40); }));
  w.expect_total_order();
  for (auto& proc : w.procs) EXPECT_EQ(proc.log.size(), 40u);
}

TEST(AtomicBroadcast, NoDuplicateNoCreation) {
  AbcastWorld w(3);
  std::set<MsgId> sent;
  for (int i = 0; i < 5; ++i) {
    sent.insert(w.procs[0].abcast->abcast(AtomicBroadcast::kApp, bytes_of("x")));
  }
  ASSERT_TRUE(test::run_until(w.engine, sec(10), [&] { return w.all_alive_delivered(5); }));
  for (auto& proc : w.procs) {
    std::set<MsgId> got(proc.log.order.begin(), proc.log.order.end());
    EXPECT_EQ(got.size(), proc.log.order.size()) << "duplicate delivery";
    EXPECT_EQ(got, sent) << "created or lost messages";
  }
}

TEST(AtomicBroadcast, OrderSurvivesJitterAndLoss) {
  AbcastWorld w(4, sim::LinkModel{usec(200), usec(600), 0.15}, 17);
  for (int i = 0; i < 8; ++i) {
    for (ProcessId p = 0; p < 4; ++p) {
      w.procs[static_cast<std::size_t>(p)].abcast->abcast(AtomicBroadcast::kApp,
                                                          bytes_of(std::to_string(i)));
    }
  }
  ASSERT_TRUE(test::run_until(w.engine, sec(60), [&] { return w.all_alive_delivered(32); }));
  w.expect_total_order();
}

TEST(AtomicBroadcast, SurvivesMinorityCrash) {
  AbcastWorld w(5);
  for (int i = 0; i < 5; ++i) {
    w.procs[0].abcast->abcast(AtomicBroadcast::kApp, bytes_of("pre" + std::to_string(i)));
  }
  w.engine.run_until(msec(2));
  w.crash(3);
  w.crash(4);
  for (int i = 0; i < 5; ++i) {
    w.procs[1].abcast->abcast(AtomicBroadcast::kApp, bytes_of("post" + std::to_string(i)));
  }
  ASSERT_TRUE(test::run_until(w.engine, sec(30), [&] { return w.all_alive_delivered(10); }));
  w.expect_total_order();
}

TEST(AtomicBroadcast, SenderCrashAfterBroadcastIsUniform) {
  // If any process adelivers the dying sender's message, all correct ones do.
  AbcastWorld w(4);
  w.procs[0].abcast->abcast(AtomicBroadcast::kApp, bytes_of("last words"));
  w.engine.run_until(usec(600));  // rbcast out, then die
  w.crash(0);
  test::run_until(w.engine, sec(10), [&] { return w.all_alive_delivered(1); });
  // Uniformity: either none or all of the alive processes delivered it.
  std::size_t delivered = 0;
  for (ProcessId p = 1; p < 4; ++p) {
    delivered += w.procs[static_cast<std::size_t>(p)].log.size();
  }
  EXPECT_TRUE(delivered == 0 || delivered == 3) << delivered;
  w.expect_total_order();
}

TEST(AtomicBroadcast, SubTagsShareOneTotalOrder) {
  AbcastWorld w(3);
  std::vector<std::pair<char, std::string>> combined0;  // (subtag, payload) at p0
  w.procs[0].abcast->subscribe(AtomicBroadcast::kViewChange,
                               [&](const MsgId&, const Bytes& b) {
                                 combined0.emplace_back('V', test::str_of(b));
                               });
  std::vector<std::pair<char, std::string>> combined1;
  w.procs[1].abcast->subscribe(AtomicBroadcast::kViewChange,
                               [&](const MsgId&, const Bytes& b) {
                                 combined1.emplace_back('V', test::str_of(b));
                               });
  // Interleave app and view-change messages from different senders.
  for (int i = 0; i < 6; ++i) {
    w.procs[static_cast<std::size_t>(i % 3)].abcast->abcast(
        (i % 2 == 0) ? AtomicBroadcast::kApp : AtomicBroadcast::kViewChange,
        bytes_of(std::to_string(i)));
  }
  ASSERT_TRUE(test::run_until(w.engine, sec(10), [&] {
    return w.procs[0].log.size() + combined0.size() == 6 &&
           w.procs[1].log.size() + combined1.size() == 6;
  }));
  EXPECT_EQ(combined0, combined1);
  w.expect_total_order();
}

TEST(AtomicBroadcast, BatchingKeepsConsensusCountBelowMessageCount) {
  AbcastWorld w(3);
  // Burst of 30 messages: batching should order them in far fewer instances.
  for (int i = 0; i < 30; ++i) {
    w.procs[0].abcast->abcast(AtomicBroadcast::kApp, bytes_of(std::to_string(i)));
  }
  ASSERT_TRUE(test::run_until(w.engine, sec(30), [&] { return w.all_alive_delivered(30); }));
  EXPECT_LT(w.procs[0].abcast->next_instance(), 20u);
  EXPECT_GE(w.procs[0].abcast->next_instance(), 1u);
}

TEST(AtomicBroadcast, SnapshotRestoreBringsJoinerInSync) {
  AbcastWorld w(4);
  // Run the group as {0,1,2} first; 3 is outside.
  for (auto& proc : w.procs) proc.abcast->init({0, 1, 2});
  for (int i = 0; i < 5; ++i) {
    w.procs[0].abcast->abcast(AtomicBroadcast::kApp, bytes_of("old" + std::to_string(i)));
  }
  ASSERT_TRUE(test::run_until(w.engine, sec(10), [&] {
    return w.procs[0].log.size() >= 5 && w.procs[1].log.size() >= 5 &&
           w.procs[2].log.size() >= 5;
  }));
  // Snapshot from member 0; bring in 3 with members {0,1,2,3}.
  Bytes snap = w.procs[0].abcast->snapshot();
  {
    // Patch the member set the snapshot carries by re-initializing members
    // at every process (this test drives the layer manually; the membership
    // component automates this in stack tests).
    for (ProcessId p = 0; p < 4; ++p) {
      w.procs[static_cast<std::size_t>(p)].abcast->set_members({0, 1, 2, 3});
    }
    w.procs[3].abcast->restore(snap);
    w.procs[3].abcast->set_members({0, 1, 2, 3});
  }
  for (int i = 0; i < 5; ++i) {
    w.procs[3].abcast->abcast(AtomicBroadcast::kApp, bytes_of("new" + std::to_string(i)));
  }
  ASSERT_TRUE(test::run_until(w.engine, sec(10), [&] {
    return w.procs[3].log.size() >= 5 && w.procs[0].log.size() >= 10;
  }));
  // Joiner must not re-deliver old messages...
  for (const auto& payload : w.procs[3].log.payloads) {
    EXPECT_EQ(payload.substr(0, 3), "new");
  }
  // ...and new messages are totally ordered at the old members.
  EXPECT_TRUE(consistent_prefix(w.procs[0].log.order, w.procs[1].log.order));
}

}  // namespace
}  // namespace gcs
