/// \file quickstart.cpp
/// Five-minute tour of the nggcs public API: found a group, broadcast with
/// three different guarantees, watch a member join, and crash one.
///
///   ./examples/quickstart
#include <cstdio>
#include <string>

#include "core/stack.hpp"

using namespace gcs;

namespace {
Bytes bytes_of(const std::string& s) { return Bytes(s.begin(), s.end()); }
std::string str_of(const Bytes& b) { return std::string(b.begin(), b.end()); }
}  // namespace

int main() {
  std::printf("== nggcs quickstart ==\n\n");

  // A World bundles the virtual-time engine, the simulated network and one
  // protocol stack (Fig 9 of the paper) per process.
  World::Config config;
  config.n = 5;                      // universe: processes 0..4
  config.link.base_delay = usec(300);
  config.link.jitter = usec(200);
  config.seed = 2026;
  World world(config);

  // Subscribe to deliveries and views at process 0 so we can narrate.
  world.stack(0).on_adeliver([&](const MsgId& id, const Bytes& payload) {
    std::printf("[%6.2fms] p0 adeliver  %-6s  \"%s\"\n",
                world.engine().now() / 1000.0, to_string(id).c_str(),
                str_of(payload).c_str());
  });
  world.stack(0).on_gdeliver([&](const MsgId& id, MsgClass cls, const Bytes& payload) {
    std::printf("[%6.2fms] p0 gdeliver  %-6s  class=%d \"%s\"\n",
                world.engine().now() / 1000.0, to_string(id).c_str(), cls,
                str_of(payload).c_str());
  });
  world.stack(0).on_view([&](const View& v) {
    std::string members;
    for (ProcessId p : v.members) members += " p" + std::to_string(p);
    std::printf("[%6.2fms] p0 new_view  #%llu {%s }\n", world.engine().now() / 1000.0,
                static_cast<unsigned long long>(v.id), members.c_str());
  });

  // 1. Found the group with processes 0..3 (process 4 joins later).
  std::printf("-- founding the group with p0..p3\n");
  world.found_group({0, 1, 2, 3});

  // 2. Atomic broadcast: totally ordered against everything.
  std::printf("-- atomic broadcast (total order)\n");
  world.stack(1).abcast(bytes_of("hello, total order"));
  world.stack(2).abcast(bytes_of("me too"));
  world.run_for(msec(50));

  // 3. Generic broadcast: the reliable class skips consensus entirely.
  std::printf("-- generic broadcast, non-conflicting class (fast path)\n");
  world.stack(3).rbcast(bytes_of("cheap and unordered"));
  world.stack(1).rbcast(bytes_of("also cheap"));
  world.run_for(msec(50));
  std::printf("   consensus instances so far at p0: %lld (gbcast fast path used none)\n",
              static_cast<long long>(world.stack(0).consensus().instances_decided()));

  // 4. A conflicting-class message forces ordering, through the same API.
  std::printf("-- generic broadcast, conflicting class (ordered)\n");
  world.stack(2).gbcast(kAbcastClass, bytes_of("order me against everything"));
  world.run_for(msec(100));

  // 5. Process 4 joins; membership is just another totally ordered message.
  std::printf("-- p4 joins via contact p1 (state transfer included)\n");
  world.stack(4).join(1);
  world.run_for(msec(200));

  // 6. Crash p3; the failure detector suspects it quickly, consensus keeps
  // running, and the monitoring component eventually excludes it.
  std::printf("-- crashing p3; monitoring will exclude it (~2s timeout)\n");
  world.crash(3);
  world.stack(0).abcast(bytes_of("life goes on"));
  world.run_for(sec(3));

  std::printf("\nfinal view at p0: #%llu with %zu members\n",
              static_cast<unsigned long long>(world.stack(0).view().id),
              world.stack(0).view().members.size());
  std::printf("done.\n");
  return 0;
}
