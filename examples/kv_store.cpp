/// \file kv_store.cpp
/// A replicated key-value store with active replication: linearizable
/// writes via atomic broadcast, crash of a minority, and a replacement
/// replica joining with automatic state transfer.
///
///   ./examples/kv_store
#include <cstdio>

#include "replication/active.hpp"
#include "replication/state_machine.hpp"

using namespace gcs;
using namespace gcs::replication;

int main() {
  std::printf("== replicated key-value store ==\n\n");
  World::Config config;
  config.n = 5;
  config.seed = 31337;
  config.stack.monitoring.exclusion_timeout = msec(700);
  World world(config);
  std::vector<std::unique_ptr<ActiveReplication>> replicas;
  for (ProcessId p = 0; p < 5; ++p) {
    replicas.push_back(
        std::make_unique<ActiveReplication>(world.stack(p), std::make_unique<KvStore>()));
  }
  world.found_group({0, 1, 2, 3});
  auto kv = [&](ProcessId p) -> KvStore& {
    return static_cast<KvStore&>(replicas[static_cast<std::size_t>(p)]->state());
  };

  std::printf("-- writing 20 keys through different replicas\n");
  for (int i = 0; i < 20; ++i) {
    replicas[static_cast<std::size_t>(i % 4)]->submit(
        KvStore::make_put("key" + std::to_string(i), "value" + std::to_string(i)));
    world.run_for(msec(2));
  }
  world.run_for(msec(200));
  std::printf("   sizes: p0=%zu p1=%zu p2=%zu p3=%zu\n", kv(0).size(), kv(1).size(),
              kv(2).size(), kv(3).size());

  std::printf("-- crashing replica p3 and writing through the survivors\n");
  world.crash(3);
  for (int i = 20; i < 30; ++i) {
    replicas[static_cast<std::size_t>(i % 3)]->submit(
        KvStore::make_put("key" + std::to_string(i), "value" + std::to_string(i)));
    world.run_for(msec(2));
  }
  world.run_for(sec(2));  // monitoring excludes p3
  std::printf("   view now has %zu members; p0 holds %zu keys\n",
              world.stack(0).view().members.size(), kv(0).size());

  std::printf("-- replacement replica p4 joins (state transfer)\n");
  world.stack(4).join(0);
  world.run_for(msec(300));
  std::printf("   p4 is member: %s, holds %zu keys after the snapshot\n",
              world.stack(4).membership().is_member() ? "yes" : "no", kv(4).size());

  std::printf("-- one more write lands everywhere, including p4\n");
  replicas[0]->submit(KvStore::make_put("final", "write"));
  world.run_for(msec(200));
  const bool consistent = kv(0).data() == kv(1).data() && kv(1).data() == kv(2).data() &&
                          kv(2).data() == kv(4).data();
  std::printf("\nreplica states identical (p0,p1,p2,p4): %s, %zu keys each\n",
              consistent ? "yes" : "NO (bug!)", kv(0).size());
  return consistent ? 0 : 1;
}
