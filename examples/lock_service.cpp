/// \file lock_service.cpp
/// Distributed mutual exclusion over nggcs: four nodes contend for one
/// lock, hold it briefly, and the grant sequence — identical at every
/// replica — is the audit trail. Then the current holder crashes and the
/// membership-driven cleanup hands the lock onward.
///
///   ./examples/lock_service
#include <cstdio>
#include <memory>

#include "replication/lock_service.hpp"

using namespace gcs;
using namespace gcs::replication;

int main() {
  std::printf("== distributed lock service over nggcs ==\n\n");
  World::Config config;
  config.n = 4;
  config.seed = 77;
  config.stack.monitoring.exclusion_timeout = msec(600);
  World world(config);
  world.found_group_all();
  std::vector<std::unique_ptr<LockService>> locks;
  for (ProcessId p = 0; p < 4; ++p) {
    locks.push_back(std::make_unique<LockService>(world.stack(p)));
  }

  std::printf("-- all four nodes request the same lock at once\n");
  for (ProcessId p = 0; p < 4; ++p) {
    locks[static_cast<std::size_t>(p)]->acquire(
        "the-lock", [&world, &locks, p](const std::string&) {
          std::printf("[%7.2fms] p%d GRANTED the-lock\n", world.engine().now() / 1000.0, p);
          if (p != 2) {  // p2 will crash while holding (below)
            world.engine().schedule_after(msec(10), [&locks, p, &world] {
              std::printf("[%7.2fms] p%d releases\n", world.engine().now() / 1000.0, p);
              locks[static_cast<std::size_t>(p)]->release("the-lock");
            });
          }
        });
  }
  // Let the first grants flow; crash p2 the moment it becomes the holder.
  bool crashed = false;
  while (!crashed) {
    world.run_for(msec(5));
    if (locks[2]->holds("the-lock")) {
      std::printf("[%7.2fms] p2 holds the lock... and CRASHES\n",
                  world.engine().now() / 1000.0);
      world.crash(2);
      crashed = true;
    }
    if (world.engine().now() > sec(5)) break;
  }
  // Monitoring excludes p2; the view head submits the cleanup; the next
  // waiter inherits the lock.
  world.run_for(sec(3));

  std::printf("\ngrant audit trail at p0 (identical at every replica):\n");
  for (const auto& [lock, owner] : locks[0]->table().grant_log()) {
    std::printf("  %-10s -> %s\n", lock.c_str(), owner.c_str());
  }
  const auto& ref = locks[0]->table().grant_log();
  bool identical = true;
  for (ProcessId p : world.stack(0).view().members) {
    if (locks[static_cast<std::size_t>(p)]->table().grant_log() != ref) identical = false;
  }
  std::printf("\naudit trails identical at all members: %s\n", identical ? "yes" : "NO");
  std::printf("final holder: %s (empty = free)\n", locks[0]->table().holder("the-lock").c_str());
  return identical ? 0 : 1;
}
