/// \file primary_backup.cpp
/// Walkthrough of the paper's Figure 8: passive replication over generic
/// broadcast, racing an `update` against a `primary-change`.
///
///   ./examples/primary_backup
#include <cstdio>

#include "replication/passive.hpp"
#include "replication/state_machine.hpp"

using namespace gcs;
using namespace gcs::replication;

namespace {

/// One race between update(deposit) and primary-change, at a given delay
/// between the two. Returns true if the update committed (Fig 8 outcome 1).
bool race_once(Duration change_head_start, std::uint64_t seed, bool verbose) {
  World::Config config;
  config.n = 4;
  config.seed = seed;
  config.stack.conflict = ConflictRelation::update_primary_change();
  World world(config);
  world.found_group_all();
  PassiveReplication::Config pcfg;
  pcfg.auto_primary_change = false;
  std::vector<std::unique_ptr<PassiveReplication>> replicas;
  for (ProcessId p = 0; p < config.n; ++p) {
    replicas.push_back(std::make_unique<PassiveReplication>(
        world.stack(p), std::make_unique<BankAccount>(), pcfg));
  }

  bool committed = false, preempted = false;
  if (change_head_start > 0) {
    world.engine().schedule_after(change_head_start, [&] {});
    world.run_for(change_head_start);
  }
  // s1 (p0) handles a client request and broadcasts the update...
  replicas[0]->handle_request(BankAccount::make_deposit(100),
                              [&](bool ok, const Bytes&) {
                                committed = ok;
                                preempted = !ok;
                              });
  // ...while s2 (p1), suspecting s1, broadcasts primary-change(s1).
  replicas[1]->request_primary_change();

  for (int spin = 0; spin < 2000 && !(committed || preempted); ++spin) {
    world.run_for(msec(5));
  }
  // Let everything settle, then check agreement.
  world.run_for(msec(500));
  const auto balance0 = static_cast<BankAccount&>(replicas[0]->state()).balance();
  for (ProcessId p = 1; p < config.n; ++p) {
    const auto b = static_cast<BankAccount&>(replicas[static_cast<std::size_t>(p)]->state())
                       .balance();
    if (b != balance0) {
      std::printf("  !! replicas diverged (p0=%lld p%d=%lld)\n", (long long)balance0, p,
                  (long long)b);
    }
  }
  if (verbose) {
    std::printf("  outcome: %s; balances all %lld; new primary p%d; epoch %llu\n",
                committed ? "1 (update before change: committed)"
                          : "2 (change first: update ignored, client must retry)",
                (long long)balance0, replicas[2]->primary(),
                (unsigned long long)replicas[2]->epoch());
  }
  return committed;
}

}  // namespace

int main() {
  std::printf("== passive replication via generic broadcast (Fig 8) ==\n\n");
  std::printf("replicas [s1; s2; s3; s4] = [p0; p1; p2; p3], primary = p0\n");
  std::printf("at ~the same instant: p0 gbcasts update(deposit 100) [class: update],\n");
  std::printf("p1 gbcasts primary-change(p0) [class: primary-change]. They conflict\n");
  std::printf("(§3.2.3 table), so generic broadcast orders them — two legal outcomes:\n\n");

  std::printf("-- a single race, narrated:\n");
  race_once(0, 42, /*verbose=*/true);

  std::printf("\n-- outcome distribution over 40 seeds (tight race):\n");
  int committed = 0;
  const int runs = 40;
  for (int i = 0; i < runs; ++i) {
    if (race_once(0, 1000 + static_cast<std::uint64_t>(i), false)) ++committed;
  }
  std::printf("  outcome 1 (update first): %d/%d\n", committed, runs);
  std::printf("  outcome 2 (change first): %d/%d\n", runs - committed, runs);
  std::printf("  (no third outcome ever occurs; all replicas always agree)\n");

  std::printf("\n-- giving the primary-change a 5ms head start:\n");
  int committed2 = 0;
  for (int i = 0; i < 10; ++i) {
    // Here the change is issued first, then the update after 5ms: the update
    // almost always carries a stale epoch and is ignored.
    World::Config config;
    config.n = 4;
    config.seed = 5000 + static_cast<std::uint64_t>(i);
    config.stack.conflict = ConflictRelation::update_primary_change();
    World world(config);
    world.found_group_all();
    PassiveReplication::Config pcfg;
    pcfg.auto_primary_change = false;
    std::vector<std::unique_ptr<PassiveReplication>> reps;
    for (ProcessId p = 0; p < 4; ++p) {
      reps.push_back(std::make_unique<PassiveReplication>(
          world.stack(p), std::make_unique<BankAccount>(), pcfg));
    }
    reps[1]->request_primary_change();
    world.run_for(msec(5));
    bool ok = false, done = false;
    reps[0]->handle_request(BankAccount::make_deposit(100), [&](bool o, const Bytes&) {
      ok = o;
      done = true;
    });
    for (int spin = 0; spin < 2000 && !done; ++spin) world.run_for(msec(5));
    if (ok) ++committed2;
  }
  std::printf("  update committed: %d/10 (preempted otherwise)\n", committed2);
  std::printf("\ndone.\n");
  return 0;
}
