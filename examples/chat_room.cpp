/// \file chat_room.cpp
/// A totally ordered chat room with live membership churn: everyone sees
/// the same transcript, joins and leaves are just ordered messages, and a
/// crashed member is eventually excluded by the monitoring component.
///
///   ./examples/chat_room
#include <cstdio>
#include <string>
#include <vector>

#include "core/stack.hpp"

using namespace gcs;

namespace {
Bytes bytes_of(const std::string& s) { return Bytes(s.begin(), s.end()); }
std::string str_of(const Bytes& b) { return std::string(b.begin(), b.end()); }
}  // namespace

int main() {
  std::printf("== chat room over nggcs ==\n\n");
  World::Config config;
  config.n = 5;
  config.seed = 99;
  config.stack.monitoring.exclusion_timeout = msec(800);
  World world(config);

  std::vector<std::vector<std::string>> transcripts(5);
  for (ProcessId p = 0; p < 5; ++p) {
    world.stack(p).on_adeliver([&transcripts, p](const MsgId& id, const Bytes& b) {
      transcripts[static_cast<std::size_t>(p)].push_back(
          "p" + std::to_string(id.sender) + ": " + str_of(b));
    });
  }
  world.stack(0).on_view([&](const View& v) {
    std::string members;
    for (ProcessId p : v.members) members += " p" + std::to_string(p);
    std::printf("[%7.2fms] * room membership is now {%s }\n",
                world.engine().now() / 1000.0, members.c_str());
  });

  auto say = [&](ProcessId who, const std::string& text) {
    world.stack(who).abcast(bytes_of(text));
    world.run_for(msec(3));
  };

  world.found_group({0, 1, 2});
  say(0, "hi all");
  say(1, "hey!");
  say(2, "morning");

  std::printf("-- p3 joins the room\n");
  world.stack(3).join(0);
  world.run_for(msec(100));
  say(3, "sorry I'm late, what did I miss?");
  say(0, "nothing, the state transfer has you covered");

  std::printf("-- p4 joins; p1 leaves politely\n");
  world.stack(4).join(2);
  world.run_for(msec(100));
  world.stack(1).membership().leave();
  world.run_for(msec(100));
  say(4, "who else is here?");

  std::printf("-- p2 crashes mid-conversation\n");
  world.crash(2);
  say(0, "p2? you there?");
  world.run_for(sec(2));  // monitoring excludes the corpse
  say(3, "guess not. moving on");
  world.run_for(msec(200));

  // Verify every live member has the same transcript.
  std::printf("\ntranscript as seen by p0 (%zu lines):\n", transcripts[0].size());
  for (const auto& line : transcripts[0]) std::printf("  %s\n", line.c_str());
  bool all_agree = true;
  for (ProcessId p : world.stack(0).view().members) {
    const auto& t = transcripts[static_cast<std::size_t>(p)];
    // Late joiners hold a suffix; check suffix alignment against p0.
    const auto& ref = transcripts[0];
    if (t.size() > ref.size()) { all_agree = false; continue; }
    for (std::size_t i = 0; i < t.size(); ++i) {
      if (t[t.size() - 1 - i] != ref[ref.size() - 1 - i]) all_agree = false;
    }
  }
  std::printf("\nall current members agree on the transcript: %s\n",
              all_agree ? "yes" : "NO (bug!)");
  return all_agree ? 0 : 1;
}
