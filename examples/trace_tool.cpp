/// \file trace_tool.cpp
/// Wire-level tracing: taps the simulated network and prints a sequence
/// diagram of one atomic broadcast — every datagram, classified by the
/// component tag it carries. Handy for understanding (and teaching) how an
/// abcast becomes a consensus instance.
///
///   ./examples/trace_tool
#include <cstdio>
#include <string>

#include "core/stack.hpp"
#include "util/codec.hpp"

using namespace gcs;

namespace {

Bytes bytes_of(const std::string& s) { return Bytes(s.begin(), s.end()); }

const char* tag_name(std::uint8_t tag) {
  switch (static_cast<Tag>(tag)) {
    case Tag::kChannel: return "channel";
    case Tag::kFd: return "fd.heartbeat";
    case Tag::kConsensus: return "consensus";
    case Tag::kRbcast: return "rbcast";
    case Tag::kAbcast: return "abcast";
    case Tag::kGbcast: return "gb.ack";
    case Tag::kMembership: return "membership";
    case Tag::kMonitoring: return "monitoring";
    case Tag::kGbData: return "gb.data";
    case Tag::kApp: return "app";
    case Tag::kCbcast: return "cbcast";
    default: return "?";
  }
}

/// Channel frames wrap an inner tag; dig it out for a useful label.
std::string classify(const Bytes& datagram) {
  if (datagram.empty()) return "?";
  const auto outer = datagram[0];
  if (static_cast<Tag>(outer) != Tag::kChannel) return tag_name(outer);
  // channel frame: kind(1) seq(varint) upper-tag(1) payload
  Decoder dec(datagram.data() + 1, datagram.size() - 1);
  const std::uint8_t kind = dec.get_byte();
  if (kind == 1) return "channel.ack";
  (void)dec.get_u64();  // seq
  const std::uint8_t upper = dec.get_byte();
  if (!dec.ok()) return "channel.data";
  return std::string("channel[") + tag_name(upper) + "]";
}

}  // namespace

int main() {
  std::printf("== wire trace of one atomic broadcast (3 processes) ==\n\n");
  World::Config config;
  config.n = 3;
  config.seed = 1;
  World world(config);
  world.found_group_all();
  // Let startup traffic (heartbeats) settle before arming the tap.
  world.run_for(msec(30));

  int lines = 0;
  world.network().set_tap([&](ProcessId from, ProcessId to, const Bytes& b) {
    const std::string what = classify(b);
    if (what == "fd.heartbeat" || what == "channel.ack") return;  // noise
    if (lines >= 60) return;
    ++lines;
    // Sequence-diagram-ish rendering: columns p0 p1 p2.
    std::string cols = "      .        .        .   ";
    const auto col = [](ProcessId p) { return 6 + 9 * static_cast<std::size_t>(p); };
    cols[col(from)] = 'o';
    cols[col(to)] = '>';
    std::printf("[%9.3fms] %s  p%d -> p%d  %-22s (%zu B)\n",
                world.engine().now() / 1000.0, cols.c_str(), from, to, what.c_str(),
                b.size());
  });

  std::printf("      p0       p1       p2\n");
  world.stack(1).abcast(bytes_of("trace me"));
  world.run_for(msec(20));

  std::printf("\nReading the trace: the message floods via channel[rbcast] (p1 to\n"
              "all, then relays); consensus runs inside channel[consensus]\n"
              "(estimate -> propose -> ack -> decide); no membership traffic is\n"
              "involved anywhere — the Fig 6 point, visible on the wire.\n");
  return 0;
}
