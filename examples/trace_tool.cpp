/// \file trace_tool.cpp
/// Message-lifecycle tracing: runs the full stack with the flight recorder
/// enabled and prints a sequence diagram of one atomic broadcast — every
/// channel transmit, labelled by the component tag it carries — then a
/// generic-broadcast round showing the fast path and the conflict fallback.
/// Handy for understanding (and teaching) how an abcast becomes a consensus
/// instance, and how gbcast avoids one.
///
///   ./examples/trace_tool [--chrome=trace.json]
///
/// With --chrome=PATH, the whole recorded trace is exported as Chrome
/// trace-event JSON: load it in Perfetto (ui.perfetto.dev) or
/// chrome://tracing. Timestamps are virtual time.
#include <cstdio>
#include <cstring>
#include <string>

#include "core/stack.hpp"
#include "obs/exporters.hpp"

using namespace gcs;

namespace {

Bytes bytes_of(const std::string& s) { return Bytes(s.begin(), s.end()); }

/// Count recorder records with name \p id since \p since; proc >= 0
/// restricts to one process (e.g. to count rounds once, not once per member).
int count_since(const obs::Recorder& rec, obs::NameId id, TimePoint since,
                ProcessId proc = kNoProcess) {
  int n = 0;
  for (const obs::Record& r : rec.records()) {
    if (r.name == id && r.ts >= since && (proc == kNoProcess || r.proc == proc) &&
        r.phase != obs::Phase::kEnd) {
      ++n;
    }
  }
  return n;
}

}  // namespace

int main(int argc, char** argv) {
  std::string chrome_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--chrome=", 9) == 0) chrome_path = argv[i] + 9;
  }

  std::printf("== wire trace of one atomic broadcast (3 processes) ==\n\n");
  World::Config config;
  config.n = 3;
  config.seed = 1;
  config.stack.recorder = std::make_shared<obs::Recorder>(1 << 16);
  World world(config);
  const obs::Recorder& rec = *config.stack.recorder;
  world.found_group_all();
  // Let startup traffic (heartbeats) settle before the traced broadcast.
  world.run_for(msec(30));

  const TimePoint abcast_start = world.engine().now();
  world.stack(1).abcast(bytes_of("trace me"));
  world.run_for(msec(20));

  obs::SequenceOptions seq;
  seq.num_processes = 3;
  seq.since = abcast_start;
  std::fputs(obs::render_sequence(rec, seq).c_str(), stdout);

  std::printf("\nReading the trace: the message floods via channel[rbcast] (p1 to\n"
              "all, then relays); consensus runs inside channel[consensus]\n"
              "(estimate -> propose -> ack -> decide); no membership traffic is\n"
              "involved anywhere — the Fig 6 point, visible on the wire.\n");

  // -- generic broadcast: fast path vs conflict fallback ------------------
  const obs::Names& names = obs::Names::get();
  std::printf("\n== generic broadcast: fast path vs conflict fallback ==\n\n");

  const TimePoint gb_fast_start = world.engine().now();
  world.stack(0).rbcast(bytes_of("non-conflicting"));
  world.run_for(msec(20));
  std::printf("rbcast-class message: %d fast deliveries, %d resolutions —\n"
              "an ACK quorum (2n/3+1) delivered it in two steps, no consensus.\n",
              count_since(rec, names.gb_deliver_fast, gb_fast_start),
              count_since(rec, names.gb_resolve, gb_fast_start, 0));

  const TimePoint gb_slow_start = world.engine().now();
  world.stack(0).gbcast(kAbcastClass, bytes_of("conflict a"));
  world.stack(2).gbcast(kAbcastClass, bytes_of("conflict b"));
  world.run_for(msec(60));
  std::printf("two conflicting abcast-class messages: %d slow deliveries via\n"
              "%d resolution round(s) — frozen ACK sets ride the abcast into\n"
              "consensus (spans gb.resolve and consensus.instance in the trace).\n",
              count_since(rec, names.gb_deliver_slow, gb_slow_start),
              count_since(rec, names.gb_resolve, gb_slow_start, 0));

  if (!chrome_path.empty()) {
    if (obs::write_chrome_trace(rec, chrome_path)) {
      std::printf("\nChrome trace written to %s (%zu records, %llu overwritten).\n"
                  "Load it at ui.perfetto.dev or chrome://tracing.\n",
                  chrome_path.c_str(), rec.size(),
                  static_cast<unsigned long long>(rec.dropped()));
    } else {
      std::fprintf(stderr, "failed to write %s\n", chrome_path.c_str());
      return 1;
    }
  }
  return 0;
}
