/// \file ensemble_stack.cpp
/// Rebuilds the SHAPE of the paper's Figure 5 (an Ensemble protocol stack)
/// with the composition kernel of src/kernel, and demonstrates the event
/// patterns §2.2 describes:
///   - components composed bottom-up from off-the-shelf layers;
///   - a `stable` component whose notification travels DOWN the stack,
///     bounces at the bottom, and notifies every layer on its way UP;
///   - the subscription model: layers only see the events they ask for.
///
///   ./examples/ensemble_stack
#include <cstdio>
#include <memory>

#include "kernel/layers.hpp"

using namespace gcs;
using namespace gcs::kernel;

namespace {
Bytes bytes_of(const std::string& s) { return Bytes(s.begin(), s.end()); }
}  // namespace

int main() {
  std::printf("== a Fig 5-shaped stack on the composition kernel ==\n\n");

  // Assemble, bottom to top (compare the paper's figure):
  //   Network            <- bottom hook
  //   Reliable FIFO      <- FifoLayer
  //   Stable             <- BufferLayer + StableLayer
  //   Trace ("interface")<- TraceLayer
  ProtocolStack stack;
  auto fifo = std::make_unique<FifoLayer>();
  fifo->set_self_index(0);
  auto* fifo_ptr = fifo.get();
  stack.push_layer(std::move(fifo));
  auto buffer = std::make_unique<BufferLayer>();
  auto* buffer_ptr = buffer.get();
  stack.push_layer(std::move(buffer));
  auto stable = std::make_unique<StableLayer>();
  stable->set_self_index(2);
  stack.push_layer(std::move(stable));
  auto trace = std::make_unique<TraceLayer>("interface");
  auto* trace_ptr = trace.get();
  stack.push_layer(std::move(trace));

  std::printf("stack (bottom -> top):");
  for (const auto& name : stack.describe()) std::printf("  [%s]", name.c_str());
  std::printf("\n\n");

  int wire_sends = 0;
  stack.set_bottom_hook([&](Event& e) {
    if (e.kind == kSendEvent) {
      ++wire_sends;
      std::printf("  wire: send #%lld to p%d\n",
                  static_cast<long long>(e.attrs.at("fifo.seq")), e.peer);
    } else if (e.kind == kStabilityEvent) {
      std::printf("  wire: stability notification bounced at the bottom\n");
      e.direction = Direction::kUp;
    }
  });
  stack.set_top_hook([&](Event& e) {
    if (e.kind == kDeliverEvent) {
      std::printf("  app: deliver from p%d (fifo.seq=%lld)\n", e.peer,
                  static_cast<long long>(e.attrs.at("fifo.seq")));
    } else if (e.kind == kStabilityEvent) {
      std::printf("  app: observed stability notification travelling up\n");
    }
  });

  std::printf("-- the application sends three messages down the stack\n");
  for (int i = 0; i < 3; ++i) stack.inject(Event::send_to(1, bytes_of("m" + std::to_string(i))));
  std::printf("   buffer now holds %zu unstable messages\n\n", buffer_ptr->buffered());

  std::printf("-- up-traffic arrives out of order: seq 1 before seq 0\n");
  for (std::int64_t seq : {1, 0}) {
    Event e = Event::deliver_from(2, bytes_of("r" + std::to_string(seq)));
    e.attrs["fifo.seq"] = seq;
    stack.inject(std::move(e));
  }
  std::printf("   (the fifo layer held seq 1 back until seq 0 arrived)\n\n");

  std::printf("-- probing the stable layer: the notification goes down, bounces,\n");
  std::printf("   and prunes the buffer on its way back up (paper §2.2)\n");
  Event tick;
  tick.kind = kProbeTick;
  tick.direction = Direction::kDown;
  stack.inject(std::move(tick));
  std::printf("   buffer after pruning: %zu messages\n", buffer_ptr->buffered());

  std::printf("\nevents routed: %llu; wire sends: %d; trace entries: %zu\n",
              static_cast<unsigned long long>(stack.events_routed()), wire_sends,
              trace_ptr->entries().size());
  std::printf("(held back right now: %zu)\n", fifo_ptr->held_back());
  std::printf("done.\n");
  return 0;
}
