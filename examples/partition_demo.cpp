/// \file partition_demo.cpp
/// Primary-partition membership in action (paper §1.1): a network split
/// leaves the majority side running; the minority blocks (it never forms a
/// rival view), is eventually excluded, and rejoins after the heal.
///
///   ./examples/partition_demo
#include <cstdio>
#include <string>

#include "core/stack.hpp"

using namespace gcs;

namespace {
Bytes bytes_of(const std::string& s) { return Bytes(s.begin(), s.end()); }
}  // namespace

int main() {
  std::printf("== primary-partition demo ==\n\n");
  World::Config config;
  config.n = 5;
  config.seed = 4242;
  config.stack.monitoring.exclusion_timeout = msec(600);
  World world(config);

  std::vector<std::size_t> delivered(5, 0);
  for (ProcessId p = 0; p < 5; ++p) {
    world.stack(p).on_adeliver(
        [&delivered, p](const MsgId&, const Bytes&) { ++delivered[static_cast<std::size_t>(p)]; });
  }
  world.stack(0).on_view([&](const View& v) {
    std::string members;
    for (ProcessId p : v.members) members += " p" + std::to_string(p);
    std::printf("[%7.1fms] majority side installs view #%llu {%s }\n",
                world.engine().now() / 1000.0, static_cast<unsigned long long>(v.id),
                members.c_str());
  });

  world.found_group_all();
  std::printf("-- group {p0..p4} founded; sending 5 messages\n");
  for (int i = 0; i < 5; ++i) world.stack(static_cast<ProcessId>(i)).abcast(bytes_of("pre"));
  world.run_for(msec(100));
  std::printf("   delivered so far: p0=%zu p3=%zu\n", delivered[0], delivered[3]);

  std::printf("\n-- network partitions: {p0,p1,p2} | {p3,p4}\n");
  world.network().partition({{0, 1, 2}, {3, 4}});
  world.stack(0).abcast(bytes_of("majority-side message"));
  world.stack(3).abcast(bytes_of("minority-side message (will stall)"));
  world.run_for(sec(2));
  std::printf("   majority delivered: p0=%zu (progressing)\n", delivered[0]);
  std::printf("   minority delivered: p3=%zu (blocked, NOT diverged)\n", delivered[3]);
  std::printf("   minority's view is still the old one: %zu members (no rival view)\n",
              world.stack(3).view().members.size());
  std::printf("   majority excluded the unreachable minority: view has %zu members\n",
              world.stack(0).view().members.size());

  std::printf("\n-- partition heals; p3 and p4 rejoin\n");
  world.network().heal();
  world.run_for(msec(200));
  world.stack(3).membership().join(0);
  world.run_for(msec(300));
  world.stack(4).membership().join(0);
  world.run_for(msec(500));
  std::printf("   final view at p0: %zu members; p3 member: %s; p4 member: %s\n",
              world.stack(0).view().members.size(),
              world.stack(3).membership().is_member() ? "yes" : "no",
              world.stack(4).membership().is_member() ? "yes" : "no");
  world.stack(3).abcast(bytes_of("back in business"));
  world.run_for(msec(200));
  std::printf("   post-rejoin delivery counts: p0=%zu p3=%zu p4=%zu\n", delivered[0],
              delivered[3], delivered[4]);
  std::printf("\ndone.\n");
  return 0;
}
