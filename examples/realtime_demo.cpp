/// \file realtime_demo.cpp
/// The same Fig 9 stack running over REAL UDP loopback sockets in wall
/// time — no simulated network. Four group members (one socket each) order
/// messages, admit a joiner, and survive a crash, all inside one OS
/// process driven by the single-threaded real-time runner.
///
///   ./examples/realtime_demo
#include <chrono>
#include <cstdio>
#include <memory>

#include "core/stack.hpp"
#include "runtime/realtime_runner.hpp"
#include "runtime/udp_transport.hpp"

using namespace gcs;
using namespace gcs::rt;

namespace {
Bytes bytes_of(const std::string& s) { return Bytes(s.begin(), s.end()); }
std::string str_of(const Bytes& b) { return std::string(b.begin(), b.end()); }
}  // namespace

int main() {
  std::printf("== real-time demo: the stack over UDP loopback ==\n\n");
  constexpr int kN = 5;
  constexpr std::uint16_t kBasePort = 39200;

  sim::Engine engine;
  RealTimeRunner runner(engine);
  std::vector<std::unique_ptr<sim::Context>> transport_ctxs;
  std::vector<std::unique_ptr<GcsStack>> stacks;
  std::vector<std::size_t> delivered(kN, 0);

  StackConfig sc;
  sc.fd.heartbeat_interval = msec(5);
  sc.consensus_suspect_timeout = msec(100);
  sc.monitoring.exclusion_timeout = msec(600);

  for (ProcessId p = 0; p < kN; ++p) {
    transport_ctxs.push_back(std::make_unique<sim::Context>(
        p, engine, Rng(static_cast<std::uint64_t>(p) + 1), Logger(),
        std::make_shared<Metrics>()));
    UdpTransport::Config ucfg;
    ucfg.base_port = kBasePort;
    auto transport = std::make_unique<UdpTransport>(*transport_ctxs.back(), kN, ucfg);
    runner.add_pollable([t = transport.get()] { return t->poll(); });
    stacks.push_back(std::make_unique<GcsStack>(engine, std::move(transport), p,
                                                static_cast<std::uint64_t>(p) + 7, sc));
    stacks.back()->on_adeliver([&delivered, p](const MsgId& id, const Bytes& b) {
      ++delivered[static_cast<std::size_t>(p)];
      if (p == 0) {
        std::printf("   p0 adeliver %-6s \"%s\"\n", to_string(id).c_str(),
                    str_of(b).c_str());
      }
    });
  }
  stacks[0]->on_view([&](const View& v) {
    std::string members;
    for (ProcessId p : v.members) members += " p" + std::to_string(p);
    std::printf("   p0 new_view #%llu {%s }\n", static_cast<unsigned long long>(v.id),
                members.c_str());
  });

  std::printf("-- founding group {p0..p3} on UDP ports %u..%u\n", kBasePort, kBasePort + 3);
  for (ProcessId p = 0; p < 4; ++p) stacks[static_cast<std::size_t>(p)]->init_view({0, 1, 2, 3});

  std::printf("-- atomic broadcast over real sockets\n");
  stacks[1]->abcast(bytes_of("hello from a real datagram"));
  stacks[2]->abcast(bytes_of("ordered against it"));
  runner.run_until(std::chrono::seconds(5), [&] { return delivered[0] >= 2; });

  std::printf("-- p4 joins in wall time\n");
  stacks[4]->join(1);
  runner.run_until(std::chrono::seconds(5), [&] { return stacks[4]->membership().is_member(); });
  std::printf("   p4 member: %s\n", stacks[4]->membership().is_member() ? "yes" : "no");

  std::printf("-- crashing p3 (socket goes silent); monitoring excludes it\n");
  stacks[3]->crash();
  stacks[0]->abcast(bytes_of("still running"));
  runner.run_until(std::chrono::seconds(8),
                   [&] { return !stacks[0]->view().contains(3) && delivered[0] >= 3; });

  std::printf("\nfinal view at p0: %zu members; p0 delivered %zu messages\n",
              stacks[0]->view().members.size(), delivered[0]);
  std::printf("done.\n");
  return 0;
}
