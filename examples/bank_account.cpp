/// \file bank_account.cpp
/// The paper's §4.2 motivating example: a replicated bank account where
/// deposits commute (generic broadcast fast path, no consensus) and
/// withdrawals must be totally ordered (consensus only when needed).
///
/// Compares the same workload running over (a) plain atomic broadcast —
/// what a traditional stack would force — and (b) generic broadcast with
/// the deposit/withdrawal conflict relation.
///
///   ./examples/bank_account
#include <cstdio>

#include "replication/active.hpp"
#include "replication/state_machine.hpp"

using namespace gcs;
using namespace gcs::replication;

namespace {

struct RunResult {
  std::int64_t final_balance = 0;
  std::int64_t consensus_instances = 0;
  std::uint64_t fast_deliveries = 0;
  double mean_latency_ms = 0;
};

RunResult run(bool use_generic, int deposits, int withdrawals) {
  World::Config config;
  config.n = 4;
  config.seed = 7;
  config.stack.conflict = ConflictRelation::rbcast_abcast();
  World world(config);
  std::vector<std::unique_ptr<GenericActiveReplication>> replicas;
  for (ProcessId p = 0; p < config.n; ++p) {
    replicas.push_back(std::make_unique<GenericActiveReplication>(
        world.stack(p), std::make_unique<BankAccount>()));
  }
  world.found_group_all();

  Histogram latencies;
  int completed = 0;
  const int total = deposits + withdrawals;
  // If generic broadcast is off, everything is a conflicting command:
  // exactly what a stack without generic broadcast forces (§4.2).
  for (int i = 0; i < total; ++i) {
    const bool is_deposit = i % (total / std::max(1, withdrawals)) != 0 || withdrawals == 0;
    const MsgClass cls = use_generic && is_deposit ? kRbcastClass : kAbcastClass;
    const Bytes cmd =
        is_deposit ? BankAccount::make_deposit(10) : BankAccount::make_withdraw(5);
    const TimePoint sent = world.engine().now();
    replicas[static_cast<std::size_t>(i % config.n)]->submit(
        cls, cmd, [&, sent](const Bytes&) {
          latencies.add(world.engine().now() - sent);
          ++completed;
        });
    world.run_for(msec(2));
  }
  // Drain.
  for (int spin = 0; spin < 1000 && completed < total; ++spin) world.run_for(msec(10));

  RunResult r;
  r.final_balance = static_cast<BankAccount&>(replicas[0]->state()).balance();
  r.consensus_instances = world.stack(0).consensus().instances_decided();
  r.fast_deliveries = world.stack(0).generic_broadcast().fast_deliveries();
  r.mean_latency_ms = latencies.mean() / 1000.0;
  return r;
}

}  // namespace

int main() {
  std::printf("== replicated bank account (paper §4.2) ==\n\n");
  const int deposits = 36, withdrawals = 4;
  std::printf("workload: %d deposits (commutative) + %d withdrawals, 4 replicas\n\n",
              deposits, withdrawals);

  const RunResult abcast_only = run(/*use_generic=*/false, deposits, withdrawals);
  const RunResult generic = run(/*use_generic=*/true, deposits, withdrawals);

  std::printf("%-28s %18s %18s\n", "", "abcast for all", "generic broadcast");
  std::printf("%-28s %18lld %18lld\n", "final balance", (long long)abcast_only.final_balance,
              (long long)generic.final_balance);
  std::printf("%-28s %18lld %18lld\n", "consensus instances",
              (long long)abcast_only.consensus_instances,
              (long long)generic.consensus_instances);
  std::printf("%-28s %18llu %18llu\n", "fast-path deliveries",
              (unsigned long long)abcast_only.fast_deliveries,
              (unsigned long long)generic.fast_deliveries);
  std::printf("%-28s %17.2fm %17.2fm\n", "mean command latency (ms)",
              abcast_only.mean_latency_ms, generic.mean_latency_ms);
  std::printf("\nSame final state, but the deposits rode the fast path: the\n"
              "generic-broadcast run invoked consensus only for the withdrawals.\n");
  return 0;
}
