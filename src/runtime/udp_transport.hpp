/// \file udp_transport.hpp
/// Real UDP datagram transport over the loopback interface.
///
/// Shows that the protocol components are not simulation-bound: the same
/// stack (Fig 9) runs unmodified over OS sockets. Each process binds one
/// non-blocking UDP socket at base_port + id; the source port of an
/// incoming datagram identifies the sender. Datagrams may be lost (UDP),
/// which the reliable channel above already handles.
///
/// Single-threaded by design: a RealTimeRunner polls poll() from its event
/// loop, so the protocol components keep their no-locks discipline.
#pragma once

#include <string>

#include "sim/context.hpp"
#include "transport/transport.hpp"

namespace gcs::rt {

class UdpTransport final : public Transport {
 public:
  struct Config {
    std::uint16_t base_port = 38000;
    std::string host = "127.0.0.1";
  };

  /// Binds base_port + ctx.self(). Throws std::runtime_error on failure.
  UdpTransport(sim::Context& ctx, int universe_size, Config config);
  ~UdpTransport() override;

  UdpTransport(const UdpTransport&) = delete;
  UdpTransport& operator=(const UdpTransport&) = delete;

  ProcessId self() const override { return self_; }
  int universe_size() const override { return universe_size_; }
  void u_send(ProcessId to, Tag tag, const Bytes& payload) override;
  void subscribe(Tag tag, Handler handler) override;

  /// Drain pending datagrams and dispatch them. Returns how many were
  /// processed. Called by the real-time runner's loop.
  int poll();

 private:
  ProcessId self_;
  int universe_size_;
  Config config_;
  int fd_ = -1;
  std::vector<Handler> handlers_;
  std::shared_ptr<const bool> alive_;
};

}  // namespace gcs::rt
