#include "runtime/udp_transport.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>

namespace gcs::rt {

namespace {
sockaddr_in addr_of(const std::string& host, std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    throw std::runtime_error("UdpTransport: bad host " + host);
  }
  return addr;
}
}  // namespace

UdpTransport::UdpTransport(sim::Context& ctx, int universe_size, Config config)
    : self_(ctx.self()), universe_size_(universe_size), config_(config),
      handlers_(static_cast<std::size_t>(Tag::kMax)), alive_(ctx.alive_flag()) {
  fd_ = ::socket(AF_INET, SOCK_DGRAM, 0);
  if (fd_ < 0) throw std::runtime_error("UdpTransport: socket() failed");
  const int flags = ::fcntl(fd_, F_GETFL, 0);
  ::fcntl(fd_, F_SETFL, flags | O_NONBLOCK);
  const sockaddr_in addr =
      addr_of(config_.host, static_cast<std::uint16_t>(config_.base_port + self_));
  if (::bind(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd_);
    fd_ = -1;
    throw std::runtime_error("UdpTransport: bind failed for process " +
                             std::to_string(self_) + ": " + std::strerror(errno));
  }
}

UdpTransport::~UdpTransport() {
  if (fd_ >= 0) ::close(fd_);
}

void UdpTransport::u_send(ProcessId to, Tag tag, const Bytes& payload) {
  if (!*alive_ || to < 0 || to >= universe_size_) return;
  Bytes datagram;
  datagram.reserve(payload.size() + 1);
  datagram.push_back(static_cast<std::uint8_t>(tag));
  datagram.insert(datagram.end(), payload.begin(), payload.end());
  const sockaddr_in addr =
      addr_of(config_.host, static_cast<std::uint16_t>(config_.base_port + to));
  // Fire and forget: UDP send failures are indistinguishable from loss and
  // the reliable channel above retransmits anyway.
  (void)::sendto(fd_, datagram.data(), datagram.size(), 0,
                 reinterpret_cast<const sockaddr*>(&addr), sizeof(addr));
}

void UdpTransport::subscribe(Tag tag, Handler handler) {
  handlers_[static_cast<std::size_t>(tag)] = std::move(handler);
}

int UdpTransport::poll() {
  if (fd_ < 0 || !*alive_) return 0;
  int processed = 0;
  std::uint8_t buf[65536];
  while (true) {
    sockaddr_in from_addr{};
    socklen_t from_len = sizeof(from_addr);
    const ssize_t n = ::recvfrom(fd_, buf, sizeof(buf), 0,
                                 reinterpret_cast<sockaddr*>(&from_addr), &from_len);
    if (n <= 0) break;  // EWOULDBLOCK or error: drained
    const int from_port = ntohs(from_addr.sin_port);
    const ProcessId from = static_cast<ProcessId>(from_port - config_.base_port);
    if (from < 0 || from >= universe_size_) continue;
    const auto tag_idx = static_cast<std::size_t>(buf[0]);
    if (tag_idx >= handlers_.size() || !handlers_[tag_idx]) continue;
    // View straight into the receive buffer; handlers copy what they keep.
    handlers_[tag_idx](from, BytesView(buf + 1, static_cast<std::size_t>(n) - 1));
    ++processed;
  }
  return processed;
}

}  // namespace gcs::rt
