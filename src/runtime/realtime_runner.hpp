/// \file realtime_runner.hpp
/// Wall-clock driver: maps the event engine's virtual time onto real time
/// and interleaves socket polling — the bridge that runs the simulation-
/// grade protocol stack against real transports.
///
/// Usage:
///   sim::Engine engine;
///   RealTimeRunner runner(engine);
///   auto transport = std::make_unique<UdpTransport>(ctx, n, udp_config);
///   runner.add_pollable([t = transport.get()] { return t->poll(); });
///   GcsStack stack(engine, std::move(transport), self, seed);
///   ...
///   runner.run_for(std::chrono::seconds(2));
///
/// The loop stays single-threaded: timers fire when their virtual deadline
/// maps to a past wall instant, then sockets are drained, then the loop
/// sleeps briefly. Protocol components are unaware of the difference.
#pragma once

#include <chrono>
#include <functional>
#include <vector>

#include "sim/engine.hpp"

namespace gcs::rt {

class RealTimeRunner {
 public:
  explicit RealTimeRunner(sim::Engine& engine) : engine_(engine) {}

  /// Register a poll function (e.g. UdpTransport::poll); returns how many
  /// items it processed (used to skip the idle sleep under load).
  void add_pollable(std::function<int()> poll) { pollables_.push_back(std::move(poll)); }

  /// Run the loop for a real-time duration.
  void run_for(std::chrono::milliseconds wall);

  /// Run until \p predicate holds or \p wall elapsed; returns predicate().
  bool run_until(std::chrono::milliseconds wall, const std::function<bool()>& predicate);

 private:
  void step_once(TimePoint virtual_deadline);

  sim::Engine& engine_;
  std::vector<std::function<int()>> pollables_;
};

}  // namespace gcs::rt
