#include "runtime/realtime_runner.hpp"

#include <thread>

namespace gcs::rt {

namespace {
TimePoint now_us(std::chrono::steady_clock::time_point origin) {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - origin)
      .count();
}
}  // namespace

void RealTimeRunner::step_once(TimePoint virtual_deadline) {
  engine_.run_until(virtual_deadline);
  int processed = 0;
  for (auto& poll : pollables_) processed += poll();
  if (processed == 0) {
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
}

void RealTimeRunner::run_for(std::chrono::milliseconds wall) {
  run_until(wall, [] { return false; });
}

bool RealTimeRunner::run_until(std::chrono::milliseconds wall,
                               const std::function<bool()>& predicate) {
  // The engine's virtual clock may already be past zero (previous runs);
  // anchor wall time so virtual time continues monotonically from now().
  const auto origin = std::chrono::steady_clock::now();
  const TimePoint base = engine_.now();
  const TimePoint budget = std::chrono::duration_cast<std::chrono::microseconds>(wall).count();
  while (now_us(origin) < budget) {
    if (predicate()) return true;
    step_once(base + now_us(origin));
  }
  return predicate();
}

}  // namespace gcs::rt
