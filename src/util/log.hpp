/// \file log.hpp
/// Lightweight leveled logger.
///
/// Each simulated process gets a Logger carrying its id; log lines are
/// prefixed with virtual time and process id so interleaved traces from a
/// simulation read chronologically. Logging is off by default (benchmarks
/// and tests stay quiet); enable with Logger::set_global_level.
///
/// Cost contract: a disabled log call is one atomic load + compare. Hot
/// layers guard message construction behind enabled(level), so no string is
/// built when the level is off. The virtual-time source is shared between a
/// logger and all its sub() derivations (one shared_ptr, not a
/// std::function copy per component).
#pragma once

#include <cstdio>
#include <functional>
#include <memory>
#include <string>

#include "util/types.hpp"

namespace gcs {

enum class LogLevel : int { kTrace = 0, kDebug = 1, kInfo = 2, kWarn = 3, kError = 4, kOff = 5 };

/// Per-process logger; cheap to copy (a string + a shared_ptr).
class Logger {
 public:
  using NowFn = std::function<TimePoint()>;

  Logger() = default;
  /// \param who      short label, e.g. "p3" or "p3/abcast"
  /// \param now_fn   returns the current virtual time for prefixes
  Logger(std::string who, NowFn now_fn)
      : who_(std::move(who)),
        now_fn_(std::make_shared<const NowFn>(std::move(now_fn))) {}

  /// Derive a logger for a sub-component, e.g. base.sub("consensus"). The
  /// now-source is shared, not copied.
  Logger sub(const std::string& component) const {
    return Logger(who_.empty() ? component : who_ + "/" + component, now_fn_);
  }

  void trace(const std::string& msg) const { log(LogLevel::kTrace, msg); }
  void debug(const std::string& msg) const { log(LogLevel::kDebug, msg); }
  void info(const std::string& msg) const { log(LogLevel::kInfo, msg); }
  void warn(const std::string& msg) const { log(LogLevel::kWarn, msg); }
  void error(const std::string& msg) const { log(LogLevel::kError, msg); }

  /// Call-site guard: `if (log.enabled(LogLevel::kDebug)) log.debug(...)`
  /// skips message construction entirely when the level is off.
  bool enabled(LogLevel level) const { return level >= global_level(); }

  /// Process-wide minimum level. Default kOff.
  static void set_global_level(LogLevel level);
  static LogLevel global_level();

 private:
  Logger(std::string who, std::shared_ptr<const NowFn> now_fn)
      : who_(std::move(who)), now_fn_(std::move(now_fn)) {}

  void log(LogLevel level, const std::string& msg) const;

  std::string who_;
  std::shared_ptr<const NowFn> now_fn_;
};

}  // namespace gcs
