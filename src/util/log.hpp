/// \file log.hpp
/// Lightweight leveled logger.
///
/// Each simulated process gets a Logger carrying its id; log lines are
/// prefixed with virtual time and process id so interleaved traces from a
/// simulation read chronologically. Logging is off by default (benchmarks
/// and tests stay quiet); enable with Logger::set_global_level.
#pragma once

#include <cstdio>
#include <functional>
#include <string>

#include "util/types.hpp"

namespace gcs {

enum class LogLevel : int { kTrace = 0, kDebug = 1, kInfo = 2, kWarn = 3, kError = 4, kOff = 5 };

/// Per-process logger; cheap to copy.
class Logger {
 public:
  Logger() = default;
  /// \param who      short label, e.g. "p3" or "p3/abcast"
  /// \param now_fn   returns the current virtual time for prefixes
  Logger(std::string who, std::function<TimePoint()> now_fn)
      : who_(std::move(who)), now_fn_(std::move(now_fn)) {}

  /// Derive a logger for a sub-component, e.g. base.sub("consensus").
  Logger sub(const std::string& component) const {
    return Logger(who_.empty() ? component : who_ + "/" + component, now_fn_);
  }

  void trace(const std::string& msg) const { log(LogLevel::kTrace, msg); }
  void debug(const std::string& msg) const { log(LogLevel::kDebug, msg); }
  void info(const std::string& msg) const { log(LogLevel::kInfo, msg); }
  void warn(const std::string& msg) const { log(LogLevel::kWarn, msg); }
  void error(const std::string& msg) const { log(LogLevel::kError, msg); }

  bool enabled(LogLevel level) const { return level >= global_level(); }

  /// Process-wide minimum level. Default kOff.
  static void set_global_level(LogLevel level);
  static LogLevel global_level();

 private:
  void log(LogLevel level, const std::string& msg) const;

  std::string who_;
  std::function<TimePoint()> now_fn_;
};

}  // namespace gcs
