#include "util/types.hpp"

namespace gcs {

std::string to_string(const MsgId& id) {
  return std::to_string(id.sender) + ":" + std::to_string(id.seq);
}

const Bytes& Payload::empty_bytes() {
  static const Bytes kEmpty;
  return kEmpty;
}

}  // namespace gcs
