/// \file rng.hpp
/// Deterministic pseudo-random number generator (splitmix64 / xoshiro256**).
///
/// The simulator must be bit-for-bit reproducible across platforms and
/// standard-library versions, so we do not use std::mt19937 or
/// std::uniform_*_distribution (whose outputs are not pinned by the
/// standard). Everything that needs randomness takes an explicit Rng.
#pragma once

#include <cstdint>

namespace gcs {

/// xoshiro256** seeded via splitmix64. Fast, high quality, reproducible.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0xda3e39cb94b95bdbULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    // splitmix64 to spread a small seed over the full state.
    auto next = [&seed]() {
      seed += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = seed;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      return z ^ (z >> 31);
    };
    for (auto& word : state_) word = next();
  }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform in [0, bound). bound == 0 returns 0.
  std::uint64_t next_below(std::uint64_t bound) {
    if (bound == 0) return 0;
    // Debiased multiply-shift (Lemire). Slight modulo bias would be fine for
    // a simulator, but this is just as cheap.
    const std::uint64_t threshold = (0 - bound) % bound;
    while (true) {
      const std::uint64_t r = next_u64();
      if (r >= threshold) return r % bound;
    }
  }

  /// Uniform signed integer in [lo, hi] inclusive.
  std::int64_t next_range(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(
                    next_below(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  /// Uniform double in [0, 1).
  double next_double() { return static_cast<double>(next_u64() >> 11) * 0x1.0p-53; }

  /// Bernoulli trial.
  bool chance(double p) { return next_double() < p; }

  /// Fork an independent stream (for per-process RNGs derived from one seed).
  Rng split() { return Rng(next_u64()); }

  /// Independent stream derived from (seed, key) WITHOUT consuming any
  /// state: the same pair always yields the same stream, no matter how many
  /// other streams were drawn before it. Scenario generation keys one
  /// stream per concern (timing, traffic, faults), so deleting a step from
  /// a fault plan never perturbs the randomness of the surviving steps —
  /// the property the shrinker depends on.
  static Rng stream(std::uint64_t seed, std::uint64_t key) {
    // splitmix64 finalizer over the key, folded into the seed; Rng's own
    // reseed() spreads the combined value over the full state.
    std::uint64_t z = key + 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return Rng(seed ^ (z ^ (z >> 31)));
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
  std::uint64_t state_[4] = {};
};

}  // namespace gcs
