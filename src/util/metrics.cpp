#include "util/metrics.hpp"

namespace gcs {

void Histogram::sort() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

Duration Histogram::min() const {
  if (samples_.empty()) return 0;
  sort();
  return samples_.front();
}

Duration Histogram::max() const {
  if (samples_.empty()) return 0;
  sort();
  return samples_.back();
}

double Histogram::mean() const {
  if (samples_.empty()) return 0.0;
  double sum = 0.0;
  for (Duration s : samples_) sum += static_cast<double>(s);
  return sum / static_cast<double>(samples_.size());
}

Duration Histogram::percentile(double q) const {
  if (samples_.empty()) return 0;
  sort();
  if (q <= 0) return samples_.front();
  if (q >= 100) return samples_.back();
  const auto rank = static_cast<std::size_t>(q / 100.0 * static_cast<double>(samples_.size() - 1) + 0.5);
  return samples_[std::min(rank, samples_.size() - 1)];
}

}  // namespace gcs
