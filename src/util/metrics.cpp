#include "util/metrics.hpp"

#include <cassert>
#include <cmath>
#include <mutex>

namespace gcs {

namespace {

struct MetricRegistry {
  // std::less<> enables string_view lookups without constructing a string.
  std::map<std::string, MetricId, std::less<>> ids;
  std::vector<std::string_view> names;  // views into the map's stable keys
  // The registry is process-global while Metrics registries are per-run;
  // the schedule explorer runs one simulation per worker thread, so the
  // cold interning path must be safe under concurrent construction.
  std::mutex mu;
};

MetricRegistry& registry() {
  static MetricRegistry r;
  return r;
}

}  // namespace

MetricId metric_id(std::string_view name) {
  MetricRegistry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  if (auto it = r.ids.find(name); it != r.ids.end()) return it->second;
  assert(r.names.size() < kNoMetric);
  const auto id = static_cast<MetricId>(r.names.size());
  auto [it, inserted] = r.ids.emplace(std::string(name), id);
  (void)inserted;
  r.names.push_back(it->first);
  return id;
}

MetricId find_metric(std::string_view name) {
  MetricRegistry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  auto it = r.ids.find(name);
  return it == r.ids.end() ? kNoMetric : it->second;
}

std::string_view metric_name(MetricId id) {
  MetricRegistry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  return id < r.names.size() ? r.names[id] : std::string_view{};
}

void Histogram::sort() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

void Histogram::decimate() {
  // Uniform thinning: keep every other retained sample and double the keep
  // stride, so memory stays O(cap) while the retained set still covers the
  // whole run. (If a query sorted samples_ in the meantime, this thins the
  // sorted array — equally uniform, still deterministic per run.)
  std::size_t w = 0;
  for (std::size_t r = 0; r < samples_.size(); r += 2, ++w) samples_[w] = samples_[r];
  samples_.resize(w);
  stride_ *= 2;
}

Duration Histogram::percentile(double q) const {
  if (samples_.empty()) return min();
  sort();
  if (q <= 0) return min();   // exact even when decimated
  if (q >= 100) return max();
  // Nearest-rank: the smallest sample such that at least q% of samples are
  // <= it. rank is 1-based; the old formula interpolated against n-1 and
  // could land one slot low on small sample counts.
  const auto rank = static_cast<std::size_t>(
      std::ceil(q / 100.0 * static_cast<double>(samples_.size())));
  return samples_[std::min(rank == 0 ? 0 : rank - 1, samples_.size() - 1)];
}

std::map<std::string, std::int64_t> Metrics::counters() const {
  std::map<std::string, std::int64_t> out;
  for (MetricId id = 0; id < counters_.size(); ++id) {
    if (counters_[id] != 0) out.emplace(metric_name(id), counters_[id]);
  }
  return out;
}

std::map<std::string, const Histogram*> Metrics::histograms() const {
  std::map<std::string, const Histogram*> out;
  for (MetricId id = 0; id < histograms_.size(); ++id) {
    if (!histograms_[id].empty()) out.emplace(metric_name(id), &histograms_[id]);
  }
  return out;
}

}  // namespace gcs
