/// \file codec.hpp
/// Minimal, dependency-free binary serialization.
///
/// Every protocol message in nggcs is encoded with Encoder and decoded with
/// Decoder. Integers use LEB128-style varints so small values (sequence
/// numbers, process ids) stay compact; strings and blobs are length-prefixed.
/// Decoder is hardened against truncated or corrupt input: all reads are
/// bounds-checked and report failure through ok() rather than UB.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "util/types.hpp"

namespace gcs {

/// Append-only binary encoder.
///
/// By default the encoder owns its output buffer (`take()` moves it out).
/// Constructed over an external sink, it appends to that buffer instead —
/// the sink is typically a pooled or scratch Bytes reused across messages,
/// so steady-state encoding allocates nothing once the buffer has grown to
/// its working size. External-sink encoders must not call take().
class Encoder {
 public:
  Encoder() = default;
  /// Append into \p sink (not cleared; caller controls reuse/lifetime).
  explicit Encoder(Bytes& sink) : out_(&sink) {}

  /// Unsigned varint (LEB128).
  void put_u64(std::uint64_t v);
  /// Signed varint (zigzag + LEB128).
  void put_i64(std::int64_t v);
  void put_u32(std::uint32_t v) { put_u64(v); }
  void put_i32(std::int32_t v) { put_i64(v); }
  void put_bool(bool v) { put_u64(v ? 1 : 0); }
  void put_byte(std::uint8_t v) { out_->push_back(v); }

  /// Length-prefixed string.
  void put_string(std::string_view s);
  /// Length-prefixed byte blob.
  void put_bytes(BytesView b);

  void put_msgid(const MsgId& id) {
    put_i32(id.sender);
    put_u64(id.seq);
  }

  /// Encode a vector given a per-element encode function.
  template <typename T, typename Fn>
  void put_vector(const std::vector<T>& v, Fn&& encode_elem) {
    put_u64(v.size());
    for (const auto& e : v) encode_elem(*this, e);
  }

  /// Take ownership of the encoded bytes (internal-buffer mode only).
  Bytes take() { return std::move(own_); }
  const Bytes& bytes() const { return *out_; }
  std::size_t size() const { return out_->size(); }

 private:
  Bytes own_;
  Bytes* out_ = &own_;
};

/// Bounds-checked binary decoder over a byte span.
///
/// On malformed input, the failed flag is set and all subsequent reads
/// return zero values; callers check ok() once at the end.
class Decoder {
 public:
  explicit Decoder(const Bytes& buf) : data_(buf.data()), size_(buf.size()) {}
  explicit Decoder(BytesView view) : data_(view.data()), size_(view.size()) {}
  Decoder(const std::uint8_t* data, std::size_t size) : data_(data), size_(size) {}

  std::uint64_t get_u64();
  std::int64_t get_i64();
  std::uint32_t get_u32() { return static_cast<std::uint32_t>(get_u64()); }
  std::int32_t get_i32() { return static_cast<std::int32_t>(get_i64()); }
  bool get_bool() { return get_u64() != 0; }
  std::uint8_t get_byte();

  std::string get_string();
  Bytes get_bytes();
  /// Length-prefixed blob as a bounds-checked view into the decoder's
  /// underlying buffer — no copy. The view is valid only while that buffer
  /// is; callers that store it must materialize with to_bytes() first
  /// (views handed onward from a datagram die when the handler returns).
  /// On truncation, fails and returns an empty view.
  BytesView get_view();

  MsgId get_msgid() {
    MsgId id;
    id.sender = get_i32();
    id.seq = get_u64();
    return id;
  }

  /// Decode a vector given a per-element decode function.
  template <typename T, typename Fn>
  std::vector<T> get_vector(Fn&& decode_elem) {
    std::uint64_t n = get_u64();
    std::vector<T> out;
    // Guard against hostile lengths: each element needs at least one byte.
    if (n > remaining()) {
      fail();
      return out;
    }
    out.reserve(static_cast<std::size_t>(n));
    for (std::uint64_t i = 0; i < n && ok(); ++i) out.push_back(decode_elem(*this));
    return out;
  }

  bool ok() const { return !failed_; }
  bool at_end() const { return pos_ == size_; }
  std::size_t remaining() const { return size_ - pos_; }

  /// Mark the input malformed. For semantic validation above the codec
  /// layer (unknown enum tag, hostile count) so callers keep the single
  /// check-ok()-once-at-the-end discipline.
  void invalidate() { fail(); }

 private:
  void fail() { failed_ = true; }

  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
  bool failed_ = false;
};

}  // namespace gcs
