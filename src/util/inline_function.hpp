/// \file inline_function.hpp
/// UniqueFunction: a move-only `void()` callable with inline storage.
///
/// std::function heap-allocates any capture larger than ~2 words, which
/// makes every scheduled timer an allocation. UniqueFunction keeps captures
/// up to \p Capacity bytes inline (callables larger than that fall back to
/// a single heap box), so pooled timer nodes can recycle callback storage
/// with zero steady-state allocations.
#pragma once

#include <cassert>
#include <cstddef>
#include <memory>
#include <type_traits>
#include <utility>

namespace gcs::util {

template <std::size_t Capacity>
class UniqueFunction {
 public:
  UniqueFunction() = default;

  template <typename F, typename D = std::decay_t<F>,
            typename = std::enable_if_t<!std::is_same_v<D, UniqueFunction> &&
                                        std::is_invocable_r_v<void, D&>>>
  UniqueFunction(F&& fn) {  // NOLINT: implicit by design, mirrors std::function
    if constexpr (fits_inline<D>()) {
      ::new (static_cast<void*>(buf_)) D(std::forward<F>(fn));
      ops_ = &Vtable<D>::ops;
    } else {
      // Too big for the inline buffer: box it behind one allocation.
      struct Box {
        std::unique_ptr<D> fn;
        void operator()() { (*fn)(); }
      };
      static_assert(fits_inline<Box>());
      ::new (static_cast<void*>(buf_)) Box{std::make_unique<D>(std::forward<F>(fn))};
      ops_ = &Vtable<Box>::ops;
    }
  }

  UniqueFunction(UniqueFunction&& other) noexcept { move_from(other); }
  UniqueFunction& operator=(UniqueFunction&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }
  UniqueFunction(const UniqueFunction&) = delete;
  UniqueFunction& operator=(const UniqueFunction&) = delete;
  ~UniqueFunction() { reset(); }

  explicit operator bool() const { return ops_ != nullptr; }

  void operator()() {
    assert(ops_ != nullptr);
    ops_->invoke(buf_);
  }

  void reset() {
    if (ops_ != nullptr) {
      ops_->destroy(buf_);
      ops_ = nullptr;
    }
  }

 private:
  struct Ops {
    void (*invoke)(void* self);
    void (*relocate)(void* dst, void* src);  // move-construct dst, destroy src
    void (*destroy)(void* self);
  };

  template <typename D>
  static constexpr bool fits_inline() {
    return sizeof(D) <= Capacity && alignof(D) <= alignof(std::max_align_t) &&
           std::is_nothrow_move_constructible_v<D>;
  }

  template <typename D>
  struct Vtable {
    static void invoke(void* self) { (*static_cast<D*>(self))(); }
    static void relocate(void* dst, void* src) {
      ::new (dst) D(std::move(*static_cast<D*>(src)));
      static_cast<D*>(src)->~D();
    }
    static void destroy(void* self) { static_cast<D*>(self)->~D(); }
    static constexpr Ops ops{&invoke, &relocate, &destroy};
  };

  void move_from(UniqueFunction& other) noexcept {
    if (other.ops_ != nullptr) {
      other.ops_->relocate(buf_, other.buf_);
      ops_ = other.ops_;
      other.ops_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char buf_[Capacity];
  const Ops* ops_ = nullptr;
};

}  // namespace gcs::util
