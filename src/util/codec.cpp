#include "util/codec.hpp"

namespace gcs {

void Encoder::put_u64(std::uint64_t v) {
  while (v >= 0x80) {
    out_->push_back(static_cast<std::uint8_t>(v) | 0x80);
    v >>= 7;
  }
  out_->push_back(static_cast<std::uint8_t>(v));
}

void Encoder::put_i64(std::int64_t v) {
  // Zigzag encoding maps small negatives to small varints.
  const auto u = (static_cast<std::uint64_t>(v) << 1) ^ static_cast<std::uint64_t>(v >> 63);
  put_u64(u);
}

void Encoder::put_string(std::string_view s) {
  put_u64(s.size());
  out_->insert(out_->end(), s.begin(), s.end());
}

void Encoder::put_bytes(BytesView b) {
  put_u64(b.size());
  out_->insert(out_->end(), b.begin(), b.end());
}

std::uint64_t Decoder::get_u64() {
  std::uint64_t v = 0;
  int shift = 0;
  while (true) {
    if (pos_ >= size_ || shift > 63) {
      fail();
      return 0;
    }
    const std::uint8_t b = data_[pos_++];
    v |= static_cast<std::uint64_t>(b & 0x7f) << shift;
    if ((b & 0x80) == 0) return v;
    shift += 7;
  }
}

std::int64_t Decoder::get_i64() {
  const std::uint64_t u = get_u64();
  return static_cast<std::int64_t>((u >> 1) ^ (~(u & 1) + 1));
}

std::uint8_t Decoder::get_byte() {
  if (pos_ >= size_) {
    fail();
    return 0;
  }
  return data_[pos_++];
}

std::string Decoder::get_string() {
  const std::uint64_t n = get_u64();
  if (n > remaining()) {
    fail();
    return {};
  }
  std::string s(reinterpret_cast<const char*>(data_ + pos_), static_cast<std::size_t>(n));
  pos_ += static_cast<std::size_t>(n);
  return s;
}

Bytes Decoder::get_bytes() {
  const std::uint64_t n = get_u64();
  if (n > remaining()) {
    fail();
    return {};
  }
  Bytes b(data_ + pos_, data_ + pos_ + n);
  pos_ += static_cast<std::size_t>(n);
  return b;
}

BytesView Decoder::get_view() {
  const std::uint64_t n = get_u64();
  if (n > remaining()) {
    fail();
    return {};
  }
  BytesView v(data_ + pos_, static_cast<std::size_t>(n));
  pos_ += static_cast<std::size_t>(n);
  return v;
}

}  // namespace gcs
