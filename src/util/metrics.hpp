/// \file metrics.hpp
/// Simple metrics: counters and latency histograms with percentile queries.
///
/// Names are interned process-wide into dense MetricIds; each Metrics
/// registry stores its counters and histograms in plain vectors indexed by
/// id, so the hot path (`inc(id)`) is one bounds check and an add — no map
/// walk, no string hashing, and no allocation once an id has been touched.
/// The string-keyed API remains for registration, tests and one-off reads;
/// hot layers intern once (usually at construction) and use the id overloads.
///
/// Benchmarks (bench/) run protocols under virtual time and report
/// virtual-time latencies; Histogram stores raw samples (simulations are
/// small enough) so exact percentiles can be reported.
#pragma once

#include <algorithm>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "util/types.hpp"

namespace gcs {

/// Dense id of an interned metric name. Counters and histograms share one
/// id space; the same id may back a counter in one registry and a histogram
/// in another (in practice names are used consistently).
using MetricId = std::uint32_t;

/// Intern \p name, returning its stable process-wide id (idempotent).
MetricId metric_id(std::string_view name);

/// Lookup without interning; kNoMetric if never interned.
inline constexpr MetricId kNoMetric = 0xffffffffu;
MetricId find_metric(std::string_view name);

/// Reverse lookup (reporting).
std::string_view metric_name(MetricId id);

/// Collection of raw duration samples with summary statistics.
///
/// Raw-sample growth is bounded: past `sample_cap()` retained samples, the
/// histogram uniformly decimates (keeps every other retained sample and
/// doubles its keep stride), so arbitrarily long runs use O(cap) memory.
/// count()/min()/max()/mean() stay exact (running statistics); percentiles
/// are exact below the cap and computed over the uniformly thinned sample
/// set above it. Decimation is a pure function of the add() sequence, so
/// identical runs stay byte-identical.
class Histogram {
 public:
  /// Default retained-sample bound; large enough that every bounded
  /// experiment keeps exact percentiles.
  static constexpr std::size_t kDefaultSampleCap = 65536;

  void add(Duration sample) {
    if (total_count_ == 0) {
      min_ = max_ = sample;
    } else {
      if (sample < min_) min_ = sample;
      if (sample > max_) max_ = sample;
    }
    sum_ += static_cast<double>(sample);
    if (total_count_++ % stride_ == 0) {
      samples_.push_back(sample);
      sorted_ = false;
      if (cap_ > 1 && samples_.size() >= cap_) decimate();
    }
  }

  /// Total samples observed (exact; retained may be fewer once capped).
  std::size_t count() const { return total_count_; }
  bool empty() const { return total_count_ == 0; }

  Duration min() const { return total_count_ == 0 ? 0 : min_; }
  Duration max() const { return total_count_ == 0 ? 0 : max_; }
  double mean() const {
    return total_count_ == 0 ? 0.0 : sum_ / static_cast<double>(total_count_);
  }
  /// Nearest-rank percentile (rank = ceil(q/100 * n), 1-based) over the
  /// retained samples, q in [0, 100]. Exact while count() <= sample_cap().
  /// q = 0 returns the exact minimum, q = 100 the exact maximum.
  Duration percentile(double q) const;

  /// Retained (possibly decimated) samples.
  const std::vector<Duration>& samples() const { return samples_; }

  /// Bound on retained samples; shrinking below the current retained count
  /// takes effect on the next add(). Cap 0 or 1 disables decimation.
  std::size_t sample_cap() const { return cap_; }
  void set_sample_cap(std::size_t cap) { cap_ = cap; }
  /// Current keep stride (1 = every sample retained, exact percentiles).
  std::size_t sample_stride() const { return stride_; }

  void clear() {
    samples_.clear();
    total_count_ = 0;
    stride_ = 1;
    sum_ = 0.0;
    min_ = max_ = 0;
    sorted_ = false;
  }

 private:
  void decimate();
  void sort() const;

  // Sorted lazily on query.
  mutable std::vector<Duration> samples_;
  mutable bool sorted_ = false;
  std::size_t cap_ = kDefaultSampleCap;
  std::size_t stride_ = 1;      // retain every stride-th add()
  std::size_t total_count_ = 0;
  double sum_ = 0.0;
  Duration min_ = 0;
  Duration max_ = 0;
};

/// Counters + histograms, one registry per experiment run (or per network).
/// Storage is dense vectors indexed by interned MetricId.
class Metrics {
 public:
  // -- id-keyed hot path ----------------------------------------------------
  void inc(MetricId id, std::int64_t delta = 1) {
    if (id >= counters_.size()) counters_.resize(id + 1, 0);
    counters_[id] += delta;
  }
  std::int64_t counter(MetricId id) const {
    return id < counters_.size() ? counters_[id] : 0;
  }

  void observe(MetricId id, Duration sample) {
    if (id >= histograms_.size()) histograms_.resize(id + 1);
    histograms_[id].add(sample);
  }
  const Histogram& histogram(MetricId id) const {
    static const Histogram kEmpty;
    return id < histograms_.size() ? histograms_[id] : kEmpty;
  }

  // -- string-keyed convenience (interns on write, looks up on read) --------
  void inc(const std::string& name, std::int64_t delta = 1) { inc(metric_id(name), delta); }
  std::int64_t counter(const std::string& name) const { return counter(find_metric(name)); }

  void observe(const std::string& name, Duration sample) { observe(metric_id(name), sample); }
  const Histogram& histogram(const std::string& name) const {
    return histogram(find_metric(name));
  }

  /// Snapshot of all non-zero counters, name-sorted (deterministic across
  /// runs with identical behaviour — determinism_test hashes this).
  std::map<std::string, std::int64_t> counters() const;
  /// Snapshot of all non-empty histograms, name-sorted.
  std::map<std::string, const Histogram*> histograms() const;

  void clear() {
    counters_.clear();
    histograms_.clear();
  }

 private:
  std::vector<std::int64_t> counters_;  // indexed by MetricId
  std::vector<Histogram> histograms_;   // indexed by MetricId
};

}  // namespace gcs
