/// \file metrics.hpp
/// Simple metrics: counters and latency histograms with percentile queries.
///
/// Benchmarks (bench/) run protocols under virtual time and report
/// virtual-time latencies; Histogram stores raw samples (simulations are
/// small enough) so exact percentiles can be reported.
#pragma once

#include <algorithm>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "util/types.hpp"

namespace gcs {

/// Collection of raw duration samples with summary statistics.
class Histogram {
 public:
  void add(Duration sample) {
    samples_.push_back(sample);
    sorted_ = false;
  }

  std::size_t count() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }

  Duration min() const;
  Duration max() const;
  double mean() const;
  /// Exact percentile by nearest-rank, q in [0, 100].
  Duration percentile(double q) const;

  const std::vector<Duration>& samples() const { return samples_; }
  void clear() { samples_.clear(); }

 private:
  // Sorted lazily on query.
  mutable std::vector<Duration> samples_;
  mutable bool sorted_ = false;
  void sort() const;
};

/// Named counters + histograms, one registry per experiment run.
class Metrics {
 public:
  void inc(const std::string& name, std::int64_t delta = 1) { counters_[name] += delta; }
  std::int64_t counter(const std::string& name) const {
    auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second;
  }

  void observe(const std::string& name, Duration sample) { histograms_[name].add(sample); }
  const Histogram& histogram(const std::string& name) const {
    static const Histogram kEmpty;
    auto it = histograms_.find(name);
    return it == histograms_.end() ? kEmpty : it->second;
  }

  const std::map<std::string, std::int64_t>& counters() const { return counters_; }
  const std::map<std::string, Histogram>& histograms() const { return histograms_; }

  void clear() {
    counters_.clear();
    histograms_.clear();
  }

 private:
  std::map<std::string, std::int64_t> counters_;
  std::map<std::string, Histogram> histograms_;
};

}  // namespace gcs
