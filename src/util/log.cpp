#include "util/log.hpp"

#include <atomic>

namespace gcs {

namespace {
std::atomic<int> g_level{static_cast<int>(LogLevel::kOff)};

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF  ";
  }
  return "?";
}
}  // namespace

void Logger::set_global_level(LogLevel level) { g_level.store(static_cast<int>(level)); }

LogLevel Logger::global_level() { return static_cast<LogLevel>(g_level.load()); }

void Logger::log(LogLevel level, const std::string& msg) const {
  if (!enabled(level)) return;
  const TimePoint t = now_fn_ && *now_fn_ ? (*now_fn_)() : 0;
  std::fprintf(stderr, "[%10.3fms] %s %-14s %s\n", static_cast<double>(t) / 1000.0,
               level_name(level), who_.c_str(), msg.c_str());
}

}  // namespace gcs
