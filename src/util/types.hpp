/// \file types.hpp
/// Fundamental identifiers and value types shared by every nggcs module.
#pragma once

#include <cstdint>
#include <compare>
#include <functional>
#include <string>
#include <vector>

namespace gcs {

/// Identity of a process (a group member or potential member).
/// Processes are numbered densely from 0 within a "universe"; a process keeps
/// its id for its whole life (crash, exclusion and rejoin do not change it).
using ProcessId = std::int32_t;

/// Sentinel meaning "no process".
inline constexpr ProcessId kNoProcess = -1;

/// Raw payload bytes as they travel through the stack.
using Bytes = std::vector<std::uint8_t>;

/// Virtual time in microseconds since simulation start.
using TimePoint = std::int64_t;

/// Virtual duration in microseconds.
using Duration = std::int64_t;

/// Convenience literals for durations.
constexpr Duration usec(std::int64_t v) { return v; }
constexpr Duration msec(std::int64_t v) { return v * 1000; }
constexpr Duration sec(std::int64_t v) { return v * 1000 * 1000; }

/// Globally unique message identity: the broadcasting process plus a
/// per-process sequence number it assigns at broadcast time.
struct MsgId {
  ProcessId sender = kNoProcess;
  std::uint64_t seq = 0;

  friend auto operator<=>(const MsgId&, const MsgId&) = default;
};

/// Human-readable form, e.g. "3:17".
std::string to_string(const MsgId& id);

}  // namespace gcs

template <>
struct std::hash<gcs::MsgId> {
  std::size_t operator()(const gcs::MsgId& id) const noexcept {
    return std::hash<std::uint64_t>{}(
        (static_cast<std::uint64_t>(static_cast<std::uint32_t>(id.sender)) << 40) ^ id.seq);
  }
};
