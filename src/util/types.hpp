/// \file types.hpp
/// Fundamental identifiers and value types shared by every nggcs module.
#pragma once

#include <cstdint>
#include <compare>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

namespace gcs {

/// Identity of a process (a group member or potential member).
/// Processes are numbered densely from 0 within a "universe"; a process keeps
/// its id for its whole life (crash, exclusion and rejoin do not change it).
using ProcessId = std::int32_t;

/// Sentinel meaning "no process".
inline constexpr ProcessId kNoProcess = -1;

/// Raw payload bytes as they travel through the stack.
using Bytes = std::vector<std::uint8_t>;

/// Non-owning, read-only view over wire bytes.
///
/// Handlers receive views into the datagram (or holdback/pooled) buffer that
/// is alive for the duration of the call only. A handler that needs the
/// bytes past its own return must copy (`to_bytes`) or decode into owned
/// storage; storing the view itself is a use-after-free.
using BytesView = std::span<const std::uint8_t>;

/// Materialize an owned copy of a view (the only sanctioned way to keep
/// wire bytes beyond the delivering call).
inline Bytes to_bytes(BytesView v) { return Bytes(v.begin(), v.end()); }

/// Immutable, reference-counted payload buffer.
///
/// Multicast fan-out and layer traversal hand the same bytes to many
/// destinations; copying a Bytes per hop/destination dominated the
/// simulator's allocation profile. A Payload is one shared immutable
/// buffer: copying it is a refcount bump, and an empty payload holds no
/// allocation at all. It converts implicitly from Bytes (taking ownership)
/// and to `const Bytes&` (viewing), so handler signatures keep using Bytes.
class Payload {
 public:
  Payload() = default;
  Payload(Bytes bytes)  // NOLINT: implicit by design
      : data_(bytes.empty() ? nullptr
                            : std::make_shared<const Bytes>(std::move(bytes))) {}
  Payload(std::shared_ptr<const Bytes> bytes) : data_(std::move(bytes)) {}  // NOLINT

  const Bytes& bytes() const { return data_ ? *data_ : empty_bytes(); }
  operator const Bytes&() const { return bytes(); }  // NOLINT: view conversion

  std::size_t size() const { return data_ ? data_->size() : 0; }
  bool empty() const { return size() == 0; }

  /// The underlying buffer (null when empty); identity comparisons in
  /// tests use this to prove fan-out shares rather than copies.
  const std::shared_ptr<const Bytes>& shared() const { return data_; }

 private:
  static const Bytes& empty_bytes();

  std::shared_ptr<const Bytes> data_;
};

/// Virtual time in microseconds since simulation start.
using TimePoint = std::int64_t;

/// Virtual duration in microseconds.
using Duration = std::int64_t;

/// Convenience literals for durations.
constexpr Duration usec(std::int64_t v) { return v; }
constexpr Duration msec(std::int64_t v) { return v * 1000; }
constexpr Duration sec(std::int64_t v) { return v * 1000 * 1000; }

/// Globally unique message identity: the broadcasting process plus a
/// per-process sequence number it assigns at broadcast time.
struct MsgId {
  ProcessId sender = kNoProcess;
  std::uint64_t seq = 0;

  friend auto operator<=>(const MsgId&, const MsgId&) = default;
};

/// Human-readable form, e.g. "3:17".
std::string to_string(const MsgId& id);

}  // namespace gcs

template <>
struct std::hash<gcs::MsgId> {
  std::size_t operator()(const gcs::MsgId& id) const noexcept {
    return std::hash<std::uint64_t>{}(
        (static_cast<std::uint64_t>(static_cast<std::uint32_t>(id.sender)) << 40) ^ id.seq);
  }
};
