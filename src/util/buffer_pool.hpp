/// \file buffer_pool.hpp
/// Recycling pool of shared byte buffers for the zero-copy wire path.
///
/// Wire sends hand a `Payload` (shared_ptr<const Bytes>) to the network,
/// which holds it until the last in-flight delivery runs. Allocating a
/// fresh control block + vector per datagram dominated the send-side
/// allocation profile; the pool instead keeps every buffer it ever handed
/// out and re-issues one as soon as all outstanding references drop
/// (use_count() == 1 means only the pool holds it). Buffers keep their
/// capacity across reuse, so after warm-up steady-state sends allocate
/// nothing.
///
/// Lifetime rules:
///   - acquire() returns a cleared, mutable buffer; fill it, then convert
///     to Payload (shared_ptr<const Bytes>) and send. Never mutate after
///     converting — readers hold views into it.
///   - The buffer returns to circulation automatically when the last
///     Payload copy dies; there is no release() call to forget.
///   - Single-threaded by design (one pool per simulated World / Context).
#pragma once

#include <memory>
#include <vector>

#include "util/types.hpp"

namespace gcs {

class BufferPool {
 public:
  /// A cleared buffer, capacity preserved from earlier use when recycled.
  std::shared_ptr<Bytes> acquire() {
    const std::size_t n = entries_.size();
    for (std::size_t step = 0; step < n; ++step) {
      auto& slot = entries_[cursor_];
      cursor_ = (cursor_ + 1) % n;
      if (slot.use_count() == 1) {
        slot->clear();
        return slot;
      }
    }
    entries_.push_back(std::make_shared<Bytes>());
    return entries_.back();
  }

  /// Buffers ever created (pool high-water mark).
  std::size_t size() const { return entries_.size(); }

 private:
  std::vector<std::shared_ptr<Bytes>> entries_;
  std::size_t cursor_ = 0;
};

}  // namespace gcs
