/// \file layers.hpp
/// Reusable layers for the composition kernel — enough to rebuild the
/// shape of the paper's Ensemble stack (Fig 5) and demonstrate the event
/// patterns its §2.2 describes (notably the bounced stability event).
#pragma once

#include <deque>
#include <functional>
#include <map>

#include "kernel/stack.hpp"

namespace gcs::kernel {

/// Event kinds used by these layers.
inline constexpr EventKind kStabilityEvent = kFirstUserKind + 0;  ///< bounced notification
inline constexpr EventKind kProbeTick = kFirstUserKind + 1;       ///< drives the stable layer

/// Interned attribute ids these layers stamp on events; cached so the hot
/// path never touches the string registry.
inline AttrId attr_fifo_seq() {
  static const AttrId id = intern_attr("fifo.seq");
  return id;
}
inline AttrId attr_stable_count() {
  static const AttrId id = intern_attr("stable.count");
  return id;
}

/// Records every event it sees: (layer position is implied by where you
/// insert it). For tests and stack traces.
class TraceLayer final : public Layer {
 public:
  struct Entry {
    EventKind kind;
    Direction direction;
    ProcessId peer;
  };

  explicit TraceLayer(std::string name = "trace") : name_(std::move(name)) {}

  std::string name() const override { return name_; }
  std::set<EventKind> subscriptions() const override {
    // Trace wants everything; the kernel has no wildcard, so list the kinds
    // used in this suite.
    return {kSendEvent, kDeliverEvent, kStabilityEvent, kProbeTick};
  }
  Verdict handle(Event& event, ProtocolStack&) override {
    entries_.push_back(Entry{event.kind, event.direction, event.peer});
    return Verdict::kForward;
  }

  const std::vector<Entry>& entries() const { return entries_; }

 private:
  std::string name_;
  std::vector<Entry> entries_;
};

/// Per-peer FIFO: stamps down-traffic with a sequence number attribute and
/// releases up-traffic in order, holding back gaps.
class FifoLayer final : public Layer {
 public:
  std::string name() const override { return "fifo"; }
  std::set<EventKind> subscriptions() const override { return {kSendEvent, kDeliverEvent}; }

  Verdict handle(Event& event, ProtocolStack& stack) override {
    if (event.direction == Direction::kDown) {
      event.attrs[attr_fifo_seq()] = static_cast<std::int64_t>(next_out_[event.peer]++);
      return Verdict::kForward;
    }
    const auto seq = event.attrs.get_or(attr_fifo_seq(), -1);
    if (seq < 0) return Verdict::kForward;  // unstamped: pass through
    auto& expected = next_in_[event.peer];
    if (seq < expected) return Verdict::kConsume;  // duplicate of delivered
    if (seq > expected) {
      holdback_[event.peer].emplace(seq, event);
      return Verdict::kConsume;
    }
    ++expected;
    // Release any directly following held-back events after this one.
    auto& held = holdback_[event.peer];
    while (!held.empty() && held.begin()->first == expected) {
      Event next = std::move(held.begin()->second);
      held.erase(held.begin());
      ++expected;
      stack.emit(std::move(next), self_index_);
    }
    return Verdict::kForward;
  }

  /// The kernel has no layer-introspection; tell the layer its index once.
  void set_self_index(std::size_t idx) { self_index_ = idx; }
  std::size_t held_back() const {
    std::size_t total = 0;
    for (const auto& [peer, held] : holdback_) total += held.size();
    return total;
  }

 private:
  std::map<ProcessId, std::int64_t> next_out_;
  std::map<ProcessId, std::int64_t> next_in_;
  std::map<ProcessId, std::map<std::int64_t, Event>> holdback_;
  std::size_t self_index_ = 0;
};

/// Buffers everything sent down until a stability notification (travelling
/// UP, after its bounce at the bottom) tells it the prefix is stable —
/// the retransmission-buffer role Ensemble's `stable` component serves.
class BufferLayer final : public Layer {
 public:
  std::string name() const override { return "buffer"; }
  std::set<EventKind> subscriptions() const override {
    return {kSendEvent, kStabilityEvent};
  }

  Verdict handle(Event& event, ProtocolStack&) override {
    if (event.kind == kSendEvent && event.direction == Direction::kDown) {
      buffered_.push_back(event.payload);
      return Verdict::kForward;
    }
    if (event.kind == kStabilityEvent) {
      if (event.direction == Direction::kUp) {
        // The bounced notification, on its way up: prune.
        const auto stable = event.attrs.get_or(attr_stable_count(), 0);
        while (!buffered_.empty() && pruned_ < stable) {
          buffered_.pop_front();
          ++pruned_;
        }
        saw_up_notification_ = true;
      } else {
        saw_down_notification_ = true;  // passing by on its way to the bottom
      }
    }
    return Verdict::kForward;
  }

  std::size_t buffered() const { return buffered_.size(); }
  bool saw_down_notification() const { return saw_down_notification_; }
  bool saw_up_notification() const { return saw_up_notification_; }

 private:
  std::deque<Payload> buffered_;  // shared buffers: buffering copies no bytes
  std::int64_t pruned_ = 0;
  bool saw_down_notification_ = false;
  bool saw_up_notification_ = false;
};

/// The Ensemble-style `stable` component: on a probe tick it emits a
/// stability notification DOWNWARD; the event bounces at the bottom of the
/// stack and travels up through every layer (paper §2.2's description,
/// verbatim). Here stability is simply "number of sends observed" — the
/// real protocol lives in src/broadcast; this layer demonstrates the
/// routing pattern.
class StableLayer final : public Layer {
 public:
  std::string name() const override { return "stable"; }
  std::set<EventKind> subscriptions() const override { return {kSendEvent, kProbeTick}; }

  Verdict handle(Event& event, ProtocolStack& stack) override {
    if (event.kind == kSendEvent) {
      ++sends_seen_;
      return Verdict::kForward;
    }
    // Probe: emit the notification downward; the kernel bounces it at the
    // bottom and routes it up through the whole stack.
    Event note;
    note.kind = kStabilityEvent;
    note.direction = Direction::kDown;
    note.attrs[attr_stable_count()] = sends_seen_;
    stack.emit(std::move(note), self_index_);
    return Verdict::kConsume;
  }

  void set_self_index(std::size_t idx) { self_index_ = idx; }

 private:
  std::int64_t sends_seen_ = 0;
  std::size_t self_index_ = 0;
};

}  // namespace gcs::kernel
