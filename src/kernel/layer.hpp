/// \file layer.hpp
/// A protocol layer in the composition kernel.
#pragma once

#include <set>
#include <string>

#include "kernel/event.hpp"

namespace gcs::kernel {

class ProtocolStack;

/// What a layer decides to do with an event it handled.
enum class Verdict {
  kForward,  ///< keep routing in the event's (possibly changed) direction
  kConsume,  ///< stop routing; the layer took ownership
};

class Layer {
 public:
  virtual ~Layer() = default;

  /// Human-readable name (stack dumps, traces).
  virtual std::string name() const = 0;

  /// Event kinds this layer wants to see; everything else passes through
  /// untouched (the Appia/Ensemble subscription model).
  virtual std::set<EventKind> subscriptions() const = 0;

  /// Handle \p event. The layer may mutate it (including flipping its
  /// direction — that is how bouncing works), emit new events through
  /// \p stack, and return kConsume to stop the routing.
  virtual Verdict handle(Event& event, ProtocolStack& stack) = 0;
};

}  // namespace gcs::kernel
