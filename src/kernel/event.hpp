/// \file event.hpp
/// Events for the protocol-composition kernel (paper §5 and §2.2).
///
/// The paper's prototype was built on two protocol-composition frameworks
/// (Appia and Cactus): protocol code lives in layers, and *events* are
/// routed up and down a stack of layers. This kernel reproduces that
/// programming model: an Event carries a kind, a direction of travel, a
/// payload and a small attribute set; layers subscribe to kinds and may
/// consume, forward, redirect (bounce) or emit events.
///
/// The bounce pattern is Ensemble's (paper §2.2): the `stable` component
/// sends a stability event DOWN the stack; at the bottom it bounces and
/// travels UP through every component, which reads the notification on the
/// way. Direction is a property of the event, not of the layer graph.
///
/// Hot-path representation (see DESIGN.md, "Kernel performance model"):
/// attributes are a flat inline array keyed by interned ids (attr.hpp)
/// and the payload is a shared immutable buffer (gcs::Payload), so copying
/// an event between layers or fanning it out to many destinations never
/// copies payload bytes and never allocates for attributes.
#pragma once

#include <cstdint>

#include "kernel/attr.hpp"
#include "util/types.hpp"

namespace gcs::kernel {

enum class Direction { kUp, kDown };

/// Event kinds are small integers; protocols define their own constants.
/// Kinds below 100 are reserved for the kernel.
using EventKind = std::uint32_t;

inline constexpr EventKind kSendEvent = 1;     ///< app payload travelling down
inline constexpr EventKind kDeliverEvent = 2;  ///< network payload travelling up
inline constexpr EventKind kFirstUserKind = 100;

struct Event {
  EventKind kind = 0;
  Direction direction = Direction::kDown;
  /// Peer process: destination for down-traffic, source for up-traffic.
  ProcessId peer = kNoProcess;
  /// Shared immutable payload; copying the event bumps a refcount only.
  Payload payload;
  /// Attributes layers use to annotate events for each other.
  AttrSet attrs;

  static Event send_to(ProcessId to, Payload payload) {
    Event e;
    e.kind = kSendEvent;
    e.direction = Direction::kDown;
    e.peer = to;
    e.payload = std::move(payload);
    return e;
  }
  static Event deliver_from(ProcessId from, Payload payload) {
    Event e;
    e.kind = kDeliverEvent;
    e.direction = Direction::kUp;
    e.peer = from;
    e.payload = std::move(payload);
    return e;
  }
};

}  // namespace gcs::kernel
