#include "kernel/attr.hpp"

#include <cassert>
#include <map>
#include <string>

namespace gcs::kernel {

namespace {

struct Registry {
  // std::less<> enables string_view lookups without constructing a string.
  std::map<std::string, AttrId, std::less<>> ids;
  std::vector<std::string_view> names;  // views into the map's stable keys
};

Registry& registry() {
  static Registry r;
  return r;
}

}  // namespace

AttrId intern_attr(std::string_view name) {
  Registry& r = registry();
  if (auto it = r.ids.find(name); it != r.ids.end()) return it->second;
  assert(r.names.size() < kNoAttr);
  const auto id = static_cast<AttrId>(r.names.size());
  auto [it, inserted] = r.ids.emplace(std::string(name), id);
  (void)inserted;
  r.names.push_back(it->first);
  return id;
}

AttrId find_attr(std::string_view name) {
  Registry& r = registry();
  auto it = r.ids.find(name);
  return it == r.ids.end() ? kNoAttr : it->second;
}

std::string_view attr_name(AttrId id) {
  Registry& r = registry();
  return id < r.names.size() ? r.names[id] : std::string_view{};
}

std::int64_t AttrSet::at(AttrId id) const {
  const std::int64_t* v = find(id);
  assert(v != nullptr && "AttrSet::at: attribute not present");
  return v != nullptr ? *v : 0;
}

const std::int64_t* AttrSet::find(AttrId id) const {
  for (std::size_t i = 0; i < count_; ++i) {
    if (ids_[i] == id) return &values_[i];
  }
  if (spill_) {
    for (const auto& [sid, value] : *spill_) {
      if (sid == id) return &value;
    }
  }
  return nullptr;
}

std::int64_t& AttrSet::insert(AttrId id) {
  if (count_ < kInlineCapacity) {
    ids_[count_] = id;
    values_[count_] = 0;
    return values_[count_++];
  }
  if (!spill_) spill_ = std::make_unique<std::vector<std::pair<AttrId, std::int64_t>>>();
  return spill_->emplace_back(id, 0).second;
}

void AttrSet::copy_from(const AttrSet& other) {
  ids_ = other.ids_;
  values_ = other.values_;
  count_ = other.count_;
  spill_ = other.spill_
               ? std::make_unique<std::vector<std::pair<AttrId, std::int64_t>>>(*other.spill_)
               : nullptr;
}

}  // namespace gcs::kernel
