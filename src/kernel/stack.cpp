#include "kernel/stack.hpp"

namespace gcs::kernel {

std::size_t ProtocolStack::push_layer(std::unique_ptr<Layer> layer) {
  const std::set<EventKind> kinds = layer->subscriptions();
  subs_.emplace_back(kinds.begin(), kinds.end());  // set iteration is sorted
  layers_.push_back(std::move(layer));
  return layers_.size() - 1;
}

std::ptrdiff_t ProtocolStack::entry_cursor(const Event& event) const {
  return event.direction == Direction::kUp ? 0
                                           : static_cast<std::ptrdiff_t>(layers_.size()) - 1;
}

void ProtocolStack::inject(Event event) {
  queue_.push_back(Pending{std::move(event), -2});  // -2: compute at route time
  drain();
}

void ProtocolStack::emit(Event event, std::size_t from_layer) {
  const std::ptrdiff_t cursor = event.direction == Direction::kUp
                                    ? static_cast<std::ptrdiff_t>(from_layer) + 1
                                    : static_cast<std::ptrdiff_t>(from_layer) - 1;
  queue_.push_back(Pending{std::move(event), cursor});
  drain();
}

void ProtocolStack::drain() {
  if (draining_) return;  // run-to-completion: the outermost call drains
  draining_ = true;
  while (queue_head_ < queue_.size()) {
    Pending pending = std::move(queue_[queue_head_++]);
    if (pending.cursor == -2) pending.cursor = entry_cursor(pending.event);
    route(std::move(pending));
  }
  queue_.clear();
  queue_head_ = 0;
  draining_ = false;
}

void ProtocolStack::route(Pending pending) {
  ++events_routed_;
  Event& event = pending.event;
  std::ptrdiff_t cursor = pending.cursor;
  while (true) {
    if (cursor < 0) {
      // Fell off the bottom. The hook may bounce the event back up
      // (Ensemble's pattern: stability events turn around at the bottom).
      if (bottom_hook_) bottom_hook_(event);
      if (event.direction == Direction::kUp) {
        cursor = 0;
        continue;
      }
      return;
    }
    if (cursor >= static_cast<std::ptrdiff_t>(layers_.size())) {
      if (top_hook_) top_hook_(event);
      if (event.direction == Direction::kDown) {
        cursor = static_cast<std::ptrdiff_t>(layers_.size()) - 1;
        continue;
      }
      return;
    }
    const auto idx = static_cast<std::size_t>(cursor);
    if (subscribed(idx, event.kind)) {
      const Verdict verdict = layers_[idx]->handle(event, *this);
      if (verdict == Verdict::kConsume) return;
    }
    // Continue in the event's (possibly just flipped) direction.
    cursor += event.direction == Direction::kUp ? 1 : -1;
  }
}

std::vector<std::string> ProtocolStack::describe() const {
  std::vector<std::string> names;
  names.reserve(layers_.size());
  for (const auto& layer : layers_) names.push_back(layer->name());
  return names;
}

}  // namespace gcs::kernel
