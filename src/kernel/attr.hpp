/// \file attr.hpp
/// Interned event attributes for the composition kernel.
///
/// Events used to annotate each other through a std::map<std::string,
/// int64>, which cost a red-black-tree node allocation plus string compares
/// per attribute per event. Attribute *names* are now interned once into
/// small dense AttrIds, and each event carries a flat inline array keyed by
/// id — reading or writing an attribute on the hot path is a handful of
/// integer compares and no allocation.
///
/// Layers cache their ids (e.g. attr_fifo_seq() in layers.hpp); tests and
/// tools may keep using string keys, which intern on the fly.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <string_view>
#include <utility>
#include <vector>

namespace gcs::kernel {

/// Dense id of an interned attribute name.
using AttrId = std::uint16_t;

/// Sentinel: name not interned (returned by find_attr for unknown names).
inline constexpr AttrId kNoAttr = 0xffff;

/// Intern \p name, returning its stable id (idempotent).
AttrId intern_attr(std::string_view name);

/// Lookup without interning; kNoAttr if the name was never interned.
AttrId find_attr(std::string_view name);

/// Reverse lookup (diagnostics, trace dumps).
std::string_view attr_name(AttrId id);

/// Flat attribute set: inline (id, value) pairs with linear search. Events
/// in this codebase carry at most a couple of attributes, so linear beats
/// any tree or hash both in time and in locality; the rare overflow past
/// the inline capacity spills to a heap vector rather than failing.
///
/// Mirrors the fragment of the std::map API the old call sites used
/// (operator[], count, at) with both AttrId and string keys.
class AttrSet {
 public:
  static constexpr std::size_t kInlineCapacity = 8;

  AttrSet() = default;
  AttrSet(const AttrSet& other) { copy_from(other); }
  AttrSet& operator=(const AttrSet& other) {
    if (this != &other) copy_from(other);
    return *this;
  }
  AttrSet(AttrSet&&) noexcept = default;
  AttrSet& operator=(AttrSet&&) noexcept = default;

  std::int64_t& operator[](AttrId id) {
    if (std::int64_t* v = find(id)) return *v;
    return insert(id);
  }
  std::int64_t& operator[](std::string_view name) { return (*this)[intern_attr(name)]; }

  std::size_t count(AttrId id) const { return find(id) != nullptr ? 1 : 0; }
  std::size_t count(std::string_view name) const {
    const AttrId id = find_attr(name);
    return id == kNoAttr ? 0 : count(id);
  }

  bool contains(AttrId id) const { return find(id) != nullptr; }

  /// Value of a present attribute (callers check with count/contains first,
  /// exactly like the old std::map::at contract).
  std::int64_t at(AttrId id) const;
  std::int64_t at(std::string_view name) const { return at(find_attr(name)); }

  std::int64_t get_or(AttrId id, std::int64_t fallback) const {
    const std::int64_t* v = find(id);
    return v != nullptr ? *v : fallback;
  }

  void set(AttrId id, std::int64_t value) { (*this)[id] = value; }

  std::size_t size() const { return count_ + (spill_ ? spill_->size() : 0); }
  bool empty() const { return size() == 0; }

 private:
  const std::int64_t* find(AttrId id) const;
  std::int64_t* find(AttrId id) {
    return const_cast<std::int64_t*>(static_cast<const AttrSet*>(this)->find(id));
  }
  std::int64_t& insert(AttrId id);
  void copy_from(const AttrSet& other);

  std::array<AttrId, kInlineCapacity> ids_{};
  std::array<std::int64_t, kInlineCapacity> values_{};
  std::uint8_t count_ = 0;
  std::unique_ptr<std::vector<std::pair<AttrId, std::int64_t>>> spill_;
};

}  // namespace gcs::kernel
