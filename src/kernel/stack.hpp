/// \file stack.hpp
/// ProtocolStack: deterministic event routing through an ordered list of
/// layers (bottom = index 0). The Appia-flavored kernel of paper §5.
///
/// Routing rules:
///   - an event travelling kUp visits layers bottom→top starting above its
///     origin; kDown visits top→bottom below its origin;
///   - only layers subscribed to the event's kind handle it; others are
///     skipped;
///   - a handler may flip the event's direction (bounce): routing continues
///     the other way from the *current* layer;
///   - a handler may emit() new events: they are queued and routed after
///     the current one completes (run-to-completion, deterministic order);
///   - an event that falls off the bottom is given to the bottom hook
///     (usually a network adapter); off the top it is dropped (or given to
///     the top hook).
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "kernel/layer.hpp"

namespace gcs::kernel {

class ProtocolStack {
 public:
  using EdgeHook = std::function<void(Event&)>;

  /// Append a layer on top of the current stack; returns its index.
  std::size_t push_layer(std::unique_ptr<Layer> layer);

  std::size_t size() const { return layers_.size(); }
  Layer& layer(std::size_t i) { return *layers_[i]; }

  /// Called when a kDown event exits below layer 0 (e.g. send on the wire).
  void set_bottom_hook(EdgeHook hook) { bottom_hook_ = std::move(hook); }
  /// Called when a kUp event exits above the top layer.
  void set_top_hook(EdgeHook hook) { top_hook_ = std::move(hook); }

  /// Inject an event from outside the stack and run to completion:
  /// kUp events enter below layer 0, kDown events enter above the top.
  void inject(Event event);

  /// Emit an event from inside a handler: starts at the emitting layer
  /// (exclusive) in the event's direction, after the current event is done.
  /// \p from_layer is the emitting layer's index.
  void emit(Event event, std::size_t from_layer);

  /// Layer names bottom→top (diagnostics; the paper's figures as text).
  std::vector<std::string> describe() const;

  std::uint64_t events_routed() const { return events_routed_; }

 private:
  // An event plus the index of the next layer to visit.
  struct Pending {
    Event event;
    std::ptrdiff_t cursor;
  };

  void route(Pending pending);
  void drain();
  std::ptrdiff_t entry_cursor(const Event& event) const;
  bool subscribed(std::size_t layer, EventKind kind) const {
    // Sorted flat vector: layers subscribe to a handful of kinds, so this
    // beats a tree walk per (layer, event) on the routing hot path.
    const auto& subs = subs_[layer];
    for (EventKind k : subs) {
      if (k >= kind) return k == kind;
    }
    return false;
  }

  std::vector<std::unique_ptr<Layer>> layers_;
  std::vector<std::vector<EventKind>> subs_;  // each sorted ascending
  EdgeHook bottom_hook_;
  EdgeHook top_hook_;
  // FIFO of queued events. Run-to-completion drains it to empty, at which
  // point the storage is recycled: a vector + head cursor gives zero
  // steady-state allocations where a deque keeps paging chunks.
  std::vector<Pending> queue_;
  std::size_t queue_head_ = 0;
  bool draining_ = false;
  std::uint64_t events_routed_ = 0;
};

}  // namespace gcs::kernel
