/// \file transport.hpp
/// Unreliable, tag-multiplexed datagram transport (Fig 9: "Unreliable
/// Transport", operations u-send / u-receive).
///
/// Every component above the transport owns a Tag; the transport prefixes
/// outgoing payloads with the tag byte and dispatches incoming datagrams to
/// the subscriber registered for that tag. Datagrams may be lost, delayed
/// and reordered; they are never corrupted or duplicated.
#pragma once

#include <functional>

#include "util/types.hpp"

namespace gcs {

/// Wire-level component tags. One per protocol component that talks to its
/// peers on other processes.
enum class Tag : std::uint8_t {
  kChannel = 1,      ///< reliable channel (DATA/ACK)
  kFd = 2,           ///< failure-detector heartbeats
  kConsensus = 3,    ///< Chandra–Toueg consensus
  kRbcast = 4,       ///< reliable broadcast (atomic broadcast's substrate)
  kAbcast = 5,       ///< atomic broadcast
  kGbcast = 6,       ///< generic broadcast (acks, data flooding)
  kMembership = 7,   ///< join requests, state transfer
  kMonitoring = 8,   ///< suspicion gossip
  kVs = 9,           ///< traditional view-synchrony layer
  kSeqOrder = 10,    ///< traditional fixed-sequencer atomic broadcast
  kToken = 11,       ///< traditional token-ring atomic broadcast
  kGbData = 12,      ///< generic broadcast data flooding (its own rbcast)
  kApp = 13,         ///< application / replication layer
  kCbcast = 14,      ///< causal broadcast (optional layer, Isis heritage)
  kMax = 15,
};

/// Abstract unreliable transport. The simulator provides SimTransport; a
/// real deployment would provide a UDP-backed implementation.
class Transport {
 public:
  using Handler = std::function<void(ProcessId from, const Bytes& payload)>;

  virtual ~Transport() = default;

  /// Identity of the local process.
  virtual ProcessId self() const = 0;

  /// Number of processes in the universe (potential members, ids 0..n-1).
  virtual int universe_size() const = 0;

  /// Fire-and-forget datagram to \p to. May be silently lost.
  virtual void u_send(ProcessId to, Tag tag, const Bytes& payload) = 0;

  /// Register the receive handler for \p tag (one subscriber per tag).
  virtual void subscribe(Tag tag, Handler handler) = 0;

  /// Convenience: u_send to every process in \p group (including self if
  /// listed; loopback has near-zero latency). Virtual so transports that
  /// can share one wire buffer across the whole fan-out (SimTransport)
  /// avoid re-encoding the datagram per destination.
  virtual void u_send_group(const std::vector<ProcessId>& group, Tag tag,
                            const Bytes& payload) {
    for (ProcessId p : group) u_send(p, tag, payload);
  }
};

}  // namespace gcs
