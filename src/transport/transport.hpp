/// \file transport.hpp
/// Unreliable, tag-multiplexed datagram transport (Fig 9: "Unreliable
/// Transport", operations u-send / u-receive).
///
/// Every component above the transport owns a Tag; the transport prefixes
/// outgoing payloads with the tag byte and dispatches incoming datagrams to
/// the subscriber registered for that tag. Datagrams may be lost, delayed
/// and reordered; they are never corrupted or duplicated.
#pragma once

#include <functional>

#include "util/types.hpp"

namespace gcs {

/// Wire-level component tags. One per protocol component that talks to its
/// peers on other processes.
enum class Tag : std::uint8_t {
  kChannel = 1,      ///< reliable channel (DATA/ACK)
  kFd = 2,           ///< failure-detector heartbeats
  kConsensus = 3,    ///< Chandra–Toueg consensus
  kRbcast = 4,       ///< reliable broadcast (atomic broadcast's substrate)
  kAbcast = 5,       ///< atomic broadcast
  kGbcast = 6,       ///< generic broadcast (acks, data flooding)
  kMembership = 7,   ///< join requests, state transfer
  kMonitoring = 8,   ///< suspicion gossip
  kVs = 9,           ///< traditional view-synchrony layer
  kSeqOrder = 10,    ///< traditional fixed-sequencer atomic broadcast
  kToken = 11,       ///< traditional token-ring atomic broadcast
  kGbData = 12,      ///< generic broadcast data flooding (its own rbcast)
  kApp = 13,         ///< application / replication layer
  kCbcast = 14,      ///< causal broadcast (optional layer, Isis heritage)
  kMax = 15,
};

/// Stable lowercase name for a tag, used to build per-component metric
/// names ("consensus.wire_bytes" etc.).
constexpr const char* tag_name(Tag tag) {
  switch (tag) {
    case Tag::kChannel: return "channel";
    case Tag::kFd: return "fd";
    case Tag::kConsensus: return "consensus";
    case Tag::kRbcast: return "rbcast";
    case Tag::kAbcast: return "abcast";
    case Tag::kGbcast: return "gbcast";
    case Tag::kMembership: return "membership";
    case Tag::kMonitoring: return "monitoring";
    case Tag::kVs: return "vs";
    case Tag::kSeqOrder: return "seq";
    case Tag::kToken: return "token";
    case Tag::kGbData: return "gbdata";
    case Tag::kApp: return "app";
    case Tag::kCbcast: return "cbcast";
    default: return "tag";
  }
}

/// Abstract unreliable transport. The simulator provides SimTransport; a
/// real deployment would provide a UDP-backed implementation.
class Transport {
 public:
  /// Receives a view into the datagram buffer; valid only for the duration
  /// of the call (copy via to_bytes() to keep).
  using Handler = std::function<void(ProcessId from, BytesView payload)>;

  virtual ~Transport() = default;

  /// Identity of the local process.
  virtual ProcessId self() const = 0;

  /// Number of processes in the universe (potential members, ids 0..n-1).
  virtual int universe_size() const = 0;

  /// Fire-and-forget datagram to \p to. May be silently lost.
  virtual void u_send(ProcessId to, Tag tag, const Bytes& payload) = 0;

  /// Register the receive handler for \p tag (one subscriber per tag).
  virtual void subscribe(Tag tag, Handler handler) = 0;

  /// Convenience: u_send to every process in \p group (including self if
  /// listed; loopback has near-zero latency). Virtual so transports that
  /// can share one wire buffer across the whole fan-out (SimTransport)
  /// avoid re-encoding the datagram per destination.
  virtual void u_send_group(const std::vector<ProcessId>& group, Tag tag,
                            const Bytes& payload) {
    for (ProcessId p : group) u_send(p, tag, payload);
  }
};

}  // namespace gcs
