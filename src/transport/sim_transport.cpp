#include "transport/sim_transport.hpp"

#include <cassert>
#include <string>

namespace gcs {

SimTransport::SimTransport(sim::Context& ctx, sim::Network& network)
    : ctx_(ctx), self_(ctx.self()), network_(network) {
  for (std::size_t t = 0; t < static_cast<std::size_t>(Tag::kMax); ++t) {
    const std::string base = tag_name(static_cast<Tag>(t));
    m_wire_bytes_[t] = metric_id(base + ".wire_bytes");
    m_wire_msgs_[t] = metric_id(base + ".wire_msgs");
  }
  // The liveness guard: once the process is killed, incoming datagrams are
  // dropped even if the network still has them in flight.
  network_.set_handler(self_, [this, alive = ctx.alive_flag()](ProcessId from, const Bytes& b) {
    if (!*alive) return;
    dispatch(from, b);
  });
}

Payload SimTransport::make_datagram(Tag tag, const Bytes& payload) {
  // Pooled: the buffer recirculates once the network's last in-flight
  // reference drops, so steady-state sends allocate nothing.
  std::shared_ptr<Bytes> datagram = ctx_.pool().acquire();
  datagram->reserve(payload.size() + 1);
  datagram->push_back(static_cast<std::uint8_t>(tag));
  datagram->insert(datagram->end(), payload.begin(), payload.end());
  return Payload(std::shared_ptr<const Bytes>(std::move(datagram)));
}

void SimTransport::account(Tag tag, std::size_t payload_bytes, std::size_t copies) {
  const auto idx = static_cast<std::size_t>(tag);
  if (idx >= m_wire_bytes_.size() || copies == 0) return;
  ctx_.metrics().inc(m_wire_msgs_[idx], static_cast<std::int64_t>(copies));
  ctx_.metrics().inc(m_wire_bytes_[idx],
                     static_cast<std::int64_t>(copies * (payload_bytes + 1)));
}

void SimTransport::u_send(ProcessId to, Tag tag, const Bytes& payload) {
  account(tag, payload.size(), 1);
  network_.send(self_, to, make_datagram(tag, payload));
}

void SimTransport::u_send_group(const std::vector<ProcessId>& group, Tag tag,
                                const Bytes& payload) {
  if (group.empty()) return;
  account(tag, payload.size(), group.size());
  network_.multicast(self_, group, make_datagram(tag, payload));
}

void SimTransport::subscribe(Tag tag, Handler handler) {
  const auto idx = static_cast<std::size_t>(tag);
  assert(idx < handlers_.size());
  handlers_[idx] = std::move(handler);
}

void SimTransport::dispatch(ProcessId from, const Bytes& datagram) {
  if (datagram.empty()) return;
  const auto idx = static_cast<std::size_t>(datagram[0]);
  if (idx >= handlers_.size() || !handlers_[idx]) return;
  // Zero-copy up-call: the handler sees a view into the datagram buffer,
  // which the network keeps alive for the duration of this call.
  handlers_[idx](from, BytesView(datagram.data() + 1, datagram.size() - 1));
}

}  // namespace gcs
