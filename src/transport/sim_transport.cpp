#include "transport/sim_transport.hpp"

#include <cassert>

namespace gcs {

SimTransport::SimTransport(sim::Context& ctx, sim::Network& network)
    : self_(ctx.self()), network_(network) {
  // The liveness guard: once the process is killed, incoming datagrams are
  // dropped even if the network still has them in flight.
  network_.set_handler(self_, [this, alive = ctx.alive_flag()](ProcessId from, const Bytes& b) {
    if (!*alive) return;
    dispatch(from, b);
  });
}

namespace {
Payload make_datagram(Tag tag, const Bytes& payload) {
  auto datagram = std::make_shared<Bytes>();
  datagram->reserve(payload.size() + 1);
  datagram->push_back(static_cast<std::uint8_t>(tag));
  datagram->insert(datagram->end(), payload.begin(), payload.end());
  return Payload(std::shared_ptr<const Bytes>(std::move(datagram)));
}
}  // namespace

void SimTransport::u_send(ProcessId to, Tag tag, const Bytes& payload) {
  network_.send(self_, to, make_datagram(tag, payload));
}

void SimTransport::u_send_group(const std::vector<ProcessId>& group, Tag tag,
                                const Bytes& payload) {
  if (group.empty()) return;
  network_.multicast(self_, group, make_datagram(tag, payload));
}

void SimTransport::subscribe(Tag tag, Handler handler) {
  const auto idx = static_cast<std::size_t>(tag);
  assert(idx < handlers_.size());
  handlers_[idx] = std::move(handler);
}

void SimTransport::dispatch(ProcessId from, const Bytes& datagram) {
  if (datagram.empty()) return;
  const auto idx = static_cast<std::size_t>(datagram[0]);
  if (idx >= handlers_.size() || !handlers_[idx]) return;
  const Bytes payload(datagram.begin() + 1, datagram.end());
  handlers_[idx](from, payload);
}

}  // namespace gcs
