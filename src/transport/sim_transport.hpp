/// \file sim_transport.hpp
/// Transport implementation over the simulated network.
#pragma once

#include <array>

#include "sim/context.hpp"
#include "sim/network.hpp"
#include "transport/transport.hpp"

namespace gcs {

class SimTransport final : public Transport {
 public:
  /// Registers itself as \p ctx's process handler with the network.
  SimTransport(sim::Context& ctx, sim::Network& network);

  ProcessId self() const override { return self_; }
  int universe_size() const override { return network_.size(); }
  void u_send(ProcessId to, Tag tag, const Bytes& payload) override;
  /// Builds the tagged datagram once and multicasts the shared buffer:
  /// group fan-out costs one pooled buffer total instead of one copy per
  /// destination.
  void u_send_group(const std::vector<ProcessId>& group, Tag tag,
                    const Bytes& payload) override;
  void subscribe(Tag tag, Handler handler) override;

 private:
  Payload make_datagram(Tag tag, const Bytes& payload);
  void dispatch(ProcessId from, const Bytes& datagram);
  void account(Tag tag, std::size_t payload_bytes, std::size_t copies);

  sim::Context& ctx_;
  ProcessId self_;
  sim::Network& network_;
  std::array<Handler, static_cast<std::size_t>(Tag::kMax)> handlers_;
  // Per-tag bytes/datagrams put on the wire by this process
  // ("<tag>.wire_bytes" / "<tag>.wire_msgs"); counts what leaves the
  // transport, so datagram framing (the tag byte) is included.
  std::array<MetricId, static_cast<std::size_t>(Tag::kMax)> m_wire_bytes_;
  std::array<MetricId, static_cast<std::size_t>(Tag::kMax)> m_wire_msgs_;
};

}  // namespace gcs
