/// \file sim_transport.hpp
/// Transport implementation over the simulated network.
#pragma once

#include <array>

#include "sim/context.hpp"
#include "sim/network.hpp"
#include "transport/transport.hpp"

namespace gcs {

class SimTransport final : public Transport {
 public:
  /// Registers itself as \p ctx's process handler with the network.
  SimTransport(sim::Context& ctx, sim::Network& network);

  ProcessId self() const override { return self_; }
  int universe_size() const override { return network_.size(); }
  void u_send(ProcessId to, Tag tag, const Bytes& payload) override;
  /// Builds the tagged datagram once and multicasts the shared buffer:
  /// group fan-out costs one allocation total instead of one copy per
  /// destination.
  void u_send_group(const std::vector<ProcessId>& group, Tag tag,
                    const Bytes& payload) override;
  void subscribe(Tag tag, Handler handler) override;

 private:
  void dispatch(ProcessId from, const Bytes& datagram);

  ProcessId self_;
  sim::Network& network_;
  std::array<Handler, static_cast<std::size_t>(Tag::kMax)> handlers_;
};

}  // namespace gcs
