/// \file proposal.hpp
/// The value agreed on by consensus when it orders a batch of messages.
///
/// Two wire formats exist for the batch:
///   - kSlim (default): entries are (MsgId, subtag) tuples only — 16-ish
///     bytes each regardless of application payload size. Deliverers look
///     the payload up in their rbcast-fed store and, when a process decides
///     without ever having rdelivered (late join, restore mid-instance),
///     fall back to a bounded pull/push exchange over the reliable channel.
///   - kLegacy: entries carry the full payload inline, the original
///     format. Kept as a benchmark baseline and an escape hatch.
/// Both formats are self-describing (leading format byte), so a decision
/// value decodes unambiguously whichever side proposed it.
#pragma once

#include <cstdint>
#include <vector>

#include "util/codec.hpp"
#include "util/types.hpp"

namespace gcs {

enum class WireFormat : std::uint8_t {
  kSlim = 0,
  kLegacy = 1,
};

/// One ordered message inside a batch proposal. `payload` is populated only
/// under kLegacy (slim entries resolve payloads from the local store).
struct ProposalEntry {
  MsgId id;
  std::uint8_t subtag = 0;
  Bytes payload;

  friend bool operator==(const ProposalEntry&, const ProposalEntry&) = default;
};

/// A batch of messages proposed to (and decided by) one consensus instance.
struct BatchProposal {
  WireFormat format = WireFormat::kSlim;
  std::vector<ProposalEntry> entries;

  void encode(Encoder& enc) const;
  /// Hardened: fails the decoder on unknown format bytes, hostile entry
  /// counts and truncation; returns an empty batch in that case.
  static BatchProposal decode(Decoder& dec);

  friend bool operator==(const BatchProposal&, const BatchProposal&) = default;
};

}  // namespace gcs
