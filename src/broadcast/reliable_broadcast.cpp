#include "broadcast/reliable_broadcast.hpp"

#include <algorithm>

#include "util/codec.hpp"

namespace gcs {

namespace {
constexpr std::uint8_t kData = 0;
constexpr std::uint8_t kWatermarks = 1;
}  // namespace

ReliableBroadcast::ReliableBroadcast(sim::Context& ctx, ReliableChannel& channel, Tag tag)
    : ctx_(ctx), channel_(channel), tag_(tag),
      m_broadcasts_(metric_id("rbcast.broadcasts")),
      m_delivered_(metric_id("rbcast.delivered")),
      m_stability_gossip_(metric_id("rbcast.stability_gossip")),
      m_stability_pruned_(metric_id("rbcast.stability_pruned")) {
  channel_.subscribe(tag_, [this](ProcessId from, BytesView b) { on_message(from, b); });
}

void ReliableBroadcast::set_group(std::vector<ProcessId> group) {
  group_ = std::move(group);
  if (stability_enabled_) {
    // Membership changed: drop watermarks of departed members (a crashed
    // member would otherwise freeze the floor forever) and re-min.
    for (auto it = peer_watermarks_.begin(); it != peer_watermarks_.end();) {
      const bool still_member =
          std::find(group_.begin(), group_.end(), it->first) != group_.end();
      it = still_member ? ++it : peer_watermarks_.erase(it);
    }
    recompute_floors();
  }
}

MsgId ReliableBroadcast::broadcast(Payload payload) {
  const MsgId id{ctx_.self(), next_seq_++};
  broadcast_with_id(id, payload);
  return id;
}

bool ReliableBroadcast::mark_seen(const MsgId& id) {
  if (!seen_[id.sender].insert(id.seq).second) return false;
  ++seen_count_;
  return true;
}

void ReliableBroadcast::broadcast_with_id(const MsgId& id, const Payload& payload) {
  if (id.sender == ctx_.self() && id.seq >= next_seq_) next_seq_ = id.seq + 1;
  if (below_floor(id) || !mark_seen(id)) return;  // already known
  note_received(id);
  // Frame into a pooled buffer; the channel's retransmit queues hold the
  // shared buffer, so fan-out costs no copies and steady state no allocs.
  std::shared_ptr<Bytes> wire = ctx_.pool().acquire();
  Encoder enc(*wire);
  enc.put_byte(kData);
  enc.put_msgid(id);
  enc.put_bytes(payload.bytes());
  // Send to the whole group (ourselves excluded: we deliver directly below,
  // and marking the id seen suppresses the loopback copy).
  channel_.send_group(group_, tag_, Payload(std::shared_ptr<const Bytes>(std::move(wire))));
  ctx_.metrics().inc(m_broadcasts_);
  ctx_.metrics().inc(m_delivered_);
  ctx_.trace_instant(obs::Names::get().rbcast_flood, id,
                     static_cast<std::int64_t>(payload.size()));
  ctx_.trace_instant(obs::Names::get().rbcast_deliver, id);
  if (observe_broadcast_) observe_broadcast_(id);
  if (observe_deliver_) observe_deliver_(id);
  for (const auto& fn : deliver_fns_) fn(id, payload.bytes());
}

void ReliableBroadcast::on_message(ProcessId from, BytesView payload) {
  Decoder dec(payload);
  const std::uint8_t kind = dec.get_byte();
  if (kind == kData) {
    handle_data(payload);
  } else if (kind == kWatermarks) {
    handle_watermarks(from, dec);
  }
}

void ReliableBroadcast::handle_data(BytesView wire) {
  Decoder dec(wire);
  dec.get_byte();  // kind
  const MsgId id = dec.get_msgid();
  const BytesView body = dec.get_view();
  if (!dec.ok()) return;
  if (below_floor(id)) return;   // stable: late relay of an old message
  if (!mark_seen(id)) return;    // duplicate
  note_received(id);
  if (non_uniform_) {
    // Lazy mode: no relay at all — NOT uniform (see header).
    ctx_.metrics().inc(m_delivered_);
    ctx_.trace_instant(obs::Names::get().rbcast_deliver, id);
    if (observe_deliver_) observe_deliver_(id);
    for (const auto& fn : deliver_fns_) fn(id, body);
    return;
  }
  // Relay before delivering: guarantees uniformity under crash-stop. The
  // incoming view is materialized once into a pooled buffer that every
  // destination's channel queue then shares.
  std::shared_ptr<Bytes> relay = ctx_.pool().acquire();
  relay->assign(wire.begin(), wire.end());
  channel_.send_group(group_, tag_, Payload(std::shared_ptr<const Bytes>(std::move(relay))));
  ctx_.metrics().inc(m_delivered_);
  ctx_.trace_instant(obs::Names::get().rbcast_relay, id);
  ctx_.trace_instant(obs::Names::get().rbcast_deliver, id);
  if (observe_deliver_) observe_deliver_(id);
  for (const auto& fn : deliver_fns_) fn(id, body);
}

bool ReliableBroadcast::below_floor(const MsgId& id) const {
  if (!stability_enabled_) return false;
  auto it = stable_floor_.find(id.sender);
  return it != stable_floor_.end() && id.seq < it->second;
}

void ReliableBroadcast::note_received(const MsgId& id) {
  if (!stability_enabled_) return;
  auto& upto = received_upto_[id.sender];
  auto& gaps = received_gaps_[id.sender];
  if (id.seq < upto) return;
  gaps.insert(id.seq);
  while (!gaps.empty() && *gaps.begin() == upto) {
    gaps.erase(gaps.begin());
    ++upto;
  }
}

void ReliableBroadcast::enable_stability(Duration interval) {
  if (stability_enabled_) return;
  stability_enabled_ = true;
  gossip_interval_ = interval;
  // Seed the contiguous watermarks from what we already hold.
  for (const auto& [sender, seqs] : seen_) {
    for (const std::uint64_t seq : seqs) note_received(MsgId{sender, seq});
  }
  ctx_.after(gossip_interval_, [this] { gossip_tick(); });
}

void ReliableBroadcast::gossip_tick() {
  if (!stability_enabled_) return;
  Encoder enc;
  enc.put_byte(kWatermarks);
  enc.put_u64(received_upto_.size());
  for (const auto& [sender, upto] : received_upto_) {
    enc.put_i32(sender);
    enc.put_u64(upto);
  }
  channel_.send_group(group_, tag_, enc.bytes());
  ctx_.metrics().inc(m_stability_gossip_);
  ctx_.after(gossip_interval_, [this] { gossip_tick(); });
}

void ReliableBroadcast::handle_watermarks(ProcessId from, Decoder& dec) {
  if (!stability_enabled_) return;
  const std::uint64_t n = dec.get_u64();
  std::map<ProcessId, std::uint64_t> marks;
  for (std::uint64_t i = 0; i < n && dec.ok(); ++i) {
    const ProcessId sender = dec.get_i32();
    marks[sender] = dec.get_u64();
  }
  if (!dec.ok()) return;
  peer_watermarks_[from] = std::move(marks);
  recompute_floors();
}

void ReliableBroadcast::recompute_floors() {
  // The floor for sender s = min over all current members' watermark for s
  // (a member that never mentioned s contributes 0). Need a report from
  // every member, ourselves included.
  if (static_cast<int>(peer_watermarks_.size()) + 1 < static_cast<int>(group_.size())) {
    return;  // not enough reports yet (we count for ourselves below)
  }
  for (const auto& [sender, my_upto] : received_upto_) {
    std::uint64_t floor = my_upto;
    bool complete = true;
    for (ProcessId member : group_) {
      if (member == ctx_.self()) continue;
      auto pit = peer_watermarks_.find(member);
      if (pit == peer_watermarks_.end()) {
        complete = false;
        break;
      }
      auto sit = pit->second.find(sender);
      floor = std::min(floor, sit == pit->second.end() ? 0 : sit->second);
    }
    if (!complete || floor == 0) continue;
    auto& current = stable_floor_[sender];
    if (floor <= current) continue;
    current = floor;
    // Prune the dedup set: ids below the floor answer via below_floor().
    // Per-sender index, so this erases exactly the stable prefix.
    auto sit = seen_.find(sender);
    if (sit != seen_.end()) {
      auto& seqs = sit->second;
      auto end = seqs.lower_bound(floor);
      seen_count_ -= static_cast<std::size_t>(std::distance(seqs.begin(), end));
      seqs.erase(seqs.begin(), end);
    }
    ctx_.metrics().inc(m_stability_pruned_);
    for (const auto& fn : stable_fns_) fn(sender, floor);
  }
}

Bytes ReliableBroadcast::stability_snapshot() const {
  Encoder enc;
  enc.put_bool(stability_enabled_);
  enc.put_u64(received_upto_.size());
  for (const auto& [sender, upto] : received_upto_) {
    enc.put_i32(sender);
    enc.put_u64(upto);
  }
  enc.put_u64(stable_floor_.size());
  for (const auto& [sender, floor] : stable_floor_) {
    enc.put_i32(sender);
    enc.put_u64(floor);
  }
  return enc.take();
}

void ReliableBroadcast::restore_stability(BytesView snapshot) {
  Decoder dec(snapshot);
  const bool enabled = dec.get_bool();
  if (!enabled) return;
  const std::uint64_t n_marks = dec.get_u64();
  for (std::uint64_t i = 0; i < n_marks && dec.ok(); ++i) {
    const ProcessId sender = dec.get_i32();
    const std::uint64_t upto = dec.get_u64();
    auto& mine = received_upto_[sender];
    mine = std::max(mine, upto);
    // Drop gap entries now covered by the adopted watermark.
    auto& gaps = received_gaps_[sender];
    gaps.erase(gaps.begin(), gaps.lower_bound(mine));
  }
  const std::uint64_t n_floors = dec.get_u64();
  for (std::uint64_t i = 0; i < n_floors && dec.ok(); ++i) {
    const ProcessId sender = dec.get_i32();
    const std::uint64_t floor = dec.get_u64();
    auto& mine = stable_floor_[sender];
    mine = std::max(mine, floor);
  }
}

std::uint64_t ReliableBroadcast::stable_floor(ProcessId sender) const {
  auto it = stable_floor_.find(sender);
  return it == stable_floor_.end() ? 0 : it->second;
}

}  // namespace gcs
