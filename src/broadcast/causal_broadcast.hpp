/// \file causal_broadcast.hpp
/// Causal-order broadcast (vector clocks), the Isis heritage layer.
///
/// The paper's survey notes (footnote 3) that the Isis stack also offered
/// causal order; this optional component restores that capability on top
/// of the reliable broadcast substrate: if the broadcast of m causally
/// precedes the broadcast of m' (same sender, or m was delivered at m''s
/// sender before m' was broadcast), every process delivers m before m'.
/// Concurrent messages are delivered in any order — cheaper than atomic
/// broadcast (no consensus), stronger than plain reliable broadcast.
///
/// Classic vector-clock algorithm: message m from q carries q's send
/// vector V; m is delivered at p once V[q] == local[q] + 1 and
/// V[k] <= local[k] for all k != q; otherwise it waits in a hold-back
/// queue.
#pragma once

#include <functional>
#include <list>
#include <vector>

#include "broadcast/reliable_broadcast.hpp"
#include "sim/context.hpp"

namespace gcs {

class CausalBroadcast {
 public:
  using DeliverFn = std::function<void(const MsgId& id, const Bytes& payload)>;

  /// \param universe_size vector clock width (process ids 0..n-1).
  CausalBroadcast(sim::Context& ctx, ReliableBroadcast& rbcast, int universe_size);

  /// The delivering group (forwarded to the underlying rbcast).
  void set_group(std::vector<ProcessId> group) { rbcast_.set_group(std::move(group)); }

  /// Causally ordered broadcast.
  MsgId cbcast(Bytes payload);

  void on_deliver(DeliverFn fn) { deliver_fns_.push_back(std::move(fn)); }

  /// This process's current delivery vector (testing/introspection).
  const std::vector<std::uint64_t>& vector_clock() const { return delivered_; }
  std::size_t holdback_size() const { return holdback_.size(); }

 private:
  struct Held {
    MsgId id;
    std::vector<std::uint64_t> vc;
    Bytes payload;
  };

  void on_rdeliver(const MsgId& id, BytesView wire);
  bool deliverable(const Held& m) const;
  void drain();

  sim::Context& ctx_;
  ReliableBroadcast& rbcast_;
  std::vector<std::uint64_t> sent_;       // our send vector
  std::vector<std::uint64_t> delivered_;  // per-sender delivered counts
  std::list<Held> holdback_;
  std::vector<DeliverFn> deliver_fns_;
};

}  // namespace gcs
