#include "broadcast/proposal.hpp"

namespace gcs {

void BatchProposal::encode(Encoder& enc) const {
  enc.put_byte(static_cast<std::uint8_t>(format));
  enc.put_u64(entries.size());
  for (const ProposalEntry& e : entries) {
    enc.put_msgid(e.id);
    enc.put_byte(e.subtag);
    if (format == WireFormat::kLegacy) enc.put_bytes(e.payload);
  }
}

BatchProposal BatchProposal::decode(Decoder& dec) {
  BatchProposal batch;
  const std::uint8_t fmt = dec.get_byte();
  if (fmt > static_cast<std::uint8_t>(WireFormat::kLegacy)) {
    dec.invalidate();
    return batch;
  }
  batch.format = static_cast<WireFormat>(fmt);
  const std::uint64_t count = dec.get_u64();
  // Hostile-length guard: every entry costs at least 3 wire bytes.
  if (count > dec.remaining()) {
    dec.invalidate();
    return batch;
  }
  batch.entries.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count && dec.ok(); ++i) {
    ProposalEntry e;
    e.id = dec.get_msgid();
    e.subtag = dec.get_byte();
    if (batch.format == WireFormat::kLegacy) e.payload = dec.get_bytes();
    batch.entries.push_back(std::move(e));
  }
  if (!dec.ok()) batch.entries.clear();
  return batch;
}

}  // namespace gcs
