#include "broadcast/atomic_broadcast.hpp"

#include <algorithm>
#include <cassert>

#include "util/codec.hpp"

namespace gcs {

AtomicBroadcast::AtomicBroadcast(sim::Context& ctx, ReliableBroadcast& rbcast,
                                 ConsensusProtocol& consensus)
    : ctx_(ctx), rbcast_(rbcast), consensus_(consensus),
      m_broadcasts_(metric_id("abcast.broadcasts")),
      m_delivered_(metric_id("abcast.delivered")),
      h_order_latency_(metric_id("abcast.order_latency_us")), subscribers_(8) {
  rbcast_.on_deliver([this](const MsgId& id, const Bytes& b) { on_rdeliver(id, b); });
  consensus_.on_decide([this](std::uint64_t k, const Bytes& v) { on_decide(k, v); });
  // Garbage collection: once a message is stable (received by every
  // member), the rbcast below suppresses any late relay of it, so our
  // dedup entry can go. See reliable_broadcast.hpp for the floor protocol.
  rbcast_.on_stable([this](ProcessId sender, std::uint64_t upto) {
    for (auto it = adelivered_.begin(); it != adelivered_.end();) {
      it = (it->sender == sender && it->seq < upto) ? adelivered_.erase(it) : ++it;
    }
  });
}

void AtomicBroadcast::init(std::vector<ProcessId> members, std::uint64_t first_instance) {
  assert(!members.empty());
  members_ = std::move(members);
  next_instance_ = first_instance;
  initialized_ = true;
  rbcast_.set_group(members_);
}

bool AtomicBroadcast::is_member() const {
  return std::find(members_.begin(), members_.end(), ctx_.self()) != members_.end();
}

MsgId AtomicBroadcast::abcast(SubTag subtag, Bytes payload) {
  assert(initialized_);
  Encoder enc;
  enc.put_byte(subtag);
  enc.put_bytes(payload);
  ctx_.metrics().inc(m_broadcasts_);
  const MsgId id = rbcast_.broadcast(enc.take());
  ctx_.trace_instant(obs::Names::get().abcast_submit, id, subtag);
  if (observe_submit_) observe_submit_(id, subtag);
  return id;
}

void AtomicBroadcast::subscribe(SubTag subtag, DeliverFn fn) {
  if (subtag >= subscribers_.size()) subscribers_.resize(subtag + 1);
  subscribers_[subtag].push_back(std::move(fn));
}

void AtomicBroadcast::set_members(std::vector<ProcessId> members) {
  assert(!members.empty());
  members_ = std::move(members);
  rbcast_.set_group(members_);
}

Bytes AtomicBroadcast::snapshot() const {
  Encoder enc;
  enc.put_vector(members_, [](Encoder& e, ProcessId p) { e.put_i32(p); });
  enc.put_u64(next_instance_);
  enc.put_u64(adelivered_.size());
  for (const MsgId& id : adelivered_) enc.put_msgid(id);
  enc.put_bytes(rbcast_.stability_snapshot());
  return enc.take();
}

void AtomicBroadcast::restore(const Bytes& snapshot) {
  Decoder dec(snapshot);
  auto members = dec.get_vector<ProcessId>([](Decoder& d) { return d.get_i32(); });
  const std::uint64_t next = dec.get_u64();
  const std::uint64_t count = dec.get_u64();
  std::unordered_set<MsgId> delivered;
  for (std::uint64_t i = 0; i < count && dec.ok(); ++i) delivered.insert(dec.get_msgid());
  const Bytes stability = dec.get_bytes();
  if (!dec.ok()) return;
  rbcast_.restore_stability(stability);
  members_ = std::move(members);
  next_instance_ = next;
  adelivered_ = std::move(delivered);
  // Discard anything learned while not a member: old pending messages are
  // either already delivered (covered by adelivered_) or will reappear in
  // future decisions with payloads.
  for (auto it = pending_.begin(); it != pending_.end();) {
    it = adelivered_.count(it->first) ? pending_.erase(it) : ++it;
  }
  decision_buffer_.erase(decision_buffer_.begin(),
                         decision_buffer_.lower_bound(next_instance_));
  initialized_ = true;
  instance_running_ = false;
  rbcast_.set_group(members_);
  try_start_instance();
}

void AtomicBroadcast::on_rdeliver(const MsgId& id, const Bytes& payload) {
  if (adelivered_.count(id)) return;
  Decoder dec(payload);
  const SubTag subtag = dec.get_byte();
  Bytes body = dec.get_bytes();
  if (!dec.ok()) return;
  pending_.emplace(id, Pending{subtag, std::move(body), ctx_.now()});
  ctx_.trace_begin(obs::Names::get().abcast_pending, id, subtag);
  try_start_instance();
}

void AtomicBroadcast::try_start_instance() {
  if (!initialized_ || instance_running_ || pending_.empty() || !is_member()) return;
  instance_running_ = true;
  // Propose the whole pending batch: (id, subtag, payload) triples in MsgId
  // order. Payloads ride inside the proposal so that a process that missed
  // the rbcast can still deliver from the decision alone.
  Encoder enc;
  enc.put_u64(pending_.size());
  for (const auto& [id, msg] : pending_) {
    enc.put_msgid(id);
    enc.put_byte(msg.subtag);
    enc.put_bytes(msg.payload);
  }
  consensus_.propose(next_instance_, enc.take(), members_);
}

void AtomicBroadcast::on_decide(std::uint64_t k, const Bytes& value) {
  if (k >= next_instance_) decision_buffer_.emplace(k, value);
  // Drop any stale decisions (re-delivered duplicates) so they cannot block
  // the in-order processing loop below.
  decision_buffer_.erase(decision_buffer_.begin(),
                         decision_buffer_.lower_bound(next_instance_));
  // Process decisions strictly in instance order.
  while (!decision_buffer_.empty() && decision_buffer_.begin()->first == next_instance_) {
    auto node = decision_buffer_.extract(decision_buffer_.begin());
    const Bytes& batch = node.mapped();
    Decoder dec(batch);
    const std::uint64_t count = dec.get_u64();
    struct Entry {
      MsgId id;
      SubTag subtag;
      Bytes payload;
    };
    std::vector<Entry> entries;
    entries.reserve(static_cast<std::size_t>(count));
    for (std::uint64_t i = 0; i < count && dec.ok(); ++i) {
      Entry e;
      e.id = dec.get_msgid();
      e.subtag = dec.get_byte();
      e.payload = dec.get_bytes();
      entries.push_back(std::move(e));
    }
    if (!dec.ok()) entries.clear();  // corrupt decision: deliver nothing
    // The proposer already ordered by MsgId (std::map iteration), but sort
    // defensively so the delivery order never depends on the proposer.
    std::sort(entries.begin(), entries.end(),
              [](const Entry& a, const Entry& b) { return a.id < b.id; });
    const std::uint64_t instance = next_instance_;
    ++next_instance_;
    instance_running_ = false;
    for (std::size_t idx = 0; idx < entries.size(); ++idx) {
      const Entry& e = entries[idx];
      if (!adelivered_.insert(e.id).second) continue;  // already ordered
      if (auto pit = pending_.find(e.id); pit != pending_.end()) {
        ctx_.metrics().observe(h_order_latency_, ctx_.now() - pit->second.since);
        ctx_.trace_end(obs::Names::get().abcast_pending, e.id);
        pending_.erase(pit);
      }
      ++delivered_count_;
      ctx_.metrics().inc(m_delivered_);
      ctx_.trace_instant(obs::Names::get().abcast_deliver, e.id, e.subtag);
      if (observe_deliver_) {
        observe_deliver_(e.id, e.subtag, instance, static_cast<std::uint32_t>(idx));
      }
      if (e.subtag < subscribers_.size()) {
        for (const auto& fn : subscribers_[e.subtag]) fn(e.id, e.payload);
      }
    }
  }
  // Old decision values are dead weight; keep a small tail for stragglers'
  // DECIDE echoes, then let consensus forget them.
  if (next_instance_ > 16) consensus_.forget_below(next_instance_ - 16);
  try_start_instance();
}

}  // namespace gcs
