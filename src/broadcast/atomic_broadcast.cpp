#include "broadcast/atomic_broadcast.hpp"

#include <algorithm>
#include <cassert>

#include "util/codec.hpp"

namespace gcs {

namespace {
// Tag::kAbcast channel messages (the payload-pull fallback).
constexpr std::uint8_t kPull = 0;  ///< request: ids whose payloads are missing
constexpr std::uint8_t kPush = 1;  ///< response: (id, subtag, payload) entries
}  // namespace

AtomicBroadcast::AtomicBroadcast(sim::Context& ctx, ReliableBroadcast& rbcast,
                                 ConsensusProtocol& consensus, ReliableChannel* channel)
    : AtomicBroadcast(ctx, rbcast, consensus, channel, Config{}) {}

AtomicBroadcast::AtomicBroadcast(sim::Context& ctx, ReliableBroadcast& rbcast,
                                 ConsensusProtocol& consensus, ReliableChannel* channel,
                                 Config config)
    : ctx_(ctx), rbcast_(rbcast), consensus_(consensus), channel_(channel), config_(config),
      m_broadcasts_(metric_id("abcast.broadcasts")),
      m_delivered_(metric_id("abcast.delivered")),
      m_pull_requests_(metric_id("abcast.pull_requests")),
      m_pull_served_(metric_id("abcast.pull_served")),
      m_pushes_(metric_id("abcast.pushes")),
      h_order_latency_(metric_id("abcast.order_latency_us")), subscribers_(8) {
  rbcast_.on_deliver([this](const MsgId& id, BytesView b) { on_rdeliver(id, b); });
  consensus_.on_decide([this](std::uint64_t k, const Bytes& v) { on_decide(k, v); });
  if (channel_) {
    channel_->subscribe(Tag::kAbcast,
                        [this](ProcessId from, BytesView b) { on_channel_message(from, b); });
  }
  // Garbage collection: once a message is stable (received by every
  // member), the rbcast below suppresses any late relay of it, so our
  // dedup entry can go. The per-sender index makes each event O(stable
  // prefix) — erase a contiguous seq range — instead of a scan of every
  // id ever adelivered. Payloads in store_ are NOT pruned here: a stable
  // message may still be awaiting its ordering decision, so the store is
  // tail-GC'd by delivery instance instead (see process_decisions).
  rbcast_.on_stable([this](ProcessId sender, std::uint64_t upto) {
    ++gc_steps_;
    auto it = adelivered_.find(sender);
    if (it == adelivered_.end()) return;
    auto& seqs = it->second;
    const auto end = seqs.lower_bound(upto);
    gc_steps_ += static_cast<std::uint64_t>(std::distance(seqs.begin(), end));
    seqs.erase(seqs.begin(), end);
  });
}

void AtomicBroadcast::init(std::vector<ProcessId> members, std::uint64_t first_instance) {
  assert(!members.empty());
  members_ = std::move(members);
  next_instance_ = first_instance;
  initialized_ = true;
  rbcast_.set_group(members_);
}

bool AtomicBroadcast::is_member() const {
  return std::find(members_.begin(), members_.end(), ctx_.self()) != members_.end();
}

bool AtomicBroadcast::is_adelivered(const MsgId& id) const {
  auto it = adelivered_.find(id.sender);
  return it != adelivered_.end() && it->second.count(id.seq) > 0;
}

bool AtomicBroadcast::mark_adelivered(const MsgId& id) {
  return adelivered_[id.sender].insert(id.seq).second;
}

MsgId AtomicBroadcast::abcast(SubTag subtag, Payload payload) {
  assert(initialized_);
  std::shared_ptr<Bytes> wire = ctx_.pool().acquire();
  Encoder enc(*wire);
  enc.put_byte(subtag);
  enc.put_bytes(payload.bytes());
  ctx_.metrics().inc(m_broadcasts_);
  const MsgId id =
      rbcast_.broadcast(Payload(std::shared_ptr<const Bytes>(std::move(wire))));
  ctx_.trace_instant(obs::Names::get().abcast_submit, id, subtag);
  if (observe_submit_) observe_submit_(id, subtag);
  return id;
}

void AtomicBroadcast::subscribe(SubTag subtag, DeliverFn fn) {
  if (subtag >= subscribers_.size()) subscribers_.resize(subtag + 1);
  subscribers_[subtag].push_back(std::move(fn));
}

void AtomicBroadcast::set_members(std::vector<ProcessId> members) {
  assert(!members.empty());
  members_ = std::move(members);
  rbcast_.set_group(members_);
}

Bytes AtomicBroadcast::snapshot() const {
  Encoder enc;
  enc.put_vector(members_, [](Encoder& e, ProcessId p) { e.put_i32(p); });
  enc.put_u64(next_instance_);
  std::uint64_t count = 0;
  for (const auto& [sender, seqs] : adelivered_) count += seqs.size();
  enc.put_u64(count);
  for (const auto& [sender, seqs] : adelivered_) {
    for (const std::uint64_t seq : seqs) enc.put_msgid(MsgId{sender, seq});
  }
  enc.put_bytes(rbcast_.stability_snapshot());
  return enc.take();
}

void AtomicBroadcast::restore(BytesView snapshot) {
  Decoder dec(snapshot);
  auto members = dec.get_vector<ProcessId>([](Decoder& d) { return d.get_i32(); });
  const std::uint64_t next = dec.get_u64();
  const std::uint64_t count = dec.get_u64();
  std::map<ProcessId, std::set<std::uint64_t>> delivered;
  for (std::uint64_t i = 0; i < count && dec.ok(); ++i) {
    const MsgId id = dec.get_msgid();
    delivered[id.sender].insert(id.seq);
  }
  const BytesView stability = dec.get_view();
  if (!dec.ok()) return;
  rbcast_.restore_stability(stability);
  members_ = std::move(members);
  next_instance_ = next;
  adelivered_ = std::move(delivered);
  // Discard anything learned while not a member: old pending messages are
  // either already delivered (covered by adelivered_) or will reappear in
  // future decisions, with payloads resolved via the store or a pull.
  for (auto it = pending_.begin(); it != pending_.end();) {
    it = is_adelivered(it->first) ? pending_.erase(it) : ++it;
  }
  decision_buffer_.erase(decision_buffer_.begin(),
                         decision_buffer_.lower_bound(next_instance_));
  missing_.clear();
  initialized_ = true;
  instance_running_ = false;
  rbcast_.set_group(members_);
  try_start_instance();
}

void AtomicBroadcast::on_rdeliver(const MsgId& id, BytesView payload) {
  if (is_adelivered(id)) return;
  Decoder dec(payload);
  const SubTag subtag = dec.get_byte();
  const BytesView body = dec.get_view();
  if (!dec.ok()) return;
  if (store_.find(id) == store_.end()) store_.emplace(id, Stored{subtag, to_bytes(body)});
  if (pending_.find(id) == pending_.end()) {
    pending_.emplace(id, PendingMeta{subtag, ctx_.now()});
    ctx_.trace_begin(obs::Names::get().abcast_pending, id, subtag);
  }
  resolve_missing(id);
  try_start_instance();
}

void AtomicBroadcast::try_start_instance() {
  if (!initialized_ || instance_running_ || pending_.empty() || !is_member()) return;
  instance_running_ = true;
  // Propose the whole pending batch in MsgId order. Under the slim format
  // the proposal is (id, subtag) tuples — O(batch · ~16B) regardless of
  // payload size; payloads are resolved at delivery from store_.
  BatchProposal prop;
  prop.format = config_.wire_format;
  prop.entries.reserve(pending_.size());
  for (const auto& [id, meta] : pending_) {
    ProposalEntry e;
    e.id = id;
    e.subtag = meta.subtag;
    if (prop.format == WireFormat::kLegacy) {
      auto sit = store_.find(id);
      if (sit != store_.end()) e.payload = sit->second.payload;
    }
    prop.entries.push_back(std::move(e));
  }
  Encoder enc;
  prop.encode(enc);
  consensus_.propose(next_instance_, enc.take(), members_);
}

void AtomicBroadcast::on_decide(std::uint64_t k, const Bytes& value) {
  if (k >= next_instance_) decision_buffer_.emplace(k, value);
  process_decisions();
}

void AtomicBroadcast::process_decisions() {
  // Drop any stale decisions (re-delivered duplicates) so they cannot block
  // the in-order processing loop below.
  decision_buffer_.erase(decision_buffer_.begin(),
                         decision_buffer_.lower_bound(next_instance_));
  // Process decisions strictly in instance order.
  while (!decision_buffer_.empty() && decision_buffer_.begin()->first == next_instance_) {
    // Peek — the head decision stays buffered while payloads are missing.
    Decoder dec(decision_buffer_.begin()->second);
    BatchProposal prop = BatchProposal::decode(dec);
    if (!dec.ok()) prop.entries.clear();  // corrupt decision: deliver nothing
    if (prop.format == WireFormat::kSlim) {
      missing_.clear();
      for (const ProposalEntry& e : prop.entries) {
        if (!is_adelivered(e.id) && store_.find(e.id) == store_.end()) {
          missing_.insert(e.id);
        }
      }
      if (!missing_.empty()) {
        // Stall this instance (later ones queue behind it, preserving total
        // order) and fetch the payload bytes from a peer.
        request_pull();
        return;
      }
    }
    decision_buffer_.erase(decision_buffer_.begin());
    // The proposer already ordered by MsgId (std::map iteration), but sort
    // defensively so the delivery order never depends on the proposer.
    std::sort(prop.entries.begin(), prop.entries.end(),
              [](const ProposalEntry& a, const ProposalEntry& b) { return a.id < b.id; });
    const std::uint64_t instance = next_instance_;
    ++next_instance_;
    instance_running_ = false;
    for (std::size_t idx = 0; idx < prop.entries.size(); ++idx) {
      const ProposalEntry& e = prop.entries[idx];
      if (!mark_adelivered(e.id)) continue;  // already ordered
      if (auto pit = pending_.find(e.id); pit != pending_.end()) {
        ctx_.metrics().observe(h_order_latency_, ctx_.now() - pit->second.since);
        ctx_.trace_end(obs::Names::get().abcast_pending, e.id);
        pending_.erase(pit);
      }
      ++delivered_count_;
      ctx_.metrics().inc(m_delivered_);
      ctx_.trace_instant(obs::Names::get().abcast_deliver, e.id, e.subtag);
      if (observe_deliver_) {
        observe_deliver_(e.id, e.subtag, instance, static_cast<std::uint32_t>(idx));
      }
      if (e.subtag < subscribers_.size()) {
        if (prop.format == WireFormat::kLegacy) {
          for (const auto& fn : subscribers_[e.subtag]) fn(e.id, e.payload);
        } else {
          // Present by the stall check above; stays alive until tail GC.
          const Bytes& payload = store_.at(e.id).payload;
          for (const auto& fn : subscribers_[e.subtag]) fn(e.id, payload);
        }
      }
      delivered_log_.emplace_back(instance, e.id);
    }
    // Tail GC: payloads of long-delivered messages have served every
    // straggler that could still want them; drop them from the store.
    while (!delivered_log_.empty() &&
           delivered_log_.front().first + kPayloadRetainInstances < next_instance_) {
      store_.erase(delivered_log_.front().second);
      delivered_log_.pop_front();
    }
  }
  // Old decision values are dead weight; keep a small tail for stragglers'
  // DECIDE echoes, then let consensus forget them.
  if (next_instance_ > 16) consensus_.forget_below(next_instance_ - 16);
  try_start_instance();
}

void AtomicBroadcast::request_pull() {
  if (missing_.empty() || channel_ == nullptr) return;
  // Rotate targets so one slow/crashed peer cannot stall the pull forever;
  // rbcast uniformity guarantees some correct member holds the payload.
  ProcessId target = kNoProcess;
  for (std::size_t step = 0; step < members_.size(); ++step) {
    const ProcessId candidate = members_[pull_rr_++ % members_.size()];
    if (candidate != ctx_.self()) {
      target = candidate;
      break;
    }
  }
  if (target == kNoProcess) return;  // singleton group: nothing to pull from
  std::shared_ptr<Bytes> wire = ctx_.pool().acquire();
  Encoder enc(*wire);
  enc.put_byte(kPull);
  enc.put_u64(missing_.size());
  for (const MsgId& id : missing_) enc.put_msgid(id);
  channel_->send(target, Tag::kAbcast, Payload(std::shared_ptr<const Bytes>(std::move(wire))));
  ctx_.metrics().inc(m_pull_requests_);
  if (!pull_timer_armed_) {
    pull_timer_armed_ = true;
    ctx_.after(config_.pull_retry, [this] {
      pull_timer_armed_ = false;
      request_pull();
    });
  }
}

void AtomicBroadcast::resolve_missing(const MsgId& id) {
  if (missing_.erase(id) > 0 && missing_.empty()) process_decisions();
}

void AtomicBroadcast::on_channel_message(ProcessId from, BytesView payload) {
  Decoder dec(payload);
  const std::uint8_t kind = dec.get_byte();
  if (kind == kPull) {
    const std::uint64_t n = dec.get_u64();
    if (!dec.ok() || n > dec.remaining()) return;
    // The entry count is only known after the store scan, and varints have
    // no fixed width to patch, so entries are framed as one inner blob.
    Encoder entries_enc;
    std::uint64_t found = 0;
    for (std::uint64_t i = 0; i < n && dec.ok(); ++i) {
      const MsgId id = dec.get_msgid();
      auto sit = store_.find(id);
      if (sit == store_.end()) continue;
      entries_enc.put_msgid(id);
      entries_enc.put_byte(sit->second.subtag);
      entries_enc.put_bytes(sit->second.payload);
      ++found;
    }
    if (!dec.ok() || found == 0) return;
    std::shared_ptr<Bytes> wire = ctx_.pool().acquire();
    Encoder out(*wire);
    out.put_byte(kPush);
    out.put_u64(found);
    out.put_bytes(entries_enc.bytes());
    channel_->send(from, Tag::kAbcast, Payload(std::shared_ptr<const Bytes>(std::move(wire))));
    ctx_.metrics().inc(m_pull_served_, static_cast<std::int64_t>(found));
    return;
  }
  if (kind != kPush) return;
  const std::uint64_t n = dec.get_u64();
  if (!dec.ok() || n > dec.remaining()) return;
  Decoder entries(dec.get_view());
  bool resolved_any = false;
  for (std::uint64_t i = 0; i < n && entries.ok(); ++i) {
    const MsgId id = entries.get_msgid();
    const SubTag subtag = entries.get_byte();
    const BytesView body = entries.get_view();
    if (!entries.ok()) break;
    ctx_.metrics().inc(m_pushes_);
    if (is_adelivered(id) || store_.find(id) != store_.end()) continue;
    store_.emplace(id, Stored{subtag, to_bytes(body)});
    if (missing_.erase(id) > 0) resolved_any = true;
  }
  if (resolved_any && missing_.empty()) process_decisions();
}

}  // namespace gcs
