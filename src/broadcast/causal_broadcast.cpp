#include "broadcast/causal_broadcast.hpp"

#include <cassert>

#include "util/codec.hpp"

namespace gcs {

CausalBroadcast::CausalBroadcast(sim::Context& ctx, ReliableBroadcast& rbcast,
                                 int universe_size)
    : ctx_(ctx), rbcast_(rbcast),
      sent_(static_cast<std::size_t>(universe_size), 0),
      delivered_(static_cast<std::size_t>(universe_size), 0) {
  rbcast_.on_deliver([this](const MsgId& id, BytesView b) { on_rdeliver(id, b); });
}

MsgId CausalBroadcast::cbcast(Bytes payload) {
  const auto self = static_cast<std::size_t>(ctx_.self());
  assert(self < sent_.size());
  ++sent_[self];
  Encoder enc;
  enc.put_u64(sent_.size());
  for (std::uint64_t v : sent_) enc.put_u64(v);
  enc.put_bytes(payload);
  ctx_.metrics().inc("cbcast.broadcasts");
  return rbcast_.broadcast(enc.take());
}

void CausalBroadcast::on_rdeliver(const MsgId& id, BytesView wire) {
  Decoder dec(wire);
  const std::uint64_t n = dec.get_u64();
  if (n != delivered_.size()) return;  // wrong universe: drop
  Held held;
  held.id = id;
  held.vc.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t i = 0; i < n && dec.ok(); ++i) held.vc.push_back(dec.get_u64());
  held.payload = dec.get_bytes();
  if (!dec.ok()) return;
  holdback_.push_back(std::move(held));
  drain();
}

bool CausalBroadcast::deliverable(const Held& m) const {
  const auto sender = static_cast<std::size_t>(m.id.sender);
  if (sender >= delivered_.size()) return false;
  if (m.vc[sender] != delivered_[sender] + 1) return false;
  for (std::size_t k = 0; k < delivered_.size(); ++k) {
    if (k == sender) continue;
    if (m.vc[k] > delivered_[k]) return false;
  }
  return true;
}

void CausalBroadcast::drain() {
  bool progressed = true;
  while (progressed) {
    progressed = false;
    for (auto it = holdback_.begin(); it != holdback_.end(); ++it) {
      if (!deliverable(*it)) continue;
      Held m = std::move(*it);
      holdback_.erase(it);
      const auto sender = static_cast<std::size_t>(m.id.sender);
      delivered_[sender] = m.vc[sender];
      // Receiving causally fresh information also advances our send vector
      // so our NEXT broadcast is ordered after everything we delivered.
      for (std::size_t k = 0; k < sent_.size(); ++k) {
        if (k != static_cast<std::size_t>(ctx_.self())) {
          sent_[k] = std::max(sent_[k], m.vc[k]);
        }
      }
      ctx_.metrics().inc("cbcast.delivered");
      for (const auto& fn : deliver_fns_) fn(m.id, m.payload);
      progressed = true;
      break;  // restart: the erase invalidated the iterator
    }
  }
}

}  // namespace gcs
