/// \file reliable_broadcast.hpp
/// Uniform reliable broadcast over reliable channels, with optional
/// stability tracking and garbage collection.
///
/// Eager flooding: on first receipt of a message every process relays it to
/// the whole group before delivering. With reliable channels and crash-stop
/// faults this yields *uniform* agreement: if any process delivers m, every
/// correct group member delivers m.
///
/// Stability (the role of Ensemble's `stable` component, paper Fig 5): a
/// message is *stable* once every group member has received it. Members
/// periodically gossip per-sender contiguous receive watermarks; the
/// group-wide minimum is the stability floor. Everything at or below the
/// floor can be forgotten: the duplicate check for old ids becomes a seq
/// comparison instead of a set lookup, so dedup memory stays bounded on
/// long runs. Upper layers subscribe to on_stable() to prune their own
/// dedup state. A crashed member freezes the floor until the membership
/// excludes it — one more reason exclusions matter (paper §3.3.2).
#pragma once

#include <functional>
#include <map>
#include <set>
#include <vector>

#include "channel/reliable_channel.hpp"
#include "util/codec.hpp"
#include "sim/context.hpp"

namespace gcs {

class ReliableBroadcast {
 public:
  /// Delivery hands a view of the payload valid only for the call; layers
  /// that keep the bytes copy them into their own stores.
  using DeliverFn = std::function<void(const MsgId& id, BytesView payload)>;
  /// Everything from \p sender with seq <= \p upto is stable group-wide.
  using StableFn = std::function<void(ProcessId sender, std::uint64_t upto)>;

  /// \param tag distinct wire tag per instance, so independent rbcast
  ///            streams (e.g. atomic broadcast's vs generic broadcast's)
  ///            do not interfere.
  ReliableBroadcast(sim::Context& ctx, ReliableChannel& channel, Tag tag);

  /// The relay/destination group. Updated by the membership layer when
  /// views change; joiners receive the current state by state transfer
  /// rather than by replaying old broadcasts.
  void set_group(std::vector<ProcessId> group);
  const std::vector<ProcessId>& group() const { return group_; }

  /// Broadcast \p payload; returns the id assigned to the message.
  MsgId broadcast(Payload payload);

  /// Broadcast under a caller-chosen id (id.sender must be self; seq must
  /// be fresh). Lets upper layers correlate their own identifiers.
  void broadcast_with_id(const MsgId& id, const Payload& payload);

  /// ABLATION ONLY: skip the receiver-side relay ("lazy" broadcast).
  /// Cheaper — O(n) messages instead of O(n^2) — and NOT uniform: if the
  /// sender crashes while some of its datagrams are lost, the receivers
  /// that did get the message deliver it while correct processes never
  /// will. tests/uniformity_test.cpp demonstrates the violation.
  void unsafe_set_non_uniform(bool on) { non_uniform_ = on; }

  void on_deliver(DeliverFn fn) { deliver_fns_.push_back(std::move(fn)); }

  /// -- stability / garbage collection ----------------------------------

  /// Start gossiping watermarks every \p interval and pruning dedup state
  /// as the floor advances. Off by default (bounded runs don't need it).
  void enable_stability(Duration interval);

  /// Fired whenever the stability floor advances for a sender; upper
  /// layers prune their dedup state for (sender, <= upto).
  void on_stable(StableFn fn) { stable_fns_.push_back(std::move(fn)); }

  /// Current stability floor for \p sender (0 = nothing known stable;
  /// floors are "number of stable messages", i.e. seqs < floor are stable).
  std::uint64_t stable_floor(ProcessId sender) const;

  /// Dedup-set size (tests assert boundedness; probe gauge).
  std::size_t dedup_size() const { return seen_count_; }

  /// Oracle taps: message origination (the local broadcast call actually
  /// admitting a fresh id) and local rdelivery. The wiring layer closes
  /// over this instance's wire tag, so the callbacks carry only the id.
  using Observer = std::function<void(const MsgId&)>;
  void set_observer(Observer on_broadcast, Observer on_deliver) {
    observe_broadcast_ = std::move(on_broadcast);
    observe_deliver_ = std::move(on_deliver);
  }

  /// Joiner state transfer: the donor's receive watermarks. A joiner
  /// adopting them reports the donor's reception state in its gossip (its
  /// application snapshot covers the effects of those messages), keeping
  /// the group's stability floors moving after the join.
  Bytes stability_snapshot() const;
  void restore_stability(BytesView snapshot);

 private:
  void on_message(ProcessId from, BytesView payload);
  void handle_data(BytesView wire);
  bool mark_seen(const MsgId& id);  // false if already seen
  void handle_watermarks(ProcessId from, Decoder& dec);
  void note_received(const MsgId& id);
  void gossip_tick();
  void recompute_floors();
  bool below_floor(const MsgId& id) const;

  sim::Context& ctx_;
  ReliableChannel& channel_;
  Tag tag_;
  MetricId m_broadcasts_;
  MetricId m_delivered_;
  MetricId m_stability_gossip_;
  MetricId m_stability_pruned_;
  std::vector<ProcessId> group_;
  std::uint64_t next_seq_ = 0;
  // Dedup set indexed per sender so stability GC erases a contiguous
  // per-sender prefix instead of scanning every id ever seen.
  std::map<ProcessId, std::set<std::uint64_t>> seen_;
  std::size_t seen_count_ = 0;
  std::vector<DeliverFn> deliver_fns_;
  Observer observe_broadcast_;
  Observer observe_deliver_;
  bool non_uniform_ = false;

  // Stability state.
  bool stability_enabled_ = false;
  Duration gossip_interval_ = 0;
  // Contiguous receive watermark per sender: we have all seqs < upto.
  std::map<ProcessId, std::uint64_t> received_upto_;
  std::map<ProcessId, std::set<std::uint64_t>> received_gaps_;  // seqs >= upto
  // Latest watermark vector reported by each peer.
  std::map<ProcessId, std::map<ProcessId, std::uint64_t>> peer_watermarks_;
  // Group-wide minimum: seqs < floor are stable and forgotten.
  std::map<ProcessId, std::uint64_t> stable_floor_;
  std::vector<StableFn> stable_fns_;
};

}  // namespace gcs
