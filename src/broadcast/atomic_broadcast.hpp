/// \file atomic_broadcast.hpp
/// Atomic (total order) broadcast by reduction to consensus [Chandra–Toueg].
///
/// This is the paper's basic ordering component (Fig 6/7/9): it does NOT
/// rely on a group membership service — it runs on ◇S consensus, so false
/// suspicions never block or reconfigure it. The reduction:
///
///   abcast(m):  rbcast m to the group.
///   ordering:   each process batches rdelivered-but-unordered messages and
///               proposes the batch as consensus instance k; the decision of
///               instance k is a batch, delivered in deterministic (MsgId)
///               order; then k+1 starts if work remains.
///
/// Dynamic membership (the membership layer lives ABOVE this component):
/// view changes arrive as ordinary adelivered messages; set_members() takes
/// effect for instances started after the current decision, so every member
/// agrees on the member set of every instance.
///
/// Messages carry a one-byte SubTag so several upper layers (application,
/// membership, generic broadcast) share one total order — the essence of
/// "the ordering problem is solved in exactly one place" (§4.1).
#pragma once

#include <functional>
#include <map>
#include <unordered_set>
#include <vector>

#include "broadcast/reliable_broadcast.hpp"
#include "consensus/consensus.hpp"
#include "consensus/consensus_protocol.hpp"
#include "sim/context.hpp"

namespace gcs {

class AtomicBroadcast {
 public:
  /// Upper-layer multiplexing within the single total order.
  using SubTag = std::uint8_t;
  static constexpr SubTag kApp = 0;         ///< application payloads
  static constexpr SubTag kViewChange = 1;  ///< membership view changes
  static constexpr SubTag kGbResolve = 2;   ///< generic broadcast resolution

  using DeliverFn = std::function<void(const MsgId& id, const Bytes& payload)>;

  AtomicBroadcast(sim::Context& ctx, ReliableBroadcast& rbcast, ConsensusProtocol& consensus);

  /// Install the initial view (Fig 9: init_view). Must be identical at all
  /// initial members. \p first_instance > 0 is used by joiners after state
  /// transfer.
  void init(std::vector<ProcessId> members, std::uint64_t first_instance = 0);

  /// Atomically broadcast \p payload for layer \p subtag. Returns the
  /// message id (also passed to the delivery callback).
  MsgId abcast(SubTag subtag, Bytes payload);

  /// Total-order delivery for one subtag. Deliveries across subtags are
  /// interleaved in the single total order.
  void subscribe(SubTag subtag, DeliverFn fn);

  /// Change the member set, effective from the next consensus instance.
  /// Called by the membership layer inside a kViewChange delivery.
  void set_members(std::vector<ProcessId> members);
  const std::vector<ProcessId>& members() const { return members_; }
  bool is_member() const;

  /// Next consensus instance number (== number of decided batches). Part of
  /// the state-transfer snapshot for joiners.
  std::uint64_t next_instance() const { return next_instance_; }

  /// Serialize the ordering state a joiner needs: member set, next
  /// instance, and the ids already delivered (so relayed copies of old
  /// messages are not re-ordered). Taken at a view-change adelivery point,
  /// where it is identical at every member.
  Bytes snapshot() const;

  /// Install a snapshot (joiner side). Replaces init().
  void restore(const Bytes& snapshot);

  /// Number of messages adelivered locally.
  std::uint64_t delivered_count() const { return delivered_count_; }

  /// Messages rdelivered but not yet ordered (probe gauge).
  std::size_t pending_count() const { return pending_.size(); }

  /// Oracle taps. The delivery observer reports the global total-order
  /// coordinate of each adelivery: consensus instance k plus the message's
  /// index within the decided batch (position in the MsgId-sorted decision
  /// value, which is identical at every process by consensus agreement —
  /// including entries a process skips as already delivered, so the
  /// coordinate never depends on local dedup state).
  using SubmitObserver = std::function<void(const MsgId&, SubTag)>;
  using DeliverObserver =
      std::function<void(const MsgId&, SubTag, std::uint64_t instance, std::uint32_t index)>;
  void set_observer(SubmitObserver on_submit, DeliverObserver on_deliver) {
    observe_submit_ = std::move(on_submit);
    observe_deliver_ = std::move(on_deliver);
  }

 private:
  struct Pending {
    SubTag subtag;
    Bytes payload;
    TimePoint since = 0;  // when rdelivered locally (order-latency metric)
  };

  void on_rdeliver(const MsgId& id, const Bytes& payload);
  void on_decide(std::uint64_t k, const Bytes& value);
  void try_start_instance();

  sim::Context& ctx_;
  ReliableBroadcast& rbcast_;
  ConsensusProtocol& consensus_;
  MetricId m_broadcasts_;
  MetricId m_delivered_;
  MetricId h_order_latency_;  ///< rdeliver -> adeliver (time-to-order)
  std::vector<ProcessId> members_;
  bool initialized_ = false;
  std::uint64_t next_instance_ = 0;
  bool instance_running_ = false;
  std::map<MsgId, Pending> pending_;            // rdelivered, not yet ordered
  std::unordered_set<MsgId> adelivered_;
  std::map<std::uint64_t, Bytes> decision_buffer_;  // out-of-order decisions
  std::vector<std::vector<DeliverFn>> subscribers_;
  std::uint64_t delivered_count_ = 0;
  SubmitObserver observe_submit_;
  DeliverObserver observe_deliver_;
};

}  // namespace gcs
