/// \file atomic_broadcast.hpp
/// Atomic (total order) broadcast by reduction to consensus [Chandra–Toueg].
///
/// This is the paper's basic ordering component (Fig 6/7/9): it does NOT
/// rely on a group membership service — it runs on ◇S consensus, so false
/// suspicions never block or reconfigure it. The reduction:
///
///   abcast(m):  rbcast m to the group.
///   ordering:   each process batches rdelivered-but-unordered messages and
///               proposes the batch as consensus instance k; the decision of
///               instance k is a batch, delivered in deterministic (MsgId)
///               order; then k+1 starts if work remains.
///
/// Wire-path memory model (DESIGN.md §12): under the default slim format,
/// proposals carry only (MsgId, subtag) tuples — payload bytes never ride
/// inside consensus. Deliveries resolve payloads from the local store fed
/// by rbcast flooding. A process that decides an instance without holding
/// some payload (late join / restore mid-instance; FIFO channels make this
/// impossible for continuously-present members) stalls that instance and
/// runs a bounded pull/push exchange over the reliable channel
/// (Tag::kAbcast) until the payloads arrive, then resumes in order.
///
/// Dynamic membership (the membership layer lives ABOVE this component):
/// view changes arrive as ordinary adelivered messages; set_members() takes
/// effect for instances started after the current decision, so every member
/// agrees on the member set of every instance.
///
/// Messages carry a one-byte SubTag so several upper layers (application,
/// membership, generic broadcast) share one total order — the essence of
/// "the ordering problem is solved in exactly one place" (§4.1).
#pragma once

#include <deque>
#include <functional>
#include <map>
#include <set>
#include <vector>

#include "broadcast/proposal.hpp"
#include "broadcast/reliable_broadcast.hpp"
#include "consensus/consensus.hpp"
#include "consensus/consensus_protocol.hpp"
#include "sim/context.hpp"

namespace gcs {

class AtomicBroadcast {
 public:
  /// Upper-layer multiplexing within the single total order.
  using SubTag = std::uint8_t;
  static constexpr SubTag kApp = 0;         ///< application payloads
  static constexpr SubTag kViewChange = 1;  ///< membership view changes
  static constexpr SubTag kGbResolve = 2;   ///< generic broadcast resolution

  using DeliverFn = std::function<void(const MsgId& id, const Bytes& payload)>;

  struct Config {
    /// Proposal wire format. kSlim keeps payloads out of consensus;
    /// kLegacy is the payload-inline baseline (benchmarks compare both).
    WireFormat wire_format = WireFormat::kSlim;
    /// Retry period for the payload-pull fallback; each retry rotates to
    /// the next member, so one unresponsive target cannot stall a joiner.
    Duration pull_retry = msec(25);
  };

  /// \p channel carries the payload-pull fallback (Tag::kAbcast). Null
  /// disables pulling — only safe for static groups that never restore
  /// mid-instance, where FIFO channels guarantee flood-before-decision.
  AtomicBroadcast(sim::Context& ctx, ReliableBroadcast& rbcast, ConsensusProtocol& consensus,
                  ReliableChannel* channel, Config config);
  AtomicBroadcast(sim::Context& ctx, ReliableBroadcast& rbcast, ConsensusProtocol& consensus,
                  ReliableChannel* channel = nullptr);

  /// Install the initial view (Fig 9: init_view). Must be identical at all
  /// initial members. \p first_instance > 0 is used by joiners after state
  /// transfer.
  void init(std::vector<ProcessId> members, std::uint64_t first_instance = 0);

  /// Atomically broadcast \p payload for layer \p subtag. Returns the
  /// message id (also passed to the delivery callback).
  MsgId abcast(SubTag subtag, Payload payload);

  /// Total-order delivery for one subtag. Deliveries across subtags are
  /// interleaved in the single total order.
  void subscribe(SubTag subtag, DeliverFn fn);

  /// Change the member set, effective from the next consensus instance.
  /// Called by the membership layer inside a kViewChange delivery.
  void set_members(std::vector<ProcessId> members);
  const std::vector<ProcessId>& members() const { return members_; }
  bool is_member() const;

  /// Next consensus instance number (== number of decided batches). Part of
  /// the state-transfer snapshot for joiners.
  std::uint64_t next_instance() const { return next_instance_; }

  /// Serialize the ordering state a joiner needs: member set, next
  /// instance, and the ids already delivered (so relayed copies of old
  /// messages are not re-ordered). Taken at a view-change adelivery point,
  /// where it is identical at every member.
  Bytes snapshot() const;

  /// Install a snapshot (joiner side). Replaces init().
  void restore(BytesView snapshot);

  /// Number of messages adelivered locally.
  std::uint64_t delivered_count() const { return delivered_count_; }

  /// Messages rdelivered but not yet ordered (probe gauge).
  std::size_t pending_count() const { return pending_.size(); }

  /// Payloads currently retained for delivery / pull serving (tests assert
  /// boundedness of the tail-GC'd store).
  std::size_t store_size() const { return store_.size(); }

  /// Total work performed by the stability GC over the adelivered dedup
  /// index, in erased-entries (+1 per event). The per-sender index makes
  /// this O(prefix) per event; the regression test bounds it against the
  /// full-set-scan behavior it replaced.
  std::uint64_t stability_gc_steps() const { return gc_steps_; }

  /// Oracle taps. The delivery observer reports the global total-order
  /// coordinate of each adelivery: consensus instance k plus the message's
  /// index within the decided batch (position in the MsgId-sorted decision
  /// value, which is identical at every process by consensus agreement —
  /// including entries a process skips as already delivered, so the
  /// coordinate never depends on local dedup state).
  using SubmitObserver = std::function<void(const MsgId&, SubTag)>;
  using DeliverObserver =
      std::function<void(const MsgId&, SubTag, std::uint64_t instance, std::uint32_t index)>;
  void set_observer(SubmitObserver on_submit, DeliverObserver on_deliver) {
    observe_submit_ = std::move(on_submit);
    observe_deliver_ = std::move(on_deliver);
  }

 private:
  struct PendingMeta {
    SubTag subtag;
    TimePoint since = 0;  // when rdelivered locally (order-latency metric)
  };
  struct Stored {
    SubTag subtag;
    Bytes payload;
  };
  /// Delivered payloads are retained for this many further instances to
  /// serve pulls from processes still catching up, then tail-GC'd.
  static constexpr std::uint64_t kPayloadRetainInstances = 64;

  void on_rdeliver(const MsgId& id, BytesView payload);
  void on_decide(std::uint64_t k, const Bytes& value);
  void on_channel_message(ProcessId from, BytesView payload);
  void process_decisions();
  void try_start_instance();
  void request_pull();
  void resolve_missing(const MsgId& id);
  bool is_adelivered(const MsgId& id) const;
  bool mark_adelivered(const MsgId& id);

  sim::Context& ctx_;
  ReliableBroadcast& rbcast_;
  ConsensusProtocol& consensus_;
  ReliableChannel* channel_;
  Config config_;
  MetricId m_broadcasts_;
  MetricId m_delivered_;
  MetricId m_pull_requests_;
  MetricId m_pull_served_;
  MetricId m_pushes_;
  MetricId h_order_latency_;  ///< rdeliver -> adeliver (time-to-order)
  std::vector<ProcessId> members_;
  bool initialized_ = false;
  std::uint64_t next_instance_ = 0;
  bool instance_running_ = false;
  std::map<MsgId, PendingMeta> pending_;  // rdelivered, not yet ordered
  std::map<MsgId, Stored> store_;         // payloads for delivery + pull serving
  // Adelivered dedup, indexed per sender so the stability GC erases the
  // stable prefix instead of scanning the whole set (satellite fix).
  std::map<ProcessId, std::set<std::uint64_t>> adelivered_;
  std::uint64_t gc_steps_ = 0;
  std::map<std::uint64_t, Bytes> decision_buffer_;  // out-of-order decisions
  // Payloads the head decision needs but the store lacks; while non-empty
  // the decision stays buffered and the pull timer rotates through peers.
  std::set<MsgId> missing_;
  std::size_t pull_rr_ = 0;  // rotating pull target index
  bool pull_timer_armed_ = false;
  // (instance, id) log of deliveries, driving the store's tail GC.
  std::deque<std::pair<std::uint64_t, MsgId>> delivered_log_;
  std::vector<std::vector<DeliverFn>> subscribers_;
  std::uint64_t delivered_count_ = 0;
  SubmitObserver observe_submit_;
  DeliverObserver observe_deliver_;
};

}  // namespace gcs
