#include "core/membership.hpp"

#include <algorithm>
#include <cassert>

#include "util/codec.hpp"

namespace gcs {

namespace {
// Channel message kinds (Tag::kMembership).
constexpr std::uint8_t kJoinReq = 0;
constexpr std::uint8_t kState = 1;
// View-change operations (ride the abcast, SubTag kViewChange).
constexpr std::uint8_t kOpJoin = 0;
constexpr std::uint8_t kOpRemove = 1;
}  // namespace

bool View::contains(ProcessId p) const {
  return std::find(members.begin(), members.end(), p) != members.end();
}

GroupMembership::GroupMembership(sim::Context& ctx, ReliableChannel& channel,
                                 AtomicBroadcast& abcast, GenericBroadcast* gbcast)
    : ctx_(ctx), channel_(channel), abcast_(abcast), gbcast_(gbcast) {
  channel_.subscribe(Tag::kMembership,
                     [this](ProcessId from, BytesView b) { on_channel_message(from, b); });
  abcast_.subscribe(AtomicBroadcast::kViewChange,
                    [this](const MsgId& id, const Bytes& b) { on_view_change(id, b); });
}

ProcessId GroupMembership::ctx_self() const { return ctx_.self(); }

void GroupMembership::init_view(std::vector<ProcessId> members) {
  assert(!members.empty());
  view_.id = 0;
  view_.members = std::move(members);
  initialized_ = true;
  abcast_.init(view_.members);
  if (gbcast_) gbcast_->set_group(view_.members);
  ++views_installed_;
  if (observe_view_) observe_view_(view_.id, view_.members, /*via_state_transfer=*/false);
  for (const auto& fn : view_fns_) fn(view_);
}

void GroupMembership::join(ProcessId contact) {
  assert(!is_member());
  awaiting_state_ = true;
  Encoder enc;
  enc.put_byte(kJoinReq);
  channel_.send(contact, Tag::kMembership, enc.take());
  // Retry while waiting: the JOIN request or its sponsorship may have been
  // dropped (contact mid-flush, contact excluded moments later, ...). The
  // channel is reliable, so re-sending to the same contact is enough when
  // it is alive; callers pick a different contact if it crashed.
  ctx_.after(msec(500), [this, contact] {
    if (awaiting_state_ && !is_member()) join(contact);
  });
}

void GroupMembership::remove(ProcessId q) {
  if (!is_member() || !view_.contains(q)) return;
  if (!pending_removes_.insert(q).second) return;  // already proposed
  ctx_.metrics().inc("membership.removes_proposed");
  if (observe_remove_) observe_remove_(q, /*voluntary=*/q == ctx_self());
  Encoder enc;
  enc.put_byte(kOpRemove);
  enc.put_i32(q);
  enc.put_u64(view_.id);  // valid only in the view it was proposed in
  abcast_.abcast(AtomicBroadcast::kViewChange, enc.take());
}

void GroupMembership::on_channel_message(ProcessId from, BytesView payload) {
  Decoder dec(payload);
  const std::uint8_t kind = dec.get_byte();
  if (kind == kJoinReq) {
    if (!is_member()) return;  // we cannot sponsor; the joiner will retry
    if (view_.contains(from) || !pending_joins_.insert(from).second) return;
    ctx_.metrics().inc("membership.joins_sponsored");
    ctx_.trace_instant(obs::Names::get().membership_join_req, MsgId{}, from);
    Encoder enc;
    enc.put_byte(kOpJoin);
    enc.put_i32(from);
    enc.put_u64(view_.id);
    abcast_.abcast(AtomicBroadcast::kViewChange, enc.take());
  } else if (kind == kState) {
    if (!awaiting_state_) return;  // duplicate snapshot; first one won
    install_state(payload);
  }
}

void GroupMembership::on_view_change(const MsgId& id, const Bytes& payload) {
  Decoder dec(payload);
  const std::uint8_t op = dec.get_byte();
  const ProcessId subject = dec.get_i32();
  const std::uint64_t proposed_in = dec.get_u64();
  if (!dec.ok()) return;
  if (proposed_in != view_.id) {
    // Stale: proposed under an older view (e.g. by a member that has since
    // been excluded, or concurrently with another change that won the
    // race). Without this guard, removals queued by a cut-off minority
    // would dismantle the primary partition after a heal. If WE proposed
    // it and it is still warranted, re-propose under the current view.
    ctx_.metrics().inc("membership.stale_view_changes");
    if (id.sender == ctx_self() && is_member()) {
      if (op == kOpRemove && pending_removes_.erase(subject) > 0 && view_.contains(subject)) {
        remove(subject);
      } else if (op == kOpJoin && pending_joins_.erase(subject) > 0 &&
                 !view_.contains(subject)) {
        Encoder enc;
        enc.put_byte(kOpJoin);
        enc.put_i32(subject);
        enc.put_u64(view_.id);
        pending_joins_.insert(subject);
        abcast_.abcast(AtomicBroadcast::kViewChange, enc.take());
      }
    }
    return;
  }
  View next = view_;
  if (op == kOpJoin) {
    if (next.contains(subject)) return;  // duplicate sponsor
    next.members.push_back(subject);     // joiners go to the tail of the list
  } else if (op == kOpRemove) {
    if (!next.contains(subject)) return;  // already removed
    next.members.erase(std::remove(next.members.begin(), next.members.end(), subject),
                       next.members.end());
  } else {
    return;
  }
  next.id = view_.id + 1;
  pending_joins_.erase(subject);
  pending_removes_.erase(subject);
  install_view(std::move(next));
  if (op == kOpJoin && view_.contains(ctx_self()) && subject != ctx_self()) {
    send_state(subject);
  }
  if (op == kOpRemove) {
    // The excluded process's channel obligations are void (paper §3.3.2).
    channel_.forget(subject);
    if (subject == ctx_self()) {
      ctx_.metrics().inc("membership.self_excluded");
      for (const auto& fn : excluded_fns_) fn();
    }
  }
}

void GroupMembership::install_view(View v) {
  view_ = std::move(v);
  ++views_installed_;
  ctx_.metrics().inc("membership.views_installed");
  ctx_.trace_instant(obs::Names::get().view_install,
                     MsgId{obs::kViewKey, view_.id},
                     static_cast<std::int64_t>(view_.members.size()));
  if (ctx_.log().enabled(LogLevel::kInfo)) {
    ctx_.log().info("view " + std::to_string(view_.id) + " installed (" +
                    std::to_string(view_.members.size()) + " members)");
  }
  // Reconfigure the ordering components below. Effective from the next
  // consensus instance — every member applies this at the same point of
  // the total order, so instance member sets agree everywhere.
  abcast_.set_members(view_.members);
  if (gbcast_) gbcast_->set_group(view_.members);
  if (observe_view_) observe_view_(view_.id, view_.members, /*via_state_transfer=*/false);
  for (const auto& fn : view_fns_) fn(view_);
}

void GroupMembership::send_state(ProcessId joiner) {
  Encoder enc;
  enc.put_byte(kState);
  enc.put_u64(view_.id);
  enc.put_vector(view_.members, [](Encoder& e, ProcessId p) { e.put_i32(p); });
  enc.put_bytes(abcast_.snapshot());
  enc.put_bool(gbcast_ != nullptr);
  if (gbcast_) enc.put_bytes(gbcast_->snapshot());
  enc.put_bytes(snapshot_provider_ ? snapshot_provider_() : Bytes{});
  ctx_.metrics().inc("membership.state_transfers_sent");
  ctx_.trace_instant(obs::Names::get().membership_state_txf, MsgId{}, joiner);
  channel_.send(joiner, Tag::kMembership, enc.take());
}

void GroupMembership::install_state(BytesView payload) {
  Decoder dec(payload);
  dec.get_byte();  // kind, already checked
  View v;
  v.id = dec.get_u64();
  v.members = dec.get_vector<ProcessId>([](Decoder& d) { return d.get_i32(); });
  // Snapshot sections are decoded as views straight out of the datagram;
  // the restore calls below copy what they keep.
  const BytesView ab_snapshot = dec.get_view();
  const bool has_gb = dec.get_bool();
  const BytesView gb_snapshot = has_gb ? dec.get_view() : BytesView{};
  const Bytes app_snapshot = dec.get_bytes();
  if (!dec.ok() || !v.contains(ctx_self())) return;
  awaiting_state_ = false;
  initialized_ = true;
  ctx_.metrics().inc("membership.state_transfers_installed");
  abcast_.restore(ab_snapshot);
  if (gbcast_ && has_gb) gbcast_->restore(gb_snapshot);
  if (snapshot_installer_) snapshot_installer_(app_snapshot);
  view_ = std::move(v);
  ++views_installed_;
  ctx_.trace_instant(obs::Names::get().view_install,
                     MsgId{obs::kViewKey, view_.id},
                     static_cast<std::int64_t>(view_.members.size()));
  if (gbcast_) gbcast_->set_group(view_.members);
  if (observe_view_) observe_view_(view_.id, view_.members, /*via_state_transfer=*/true);
  for (const auto& fn : view_fns_) fn(view_);
}

}  // namespace gcs
