#include "core/monitoring.hpp"

#include "util/codec.hpp"

namespace gcs {

namespace {
constexpr std::uint8_t kSuspect = 0;
constexpr std::uint8_t kRestore = 1;
}  // namespace

Monitoring::Monitoring(sim::Context& ctx, ReliableChannel& channel, FailureDetector& fd,
                       GroupMembership& membership)
    : Monitoring(ctx, channel, fd, membership, Config{}) {}

Monitoring::Monitoring(sim::Context& ctx, ReliableChannel& channel, FailureDetector& fd,
                       GroupMembership& membership, Config config)
    : ctx_(ctx), channel_(channel), fd_(fd), membership_(membership), config_(config),
      fd_class_(fd.add_class(config.exclusion_timeout)) {
  fd_.on_suspect(fd_class_, [this](ProcessId q) { on_long_suspect(q); });
  fd_.on_restore(fd_class_, [this](ProcessId q) { on_long_restore(q); });
  channel_.subscribe(Tag::kMonitoring,
                     [this](ProcessId from, BytesView b) { on_gossip(from, b); });
  membership_.on_view([this](const View& v) { on_view(v); });
}

void Monitoring::start() {
  if (started_) return;
  started_ = true;
  fd_.monitor_group(fd_class_, membership_.view().members);
  if (config_.output_age_limit > 0) {
    ctx_.after(config_.output_check_interval, [this] { check_output_buffers(); });
  }
}

void Monitoring::on_view(const View& v) {
  // Track exactly the current co-members; forget votes about outsiders.
  for (auto it = votes_.begin(); it != votes_.end();) {
    it = v.contains(it->first) ? ++it : votes_.erase(it);
  }
  for (ProcessId q : monitored_) {
    if (!v.contains(q)) fd_.unmonitor(fd_class_, q);
  }
  monitored_.assign(v.members.begin(), v.members.end());
  if (!started_) return;
  fd_.monitor_group(fd_class_, v.members);
}

void Monitoring::on_long_suspect(ProcessId q) {
  if (!started_ || !membership_.is_member() || !membership_.view().contains(q)) return;
  ctx_.metrics().inc("monitoring.long_suspicions");
  add_vote(ctx_.self(), q);
  if (config_.suspicion_threshold > 1) {
    Encoder enc;
    enc.put_byte(kSuspect);
    enc.put_i32(q);
    channel_.send_group(membership_.view().members, Tag::kMonitoring, enc.take());
  }
}

void Monitoring::on_long_restore(ProcessId q) {
  drop_vote(ctx_.self(), q);
  if (config_.suspicion_threshold > 1 && membership_.is_member()) {
    Encoder enc;
    enc.put_byte(kRestore);
    enc.put_i32(q);
    channel_.send_group(membership_.view().members, Tag::kMonitoring, enc.take());
  }
}

void Monitoring::on_gossip(ProcessId from, BytesView payload) {
  Decoder dec(payload);
  const std::uint8_t kind = dec.get_byte();
  const ProcessId q = dec.get_i32();
  if (!dec.ok()) return;
  if (kind == kSuspect) {
    add_vote(from, q);
  } else if (kind == kRestore) {
    drop_vote(from, q);
  }
}

void Monitoring::add_vote(ProcessId voter, ProcessId q) {
  if (!membership_.view().contains(q)) return;
  auto& voters = votes_[q];
  voters.insert(voter);
  if (static_cast<int>(voters.size()) >= config_.suspicion_threshold) {
    ctx_.metrics().inc("monitoring.exclusions_requested");
    ctx_.trace_instant(obs::Names::get().monitoring_exclusion, MsgId{}, q);
    if (observe_exclusion_) observe_exclusion_(q, static_cast<int>(voters.size()));
    membership_.remove(q);
  }
}

void Monitoring::drop_vote(ProcessId voter, ProcessId q) {
  auto it = votes_.find(q);
  if (it == votes_.end()) return;
  it->second.erase(voter);
  if (it->second.empty()) votes_.erase(it);
}

void Monitoring::check_output_buffers() {
  if (membership_.is_member()) {
    for (ProcessId q : membership_.view().members) {
      if (q == ctx_.self()) continue;
      if (channel_.oldest_unacked_age(q) > config_.output_age_limit) {
        // Output-triggered suspicion: the buffered message can only be
        // discarded by excluding q from the membership.
        ctx_.metrics().inc("monitoring.output_triggered");
        if (observe_exclusion_) observe_exclusion_(q, 0);
        membership_.remove(q);
      }
    }
  }
  ctx_.after(config_.output_check_interval, [this] { check_output_buffers(); });
}

}  // namespace gcs
