/// \file stack.hpp
/// GcsStack: the full new architecture, wired per the paper's Figure 9.
///
///            Application
///        ┌───────┴────────┐
///   GroupMembership   (join/remove/new_view)        Monitoring
///        │  ▲                                        │   ▲  ▲
///   GenericBroadcast  (gbcast/gdeliver)   remove ────┘   │  └─ suspect (long)
///        │  ▲                                   output-triggered
///   AtomicBroadcast   (abcast/adeliver)              │
///        │  ▲                                        │
///     Consensus ── suspect (short) ── FailureDetection
///        │  ▲                              │
///    ReliableChannel ──────────────────────┘
///        │  ▲
///   UnreliableTransport (u-send/u-receive, simulated network)
///
/// One GcsStack instance is one process of the group. All components are
/// owned by the stack and wired at construction; group lifecycle is
/// init_view() (founding member) or join() (late joiner).
#pragma once

#include <memory>

#include "broadcast/atomic_broadcast.hpp"
#include "broadcast/causal_broadcast.hpp"
#include "broadcast/reliable_broadcast.hpp"
#include "channel/reliable_channel.hpp"
#include "consensus/consensus.hpp"
#include "consensus/paxos.hpp"
#include "core/conflict.hpp"
#include "core/generic_broadcast.hpp"
#include "core/membership.hpp"
#include "core/monitoring.hpp"
#include "fd/failure_detector.hpp"
#include "obs/oracle.hpp"
#include "obs/probes.hpp"
#include "obs/trace.hpp"
#include "sim/context.hpp"
#include "sim/network.hpp"
#include "transport/sim_transport.hpp"

namespace gcs {

struct StackConfig {
  /// Which consensus algorithm sits at the bottom (the architecture is
  /// agnostic — both satisfy ConsensusProtocol; bench_e8 compares them).
  enum class ConsensusAlgo { kChandraToueg, kPaxos };
  ConsensusAlgo consensus_algorithm = ConsensusAlgo::kChandraToueg;
  /// ◇S (consensus) suspicion timeout — may be aggressive; false suspicions
  /// cost a consensus round, not an exclusion (paper §4.3).
  Duration consensus_suspect_timeout = msec(60);
  FailureDetector::Config fd = {};
  ReliableChannel::Config channel = {};
  GenericBroadcast::Config gb = {};
  Monitoring::Config monitoring = {};
  /// Conflict relation for generic broadcast; default is the paper's §3.3
  /// rbcast/abcast table.
  ConflictRelation conflict = ConflictRelation::rbcast_abcast();
  /// Stability gossip period for the broadcast substrates; bounds dedup
  /// memory on long runs (0 = disabled; fine for bounded runs).
  Duration stability_interval = 0;
  /// Proposal/report wire format for the ordering layers (DESIGN.md §12).
  /// kSlim keeps payloads out of consensus and GB resolution; kLegacy is
  /// the payload-inline baseline the benchmarks compare against. Applied
  /// to both AtomicBroadcast and GenericBroadcast.
  WireFormat wire_format = WireFormat::kSlim;
  /// Flight recorder for message-lifecycle tracing; null (the default)
  /// leaves tracing a branch-predictable no-op. Usually shared by every
  /// stack of one simulation so the trace interleaves all processes.
  std::shared_ptr<obs::Recorder> recorder;
};

class GcsStack {
 public:
  /// Simulation flavor: wires a SimTransport over \p network.
  GcsStack(sim::Engine& engine, sim::Network& network, ProcessId self,
           std::uint64_t seed, StackConfig config = {});

  /// Custom-transport flavor (e.g. the UDP transport in src/runtime): the
  /// caller supplies the transport; crash() only kills the local context.
  GcsStack(sim::Engine& engine, std::unique_ptr<Transport> transport, ProcessId self,
           std::uint64_t seed, StackConfig config = {});

  /// -- lifecycle --------------------------------------------------------

  /// Found the group (identical call at every initial member), then start().
  void init_view(std::vector<ProcessId> members);
  /// Ask \p contact to sponsor us into the group, then start().
  void join(ProcessId contact);
  /// Start heartbeats, suspicion checking and monitoring policies.
  void start();
  /// Leave the group gracefully: propose own removal and go silent once it
  /// is installed (heartbeats stop, so no one wastes suspicion on us).
  void leave();
  /// Crash this process (simulation fault injection).
  void crash();

  /// -- group communication operations (Fig 9) ---------------------------

  /// Atomic broadcast: total order against everything.
  MsgId abcast(Bytes payload) { return abcast_->abcast(AtomicBroadcast::kApp, std::move(payload)); }
  /// Generic broadcast with an application conflict class.
  MsgId gbcast(MsgClass cls, Bytes payload) { return gbcast_->gbcast(cls, std::move(payload)); }
  /// Reliable broadcast op = generic broadcast in the non-conflicting class.
  MsgId rbcast(Bytes payload) { return gbcast_->rbcast_op(std::move(payload)); }
  /// Causal-order broadcast (the optional Isis-heritage layer): cheaper
  /// than abcast (no consensus), stronger than rbcast (happened-before
  /// order preserved).
  MsgId cbcast(Bytes payload) { return cbcast_->cbcast(std::move(payload)); }

  void on_adeliver(AtomicBroadcast::DeliverFn fn) {
    abcast_->subscribe(AtomicBroadcast::kApp, std::move(fn));
  }
  void on_gdeliver(GenericBroadcast::DeliverFn fn) { gbcast_->on_deliver(std::move(fn)); }
  void on_cdeliver(CausalBroadcast::DeliverFn fn) { cbcast_->on_deliver(std::move(fn)); }
  void on_view(GroupMembership::ViewFn fn) { membership_->on_view(std::move(fn)); }

  /// -- component access (tests, benchmarks, advanced use) ---------------
  sim::Context& context() { return *ctx_; }
  Transport& transport() { return *transport_; }
  ReliableChannel& channel() { return *channel_; }
  FailureDetector& fd() { return *fd_; }
  FailureDetector::ClassId consensus_fd_class() const { return consensus_fd_class_; }
  ConsensusProtocol& consensus() { return *consensus_; }
  AtomicBroadcast& atomic_broadcast() { return *abcast_; }
  ReliableBroadcast& abcast_substrate() { return *ab_rbcast_; }
  GenericBroadcast& generic_broadcast() { return *gbcast_; }
  CausalBroadcast& causal_broadcast() { return *cbcast_; }
  GroupMembership& membership() { return *membership_; }
  Monitoring& monitoring() { return *monitoring_; }
  const View& view() const { return membership_->view(); }
  ProcessId self() const { return ctx_->self(); }
  Metrics& metrics() { return ctx_->metrics(); }
  /// The flight recorder installed via StackConfig, or null.
  const std::shared_ptr<obs::Recorder>& recorder() const { return recorder_; }

  /// -- global observability ---------------------------------------------

  /// Tap every component of this process into the simulation-global
  /// \p oracle: abcast submits/adeliveries (with consensus-instance
  /// coordinates), rbcast floods/rdeliveries per wire tag, gbcast
  /// submits/gdeliveries (with round/phase coordinates), view installs,
  /// removal proposals, monitoring exclusions and FD suspicion
  /// transitions. The oracle must outlive the stack. Call before
  /// init_view()/join() so the founding events are observed too.
  void attach_oracle(obs::Oracle& oracle);

  /// Register this process's state gauges (channel send queue, rbcast
  /// dedup set, open consensus instances, GB fast-path ratio and working
  /// set, FD suspicions, monitoring votes) with \p probes. The stack must
  /// outlive the probe sampler.
  void attach_probes(obs::Probes& probes);

 private:
  void wire(StackConfig config);

  std::shared_ptr<obs::Recorder> recorder_;
  std::unique_ptr<sim::Context> ctx_;
  std::unique_ptr<Transport> transport_;
  std::unique_ptr<ReliableChannel> channel_;
  std::unique_ptr<FailureDetector> fd_;
  FailureDetector::ClassId consensus_fd_class_;
  std::unique_ptr<ConsensusProtocol> consensus_;
  std::unique_ptr<ReliableBroadcast> ab_rbcast_;  // abcast's flooding substrate
  std::unique_ptr<AtomicBroadcast> abcast_;
  std::unique_ptr<ReliableBroadcast> gb_rbcast_;  // generic broadcast's flooding
  std::unique_ptr<GenericBroadcast> gbcast_;
  std::unique_ptr<ReliableBroadcast> cb_rbcast_;  // causal broadcast's flooding
  std::unique_ptr<CausalBroadcast> cbcast_;
  std::unique_ptr<GroupMembership> membership_;
  std::unique_ptr<Monitoring> monitoring_;
  sim::Network* network_;
  obs::Oracle* oracle_ = nullptr;
};

/// Convenience harness: one engine + network + a GcsStack per process.
/// Used by tests, benchmarks and the examples.
class World {
 public:
  struct Config {
    int n = 4;
    sim::LinkModel link = {};
    std::uint64_t seed = 1;
    StackConfig stack = {};
  };

  explicit World(Config config);

  sim::Engine& engine() { return engine_; }
  sim::Network& network() { return network_; }
  GcsStack& stack(ProcessId p) { return *stacks_[static_cast<std::size_t>(p)]; }
  int size() const { return static_cast<int>(stacks_.size()); }

  /// init_view(members) + start() on every listed process.
  void found_group(const std::vector<ProcessId>& members);
  /// All processes 0..n-1 found the group.
  void found_group_all();

  /// Attach the simulation-global \p oracle to every stack and install the
  /// stacks' conflict relation as its GB conflict predicate. Call before
  /// found_group()/join so founding views are observed.
  void attach_oracle(obs::Oracle& oracle);

  /// Register every stack's gauges with \p probes and start sampling them
  /// every \p cadence of virtual time. \p probes must outlive the World.
  void enable_probes(obs::Probes& probes, Duration cadence);

  void run_for(Duration d) { engine_.run_until(engine_.now() + d); }
  void run(std::uint64_t max_events = 50'000'000) { engine_.run(max_events); }
  void crash(ProcessId p) { stack(p).crash(); }

 private:
  sim::Engine engine_;
  sim::Network network_;
  std::vector<std::unique_ptr<GcsStack>> stacks_;
  sim::PeriodicTimer probe_timer_;
};

}  // namespace gcs
