/// \file membership.hpp
/// Primary-partition group membership built ON TOP of atomic broadcast —
/// the paper's key architectural inversion (§3.1.1).
///
/// A view change (join or remove) is nothing but an atomically broadcast
/// message: the total order of the abcast component below directly yields
/// the totally ordered sequence of views, with no second ordering protocol.
/// Because every view change is ordered against every application message
/// in the same total order, the membership gets "same view delivery"
/// (§4.4) for free and never blocks senders.
///
/// Join protocol:
///   1. the joiner sends a JOIN request over the reliable channel to any
///      current member (its "contact");
///   2. the contact abcasts a view-change message (deduplicated);
///   3. on adelivery every member installs the new view and sends the
///      joiner a STATE snapshot: the view, the abcast/generic-broadcast
///      positions at the adelivery point, and the application snapshot.
///      The joiner installs the first snapshot and ignores the rest.
///
/// Remove: any member (in practice: the monitoring component, §3.3.2) calls
/// remove(q); a view-change message is abcast; q itself — if alive and
/// merely falsely suspected — also adelivers it, learns of its exclusion,
/// and may later rejoin with a fresh state transfer.
#pragma once

#include <functional>
#include <optional>
#include <set>
#include <vector>

#include "broadcast/atomic_broadcast.hpp"
#include "channel/reliable_channel.hpp"
#include "core/generic_broadcast.hpp"
#include "sim/context.hpp"

namespace gcs {

/// A group view: totally ordered list of members (paper, footnote 10: views
/// are lists; the head of the list acts as the primary for passive
/// replication).
struct View {
  std::uint64_t id = 0;
  std::vector<ProcessId> members;

  bool contains(ProcessId p) const;
  ProcessId primary() const { return members.empty() ? kNoProcess : members.front(); }
};

class GroupMembership {
 public:
  using ViewFn = std::function<void(const View&)>;
  using SnapshotProvider = std::function<Bytes()>;
  using SnapshotInstaller = std::function<void(const Bytes&)>;
  using ExcludedFn = std::function<void()>;

  GroupMembership(sim::Context& ctx, ReliableChannel& channel, AtomicBroadcast& abcast,
                  GenericBroadcast* gbcast /* may be null in reduced stacks */);

  /// Install the initial view (Fig 9: init_view); identical at all initial
  /// members. Non-members (future joiners) do not call this.
  void init_view(std::vector<ProcessId> members);

  /// Called by a NON-member that wants in: asks \p contact to sponsor it.
  void join(ProcessId contact);

  /// Propose removal of member \p q (Fig 9: remove). Normally invoked by
  /// the monitoring component; remove(self) implements leave.
  void remove(ProcessId q);
  void leave() { remove(ctx_self()); }

  const View& view() const { return view_; }
  bool is_member() const { return view_.contains(ctx_self()); }

  /// View installation callback (Fig 9: new_view). Fired for every view,
  /// including the initial one and the one a joiner learns by state
  /// transfer.
  void on_view(ViewFn fn) { view_fns_.push_back(std::move(fn)); }

  /// Fired at a process that adelivers its own removal (false suspicion or
  /// voluntary leave). The application decides whether to rejoin.
  void on_excluded(ExcludedFn fn) { excluded_fns_.push_back(std::move(fn)); }

  /// Application state hooks for the join-time state transfer.
  void set_snapshot_provider(SnapshotProvider fn) { snapshot_provider_ = std::move(fn); }
  void set_snapshot_installer(SnapshotInstaller fn) { snapshot_installer_ = std::move(fn); }

  /// Number of view changes installed (metric for E4/E5/E6).
  std::uint64_t views_installed() const { return views_installed_; }

  /// Oracle taps: every locally installed view (flagging the ones learned
  /// by state transfer, which have no previous-view baseline to diff), and
  /// every locally issued removal proposal (voluntary == leave()).
  using ViewObserver = std::function<void(std::uint64_t view_id,
                                          const std::vector<ProcessId>& members,
                                          bool via_state_transfer)>;
  using RemoveObserver = std::function<void(ProcessId target, bool voluntary)>;
  void set_observer(ViewObserver on_view, RemoveObserver on_remove) {
    observe_view_ = std::move(on_view);
    observe_remove_ = std::move(on_remove);
  }

 private:
  ProcessId ctx_self() const;
  void on_channel_message(ProcessId from, BytesView payload);
  void on_view_change(const MsgId& id, const Bytes& payload);
  void install_view(View v);
  void send_state(ProcessId joiner);
  void install_state(BytesView payload);

  sim::Context& ctx_;
  ReliableChannel& channel_;
  AtomicBroadcast& abcast_;
  GenericBroadcast* gbcast_;
  View view_;
  bool initialized_ = false;      // are we (or were we) an active member?
  bool awaiting_state_ = false;   // joiner waiting for a snapshot
  std::set<ProcessId> pending_joins_;    // dedup of sponsored join abcasts
  std::set<ProcessId> pending_removes_;  // dedup of remove abcasts
  std::vector<ViewFn> view_fns_;
  std::vector<ExcludedFn> excluded_fns_;
  ViewObserver observe_view_;
  RemoveObserver observe_remove_;
  SnapshotProvider snapshot_provider_;
  SnapshotInstaller snapshot_installer_;
  std::uint64_t views_installed_ = 0;
};

}  // namespace gcs
