/// \file generic_broadcast.hpp
/// Thrifty generic broadcast (paper §3.2, [Pedone & Schiper DISC'99],
/// [Aguilera et al. DISC'00]).
///
/// Semantics: all group members deliver every gbcast message; two messages
/// whose classes CONFLICT (per the ConflictRelation) are delivered in the
/// same relative order everywhere; non-conflicting messages are unordered.
///
/// Thrifty implementation, round-based:
///
///   Fast path (no conflict observed): a message is flooded (reliable
///   broadcast) and every member that sees no conflict with what it already
///   acknowledged sends an ACK to the group. A message is gdelivered as
///   soon as ⌈2n/3⌉+ ACKs for it are seen — two communication steps and no
///   consensus. Because a member never ACKs two conflicting messages in the
///   same round, two conflicting messages can never both reach the fast
///   quorum.
///
///   Resolution path (conflict observed, or a message lingers past a
///   timeout): members freeze their ACK sets and *atomically broadcast* a
///   report of their round. Reports are totally ordered by the atomic
///   broadcast below (Fig 7/9: generic broadcast uses atomic broadcast only
///   when conflicts occur — the "thrifty" property). When the first n−f
///   reports of the round have been adelivered, every member
///   deterministically computes:
///      first  = messages acked in ≥ (fast_quorum − f) of those reports
///               — a superset of everything that may have been
///               fast-delivered anywhere;
///      second = all other reported messages.
///   and delivers first, then second (each in MsgId order), skipping what
///   it already delivered. The round then ends and a new round starts.
///
/// Wire-path memory model (DESIGN.md §12): under the default slim format a
/// report carries (MsgId, class, acked) tuples only — payloads never ride
/// through consensus. Each member resolves payloads from its local store
/// (fed by the reliable-broadcast flood); a member that reaches the
/// finalize point missing some payload stalls the round locally and runs a
/// bounded pull/push exchange on Tag::kGbcast against rotating peers, which
/// serve from their store or from a small window of recently retired
/// (delivered) payloads. The legacy format (payloads inline in reports) is
/// kept as the benchmark baseline.
///
/// Quorum arithmetic (n = |group|, f = ⌊(n−1)/3⌋):
///   fast_quorum  = ⌊2n/3⌋ + 1     (> 2n/3)
///   report_need  = n − f
///   tau          = fast_quorum − f
/// guarantees: (a) a fast-delivered message appears acked in ≥ tau of any
/// n−f reports; (b) a message conflicting with a fast-delivered one appears
/// in < tau (ACK sets of conflicting messages are disjoint); (c) two
/// conflicting messages cannot both reach tau. Requires n ≥ 4 for f ≥ 1
/// fault tolerance on the GB fast path (consensus below still tolerates
/// f < n/2).
#pragma once

#include <array>
#include <deque>
#include <functional>
#include <map>
#include <set>
#include <utility>
#include <vector>

#include "broadcast/atomic_broadcast.hpp"
#include "broadcast/proposal.hpp"
#include "broadcast/reliable_broadcast.hpp"
#include "channel/reliable_channel.hpp"
#include "core/conflict.hpp"
#include "sim/context.hpp"

namespace gcs {

class GenericBroadcast {
 public:
  using DeliverFn =
      std::function<void(const MsgId& id, MsgClass cls, const Bytes& payload)>;

  struct Config {
    /// A message not gdelivered within this bound triggers resolution even
    /// without an observed conflict (liveness when ackers crash).
    Duration resolve_timeout = msec(200);
    /// Report wire format. kSlim keeps payloads out of the resolution path;
    /// kLegacy is the payload-inline baseline (benchmarks compare both).
    WireFormat wire_format = WireFormat::kSlim;
    /// Retry period for the payload-pull fallback; each retry rotates to
    /// the next member, so one unresponsive peer cannot stall the round.
    Duration pull_retry = msec(25);
    /// TESTING/ABLATION ONLY: override the fast quorum size. Values at or
    /// below 2n/3 BREAK the safety argument (two conflicting messages can
    /// both gather a quorum); bench_e8 demonstrates exactly that. 0 = use
    /// the correct formula.
    int unsafe_fast_quorum_override = 0;
  };

  GenericBroadcast(sim::Context& ctx, ReliableChannel& channel, ReliableBroadcast& rbcast,
                   AtomicBroadcast& abcast, ConflictRelation relation, Config config);
  GenericBroadcast(sim::Context& ctx, ReliableChannel& channel, ReliableBroadcast& rbcast,
                   AtomicBroadcast& abcast, ConflictRelation relation);

  /// The delivering group; must track the membership's current view.
  void set_group(std::vector<ProcessId> group);
  const std::vector<ProcessId>& group() const { return group_; }

  /// Generic-broadcast \p payload with class \p cls.
  MsgId gbcast(MsgClass cls, Bytes payload);

  /// Convenience mapping per the paper's Fig 9 operations (§3.3 table).
  MsgId rbcast_op(Bytes payload) { return gbcast(kRbcastClass, std::move(payload)); }
  MsgId abcast_op(Bytes payload) { return gbcast(kAbcastClass, std::move(payload)); }

  void on_deliver(DeliverFn fn) { deliver_fns_.push_back(std::move(fn)); }

  const ConflictRelation& relation() const { return relation_; }

  /// Serialize the generic-broadcast state a joiner needs: round number,
  /// resolution progress (which is a pure function of the adelivered prefix
  /// and hence identical at every member at a view-change point), delivered
  /// ids, and the payload cache of seen-but-undelivered messages. The
  /// retired-payload pull window is deliberately excluded: a fresh joiner
  /// simply declines pulls it cannot serve.
  Bytes snapshot() const;

  /// Install a snapshot (joiner side). Under the slim format a snapshot
  /// taken mid-resolution may reference payloads the donor no longer
  /// inlines; the finalize step detects those and pulls them.
  void restore(BytesView snapshot);

  /// -- statistics (E3/E6 use these) ------------------------------------
  std::uint64_t fast_deliveries() const { return fast_deliveries_; }
  std::uint64_t resolved_deliveries() const { return resolved_deliveries_; }
  std::uint64_t rounds_resolved() const { return rounds_resolved_; }
  std::uint64_t current_round() const { return round_; }
  /// Messages seen (payload cached) and not yet garbage collected — the
  /// current round's working set (probe gauge).
  std::size_t store_size() const { return store_.size(); }
  /// Recently retired payloads held back to serve late pulls (bounded by
  /// the kRetiredRounds window; probe gauge).
  std::size_t retired_size() const { return retired_.size(); }

  /// Oracle taps. The delivery observer reports each gdelivery's global
  /// coordinate: the GB round, whether it took the fast path, and — for
  /// resolution deliveries — the message's batch-absolute position in the
  /// round's deterministic first+second sequence (identical at every
  /// member; positions of locally skipped entries are simply unused).
  using SubmitObserver = std::function<void(const MsgId&, MsgClass)>;
  using DeliverObserver = std::function<void(const MsgId&, MsgClass, std::uint64_t round,
                                             bool fast, std::uint32_t pos)>;
  void set_observer(SubmitObserver on_submit, DeliverObserver on_deliver) {
    observe_submit_ = std::move(on_submit);
    observe_deliver_ = std::move(on_deliver);
  }

 private:
  struct Stored {
    MsgClass cls;
    Bytes payload;
    sim::TimerId deadline = sim::kNoTimer;
    TimePoint received_at = 0;  // payload arrival (fast/slow latency metric)
    bool acked = false;         // we ACKed it this round (report flag)
  };
  /// Per-sender delivered-dedup index, compressed to a watermark: every seq
  /// below \c floor is delivered, out-of-order deliveries wait in \c beyond
  /// until the gap fills and the prefix collapses into the floor. In-order
  /// traffic (the fast path) is allocation-net-zero: the set node inserted
  /// per delivery is freed by the very next collapse.
  struct DeliveredIndex {
    std::uint64_t floor = 0;
    std::set<std::uint64_t> beyond;
  };
  /// Delivered payloads stay pullable for this many further rounds.
  static constexpr std::uint64_t kRetiredRounds = 4;
  /// Hard cap on the retired-payload window: rounds only advance when
  /// conflicts resolve, so a purely commutative run would otherwise retain
  /// every settled payload forever. Pulls target messages some member still
  /// holds undelivered in its active store, so the window is a fast-serve
  /// optimization, not a correctness requirement — a few hundred entries
  /// cover any realistic pull latency.
  static constexpr std::size_t kRetiredCap = 256;

  bool is_member() const;
  void on_gb_data(const MsgId& id, BytesView wire);
  void consider(const MsgId& id);  // ack or trigger resolution
  void on_channel_message(ProcessId from, BytesView wire);
  void on_ack(ProcessId from, Decoder& dec);
  void on_pull(ProcessId from, Decoder& dec);
  void on_push(ProcessId from, Decoder& dec);
  void request_pull();
  void maybe_fast_deliver(const MsgId& id);
  void maybe_settle(const MsgId& id);
  /// Move a store entry's payload into the retired pull window and erase
  /// it from the store; returns the iterator past the erased entry.
  std::map<MsgId, Stored>::iterator retire_entry(std::map<MsgId, Stored>::iterator it);
  void prune_retired();
  void trigger_resolution();
  void on_report(const MsgId& report_id, BytesView wire);
  void maybe_finalize_round();
  void deliver(const MsgId& id, MsgClass cls, const Bytes& payload, bool fast,
               std::uint32_t pos = 0);
  void start_new_round();
  bool is_delivered(const MsgId& id) const;
  bool mark_delivered(const MsgId& id);
  int fast_quorum() const;
  int report_need() const;
  int tau() const;

  sim::Context& ctx_;
  MetricId m_broadcasts_;
  MetricId m_fast_delivered_;
  MetricId m_resolved_delivered_;
  MetricId m_resolutions_;
  MetricId m_rounds_resolved_;
  MetricId m_pull_requests_;
  MetricId m_pull_served_;
  MetricId m_pushes_;
  MetricId h_fast_latency_;  ///< payload arrival -> fast-path delivery
  MetricId h_slow_latency_;  ///< payload arrival -> resolution delivery
  ReliableChannel& channel_;
  ReliableBroadcast& rbcast_;
  AtomicBroadcast& abcast_;
  ConflictRelation relation_;
  Config config_;
  std::vector<ProcessId> group_;

  std::uint64_t round_ = 0;
  bool frozen_ = false;     // report sent; no more ACKs this round
  bool resolving_ = false;  // resolution in progress this round

  // Delivered dedup, indexed per sender and watermark-compressed (see
  // DeliveredIndex); the reliable broadcast's stability callback prunes
  // stragglers that are stuck in the out-of-order overflow. Entries still
  // in store_ survive pruning: they are consulted until their round (or
  // settlement) retires them.
  std::map<ProcessId, DeliveredIndex> delivered_;
  // Messages seen (payload known) and possibly not yet delivered this round.
  std::map<MsgId, Stored> store_;
  // Delivered payloads retained to serve late pulls; (round, id) log drives
  // the eviction (round window for resolved rounds, count cap overall).
  std::map<MsgId, std::pair<MsgClass, Bytes>> retired_;
  std::deque<std::pair<std::uint64_t, MsgId>> retired_log_;
  // ACK counts per class for the current round. The conflict check only
  // depends on classes, so this fixed array replaces a scan over every
  // message we ACKed — O(#classes) per considered message, zero heap.
  std::array<std::uint32_t, 256> acked_cls_{};
  // ACK counts per round (current and future rounds only).
  std::map<std::uint64_t, std::map<MsgId, std::set<ProcessId>>> acks_;
  // Resolution state for the current round.
  std::set<ProcessId> reporters_;
  std::map<MsgId, int> report_ack_counts_;
  std::map<MsgId, MsgClass> report_cls_;
  // Payloads the finalize step needs but the store lacks (slim format /
  // restore); while non-empty the round stalls locally and pulls rotate.
  std::set<MsgId> missing_;
  std::size_t pull_rr_ = 0;
  bool pull_timer_armed_ = false;

  std::vector<DeliverFn> deliver_fns_;
  SubmitObserver observe_submit_;
  DeliverObserver observe_deliver_;
  std::uint64_t fast_deliveries_ = 0;
  std::uint64_t resolved_deliveries_ = 0;
  std::uint64_t rounds_resolved_ = 0;
};

}  // namespace gcs
