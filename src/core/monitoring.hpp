/// \file monitoring.hpp
/// The monitoring component (paper §3.3.2): decides *exclusions*.
///
/// The architectural point: failure suspicion (the failure detector, fast
/// timeouts, freely wrong) is decoupled from process exclusion (this
/// component, slow timeouts, deliberate). Consensus keeps running through
/// false suspicions; only monitoring may call membership.remove().
///
/// Supported policies, combinable:
///   - long-timeout FD suspicion: its own FD timeout class, typically one
///     or two orders of magnitude above the consensus class;
///   - suspicion threshold: members gossip their long-class suspicions and
///     a process is excluded only when >= threshold distinct members
///     suspect it;
///   - output-triggered suspicion: if the reliable channel has buffered a
///     message for q longer than a bound, the only way to ever release the
///     buffer is to exclude q (paper cites [Charron-Bost et al. 2002]).
#pragma once

#include <functional>
#include <map>
#include <set>

#include "channel/reliable_channel.hpp"
#include "core/membership.hpp"
#include "fd/failure_detector.hpp"
#include "sim/context.hpp"

namespace gcs {

class Monitoring {
 public:
  struct Config {
    /// Timeout of the exclusion (long) FD class.
    Duration exclusion_timeout = sec(2);
    /// Distinct suspecting members required before removal. 1 = any member
    /// that suspects long enough proposes removal directly.
    int suspicion_threshold = 1;
    /// Output-triggered suspicion bound; 0 disables the policy.
    Duration output_age_limit = 0;
    /// How often the output buffers are inspected.
    Duration output_check_interval = msec(500);
  };

  Monitoring(sim::Context& ctx, ReliableChannel& channel, FailureDetector& fd,
             GroupMembership& membership, Config config);
  Monitoring(sim::Context& ctx, ReliableChannel& channel, FailureDetector& fd,
             GroupMembership& membership);

  /// Begin monitoring the current view (call after init_view / join).
  void start();

  FailureDetector::ClassId fd_class() const { return fd_class_; }
  const Config& config() const { return config_; }
  void set_suspicion_threshold(int t) { config_.suspicion_threshold = t; }

  /// Members currently suspected (long class) by anyone we know of — the
  /// open vote count (probe gauge).
  std::size_t open_votes() const { return votes_.size(); }

  /// Oracle tap: this process decided to exclude \p target, backed by
  /// \p votes distinct long-class suspicions (0 for the output-triggered
  /// policy, which needs no vote).
  using ExclusionObserver = std::function<void(ProcessId target, int votes)>;
  void set_observer(ExclusionObserver on_exclusion) {
    observe_exclusion_ = std::move(on_exclusion);
  }

 private:
  void on_long_suspect(ProcessId q);
  void on_long_restore(ProcessId q);
  void on_gossip(ProcessId from, BytesView payload);
  void on_view(const View& v);
  void add_vote(ProcessId voter, ProcessId q);
  void drop_vote(ProcessId voter, ProcessId q);
  void check_output_buffers();

  sim::Context& ctx_;
  ReliableChannel& channel_;
  FailureDetector& fd_;
  GroupMembership& membership_;
  Config config_;
  FailureDetector::ClassId fd_class_;
  bool started_ = false;
  // votes_[q] = members currently suspecting q (long class).
  std::map<ProcessId, std::set<ProcessId>> votes_;
  // Members monitored as of the last view, to unmonitor the removed ones.
  std::vector<ProcessId> monitored_;
  ExclusionObserver observe_exclusion_;
};

}  // namespace gcs
