#include "core/stack.hpp"

namespace gcs {

GcsStack::GcsStack(sim::Engine& engine, sim::Network& network, ProcessId self,
                   std::uint64_t seed, StackConfig config)
    : network_(&network) {
  Rng rng(seed ^ (0x9e3779b97f4a7c15ULL * static_cast<std::uint64_t>(self + 1)));
  Logger log("p" + std::to_string(self), [&engine] { return engine.now(); });
  ctx_ = std::make_unique<sim::Context>(self, engine, rng, log,
                                        std::make_shared<Metrics>());
  transport_ = std::make_unique<SimTransport>(*ctx_, network);
  wire(config);
}

GcsStack::GcsStack(sim::Engine& engine, std::unique_ptr<Transport> transport,
                   ProcessId self, std::uint64_t seed, StackConfig config)
    : network_(nullptr) {
  Rng rng(seed ^ (0x9e3779b97f4a7c15ULL * static_cast<std::uint64_t>(self + 1)));
  Logger log("p" + std::to_string(self), [&engine] { return engine.now(); });
  ctx_ = std::make_unique<sim::Context>(self, engine, rng, log,
                                        std::make_shared<Metrics>());
  transport_ = std::move(transport);
  wire(config);
}

void GcsStack::wire(StackConfig config) {
  recorder_ = config.recorder;
  if (recorder_) {
    ctx_->set_tracer(obs::Tracer(recorder_.get(), ctx_->self()));
  }
  channel_ = std::make_unique<ReliableChannel>(*ctx_, *transport_, config.channel);
  fd_ = std::make_unique<FailureDetector>(*ctx_, *transport_, config.fd);
  consensus_fd_class_ = fd_->add_class(config.consensus_suspect_timeout);
  if (config.consensus_algorithm == StackConfig::ConsensusAlgo::kPaxos) {
    consensus_ = std::make_unique<PaxosConsensus>(*ctx_, *channel_, *fd_, consensus_fd_class_);
  } else {
    consensus_ = std::make_unique<Consensus>(*ctx_, *channel_, *fd_, consensus_fd_class_);
  }
  ab_rbcast_ = std::make_unique<ReliableBroadcast>(*ctx_, *channel_, Tag::kRbcast);
  if (config.stability_interval > 0) {
    ab_rbcast_->enable_stability(config.stability_interval);
  }
  AtomicBroadcast::Config ab_config;
  ab_config.wire_format = config.wire_format;
  abcast_ = std::make_unique<AtomicBroadcast>(*ctx_, *ab_rbcast_, *consensus_,
                                              channel_.get(), ab_config);
  gb_rbcast_ = std::make_unique<ReliableBroadcast>(*ctx_, *channel_, Tag::kGbData);
  if (config.stability_interval > 0) {
    gb_rbcast_->enable_stability(config.stability_interval);
  }
  config.gb.wire_format = config.wire_format;
  gbcast_ = std::make_unique<GenericBroadcast>(*ctx_, *channel_, *gb_rbcast_, *abcast_,
                                               config.conflict, config.gb);
  cb_rbcast_ = std::make_unique<ReliableBroadcast>(*ctx_, *channel_, Tag::kCbcast);
  cbcast_ = std::make_unique<CausalBroadcast>(*ctx_, *cb_rbcast_, transport_->universe_size());
  membership_ = std::make_unique<GroupMembership>(*ctx_, *channel_, *abcast_, gbcast_.get());
  monitoring_ = std::make_unique<Monitoring>(*ctx_, *channel_, *fd_, *membership_,
                                             config.monitoring);

  // Consensus suspects members with the aggressive class; keep the short
  // class's monitored set in sync with the view.
  membership_->on_view([this](const View& v) {
    fd_->monitor_group(consensus_fd_class_, v.members);
    cbcast_->set_group(v.members);
  });
}

void GcsStack::init_view(std::vector<ProcessId> members) {
  membership_->init_view(std::move(members));
  start();
}

void GcsStack::join(ProcessId contact) {
  membership_->join(contact);
  start();
}

void GcsStack::start() {
  fd_->start();
  monitoring_->start();
}

void GcsStack::leave() {
  membership_->on_excluded([this] { fd_->stop(); });
  membership_->leave();
}

void GcsStack::crash() {
  if (oracle_) oracle_->note_crash(ctx_->self());
  ctx_->kill();
  if (network_) network_->crash(ctx_->self());
}

void GcsStack::attach_oracle(obs::Oracle& oracle) {
  oracle_ = &oracle;
  obs::Oracle* o = &oracle;
  const ProcessId self = ctx_->self();

  abcast_->set_observer(
      [o, self](const MsgId& m, AtomicBroadcast::SubTag st) { o->on_abcast_submit(self, m); (void)st; },
      [o, self](const MsgId& m, AtomicBroadcast::SubTag st, std::uint64_t k,
                std::uint32_t idx) { o->on_adeliver(self, m, st, k, idx); });

  const auto rb_tap = [o, self](ReliableBroadcast& rb, Tag tag) {
    const auto t = static_cast<std::uint8_t>(tag);
    rb.set_observer([o, self, t](const MsgId& m) { o->on_rb_broadcast(self, t, m); },
                    [o, self, t](const MsgId& m) { o->on_rb_deliver(self, t, m); });
  };
  rb_tap(*ab_rbcast_, Tag::kRbcast);
  rb_tap(*gb_rbcast_, Tag::kGbData);
  rb_tap(*cb_rbcast_, Tag::kCbcast);

  gbcast_->set_observer(
      [o, self](const MsgId& m, MsgClass cls) { o->on_gb_submit(self, m, cls); },
      [o, self](const MsgId& m, MsgClass cls, std::uint64_t round, bool fast,
                std::uint32_t pos) { o->on_gdeliver(self, m, cls, round, fast, pos); });

  membership_->set_observer(
      [o, self](std::uint64_t view_id, const std::vector<ProcessId>& members,
                bool via_state_transfer) {
        o->on_view_install(self, view_id, members, via_state_transfer);
      },
      [o, self](ProcessId target, bool voluntary) {
        o->on_remove_proposed(self, target, voluntary);
      });

  monitoring_->set_observer(
      [o, self](ProcessId target, int votes) { o->on_exclusion_decided(self, target, votes); });

  fd_->on_suspect(consensus_fd_class_,
                  [o, self](ProcessId q) { o->on_suspicion(self, q, /*long_class=*/false); });
  fd_->on_restore(consensus_fd_class_,
                  [o, self](ProcessId q) { o->on_restore(self, q, /*long_class=*/false); });
  fd_->on_suspect(monitoring_->fd_class(),
                  [o, self](ProcessId q) { o->on_suspicion(self, q, /*long_class=*/true); });
  fd_->on_restore(monitoring_->fd_class(),
                  [o, self](ProcessId q) { o->on_restore(self, q, /*long_class=*/true); });
}

void GcsStack::attach_probes(obs::Probes& probes) {
  const ProcessId self = ctx_->self();
  probes.add_gauge(self, "probe.channel.send_queue", [this] {
    return static_cast<double>(channel_->total_send_queue());
  });
  probes.add_gauge(self, "probe.rbcast.dedup", [this] {
    return static_cast<double>(ab_rbcast_->dedup_size() + gb_rbcast_->dedup_size());
  });
  probes.add_gauge(self, "probe.abcast.pending", [this] {
    return static_cast<double>(abcast_->pending_count());
  });
  probes.add_gauge(self, "probe.consensus.open", [this] {
    return static_cast<double>(consensus_->open_instances());
  });
  probes.add_gauge(self, "probe.gb.store", [this] {
    return static_cast<double>(gbcast_->store_size());
  });
  probes.add_gauge(self, "probe.gb.fast_ratio", [this] {
    const double total = static_cast<double>(gbcast_->fast_deliveries() +
                                             gbcast_->resolved_deliveries());
    return total == 0 ? 1.0 : static_cast<double>(gbcast_->fast_deliveries()) / total;
  });
  probes.add_gauge(self, "probe.fd.suspected", [this] {
    return static_cast<double>(fd_->suspected(consensus_fd_class_).size());
  });
  probes.add_gauge(self, "probe.monitoring.votes", [this] {
    return static_cast<double>(monitoring_->open_votes());
  });
}

World::World(Config config)
    : engine_(), network_(engine_, config.n, config.link, config.seed) {
  stacks_.reserve(static_cast<std::size_t>(config.n));
  for (ProcessId p = 0; p < config.n; ++p) {
    stacks_.push_back(
        std::make_unique<GcsStack>(engine_, network_, p, config.seed, config.stack));
  }
}

void World::found_group(const std::vector<ProcessId>& members) {
  for (ProcessId p : members) stack(p).init_view(members);
}

void World::found_group_all() {
  std::vector<ProcessId> all;
  for (int p = 0; p < size(); ++p) all.push_back(p);
  found_group(all);
}

void World::attach_oracle(obs::Oracle& oracle) {
  if (!stacks_.empty()) {
    // All stacks share one StackConfig, hence one conflict relation.
    const ConflictRelation rel = stacks_.front()->generic_broadcast().relation();
    oracle.set_conflicts(
        [rel](std::uint8_t a, std::uint8_t b) { return rel.conflicts(a, b); });
  }
  for (auto& s : stacks_) s->attach_oracle(oracle);
}

void World::enable_probes(obs::Probes& probes, Duration cadence) {
  for (auto& s : stacks_) s->attach_probes(probes);
  probe_timer_.start(engine_, cadence,
                     [&probes](TimePoint now) { probes.sample(now); });
}

}  // namespace gcs
