#include "core/stack.hpp"

namespace gcs {

GcsStack::GcsStack(sim::Engine& engine, sim::Network& network, ProcessId self,
                   std::uint64_t seed, StackConfig config)
    : network_(&network) {
  Rng rng(seed ^ (0x9e3779b97f4a7c15ULL * static_cast<std::uint64_t>(self + 1)));
  Logger log("p" + std::to_string(self), [&engine] { return engine.now(); });
  ctx_ = std::make_unique<sim::Context>(self, engine, rng, log,
                                        std::make_shared<Metrics>());
  transport_ = std::make_unique<SimTransport>(*ctx_, network);
  wire(config);
}

GcsStack::GcsStack(sim::Engine& engine, std::unique_ptr<Transport> transport,
                   ProcessId self, std::uint64_t seed, StackConfig config)
    : network_(nullptr) {
  Rng rng(seed ^ (0x9e3779b97f4a7c15ULL * static_cast<std::uint64_t>(self + 1)));
  Logger log("p" + std::to_string(self), [&engine] { return engine.now(); });
  ctx_ = std::make_unique<sim::Context>(self, engine, rng, log,
                                        std::make_shared<Metrics>());
  transport_ = std::move(transport);
  wire(config);
}

void GcsStack::wire(StackConfig config) {
  recorder_ = config.recorder;
  if (recorder_) {
    ctx_->set_tracer(obs::Tracer(recorder_.get(), ctx_->self()));
  }
  channel_ = std::make_unique<ReliableChannel>(*ctx_, *transport_, config.channel);
  fd_ = std::make_unique<FailureDetector>(*ctx_, *transport_, config.fd);
  consensus_fd_class_ = fd_->add_class(config.consensus_suspect_timeout);
  if (config.consensus_algorithm == StackConfig::ConsensusAlgo::kPaxos) {
    consensus_ = std::make_unique<PaxosConsensus>(*ctx_, *channel_, *fd_, consensus_fd_class_);
  } else {
    consensus_ = std::make_unique<Consensus>(*ctx_, *channel_, *fd_, consensus_fd_class_);
  }
  ab_rbcast_ = std::make_unique<ReliableBroadcast>(*ctx_, *channel_, Tag::kRbcast);
  if (config.stability_interval > 0) {
    ab_rbcast_->enable_stability(config.stability_interval);
  }
  abcast_ = std::make_unique<AtomicBroadcast>(*ctx_, *ab_rbcast_, *consensus_);
  gb_rbcast_ = std::make_unique<ReliableBroadcast>(*ctx_, *channel_, Tag::kGbData);
  gbcast_ = std::make_unique<GenericBroadcast>(*ctx_, *channel_, *gb_rbcast_, *abcast_,
                                               config.conflict, config.gb);
  cb_rbcast_ = std::make_unique<ReliableBroadcast>(*ctx_, *channel_, Tag::kCbcast);
  cbcast_ = std::make_unique<CausalBroadcast>(*ctx_, *cb_rbcast_, transport_->universe_size());
  membership_ = std::make_unique<GroupMembership>(*ctx_, *channel_, *abcast_, gbcast_.get());
  monitoring_ = std::make_unique<Monitoring>(*ctx_, *channel_, *fd_, *membership_,
                                             config.monitoring);

  // Consensus suspects members with the aggressive class; keep the short
  // class's monitored set in sync with the view.
  membership_->on_view([this](const View& v) {
    fd_->monitor_group(consensus_fd_class_, v.members);
    cbcast_->set_group(v.members);
  });
}

void GcsStack::init_view(std::vector<ProcessId> members) {
  membership_->init_view(std::move(members));
  start();
}

void GcsStack::join(ProcessId contact) {
  membership_->join(contact);
  start();
}

void GcsStack::start() {
  fd_->start();
  monitoring_->start();
}

void GcsStack::leave() {
  membership_->on_excluded([this] { fd_->stop(); });
  membership_->leave();
}

void GcsStack::crash() {
  ctx_->kill();
  if (network_) network_->crash(ctx_->self());
}

World::World(Config config)
    : engine_(), network_(engine_, config.n, config.link, config.seed) {
  stacks_.reserve(static_cast<std::size_t>(config.n));
  for (ProcessId p = 0; p < config.n; ++p) {
    stacks_.push_back(
        std::make_unique<GcsStack>(engine_, network_, p, config.seed, config.stack));
  }
}

void World::found_group(const std::vector<ProcessId>& members) {
  for (ProcessId p : members) stack(p).init_view(members);
}

void World::found_group_all() {
  std::vector<ProcessId> all;
  for (int p = 0; p < size(); ++p) all.push_back(p);
  found_group(all);
}

}  // namespace gcs
