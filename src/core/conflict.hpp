/// \file conflict.hpp
/// Message conflict relations for generic broadcast (paper §3.2.1).
///
/// Generic broadcast orders two messages iff their classes *conflict*. The
/// relation is supplied by the application; the paper gives two canonical
/// instances, reproduced here as presets:
///
///   §3.2.3 (passive replication)          §3.3 (full architecture)
///             update  primary-change                  rbcast  abcast
///   update      -         X                 rbcast      -       X
///   primary-ch  X         X                 abcast      X       X
///
/// Both are the same shape: class 0 does not conflict with itself, class 1
/// conflicts with everything.
#pragma once

#include <cstdint>
#include <vector>

namespace gcs {

/// Application-visible message class carried by every gbcast message.
using MsgClass = std::uint8_t;

class ConflictRelation {
 public:
  /// \p num_classes classes, initially nothing conflicts.
  explicit ConflictRelation(int num_classes = 2)
      : n_(num_classes), matrix_(static_cast<std::size_t>(num_classes) *
                                     static_cast<std::size_t>(num_classes),
                                 0) {}

  /// Declare (symmetric) conflict between classes \p a and \p b.
  ConflictRelation& set_conflict(MsgClass a, MsgClass b, bool conflict = true) {
    at(a, b) = conflict;
    at(b, a) = conflict;
    return *this;
  }

  bool conflicts(MsgClass a, MsgClass b) const {
    if (a >= n_ || b >= n_) return true;  // unknown classes: be conservative
    return matrix_[static_cast<std::size_t>(a) * static_cast<std::size_t>(n_) + b] != 0;
  }

  int num_classes() const { return n_; }

  /// Every pair conflicts: gbcast degenerates to atomic broadcast.
  static ConflictRelation all_conflict(int num_classes = 2) {
    ConflictRelation r(num_classes);
    for (int a = 0; a < num_classes; ++a)
      for (int b = 0; b < num_classes; ++b) r.set_conflict(static_cast<MsgClass>(a), static_cast<MsgClass>(b));
    return r;
  }

  /// No pair conflicts: gbcast degenerates to reliable broadcast.
  static ConflictRelation none_conflict(int num_classes = 2) {
    return ConflictRelation(num_classes);
  }

  /// Paper §3.3 table. Class kRbcastClass = "rbcast", kAbcastClass = "abcast".
  static ConflictRelation rbcast_abcast() {
    ConflictRelation r(2);
    r.set_conflict(1, 1);
    r.set_conflict(0, 1);
    return r;
  }

  /// Paper §3.2.3 table. Class kUpdate = "update", kPrimaryChange.
  static ConflictRelation update_primary_change() { return rbcast_abcast(); }

 private:
  char& at(MsgClass a, MsgClass b) {
    return matrix_[static_cast<std::size_t>(a) * static_cast<std::size_t>(n_) + b];
  }

  int n_;
  std::vector<char> matrix_;
};

/// Conventional class names for the presets above.
inline constexpr MsgClass kRbcastClass = 0;  ///< "rbcast" / "update": commutes with itself
inline constexpr MsgClass kAbcastClass = 1;  ///< "abcast" / "primary-change": total order

}  // namespace gcs
