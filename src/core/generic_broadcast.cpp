#include "core/generic_broadcast.hpp"

#include <algorithm>
#include <cassert>

#include "util/codec.hpp"

namespace gcs {

namespace {
// Kind byte of Tag::kGbcast channel messages.
constexpr std::uint8_t kGbAck = 0;
constexpr std::uint8_t kGbPull = 1;
constexpr std::uint8_t kGbPush = 2;
}  // namespace

GenericBroadcast::GenericBroadcast(sim::Context& ctx, ReliableChannel& channel,
                                   ReliableBroadcast& rbcast, AtomicBroadcast& abcast,
                                   ConflictRelation relation)
    : GenericBroadcast(ctx, channel, rbcast, abcast, std::move(relation), Config{}) {}

GenericBroadcast::GenericBroadcast(sim::Context& ctx, ReliableChannel& channel,
                                   ReliableBroadcast& rbcast, AtomicBroadcast& abcast,
                                   ConflictRelation relation, Config config)
    : ctx_(ctx),
      m_broadcasts_(metric_id("gbcast.broadcasts")),
      m_fast_delivered_(metric_id("gbcast.fast_delivered")),
      m_resolved_delivered_(metric_id("gbcast.resolved_delivered")),
      m_resolutions_(metric_id("gbcast.resolutions_triggered")),
      m_rounds_resolved_(metric_id("gbcast.rounds_resolved")),
      m_pull_requests_(metric_id("gbcast.pull_requests")),
      m_pull_served_(metric_id("gbcast.pull_served")),
      m_pushes_(metric_id("gbcast.pushes")),
      h_fast_latency_(metric_id("gbcast.fast_latency_us")),
      h_slow_latency_(metric_id("gbcast.slow_latency_us")),
      channel_(channel), rbcast_(rbcast), abcast_(abcast),
      relation_(std::move(relation)), config_(config) {
  rbcast_.on_deliver([this](const MsgId& id, BytesView b) { on_gb_data(id, b); });
  channel_.subscribe(Tag::kGbcast,
                     [this](ProcessId from, BytesView b) { on_channel_message(from, b); });
  abcast_.subscribe(AtomicBroadcast::kGbResolve,
                    [this](const MsgId& id, const Bytes& b) { on_report(id, b); });
  // No stability hook for the delivered index: it is watermark-compressed
  // (DeliveredIndex), so the out-of-order overflow self-prunes as gaps fill
  // and the contiguous prefix collapses into the per-sender floor. Erasing
  // overflow bits early would stall that collapse forever.
}

void GenericBroadcast::set_group(std::vector<ProcessId> group) {
  group_ = std::move(group);
  rbcast_.set_group(group_);
  // Quorums changed: a pending resolution may now be satisfiable (e.g. a
  // crashed member was excluded, shrinking report_need).
  maybe_finalize_round();
}

bool GenericBroadcast::is_member() const {
  return std::find(group_.begin(), group_.end(), ctx_.self()) != group_.end();
}

int GenericBroadcast::fast_quorum() const {
  if (config_.unsafe_fast_quorum_override > 0) return config_.unsafe_fast_quorum_override;
  const int n = static_cast<int>(group_.size());
  return 2 * n / 3 + 1;
}

int GenericBroadcast::report_need() const {
  const int n = static_cast<int>(group_.size());
  return n - (n - 1) / 3;
}

int GenericBroadcast::tau() const {
  const int n = static_cast<int>(group_.size());
  const int t = fast_quorum() - (n - 1) / 3;
  return t < 1 ? 1 : t;
}

bool GenericBroadcast::is_delivered(const MsgId& id) const {
  const auto it = delivered_.find(id.sender);
  if (it == delivered_.end()) return false;
  return id.seq < it->second.floor || it->second.beyond.count(id.seq) != 0;
}

bool GenericBroadcast::mark_delivered(const MsgId& id) {
  DeliveredIndex& idx = delivered_[id.sender];
  if (id.seq < idx.floor) return false;
  if (id.seq > idx.floor) return idx.beyond.insert(id.seq).second;
  ++idx.floor;
  // Collapse the contiguous run that was waiting on this gap.
  auto it = idx.beyond.begin();
  while (it != idx.beyond.end() && *it == idx.floor) {
    it = idx.beyond.erase(it);
    ++idx.floor;
  }
  return true;
}

MsgId GenericBroadcast::gbcast(MsgClass cls, Bytes payload) {
  std::shared_ptr<Bytes> wire = ctx_.pool().acquire();
  Encoder enc(*wire);
  enc.put_byte(cls);
  enc.put_bytes(payload);
  ctx_.metrics().inc(m_broadcasts_);
  const MsgId id =
      rbcast_.broadcast(Payload(std::shared_ptr<const Bytes>(std::move(wire))));
  ctx_.trace_instant(obs::Names::get().gb_submit, id, cls);
  if (observe_submit_) observe_submit_(id, cls);
  return id;
}

void GenericBroadcast::on_gb_data(const MsgId& id, BytesView wire) {
  if (is_delivered(id) || store_.count(id)) return;
  Decoder dec(wire);
  const MsgClass cls = dec.get_byte();
  const BytesView body = dec.get_view();
  if (!dec.ok()) return;
  Stored stored{cls, to_bytes(body), sim::kNoTimer, ctx_.now()};
  stored.deadline = ctx_.after(config_.resolve_timeout, [this, id] {
    if (!is_delivered(id)) trigger_resolution();
  });
  store_.emplace(id, std::move(stored));
  ctx_.trace_begin(obs::Names::get().gb_fast_pending, id, cls);
  consider(id);
  // An ACK quorum may have assembled before the payload arrived.
  maybe_fast_deliver(id);
}

void GenericBroadcast::consider(const MsgId& id) {
  if (!is_member() || frozen_ || is_delivered(id)) return;
  const auto it = store_.find(id);
  if (it == store_.end()) return;
  // Conflict check against everything we ACKed this round. The conflict
  // predicate is purely class-based, so per-class ACK counts carry exactly
  // the information the per-message scan this replaces did — including for
  // already-settled messages, whose counts persist until the round ends
  // (ACK sets of conflicting messages must stay disjoint for the
  // quorum-intersection argument to hold).
  for (std::size_t c = 0; c < acked_cls_.size(); ++c) {
    if (acked_cls_[c] != 0 &&
        relation_.conflicts(it->second.cls, static_cast<MsgClass>(c))) {
      trigger_resolution();
      return;
    }
  }
  it->second.acked = true;
  ++acked_cls_[it->second.cls];
  ctx_.trace_instant(obs::Names::get().gb_ack, id, static_cast<std::int64_t>(round_));
  std::shared_ptr<Bytes> wire = ctx_.pool().acquire();
  Encoder enc(*wire);
  enc.put_byte(kGbAck);
  enc.put_u64(round_);
  enc.put_msgid(id);
  channel_.send_group(group_, Tag::kGbcast,
                      Payload(std::shared_ptr<const Bytes>(std::move(wire))));
}

void GenericBroadcast::on_channel_message(ProcessId from, BytesView wire) {
  Decoder dec(wire);
  const std::uint8_t kind = dec.get_byte();
  if (!dec.ok()) return;
  switch (kind) {
    case kGbAck:
      on_ack(from, dec);
      break;
    case kGbPull:
      on_pull(from, dec);
      break;
    case kGbPush:
      on_push(from, dec);
      break;
    default:
      break;
  }
}

void GenericBroadcast::on_ack(ProcessId from, Decoder& dec) {
  const std::uint64_t r = dec.get_u64();
  const MsgId id = dec.get_msgid();
  if (!dec.ok() || r < round_) return;  // stale round
  if (is_delivered(id)) {
    // Late ACKs for a delivered message still count toward settlement
    // (all-acked → the store entry can retire early), but must not revive
    // bookkeeping that settlement already cleared.
    const auto rit = acks_.find(r);
    if (rit == acks_.end()) return;
    const auto ait = rit->second.find(id);
    if (ait == rit->second.end()) return;
    ait->second.insert(from);
    if (r == round_) maybe_settle(id);
    return;
  }
  acks_[r][id].insert(from);
  if (r == round_) maybe_fast_deliver(id);
}

void GenericBroadcast::on_pull(ProcessId from, Decoder& dec) {
  const std::uint64_t n = dec.get_u64();
  if (n > dec.remaining()) return;  // hostile count
  // Collect what we can serve (store first, then the retired window), then
  // frame the reply in one pooled buffer.
  Encoder entries_enc;
  std::uint64_t found = 0;
  for (std::uint64_t i = 0; i < n && dec.ok(); ++i) {
    const MsgId id = dec.get_msgid();
    if (!dec.ok()) break;
    if (const auto sit = store_.find(id); sit != store_.end()) {
      entries_enc.put_msgid(id);
      entries_enc.put_byte(sit->second.cls);
      entries_enc.put_bytes(sit->second.payload);
      ++found;
    } else if (const auto rit = retired_.find(id); rit != retired_.end()) {
      entries_enc.put_msgid(id);
      entries_enc.put_byte(rit->second.first);
      entries_enc.put_bytes(rit->second.second);
      ++found;
    }
  }
  if (found == 0) return;
  std::shared_ptr<Bytes> wire = ctx_.pool().acquire();
  Encoder enc(*wire);
  enc.put_byte(kGbPush);
  enc.put_u64(found);
  enc.put_bytes(entries_enc.bytes());
  channel_.send(from, Tag::kGbcast, Payload(std::shared_ptr<const Bytes>(std::move(wire))));
  ctx_.metrics().inc(m_pull_served_, static_cast<std::int64_t>(found));
}

void GenericBroadcast::on_push(ProcessId, Decoder& dec) {
  const std::uint64_t n = dec.get_u64();
  Decoder entries(dec.get_view());
  if (!dec.ok()) return;
  bool resolved_any = false;
  for (std::uint64_t i = 0; i < n && entries.ok(); ++i) {
    const MsgId id = entries.get_msgid();
    const MsgClass cls = entries.get_byte();
    const BytesView body = entries.get_view();
    if (!entries.ok()) break;
    ctx_.metrics().inc(m_pushes_);
    if (is_delivered(id) || store_.count(id)) continue;
    // Resolution-path payload: no resolve deadline (the round is already
    // resolving) and no fast-path latency sample.
    store_.emplace(id, Stored{cls, to_bytes(body), sim::kNoTimer, 0});
    if (missing_.erase(id) != 0) resolved_any = true;
  }
  if (resolved_any && missing_.empty()) maybe_finalize_round();
}

void GenericBroadcast::request_pull() {
  if (missing_.empty() || group_.size() < 2) return;
  ProcessId target = ctx_.self();
  while (target == ctx_.self()) target = group_[pull_rr_++ % group_.size()];
  std::shared_ptr<Bytes> wire = ctx_.pool().acquire();
  Encoder enc(*wire);
  enc.put_byte(kGbPull);
  enc.put_u64(missing_.size());
  for (const MsgId& id : missing_) enc.put_msgid(id);
  channel_.send(target, Tag::kGbcast, Payload(std::shared_ptr<const Bytes>(std::move(wire))));
  ctx_.metrics().inc(m_pull_requests_);
  if (!pull_timer_armed_) {
    pull_timer_armed_ = true;
    ctx_.after(config_.pull_retry, [this] {
      pull_timer_armed_ = false;
      if (!missing_.empty()) request_pull();
    });
  }
}

void GenericBroadcast::maybe_fast_deliver(const MsgId& id) {
  if (is_delivered(id)) return;
  const auto rit = acks_.find(round_);
  if (rit == acks_.end()) return;
  const auto ait = rit->second.find(id);
  if (ait == rit->second.end() ||
      static_cast<int>(ait->second.size()) < fast_quorum()) {
    return;
  }
  const auto sit = store_.find(id);
  if (sit == store_.end()) return;  // payload not here yet
  ++fast_deliveries_;
  ctx_.metrics().inc(m_fast_delivered_);
  ctx_.metrics().observe(h_fast_latency_, ctx_.now() - sit->second.received_at);
  deliver(id, sit->second.cls, sit->second.payload, /*fast=*/true);
  maybe_settle(id);
}

void GenericBroadcast::maybe_settle(const MsgId& id) {
  // Settlement = delivered here AND acked by the whole group. Every member
  // then has the payload locally, so nobody can ever pull it from us out
  // of need — the store entry moves to the (bounded) retired window and
  // its ACK set is dropped. This is what keeps the fast path's working set
  // flat when no conflict ever ends the round. The per-class ACK count is
  // deliberately NOT decremented: conflict disjointness is a round-scoped
  // invariant and must survive settlement.
  if (!is_delivered(id)) return;
  const auto rit = acks_.find(round_);
  if (rit == acks_.end()) return;
  const auto ait = rit->second.find(id);
  if (ait == rit->second.end() || ait->second.size() < group_.size()) return;
  rit->second.erase(ait);
  if (const auto sit = store_.find(id); sit != store_.end()) retire_entry(sit);
}

std::map<MsgId, GenericBroadcast::Stored>::iterator GenericBroadcast::retire_entry(
    std::map<MsgId, Stored>::iterator it) {
  if (it->second.deadline != sim::kNoTimer) ctx_.cancel(it->second.deadline);
  if (retired_
          .emplace(it->first, std::make_pair(it->second.cls, std::move(it->second.payload)))
          .second) {
    retired_log_.emplace_back(round_, it->first);
  }
  const auto next = store_.erase(it);
  prune_retired();
  return next;
}

void GenericBroadcast::prune_retired() {
  while (!retired_log_.empty() &&
         (retired_log_.front().first + kRetiredRounds < round_ ||
          retired_log_.size() > kRetiredCap)) {
    retired_.erase(retired_log_.front().second);
    retired_log_.pop_front();
  }
}

void GenericBroadcast::deliver(const MsgId& id, MsgClass cls, const Bytes& payload,
                               bool fast, std::uint32_t pos) {
  if (!mark_delivered(id)) return;
  if (observe_deliver_) observe_deliver_(id, cls, round_, fast, pos);
  const obs::Names& names = obs::Names::get();
  if (!fast) {
    ++resolved_deliveries_;
    ctx_.metrics().inc(m_resolved_delivered_);
    if (auto sit = store_.find(id); sit != store_.end() && sit->second.received_at > 0) {
      ctx_.metrics().observe(h_slow_latency_, ctx_.now() - sit->second.received_at);
    }
  }
  ctx_.trace_end(names.gb_fast_pending, id);
  ctx_.trace_instant(fast ? names.gb_deliver_fast : names.gb_deliver_slow, id);
  auto it = store_.find(id);
  if (it != store_.end() && it->second.deadline != sim::kNoTimer) {
    ctx_.cancel(it->second.deadline);
    it->second.deadline = sim::kNoTimer;
  }
  for (const auto& fn : deliver_fns_) fn(id, cls, payload);
}

void GenericBroadcast::trigger_resolution() {
  if (resolving_ || !is_member()) return;
  resolving_ = true;
  frozen_ = true;
  ctx_.metrics().inc(m_resolutions_);
  ctx_.trace_begin(obs::Names::get().gb_resolve,
                   MsgId{obs::kGbRoundKey, round_},
                   static_cast<std::int64_t>(store_.size()));
  if (ctx_.log().enabled(LogLevel::kDebug)) {
    ctx_.log().debug("gb resolution round=" + std::to_string(round_) + " store=" +
                     std::to_string(store_.size()));
  }
  // Report = snapshot of our round: every message we know plus whether we
  // ACKed it. Slim format carries ids and classes only; payloads resolve
  // from local stores (the pull fallback covers the holdouts).
  Encoder enc;
  enc.put_u64(round_);
  enc.put_byte(static_cast<std::uint8_t>(config_.wire_format));
  enc.put_u64(store_.size());
  for (const auto& [id, stored] : store_) {
    enc.put_msgid(id);
    enc.put_byte(stored.cls);
    if (config_.wire_format == WireFormat::kLegacy) enc.put_bytes(stored.payload);
    enc.put_bool(stored.acked);
  }
  abcast_.abcast(AtomicBroadcast::kGbResolve, enc.take());
}

void GenericBroadcast::on_report(const MsgId& report_id, BytesView wire) {
  Decoder dec(wire);
  const std::uint64_t r = dec.get_u64();
  if (!dec.ok() || r != round_) return;  // late report from a finished round
  const std::uint8_t fmt = dec.get_byte();
  if (!dec.ok() || fmt > static_cast<std::uint8_t>(WireFormat::kLegacy)) return;
  const bool inline_payloads = fmt == static_cast<std::uint8_t>(WireFormat::kLegacy);
  const ProcessId reporter = report_id.sender;
  if (!reporters_.insert(reporter).second) return;  // one report per member
  const std::uint64_t count = dec.get_u64();
  for (std::uint64_t i = 0; i < count && dec.ok(); ++i) {
    const MsgId id = dec.get_msgid();
    const MsgClass cls = dec.get_byte();
    BytesView payload;
    if (inline_payloads) payload = dec.get_view();
    const bool acked = dec.get_bool();
    if (!dec.ok()) break;
    if (acked) ++report_ack_counts_[id];
    report_cls_.emplace(id, cls);
    if (inline_payloads && !is_delivered(id) && !store_.count(id)) {
      store_.emplace(id, Stored{cls, to_bytes(payload), sim::kNoTimer, 0});
    }
  }
  // A report commits everyone to this round's resolution: contribute ours.
  if (!resolving_) trigger_resolution();
  maybe_finalize_round();
}

void GenericBroadcast::maybe_finalize_round() {
  if (reporters_.empty()) return;
  if (static_cast<int>(reporters_.size()) < report_need()) return;
  // Deterministic: every member sees the same adelivered report prefix and
  // the same group (view changes are adelivered too), so first/second are
  // identical everywhere.
  std::vector<MsgId> first;
  std::vector<MsgId> second;
  for (const auto& [id, cls] : report_cls_) {
    (void)cls;
    const auto cit = report_ack_counts_.find(id);
    const int ack_count = cit == report_ack_counts_.end() ? 0 : cit->second;
    if (ack_count >= tau()) {
      first.push_back(id);
    } else {
      second.push_back(id);
    }
  }
  // std::map iteration is MsgId-ordered already; keep the sort explicit.
  std::sort(first.begin(), first.end());
  std::sort(second.begin(), second.end());
  // Slim reports carry no payloads: every undelivered message of the
  // sequence must be resolvable from the local store before the round can
  // finalize. Anything missing (late join, restore mid-resolution) stalls
  // the round locally and is pulled; pushes re-enter here.
  missing_.clear();
  for (const std::vector<MsgId>* seq : {&first, &second}) {
    for (const MsgId& id : *seq) {
      if (!is_delivered(id) && !store_.count(id)) missing_.insert(id);
    }
  }
  if (!missing_.empty()) {
    request_pull();
    return;
  }
  // Positions are batch-absolute across the first+second sequence, so every
  // member attributes the same (round, pos) coordinate to each message even
  // though each skips its own fast-delivered prefix inside deliver().
  std::uint32_t pos = 0;
  for (const std::vector<MsgId>* seq : {&first, &second}) {
    for (const MsgId& id : *seq) {
      if (const auto sit = store_.find(id); sit != store_.end()) {
        deliver(id, sit->second.cls, sit->second.payload, /*fast=*/false, pos);
      }
      ++pos;
    }
  }
  ++rounds_resolved_;
  ctx_.metrics().inc(m_rounds_resolved_);
  ctx_.trace_end(obs::Names::get().gb_resolve, MsgId{obs::kGbRoundKey, round_},
                 static_cast<std::int64_t>(first.size() + second.size()));
  start_new_round();
}

Bytes GenericBroadcast::snapshot() const {
  Encoder enc;
  enc.put_u64(round_);
  enc.put_u64(reporters_.size());
  for (ProcessId p : reporters_) enc.put_i32(p);
  enc.put_u64(report_ack_counts_.size());
  for (const auto& [id, count] : report_ack_counts_) {
    enc.put_msgid(id);
    enc.put_i32(count);
  }
  enc.put_u64(report_cls_.size());
  for (const auto& [id, cls] : report_cls_) {
    enc.put_msgid(id);
    enc.put_byte(cls);
  }
  enc.put_u64(delivered_.size());
  for (const auto& [sender, idx] : delivered_) {
    enc.put_i32(sender);
    enc.put_u64(idx.floor);
    enc.put_u64(idx.beyond.size());
    for (const std::uint64_t seq : idx.beyond) enc.put_u64(seq);
  }
  enc.put_u64(store_.size());
  for (const auto& [id, stored] : store_) {
    enc.put_msgid(id);
    enc.put_byte(stored.cls);
    enc.put_bytes(stored.payload);
  }
  return enc.take();
}

void GenericBroadcast::restore(BytesView snapshot) {
  Decoder dec(snapshot);
  round_ = dec.get_u64();
  reporters_.clear();
  const std::uint64_t n_rep = dec.get_u64();
  for (std::uint64_t i = 0; i < n_rep && dec.ok(); ++i) reporters_.insert(dec.get_i32());
  report_ack_counts_.clear();
  const std::uint64_t n_counts = dec.get_u64();
  for (std::uint64_t i = 0; i < n_counts && dec.ok(); ++i) {
    const MsgId id = dec.get_msgid();
    report_ack_counts_[id] = dec.get_i32();
  }
  report_cls_.clear();
  const std::uint64_t n_cls = dec.get_u64();
  for (std::uint64_t i = 0; i < n_cls && dec.ok(); ++i) {
    const MsgId id = dec.get_msgid();
    report_cls_[id] = dec.get_byte();
  }
  delivered_.clear();
  const std::uint64_t n_del = dec.get_u64();
  for (std::uint64_t i = 0; i < n_del && dec.ok(); ++i) {
    const ProcessId sender = dec.get_i32();
    DeliveredIndex idx;
    idx.floor = dec.get_u64();
    const std::uint64_t n_beyond = dec.get_u64();
    for (std::uint64_t j = 0; j < n_beyond && dec.ok(); ++j) idx.beyond.insert(dec.get_u64());
    delivered_[sender] = std::move(idx);
  }
  for (auto& [id, stored] : store_) {
    if (stored.deadline != sim::kNoTimer) ctx_.cancel(stored.deadline);
    (void)id;
  }
  store_.clear();
  retired_.clear();
  retired_log_.clear();
  missing_.clear();
  const std::uint64_t n_store = dec.get_u64();
  for (std::uint64_t i = 0; i < n_store && dec.ok(); ++i) {
    const MsgId id = dec.get_msgid();
    Stored stored;
    stored.cls = dec.get_byte();
    stored.payload = dec.get_bytes();
    stored.deadline = ctx_.after(config_.resolve_timeout, [this, id] {
      if (!is_delivered(id)) trigger_resolution();
    });
    store_.emplace(id, std::move(stored));
  }
  frozen_ = false;
  resolving_ = false;
  acked_cls_.fill(0);
  acks_.clear();
  // We may be the report that completes the quorum count after a member was
  // excluded; harmless otherwise. Under the slim format this may also park
  // the round on the pull path until donors push the missing payloads.
  maybe_finalize_round();
}

void GenericBroadcast::start_new_round() {
  ++round_;
  frozen_ = false;
  resolving_ = false;
  acked_cls_.fill(0);
  reporters_.clear();
  report_ack_counts_.clear();
  report_cls_.clear();
  missing_.clear();
  // Drop ACK bookkeeping for finished rounds.
  acks_.erase(acks_.begin(), acks_.lower_bound(round_));
  // Carry undelivered messages into the new round: retire delivered
  // entries into the pull window, re-ACK (or re-trigger) the survivors and
  // restart their deadlines.
  std::vector<MsgId> carried;
  for (auto it = store_.begin(); it != store_.end();) {
    if (is_delivered(it->first)) {
      it = retire_entry(it);
    } else {
      carried.push_back(it->first);
      ++it;
    }
  }
  prune_retired();
  for (const MsgId& id : carried) {
    auto& stored = store_.at(id);
    if (stored.deadline != sim::kNoTimer) ctx_.cancel(stored.deadline);
    stored.deadline = ctx_.after(config_.resolve_timeout, [this, id] {
      if (!is_delivered(id)) trigger_resolution();
    });
    stored.acked = false;
    consider(id);
    maybe_fast_deliver(id);
  }
}

}  // namespace gcs
