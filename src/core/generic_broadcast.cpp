#include "core/generic_broadcast.hpp"

#include <algorithm>
#include <cassert>

#include "util/codec.hpp"

namespace gcs {

GenericBroadcast::GenericBroadcast(sim::Context& ctx, ReliableChannel& channel,
                                   ReliableBroadcast& rbcast, AtomicBroadcast& abcast,
                                   ConflictRelation relation)
    : GenericBroadcast(ctx, channel, rbcast, abcast, std::move(relation), Config{}) {}

GenericBroadcast::GenericBroadcast(sim::Context& ctx, ReliableChannel& channel,
                                   ReliableBroadcast& rbcast, AtomicBroadcast& abcast,
                                   ConflictRelation relation, Config config)
    : ctx_(ctx), channel_(channel), rbcast_(rbcast), abcast_(abcast),
      m_broadcasts_(metric_id("gbcast.broadcasts")),
      m_fast_delivered_(metric_id("gbcast.fast_delivered")),
      m_resolved_delivered_(metric_id("gbcast.resolved_delivered")),
      m_resolutions_(metric_id("gbcast.resolutions_triggered")),
      m_rounds_resolved_(metric_id("gbcast.rounds_resolved")),
      h_fast_latency_(metric_id("gbcast.fast_latency_us")),
      h_slow_latency_(metric_id("gbcast.slow_latency_us")),
      relation_(std::move(relation)), config_(config) {
  rbcast_.on_deliver([this](const MsgId& id, const Bytes& b) { on_gb_data(id, b); });
  channel_.subscribe(Tag::kGbcast, [this](ProcessId from, const Bytes& b) { on_ack(from, b); });
  abcast_.subscribe(AtomicBroadcast::kGbResolve,
                    [this](const MsgId& id, const Bytes& b) { on_report(id, b); });
}

void GenericBroadcast::set_group(std::vector<ProcessId> group) {
  group_ = std::move(group);
  rbcast_.set_group(group_);
  // Quorums changed: a pending resolution may now be satisfiable (e.g. a
  // crashed member was excluded, shrinking report_need).
  maybe_finalize_round();
}

bool GenericBroadcast::is_member() const {
  return std::find(group_.begin(), group_.end(), ctx_.self()) != group_.end();
}

int GenericBroadcast::fast_quorum() const {
  if (config_.unsafe_fast_quorum_override > 0) return config_.unsafe_fast_quorum_override;
  const int n = static_cast<int>(group_.size());
  return 2 * n / 3 + 1;
}

int GenericBroadcast::report_need() const {
  const int n = static_cast<int>(group_.size());
  return n - (n - 1) / 3;
}

int GenericBroadcast::tau() const {
  const int n = static_cast<int>(group_.size());
  const int t = fast_quorum() - (n - 1) / 3;
  return t < 1 ? 1 : t;
}

MsgId GenericBroadcast::gbcast(MsgClass cls, Bytes payload) {
  Encoder enc;
  enc.put_byte(cls);
  enc.put_bytes(payload);
  ctx_.metrics().inc(m_broadcasts_);
  const MsgId id = rbcast_.broadcast(enc.take());
  ctx_.trace_instant(obs::Names::get().gb_submit, id, cls);
  if (observe_submit_) observe_submit_(id, cls);
  return id;
}

void GenericBroadcast::on_gb_data(const MsgId& id, const Bytes& wire) {
  if (delivered_.count(id) || store_.count(id)) return;
  Decoder dec(wire);
  const MsgClass cls = dec.get_byte();
  Bytes payload = dec.get_bytes();
  if (!dec.ok()) return;
  Stored stored{cls, std::move(payload), sim::kNoTimer, ctx_.now()};
  stored.deadline = ctx_.after(config_.resolve_timeout, [this, id] {
    if (!delivered_.count(id)) trigger_resolution();
  });
  store_.emplace(id, std::move(stored));
  ctx_.trace_begin(obs::Names::get().gb_fast_pending, id, cls);
  consider(id);
  // An ACK quorum may have assembled before the payload arrived.
  maybe_fast_deliver(id);
}

void GenericBroadcast::consider(const MsgId& id) {
  if (!is_member() || frozen_ || delivered_.count(id)) return;
  const auto it = store_.find(id);
  if (it == store_.end()) return;
  // Conflict check against everything we ACKed this round (fast-delivered
  // messages stay in acked_: ACK sets of conflicting messages must be
  // disjoint for the quorum-intersection argument to hold).
  for (const MsgId& other : acked_) {
    const auto oit = store_.find(other);
    if (oit == store_.end()) continue;
    if (relation_.conflicts(it->second.cls, oit->second.cls)) {
      trigger_resolution();
      return;
    }
  }
  acked_.insert(id);
  ctx_.trace_instant(obs::Names::get().gb_ack, id, static_cast<std::int64_t>(round_));
  Encoder enc;
  enc.put_u64(round_);
  enc.put_msgid(id);
  channel_.send_group(group_, Tag::kGbcast, enc.bytes());
}

void GenericBroadcast::on_ack(ProcessId from, const Bytes& wire) {
  Decoder dec(wire);
  const std::uint64_t r = dec.get_u64();
  const MsgId id = dec.get_msgid();
  if (!dec.ok() || r < round_) return;  // stale round
  if (delivered_.count(id)) return;
  acks_[r][id].insert(from);
  if (r == round_) maybe_fast_deliver(id);
}

void GenericBroadcast::maybe_fast_deliver(const MsgId& id) {
  if (delivered_.count(id)) return;
  const auto rit = acks_.find(round_);
  if (rit == acks_.end()) return;
  const auto ait = rit->second.find(id);
  if (ait == rit->second.end() ||
      static_cast<int>(ait->second.size()) < fast_quorum()) {
    return;
  }
  const auto sit = store_.find(id);
  if (sit == store_.end()) return;  // payload not here yet
  ++fast_deliveries_;
  ctx_.metrics().inc(m_fast_delivered_);
  ctx_.metrics().observe(h_fast_latency_, ctx_.now() - sit->second.received_at);
  deliver(id, sit->second.cls, sit->second.payload, /*fast=*/true);
}

void GenericBroadcast::deliver(const MsgId& id, MsgClass cls, const Bytes& payload,
                               bool fast, std::uint32_t pos) {
  if (!delivered_.insert(id).second) return;
  if (observe_deliver_) observe_deliver_(id, cls, round_, fast, pos);
  const obs::Names& names = obs::Names::get();
  if (!fast) {
    ++resolved_deliveries_;
    ctx_.metrics().inc(m_resolved_delivered_);
    if (auto sit = store_.find(id); sit != store_.end() && sit->second.received_at > 0) {
      ctx_.metrics().observe(h_slow_latency_, ctx_.now() - sit->second.received_at);
    }
  }
  ctx_.trace_end(names.gb_fast_pending, id);
  ctx_.trace_instant(fast ? names.gb_deliver_fast : names.gb_deliver_slow, id);
  auto it = store_.find(id);
  if (it != store_.end() && it->second.deadline != sim::kNoTimer) {
    ctx_.cancel(it->second.deadline);
    it->second.deadline = sim::kNoTimer;
  }
  for (const auto& fn : deliver_fns_) fn(id, cls, payload);
}

void GenericBroadcast::trigger_resolution() {
  if (resolving_ || !is_member()) return;
  resolving_ = true;
  frozen_ = true;
  ctx_.metrics().inc(m_resolutions_);
  ctx_.trace_begin(obs::Names::get().gb_resolve,
                   MsgId{obs::kGbRoundKey, round_},
                   static_cast<std::int64_t>(store_.size()));
  if (ctx_.log().enabled(LogLevel::kDebug)) {
    ctx_.log().debug("gb resolution round=" + std::to_string(round_) + " store=" +
                     std::to_string(store_.size()));
  }
  // Report = snapshot of our round: every message we know (payload
  // included) plus whether we ACKed it.
  Encoder enc;
  enc.put_u64(round_);
  enc.put_u64(store_.size());
  for (const auto& [id, stored] : store_) {
    enc.put_msgid(id);
    enc.put_byte(stored.cls);
    enc.put_bytes(stored.payload);
    enc.put_bool(acked_.count(id) != 0);
  }
  abcast_.abcast(AtomicBroadcast::kGbResolve, enc.take());
}

void GenericBroadcast::on_report(const MsgId& report_id, const Bytes& wire) {
  Decoder dec(wire);
  const std::uint64_t r = dec.get_u64();
  if (!dec.ok() || r != round_) return;  // late report from a finished round
  const ProcessId reporter = report_id.sender;
  if (!reporters_.insert(reporter).second) return;  // one report per member
  const std::uint64_t count = dec.get_u64();
  for (std::uint64_t i = 0; i < count && dec.ok(); ++i) {
    const MsgId id = dec.get_msgid();
    const MsgClass cls = dec.get_byte();
    Bytes payload = dec.get_bytes();
    const bool acked = dec.get_bool();
    if (!dec.ok()) break;
    if (acked) ++report_ack_counts_[id];
    report_union_.emplace(id, std::make_pair(cls, std::move(payload)));
  }
  // A report commits everyone to this round's resolution: contribute ours.
  if (!resolving_) trigger_resolution();
  maybe_finalize_round();
}

void GenericBroadcast::maybe_finalize_round() {
  if (reporters_.empty()) return;
  if (static_cast<int>(reporters_.size()) < report_need()) return;
  // Deterministic: every member sees the same adelivered report prefix and
  // the same group (view changes are adelivered too), so first/second are
  // identical everywhere.
  std::vector<MsgId> first;
  std::vector<MsgId> second;
  for (const auto& [id, entry] : report_union_) {
    (void)entry;
    const auto cit = report_ack_counts_.find(id);
    const int ack_count = cit == report_ack_counts_.end() ? 0 : cit->second;
    if (ack_count >= tau()) {
      first.push_back(id);
    } else {
      second.push_back(id);
    }
  }
  // std::map iteration is MsgId-ordered already; keep the sort explicit.
  std::sort(first.begin(), first.end());
  std::sort(second.begin(), second.end());
  // Positions are batch-absolute across the first+second sequence, so every
  // member attributes the same (round, pos) coordinate to each message even
  // though each skips its own fast-delivered prefix inside deliver().
  std::uint32_t pos = 0;
  for (const MsgId& id : first) {
    const auto& [cls, payload] = report_union_.at(id);
    deliver(id, cls, payload, /*fast=*/false, pos++);
  }
  for (const MsgId& id : second) {
    const auto& [cls, payload] = report_union_.at(id);
    deliver(id, cls, payload, /*fast=*/false, pos++);
  }
  ++rounds_resolved_;
  ctx_.metrics().inc(m_rounds_resolved_);
  ctx_.trace_end(obs::Names::get().gb_resolve, MsgId{obs::kGbRoundKey, round_},
                 static_cast<std::int64_t>(first.size() + second.size()));
  start_new_round();
}

Bytes GenericBroadcast::snapshot() const {
  Encoder enc;
  enc.put_u64(round_);
  enc.put_u64(reporters_.size());
  for (ProcessId p : reporters_) enc.put_i32(p);
  enc.put_u64(report_ack_counts_.size());
  for (const auto& [id, count] : report_ack_counts_) {
    enc.put_msgid(id);
    enc.put_i32(count);
  }
  enc.put_u64(report_union_.size());
  for (const auto& [id, entry] : report_union_) {
    enc.put_msgid(id);
    enc.put_byte(entry.first);
    enc.put_bytes(entry.second);
  }
  enc.put_u64(delivered_.size());
  for (const MsgId& id : delivered_) enc.put_msgid(id);
  enc.put_u64(store_.size());
  for (const auto& [id, stored] : store_) {
    enc.put_msgid(id);
    enc.put_byte(stored.cls);
    enc.put_bytes(stored.payload);
  }
  return enc.take();
}

void GenericBroadcast::restore(const Bytes& snapshot) {
  Decoder dec(snapshot);
  round_ = dec.get_u64();
  reporters_.clear();
  const std::uint64_t n_rep = dec.get_u64();
  for (std::uint64_t i = 0; i < n_rep && dec.ok(); ++i) reporters_.insert(dec.get_i32());
  report_ack_counts_.clear();
  const std::uint64_t n_counts = dec.get_u64();
  for (std::uint64_t i = 0; i < n_counts && dec.ok(); ++i) {
    const MsgId id = dec.get_msgid();
    report_ack_counts_[id] = dec.get_i32();
  }
  report_union_.clear();
  const std::uint64_t n_union = dec.get_u64();
  for (std::uint64_t i = 0; i < n_union && dec.ok(); ++i) {
    const MsgId id = dec.get_msgid();
    const MsgClass cls = dec.get_byte();
    report_union_[id] = std::make_pair(cls, dec.get_bytes());
  }
  delivered_.clear();
  const std::uint64_t n_del = dec.get_u64();
  for (std::uint64_t i = 0; i < n_del && dec.ok(); ++i) delivered_.insert(dec.get_msgid());
  for (auto& [id, stored] : store_) {
    if (stored.deadline != sim::kNoTimer) ctx_.cancel(stored.deadline);
    (void)id;
  }
  store_.clear();
  const std::uint64_t n_store = dec.get_u64();
  for (std::uint64_t i = 0; i < n_store && dec.ok(); ++i) {
    const MsgId id = dec.get_msgid();
    Stored stored;
    stored.cls = dec.get_byte();
    stored.payload = dec.get_bytes();
    stored.deadline = ctx_.after(config_.resolve_timeout, [this, id] {
      if (!delivered_.count(id)) trigger_resolution();
    });
    store_.emplace(id, std::move(stored));
  }
  frozen_ = false;
  resolving_ = false;
  acked_.clear();
  acks_.clear();
  // We may be the report that completes the quorum count after a member was
  // excluded; harmless otherwise.
  maybe_finalize_round();
}

void GenericBroadcast::start_new_round() {
  ++round_;
  frozen_ = false;
  resolving_ = false;
  acked_.clear();
  reporters_.clear();
  report_ack_counts_.clear();
  report_union_.clear();
  // Drop ACK bookkeeping for finished rounds.
  acks_.erase(acks_.begin(), acks_.lower_bound(round_));
  // Carry undelivered messages into the new round: drop delivered entries,
  // re-ACK (or re-trigger) the survivors and restart their deadlines.
  std::vector<MsgId> carried;
  for (auto it = store_.begin(); it != store_.end();) {
    if (delivered_.count(it->first)) {
      if (it->second.deadline != sim::kNoTimer) ctx_.cancel(it->second.deadline);
      it = store_.erase(it);
    } else {
      carried.push_back(it->first);
      ++it;
    }
  }
  for (const MsgId& id : carried) {
    auto& stored = store_.at(id);
    if (stored.deadline != sim::kNoTimer) ctx_.cancel(stored.deadline);
    stored.deadline = ctx_.after(config_.resolve_timeout, [this, id] {
      if (!delivered_.count(id)) trigger_resolution();
    });
    consider(id);
    maybe_fast_deliver(id);
  }
}

}  // namespace gcs
