#include "obs/exporters.hpp"

#include <algorithm>
#include <set>

#include "transport/transport.hpp"

namespace gcs::obs {

namespace {

/// Human name of a wire-level component tag (channel frames carry one).
const char* tag_name(std::uint8_t tag) {
  switch (static_cast<Tag>(tag)) {
    case Tag::kChannel: return "channel";
    case Tag::kFd: return "fd.heartbeat";
    case Tag::kConsensus: return "consensus";
    case Tag::kRbcast: return "rbcast";
    case Tag::kAbcast: return "abcast";
    case Tag::kGbcast: return "gb.ack";
    case Tag::kMembership: return "membership";
    case Tag::kMonitoring: return "monitoring";
    case Tag::kVs: return "vs";
    case Tag::kSeqOrder: return "seq";
    case Tag::kToken: return "token";
    case Tag::kGbData: return "gb.data";
    case Tag::kApp: return "app";
    case Tag::kCbcast: return "cbcast";
    default: return "?";
  }
}

/// Correlation key of a record as a short string ("m3:17" message, "c:5"
/// consensus instance, "r:2" GB round, "v:1" view); empty if uncorrelated.
std::string key_of(const Record& r) {
  if (r.msg.sender == kNoProcess && r.msg.seq == 0) return {};
  switch (r.msg.sender) {
    case kConsensusKey: return "c:" + std::to_string(r.msg.seq);
    case kGbRoundKey: return "r:" + std::to_string(r.msg.seq);
    case kViewKey: return "v:" + std::to_string(r.msg.seq);
    default:
      return "m" + std::to_string(r.msg.sender) + ":" + std::to_string(r.msg.seq);
  }
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Category = the subsystem prefix of the name ("consensus.ack" ->
/// "consensus"), which makes Perfetto's category filter useful.
std::string category_of(std::string_view name) {
  const auto dot = name.find('.');
  return std::string(dot == std::string_view::npos ? name : name.substr(0, dot));
}

bool is_channel_name(const Names& names, NameId id) {
  return id == names.channel_tx || id == names.channel_rx || id == names.channel_retransmit;
}

}  // namespace

std::string chrome_trace_json(const std::vector<Record>& records) {
  const Names& names = Names::get();
  std::string out = "{\n\"traceEvents\": [\n";
  bool first = true;
  auto emit = [&](const std::string& event) {
    if (!first) out += ",\n";
    first = false;
    out += event;
  };

  // Process-name metadata so Perfetto labels tracks "p0", "p1", ...
  std::set<ProcessId> procs;
  for (const Record& r : records) {
    if (r.proc != kNoProcess) procs.insert(r.proc);
  }
  for (ProcessId p : procs) {
    emit("{\"ph\": \"M\", \"name\": \"process_name\", \"pid\": " + std::to_string(p) +
         ", \"tid\": 0, \"args\": {\"name\": \"p" + std::to_string(p) + "\"}}");
  }

  for (const Record& r : records) {
    const std::string name(name_of(r.name));
    const std::string key = key_of(r);
    std::string ev = "{\"name\": \"" + json_escape(name) + "\", \"cat\": \"" +
                     json_escape(category_of(name)) + "\", \"pid\": " +
                     std::to_string(r.proc) + ", \"tid\": 0, \"ts\": " +
                     std::to_string(r.ts);
    std::string args = "\"arg\": " + std::to_string(r.arg);
    if (is_channel_name(names, r.name)) {
      args += ", \"peer\": " + std::to_string(channel_arg_peer(r.arg)) +
              ", \"tag\": \"" + tag_name(channel_arg_tag(r.arg)) + "\", \"size\": " +
              std::to_string(channel_arg_size(r.arg));
    }
    if (key.empty()) {
      // Uncorrelated point event: a plain thread-scoped instant.
      ev += ", \"ph\": \"i\", \"s\": \"t\"";
    } else {
      // Correlated: async events grouped by id — Perfetto renders each key
      // as one track, which is the "span tree keyed by message id".
      const char* ph = r.phase == Phase::kBegin ? "b" : r.phase == Phase::kEnd ? "e" : "n";
      ev += std::string(", \"ph\": \"") + ph + "\", \"id\": \"" + json_escape(key) + "\"";
      args += ", \"key\": \"" + json_escape(key) + "\"";
    }
    ev += ", \"args\": {" + args + "}}";
    emit(ev);
  }
  out += "\n],\n\"displayTimeUnit\": \"ms\"\n}\n";
  return out;
}

bool write_chrome_trace(const Recorder& recorder, const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) return false;
  const std::string json = chrome_trace_json(recorder.records());
  const bool ok = std::fwrite(json.data(), 1, json.size(), f) == json.size();
  return std::fclose(f) == 0 && ok;
}

std::string render_sequence(const std::vector<Record>& records,
                            const SequenceOptions& options) {
  const Names& names = Names::get();
  int n = options.num_processes;
  if (n == 0) {
    for (const Record& r : records) n = std::max(n, r.proc + 1);
  }
  if (n <= 0) return {};

  const auto col = [](ProcessId p) { return 6 + 9 * static_cast<std::size_t>(p); };
  std::string out = "    ";
  for (ProcessId p = 0; p < n; ++p) {
    out += "  p" + std::to_string(p) + "      ";
  }
  out += "\n";

  std::size_t lines = 0;
  for (const Record& r : records) {
    if (r.name != names.channel_tx || r.ts < options.since) continue;
    if (lines >= options.max_lines) break;
    const ProcessId to = channel_arg_peer(r.arg);
    const std::uint8_t tag = channel_arg_tag(r.arg);
    if (static_cast<Tag>(tag) == Tag::kFd) continue;  // heartbeat noise
    ++lines;
    std::string cols(col(static_cast<ProcessId>(n - 1)) + 2, ' ');
    for (ProcessId p = 0; p < n; ++p) cols[col(p)] = '.';
    cols[col(r.proc)] = 'o';
    cols[col(to)] = '>';
    char line[160];
    std::snprintf(line, sizeof(line), "[%9.3fms] %s  p%d -> p%d  channel[%s] (%zu B)\n",
                  static_cast<double>(r.ts) / 1000.0, cols.c_str(), r.proc, to,
                  tag_name(tag), channel_arg_size(r.arg));
    out += line;
  }
  return out;
}

std::string format_record(const Record& r) {
  const char* phase = r.phase == Phase::kBegin ? "B" : r.phase == Phase::kEnd ? "E" : ".";
  const std::string key = key_of(r);
  char buf[192];
  std::snprintf(buf, sizeof(buf), "[%10.3fms] p%-2d %s %-22s %-8s arg=%lld",
                static_cast<double>(r.ts) / 1000.0, r.proc, phase,
                std::string(name_of(r.name)).c_str(), key.c_str(),
                static_cast<long long>(r.arg));
  return buf;
}

}  // namespace gcs::obs
