#include "obs/oracle.hpp"

#include <algorithm>

namespace gcs::obs {

namespace {

// Packed global coordinates. Batch indexes / resolution positions are
// bounded by in-flight message counts, far below 2^20; clamp defensively so
// a pathological value cannot alias another instance's coordinate space.
constexpr std::uint32_t kIndexBits = 20;
constexpr std::uint32_t kIndexMask = (1u << kIndexBits) - 1;

constexpr std::uint64_t ab_coord(std::uint64_t instance, std::uint32_t index) {
  return (instance << kIndexBits) | (index & kIndexMask);
}

// GB coordinate: (round, phase, pos); phase 0 = fast path, 1 = resolution.
constexpr std::uint64_t gb_coord(std::uint64_t round, bool resolution, std::uint32_t pos) {
  return (round << (kIndexBits + 1)) |
         (static_cast<std::uint64_t>(resolution ? 1 : 0) << kIndexBits) |
         (pos & kIndexMask);
}

constexpr std::uint64_t gb_coord_round(std::uint64_t coord) {
  return coord >> (kIndexBits + 1);
}

constexpr bool gb_coord_resolution(std::uint64_t coord) {
  return ((coord >> kIndexBits) & 1) != 0;
}

std::string members_string(const std::vector<ProcessId>& members) {
  std::string out = "{";
  for (std::size_t i = 0; i < members.size(); ++i) {
    if (i) out += ",";
    out += std::to_string(members[i]);
  }
  return out + "}";
}

}  // namespace

std::string_view property_name(Property p) {
  switch (p) {
    case Property::kAbTotalOrder: return "ab.total_order";
    case Property::kAbNoDuplication: return "ab.no_duplication";
    case Property::kAbNoCreation: return "ab.no_creation";
    case Property::kAbUniformAgreement: return "ab.uniform_agreement";
    case Property::kRbIntegrity: return "rb.integrity";
    case Property::kRbNoDuplication: return "rb.no_duplication";
    case Property::kGbConflictOrder: return "gb.conflict_order";
    case Property::kGbFastPathStability: return "gb.fast_path_stability";
    case Property::kGbNoDuplication: return "gb.no_duplication";
    case Property::kGbNoCreation: return "gb.no_creation";
    case Property::kGbAgreement: return "gb.agreement";
    case Property::kViewAgreement: return "view.agreement";
    case Property::kViewMonotonicity: return "view.monotonicity";
    case Property::kExclusionAccountability: return "membership.accountability";
    case Property::kCount_: break;
  }
  return "?";
}

std::string_view verdict_name(Verdict v) {
  switch (v) {
    case Verdict::kPass: return "pass";
    case Verdict::kViolated: return "violated";
    case Verdict::kNotChecked: return "not_checked";
  }
  return "?";
}

Oracle::Oracle() = default;

Oracle::PerProcess& Oracle::proc(ProcessId p) {
  const auto idx = static_cast<std::size_t>(p < 0 ? 0 : p);
  if (idx >= procs_.size()) procs_.resize(idx + 1);
  return procs_[idx];
}

void Oracle::violate(Property prop, Violation v) {
  v.property = prop;
  ++violation_counts_[static_cast<std::size_t>(prop)];
  if (violations_.size() < kMaxViolations) {
    violations_.push_back(std::move(v));
  } else {
    ++truncated_violations_;
  }
}

void Oracle::on_abcast_submit(ProcessId p, const MsgId& m) {
  (void)p;
  ++stats_.abcast_submits;
  ab_submitted_.insert(m);
}

void Oracle::on_adeliver(ProcessId p, const MsgId& m, std::uint8_t subtag,
                         std::uint64_t instance, std::uint32_t index) {
  (void)subtag;
  ++stats_.adeliveries;
  PerProcess& pp = proc(p);

  if (!pp.ab_delivered_set.insert(m).second) {
    violate(Property::kAbNoDuplication,
            {Property::kAbNoDuplication, p, m, {}, static_cast<std::int64_t>(instance),
             index, "message adelivered twice at p" + std::to_string(p)});
    return;
  }
  ++pp.ab_delivered;

  if (!ab_submitted_.count(m)) {
    violate(Property::kAbNoCreation,
            {Property::kAbNoCreation, p, m, {}, static_cast<std::int64_t>(instance), index,
             "adelivered message " + to_string(m) + " was never abcast"});
  }

  const std::uint64_t coord = ab_coord(instance, index);

  // (instance, index) -> msg must be a global function...
  auto [cit, fresh] = ab_coord_msg_.emplace(coord, m);
  if (!fresh && !(cit->second == m)) {
    violate(Property::kAbTotalOrder,
            {Property::kAbTotalOrder, p, m, cit->second,
             static_cast<std::int64_t>(instance), index,
             "instance " + std::to_string(instance) + "[" + std::to_string(index) +
                 "] delivered as " + to_string(m) + " at p" + std::to_string(p) +
                 " but as " + to_string(cit->second) + " elsewhere"});
  }
  // ... and so must msg -> (instance, index).
  auto [mit, mfresh] = ab_msg_coord_.emplace(m, coord);
  if (!mfresh && mit->second != coord) {
    violate(Property::kAbTotalOrder,
            {Property::kAbTotalOrder, p, m, {}, static_cast<std::int64_t>(instance), index,
             to_string(m) + " delivered at two distinct total-order positions"});
  }

  // Per-process delivery coordinates must strictly grow (a joiner starts at
  // a later instance; that is still monotone).
  if (pp.ab_seen && coord <= pp.ab_last_coord) {
    violate(Property::kAbTotalOrder,
            {Property::kAbTotalOrder, p, m, {}, static_cast<std::int64_t>(instance), index,
             "p" + std::to_string(p) + " delivered " + to_string(m) +
                 " out of total order (coordinate regressed)"});
  }
  pp.ab_seen = true;
  pp.ab_last_coord = coord;
  ab_max_coord_ = std::max(ab_max_coord_, coord);
  ab_any_ = true;
}

void Oracle::on_rb_broadcast(ProcessId p, std::uint8_t tag, const MsgId& m) {
  (void)p;
  ++stats_.rb_broadcasts;
  rb_[tag].broadcast.insert(m);
}

void Oracle::on_rb_deliver(ProcessId p, std::uint8_t tag, const MsgId& m) {
  ++stats_.rb_deliveries;
  TagState& ts = rb_[tag];
  if (!ts.broadcast.count(m)) {
    violate(Property::kRbIntegrity,
            {Property::kRbIntegrity, p, m, {}, tag, 0,
             "rdelivered message " + to_string(m) + " was never broadcast (tag " +
                 std::to_string(tag) + ")"});
  }
  if (!ts.delivered[p].insert(m).second) {
    violate(Property::kRbNoDuplication,
            {Property::kRbNoDuplication, p, m, {}, tag, 0,
             "message rdelivered twice at p" + std::to_string(p) + " (tag " +
                 std::to_string(tag) + ")"});
  }
}

void Oracle::on_gb_submit(ProcessId p, const MsgId& m, std::uint8_t cls) {
  (void)p;
  ++stats_.gb_submits;
  gb_submitted_.emplace(m, cls);
}

void Oracle::on_gdeliver(ProcessId p, const MsgId& m, std::uint8_t cls,
                         std::uint64_t round, bool fast, std::uint32_t pos) {
  ++stats_.gdeliveries;
  if (fast) ++stats_.gb_fast_deliveries;
  PerProcess& pp = proc(p);

  if (!pp.gb_delivered_set.insert(m).second) {
    violate(Property::kGbNoDuplication,
            {Property::kGbNoDuplication, p, m, {}, static_cast<std::int64_t>(round), pos,
             "message gdelivered twice at p" + std::to_string(p)});
    return;
  }
  ++pp.gb_delivered;

  const auto sub = gb_submitted_.find(m);
  if (sub == gb_submitted_.end()) {
    violate(Property::kGbNoCreation,
            {Property::kGbNoCreation, p, m, {}, static_cast<std::int64_t>(round), pos,
             "gdelivered message " + to_string(m) + " was never gbcast"});
  } else if (sub->second != cls) {
    violate(Property::kGbNoCreation,
            {Property::kGbNoCreation, p, m, {}, static_cast<std::int64_t>(round), pos,
             to_string(m) + " gdelivered with class " + std::to_string(cls) +
                 " but gbcast with class " + std::to_string(sub->second)});
  }

  // A message's delivery round is a global invariant: fast in round r at
  // one process means "by end of round r" everywhere. A later round at
  // another process means a fast delivery was reordered past a resolution.
  auto [rit, rfresh] = gb_msg_round_.emplace(m, round);
  if (rfresh) {
    ++gb_distinct_delivered_;
    gb_msg_seen_fast_[m] = fast;
  } else {
    if (rit->second != round) {
      violate(Property::kGbFastPathStability,
              {Property::kGbFastPathStability, p, m, {},
               static_cast<std::int64_t>(round),
               static_cast<std::int64_t>(rit->second),
               to_string(m) + " delivered in round " + std::to_string(round) + " at p" +
                   std::to_string(p) + " but in round " + std::to_string(rit->second) +
                   " elsewhere"});
    }
    if (fast) gb_msg_seen_fast_[m] = true;
  }

  if (fast) {
    // Quorum-intersection core: two conflicting messages can never both
    // assemble a fast quorum in the same round, at any pair of processes.
    auto& by_class = gb_fast_by_round_[round];
    for (const auto& [other_cls, ids] : by_class) {
      if (!conflict(cls, other_cls)) continue;
      for (const MsgId& other : ids) {
        if (other == m) continue;
        violate(Property::kGbConflictOrder,
                {Property::kGbConflictOrder, p, m, other,
                 static_cast<std::int64_t>(round), cls,
                 "conflicting messages " + to_string(m) + " and " + to_string(other) +
                     " both fast-delivered in round " + std::to_string(round)});
      }
    }
    auto& ids = by_class[cls];
    if (std::find(ids.begin(), ids.end(), m) == ids.end() && ids.size() < 4) {
      ids.push_back(m);
    }
  } else {
    // Resolution deliveries are a deterministic global sequence per round:
    // (round, pos) -> msg must be a function.
    const std::uint64_t coord = gb_coord(round, true, pos);
    auto [cit, cfresh] = gb_resolution_msg_.emplace(coord, m);
    if (!cfresh && !(cit->second == m)) {
      violate(Property::kGbConflictOrder,
              {Property::kGbConflictOrder, p, m, cit->second,
               static_cast<std::int64_t>(round), pos,
               "round " + std::to_string(round) + " resolution[" + std::to_string(pos) +
                   "] delivered as " + to_string(m) + " at p" + std::to_string(p) +
                   " but as " + to_string(cit->second) + " elsewhere"});
    }
  }

  // Per-process coordinates are monotone: rounds never regress, and within
  // a round all fast deliveries precede the resolution deliveries. Two
  // fast deliveries of one round are mutually unordered (equal coordinate).
  const std::uint64_t coord = gb_coord(round, !fast, fast ? 0 : pos);
  if (pp.gb_seen) {
    const bool regressed =
        coord < pp.gb_last_coord ||
        (coord == pp.gb_last_coord && gb_coord_resolution(coord));
    if (regressed) {
      const Property prop = gb_coord_round(coord) < gb_coord_round(pp.gb_last_coord)
                                ? Property::kGbFastPathStability
                                : Property::kGbConflictOrder;
      violate(prop, {prop, p, m, {}, static_cast<std::int64_t>(round), pos,
                     "p" + std::to_string(p) + " delivered " + to_string(m) +
                         " out of round order (round " + std::to_string(round) +
                         (fast ? " fast" : " resolution") + " after round " +
                         std::to_string(gb_coord_round(pp.gb_last_coord)) +
                         (gb_coord_resolution(pp.gb_last_coord) ? " resolution" : " fast") +
                         ")"});
    }
  }
  pp.gb_seen = true;
  pp.gb_last_coord = std::max(coord, pp.gb_last_coord);
}

void Oracle::on_view_install(ProcessId p, std::uint64_t view_id,
                             const std::vector<ProcessId>& members,
                             bool via_state_transfer) {
  ++stats_.view_installs;
  PerProcess& pp = proc(p);

  // View agreement: id -> member list is a global function.
  auto [it, fresh] = view_members_.emplace(view_id, members);
  if (!fresh && it->second != members) {
    violate(Property::kViewAgreement,
            {Property::kViewAgreement, p, {}, {}, static_cast<std::int64_t>(view_id), 0,
             "view " + std::to_string(view_id) + " installed as " +
                 members_string(members) + " at p" + std::to_string(p) + " but as " +
                 members_string(it->second) + " elsewhere"});
  }

  // Monotonicity: installed ids strictly grow per process (a rejoin lands
  // on a strictly later view).
  if (pp.has_view && view_id <= pp.view_id) {
    violate(Property::kViewMonotonicity,
            {Property::kViewMonotonicity, p, {}, {}, static_cast<std::int64_t>(view_id),
             static_cast<std::int64_t>(pp.view_id),
             "p" + std::to_string(p) + " installed view " + std::to_string(view_id) +
                 " after view " + std::to_string(pp.view_id)});
  }

  // Accountability: a member may only disappear from the view if its
  // removal was previously proposed (monitoring decision, administrative
  // remove, or voluntary leave). Checked against the installer's previous
  // view; joins and state-transfer installs have no baseline to diff.
  if (!via_state_transfer && pp.has_view && view_id == pp.view_id + 1) {
    for (ProcessId q : pp.view_members) {
      if (std::find(members.begin(), members.end(), q) != members.end()) continue;
      proc(q).was_excluded = true;
      const std::uint64_t key = (view_id << 16) | static_cast<std::uint64_t>(q & 0xffff);
      if (!accountability_checked_.insert(key).second) continue;
      if (!removal_justifications_.count(q)) {
        violate(Property::kExclusionAccountability,
                {Property::kExclusionAccountability, p, {}, {},
                 static_cast<std::int64_t>(view_id), q,
                 "p" + std::to_string(q) + " excluded in view " + std::to_string(view_id) +
                     " without any prior removal proposal or monitoring suspicion"});
      }
    }
  } else if (!via_state_transfer && pp.has_view && view_id > pp.view_id + 1) {
    // Skipped views (should not happen outside state transfer): mark the
    // disappeared members excluded but do not attribute accountability.
    for (ProcessId q : pp.view_members) {
      if (std::find(members.begin(), members.end(), q) == members.end()) {
        proc(q).was_excluded = true;
      }
    }
  }

  if (!pp.has_view && via_state_transfer) pp.joined_late = true;
  if (!pp.has_view && !via_state_transfer && view_id > 0) pp.joined_late = true;
  pp.has_view = true;
  pp.view_id = view_id;
  pp.view_members = members;
}

void Oracle::on_remove_proposed(ProcessId proposer, ProcessId target, bool voluntary) {
  (void)proposer;
  (void)voluntary;
  ++stats_.remove_proposals;
  ++removal_justifications_[target];
}

void Oracle::on_exclusion_decided(ProcessId at, ProcessId target, int votes) {
  (void)at;
  (void)votes;
  ++stats_.exclusion_decisions;
  ++removal_justifications_[target];
}

void Oracle::on_suspicion(ProcessId at, ProcessId target, bool long_class) {
  (void)at;
  (void)target;
  ++stats_.suspicions;
  if (long_class) ++stats_.long_suspicions;
}

void Oracle::on_restore(ProcessId at, ProcessId target, bool long_class) {
  (void)at;
  (void)target;
  (void)long_class;
}

void Oracle::note_crash(ProcessId p) {
  ++stats_.crashes;
  proc(p).crashed = true;
}

void Oracle::finalize() {
  if (finalized_) return;
  finalized_ = true;

  // Stable processes: founding members that survived the whole run inside
  // the group. Joiners skip history by design (state transfer) and crashed
  // or excluded processes are exempt from completeness, so the agreement
  // checks below are exact for the stable set and silent for the rest.
  std::uint64_t final_view = 0;
  bool any_view = false;
  for (const auto& [id, members] : view_members_) {
    (void)members;
    if (!any_view || id > final_view) final_view = id;
    any_view = true;
  }
  const std::vector<ProcessId>* final_members =
      any_view ? &view_members_.at(final_view) : nullptr;

  for (std::size_t i = 0; i < procs_.size(); ++i) {
    const PerProcess& pp = procs_[i];
    const auto p = static_cast<ProcessId>(i);
    if (!pp.has_view || pp.joined_late || pp.crashed || pp.was_excluded) continue;
    if (final_members && std::find(final_members->begin(), final_members->end(), p) ==
                             final_members->end()) {
      continue;
    }
    if (pp.ab_delivered != ab_coord_msg_.size()) {
      violate(Property::kAbUniformAgreement,
              {Property::kAbUniformAgreement, p, {}, {},
               static_cast<std::int64_t>(pp.ab_delivered),
               static_cast<std::int64_t>(ab_coord_msg_.size()),
               "stable member p" + std::to_string(p) + " adelivered " +
                   std::to_string(pp.ab_delivered) + " of " +
                   std::to_string(ab_coord_msg_.size()) + " globally adelivered messages"});
    }
    if (pp.gb_delivered != gb_distinct_delivered_) {
      violate(Property::kGbAgreement,
              {Property::kGbAgreement, p, {}, {},
               static_cast<std::int64_t>(pp.gb_delivered),
               static_cast<std::int64_t>(gb_distinct_delivered_),
               "stable member p" + std::to_string(p) + " gdelivered " +
                   std::to_string(pp.gb_delivered) + " of " +
                   std::to_string(gb_distinct_delivered_) +
                   " globally gdelivered messages"});
    }
  }
}

Verdict Oracle::verdict(Property p) const {
  if (violation_counts_[static_cast<std::size_t>(p)] > 0) return Verdict::kViolated;
  if ((p == Property::kAbUniformAgreement || p == Property::kGbAgreement) && !finalized_) {
    return Verdict::kNotChecked;
  }
  return Verdict::kPass;
}

std::string Oracle::summary() const {
  std::string out;
  for (std::size_t i = 0; i < kPropertyCount; ++i) {
    const auto p = static_cast<Property>(i);
    out += std::string(property_name(p)) + ": " + std::string(verdict_name(verdict(p)));
    if (violation_counts_[i] > 0) {
      out += " (" + std::to_string(violation_counts_[i]) + ")";
    }
    out += "\n";
  }
  for (const Violation& v : violations_) {
    out += "  !! " + std::string(property_name(v.property)) + ": " + v.detail + "\n";
  }
  if (truncated_violations_ > 0) {
    out += "  (+" + std::to_string(truncated_violations_) + " more violations)\n";
  }
  return out;
}

}  // namespace gcs::obs
