/// \file probes.hpp
/// State probes: periodic sampling of per-process gauges into bounded
/// time-series.
///
/// The oracle answers "did anything illegal happen"; the probes answer
/// "what did the run look like while it happened". The wiring layer
/// (GcsStack) registers one gauge callback per (process, metric) — channel
/// send-queue depth, rbcast pending set size, open consensus instances, GB
/// fast-path ratio, FD suspicion count — and the simulation drives
/// sample() on a periodic virtual-time timer. Each call appends one point
/// per registered gauge, so all series share one timestamp axis.
///
/// Series are bounded: past `max_points` retained samples the probe set
/// uniformly decimates (drops every other retained point and doubles its
/// sampling stride), so arbitrarily long chaos runs keep O(max_points)
/// memory while still covering the whole run. Decimation is a pure
/// function of the sample count — identical runs produce identical series.
///
/// Probes know nothing about the stack (obs must stay below sim/core in
/// the link order); gauge callbacks close over the components they read.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "util/metrics.hpp"
#include "util/types.hpp"

namespace gcs::obs {

class Probes {
 public:
  /// Reads the current gauge value. Called only from sample(), i.e. from
  /// simulation context — it may touch live component state freely.
  using Gauge = std::function<double()>;

  explicit Probes(std::size_t max_points = 512) : max_points_(max_points) {}

  /// Register a gauge for process \p p under the interned metric \p name.
  /// Register everything before the first sample(); a late series would
  /// have fewer points than the shared timestamp axis.
  void add_gauge(ProcessId p, std::string_view name, Gauge gauge);

  /// Take one sample of every registered gauge at virtual time \p now.
  void sample(TimePoint now);

  /// One sampled series (values parallel to timestamps()).
  struct Series {
    ProcessId proc = kNoProcess;
    MetricId metric = kNoMetric;
    std::vector<double> values;
  };

  const std::vector<TimePoint>& timestamps() const { return timestamps_; }
  const std::vector<Series>& series() const { return series_; }
  std::size_t gauge_count() const { return series_.size(); }
  std::uint64_t samples_taken() const { return samples_taken_; }
  /// Current decimation stride (1 = every sample retained).
  std::uint64_t stride() const { return stride_; }

 private:
  struct GaugeSlot {
    Gauge fn;
  };

  std::size_t max_points_;
  std::vector<GaugeSlot> gauges_;   // parallel to series_
  std::vector<Series> series_;
  std::vector<TimePoint> timestamps_;
  std::uint64_t samples_taken_ = 0;
  std::uint64_t stride_ = 1;
};

}  // namespace gcs::obs
