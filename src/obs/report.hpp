/// \file report.hpp
/// Scenario health reports: one `scenario_report.json` per run plus a
/// compact text summary.
///
/// A report bundles everything a run produced for the outside world:
///   - the oracle's verdict per property and every recorded violation
///     (structured: property, process, MsgIds, coordinates, detail);
///   - the oracle's event-stream statistics (tap-wiring sanity signal);
///   - the probe time-series (shared virtual-time axis, one series per
///     registered (process, metric) gauge);
///   - final counters and latency-histogram summaries from the run's
///     Metrics registry.
///
/// The JSON is deterministic for a deterministic run: counters and
/// histograms are emitted name-sorted, violations and probe series in
/// their (deterministic) recording order, and nothing touches wall-clock
/// time — determinism_test byte-compares two same-seed reports.
///
/// write_scenario_report() resolves the output directory from the
/// NGGCS_REPORT_DIR environment variable (unset = don't write, so plain
/// local test runs stay quiet; CI sets it and schema-checks + uploads the
/// artifacts).
#pragma once

#include <optional>
#include <string>

#include "obs/oracle.hpp"
#include "obs/probes.hpp"
#include "util/metrics.hpp"

namespace gcs::obs {

/// Render the full scenario report as a JSON document. \p probes and
/// \p metrics may be null (the corresponding sections are emitted empty).
std::string render_scenario_report(const std::string& scenario, std::uint64_t seed,
                                   const Oracle& oracle, const Probes* probes,
                                   const Metrics* metrics);

/// Machine-readable violation export: just the oracle's violation records as
/// a JSON array (same element schema as the scenario report's "violations"
/// section). The schedule explorer embeds this in repro artifacts so CI can
/// diff violations without parsing a whole report.
std::string render_violations_json(const Oracle& oracle);

/// JSON string escaping (the exact rules every report produced by this
/// module uses). Exposed for tooling that embeds reports inside other JSON
/// documents (repro artifacts).
std::string json_escape_string(std::string_view s);

/// Compact human summary: one line per property, then the violations.
std::string render_scenario_summary(const std::string& scenario, const Oracle& oracle);

/// Write \p json to `<dir>/scenario_report_<scenario>.json` where dir comes
/// from NGGCS_REPORT_DIR. Returns the path written, or nullopt when the
/// variable is unset/empty (not an error) — and nullopt on I/O failure.
std::optional<std::string> write_scenario_report(const std::string& scenario,
                                                 const std::string& json);

}  // namespace gcs::obs
