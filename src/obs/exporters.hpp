/// \file exporters.hpp
/// Trace exporters for the flight recorder (obs/trace.hpp).
///
/// Two renderings of the same record stream:
///   - Chrome trace-event JSON: async spans/instants grouped by correlation
///     key, loadable in Perfetto / chrome://tracing. Timestamps are virtual
///     time in microseconds, pids are process ids.
///   - Text sequence diagram: one column per process, one line per channel
///     data transmit — the teaching view trace_tool prints (it used to
///     reverse-engineer this from raw datagrams; now it reads the tracer).
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "obs/trace.hpp"

namespace gcs::obs {

/// Serialize \p records as a Chrome trace-event JSON document.
std::string chrome_trace_json(const std::vector<Record>& records);

inline std::string chrome_trace_json(const Recorder& recorder) {
  return chrome_trace_json(recorder.records());
}

/// Write the Chrome trace-event JSON to \p path. Returns false on I/O error.
bool write_chrome_trace(const Recorder& recorder, const std::string& path);

struct SequenceOptions {
  /// Stop after this many diagram lines (the ring is bounded; the diagram
  /// should be too).
  std::size_t max_lines = 60;
  /// Number of process columns; 0 infers max process id + 1 from records.
  int num_processes = 0;
  /// Only render records with ts >= since (virtual microseconds).
  TimePoint since = 0;
};

/// Render channel data transmits as a sequence diagram: one column per
/// process, 'o' at the sender, '>' at the receiver, labelled with the upper
/// component tag riding the channel frame.
std::string render_sequence(const std::vector<Record>& records,
                            const SequenceOptions& options = {});

inline std::string render_sequence(const Recorder& recorder,
                                   const SequenceOptions& options = {}) {
  return render_sequence(recorder.records(), options);
}

/// One-line human rendering of a record ("[  12.345ms] p1 consensus.ack
/// c:0 arg=1"), used by the flight-recorder dump in test failures.
std::string format_record(const Record& r);

}  // namespace gcs::obs
