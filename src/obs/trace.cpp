#include "obs/trace.hpp"

#include <cassert>
#include <map>
#include <mutex>
#include <string>

namespace gcs::obs {

namespace {

struct Registry {
  // std::less<> enables string_view lookups without constructing a string.
  std::map<std::string, NameId, std::less<>> ids;
  std::vector<std::string_view> names;  // views into the map's stable keys
  // Process-global; the schedule explorer constructs stacks (which intern
  // span names) from parallel worker threads.
  std::mutex mu;
};

Registry& registry() {
  static Registry r;
  return r;
}

}  // namespace

NameId intern_name(std::string_view name) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  if (auto it = r.ids.find(name); it != r.ids.end()) return it->second;
  assert(r.names.size() < kNoName);
  const auto id = static_cast<NameId>(r.names.size());
  auto [it, inserted] = r.ids.emplace(std::string(name), id);
  (void)inserted;
  r.names.push_back(it->first);
  return id;
}

NameId find_name(std::string_view name) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  auto it = r.ids.find(name);
  return it == r.ids.end() ? kNoName : it->second;
}

std::string_view name_of(NameId id) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  return id < r.names.size() ? r.names[id] : std::string_view{};
}

void Recorder::enable(std::size_t capacity) {
  if (capacity == 0) {
    disable();
    return;
  }
  if (ring_.size() != capacity) {
    ring_.assign(capacity, Record{});
    head_ = 0;
    count_ = 0;
  }
  enabled_ = true;
}

void Recorder::disable() { enabled_ = false; }

void Recorder::clear() {
  head_ = 0;
  count_ = 0;
  dropped_ = 0;
}

std::vector<Record> Recorder::records() const {
  std::vector<Record> out;
  out.reserve(count_);
  // Oldest record sits at head_ when the ring has wrapped, at 0 otherwise.
  const std::size_t start = count_ == ring_.size() ? head_ : 0;
  for (std::size_t i = 0; i < count_; ++i) {
    out.push_back(ring_[(start + i) % ring_.size()]);
  }
  return out;
}

std::vector<Record> Recorder::tail(ProcessId proc, std::size_t n) const {
  std::vector<Record> all = records();
  std::vector<Record> out;
  // Walk backwards collecting the last n matching records, then reverse.
  for (auto it = all.rbegin(); it != all.rend() && out.size() < n; ++it) {
    if (proc == kNoProcess || it->proc == proc) out.push_back(*it);
  }
  return {out.rbegin(), out.rend()};
}

const Names& Names::get() {
  static const Names names = [] {
    Names n;
    n.channel_tx = intern_name("channel.tx");
    n.channel_rx = intern_name("channel.rx");
    n.channel_retransmit = intern_name("channel.retransmit");
    n.rbcast_flood = intern_name("rbcast.flood");
    n.rbcast_relay = intern_name("rbcast.relay");
    n.rbcast_deliver = intern_name("rbcast.deliver");
    n.consensus_instance = intern_name("consensus.instance");
    n.consensus_estimate = intern_name("consensus.estimate");
    n.consensus_propose = intern_name("consensus.propose");
    n.consensus_ack = intern_name("consensus.ack");
    n.consensus_nack = intern_name("consensus.nack");
    n.consensus_decide = intern_name("consensus.decide");
    n.abcast_submit = intern_name("abcast.submit");
    n.abcast_pending = intern_name("abcast.pending");
    n.abcast_deliver = intern_name("abcast.deliver");
    n.gb_submit = intern_name("gb.submit");
    n.gb_ack = intern_name("gb.ack");
    n.gb_fast_pending = intern_name("gb.fast_pending");
    n.gb_deliver_fast = intern_name("gb.deliver.fast");
    n.gb_deliver_slow = intern_name("gb.deliver.slow");
    n.gb_resolve = intern_name("gb.resolve");
    n.view_install = intern_name("view.install");
    n.membership_join_req = intern_name("membership.join_req");
    n.membership_state_txf = intern_name("membership.state_transfer");
    n.fd_suspect = intern_name("fd.suspect");
    n.fd_restore = intern_name("fd.restore");
    n.monitoring_exclusion = intern_name("monitoring.exclusion");
    return n;
  }();
  return names;
}

}  // namespace gcs::obs
