/// \file trace.hpp
/// Message-lifecycle tracing: interned span/event names, a bounded
/// per-process ring-buffer flight recorder, and a cheap per-process Tracer
/// handle threaded through the protocol stack.
///
/// Span model: every record carries a correlation key (a MsgId, or a
/// synthetic key for consensus instances / GB rounds / views), so one
/// message's lifecycle — submit → flood → consensus → decide → deliver —
/// reads as a causally linked span tree keyed by message id. Records are
/// fixed-size PODs appended to a preallocated ring; steady-state tracing
/// never allocates, and a disabled tracer costs one load + compare at the
/// call site (the branch predicts perfectly).
///
/// Exporters live in obs/exporters.hpp: Chrome trace-event JSON (loadable
/// in Perfetto, virtual-time timestamps) and a text sequence diagram.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "util/types.hpp"

namespace gcs::obs {

/// Dense id of an interned span/event name.
using NameId = std::uint16_t;

/// Sentinel: name not interned (returned by find_name for unknown names).
inline constexpr NameId kNoName = 0xffff;

/// Intern \p name, returning its stable id (idempotent, process-wide).
NameId intern_name(std::string_view name);

/// Lookup without interning; kNoName if the name was never interned.
NameId find_name(std::string_view name);

/// Reverse lookup (exporters, flight-recorder dumps).
std::string_view name_of(NameId id);

/// What a record marks on its correlation key's timeline.
enum class Phase : std::uint8_t {
  kBegin,    ///< span opens (matched by a later kEnd with the same key+name)
  kEnd,      ///< span closes
  kInstant,  ///< point event
};

/// Synthetic correlation-key senders for things that are not messages.
/// MsgId{kConsensusKey, k} identifies consensus instance k, etc. Real
/// process ids are >= 0, so these can never collide with a message id.
inline constexpr ProcessId kConsensusKey = -2;  ///< seq = instance number
inline constexpr ProcessId kGbRoundKey = -3;    ///< seq = GB round number
inline constexpr ProcessId kViewKey = -4;       ///< seq = view id

/// One fixed-size trace record. `msg` is the correlation key; a
/// default-constructed MsgId (sender == kNoProcess) means "uncorrelated".
/// `arg` is a free-form argument whose meaning depends on `name` (round
/// number, packed to/tag/size for channel transmits, view id, ...).
struct Record {
  TimePoint ts = 0;
  MsgId msg{};
  std::int64_t arg = 0;
  ProcessId proc = kNoProcess;
  NameId name = kNoName;
  Phase phase = Phase::kInstant;
};

/// Pack/unpack helpers for channel transmit/receive records: the argument
/// carries (peer, upper tag, datagram payload size) in one int64.
constexpr std::int64_t pack_channel_arg(ProcessId peer, std::uint8_t tag, std::size_t size) {
  return (static_cast<std::int64_t>(size) << 16) |
         (static_cast<std::int64_t>(static_cast<std::uint8_t>(peer)) << 8) |
         static_cast<std::int64_t>(tag);
}
constexpr ProcessId channel_arg_peer(std::int64_t arg) {
  return static_cast<ProcessId>((arg >> 8) & 0xff);
}
constexpr std::uint8_t channel_arg_tag(std::int64_t arg) {
  return static_cast<std::uint8_t>(arg & 0xff);
}
constexpr std::size_t channel_arg_size(std::int64_t arg) {
  return static_cast<std::size_t>(arg >> 16);
}

/// Bounded flight recorder: a preallocated ring of Records shared by every
/// process of one simulation (records carry the process id). When full, the
/// oldest records are overwritten — the recorder always holds the most
/// recent window, which is exactly what a post-mortem dump wants.
class Recorder {
 public:
  Recorder() = default;
  /// Construct enabled with room for \p capacity records.
  explicit Recorder(std::size_t capacity) { enable(capacity); }

  void enable(std::size_t capacity);
  void disable();
  bool enabled() const { return enabled_; }

  void append(const Record& r) {
    if (!enabled_) return;
    ring_[head_] = r;
    head_ = head_ + 1 == ring_.size() ? 0 : head_ + 1;
    if (count_ < ring_.size()) {
      ++count_;
    } else {
      ++dropped_;
    }
  }

  /// Records in append order (oldest first). Allocates; not a hot path.
  std::vector<Record> records() const;

  /// The last \p n records of process \p proc (all processes when proc ==
  /// kNoProcess), oldest first.
  std::vector<Record> tail(ProcessId proc, std::size_t n) const;

  std::size_t size() const { return count_; }
  std::size_t capacity() const { return ring_.size(); }
  /// Records overwritten because the ring was full.
  std::uint64_t dropped() const { return dropped_; }
  void clear();

 private:
  bool enabled_ = false;
  std::vector<Record> ring_;
  std::size_t head_ = 0;   // next write position
  std::size_t count_ = 0;  // live records (<= capacity)
  std::uint64_t dropped_ = 0;
};

/// Per-process tracing handle, cheap to copy and held by sim::Context. A
/// default-constructed Tracer is permanently disabled; enabled() is the
/// entire cost of tracing when the recorder is off.
class Tracer {
 public:
  Tracer() = default;
  Tracer(Recorder* recorder, ProcessId self) : rec_(recorder), self_(self) {}

  bool enabled() const { return rec_ != nullptr && rec_->enabled(); }

  void begin(TimePoint ts, NameId name, const MsgId& msg, std::int64_t arg = 0) const {
    if (enabled()) rec_->append({ts, msg, arg, self_, name, Phase::kBegin});
  }
  void end(TimePoint ts, NameId name, const MsgId& msg, std::int64_t arg = 0) const {
    if (enabled()) rec_->append({ts, msg, arg, self_, name, Phase::kEnd});
  }
  void instant(TimePoint ts, NameId name, const MsgId& msg = MsgId{},
               std::int64_t arg = 0) const {
    if (enabled()) rec_->append({ts, msg, arg, self_, name, Phase::kInstant});
  }

  Recorder* recorder() const { return rec_; }

 private:
  Recorder* rec_ = nullptr;
  ProcessId self_ = kNoProcess;
};

/// Well-known names, interned once per process. Components read these
/// instead of re-interning strings on hot paths.
struct Names {
  // channel frames
  NameId channel_tx;          ///< data transmit; arg = pack_channel_arg(to, tag, size)
  NameId channel_rx;          ///< in-order delivery; arg = pack_channel_arg(from, tag, size)
  NameId channel_retransmit;  ///< arg = pack_channel_arg(to, tag, size)
  // rbcast flood
  NameId rbcast_flood;    ///< instant at the origin, keyed by msg
  NameId rbcast_relay;    ///< instant at each relaying process
  NameId rbcast_deliver;  ///< instant at each delivering process
  // consensus (keyed by MsgId{kConsensusKey, k}; arg = round unless noted)
  NameId consensus_instance;  ///< span: propose() .. decision
  NameId consensus_estimate;
  NameId consensus_propose;
  NameId consensus_ack;
  NameId consensus_nack;
  NameId consensus_decide;  ///< arg = decision value size
  // atomic broadcast (keyed by msg)
  NameId abcast_submit;   ///< instant at the abcast() caller
  NameId abcast_pending;  ///< span: rdelivered .. adelivered (per process)
  NameId abcast_deliver;  ///< instant; arg = subtag
  // generic broadcast
  NameId gb_submit;        ///< instant at the gbcast() caller; arg = class
  NameId gb_ack;           ///< instant; arg = round
  NameId gb_fast_pending;  ///< span keyed by msg: payload seen .. fast delivery
  NameId gb_deliver_fast;  ///< instant; fast-path quorum delivery
  NameId gb_deliver_slow;  ///< instant; delivery out of a resolution round
  NameId gb_resolve;       ///< span keyed by MsgId{kGbRoundKey, round}
  // membership / views (keyed by MsgId{kViewKey, id} where applicable)
  NameId view_install;          ///< instant; arg = member count
  NameId membership_join_req;   ///< instant; arg = contact/joiner
  NameId membership_state_txf;  ///< instant; arg = joiner
  // failure detection / monitoring (arg = subject process)
  NameId fd_suspect;
  NameId fd_restore;
  NameId monitoring_exclusion;

  static const Names& get();
};

}  // namespace gcs::obs
