/// \file oracle.hpp
/// Omniscient protocol oracle: one simulation-global checker that consumes
/// delivery / view / exclusion events from EVERY process of a run and
/// certifies the paper's safety properties online.
///
/// The oracle is deliberately dumb about protocol internals: components
/// report *what happened* (message m adelivered at p as element `index` of
/// consensus instance `k`; m gdelivered at p in GB round r on the fast
/// path; view v installed at p; removal of q proposed by p), and the
/// oracle checks that the global event stream is consistent with:
///
///   Atomic broadcast
///     ab.total_order      every process walks the same (instance, index)
///                         sequence, and (instance, index) -> MsgId is a
///                         global function (disagreement on a decision, a
///                         reordering, or a duplicate all break this);
///     ab.no_duplication   no process adelivers the same message twice;
///     ab.no_creation      everything adelivered was first abcast;
///     ab.uniform_agreement (finalize-time) every stable member delivered
///                         every coordinate anyone delivered.
///
///   Reliable broadcast (per wire tag / instance)
///     rb.integrity        everything rdelivered was broadcast;
///     rb.no_duplication   at most one rdelivery per (process, message).
///
///   Generic broadcast
///     gb.conflict_order   two CONFLICTING messages never both fast-deliver
///                         in one round (the quorum-intersection safety
///                         core), resolution positions (round, pos) -> m
///                         form a global function, and every process's
///                         (round, phase, pos) coordinates are monotone;
///     gb.fast_path_stability  a message's delivery round is globally
///                         unique: a fast delivery is never contradicted /
///                         reordered by a later resolution elsewhere;
///     gb.no_duplication / gb.no_creation as for ab;
///     gb.agreement        (finalize-time) stable members delivered every
///                         gbcast message anyone delivered.
///
///   Membership
///     view.agreement      view id -> member list is a global function;
///     view.monotonicity   per process, installed view ids strictly grow;
///     membership.accountability  a member only disappears from a view if
///                         its removal was previously proposed — by the
///                         monitoring component (i.e. it was suspected
///                         with the long timeout class), by an explicit
///                         administrative remove(), or by a voluntary
///                         leave. Silent exclusions are violations.
///
/// Checks are O(1) amortized per event (hash-map lookups); finalize() adds
/// one O(N log N) pass for the agreement properties, which are only
/// meaningful after a run has settled. A violation never throws: it is
/// recorded as a structured Violation (offending process, MsgId, view /
/// instance / round coordinates, human detail) that tests turn into
/// failures and reports serialize, ready to cross-reference against the
/// flight recorder's trace tail.
///
/// The oracle lives in obs and knows nothing about the stack; see
/// GcsStack::attach_oracle() / World::attach_oracle() for the tap wiring.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "util/types.hpp"

namespace gcs::obs {

/// The properties the oracle certifies. Order is the report order.
enum class Property : std::uint8_t {
  kAbTotalOrder = 0,
  kAbNoDuplication,
  kAbNoCreation,
  kAbUniformAgreement,
  kRbIntegrity,
  kRbNoDuplication,
  kGbConflictOrder,
  kGbFastPathStability,
  kGbNoDuplication,
  kGbNoCreation,
  kGbAgreement,
  kViewAgreement,
  kViewMonotonicity,
  kExclusionAccountability,
  kCount_,  // sentinel
};

inline constexpr std::size_t kPropertyCount = static_cast<std::size_t>(Property::kCount_);

/// Stable snake-case name used in reports and CI ("ab.total_order", ...).
std::string_view property_name(Property p);

/// Per-property verdict in a report.
enum class Verdict : std::uint8_t {
  kPass,        ///< checked, no violation
  kViolated,    ///< at least one violation recorded
  kNotChecked,  ///< finalize-only property on a run that never finalized
};

std::string_view verdict_name(Verdict v);

/// One structured property violation.
struct Violation {
  Property property;
  ProcessId proc = kNoProcess;  ///< process at which the violation surfaced
  MsgId msg{};                  ///< offending message (if any)
  MsgId other{};                ///< second message of a conflicting pair (if any)
  std::int64_t a = 0;           ///< property-specific: instance / round / view id
  std::int64_t b = 0;           ///< property-specific: index / position / subject
  std::string detail;           ///< human-readable explanation
};

class Oracle {
 public:
  Oracle();

  /// Conflict predicate for generic broadcast classes (install the stack's
  /// ConflictRelation via a lambda). Unset = nothing conflicts.
  void set_conflicts(std::function<bool(std::uint8_t, std::uint8_t)> fn) {
    conflicts_ = std::move(fn);
  }

  /// -- taps (called by the wired components; see stack.cpp) -------------

  void on_abcast_submit(ProcessId p, const MsgId& m);
  void on_adeliver(ProcessId p, const MsgId& m, std::uint8_t subtag,
                   std::uint64_t instance, std::uint32_t index);
  void on_rb_broadcast(ProcessId p, std::uint8_t tag, const MsgId& m);
  void on_rb_deliver(ProcessId p, std::uint8_t tag, const MsgId& m);
  void on_gb_submit(ProcessId p, const MsgId& m, std::uint8_t cls);
  void on_gdeliver(ProcessId p, const MsgId& m, std::uint8_t cls,
                   std::uint64_t round, bool fast, std::uint32_t pos);
  void on_view_install(ProcessId p, std::uint64_t view_id,
                       const std::vector<ProcessId>& members, bool via_state_transfer);
  /// A removal of \p target was proposed (monitoring decision, explicit
  /// administrative remove, or voluntary leave when target == proposer).
  void on_remove_proposed(ProcessId proposer, ProcessId target, bool voluntary);
  /// The monitoring component decided to exclude \p target backed by
  /// \p votes long-class suspicions.
  void on_exclusion_decided(ProcessId at, ProcessId target, int votes);
  /// Failure-detector suspicion / restore transitions (statistics and the
  /// accountability trail; long_class = monitoring's exclusion class).
  void on_suspicion(ProcessId at, ProcessId target, bool long_class);
  void on_restore(ProcessId at, ProcessId target, bool long_class);
  /// Process \p p crashed (fault injection); exempts it from the
  /// finalize-time agreement properties.
  void note_crash(ProcessId p);

  /// -- end-of-run checks ------------------------------------------------

  /// Run the agreement (completeness) checks. Call once, after the run has
  /// settled: a mid-flight finalize would report in-flight messages as
  /// agreement violations. Online safety properties are unaffected.
  void finalize();
  bool finalized() const { return finalized_; }

  /// -- results ----------------------------------------------------------

  Verdict verdict(Property p) const;
  /// True iff no property is violated.
  bool passed() const { return violations_.empty() && truncated_violations_ == 0; }
  const std::vector<Violation>& violations() const { return violations_; }
  /// Violations dropped once the bounded list filled up.
  std::uint64_t truncated_violations() const { return truncated_violations_; }
  std::uint64_t violation_count(Property p) const {
    return violation_counts_[static_cast<std::size_t>(p)];
  }

  /// Event-stream statistics (reports; also a cheap sanity signal that the
  /// taps were actually wired).
  struct Stats {
    std::uint64_t abcast_submits = 0;
    std::uint64_t adeliveries = 0;
    std::uint64_t rb_broadcasts = 0;
    std::uint64_t rb_deliveries = 0;
    std::uint64_t gb_submits = 0;
    std::uint64_t gdeliveries = 0;
    std::uint64_t gb_fast_deliveries = 0;
    std::uint64_t view_installs = 0;
    std::uint64_t remove_proposals = 0;
    std::uint64_t exclusion_decisions = 0;
    std::uint64_t suspicions = 0;
    std::uint64_t long_suspicions = 0;
    std::uint64_t crashes = 0;
  };
  const Stats& stats() const { return stats_; }

  /// One line per property ("ab.total_order: pass"), then the violations.
  std::string summary() const;

 private:
  struct PerProcess {
    // Atomic broadcast.
    bool ab_seen = false;
    std::uint64_t ab_last_coord = 0;  // packed (instance, index); valid iff ab_seen
    std::uint64_t ab_delivered = 0;
    std::unordered_set<MsgId> ab_delivered_set;
    // Generic broadcast. Packed (round, phase, pos); valid iff gb_seen.
    bool gb_seen = false;
    std::uint64_t gb_last_coord = 0;
    std::uint64_t gb_delivered = 0;
    std::unordered_set<MsgId> gb_delivered_set;
    // Membership.
    bool has_view = false;
    std::uint64_t view_id = 0;
    std::vector<ProcessId> view_members;
    bool joined_late = false;  // first view learned by state transfer
    bool crashed = false;
    bool was_excluded = false;
  };

  struct TagState {
    std::unordered_set<MsgId> broadcast;
    std::unordered_map<ProcessId, std::unordered_set<MsgId>> delivered;
  };

  PerProcess& proc(ProcessId p);
  void violate(Property prop, Violation v);
  bool conflict(std::uint8_t a, std::uint8_t b) const {
    return conflicts_ ? conflicts_(a, b) : false;
  }

  std::function<bool(std::uint8_t, std::uint8_t)> conflicts_;
  std::vector<PerProcess> procs_;
  Stats stats_;

  // Atomic broadcast global state.
  std::unordered_set<MsgId> ab_submitted_;
  std::unordered_map<std::uint64_t, MsgId> ab_coord_msg_;  // packed coord -> msg
  std::unordered_map<MsgId, std::uint64_t> ab_msg_coord_;
  std::uint64_t ab_max_coord_ = 0;
  bool ab_any_ = false;

  // Reliable broadcast, per wire tag.
  std::unordered_map<std::uint8_t, TagState> rb_;

  // Generic broadcast global state.
  std::unordered_map<MsgId, std::uint8_t> gb_submitted_;  // msg -> class
  std::unordered_map<MsgId, std::uint64_t> gb_msg_round_;
  std::unordered_map<MsgId, bool> gb_msg_seen_fast_;
  std::unordered_map<std::uint64_t, MsgId> gb_resolution_msg_;  // (round,pos) -> msg
  // Distinct messages fast-delivered per round, grouped by class. Classes
  // are few; each class keeps the first id only (a second distinct id in a
  // self-conflicting class is already a violation).
  std::unordered_map<std::uint64_t,
                     std::unordered_map<std::uint8_t, std::vector<MsgId>>>
      gb_fast_by_round_;
  std::uint64_t gb_distinct_delivered_ = 0;

  // Membership global state.
  std::unordered_map<std::uint64_t, std::vector<ProcessId>> view_members_;
  std::unordered_map<ProcessId, std::uint64_t> removal_justifications_;
  // (view_id << 16 | target): accountability already judged for this pair.
  std::unordered_set<std::uint64_t> accountability_checked_;

  // Verdict bookkeeping.
  std::vector<Violation> violations_;
  std::uint64_t truncated_violations_ = 0;
  std::uint64_t violation_counts_[kPropertyCount] = {};
  bool finalized_ = false;

  static constexpr std::size_t kMaxViolations = 64;
};

}  // namespace gcs::obs
