#include "obs/report.hpp"

#include <cstdio>
#include <cstdlib>
#include <fstream>

namespace gcs::obs {

namespace {

std::string json_escape(std::string_view s) { return json_escape_string(s); }

}  // namespace

std::string json_escape_string(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

namespace {

// Fixed-format doubles so identical runs serialize identically.
std::string json_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

void append_kv(std::string& out, const char* key, std::uint64_t v, bool comma = true) {
  out += "\"";
  out += key;
  out += "\":" + std::to_string(v);
  if (comma) out += ",";
}

// One violation object; shared by the scenario report and the standalone
// violation export so the two never drift apart.
void append_violation(std::string& out, const Violation& v) {
  out += "{\"property\":\"" + std::string(property_name(v.property)) + "\"";
  out += ",\"proc\":" + std::to_string(v.proc);
  out += ",\"msg\":\"" + (v.msg.sender == kNoProcess ? std::string() : to_string(v.msg)) + "\"";
  out += ",\"other\":\"" +
         (v.other.sender == kNoProcess ? std::string() : to_string(v.other)) + "\"";
  out += ",\"a\":" + std::to_string(v.a);
  out += ",\"b\":" + std::to_string(v.b);
  out += ",\"detail\":\"" + json_escape(v.detail) + "\"}";
}

}  // namespace

std::string render_scenario_report(const std::string& scenario, std::uint64_t seed,
                                   const Oracle& oracle, const Probes* probes,
                                   const Metrics* metrics) {
  std::string out;
  out.reserve(4096);
  out += "{\n";
  out += "\"schema\":\"nggcs.scenario_report.v1\",\n";
  out += "\"scenario\":\"" + json_escape(scenario) + "\",\n";
  out += "\"seed\":" + std::to_string(seed) + ",\n";

  // -- oracle ---------------------------------------------------------------
  out += "\"oracle\":{\n";
  out += std::string("\"passed\":") + (oracle.passed() ? "true" : "false") + ",\n";
  out += std::string("\"finalized\":") + (oracle.finalized() ? "true" : "false") + ",\n";
  out += "\"truncated_violations\":" + std::to_string(oracle.truncated_violations()) + ",\n";

  out += "\"properties\":[";
  for (std::size_t i = 0; i < kPropertyCount; ++i) {
    const auto p = static_cast<Property>(i);
    if (i) out += ",";
    out += "\n{\"name\":\"" + std::string(property_name(p)) + "\",\"verdict\":\"" +
           std::string(verdict_name(oracle.verdict(p))) +
           "\",\"violations\":" + std::to_string(oracle.violation_count(p)) + "}";
  }
  out += "\n],\n";

  out += "\"violations\":[";
  bool first = true;
  for (const Violation& v : oracle.violations()) {
    if (!first) out += ",";
    first = false;
    out += "\n";
    append_violation(out, v);
  }
  out += "\n],\n";

  const Oracle::Stats& st = oracle.stats();
  out += "\"stats\":{";
  append_kv(out, "abcast_submits", st.abcast_submits);
  append_kv(out, "adeliveries", st.adeliveries);
  append_kv(out, "rb_broadcasts", st.rb_broadcasts);
  append_kv(out, "rb_deliveries", st.rb_deliveries);
  append_kv(out, "gb_submits", st.gb_submits);
  append_kv(out, "gdeliveries", st.gdeliveries);
  append_kv(out, "gb_fast_deliveries", st.gb_fast_deliveries);
  append_kv(out, "view_installs", st.view_installs);
  append_kv(out, "remove_proposals", st.remove_proposals);
  append_kv(out, "exclusion_decisions", st.exclusion_decisions);
  append_kv(out, "suspicions", st.suspicions);
  append_kv(out, "long_suspicions", st.long_suspicions);
  append_kv(out, "crashes", st.crashes, /*comma=*/false);
  out += "}\n";
  out += "},\n";

  // -- probes ---------------------------------------------------------------
  out += "\"probes\":{";
  if (probes) {
    out += "\n";
    append_kv(out, "samples_taken", probes->samples_taken());
    append_kv(out, "stride", probes->stride());
    out += "\"timestamps_us\":[";
    for (std::size_t i = 0; i < probes->timestamps().size(); ++i) {
      if (i) out += ",";
      out += std::to_string(probes->timestamps()[i]);
    }
    out += "],\n\"series\":[";
    for (std::size_t i = 0; i < probes->series().size(); ++i) {
      const Probes::Series& s = probes->series()[i];
      if (i) out += ",";
      out += "\n{\"proc\":" + std::to_string(s.proc) + ",\"metric\":\"" +
             json_escape(metric_name(s.metric)) + "\",\"values\":[";
      for (std::size_t j = 0; j < s.values.size(); ++j) {
        if (j) out += ",";
        out += json_double(s.values[j]);
      }
      out += "]}";
    }
    out += "\n]\n";
  }
  out += "},\n";

  // -- metrics --------------------------------------------------------------
  out += "\"metrics\":{";
  if (metrics) {
    out += "\n\"counters\":{";
    first = true;
    for (const auto& [name, value] : metrics->counters()) {
      if (!first) out += ",";
      first = false;
      out += "\n\"" + json_escape(name) + "\":" + std::to_string(value);
    }
    out += "\n},\n\"histograms\":{";
    first = true;
    for (const auto& [name, h] : metrics->histograms()) {
      if (!first) out += ",";
      first = false;
      out += "\n\"" + json_escape(name) + "\":{";
      out += "\"count\":" + std::to_string(h->count());
      out += ",\"min_us\":" + std::to_string(h->min());
      out += ",\"max_us\":" + std::to_string(h->max());
      out += ",\"mean_us\":" + json_double(h->mean());
      out += ",\"p50_us\":" + std::to_string(h->percentile(50));
      out += ",\"p99_us\":" + std::to_string(h->percentile(99));
      out += "}";
    }
    out += "\n}\n";
  }
  out += "}\n";
  out += "}\n";
  return out;
}

std::string render_violations_json(const Oracle& oracle) {
  std::string out = "[";
  bool first = true;
  for (const Violation& v : oracle.violations()) {
    if (!first) out += ",";
    first = false;
    out += "\n";
    append_violation(out, v);
  }
  out += "\n]";
  return out;
}

std::string render_scenario_summary(const std::string& scenario, const Oracle& oracle) {
  std::string out = "scenario " + scenario + ": " +
                    (oracle.passed() ? "ORACLE PASS" : "ORACLE VIOLATIONS") + "\n";
  out += oracle.summary();
  return out;
}

std::optional<std::string> write_scenario_report(const std::string& scenario,
                                                 const std::string& json) {
  const char* dir = std::getenv("NGGCS_REPORT_DIR");
  if (!dir || !*dir) return std::nullopt;

  std::string file;
  file.reserve(scenario.size());
  for (char c : scenario) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '-' || c == '_' || c == '.';
    file += ok ? c : '_';
  }
  std::string path = std::string(dir) + "/scenario_report_" + file + ".json";
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  if (!os) return std::nullopt;
  os << json;
  os.flush();
  if (!os) return std::nullopt;
  return path;
}

}  // namespace gcs::obs
