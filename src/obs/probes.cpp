#include "obs/probes.hpp"

namespace gcs::obs {

void Probes::add_gauge(ProcessId p, std::string_view name, Gauge gauge) {
  gauges_.push_back({std::move(gauge)});
  Series s;
  s.proc = p;
  s.metric = metric_id(name);
  series_.push_back(std::move(s));
}

void Probes::sample(TimePoint now) {
  ++samples_taken_;
  if ((samples_taken_ - 1) % stride_ != 0) return;

  timestamps_.push_back(now);
  for (std::size_t i = 0; i < gauges_.size(); ++i) {
    series_[i].values.push_back(gauges_[i].fn ? gauges_[i].fn() : 0.0);
  }

  if (max_points_ > 1 && timestamps_.size() >= max_points_) {
    // Keep every other retained point and double the stride: memory stays
    // O(max_points) while the series still spans the whole run.
    std::size_t w = 0;
    for (std::size_t r = 0; r < timestamps_.size(); r += 2, ++w) {
      timestamps_[w] = timestamps_[r];
      for (Series& s : series_) s.values[w] = s.values[r];
    }
    timestamps_.resize(w);
    for (Series& s : series_) s.values.resize(w);
    stride_ *= 2;
  }
}

}  // namespace gcs::obs
