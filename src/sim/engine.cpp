#include "sim/engine.hpp"

#include <algorithm>
#include <bit>
#include <cassert>

namespace gcs::sim {

TimerId Engine::schedule_impl(TimePoint at, Callback&& fn, Gate&& gate) {
  if (at < now_) at = now_;
  const std::uint32_t idx = acquire_node();
  Node& node = node_at(idx);
  node.fn = std::move(fn);
  node.gate = std::move(gate);
  node.at = at;
  node.armed = true;
  place(idx);
  ++live_;
  return (static_cast<TimerId>(node.gen) << 32) | idx;
}

std::uint32_t Engine::acquire_node() {
  if (free_head_ != kNil) {
    const std::uint32_t idx = free_head_;
    free_head_ = node_at(idx).next;
    return idx;
  }
  assert(pool_count_ < kNil);
  if (pool_count_ == pool_.size() * kChunkSize) {
    pool_.push_back(std::make_unique<Node[]>(kChunkSize));
  }
  return pool_count_++;
}

void Engine::free_node(std::uint32_t idx) {
  node_at(idx).next = free_head_;
  free_head_ = idx;
}

void Engine::cancel(TimerId id) {
  const auto idx = static_cast<std::uint32_t>(id & 0xffffffffu);
  const auto gen = static_cast<std::uint32_t>(id >> 32);
  if (idx >= pool_count_) return;
  Node& node = node_at(idx);
  if (!node.armed || node.gen != gen) return;  // fired, cancelled or recycled
  // The callback (and whatever it captured) dies now; the disarmed node
  // stays linked in its wheel slot until the slot drains or compaction
  // collects it.
  node.fn.reset();
  node.gate.reset();
  node.armed = false;
  ++node.gen;  // invalidates the id
  --live_;
  ++stale_;
  // Keep cancelled nodes a minority of the wheel so cancel-heavy runs
  // (chaos tests scheduling/cancelling millions of timeouts) stay bounded.
  const std::size_t total = live_ + stale_;
  if (total >= kCompactMin && stale_ * 2 > total) compact();
}

/// Append a node to the wheel slot of the highest base-64 digit in which
/// its deadline differs from now_ (the Varghese/Lauck hierarchical scheme,
/// indexed by XOR). Requires node.at >= now_.
void Engine::place(std::uint32_t idx) {
  Node& node = node_at(idx);
  node.next = kNil;
  const std::uint64_t diff =
      static_cast<std::uint64_t>(node.at) ^ static_cast<std::uint64_t>(now_);
  const int level =
      diff == 0 ? 0 : (63 - std::countl_zero(diff)) / static_cast<int>(kSlotBits);
  Slot* slot;
  if (level >= kLevels) {
    slot = &overflow_;
  } else {
    const auto s = static_cast<unsigned>(
        (static_cast<std::uint64_t>(node.at) >> (kSlotBits * static_cast<unsigned>(level))) &
        kSlotMask);
    slot = &wheel_[static_cast<std::size_t>(level)][s];
    occupied_[static_cast<std::size_t>(level)] |= 1ull << s;
  }
  if (slot->tail == kNil) {
    slot->head = idx;
  } else {
    node_at(slot->tail).next = idx;
  }
  slot->tail = idx;
}

/// Advance now_ to the earliest pending node, cascading coarse slots down
/// as their windows are entered. Returns true when the level-0 slot at
/// now_ is non-empty and now_ <= limit; returns false (without moving
/// now_ past limit) when the next node lies beyond limit or nothing is
/// pending. Cascades and slot drains preserve list order, which is
/// schedule order, so the (time, insertion-order) firing contract is
/// structural — nothing here compares entries.
bool Engine::position(TimePoint limit) {
  for (;;) {
    const auto unow = static_cast<std::uint64_t>(now_);
    const auto slot0 = static_cast<unsigned>(unow & kSlotMask);
    if (wheel_[0][slot0].head != kNil) return now_ <= limit;
    occupied_[0] &= ~(1ull << slot0);
    const std::uint64_t m0 = occupied_[0] & (~0ull << slot0);
    if (m0) {
      const auto t = static_cast<TimePoint>(
          (unow & ~static_cast<std::uint64_t>(kSlotMask)) |
          static_cast<std::uint64_t>(std::countr_zero(m0)));
      if (t > limit) return false;
      now_ = t;
      continue;
    }
    bool cascaded = false;
    for (int level = 1; level < kLevels; ++level) {
      // Slots at the current digit or below are already drained; anything
      // pending at this level sits strictly ahead of now_'s digit.
      const auto digit = static_cast<unsigned>(
          (unow >> (kSlotBits * static_cast<unsigned>(level))) & kSlotMask);
      const std::uint64_t m =
          digit == kSlotMask
              ? 0
              : occupied_[static_cast<std::size_t>(level)] & (~0ull << (digit + 1));
      if (!m) continue;
      const auto s = static_cast<unsigned>(std::countr_zero(m));
      const unsigned shift = kSlotBits * static_cast<unsigned>(level);
      const std::uint64_t window = (static_cast<std::uint64_t>(kSlotMask) + 1) << shift;
      const auto t = static_cast<TimePoint>((unow & ~(window - 1)) |
                                            (static_cast<std::uint64_t>(s) << shift));
      if (t > limit) return false;
      now_ = t;
      // Entering the slot's window: redistribute its list one level down
      // (the nodes now differ from now_ only in lower digits).
      Slot src = wheel_[static_cast<std::size_t>(level)][s];
      wheel_[static_cast<std::size_t>(level)][s] = Slot{};
      occupied_[static_cast<std::size_t>(level)] &= ~(1ull << s);
      for (std::uint32_t i = src.head; i != kNil;) {
        const std::uint32_t next = node_at(i).next;
        place(i);
        i = next;
      }
      cascaded = true;
      break;
    }
    if (cascaded) continue;
    if (overflow_.head != kNil) {
      TimePoint tmin = node_at(overflow_.head).at;
      for (std::uint32_t i = overflow_.head; i != kNil; i = node_at(i).next) {
        tmin = std::min(tmin, node_at(i).at);
      }
      if (tmin > limit) return false;
      now_ = tmin;
      const Slot distant = overflow_;
      overflow_ = Slot{};
      for (std::uint32_t i = distant.head; i != kNil;) {
        const std::uint32_t next = node_at(i).next;
        place(i);
        i = next;
      }
      continue;
    }
    return false;
  }
}

bool Engine::step_limited(TimePoint limit) {
  while (live_ > 0) {
    if (!position(limit)) return false;
    Slot& slot = wheel_[0][static_cast<std::uint64_t>(now_) & kSlotMask];
    const std::uint32_t idx = slot.head;
    Node& node = node_at(idx);
    slot.head = node.next;
    if (slot.head == kNil) slot.tail = kNil;
    if (!node.armed) {  // cancelled; callback died at cancel time
      --stale_;
      free_node(idx);
      continue;
    }
    assert(node.at == now_);
    // Disarm and bump the generation before invoking so the handler sees
    // itself as no longer pending and cancel of its own id is a no-op.
    // The callback runs in place — chunked storage keeps the node's
    // address stable even if the handler schedules and grows the pool —
    // and the node only joins the free list afterwards, so no schedule
    // inside the handler can recycle the storage the running closure
    // lives in.
    node.armed = false;
    ++node.gen;
    --live_;
    ++executed_;
    if (node.fn && (!node.gate || *node.gate)) node.fn();
    node.fn.reset();
    node.gate.reset();
    free_node(idx);
    return true;
  }
  return false;
}

void Engine::run(std::uint64_t max_events) {
  for (std::uint64_t i = 0; i < max_events; ++i) {
    if (!step()) return;
  }
}

void Engine::run_until(TimePoint deadline) {
  while (step_limited(deadline)) {
  }
  if (now_ < deadline) now_ = deadline;
}

/// Unlink cancelled nodes from one slot list, preserving the order of the
/// survivors.
void Engine::compact_list(Slot& slot) {
  std::uint32_t i = slot.head;
  slot = Slot{};
  while (i != kNil) {
    const std::uint32_t next = node_at(i).next;
    Node& node = node_at(i);
    if (node.armed) {
      node.next = kNil;
      if (slot.tail == kNil) {
        slot.head = i;
      } else {
        node_at(slot.tail).next = i;
      }
      slot.tail = i;
    } else {
      free_node(i);
    }
    i = next;
  }
}

void Engine::compact() {
  for (int level = 0; level < kLevels; ++level) {
    std::uint64_t occ = 0;
    for (unsigned s = 0; s <= kSlotMask; ++s) {
      Slot& slot = wheel_[static_cast<std::size_t>(level)][s];
      if (slot.head == kNil) continue;
      compact_list(slot);
      if (slot.head != kNil) occ |= 1ull << s;
    }
    occupied_[static_cast<std::size_t>(level)] = occ;
  }
  compact_list(overflow_);
  stale_ = 0;
}

}  // namespace gcs::sim
