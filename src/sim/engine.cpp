#include "sim/engine.hpp"

namespace gcs::sim {

TimerId Engine::schedule_at(TimePoint at, std::function<void()> fn) {
  if (at < now_) at = now_;
  const TimerId id = next_id_++;
  queue_.push(QueueEntry{at, id});
  handlers_.emplace(id, std::move(fn));
  return id;
}

bool Engine::step() {
  while (!queue_.empty()) {
    const QueueEntry entry = queue_.top();
    queue_.pop();
    auto it = handlers_.find(entry.id);
    if (it == handlers_.end()) continue;  // cancelled
    // Move the handler out before erasing: the handler may schedule/cancel.
    std::function<void()> fn = std::move(it->second);
    handlers_.erase(it);
    now_ = entry.at;
    ++executed_;
    fn();
    return true;
  }
  return false;
}

void Engine::run(std::uint64_t max_events) {
  for (std::uint64_t i = 0; i < max_events; ++i) {
    if (!step()) return;
  }
}

void Engine::run_until(TimePoint deadline) {
  while (!queue_.empty()) {
    // Skip over cancelled entries at the head without advancing time.
    const QueueEntry entry = queue_.top();
    if (handlers_.find(entry.id) == handlers_.end()) {
      queue_.pop();
      continue;
    }
    if (entry.at > deadline) break;
    step();
  }
  if (now_ < deadline) now_ = deadline;
}

}  // namespace gcs::sim
