/// \file network.hpp
/// Simulated unreliable datagram network.
///
/// Models per-link latency (base + uniform jitter), probabilistic loss,
/// network partitions and process crashes. This is the "Unreliable
/// Transport" box at the bottom of the paper's Figure 9: messages may be
/// dropped or reordered (jitter reorders), but are never corrupted. By
/// default nothing is duplicated either; the schedule explorer turns on
/// duplication / reorder fault knobs (FaultKnobs) to stress the dedup and
/// holdback logic of the layers above.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "sim/engine.hpp"
#include "util/metrics.hpp"
#include "util/rng.hpp"
#include "util/types.hpp"

namespace gcs::sim {

/// Latency / loss model for a directed link.
struct LinkModel {
  Duration base_delay = usec(200);   ///< minimum one-way latency
  Duration jitter = usec(100);       ///< uniform extra latency in [0, jitter]
  double drop_probability = 0.0;     ///< independent per-message loss

  /// Delay for processes talking to themselves (loopback).
  static LinkModel loopback() { return LinkModel{usec(5), usec(0), 0.0}; }
};

class Network {
 public:
  using Handler = std::function<void(ProcessId from, const Bytes& payload)>;

  /// \param n universe size: processes are 0..n-1.
  Network(Engine& engine, int n, LinkModel default_link, std::uint64_t seed);

  int size() const { return n_; }
  Engine& engine() { return engine_; }

  /// Install the receive handler for process \p p (done by its node harness).
  void set_handler(ProcessId p, Handler handler);

  /// Unreliable send. The message is delivered later (per the link model)
  /// unless dropped, the destination has crashed, or the two processes are
  /// in different partitions *at delivery time*. The payload buffer is
  /// shared, never copied: callers fanning out one message to many
  /// destinations pass the same Payload each time.
  void send(ProcessId from, ProcessId to, Payload payload);

  /// Fan-out convenience: one shared buffer, one send per destination (in
  /// \p tos order, so traces are identical to an explicit send loop).
  void multicast(ProcessId from, const std::vector<ProcessId>& tos, const Payload& payload);

  /// -- fault injection ------------------------------------------------

  /// Permanently crash \p p: all queued and future deliveries to it vanish.
  void crash(ProcessId p);
  /// Liveness of \p p. Ids outside the universe are never alive (an
  /// out-of-range id used to read as alive, which let fault-injection loops
  /// target ghosts and believe they succeeded).
  bool alive(ProcessId p) const {
    return p >= 0 && p < n_ && !crashed_[static_cast<std::size_t>(p)];
  }

  /// Partition the universe into components; messages cross components only
  /// after heal(). Processes not listed are isolated (their own singleton).
  void partition(const std::vector<std::vector<ProcessId>>& components);
  void heal();
  bool connected(ProcessId a, ProcessId b) const;

  /// Override the model for one directed link.
  void set_link(ProcessId from, ProcessId to, LinkModel model);
  /// Override the model for every link (keeps loopbacks).
  void set_all_links(LinkModel model);

  /// Network-wide duplication / reorder fault injection (the schedule
  /// explorer's burst knobs). All probabilities default to 0, and the RNG
  /// is only consulted while a knob is active, so runs that never touch
  /// the knobs keep their exact historical traces.
  struct FaultKnobs {
    double duplicate_probability = 0.0;  ///< deliver a second copy of a datagram
    Duration duplicate_delay = usec(150);///< extra delay on the duplicate copy
    double reorder_probability = 0.0;    ///< hold a datagram back so later ones overtake
    Duration reorder_delay = usec(500);  ///< extra hold time on a reorder hit
  };
  void set_fault_knobs(FaultKnobs knobs) { knobs_ = knobs; }
  const FaultKnobs& fault_knobs() const { return knobs_; }

  /// -- statistics / tracing --------------------------------------------
  Metrics& metrics() { return metrics_; }

  /// Wire tap: observe every datagram at SEND time (before loss/partition
  /// filtering). For trace tooling and tests; keep the callback cheap.
  using Tap = std::function<void(ProcessId from, ProcessId to, const Bytes& payload)>;
  void set_tap(Tap tap) { tap_ = std::move(tap); }

 private:
  LinkModel& link(ProcessId from, ProcessId to) {
    return links_[static_cast<std::size_t>(from) * n_ + static_cast<std::size_t>(to)];
  }
  void schedule_delivery(Duration delay, ProcessId from, ProcessId to, Payload payload);

  Engine& engine_;
  int n_;
  Rng rng_;
  std::vector<Handler> handlers_;
  std::vector<bool> crashed_;
  std::vector<LinkModel> links_;          // n*n directed links
  std::vector<int> component_of_;         // partition component id, -1 = healed
  bool partitioned_ = false;
  Metrics metrics_;
  // Interned once; the per-datagram path does vector-indexed increments
  // only (the kernel fanout benchmark counts allocations through here).
  MetricId m_sent_;
  MetricId m_bytes_sent_;
  MetricId m_dropped_;
  MetricId m_partition_dropped_;
  MetricId m_delivered_;
  MetricId m_duplicated_;
  MetricId m_reordered_;
  FaultKnobs knobs_;
  Tap tap_;
};

}  // namespace gcs::sim
