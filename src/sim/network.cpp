#include "sim/network.hpp"

#include <cassert>

namespace gcs::sim {

Network::Network(Engine& engine, int n, LinkModel default_link, std::uint64_t seed)
    : engine_(engine), n_(n), rng_(seed), handlers_(static_cast<std::size_t>(n)),
      crashed_(static_cast<std::size_t>(n), false),
      links_(static_cast<std::size_t>(n) * static_cast<std::size_t>(n), default_link),
      component_of_(static_cast<std::size_t>(n), -1), m_sent_(metric_id("net.sent")),
      m_bytes_sent_(metric_id("net.bytes_sent")), m_dropped_(metric_id("net.dropped")),
      m_partition_dropped_(metric_id("net.partition_dropped")),
      m_delivered_(metric_id("net.delivered")), m_duplicated_(metric_id("net.duplicated")),
      m_reordered_(metric_id("net.reordered")) {
  for (ProcessId p = 0; p < n; ++p) link(p, p) = LinkModel::loopback();
}

void Network::set_handler(ProcessId p, Handler handler) {
  assert(p >= 0 && p < n_);
  handlers_[static_cast<std::size_t>(p)] = std::move(handler);
}

void Network::send(ProcessId from, ProcessId to, Payload payload) {
  assert(from >= 0 && from < n_ && to >= 0 && to < n_);
  metrics_.inc(m_sent_);
  metrics_.inc(m_bytes_sent_, static_cast<std::int64_t>(payload.size()));
  if (tap_) tap_(from, to, payload.bytes());
  if (crashed_[static_cast<std::size_t>(from)]) return;  // dead senders send nothing
  const LinkModel& m = link(from, to);
  if (m.drop_probability > 0.0 && rng_.chance(m.drop_probability)) {
    metrics_.inc(m_dropped_);
    return;
  }
  const Duration jitter = m.jitter > 0 ? rng_.next_range(0, m.jitter) : 0;
  Duration delay = m.base_delay + jitter;
  // Fault knobs draw from the RNG only while active, so knob-free runs
  // keep their exact historical traces.
  if (knobs_.reorder_probability > 0.0 && rng_.chance(knobs_.reorder_probability)) {
    metrics_.inc(m_reordered_);
    delay += knobs_.reorder_delay;
  }
  if (knobs_.duplicate_probability > 0.0 && rng_.chance(knobs_.duplicate_probability)) {
    metrics_.inc(m_duplicated_);
    schedule_delivery(delay + knobs_.duplicate_delay, from, to, payload);
  }
  schedule_delivery(delay, from, to, std::move(payload));
}

void Network::schedule_delivery(Duration delay, ProcessId from, ProcessId to,
                                Payload payload) {
  // The capture is ~32 bytes (payload is a shared buffer, not a copy), so
  // it stays inside the engine's inline callback storage: no allocation
  // per datagram in flight.
  engine_.schedule_after(delay, [this, from, to, payload = std::move(payload)]() {
    if (crashed_[static_cast<std::size_t>(to)]) return;
    if (!connected(from, to)) {
      metrics_.inc(m_partition_dropped_);
      return;
    }
    auto& handler = handlers_[static_cast<std::size_t>(to)];
    if (!handler) return;
    metrics_.inc(m_delivered_);
    handler(from, payload.bytes());
  });
}

void Network::multicast(ProcessId from, const std::vector<ProcessId>& tos,
                        const Payload& payload) {
  for (ProcessId to : tos) send(from, to, payload);
}

void Network::crash(ProcessId p) {
  assert(p >= 0 && p < n_);
  crashed_[static_cast<std::size_t>(p)] = true;
}

void Network::partition(const std::vector<std::vector<ProcessId>>& components) {
  partitioned_ = true;
  // Unlisted processes become isolated: give them unique negative-free ids
  // after the listed components.
  std::fill(component_of_.begin(), component_of_.end(), -1);
  int next = 0;
  for (const auto& component : components) {
    for (ProcessId p : component) {
      assert(p >= 0 && p < n_);
      component_of_[static_cast<std::size_t>(p)] = next;
    }
    ++next;
  }
  for (auto& c : component_of_) {
    if (c == -1) c = next++;
  }
}

void Network::heal() { partitioned_ = false; }

bool Network::connected(ProcessId a, ProcessId b) const {
  if (a == b) return true;
  if (!partitioned_) return true;
  return component_of_[static_cast<std::size_t>(a)] == component_of_[static_cast<std::size_t>(b)];
}

void Network::set_link(ProcessId from, ProcessId to, LinkModel model) {
  link(from, to) = model;
}

void Network::set_all_links(LinkModel model) {
  for (ProcessId i = 0; i < n_; ++i) {
    for (ProcessId j = 0; j < n_; ++j) {
      link(i, j) = (i == j) ? LinkModel::loopback() : model;
    }
  }
}

}  // namespace gcs::sim
