/// \file context.hpp
/// Per-process runtime handed to every protocol component.
///
/// A Context bundles what a component needs from its host process: identity,
/// virtual time, cancellable timers, a deterministic RNG stream, a logger
/// and a metrics registry. Timers are guarded by the process's liveness
/// flag, so crashing a process silently disarms all of its pending
/// callbacks — components never observe their own death.
#pragma once

#include <functional>
#include <memory>

#include "obs/trace.hpp"
#include "sim/engine.hpp"
#include "util/buffer_pool.hpp"
#include "util/log.hpp"
#include "util/metrics.hpp"
#include "util/rng.hpp"
#include "util/types.hpp"

namespace gcs::sim {

class Context {
 public:
  Context(ProcessId self, Engine& engine, Rng rng, Logger log,
          std::shared_ptr<Metrics> metrics)
      : self_(self), engine_(engine), rng_(rng), log_(std::move(log)),
        metrics_(std::move(metrics)), alive_(std::make_shared<bool>(true)) {}

  ProcessId self() const { return self_; }
  TimePoint now() const { return engine_.now(); }
  Engine& engine() { return engine_; }

  /// Schedule \p fn after \p delay; suppressed if the process crashes first.
  /// The liveness flag rides along as the engine's gate, so no wrapper
  /// closure (and no allocation) is needed per timer.
  TimerId after(Duration delay, Engine::Callback fn) {
    return engine_.schedule_after(delay, std::move(fn), alive_);
  }

  /// Schedule \p fn at absolute time \p at; suppressed on crash.
  TimerId at(TimePoint at, Engine::Callback fn) {
    return engine_.schedule_at(at, std::move(fn), alive_);
  }

  void cancel(TimerId id) { engine_.cancel(id); }

  /// Mark this process crashed: all pending and future timers are inert.
  void kill() { *alive_ = false; }
  bool alive() const { return *alive_; }

  /// Shared liveness flag, for callbacks that may outlive this Context.
  std::shared_ptr<const bool> alive_flag() const { return alive_; }

  Rng& rng() { return rng_; }
  /// Recycling pool for outbound wire buffers (see util/buffer_pool.hpp);
  /// per-process, so buffer reuse never crosses a process boundary.
  BufferPool& pool() { return pool_; }
  const Logger& log() const { return log_; }
  Metrics& metrics() { return *metrics_; }
  std::shared_ptr<Metrics> metrics_ptr() { return metrics_; }

  /// Message-lifecycle tracer. Default-disabled; GcsStack installs one when
  /// the stack config carries a flight recorder. A disabled tracer's calls
  /// are one load + compare (see obs/trace.hpp).
  const obs::Tracer& tracer() const { return tracer_; }
  void set_tracer(obs::Tracer tracer) { tracer_ = tracer; }

  /// Trace helpers stamped with the current virtual time.
  void trace_begin(obs::NameId name, const MsgId& msg, std::int64_t arg = 0) const {
    if (tracer_.enabled()) tracer_.begin(now(), name, msg, arg);
  }
  void trace_end(obs::NameId name, const MsgId& msg, std::int64_t arg = 0) const {
    if (tracer_.enabled()) tracer_.end(now(), name, msg, arg);
  }
  void trace_instant(obs::NameId name, const MsgId& msg = MsgId{},
                     std::int64_t arg = 0) const {
    if (tracer_.enabled()) tracer_.instant(now(), name, msg, arg);
  }

 private:
  ProcessId self_;
  Engine& engine_;
  Rng rng_;
  Logger log_;
  std::shared_ptr<Metrics> metrics_;
  std::shared_ptr<bool> alive_;
  obs::Tracer tracer_;
  BufferPool pool_;
};

}  // namespace gcs::sim
