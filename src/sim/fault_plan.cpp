#include "sim/fault_plan.hpp"

#include <array>
#include <bit>

namespace gcs::sim {

namespace {

// Stream keys for Rng::stream — one independent stream per concern so the
// generated plan decomposes: world shaping, step timing and step contents
// never share draws.
constexpr std::uint64_t kWorldKey = 0x776f726c64ULL;     // "world"
constexpr std::uint64_t kTimingKey = 0x74696d696e67ULL;  // "timing"
constexpr std::uint64_t kOpsKey = 0x6f7073ULL;           // "ops"

constexpr std::array<std::string_view, static_cast<std::size_t>(FaultOp::kCount_)>
    kOpNames = {"abcast", "gbcast",     "race",       "crash",     "partition", "heal",
                "join",   "suspect",    "fd_timeout", "dup_burst", "reorder_burst"};

}  // namespace

std::string_view fault_op_name(FaultOp op) {
  const auto i = static_cast<std::size_t>(op);
  return i < kOpNames.size() ? kOpNames[i] : "?";
}

void FaultStep::encode(Encoder& enc) const {
  enc.put_i64(at);
  enc.put_byte(static_cast<std::uint8_t>(op));
  enc.put_i32(proc);
  enc.put_i32(target);
  enc.put_byte(cls);
  enc.put_u64(arg);
  enc.put_i64(duration);
}

FaultStep FaultStep::decode(Decoder& dec) {
  FaultStep s;
  s.at = dec.get_i64();
  s.op = static_cast<FaultOp>(dec.get_byte());
  s.proc = dec.get_i32();
  s.target = dec.get_i32();
  s.cls = dec.get_byte();
  s.arg = dec.get_u64();
  s.duration = dec.get_i64();
  return s;
}

std::string FaultStep::to_string() const {
  std::string out = "@" + std::to_string(at) + " " + std::string(fault_op_name(op));
  switch (op) {
    case FaultOp::kAbcast:
    case FaultOp::kCrash:
    case FaultOp::kJoin:
      out += " p" + std::to_string(proc);
      break;
    case FaultOp::kGbcast:
      out += " p" + std::to_string(proc) + " cls=" + std::to_string(cls);
      break;
    case FaultOp::kConflictRace:
    case FaultOp::kFalseSuspicion:
      out += " p" + std::to_string(proc) + " p" + std::to_string(target);
      break;
    case FaultOp::kPartition: {
      out += " {";
      bool first = true;
      for (int p = 0; p < 64; ++p) {
        if (arg & (1ULL << p)) {
          if (!first) out += ",";
          out += std::to_string(p);
          first = false;
        }
      }
      out += "} for " + std::to_string(duration) + "us";
      break;
    }
    case FaultOp::kHeal:
      break;
    case FaultOp::kFdTimeout:
      out += " p" + std::to_string(proc) + " " + std::to_string(arg) + "us";
      break;
    case FaultOp::kDupBurst:
    case FaultOp::kReorderBurst:
      out += " " + std::to_string(arg) + "% for " + std::to_string(duration) + "us";
      break;
    case FaultOp::kCount_:
      break;
  }
  return out;
}

FaultPlan FaultPlan::generate(std::uint64_t seed, FaultPlanOptions options) {
  FaultPlan plan;
  plan.seed = seed;
  plan.options = options;
  const int n = options.n;

  // World shaping: same envelope as the chaos suite, which 20 seeded runs
  // already prove live — base delay 100..400us, jitter 0..400us, up to 8%
  // loss, Paxos on even seeds.
  Rng world = Rng::stream(seed, kWorldKey);
  plan.link.base_delay = usec(100 + world.next_range(0, 300));
  plan.link.jitter = usec(world.next_range(0, 400));
  plan.link.drop_probability = world.next_double() * 0.08;
  plan.use_paxos = seed % 2 == 0;
  plan.settle = sec(5);

  // Step timing: 1..10ms gaps along the virtual-time axis.
  Rng timing = Rng::stream(seed, kTimingKey);
  // Step contents.
  Rng ops = Rng::stream(seed, kOpsKey);

  int crashes_left = options.max_crashes;
  Duration at = 0;
  plan.steps.reserve(static_cast<std::size_t>(options.steps));
  for (int i = 0; i < options.steps; ++i) {
    at += timing.next_range(msec(1), msec(10));
    FaultStep step;
    step.at = at;
    const auto dice = ops.next_below(100);
    const auto p = static_cast<ProcessId>(ops.next_below(static_cast<std::uint64_t>(n)));
    step.proc = p;
    if (dice < 46) {
      step.op = FaultOp::kAbcast;
    } else if (dice < 64) {
      step.op = FaultOp::kGbcast;
      step.cls = ops.chance(0.3) ? 1 : 0;
    } else if (dice < 70) {
      // Two conflicting gbcasts submitted at the same instant: the
      // stressor that separates a safe fast-path quorum from a broken one.
      step.op = FaultOp::kConflictRace;
      step.target = static_cast<ProcessId>((p + 1 + ops.next_below(static_cast<std::uint64_t>(n - 1))) % n);
    } else if (dice < 78) {
      step.op = FaultOp::kFalseSuspicion;
      step.target = static_cast<ProcessId>((p + 1 + ops.next_below(static_cast<std::uint64_t>(n - 1))) % n);
    } else if (dice < 83 && crashes_left > 0) {
      step.op = FaultOp::kCrash;
      --crashes_left;
    } else if (dice < 86) {
      // Partition a minority pair away; the runner heals it after
      // `duration` even if a later heal step was shrunk out.
      step.op = FaultOp::kPartition;
      const auto a = static_cast<ProcessId>(ops.next_below(static_cast<std::uint64_t>(n)));
      const auto b = static_cast<ProcessId>((a + 1) % n);
      step.arg = (1ULL << a) | (1ULL << b);
      step.duration = ops.next_range(msec(5), msec(60));
    } else if (dice < 89) {
      step.op = FaultOp::kFdTimeout;
      step.arg = static_cast<std::uint64_t>(ops.next_range(msec(30), msec(150)));
    } else if (dice < 92) {
      step.op = FaultOp::kDupBurst;
      step.arg = static_cast<std::uint64_t>(ops.next_range(5, 25));
      step.duration = ops.next_range(msec(10), msec(50));
    } else if (dice < 95) {
      step.op = FaultOp::kReorderBurst;
      step.arg = static_cast<std::uint64_t>(ops.next_range(5, 25));
      step.duration = ops.next_range(msec(10), msec(50));
    } else {
      step.op = FaultOp::kJoin;
    }
    plan.steps.push_back(step);
  }
  return plan;
}

void FaultPlan::encode(Encoder& enc) const {
  enc.put_u64(seed);
  enc.put_i32(options.n);
  enc.put_i32(options.steps);
  enc.put_i32(options.max_crashes);
  enc.put_i64(link.base_delay);
  enc.put_i64(link.jitter);
  enc.put_u64(std::bit_cast<std::uint64_t>(link.drop_probability));
  enc.put_bool(use_paxos);
  enc.put_i64(settle);
  enc.put_vector(steps, [](Encoder& e, const FaultStep& s) { s.encode(e); });
}

FaultPlan FaultPlan::decode(Decoder& dec) {
  FaultPlan plan;
  plan.seed = dec.get_u64();
  plan.options.n = dec.get_i32();
  plan.options.steps = dec.get_i32();
  plan.options.max_crashes = dec.get_i32();
  plan.link.base_delay = dec.get_i64();
  plan.link.jitter = dec.get_i64();
  plan.link.drop_probability = std::bit_cast<double>(dec.get_u64());
  plan.use_paxos = dec.get_bool();
  plan.settle = dec.get_i64();
  plan.steps = dec.get_vector<FaultStep>([](Decoder& d) { return FaultStep::decode(d); });
  return plan;
}

std::uint64_t FaultPlan::digest() const {
  Encoder enc;
  encode(enc);
  // FNV-1a.
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (std::uint8_t b : enc.bytes()) {
    h ^= b;
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::string FaultPlan::steps_json(const std::vector<std::uint32_t>& keep) const {
  std::string out = "[";
  bool first = true;
  for (std::uint32_t i : keep) {
    if (i >= steps.size()) continue;
    if (!first) out += ", ";
    // Step renderings use only JSON-safe characters (see to_string).
    out += "\"" + steps[i].to_string() + "\"";
    first = false;
  }
  out += "]";
  return out;
}

}  // namespace gcs::sim
