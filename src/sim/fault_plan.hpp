/// \file fault_plan.hpp
/// FaultPlan: the schedule explorer's scenario DSL.
///
/// A fault plan is a deterministic scenario program: a sorted list of
/// timestamped steps (traffic, crashes, partitions and heals, joins, false
/// suspicions, failure-detector timeout perturbations, network duplication
/// and reorder bursts) plus the world parameters the scenario runs under
/// (universe size, link model, consensus algorithm). Every field of every
/// step is fixed at *generation* time from a single 64-bit seed, using one
/// independent RNG stream per concern (Rng::stream): the world stream
/// shapes the link model, the timing stream places the steps on the
/// virtual-time axis and the op stream picks their kinds and arguments.
///
/// Because a step carries its full parameters, a plan with steps REMOVED is
/// still a valid plan and every surviving step behaves identically — the
/// property the delta-debugging shrinker (explore/shrink.hpp) relies on:
/// "drop this crash" never reshuffles the randomness of the partition two
/// steps later.
///
/// Grammar (one step per line in the textual rendering):
///
///   plan      := header step*
///   header    := seed n link(base,jitter,drop) paxos? settle
///   step      := '@' time op
///   op        := 'abcast' proc
///              | 'gbcast' proc cls            ; cls 0 = rbcast-class, 1 = abcast-class
///              | 'race' proc proc             ; two conflicting gbcasts, same instant
///              | 'crash' proc
///              | 'partition' memberset 'for' duration
///              | 'heal'
///              | 'join' proc
///              | 'suspect' proc proc          ; false consensus-class suspicion
///              | 'fd_timeout' proc duration   ; perturb ◇S suspicion timeout
///              | 'dup_burst' pct 'for' duration
///              | 'reorder_burst' pct 'for' duration
///
/// Plans serialize to the util::codec wire format (digest + artifact
/// payloads, round-trip tested) and render to JSON for humans.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/network.hpp"
#include "util/codec.hpp"
#include "util/rng.hpp"
#include "util/types.hpp"

namespace gcs::sim {

/// Step kinds. Values are wire-stable (artifacts store them).
enum class FaultOp : std::uint8_t {
  kAbcast = 0,        ///< proc abcasts a payload
  kGbcast,            ///< proc gbcasts a payload with class cls
  kConflictRace,      ///< proc and target gbcast conflicting messages at the same instant
  kCrash,             ///< proc crashes permanently
  kPartition,         ///< split the universe: arg = bitmask of component A; auto-heal after duration
  kHeal,              ///< explicit heal
  kJoin,              ///< excluded-but-alive proc rejoins via an alive member
  kFalseSuspicion,    ///< proc falsely suspects target (consensus class)
  kFdTimeout,         ///< proc sets its ◇S suspicion timeout to arg microseconds
  kDupBurst,          ///< network duplicates arg% of datagrams for duration
  kReorderBurst,      ///< network holds back arg% of datagrams for duration
  kCount_,            // sentinel
};

std::string_view fault_op_name(FaultOp op);

/// One timestamped scenario step. Unused fields are zero.
struct FaultStep {
  Duration at = 0;                ///< virtual time the step fires
  FaultOp op = FaultOp::kAbcast;
  ProcessId proc = kNoProcess;    ///< acting process
  ProcessId target = kNoProcess;  ///< suspicion target / race partner / join contact hint
  std::uint8_t cls = 0;           ///< gbcast message class
  std::uint64_t arg = 0;          ///< partition bitmask / timeout us / burst percent
  Duration duration = 0;          ///< partition / burst length

  friend bool operator==(const FaultStep&, const FaultStep&) = default;

  void encode(Encoder& enc) const;
  static FaultStep decode(Decoder& dec);
  /// One-line human rendering per the DSL grammar above.
  std::string to_string() const;
};

/// Generation knobs. Everything else derives from the seed.
struct FaultPlanOptions {
  int n = 5;           ///< universe size (3..16; partitions use a bitmask)
  int steps = 60;      ///< scenario length before the settle phase
  int max_crashes = 1; ///< keep a solid majority alive (n=5 -> 1, like chaos_test)

  friend bool operator==(const FaultPlanOptions&, const FaultPlanOptions&) = default;
};

/// A full scenario program: world parameters + step list.
struct FaultPlan {
  std::uint64_t seed = 0;
  FaultPlanOptions options;
  LinkModel link;           ///< all non-loopback links
  bool use_paxos = false;   ///< consensus algorithm for this schedule
  Duration settle = sec(5); ///< quiet time after the last step before checks
  std::vector<FaultStep> steps;

  /// Generate the deterministic plan for (seed, options). Same inputs,
  /// same plan — on any platform (Rng is pinned).
  static FaultPlan generate(std::uint64_t seed, FaultPlanOptions options = {});

  /// Wire round-trip (artifact payloads, digesting, tests).
  void encode(Encoder& enc) const;
  static FaultPlan decode(Decoder& dec);

  /// FNV-1a over the wire encoding; artifacts store it so replay can prove
  /// it regenerated the plan the violation was found on.
  std::uint64_t digest() const;

  /// JSON array of step renderings for the repro artifact (human-oriented;
  /// replay reconstructs the plan from seed+options, not from this).
  std::string steps_json(const std::vector<std::uint32_t>& keep) const;
};

}  // namespace gcs::sim
