/// \file engine.hpp
/// Deterministic discrete-event engine driving all simulations.
///
/// Events fire in (time, insertion-order) order, so two runs with the same
/// seed produce identical traces. The engine knows nothing about processes
/// or networks — it is a cancellable timer wheel over virtual time.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <queue>
#include <unordered_map>

#include "util/types.hpp"

namespace gcs::sim {

/// Handle for a scheduled event; used to cancel it.
using TimerId = std::uint64_t;

inline constexpr TimerId kNoTimer = 0;

class Engine {
 public:
  Engine() = default;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Current virtual time.
  TimePoint now() const { return now_; }

  /// Schedule \p fn at absolute virtual time \p at (clamped to now()).
  TimerId schedule_at(TimePoint at, std::function<void()> fn);

  /// Schedule \p fn \p delay from now.
  TimerId schedule_after(Duration delay, std::function<void()> fn) {
    return schedule_at(now_ + (delay < 0 ? 0 : delay), std::move(fn));
  }

  /// Cancel a scheduled event. Cancelling an already-fired or unknown id is
  /// a no-op, so callers need not track lifetimes precisely.
  void cancel(TimerId id) { handlers_.erase(id); }

  /// Run the single earliest event. Returns false if the queue is empty.
  bool step();

  /// Run until the queue is empty or \p max_events were processed.
  void run(std::uint64_t max_events = std::numeric_limits<std::uint64_t>::max());

  /// Run all events with time <= deadline, then advance now() to deadline.
  void run_until(TimePoint deadline);

  /// Run events for \p d of virtual time from now().
  void run_for(Duration d) { run_until(now_ + d); }

  /// Number of scheduled (uncancelled) events.
  std::size_t pending() const { return handlers_.size(); }

  /// Total number of events executed since construction.
  std::uint64_t executed() const { return executed_; }

 private:
  struct QueueEntry {
    TimePoint at;
    TimerId id;
    // Earliest time first; equal times fire in schedule order (id order).
    bool operator>(const QueueEntry& o) const {
      return at != o.at ? at > o.at : id > o.id;
    }
  };

  TimePoint now_ = 0;
  TimerId next_id_ = 1;
  std::uint64_t executed_ = 0;
  std::priority_queue<QueueEntry, std::vector<QueueEntry>, std::greater<>> queue_;
  // Lazy deletion: cancelled ids are simply absent from this map.
  std::unordered_map<TimerId, std::function<void()>> handlers_;
};

}  // namespace gcs::sim
