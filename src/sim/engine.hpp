/// \file engine.hpp
/// Deterministic discrete-event engine driving all simulations.
///
/// Events fire in (time, insertion-order) order, so two runs with the same
/// seed produce identical traces. The engine knows nothing about processes
/// or networks — it is a cancellable timer wheel over virtual time.
///
/// Hot-path design (see DESIGN.md, "Kernel performance model"):
///   - timer callbacks live in pooled nodes with small-buffer-optimized
///     storage (util::UniqueFunction), recycled through a free list and
///     allocated in fixed-size chunks whose addresses never move, so a
///     schedule/fire cycle performs zero heap allocations in steady state
///     and callbacks are invoked in place;
///   - the ready queue is an intrusive hierarchical timing wheel: 7
///     levels of 64 slots at 64^level-microsecond granularity, each slot
///     a (head, tail) pair threading a FIFO list through the nodes'
///     `next` links, with one occupancy bitmap per level. Scheduling
///     appends to the slot of the highest base-64 digit in which the
///     deadline differs from now (O(1)); advancing virtual time scans
///     bitmaps with countr_zero and cascades coarse slots down a level
///     when it enters them. Appends happen in schedule order and
///     cascades preserve list order, so FIFO slot order IS
///     (time, insertion-order) order — the determinism tie-break costs
///     nothing and no comparator exists at all;
///   - TimerId packs (generation << 32 | slot), making cancel an O(1)
///     generation check that frees the callback immediately; the dead
///     node stays linked until its slot drains and is compacted away
///     early if the dead outnumber the live, so cancel-heavy chaos runs
///     stay bounded;
///   - an optional "gate" (shared liveness flag) replaces the old
///     allocating guard-lambda wrapper used by sim::Context.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <vector>

#include "util/inline_function.hpp"
#include "util/types.hpp"

namespace gcs::sim {

/// Handle for a scheduled event; used to cancel it.
/// Packs (generation << 32) | pool slot; generations start at 1, so no
/// valid id ever equals kNoTimer.
using TimerId = std::uint64_t;

inline constexpr TimerId kNoTimer = 0;

class Engine {
 public:
  /// Inline capture budget for timer callbacks. Large enough for every
  /// hot-path lambda in the stack (network delivery captures ~32 bytes);
  /// bigger captures transparently fall back to one boxed allocation.
  static constexpr std::size_t kCallbackCapacity = 64;
  using Callback = util::UniqueFunction<kCallbackCapacity>;
  /// Optional liveness gate: when set and false at fire time, the event
  /// still occupies its slot in virtual time but the callback is skipped.
  using Gate = std::shared_ptr<const bool>;

  Engine() = default;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Current virtual time.
  TimePoint now() const { return now_; }

  /// Schedule \p fn at absolute virtual time \p at (clamped to now()).
  TimerId schedule_at(TimePoint at, Callback fn) {
    return schedule_impl(at, std::move(fn), Gate{});
  }
  TimerId schedule_at(TimePoint at, Callback fn, Gate gate) {
    return schedule_impl(at, std::move(fn), std::move(gate));
  }

  /// Schedule \p fn \p delay from now.
  TimerId schedule_after(Duration delay, Callback fn) {
    return schedule_impl(now_ + (delay < 0 ? 0 : delay), std::move(fn), Gate{});
  }
  TimerId schedule_after(Duration delay, Callback fn, Gate gate) {
    return schedule_impl(now_ + (delay < 0 ? 0 : delay), std::move(fn), std::move(gate));
  }

  /// Cancel a scheduled event in O(1). Cancelling an already-fired, stale
  /// or unknown id is a no-op, so callers need not track lifetimes
  /// precisely; the callback (and anything it captured) is destroyed
  /// immediately.
  void cancel(TimerId id);

  /// Run the single earliest event. Returns false if the queue is empty.
  bool step() { return step_limited(std::numeric_limits<TimePoint>::max()); }

  /// Run until the queue is empty or \p max_events were processed.
  void run(std::uint64_t max_events = std::numeric_limits<std::uint64_t>::max());

  /// Run all events with time <= deadline, then advance now() to deadline.
  void run_until(TimePoint deadline);

  /// Run events for \p d of virtual time from now().
  void run_for(Duration d) { run_until(now_ + d); }

  /// Number of scheduled (uncancelled) events.
  std::size_t pending() const { return live_; }

  /// Wheel entries including not-yet-compacted cancelled ones. Bounded by
  /// 2x pending() + a small constant (compaction invariant); exposed for
  /// the bounded-memory regression tests and diagnostics.
  std::size_t queue_depth() const { return live_ + stale_; }

  /// Size of the timer-node pool (high-water mark of concurrent timers).
  std::size_t pool_size() const { return pool_count_; }

  /// Total number of events executed since construction.
  std::uint64_t executed() const { return executed_; }

 private:
  static constexpr std::uint32_t kNil = 0xffffffffu;
  /// Below this node count, lazy deletion is cheaper than compaction.
  static constexpr std::size_t kCompactMin = 64;
  static constexpr int kLevels = 7;        ///< 64^7 us ≈ 139 years of virtual time
  static constexpr unsigned kSlotBits = 6; ///< 64 slots per level
  static constexpr unsigned kSlotMask = 63;

  struct Node {
    Callback fn;
    Gate gate;
    TimePoint at = 0;            ///< absolute deadline while linked
    std::uint32_t next = kNil;   ///< next in slot FIFO, or next free node
    std::uint32_t gen = 1;       ///< bumped on fire/cancel; validates TimerIds
    bool armed = false;          ///< scheduled and not yet fired/cancelled
  };

  /// A wheel slot: FIFO list threaded through Node::next.
  struct Slot {
    std::uint32_t head = kNil;
    std::uint32_t tail = kNil;
  };

  /// Nodes live in fixed-size chunks so their addresses never move: pool
  /// growth is O(1) with no element relocation (UniqueFunction + Gate make
  /// Node expensive to move), and a firing callback can be invoked in
  /// place while the pool grows under it.
  static constexpr unsigned kChunkBits = 6;
  static constexpr std::uint32_t kChunkSize = 1u << kChunkBits;

  TimerId schedule_impl(TimePoint at, Callback&& fn, Gate&& gate);
  Node& node_at(std::uint32_t slot) {
    return pool_[slot >> kChunkBits][slot & (kChunkSize - 1)];
  }
  const Node& node_at(std::uint32_t slot) const {
    return pool_[slot >> kChunkBits][slot & (kChunkSize - 1)];
  }
  std::uint32_t acquire_node();
  void free_node(std::uint32_t idx);
  void place(std::uint32_t idx);
  bool position(TimePoint limit);
  bool step_limited(TimePoint limit);
  void compact();
  void compact_list(Slot& slot);

  TimePoint now_ = 0;
  std::uint64_t executed_ = 0;
  std::size_t live_ = 0;   ///< armed timers (pending())
  std::size_t stale_ = 0;  ///< cancelled nodes still linked in the wheel
  std::array<std::array<Slot, kSlotMask + 1>, kLevels> wheel_;
  std::array<std::uint64_t, kLevels> occupied_{};  ///< per-level slot bitmaps
  Slot overflow_;  ///< deadlines beyond the top level's horizon
  std::vector<std::unique_ptr<Node[]>> pool_;  ///< stable-address node chunks
  std::uint32_t pool_count_ = 0;
  std::uint32_t free_head_ = kNil;
};

/// Self-rescheduling fixed-cadence timer: calls \p fn(now) every
/// \p interval of virtual time until stopped or destroyed. The probe
/// sampler rides on this; it is generic enough for any periodic
/// simulation-global hook (the per-process layers keep using
/// Context::after, which is gated on process liveness — this one is not).
class PeriodicTimer {
 public:
  using TickFn = std::function<void(TimePoint)>;

  PeriodicTimer() = default;
  PeriodicTimer(const PeriodicTimer&) = delete;
  PeriodicTimer& operator=(const PeriodicTimer&) = delete;
  ~PeriodicTimer() { stop(); }

  /// Start ticking on \p engine every \p interval; the first tick fires one
  /// interval from now. Restarting an active timer re-arms it.
  void start(Engine& engine, Duration interval, TickFn fn) {
    stop();
    engine_ = &engine;
    interval_ = interval < 1 ? 1 : interval;
    fn_ = std::move(fn);
    arm();
  }

  void stop() {
    if (engine_ && timer_ != kNoTimer) engine_->cancel(timer_);
    timer_ = kNoTimer;
    engine_ = nullptr;
  }

  bool active() const { return engine_ != nullptr; }

 private:
  void arm() {
    timer_ = engine_->schedule_after(interval_, [this] {
      timer_ = kNoTimer;
      fn_(engine_->now());
      if (engine_) arm();  // fn_ may have called stop()
    });
  }

  Engine* engine_ = nullptr;
  Duration interval_ = 0;
  TickFn fn_;
  TimerId timer_ = kNoTimer;
};

}  // namespace gcs::sim
