/// \file reliable_channel.hpp
/// Reliable point-to-point channel (Fig 9: "Reliable Channel").
///
/// Guarantees: if a correct process p sends m to a correct process q, then q
/// eventually receives m; per (sender, receiver) pair delivery is FIFO and
/// duplicate-free. Implemented with per-peer sequence numbers, cumulative
/// acknowledgements and periodic retransmission over the unreliable
/// transport — the shape of the TCP-based channel of [Ekwall et al. 2002]
/// that the paper cites.
///
/// The channel also exposes its output buffer age per peer: a message that
/// stays unacknowledged for a long time is the basis for *output-triggered
/// suspicion* (paper §3.3.2), consumed by the monitoring component.
#pragma once

#include <array>
#include <functional>
#include <map>
#include <vector>

#include "sim/context.hpp"
#include "transport/transport.hpp"

namespace gcs {

class ReliableChannel {
 public:
  /// Receives a view into the channel's receive path (the datagram buffer
  /// for in-order arrivals, the holdback copy otherwise); valid only for
  /// the duration of the call.
  using Handler = std::function<void(ProcessId from, BytesView payload)>;

  struct Config {
    Duration rto = msec(20);  ///< retransmission period for unacked messages
    /// Flow control (the role Totem's middle layer plays, paper Fig 4):
    /// at most this many in-flight (transmitted, unacked) messages per
    /// peer; the rest queue locally until acks open the window. 0 = off.
    std::size_t send_window = 0;
    /// Batching/piggybacking: hold sends for up to this long and pack
    /// everything queued for a peer into one datagram. Protocols that
    /// broadcast in bursts (consensus, GB ACKs) collapse dramatically.
    /// 0 = off (every message is its own datagram).
    Duration batch_delay = 0;
  };

  ReliableChannel(sim::Context& ctx, Transport& transport, Config config);
  ReliableChannel(sim::Context& ctx, Transport& transport);

  /// Reliable FIFO send of \p payload to \p to, for the component owning
  /// \p upper. Messages to self are delivered through the loopback link.
  /// Payload converts implicitly from Bytes; the shared buffer is held in
  /// the retransmit queue without copying.
  void send(ProcessId to, Tag upper, Payload payload);

  /// Convenience: send the same payload to every process in \p group. One
  /// shared buffer backs every destination's retransmit-queue entry.
  void send_group(const std::vector<ProcessId>& group, Tag upper, const Payload& payload) {
    for (ProcessId p : group) send(p, upper, payload);
  }

  /// Register the upper-layer receive handler for \p upper.
  void subscribe(Tag upper, Handler handler);

  /// -- output-triggered suspicion hooks (paper §3.3.2) ------------------

  /// Age of the oldest unacknowledged message to \p to; 0 if none.
  Duration oldest_unacked_age(ProcessId to) const;

  /// Number of buffered (unacknowledged) messages to \p to.
  std::size_t unacked_count(ProcessId to) const;

  /// Discard all buffered output for \p to. Called when \p to is excluded
  /// from the membership: its obligations are void, so the buffer can be
  /// safely released (paper §3.3.2).
  void forget(ProcessId to);

  /// Messages queued by flow control (not yet transmitted) for \p to.
  std::size_t queued_by_flow_control(ProcessId to) const;

  /// Datagrams actually emitted (tests assert batching effectiveness).
  std::int64_t datagrams_sent() const { return datagrams_sent_; }

  /// Total send-queue depth across all peers: every buffered message,
  /// transmitted-but-unacked and flow-control-held alike (probe gauge).
  std::size_t total_send_queue() const {
    std::size_t n = 0;
    for (const auto& [to, peer] : out_) {
      (void)to;
      n += peer.unacked.size();
    }
    return n;
  }

 private:
  struct Outgoing {
    Tag upper;
    Payload payload;
    TimePoint first_sent;  // kNeverSent while held back by flow control
  };
  static constexpr TimePoint kNeverSent = -1;
  struct PeerOut {
    std::uint64_t next_seq = 0;
    std::map<std::uint64_t, Outgoing> unacked;  // seq -> message
    std::size_t in_flight = 0;                  // transmitted, unacked
    bool flush_armed = false;                   // batching timer pending
  };
  struct PeerIn {
    std::uint64_t next_expected = 0;
    std::map<std::uint64_t, std::pair<Tag, Bytes>> holdback;  // out-of-order
  };

  void on_datagram(ProcessId from, BytesView payload);
  void deliver(ProcessId from, Tag upper, BytesView payload);
  void send_ack(ProcessId to, std::uint64_t cumulative);
  void account_upper(Tag upper, std::size_t wire_bytes);
  void transmit(ProcessId to, std::uint64_t seq, const Outgoing& msg);
  void transmit_batch(ProcessId to,
                      const std::vector<std::pair<std::uint64_t, const Outgoing*>>& msgs);
  void pump(ProcessId to, PeerOut& peer);  // flow control: fill the window
  void flush(ProcessId to);                // batching: emit the packed datagram
  void arm_retransmit_timer();
  void retransmit_tick();

  sim::Context& ctx_;
  Transport& transport_;
  Config config_;
  // Metric ids interned once at construction; the send/deliver hot paths
  // stay free of string lookups.
  MetricId m_sent_;
  MetricId m_batches_;
  MetricId m_delivered_;
  MetricId m_retransmits_;
  MetricId h_residence_;  ///< first transmit -> cumulative ack (time-in-channel)
  // Per-upper-tag wire accounting ("<upper>.wire_bytes" / "<upper>.wire_msgs"):
  // bytes this component put on the wire through the channel, counted at
  // (re)transmit time so retransmissions are included.
  std::array<MetricId, static_cast<std::size_t>(Tag::kMax)> m_up_wire_bytes_;
  std::array<MetricId, static_cast<std::size_t>(Tag::kMax)> m_up_wire_msgs_;
  std::map<ProcessId, PeerOut> out_;
  std::map<ProcessId, PeerIn> in_;
  std::vector<Handler> handlers_;
  bool timer_armed_ = false;
  std::int64_t datagrams_sent_ = 0;
  Bytes scratch_;  ///< reusable datagram framing buffer (capacity persists)
};

}  // namespace gcs
