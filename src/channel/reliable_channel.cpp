#include "channel/reliable_channel.hpp"

#include "util/codec.hpp"

namespace gcs {

namespace {
constexpr std::uint8_t kData = 0;
constexpr std::uint8_t kAck = 1;
constexpr std::uint8_t kBatch = 2;
}  // namespace

ReliableChannel::ReliableChannel(sim::Context& ctx, Transport& transport)
    : ReliableChannel(ctx, transport, Config{}) {}

ReliableChannel::ReliableChannel(sim::Context& ctx, Transport& transport, Config config)
    : ctx_(ctx), transport_(transport), config_(config),
      m_sent_(metric_id("channel.sent")), m_batches_(metric_id("channel.batches")),
      m_delivered_(metric_id("channel.delivered")),
      m_retransmits_(metric_id("channel.retransmits")),
      h_residence_(metric_id("channel.residence_us")),
      handlers_(static_cast<std::size_t>(Tag::kMax)) {
  for (std::size_t t = 0; t < static_cast<std::size_t>(Tag::kMax); ++t) {
    const std::string base = tag_name(static_cast<Tag>(t));
    m_up_wire_bytes_[t] = metric_id(base + ".wire_bytes");
    m_up_wire_msgs_[t] = metric_id(base + ".wire_msgs");
  }
  transport_.subscribe(Tag::kChannel,
                       [this](ProcessId from, BytesView b) { on_datagram(from, b); });
}

void ReliableChannel::account_upper(Tag upper, std::size_t wire_bytes) {
  const auto idx = static_cast<std::size_t>(upper);
  if (idx >= m_up_wire_bytes_.size()) return;
  ctx_.metrics().inc(m_up_wire_msgs_[idx]);
  ctx_.metrics().inc(m_up_wire_bytes_[idx], static_cast<std::int64_t>(wire_bytes));
}

void ReliableChannel::send(ProcessId to, Tag upper, Payload payload) {
  PeerOut& peer = out_[to];
  const std::uint64_t seq = peer.next_seq++;
  peer.unacked.emplace(seq, Outgoing{upper, std::move(payload), kNeverSent});
  ctx_.metrics().inc(m_sent_);
  pump(to, peer);
  arm_retransmit_timer();
}

void ReliableChannel::pump(ProcessId to, PeerOut& peer) {
  if (config_.batch_delay > 0) {
    // Batching mode: defer; the flush timer packs everything eligible.
    if (!peer.flush_armed) {
      peer.flush_armed = true;
      ctx_.after(config_.batch_delay, [this, to] { flush(to); });
    }
    return;
  }
  // Transmit queued messages while the flow-control window has room.
  // (With send_window == 0 everything goes immediately.)
  for (auto& [seq, msg] : peer.unacked) {
    if (config_.send_window > 0 && peer.in_flight >= config_.send_window) break;
    if (msg.first_sent != kNeverSent) continue;
    msg.first_sent = ctx_.now();
    ++peer.in_flight;
    transmit(to, seq, msg);
  }
}

void ReliableChannel::flush(ProcessId to) {
  auto oit = out_.find(to);
  if (oit == out_.end()) return;
  PeerOut& peer = oit->second;
  peer.flush_armed = false;
  std::vector<std::pair<std::uint64_t, const Outgoing*>> batch;
  for (auto& [seq, msg] : peer.unacked) {
    if (config_.send_window > 0 && peer.in_flight >= config_.send_window) break;
    if (msg.first_sent != kNeverSent) continue;
    msg.first_sent = ctx_.now();
    ++peer.in_flight;
    batch.emplace_back(seq, &msg);
  }
  if (batch.empty()) return;
  if (batch.size() == 1) {
    transmit(to, batch[0].first, *batch[0].second);
  } else {
    transmit_batch(to, batch);
  }
}

void ReliableChannel::transmit_batch(
    ProcessId to, const std::vector<std::pair<std::uint64_t, const Outgoing*>>& msgs) {
  // Frame into the reusable scratch buffer; u_send copies it into the
  // outgoing datagram synchronously, so reuse per call is safe.
  scratch_.clear();
  Encoder enc(scratch_);
  enc.put_byte(kBatch);
  enc.put_u64(msgs.size());
  for (const auto& [seq, msg] : msgs) {
    const std::size_t before = enc.size();
    enc.put_u64(seq);
    enc.put_byte(static_cast<std::uint8_t>(msg->upper));
    enc.put_bytes(msg->payload.bytes());
    account_upper(msg->upper, enc.size() - before);
    ctx_.trace_instant(obs::Names::get().channel_tx, MsgId{},
                       obs::pack_channel_arg(to, static_cast<std::uint8_t>(msg->upper),
                                             msg->payload.size()));
  }
  ++datagrams_sent_;
  ctx_.metrics().inc(m_batches_);
  transport_.u_send(to, Tag::kChannel, scratch_);
}

void ReliableChannel::subscribe(Tag upper, Handler handler) {
  handlers_[static_cast<std::size_t>(upper)] = std::move(handler);
}

Duration ReliableChannel::oldest_unacked_age(ProcessId to) const {
  auto it = out_.find(to);
  if (it == out_.end()) return 0;
  for (const auto& [seq, msg] : it->second.unacked) {
    if (msg.first_sent != kNeverSent) return ctx_.now() - msg.first_sent;
  }
  return 0;
}

std::size_t ReliableChannel::unacked_count(ProcessId to) const {
  auto it = out_.find(to);
  return it == out_.end() ? 0 : it->second.unacked.size();
}

void ReliableChannel::forget(ProcessId to) {
  auto it = out_.find(to);
  if (it != out_.end()) {
    it->second.unacked.clear();
    it->second.in_flight = 0;
  }
}

std::size_t ReliableChannel::queued_by_flow_control(ProcessId to) const {
  auto it = out_.find(to);
  if (it == out_.end()) return 0;
  std::size_t queued = 0;
  for (const auto& [seq, msg] : it->second.unacked) {
    if (msg.first_sent == kNeverSent) ++queued;
  }
  return queued;
}

void ReliableChannel::transmit(ProcessId to, std::uint64_t seq, const Outgoing& msg) {
  ++datagrams_sent_;
  ctx_.trace_instant(obs::Names::get().channel_tx, MsgId{},
                     obs::pack_channel_arg(to, static_cast<std::uint8_t>(msg.upper),
                                           msg.payload.size()));
  scratch_.clear();
  Encoder enc(scratch_);
  enc.put_byte(kData);
  const std::size_t before = enc.size();
  enc.put_u64(seq);
  enc.put_byte(static_cast<std::uint8_t>(msg.upper));
  enc.put_bytes(msg.payload.bytes());
  account_upper(msg.upper, enc.size() - before);
  transport_.u_send(to, Tag::kChannel, scratch_);
}

void ReliableChannel::send_ack(ProcessId to, std::uint64_t cumulative) {
  scratch_.clear();
  Encoder enc(scratch_);
  enc.put_byte(kAck);
  enc.put_u64(cumulative);
  transport_.u_send(to, Tag::kChannel, scratch_);
}

void ReliableChannel::on_datagram(ProcessId from, BytesView payload) {
  Decoder dec(payload);
  const std::uint8_t kind = dec.get_byte();
  if (kind == kAck) {
    // Cumulative ack: everything strictly below `cumulative` is received.
    const std::uint64_t cumulative = dec.get_u64();
    if (!dec.ok()) return;
    PeerOut& peer = out_[from];
    auto end = peer.unacked.lower_bound(cumulative);
    for (auto it = peer.unacked.begin(); it != end; ++it) {
      if (it->second.first_sent != kNeverSent) {
        if (peer.in_flight > 0) --peer.in_flight;
        // Time-in-channel: first transmit until the cumulative ack covers
        // the message (the sender-side view of channel residence).
        ctx_.metrics().observe(h_residence_, ctx_.now() - it->second.first_sent);
      }
    }
    peer.unacked.erase(peer.unacked.begin(), end);
    pump(from, peer);
    return;
  }
  std::uint64_t entries = 1;
  if (kind == kBatch) {
    entries = dec.get_u64();
  } else if (kind != kData) {
    return;
  }
  PeerIn& peer = in_[from];
  for (std::uint64_t i = 0; i < entries && dec.ok(); ++i) {
    const std::uint64_t seq = dec.get_u64();
    const Tag upper = static_cast<Tag>(dec.get_byte());
    const BytesView body = dec.get_view();
    if (!dec.ok() || static_cast<std::size_t>(upper) >= handlers_.size()) break;
    if (seq < peer.next_expected) continue;  // duplicate
    // Zero-copy fast path: the common case (in order, nothing held back)
    // delivers the view straight out of the datagram buffer. Out-of-order
    // arrivals are the only ones that pay a copy into the holdback.
    if (seq == peer.next_expected && peer.holdback.empty()) {
      ++peer.next_expected;
      deliver(from, upper, body);
    } else if (peer.holdback.find(seq) == peer.holdback.end()) {
      peer.holdback.emplace(seq, std::make_pair(upper, to_bytes(body)));
    }
  }
  // Deliver the in-order prefix of the holdback.
  while (!peer.holdback.empty() && peer.holdback.begin()->first == peer.next_expected) {
    auto node = peer.holdback.extract(peer.holdback.begin());
    ++peer.next_expected;
    deliver(from, node.mapped().first, node.mapped().second);
  }
  send_ack(from, peer.next_expected);
}

void ReliableChannel::deliver(ProcessId from, Tag upper, BytesView payload) {
  ctx_.metrics().inc(m_delivered_);
  ctx_.trace_instant(obs::Names::get().channel_rx, MsgId{},
                     obs::pack_channel_arg(from, static_cast<std::uint8_t>(upper),
                                           payload.size()));
  auto& handler = handlers_[static_cast<std::size_t>(upper)];
  if (handler) handler(from, payload);
}

void ReliableChannel::arm_retransmit_timer() {
  if (timer_armed_) return;
  timer_armed_ = true;
  ctx_.after(config_.rto, [this] { retransmit_tick(); });
}

void ReliableChannel::retransmit_tick() {
  timer_armed_ = false;
  bool outstanding = false;
  for (auto& [to, peer] : out_) {
    std::vector<std::pair<std::uint64_t, const Outgoing*>> due;
    for (auto& [seq, msg] : peer.unacked) {
      // Only retransmit messages that have been in flight at least one rto;
      // fresh sends get their first chance and flow-control-queued ones
      // have never been transmitted at all.
      if (msg.first_sent != kNeverSent && ctx_.now() - msg.first_sent >= config_.rto) {
        ctx_.metrics().inc(m_retransmits_);
        ctx_.trace_instant(obs::Names::get().channel_retransmit, MsgId{},
                           obs::pack_channel_arg(to, static_cast<std::uint8_t>(msg.upper),
                                                 msg.payload.size()));
        due.emplace_back(seq, &msg);
      }
      outstanding = true;
    }
    if (due.size() == 1) {
      transmit(to, due[0].first, *due[0].second);
    } else if (due.size() > 1) {
      transmit_batch(to, due);
    }
  }
  if (outstanding) arm_retransmit_timer();
}

}  // namespace gcs
