#include "explore/runner.hpp"

#include <algorithm>
#include <memory>
#include <numeric>

#include "core/stack.hpp"
#include "obs/oracle.hpp"
#include "obs/report.hpp"
#include "obs/trace.hpp"

namespace gcs::explore {

namespace {

Bytes bytes_of(const std::string& s) { return Bytes(s.begin(), s.end()); }

std::uint64_t fnv1a(const void* data, std::size_t size, std::uint64_t h = 0xcbf29ce484222325ULL) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  for (std::size_t i = 0; i < size; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ULL;
  }
  return h;
}

/// Run the engine until \p pred holds or \p timeout of virtual time passes.
template <typename Pred>
bool run_until(sim::Engine& engine, Duration timeout, Pred pred) {
  const TimePoint deadline = engine.now() + timeout;
  while (engine.now() < deadline) {
    if (pred()) return true;
    engine.run_until(std::min<TimePoint>(deadline, engine.now() + msec(10)));
  }
  return pred();
}

std::string format_trace_tail(const obs::Recorder& recorder, std::size_t n) {
  std::string out;
  for (const obs::Record& r : recorder.tail(kNoProcess, n)) {
    out += std::to_string(r.ts) + " p" + std::to_string(r.proc) + " " +
           std::string(obs::name_of(r.name));
    switch (r.phase) {
      case obs::Phase::kBegin: out += " begin"; break;
      case obs::Phase::kEnd: out += " end"; break;
      case obs::Phase::kInstant: break;
    }
    if (r.msg.sender != kNoProcess) out += " msg=" + to_string(r.msg);
    if (r.arg != 0) out += " arg=" + std::to_string(r.arg);
    out += "\n";
  }
  return out;
}

}  // namespace

std::string_view outcome_name(Outcome o) {
  switch (o) {
    case Outcome::kClean: return "clean";
    case Outcome::kViolation: return "violation";
    case Outcome::kWedged: return "wedged";
  }
  return "?";
}

std::vector<std::uint32_t> all_steps(const sim::FaultPlan& plan) {
  std::vector<std::uint32_t> keep(plan.steps.size());
  std::iota(keep.begin(), keep.end(), 0u);
  return keep;
}

std::string scenario_name(const sim::FaultPlan& plan, const std::vector<std::uint32_t>& keep) {
  // The kept-set digest distinguishes shrunk re-runs of the same seed; a
  // full keep and its replay hash identically, so their reports compare
  // byte-for-byte.
  const std::uint64_t mask =
      fnv1a(keep.data(), keep.size() * sizeof(std::uint32_t), plan.digest());
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%016llx", static_cast<unsigned long long>(mask));
  return "explore_s" + std::to_string(plan.seed) + "_k" + buf;
}

RunResult run_plan(const sim::FaultPlan& plan, const std::vector<std::uint32_t>& keep,
                   const RunOptions& options) {
  const int n = plan.options.n;

  World::Config config;
  config.n = n;
  config.seed = plan.seed;
  config.link = plan.link;
  config.stack.monitoring.exclusion_timeout = msec(400);
  if (plan.use_paxos) config.stack.consensus_algorithm = StackConfig::ConsensusAlgo::kPaxos;
  config.stack.gb.unsafe_fast_quorum_override = options.fast_quorum_override;
  std::shared_ptr<obs::Recorder> recorder;
  if (options.trace_capacity > 0) {
    recorder = std::make_shared<obs::Recorder>(options.trace_capacity);
    config.stack.recorder = recorder;
  }

  World world(config);
  obs::Oracle oracle;
  world.attach_oracle(oracle);

  std::vector<std::uint64_t> adelivered(static_cast<std::size_t>(n), 0);
  std::uint64_t gdelivered = 0;
  for (ProcessId p = 0; p < n; ++p) {
    world.stack(p).on_adeliver(
        [&adelivered, p](const MsgId&, const Bytes&) { ++adelivered[static_cast<std::size_t>(p)]; });
    world.stack(p).on_gdeliver(
        [&gdelivered](const MsgId&, MsgClass, const Bytes&) { ++gdelivered; });
  }
  world.found_group_all();

  auto alive = [&world](ProcessId p) { return world.network().alive(p); };
  auto is_member = [&world, &alive](ProcessId p) {
    return alive(p) && world.stack(p).membership().is_member();
  };
  auto alive_count = [&world, n] {
    int c = 0;
    for (ProcessId p = 0; p < n; ++p) c += world.network().alive(p) ? 1 : 0;
    return c;
  };

  // Partition / burst state. Heals and restores are scheduled off the step
  // that opened them, so a shrunk plan that dropped a later heal step still
  // converges before the settle phase checks.
  bool partitioned = false;

  // Execute the kept steps at their plan times. All guards are evaluated
  // at execution time against simulation state, so ANY subset of steps is
  // a well-formed schedule — the shrinker depends on that.
  for (std::uint32_t i : keep) {
    if (i >= plan.steps.size()) continue;
    const sim::FaultStep& step = plan.steps[i];
    if (step.at > world.engine().now()) world.run_for(step.at - world.engine().now());
    const ProcessId p = step.proc;
    switch (step.op) {
      case sim::FaultOp::kAbcast:
        if (is_member(p)) world.stack(p).abcast(bytes_of("a" + std::to_string(i)));
        break;
      case sim::FaultOp::kGbcast:
        if (is_member(p)) {
          world.stack(p).gbcast(step.cls ? kAbcastClass : kRbcastClass,
                                bytes_of("g" + std::to_string(i)));
        }
        break;
      case sim::FaultOp::kConflictRace:
        // Two conflicting submissions at the same virtual instant from two
        // different processes: the schedule most likely to expose a broken
        // fast-path quorum.
        if (is_member(p) && is_member(step.target) && p != step.target) {
          world.stack(p).gbcast(kAbcastClass, bytes_of("r" + std::to_string(i) + "a"));
          world.stack(step.target).gbcast(kAbcastClass, bytes_of("r" + std::to_string(i) + "b"));
        }
        break;
      case sim::FaultOp::kCrash:
        // Keep a strict majority alive no matter which subset of steps
        // survived shrinking.
        if (alive(p) && 2 * (alive_count() - 1) > n) world.crash(p);
        break;
      case sim::FaultOp::kPartition: {
        if (partitioned) break;
        std::vector<ProcessId> in, out;
        for (ProcessId q = 0; q < n; ++q) {
          (step.arg & (1ULL << q) ? in : out).push_back(q);
        }
        if (in.empty() || out.empty()) break;
        partitioned = true;
        world.network().partition({out, in});
        world.engine().schedule_after(step.duration, [&world, &partitioned] {
          world.network().heal();
          partitioned = false;
        });
        break;
      }
      case sim::FaultOp::kHeal:
        world.network().heal();
        partitioned = false;
        break;
      case sim::FaultOp::kJoin:
        if (alive(p) && !world.stack(p).membership().is_member()) {
          for (ProcessId contact = 0; contact < n; ++contact) {
            if (is_member(contact)) {
              world.stack(p).membership().join(contact);
              break;
            }
          }
        }
        break;
      case sim::FaultOp::kFalseSuspicion:
        if (alive(p) && p != step.target) {
          world.stack(p).fd().inject_suspicion(world.stack(p).consensus_fd_class(), step.target);
        }
        break;
      case sim::FaultOp::kFdTimeout:
        if (alive(p)) {
          world.stack(p).fd().set_timeout(world.stack(p).consensus_fd_class(),
                                          static_cast<Duration>(step.arg));
        }
        break;
      case sim::FaultOp::kDupBurst: {
        auto knobs = world.network().fault_knobs();
        knobs.duplicate_probability = static_cast<double>(step.arg) / 100.0;
        world.network().set_fault_knobs(knobs);
        world.engine().schedule_after(step.duration, [&world] {
          auto k = world.network().fault_knobs();
          k.duplicate_probability = 0.0;
          world.network().set_fault_knobs(k);
        });
        break;
      }
      case sim::FaultOp::kReorderBurst: {
        auto knobs = world.network().fault_knobs();
        knobs.reorder_probability = static_cast<double>(step.arg) / 100.0;
        world.network().set_fault_knobs(knobs);
        world.engine().schedule_after(step.duration, [&world] {
          auto k = world.network().fault_knobs();
          k.reorder_probability = 0.0;
          world.network().set_fault_knobs(k);
        });
        break;
      }
      case sim::FaultOp::kCount_:
        break;
    }
  }

  // Settle: scheduled heals and burst restores fire inside this window.
  world.run_for(plan.settle);
  world.network().heal();
  world.network().set_fault_knobs({});
  world.run_for(sec(2));

  // Liveness probe: some alive member must still be able to get an abcast
  // delivered to itself.
  bool wedged = false;
  ProcessId sender = kNoProcess;
  for (ProcessId p = 0; p < n; ++p) {
    if (is_member(p)) {
      sender = p;
      break;
    }
  }
  if (sender == kNoProcess) {
    wedged = true;
  } else {
    const std::uint64_t before = adelivered[static_cast<std::size_t>(sender)];
    world.stack(sender).abcast(bytes_of("liveness probe"));
    wedged = !run_until(world.engine(), sec(30), [&adelivered, sender, before] {
      return adelivered[static_cast<std::size_t>(sender)] > before;
    });
    // Let the probe reach the other members before the agreement checks.
    world.run_for(sec(2));
  }

  oracle.finalize();

  RunResult result;
  result.outcome = !oracle.passed() ? Outcome::kViolation
                   : wedged         ? Outcome::kWedged
                                    : Outcome::kClean;
  if (!oracle.violations().empty()) {
    result.first_violation = std::string(obs::property_name(oracle.violations().front().property));
  }
  // Probes and metrics are omitted on purpose: the report must be a pure
  // function of (plan, keep, options) so replay can compare bytes.
  result.report_json = obs::render_scenario_report(scenario_name(plan, keep), plan.seed,
                                                   oracle, nullptr, nullptr);
  result.violations_json = obs::render_violations_json(oracle);
  if (recorder) result.trace_tail = format_trace_tail(*recorder, options.trace_tail_records);
  result.adeliveries = std::accumulate(adelivered.begin(), adelivered.end(), std::uint64_t{0});
  result.gdeliveries = gdelivered;
  return result;
}

}  // namespace gcs::explore
