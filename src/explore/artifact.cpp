#include "explore/artifact.hpp"

#include <cctype>
#include <cstdio>

#include "obs/report.hpp"

namespace gcs::explore {

namespace {

std::string hex64(std::uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%016llx", static_cast<unsigned long long>(v));
  return buf;
}

// ---- minimal extraction parser ------------------------------------------
//
// Not a general JSON parser: it locates top-level fields by their (unique)
// quoted key names and parses just the value shapes this schema uses.
// Searching for `"key":` cannot false-match inside an embedded escaped
// string, because there every quote is preceded by a backslash.

std::size_t find_key(const std::string& json, const char* key) {
  const std::string needle = "\"" + std::string(key) + "\":";
  const std::size_t pos = json.find(needle);
  return pos == std::string::npos ? std::string::npos : pos + needle.size();
}

bool get_u64(const std::string& json, const char* key, std::uint64_t* out) {
  std::size_t pos = find_key(json, key);
  if (pos == std::string::npos) return false;
  while (pos < json.size() && std::isspace(static_cast<unsigned char>(json[pos]))) ++pos;
  if (pos >= json.size() || !std::isdigit(static_cast<unsigned char>(json[pos]))) return false;
  std::uint64_t v = 0;
  while (pos < json.size() && std::isdigit(static_cast<unsigned char>(json[pos]))) {
    v = v * 10 + static_cast<std::uint64_t>(json[pos] - '0');
    ++pos;
  }
  *out = v;
  return true;
}

bool get_int(const std::string& json, const char* key, int* out) {
  std::uint64_t v = 0;
  if (!get_u64(json, key, &v)) return false;
  *out = static_cast<int>(v);
  return true;
}

bool unescape(const std::string& s, std::size_t pos, std::string* out, std::size_t* end) {
  // pos points at the opening quote.
  if (pos >= s.size() || s[pos] != '"') return false;
  ++pos;
  out->clear();
  while (pos < s.size()) {
    const char c = s[pos];
    if (c == '"') {
      *end = pos + 1;
      return true;
    }
    if (c != '\\') {
      out->push_back(c);
      ++pos;
      continue;
    }
    if (pos + 1 >= s.size()) return false;
    const char esc = s[pos + 1];
    pos += 2;
    switch (esc) {
      case '"': out->push_back('"'); break;
      case '\\': out->push_back('\\'); break;
      case 'n': out->push_back('\n'); break;
      case 't': out->push_back('\t'); break;
      case 'u': {
        if (pos + 4 > s.size()) return false;
        unsigned v = 0;
        for (int i = 0; i < 4; ++i) {
          const char h = s[pos + static_cast<std::size_t>(i)];
          v <<= 4;
          if (h >= '0' && h <= '9') v |= static_cast<unsigned>(h - '0');
          else if (h >= 'a' && h <= 'f') v |= static_cast<unsigned>(h - 'a' + 10);
          else if (h >= 'A' && h <= 'F') v |= static_cast<unsigned>(h - 'A' + 10);
          else return false;
        }
        // The writer only \u-escapes control bytes (< 0x20).
        out->push_back(static_cast<char>(v));
        pos += 4;
        break;
      }
      default: return false;
    }
  }
  return false;  // unterminated
}

bool get_string(const std::string& json, const char* key, std::string* out) {
  std::size_t pos = find_key(json, key);
  if (pos == std::string::npos) return false;
  while (pos < json.size() && std::isspace(static_cast<unsigned char>(json[pos]))) ++pos;
  std::size_t end = 0;
  return unescape(json, pos, out, &end);
}

bool get_u32_array(const std::string& json, const char* key, std::vector<std::uint32_t>* out) {
  std::size_t pos = find_key(json, key);
  if (pos == std::string::npos) return false;
  while (pos < json.size() && std::isspace(static_cast<unsigned char>(json[pos]))) ++pos;
  if (pos >= json.size() || json[pos] != '[') return false;
  ++pos;
  out->clear();
  while (pos < json.size()) {
    while (pos < json.size() &&
           (std::isspace(static_cast<unsigned char>(json[pos])) || json[pos] == ',')) {
      ++pos;
    }
    if (pos < json.size() && json[pos] == ']') return true;
    if (pos >= json.size() || !std::isdigit(static_cast<unsigned char>(json[pos]))) return false;
    std::uint32_t v = 0;
    while (pos < json.size() && std::isdigit(static_cast<unsigned char>(json[pos]))) {
      v = v * 10 + static_cast<std::uint32_t>(json[pos] - '0');
      ++pos;
    }
    out->push_back(v);
  }
  return false;  // unterminated
}

bool parse_hex64(const std::string& s, std::uint64_t* out) {
  if (s.empty() || s.size() > 16) return false;
  std::uint64_t v = 0;
  for (char h : s) {
    v <<= 4;
    if (h >= '0' && h <= '9') v |= static_cast<std::uint64_t>(h - '0');
    else if (h >= 'a' && h <= 'f') v |= static_cast<std::uint64_t>(h - 'a' + 10);
    else return false;
  }
  *out = v;
  return true;
}

}  // namespace

Artifact make_artifact(const sim::FaultPlan& plan, const std::vector<std::uint32_t>& keep,
                       const RunOptions& options, const RunResult& result) {
  Artifact a;
  a.plan_seed = plan.seed;
  a.plan_options = plan.options;
  a.plan_digest = plan.digest();
  a.fast_quorum_override = options.fast_quorum_override;
  a.keep = keep;
  a.outcome = std::string(outcome_name(result.outcome));
  a.first_violation = result.first_violation;
  a.violations_json = result.violations_json;
  a.report_json = result.report_json;
  a.trace_tail = result.trace_tail;
  return a;
}

std::string render_artifact(const Artifact& a) {
  // Scalar fields first, embedded documents last: the extractor can then
  // find every key on its first occurrence.
  std::string out;
  out.reserve(a.report_json.size() + a.trace_tail.size() + 1024);
  out += "{\n";
  out += "\"schema\":\"nggcs.repro.v1\",\n";
  out += "\"plan_seed\":" + std::to_string(a.plan_seed) + ",\n";
  out += "\"plan_n\":" + std::to_string(a.plan_options.n) + ",\n";
  out += "\"plan_steps\":" + std::to_string(a.plan_options.steps) + ",\n";
  out += "\"plan_max_crashes\":" + std::to_string(a.plan_options.max_crashes) + ",\n";
  out += "\"plan_digest\":\"" + hex64(a.plan_digest) + "\",\n";
  out += "\"fast_quorum_override\":" + std::to_string(a.fast_quorum_override) + ",\n";
  out += "\"outcome\":\"" + a.outcome + "\",\n";
  out += "\"first_violation\":\"" + obs::json_escape_string(a.first_violation) + "\",\n";
  out += "\"keep_steps\":[";
  for (std::size_t i = 0; i < a.keep.size(); ++i) {
    if (i) out += ",";
    out += std::to_string(a.keep[i]);
  }
  out += "],\n";
  // Human-oriented sections (ignored by replay).
  const sim::FaultPlan plan = sim::FaultPlan::generate(a.plan_seed, a.plan_options);
  out += "\"steps\":" + plan.steps_json(a.keep) + ",\n";
  out += "\"violations\":" + (a.violations_json.empty() ? "[]" : a.violations_json) + ",\n";
  out += "\"report_json\":\"" + obs::json_escape_string(a.report_json) + "\",\n";
  out += "\"trace_tail\":\"" + obs::json_escape_string(a.trace_tail) + "\"\n";
  out += "}\n";
  return out;
}

std::optional<Artifact> parse_artifact(const std::string& json) {
  std::string schema;
  if (!get_string(json, "schema", &schema) || schema != "nggcs.repro.v1") return std::nullopt;
  Artifact a;
  std::string digest_hex;
  if (!get_u64(json, "plan_seed", &a.plan_seed)) return std::nullopt;
  if (!get_int(json, "plan_n", &a.plan_options.n)) return std::nullopt;
  if (!get_int(json, "plan_steps", &a.plan_options.steps)) return std::nullopt;
  if (!get_int(json, "plan_max_crashes", &a.plan_options.max_crashes)) return std::nullopt;
  if (!get_string(json, "plan_digest", &digest_hex) || !parse_hex64(digest_hex, &a.plan_digest)) {
    return std::nullopt;
  }
  if (!get_int(json, "fast_quorum_override", &a.fast_quorum_override)) return std::nullopt;
  if (!get_string(json, "outcome", &a.outcome)) return std::nullopt;
  if (!get_string(json, "first_violation", &a.first_violation)) return std::nullopt;
  if (!get_u32_array(json, "keep_steps", &a.keep)) return std::nullopt;
  if (!get_string(json, "report_json", &a.report_json)) return std::nullopt;
  get_string(json, "trace_tail", &a.trace_tail);  // optional
  return a;
}

std::optional<sim::FaultPlan> regenerate_plan(const Artifact& a) {
  sim::FaultPlan plan = sim::FaultPlan::generate(a.plan_seed, a.plan_options);
  if (plan.digest() != a.plan_digest) return std::nullopt;
  return plan;
}

}  // namespace gcs::explore
