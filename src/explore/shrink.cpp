#include "explore/shrink.hpp"

#include <algorithm>

namespace gcs::explore {

namespace {

/// keep minus the half-open chunk [lo, hi).
std::vector<std::uint32_t> without_range(const std::vector<std::uint32_t>& keep,
                                         std::size_t lo, std::size_t hi) {
  std::vector<std::uint32_t> out;
  out.reserve(keep.size() - (hi - lo));
  out.insert(out.end(), keep.begin(), keep.begin() + static_cast<std::ptrdiff_t>(lo));
  out.insert(out.end(), keep.begin() + static_cast<std::ptrdiff_t>(hi), keep.end());
  return out;
}

}  // namespace

std::vector<std::uint32_t> shrink(std::vector<std::uint32_t> keep, const FailsFn& fails,
                                  int budget, ShrinkStats* stats) {
  ShrinkStats local;
  local.budget = budget;
  auto try_fails = [&](const std::vector<std::uint32_t>& candidate) {
    ++local.runs;
    return fails(candidate);
  };
  auto spent = [&] { return local.runs >= budget; };

  // Phase 1: ddmin. Drop chunks of size |keep|/granularity while the
  // failure persists; refine granularity when no chunk can go.
  std::size_t granularity = 2;
  while (keep.size() >= 2 && granularity <= keep.size() && !spent()) {
    const std::size_t chunk = (keep.size() + granularity - 1) / granularity;
    bool reduced = false;
    for (std::size_t lo = 0; lo < keep.size() && !spent(); lo += chunk) {
      const std::size_t hi = std::min(lo + chunk, keep.size());
      auto candidate = without_range(keep, lo, hi);
      if (candidate.empty()) continue;
      if (try_fails(candidate)) {
        keep = std::move(candidate);
        granularity = std::max<std::size_t>(granularity - 1, 2);
        reduced = true;
        break;
      }
    }
    if (!reduced) {
      if (chunk == 1) break;  // singleton granularity exhausted
      granularity = std::min(granularity * 2, keep.size());
    }
  }

  // Phase 2: greedy single-step elimination until a fixpoint — cheap
  // insurance against chunk-boundary artifacts of phase 1.
  bool changed = true;
  while (changed && keep.size() > 1 && !spent()) {
    changed = false;
    std::size_t i = 0;
    while (i < keep.size() && !spent()) {
      auto candidate = without_range(keep, i, i + 1);
      if (try_fails(candidate)) {
        keep = std::move(candidate);  // element now at i is the next untried one
        changed = true;
      } else {
        ++i;
      }
    }
    if (!changed && i == keep.size()) local.minimal = true;
  }

  if (stats) *stats = local;
  return keep;
}

}  // namespace gcs::explore
