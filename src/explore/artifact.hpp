/// \file artifact.hpp
/// Self-contained repro artifacts (schema "nggcs.repro.v1").
///
/// When the sweep finds a failing schedule it writes ONE JSON file that
/// holds everything a fresh process needs to reproduce and understand the
/// failure:
///   - the plan coordinates (seed + generation options) — the plan itself
///     is regenerated from them, which is sound because FaultPlan::generate
///     is a pure function; a digest of the regenerated plan is checked
///     against the recorded one so silent generator drift is caught loudly;
///   - the kept step indices (after shrinking) and their human renderings;
///   - the run options that were in effect (planted fast-quorum override);
///   - the oracle's violation records (machine-readable) and the observed
///     outcome / first violated property;
///   - the full deterministic scenario report and the flight-recorder
///     trace tail of the failing run, for byte-exact replay comparison and
///     post-mortem reading.
///
/// Replay (`nggcs_explore --replay file`) parses the artifact with the
/// dependency-free extractor below, regenerates the plan, re-runs the kept
/// steps and byte-compares the fresh report against the embedded one.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "explore/runner.hpp"
#include "sim/fault_plan.hpp"

namespace gcs::explore {

struct Artifact {
  // Plan coordinates (enough to regenerate the exact plan).
  std::uint64_t plan_seed = 0;
  sim::FaultPlanOptions plan_options;
  std::uint64_t plan_digest = 0;
  // Run configuration.
  int fast_quorum_override = 0;
  // The (possibly shrunk) schedule.
  std::vector<std::uint32_t> keep;
  // Observed failure.
  std::string outcome;
  std::string first_violation;
  std::string violations_json;  ///< JSON array (embedded verbatim)
  std::string report_json;      ///< full scenario report (embedded as a string)
  std::string trace_tail;       ///< flight-recorder tail (embedded as a string)
};

/// Build the artifact for a failing (plan, keep, options, result) tuple.
Artifact make_artifact(const sim::FaultPlan& plan, const std::vector<std::uint32_t>& keep,
                       const RunOptions& options, const RunResult& result);

/// Render \p a as the v1 JSON document.
std::string render_artifact(const Artifact& a);

/// Parse a v1 artifact. Returns nullopt on malformed input (missing field,
/// wrong schema, truncated string). Only the fields replay needs are
/// extracted; unknown fields are ignored.
std::optional<Artifact> parse_artifact(const std::string& json);

/// Regenerate the plan an artifact describes and verify its digest.
/// Returns nullopt when the regenerated plan's digest disagrees with the
/// recorded one (generator drift: the artifact predates a generator change).
std::optional<sim::FaultPlan> regenerate_plan(const Artifact& a);

}  // namespace gcs::explore
