/// \file shrink.hpp
/// Delta-debugging (ddmin) over fault-plan step indices.
///
/// A failing schedule found by the sweep typically has ~60 steps, of which
/// a handful matter. The shrinker minimizes the KEPT index set — never the
/// plan itself — which is sound because (a) every step carries its full
/// parameters (removal never reshuffles another step's randomness, see
/// fault_plan.hpp) and (b) the runner guards every step at execution time,
/// so any subset is a well-formed schedule.
///
/// Algorithm: classic ddmin (Zeller & Hildebrandt) — try dropping chunks at
/// increasing granularity while the failure reproduces — followed by a
/// greedy single-step elimination pass that catches what chunk alignment
/// missed. Every candidate is re-run deterministically; the result is
/// 1-minimal modulo the run budget.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

namespace gcs::explore {

/// Returns true iff the schedule that keeps exactly \p keep still exhibits
/// the original failure (same outcome category and violated property).
using FailsFn = std::function<bool(const std::vector<std::uint32_t>& keep)>;

struct ShrinkStats {
  int runs = 0;        ///< predicate evaluations spent
  int budget = 0;      ///< run budget given
  bool minimal = false;///< greedy pass completed without hitting the budget
};

/// Minimize \p keep under \p fails, spending at most \p budget predicate
/// runs. \p keep must itself fail (callers verify before shrinking).
std::vector<std::uint32_t> shrink(std::vector<std::uint32_t> keep, const FailsFn& fails,
                                  int budget, ShrinkStats* stats = nullptr);

}  // namespace gcs::explore
