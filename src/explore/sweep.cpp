#include "explore/sweep.hpp"

#include <algorithm>
#include <atomic>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <thread>

#include "explore/artifact.hpp"
#include "explore/shrink.hpp"

namespace gcs::explore {

namespace {

std::string write_artifact_file(const std::string& dir, std::uint64_t seed,
                                const std::string& json) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  const std::string path = dir + "/repro_s" + std::to_string(seed) + ".json";
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  if (!os) return {};
  os << json;
  os.flush();
  return os ? path : std::string{};
}

}  // namespace

SweepResult sweep(const SweepOptions& options) {
  SweepResult result;
  if (options.end <= options.begin) return result;

  int jobs = options.jobs > 0 ? options.jobs
                              : static_cast<int>(std::thread::hardware_concurrency());
  if (jobs <= 0) jobs = 1;
  const auto total = options.end - options.begin;
  jobs = static_cast<int>(std::min<std::uint64_t>(static_cast<std::uint64_t>(jobs), total));

  std::atomic<std::uint64_t> next{options.begin};
  std::atomic<std::uint64_t> failures_found{0};
  std::atomic<std::uint64_t> seeds_run{0};
  std::mutex mu;  // guards result.failures and the on_seed hook

  auto worker = [&] {
    while (true) {
      if (failures_found.load() >= options.max_failures) break;
      const std::uint64_t seed = next.fetch_add(1);
      if (seed >= options.end) break;

      const sim::FaultPlan plan = sim::FaultPlan::generate(seed, options.plan);
      const std::vector<std::uint32_t> keep = all_steps(plan);
      const RunResult run = run_plan(plan, keep, options.run);
      seeds_run.fetch_add(1);
      if (options.on_seed) {
        std::lock_guard<std::mutex> lock(mu);
        options.on_seed(seed, run.outcome);
      }
      if (run.outcome == Outcome::kClean) continue;

      failures_found.fetch_add(1);
      SweepFailure failure;
      failure.seed = seed;
      failure.outcome = run.outcome;
      failure.first_violation = run.first_violation;
      failure.original_steps = keep.size();
      failure.shrunk_keep = keep;

      RunResult final_run = run;
      if (options.shrink) {
        // Same bug = same outcome category and same first violated
        // property; liveness failures match on category alone.
        const auto fails = [&](const std::vector<std::uint32_t>& candidate) {
          const RunResult r = run_plan(plan, candidate, options.run);
          return r.outcome == run.outcome && r.first_violation == run.first_violation;
        };
        ShrinkStats stats;
        failure.shrunk_keep = shrink(keep, fails, options.shrink_budget, &stats);
        failure.shrink_runs = stats.runs;
        // Re-run the minimized schedule once more: its deterministic result
        // is what the artifact embeds and what replay must match.
        final_run = run_plan(plan, failure.shrunk_keep, options.run);
      }

      if (!options.artifact_dir.empty()) {
        const Artifact artifact =
            make_artifact(plan, failure.shrunk_keep, options.run, final_run);
        failure.artifact_path =
            write_artifact_file(options.artifact_dir, seed, render_artifact(artifact));
      }
      {
        std::lock_guard<std::mutex> lock(mu);
        result.failures.push_back(std::move(failure));
      }
    }
  };

  if (jobs == 1) {
    worker();
  } else {
    std::vector<std::thread> threads;
    threads.reserve(static_cast<std::size_t>(jobs));
    for (int i = 0; i < jobs; ++i) threads.emplace_back(worker);
    for (auto& t : threads) t.join();
  }

  result.seeds_run = seeds_run.load();
  std::sort(result.failures.begin(), result.failures.end(),
            [](const SweepFailure& a, const SweepFailure& b) { return a.seed < b.seed; });
  return result;
}

}  // namespace gcs::explore
