/// \file runner.hpp
/// Deterministic execution of one fault plan (or a shrunk subset of it)
/// against a fresh World, certified by the global oracle.
///
/// run_plan() is the single primitive everything in the explorer composes:
/// the seed sweep calls it once per seed with every step kept, the shrinker
/// calls it repeatedly with subsets, and replay calls it with the artifact's
/// kept set — all three get byte-identical scenario reports for identical
/// (plan, keep, options) inputs, which is the property replay verification
/// rests on.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/fault_plan.hpp"

namespace gcs::explore {

/// How one schedule ended.
enum class Outcome : std::uint8_t {
  kClean = 0,   ///< oracle passed and the group stayed live
  kViolation,   ///< the oracle recorded at least one safety violation
  kWedged,      ///< safety held but the final liveness probe never delivered
};

std::string_view outcome_name(Outcome o);

/// Per-run options layered on top of the plan's world parameters.
struct RunOptions {
  /// != 0 plants the broken-fast-quorum bug (GenericBroadcast::Config::
  /// unsafe_fast_quorum_override) — the explorer's standard planted defect.
  int fast_quorum_override = 0;
  /// Flight-recorder ring capacity (records); 0 disables tracing.
  std::size_t trace_capacity = 4096;
  /// Records of trace tail exported into RunResult / artifacts.
  std::size_t trace_tail_records = 200;
};

struct RunResult {
  Outcome outcome = Outcome::kClean;
  /// Stable name of the first violated property ("" when clean/wedged) —
  /// the shrinker's "same bug?" fingerprint.
  std::string first_violation;
  /// Deterministic scenario report (obs::render_scenario_report).
  std::string report_json;
  /// Machine-readable violation records (obs::render_violations_json).
  std::string violations_json;
  /// Flight-recorder tail, one formatted record per line.
  std::string trace_tail;
  std::uint64_t adeliveries = 0;
  std::uint64_t gdeliveries = 0;
};

/// All step indices of \p plan, in order (the unshrunk kept set).
std::vector<std::uint32_t> all_steps(const sim::FaultPlan& plan);

/// Deterministic scenario name for (plan, keep): report files and replay
/// comparisons key on it, so it depends only on the plan seed and the kept
/// subset.
std::string scenario_name(const sim::FaultPlan& plan, const std::vector<std::uint32_t>& keep);

/// Execute the kept steps of \p plan in a fresh World and certify the run.
/// Pure: same (plan, keep, options) -> same RunResult, bytes included.
RunResult run_plan(const sim::FaultPlan& plan, const std::vector<std::uint32_t>& keep,
                   const RunOptions& options = {});

}  // namespace gcs::explore
