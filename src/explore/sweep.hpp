/// \file sweep.hpp
/// Parallel seed sweep: the explorer's outer loop.
///
/// Workers pull seeds from a shared atomic counter; each worker runs one
/// whole schedule at a time in its own World (simulations never share
/// mutable state — the only process-global structures, the metric and
/// trace-name interning registries, are mutex-protected). A failing seed is
/// shrunk by the SAME worker with sequential deterministic re-runs, then
/// written out as a repro artifact. Results are aggregated seed-sorted, so
/// the sweep's summary is independent of thread scheduling.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "explore/runner.hpp"
#include "sim/fault_plan.hpp"

namespace gcs::explore {

struct SweepOptions {
  std::uint64_t begin = 0;  ///< first seed (inclusive)
  std::uint64_t end = 0;    ///< last seed (exclusive)
  int jobs = 0;             ///< worker threads; 0 = hardware concurrency
  sim::FaultPlanOptions plan;
  RunOptions run;
  bool shrink = true;
  int shrink_budget = 200;       ///< predicate runs per failing seed
  std::uint64_t max_failures = 4;///< stop pulling new seeds after this many
  std::string artifact_dir;      ///< where repro_s<seed>.json goes; "" = don't write
  /// Progress hook, called from worker threads under the result lock.
  std::function<void(std::uint64_t seed, Outcome outcome)> on_seed;
};

struct SweepFailure {
  std::uint64_t seed = 0;
  Outcome outcome = Outcome::kClean;
  std::string first_violation;
  std::vector<std::uint32_t> shrunk_keep;  ///< kept steps after shrinking
  std::size_t original_steps = 0;
  int shrink_runs = 0;
  std::string artifact_path;  ///< "" when artifact_dir was unset or write failed
};

struct SweepResult {
  std::uint64_t seeds_run = 0;
  std::vector<SweepFailure> failures;  ///< sorted by seed
};

SweepResult sweep(const SweepOptions& options);

}  // namespace gcs::explore
