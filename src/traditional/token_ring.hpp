/// \file token_ring.hpp
/// Rotating-token atomic broadcast (RMP/Totem style, paper §2.1.3/§2.1.4).
///
/// Members form a logical ring in view order. A token carrying the next
/// global sequence number circulates; only the holder assigns sequence
/// numbers (emitting ORDERED messages through view synchrony), then passes
/// the token on. If a member crashes the token may be lost; recovery is the
/// membership's job: the flush computes the highest assigned sequence
/// number and the head of the new view regenerates the token — again the
/// dependency of ordering on membership that the new architecture removes.
#pragma once

#include <map>
#include <set>

#include "traditional/gmvs_stack.hpp"

namespace gcs::traditional {

class TokenOrderer final : public Orderer {
 public:
  TokenOrderer(GmVsStack& stack, Duration token_hold)
      : stack_(stack), token_hold_(token_hold) {}

  void submit(const MsgId& id, Bytes payload) override;
  void on_view(const View& view) override;
  void handle(ProcessId from, BytesView payload) override;
  void on_ordered_delivered(const MsgId& id) override;
  Tag tag() const override { return Tag::kToken; }

  bool has_token() const { return has_token_; }

 private:
  void acquire_token(std::uint64_t next_seq);
  void release_token();

  GmVsStack& stack_;
  Duration token_hold_;
  bool has_token_ = false;
  std::uint64_t token_seq_ = 0;
  std::map<MsgId, Bytes> pending_;   // our messages not yet delivered
  std::set<MsgId> emitted_;          // emitted in the current view
};

}  // namespace gcs::traditional
