#include "traditional/gmvs_stack.hpp"

#include <algorithm>
#include <cassert>

#include "traditional/sequencer.hpp"
#include "traditional/token_ring.hpp"
#include "util/codec.hpp"

namespace gcs::traditional {

namespace {
// Tag::kVs messages.
constexpr std::uint8_t kOrdered = 0;
// Tag::kMembership messages.
constexpr std::uint8_t kFlushReq = 0;
constexpr std::uint8_t kFlush = 1;
constexpr std::uint8_t kJoinReq = 2;
constexpr std::uint8_t kState = 3;

void encode_log(Encoder& enc, const std::map<std::uint64_t, std::pair<MsgId, Bytes>>& log) {
  enc.put_u64(log.size());
  for (const auto& [seq, entry] : log) {
    enc.put_u64(seq);
    enc.put_msgid(entry.first);
    enc.put_bytes(entry.second);
  }
}

std::map<std::uint64_t, std::pair<MsgId, Bytes>> decode_log(Decoder& dec) {
  std::map<std::uint64_t, std::pair<MsgId, Bytes>> log;
  const std::uint64_t count = dec.get_u64();
  for (std::uint64_t i = 0; i < count && dec.ok(); ++i) {
    const std::uint64_t seq = dec.get_u64();
    const MsgId id = dec.get_msgid();
    Bytes payload = dec.get_bytes();
    log.emplace(seq, std::make_pair(id, std::move(payload)));
  }
  return log;
}
}  // namespace

GmVsStack::GmVsStack(sim::Engine& engine, sim::Network& network, ProcessId self,
                     std::uint64_t seed, Config config)
    : network_(&network), config_(config) {
  Rng rng(seed ^ (0xc2b2ae3d27d4eb4fULL * static_cast<std::uint64_t>(self + 1)));
  Logger log("t" + std::to_string(self), [&engine] { return engine.now(); });
  ctx_ = std::make_unique<sim::Context>(self, engine, rng, log, std::make_shared<Metrics>());
  transport_ = std::make_unique<SimTransport>(*ctx_, network);
  channel_ = std::make_unique<ReliableChannel>(*ctx_, *transport_, config.channel);
  fd_ = std::make_unique<FailureDetector>(*ctx_, *transport_, config.fd);
  // THE defining trait of the traditional stack: one FD class whose
  // suspicions are exclusions.
  fd_class_ = fd_->add_class(config.suspect_timeout);
  fd_->on_suspect(fd_class_, [this](ProcessId q) { on_suspect(q); });
  consensus_ = std::make_unique<Consensus>(*ctx_, *channel_, *fd_, fd_class_);
  consensus_->on_decide(
      [this](std::uint64_t k, const Bytes& v) { on_flush_decision(k, v); });
  channel_->subscribe(Tag::kVs,
                      [this](ProcessId from, BytesView b) { on_vs_message(from, b); });
  channel_->subscribe(Tag::kMembership, [this](ProcessId from, BytesView b) {
    on_membership_message(from, b);
  });
  if (config.ordering == Ordering::kSequencer) {
    orderer_ = std::make_unique<SequencerOrderer>(*this);
  } else {
    orderer_ = std::make_unique<TokenOrderer>(*this, config.token_hold);
  }
  channel_->subscribe(orderer_->tag(), [this](ProcessId from, BytesView b) {
    if (!excluded_) orderer_->handle(from, b);
  });
}

GmVsStack::~GmVsStack() = default;

void GmVsStack::init_view(std::vector<ProcessId> members) {
  assert(!members.empty());
  view_.id = 0;
  view_.members = std::move(members);
  orderer_->on_view(view_);
  for (const auto& fn : view_fns_) fn(view_);
}

void GmVsStack::start() {
  if (started_) return;
  started_ = true;
  fd_->start();
  fd_->monitor_group(fd_class_, view_.members);
}

void GmVsStack::crash() {
  ctx_->kill();
  network_->crash(self());
}

void GmVsStack::request_join(ProcessId contact) {
  Encoder enc;
  enc.put_byte(kJoinReq);
  channel_->send(contact, Tag::kMembership, enc.take());
}

MsgId GmVsStack::abcast(Bytes payload) {
  const MsgId id{self(), next_local_seq_++};
  if (excluded_) {
    // A killed (excluded) process cannot broadcast; the message is dropped,
    // mirroring a real process kill. Callers see the id but no delivery.
    ctx_->metrics().inc("gmvs.sends_dropped_excluded");
    return id;
  }
  if (blocked_) {
    // Sending view delivery: the Sync layer queues sends during the flush.
    queued_sends_.emplace_back(id, std::move(payload));
    ctx_->metrics().inc("gmvs.sends_blocked");
    return id;
  }
  orderer_->submit(id, std::move(payload));
  return id;
}

Duration GmVsStack::total_blocked_time() const {
  Duration total = blocked_total_;
  if (blocked_) total += ctx_->now() - block_started_;
  return total;
}

// ---------------------------------------------------------------------------
// View synchrony: ORDERED delivery.
// ---------------------------------------------------------------------------

void GmVsStack::vs_emit_ordered(std::uint64_t seq, const MsgId& id, const Bytes& payload) {
  if (blocked_ || excluded_) return;  // Sync layer: no emissions mid-flush
  Encoder enc;
  enc.put_byte(kOrdered);
  enc.put_u64(view_.id);
  enc.put_u64(seq);
  enc.put_msgid(id);
  enc.put_bytes(payload);
  channel_->send_group(view_.members, Tag::kVs, enc.bytes());
  ctx_->metrics().inc("gmvs.ordered_emitted");
}

void GmVsStack::on_vs_message(ProcessId /*from*/, BytesView payload) {
  if (excluded_) return;
  Decoder dec(payload);
  const std::uint8_t kind = dec.get_byte();
  if (kind != kOrdered) return;
  const std::uint64_t view_id = dec.get_u64();
  const std::uint64_t seq = dec.get_u64();
  const MsgId id = dec.get_msgid();
  Bytes body = dec.get_bytes();
  if (!dec.ok()) return;
  if (view_id != view_.id) return;  // stale (old view) or premature: dropped
  if (delivered_ids_.count(id)) return;
  holdback_.emplace(seq, std::make_pair(id, std::move(body)));
  deliver_in_order();
}

void GmVsStack::deliver_in_order() {
  // During a flush, deliveries pause: everything we received is in the
  // holdback and rides into our FLUSH log, so the union decides its fate.
  if (in_flush_) return;
  while (!holdback_.empty() && holdback_.begin()->first == next_expected_seq_) {
    auto node = holdback_.extract(holdback_.begin());
    deliver_one(node.key(), node.mapped().first, node.mapped().second);
  }
}

void GmVsStack::deliver_one(std::uint64_t seq, const MsgId& id, const Bytes& payload) {
  next_expected_seq_ = seq + 1;
  max_seq_seen_ = std::max(max_seq_seen_, seq);
  if (!delivered_ids_.insert(id).second) return;
  view_log_.emplace(seq, std::make_pair(id, payload));
  ++delivered_count_;
  ctx_->metrics().inc("gmvs.delivered");
  orderer_->on_ordered_delivered(id);
  for (const auto& fn : deliver_fns_) fn(id, payload);
}

// ---------------------------------------------------------------------------
// Membership + flush (the view-change protocol).
// ---------------------------------------------------------------------------

void GmVsStack::on_suspect(ProcessId q) {
  if (!started_ || excluded_ || q == self() || !view_.contains(q)) return;
  ctx_->metrics().inc("gmvs.suspicions");
  // COUPLED failure handling: suspicion means exclusion. Propose the current
  // view minus everyone currently suspected.
  std::vector<ProcessId> proposal;
  for (ProcessId p : view_.members) {
    if (!fd_->suspects(fd_class_, p)) proposal.push_back(p);
  }
  if (proposal.empty() || proposal == view_.members) return;
  trigger_view_change(std::move(proposal));
}

void GmVsStack::trigger_view_change(std::vector<ProcessId> proposal) {
  if (excluded_ || !view_.contains(self())) return;
  if (in_flush_) {
    // Narrow the proposal if yet another member went silent mid-flush.
    bool narrower = proposal.size() < flush_proposal_.size();
    if (!narrower) return;
    flush_proposal_ = std::move(proposal);
  } else {
    in_flush_ = true;
    flush_proposed_ = false;
    flush_logs_.clear();
    flush_proposal_ = std::move(proposal);
    set_blocked(true);
    ctx_->metrics().inc("gmvs.flushes_started");
  }
  Encoder enc;
  enc.put_byte(kFlushReq);
  enc.put_u64(view_.id);
  enc.put_vector(flush_proposal_, [](Encoder& e, ProcessId p) { e.put_i32(p); });
  channel_->send_group(view_.members, Tag::kMembership, enc.bytes());
  // Contribute our own flush log (the loopback FLUSH_REQ will find us
  // already in_flush_ and skip it).
  send_flush();
  maybe_propose_flush();
}

void GmVsStack::on_membership_message(ProcessId from, BytesView payload) {
  Decoder dec(payload);
  const std::uint8_t kind = dec.get_byte();
  switch (kind) {
    case kFlushReq: {
      const std::uint64_t view_id = dec.get_u64();
      auto proposal = dec.get_vector<ProcessId>([](Decoder& d) { return d.get_i32(); });
      if (!dec.ok() || excluded_ || view_id != view_.id || !view_.contains(self())) return;
      const bool was_in_flush = in_flush_;
      if (!in_flush_) {
        in_flush_ = true;
        flush_proposed_ = false;
        flush_logs_.clear();
        set_blocked(true);
      }
      flush_proposal_ = std::move(proposal);
      if (!was_in_flush) send_flush();
      maybe_propose_flush();
      break;
    }
    case kFlush: {
      const std::uint64_t view_id = dec.get_u64();
      auto log = decode_log(dec);
      if (!dec.ok() || excluded_ || view_id != view_.id) return;
      flush_logs_[from] = std::move(log);
      maybe_propose_flush();
      break;
    }
    case kJoinReq: {
      if (excluded_ || !view_.contains(self()) || view_.contains(from)) return;
      if (in_flush_) {
        // A flush is running; the joiner will retry (or a member re-triggers
        // once the view settles). Keep it simple: remember nothing.
        return;
      }
      std::vector<ProcessId> proposal = view_.members;
      proposal.push_back(from);
      ctx_->metrics().inc("gmvs.joins_sponsored");
      trigger_view_change(std::move(proposal));
      break;
    }
    case kState: {
      const std::uint64_t view_id = dec.get_u64();
      auto members = dec.get_vector<ProcessId>([](Decoder& d) { return d.get_i32(); });
      const std::uint64_t next_seq = dec.get_u64();
      if (!dec.ok()) return;
      // Only meaningful while we are outside the view waiting to get in.
      if (!excluded_ && view_.contains(self())) return;
      if (std::find(members.begin(), members.end(), self()) == members.end()) return;
      if (view_id <= view_.id && view_.id != 0) return;  // stale state
      // Model the state-transfer cost before becoming active.
      const View v{view_id, std::move(members)};
      ctx_->after(config_.rejoin_state_transfer_delay, [this, v, next_seq] {
        if (!excluded_ && view_.contains(self()) && view_.id >= v.id) return;
        excluded_ = false;
        view_ = v;
        next_expected_seq_ = next_seq;
        max_seq_seen_ = next_seq == 0 ? 0 : next_seq - 1;
        holdback_.clear();
        view_log_.clear();
        in_flush_ = false;
        set_blocked(false);
        fd_->monitor_group(fd_class_, view_.members);
        ctx_->metrics().inc("gmvs.rejoins_completed");
        orderer_->on_view(view_);
        for (const auto& fn : view_fns_) fn(view_);
      });
      break;
    }
    default:
      break;
  }
}

void GmVsStack::send_flush() {
  // Our log: everything delivered this view plus the held-back tail.
  std::map<std::uint64_t, std::pair<MsgId, Bytes>> log = view_log_;
  for (const auto& [seq, entry] : holdback_) log.emplace(seq, entry);
  Encoder enc;
  enc.put_byte(kFlush);
  enc.put_u64(view_.id);
  encode_log(enc, log);
  channel_->send_group(view_.members, Tag::kMembership, enc.bytes());
}

void GmVsStack::maybe_propose_flush() {
  if (!in_flush_ || flush_proposed_ || excluded_) return;
  // Wait for the flush of every surviving member (proposal ∩ old view).
  for (ProcessId p : flush_proposal_) {
    if (!view_.contains(p)) continue;  // joiner: has no old-view log
    if (!flush_logs_.count(p)) return;
  }
  flush_proposed_ = true;
  // Union of the surviving logs.
  std::map<std::uint64_t, std::pair<MsgId, Bytes>> final_log;
  for (const auto& [p, log] : flush_logs_) {
    if (std::find(flush_proposal_.begin(), flush_proposal_.end(), p) == flush_proposal_.end()) {
      continue;
    }
    for (const auto& [seq, entry] : log) final_log.emplace(seq, entry);
  }
  Encoder enc;
  enc.put_vector(flush_proposal_, [](Encoder& e, ProcessId p) { e.put_i32(p); });
  encode_log(enc, final_log);
  ctx_->metrics().inc("gmvs.flush_proposals");
  consensus_->propose(view_.id, enc.take(), view_.members);
}

void GmVsStack::on_flush_decision(std::uint64_t instance, const Bytes& value) {
  if (instance != view_.id || excluded_) return;
  Decoder dec(value);
  auto members = dec.get_vector<ProcessId>([](Decoder& d) { return d.get_i32(); });
  auto final_log = decode_log(dec);
  if (!dec.ok() || members.empty()) return;
  install_view(std::move(members), final_log);
}

void GmVsStack::install_view(std::vector<ProcessId> members,
                             const std::map<std::uint64_t, std::pair<MsgId, Bytes>>& final_log) {
  // Sending view delivery: every message of the old view (the decided
  // union) is delivered BEFORE the new view is installed. Gaps in the union
  // (sequence numbers nobody received) are skipped deterministically.
  for (const auto& [seq, entry] : final_log) {
    if (seq < next_expected_seq_) continue;
    deliver_one(seq, entry.first, entry.second);
  }
  if (!final_log.empty()) {
    max_seq_seen_ = std::max(max_seq_seen_, final_log.rbegin()->first);
    next_expected_seq_ = max_seq_seen_ + 1;
  }
  const std::uint64_t old_view_id = view_.id;
  std::vector<ProcessId> joiners;
  for (ProcessId p : members) {
    if (!view_.contains(p)) joiners.push_back(p);
  }
  view_.id = old_view_id + 1;
  view_.members = members;
  ++view_changes_;
  ctx_->metrics().inc("gmvs.views_installed");
  holdback_.clear();
  view_log_.clear();
  in_flush_ = false;
  flush_proposed_ = false;
  flush_logs_.clear();

  if (!view_.contains(self())) {
    // We were excluded: the traditional stack emulates a perfect failure
    // detector by killing wrongly suspected processes. Rejoining costs a
    // state transfer (§4.3).
    excluded_ = true;
    ++exclusions_suffered_;
    ctx_->metrics().inc("gmvs.exclusions");
    set_blocked(false);
    queued_sends_.clear();
    if (config_.auto_rejoin) schedule_rejoin();
    for (const auto& fn : view_fns_) fn(view_);
    return;
  }

  fd_->monitor_group(fd_class_, view_.members);
  set_blocked(false);  // before on_view: the orderer re-drives messages
  orderer_->on_view(view_);
  // Send the blocked backlog in the new view.
  while (!queued_sends_.empty()) {
    auto [id, payload] = std::move(queued_sends_.front());
    queued_sends_.pop_front();
    orderer_->submit(id, std::move(payload));
  }
  // State transfer to joiners.
  for (ProcessId joiner : joiners) {
    Encoder enc;
    enc.put_byte(kState);
    enc.put_u64(view_.id);
    enc.put_vector(view_.members, [](Encoder& e, ProcessId p) { e.put_i32(p); });
    enc.put_u64(next_expected_seq_);
    channel_->send(joiner, Tag::kMembership, enc.take());
    ctx_->metrics().inc("gmvs.state_transfers_sent");
  }
  for (const auto& fn : view_fns_) fn(view_);
}

void GmVsStack::set_blocked(bool blocked) {
  if (blocked == blocked_) return;
  blocked_ = blocked;
  if (blocked) {
    block_started_ = ctx_->now();
  } else {
    blocked_total_ += ctx_->now() - block_started_;
  }
}

void GmVsStack::schedule_rejoin() {
  // Ask the head of the new view to sponsor us back in.
  if (view_.members.empty()) return;
  const ProcessId contact = view_.members.front();
  ctx_->after(msec(1), [this, contact] {
    if (excluded_) request_join(contact);
  });
}

}  // namespace gcs::traditional
