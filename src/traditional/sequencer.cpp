#include "traditional/sequencer.hpp"

#include "util/codec.hpp"

namespace gcs::traditional {

bool SequencerOrderer::is_sequencer() const {
  return stack_.view().primary() == stack_.self();
}

void SequencerOrderer::submit(const MsgId& id, Bytes payload) {
  auto [it, inserted] = pending_.emplace(id, std::move(payload));
  if (!inserted) return;
  emit_or_forward(id, it->second);
}

void SequencerOrderer::emit_or_forward(const MsgId& id, const Bytes& payload) {
  if (is_sequencer()) {
    if (!assigned_.insert(id).second) return;
    stack_.ctx().metrics().inc("seq.assigned");
    stack_.vs_emit_ordered(seq_counter_++, id, payload);
  } else {
    Encoder enc;
    enc.put_msgid(id);
    enc.put_bytes(payload);
    stack_.channel().send(stack_.view().primary(), Tag::kSeqOrder, enc.take());
    stack_.ctx().metrics().inc("seq.forwarded");
  }
}

void SequencerOrderer::handle(ProcessId /*from*/, BytesView payload) {
  if (!is_sequencer() || stack_.is_blocked()) return;  // stale forward: origin re-drives
  Decoder dec(payload);
  const MsgId id = dec.get_msgid();
  Bytes body = dec.get_bytes();
  if (!dec.ok()) return;
  if (!assigned_.insert(id).second) return;
  stack_.ctx().metrics().inc("seq.assigned");
  stack_.vs_emit_ordered(seq_counter_++, id, body);
}

void SequencerOrderer::on_view(const View& /*view*/) {
  // Continuous numbering across views: resume at the agreed free slot.
  seq_counter_ = stack_.next_free_seq();
  // Re-drive everything of ours that the old view failed to deliver.
  for (const auto& [id, payload] : pending_) emit_or_forward(id, payload);
}

void SequencerOrderer::on_ordered_delivered(const MsgId& id) { pending_.erase(id); }

}  // namespace gcs::traditional
