/// \file gmvs_stack.hpp
/// The TRADITIONAL group communication architecture (paper §2), used as the
/// baseline in every comparison experiment:
///
///       Application
///       Atomic Broadcast      (fixed sequencer — Isis/Phoenix, Figs 1/2 —
///                              or rotating token — RMP/Totem, Figs 3/4)
///       View Synchrony        (flush protocol, SENDING view delivery:
///        + Group Membership    senders BLOCK during view changes)
///       [Consensus]           (Phoenix-style: view agreement by consensus)
///       Network
///
/// Key contrasts with the new architecture (and what the benches measure):
///   - failure detection is COUPLED to membership: any suspicion triggers a
///     view change that EXCLUDES the suspect (perfect-FD emulation), so
///     suspicion timeouts must be conservative (§4.3);
///   - a wrongly excluded process must REJOIN with a state transfer — the
///     cost of a false suspicion (§4.3);
///   - during a view change the VS layer blocks all senders until the flush
///     completes — sending view delivery (§4.4);
///   - the ordering problem is solved in several places: the sequencer (or
///     token) orders messages, the flush+consensus orders views, and the
///     flush also orders messages against view changes (§4.1).
#pragma once

#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>

#include "channel/reliable_channel.hpp"
#include "consensus/consensus.hpp"
#include "core/membership.hpp"  // reuses the View struct
#include "fd/failure_detector.hpp"
#include "sim/context.hpp"
#include "sim/network.hpp"
#include "transport/sim_transport.hpp"

namespace gcs::traditional {

class GmVsStack;

/// Ordering strategy above view synchrony: fixed sequencer or token ring.
class Orderer {
 public:
  virtual ~Orderer() = default;
  /// Application wants this message atomically broadcast.
  virtual void submit(const MsgId& id, Bytes payload) = 0;
  /// A new view was installed; \p starting_seq is the agreed first free
  /// global sequence number in the new view.
  virtual void on_view(const View& view) = 0;
  /// Orderer-specific peer messages (forward-to-sequencer, token passing).
  virtual void handle(ProcessId from, BytesView payload) = 0;
  /// An ORDERED message was delivered; the orderer clears its pending state.
  virtual void on_ordered_delivered(const MsgId& id) = 0;
  /// Wire tag this orderer listens on.
  virtual Tag tag() const = 0;
};

class GmVsStack {
 public:
  enum class Ordering { kSequencer, kToken };

  struct Config {
    /// The coupled FD timeout: a suspicion EXCLUDES the suspect. Must be
    /// conservative; small values produce costly false exclusions (§4.3).
    Duration suspect_timeout = msec(500);
    /// Cost of rejoining after a (possibly false) exclusion: models the
    /// state transfer of a real system.
    Duration rejoin_state_transfer_delay = msec(100);
    /// Rejoin automatically after being excluded (the paper's "kill +
    /// restart" emulation of a perfect failure detector).
    bool auto_rejoin = true;
    Ordering ordering = Ordering::kSequencer;
    /// Token hold time before passing it on (token ordering only).
    Duration token_hold = usec(500);
    FailureDetector::Config fd = {};
    ReliableChannel::Config channel = {};
  };

  using DeliverFn = std::function<void(const MsgId& id, const Bytes& payload)>;
  using ViewFn = std::function<void(const View&)>;

  GmVsStack(sim::Engine& engine, sim::Network& network, ProcessId self, std::uint64_t seed,
            Config config);
  ~GmVsStack();

  /// -- lifecycle ---------------------------------------------------------
  void init_view(std::vector<ProcessId> members);
  void start();
  void crash();
  /// Outsider (or excluded process): ask \p contact to let us in.
  void request_join(ProcessId contact);

  /// -- operations ---------------------------------------------------------
  /// Atomic broadcast. While the VS layer is blocked (view change in
  /// progress) the message is queued — this blocking is the measurable cost
  /// of sending view delivery.
  MsgId abcast(Bytes payload);

  void on_adeliver(DeliverFn fn) { deliver_fns_.push_back(std::move(fn)); }
  void on_view(ViewFn fn) { view_fns_.push_back(std::move(fn)); }

  const View& view() const { return view_; }
  bool is_member() const { return !excluded_ && view_.contains(self()); }
  bool is_blocked() const { return blocked_; }
  ProcessId self() const { return ctx_->self(); }

  /// -- metrics -------------------------------------------------------------
  /// Cumulative virtual time this process spent with senders blocked.
  Duration total_blocked_time() const;
  std::uint64_t view_changes() const { return view_changes_; }
  std::uint64_t exclusions_suffered() const { return exclusions_suffered_; }
  std::uint64_t delivered_count() const { return delivered_count_; }
  Metrics& metrics() { return ctx_->metrics(); }
  sim::Context& context() { return *ctx_; }
  Consensus& consensus() { return *consensus_; }
  FailureDetector& fd() { return *fd_; }
  FailureDetector::ClassId fd_class() const { return fd_class_; }

  /// -- internal API used by the orderers ----------------------------------
  /// Emit ORDERED(seq, id, payload) to the current view via VS.
  void vs_emit_ordered(std::uint64_t seq, const MsgId& id, const Bytes& payload);
  ReliableChannel& channel() { return *channel_; }
  sim::Context& ctx() { return *ctx_; }
  /// First free global sequence number in the current view: everything
  /// below next_expected_seq_ was delivered (or skipped by a flush).
  std::uint64_t next_free_seq() const { return next_expected_seq_; }

 private:
  friend class SequencerOrderer;
  friend class TokenOrderer;

  // -- view synchrony ------------------------------------------------------
  void on_vs_message(ProcessId from, BytesView payload);
  void deliver_in_order();
  void deliver_one(std::uint64_t seq, const MsgId& id, const Bytes& payload);

  // -- membership / flush --------------------------------------------------
  void on_membership_message(ProcessId from, BytesView payload);
  void on_suspect(ProcessId q);
  void trigger_view_change(std::vector<ProcessId> proposal);
  void send_flush();
  void maybe_propose_flush();
  void on_flush_decision(std::uint64_t instance, const Bytes& value);
  void install_view(std::vector<ProcessId> members,
                    const std::map<std::uint64_t, std::pair<MsgId, Bytes>>& final_log);
  void set_blocked(bool blocked);
  void schedule_rejoin();

  std::unique_ptr<sim::Context> ctx_;
  std::unique_ptr<SimTransport> transport_;
  std::unique_ptr<ReliableChannel> channel_;
  std::unique_ptr<FailureDetector> fd_;
  FailureDetector::ClassId fd_class_ = 0;
  std::unique_ptr<Consensus> consensus_;
  std::unique_ptr<Orderer> orderer_;
  sim::Network* network_;
  Config config_;

  // View state.
  View view_;
  bool excluded_ = false;
  bool started_ = false;

  // VS delivery state (reset each view).
  std::uint64_t next_expected_seq_ = 0;
  std::uint64_t max_seq_seen_ = 0;  // highest seq delivered, across views
  std::map<std::uint64_t, std::pair<MsgId, Bytes>> holdback_;   // seq -> msg
  std::map<std::uint64_t, std::pair<MsgId, Bytes>> view_log_;   // delivered this view
  std::set<MsgId> delivered_ids_;  // all-time dedup

  // Blocking (Sync) state.
  bool blocked_ = false;
  TimePoint block_started_ = 0;
  Duration blocked_total_ = 0;
  std::deque<std::pair<MsgId, Bytes>> queued_sends_;

  // Flush state.
  bool in_flush_ = false;
  std::vector<ProcessId> flush_proposal_;
  std::map<ProcessId, std::map<std::uint64_t, std::pair<MsgId, Bytes>>> flush_logs_;
  bool flush_proposed_ = false;

  std::uint64_t next_local_seq_ = 0;  // MsgId generator
  std::uint64_t view_changes_ = 0;
  std::uint64_t exclusions_suffered_ = 0;
  std::uint64_t delivered_count_ = 0;
  std::vector<DeliverFn> deliver_fns_;
  std::vector<ViewFn> view_fns_;
};

}  // namespace gcs::traditional
