/// \file sequencer.hpp
/// Fixed-sequencer atomic broadcast (Isis/Phoenix style, paper §2.3.2).
///
/// The head of the current view is the sequencer: it assigns consecutive
/// global sequence numbers and emits ORDERED messages through the view
/// synchrony layer. Non-sequencers forward their messages to it. If the
/// sequencer crashes, the protocol BLOCKS until the membership excludes it
/// and a new view (with a new sequencer) is installed — the dependency on
/// group membership that the paper's new architecture removes.
#pragma once

#include <map>
#include <set>

#include "traditional/gmvs_stack.hpp"

namespace gcs::traditional {

class SequencerOrderer final : public Orderer {
 public:
  explicit SequencerOrderer(GmVsStack& stack) : stack_(stack) {}

  void submit(const MsgId& id, Bytes payload) override;
  void on_view(const View& view) override;
  void handle(ProcessId from, BytesView payload) override;
  void on_ordered_delivered(const MsgId& id) override;
  Tag tag() const override { return Tag::kSeqOrder; }

  bool is_sequencer() const;

 private:
  void emit_or_forward(const MsgId& id, const Bytes& payload);

  GmVsStack& stack_;
  std::uint64_t seq_counter_ = 0;
  // Messages this process originated that are not yet delivered; re-driven
  // to the new sequencer on every view change.
  std::map<MsgId, Bytes> pending_;
  // Sequencer-side dedup of assignments (a forwarded message may arrive
  // again after a view change).
  std::set<MsgId> assigned_;
};

}  // namespace gcs::traditional
