#include "traditional/token_ring.hpp"

#include <algorithm>

#include "util/codec.hpp"

namespace gcs::traditional {

void TokenOrderer::submit(const MsgId& id, Bytes payload) {
  pending_.emplace(id, std::move(payload));
  // Emission happens when the token arrives (or now, if we hold it and are
  // still inside the hold window — simply wait for the scheduled release).
}

void TokenOrderer::handle(ProcessId /*from*/, BytesView payload) {
  Decoder dec(payload);
  const std::uint64_t view_id = dec.get_u64();
  const std::uint64_t next_seq = dec.get_u64();
  if (!dec.ok()) return;
  if (view_id != stack_.view().id) return;  // stale token from an old ring
  if (stack_.is_blocked()) return;          // flush running: token dies, view
                                            // change will regenerate it
  acquire_token(next_seq);
}

void TokenOrderer::acquire_token(std::uint64_t next_seq) {
  has_token_ = true;
  token_seq_ = next_seq;
  stack_.ctx().metrics().inc("token.acquired");
  // Assign sequence numbers to everything we have queued.
  for (const auto& [id, payload] : pending_) {
    if (!emitted_.insert(id).second) continue;
    stack_.vs_emit_ordered(token_seq_++, id, payload);
    stack_.ctx().metrics().inc("token.assigned");
  }
  // Pass the token on after the hold time.
  const std::uint64_t view_id = stack_.view().id;
  stack_.ctx().after(token_hold_, [this, view_id] {
    if (view_id == stack_.view().id && has_token_) release_token();
  });
}

void TokenOrderer::release_token() {
  has_token_ = false;
  const auto& members = stack_.view().members;
  if (members.empty()) return;
  const auto it = std::find(members.begin(), members.end(), stack_.self());
  if (it == members.end()) return;
  const std::size_t idx = static_cast<std::size_t>(it - members.begin());
  const ProcessId next = members[(idx + 1) % members.size()];
  if (next == stack_.self()) {
    // Singleton view: keep the token, re-acquire after the hold time.
    acquire_token(token_seq_);
    return;
  }
  Encoder enc;
  enc.put_u64(stack_.view().id);
  enc.put_u64(token_seq_);
  stack_.channel().send(next, Tag::kToken, enc.take());
  stack_.ctx().metrics().inc("token.passed");
}

void TokenOrderer::on_view(const View& view) {
  has_token_ = false;
  // Messages emitted in the old view but not delivered were discarded with
  // the view; they must be re-assigned under the new ring.
  for (auto it = emitted_.begin(); it != emitted_.end();) {
    it = pending_.count(*it) ? emitted_.erase(it) : ++it;
  }
  // The head of the new view regenerates the token at the agreed next free
  // sequence number (the flush union fixed it).
  if (view.primary() == stack_.self()) {
    stack_.ctx().metrics().inc("token.regenerated");
    acquire_token(stack_.next_free_seq());
  }
}

void TokenOrderer::on_ordered_delivered(const MsgId& id) {
  pending_.erase(id);
  emitted_.erase(id);
}

}  // namespace gcs::traditional
