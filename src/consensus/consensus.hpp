/// \file consensus.hpp
/// Chandra–Toueg ◇S rotating-coordinator consensus (multi-instance).
///
/// This is the consensus component at the bottom of the paper's new
/// architecture (Fig 6/7/9): it requires only an *eventually strong* (◇S)
/// failure detector — false suspicions are tolerated, so consensus (and the
/// atomic broadcast built on it) never needs a group membership service
/// below it to emulate a perfect failure detector. Tolerates f < n/2
/// crashes among the instance's members.
///
/// Algorithm (per instance, asynchronous rounds r = 0, 1, ...):
///   coordinator c(r) = members[r mod n]
///   phase 1  every process sends (ESTIMATE, r, ts, v) to c(r)
///   phase 2  c(r) collects a majority of estimates, adopts the one with
///            the highest ts, sends (PROPOSE, r, v) to all
///   phase 3  a process either receives PROPOSE (adopts v, ts := r, ACKs)
///            or comes to suspect c(r) (NACKs); either way it proceeds to
///            round r + 1
///   phase 4  c(r) collects a majority of ACKs and broadcasts DECIDE
///
/// DECIDE messages travel over reliable channels to all members, so every
/// correct member terminates. A process that receives round messages for an
/// instance it has not locally started participates passively (it can
/// coordinate and ACK) and starts driving rounds once propose() is called.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <set>
#include <unordered_map>
#include <vector>

#include "channel/reliable_channel.hpp"
#include "consensus/consensus_protocol.hpp"
#include "fd/failure_detector.hpp"
#include "sim/context.hpp"

namespace gcs {

class Consensus final : public ConsensusProtocol {
 public:

  /// \param fd_class   the FD timeout class consensus uses to suspect
  ///                   coordinators; its timeout can be aggressive (◇S).
  /// \param tag        wire tag, so several independent consensus stacks can
  ///                   coexist (the traditional baselines reuse this class).
  Consensus(sim::Context& ctx, ReliableChannel& channel, FailureDetector& fd,
            FailureDetector::ClassId fd_class, Tag tag = Tag::kConsensus);

  /// Propose \p value for instance \p k among \p members (self included).
  /// All correct members must eventually propose for k to guarantee
  /// termination. Proposing for a decided instance re-delivers the decision.
  void propose(std::uint64_t k, Bytes value, std::vector<ProcessId> members) override;

  /// Decision callback; fired exactly once per instance, in no particular
  /// instance order (callers sequence instances themselves).
  void on_decide(DecideFn fn) override { decide_fns_.push_back(std::move(fn)); }

  /// True if instance \p k has decided locally.
  bool decided(std::uint64_t k) const override { return decisions_.count(k) != 0; }

  /// Number of instances decided locally (an "ordering work" metric).
  std::int64_t instances_decided() const override { return decided_count_; }

  std::int64_t open_instances() const override {
    std::int64_t n = 0;
    for (const auto& [k, inst] : instances_) {
      (void)k;
      if (!inst.decided) ++n;
    }
    return n;
  }

  /// Garbage-collect decision values for instances < \p k. Late DECIDE
  /// echoes for a forgotten instance re-fire on_decide; all users guard
  /// with their own sequencing (atomic broadcast: instance < next;
  /// traditional flush: instance != view id), so this is safe and keeps
  /// memory bounded on long runs.
  void forget_below(std::uint64_t k) override;

 private:
  struct Instance {
    std::vector<ProcessId> members;
    int majority = 0;
    bool started = false;     // have we proposed locally?
    bool decided = false;
    Bytes estimate;
    std::int64_t estimate_ts = -1;
    std::int64_t round = 0;
    bool responded = false;   // ACK/NACK already sent for `round`
    TimePoint started_at = -1;  // when propose() ran locally (latency metric)

    // Coordinator-side per-round state.
    struct RoundState {
      std::vector<std::pair<std::int64_t, Bytes>> estimates;  // (ts, value)
      bool proposed = false;
      Bytes proposal;
      int acks = 0;
      int nacks = 0;
    };
    std::map<std::int64_t, RoundState> rounds;

    ProcessId coordinator(std::int64_t r) const {
      return members[static_cast<std::size_t>(r) % members.size()];
    }
  };

  void on_message(ProcessId from, BytesView payload);
  void handle_estimate(ProcessId from, std::uint64_t k, std::int64_t r, std::int64_t ts,
                       Bytes value);
  void handle_propose(ProcessId from, std::uint64_t k, std::int64_t r, Bytes value);
  void handle_ack(ProcessId from, std::uint64_t k, std::int64_t r, bool positive);
  void handle_decide(std::uint64_t k, Bytes value);
  void enter_round(std::uint64_t k, Instance& inst, std::int64_t r);
  void nack_round(std::uint64_t k, Instance& inst);
  void maybe_propose_round(std::uint64_t k, Instance& inst, std::int64_t r);
  void decide(std::uint64_t k, Instance& inst, const Bytes& value);
  void on_fd_suspect(ProcessId q);
  Instance& get_instance(std::uint64_t k, const std::vector<ProcessId>* members_hint);

  sim::Context& ctx_;
  ReliableChannel& channel_;
  FailureDetector& fd_;
  FailureDetector::ClassId fd_class_;
  Tag tag_;
  MetricId m_started_;
  MetricId m_rounds_;
  MetricId m_decided_;
  MetricId h_latency_;  ///< propose() -> local decision (time-in-consensus)
  std::unordered_map<std::uint64_t, Instance> instances_;
  std::unordered_map<std::uint64_t, Bytes> decisions_;
  std::vector<DecideFn> decide_fns_;
  std::int64_t decided_count_ = 0;
};

}  // namespace gcs
