#include "consensus/paxos.hpp"

#include <algorithm>
#include <cassert>

#include "util/codec.hpp"

namespace gcs {

namespace {
constexpr std::uint8_t kPrepare = 0;
constexpr std::uint8_t kPromise = 1;
constexpr std::uint8_t kAccept = 2;
constexpr std::uint8_t kAccepted = 3;
constexpr std::uint8_t kNack = 4;
constexpr std::uint8_t kDecide = 5;
constexpr std::uint8_t kAnnounce = 6;
}  // namespace

PaxosConsensus::PaxosConsensus(sim::Context& ctx, ReliableChannel& channel,
                               FailureDetector& fd, FailureDetector::ClassId fd_class,
                               Tag tag)
    : ctx_(ctx), channel_(channel), fd_(fd), fd_class_(fd_class), tag_(tag),
      m_started_(metric_id("paxos.instances_started")),
      m_ballots_(metric_id("paxos.ballots_started")),
      m_decided_(metric_id("paxos.decided")),
      h_latency_(metric_id("consensus.latency_us")) {
  channel_.subscribe(tag_, [this](ProcessId from, BytesView b) { on_message(from, b); });
  fd_.on_suspect(fd_class_, [this](ProcessId q) { on_fd_suspect(q); });
}

PaxosConsensus::Instance& PaxosConsensus::get_instance(
    std::uint64_t k, const std::vector<ProcessId>* members_hint) {
  auto it = instances_.find(k);
  if (it == instances_.end()) {
    Instance inst;
    if (members_hint) inst.members = *members_hint;
    inst.majority =
        inst.members.empty() ? 0 : static_cast<int>(inst.members.size()) / 2 + 1;
    it = instances_.emplace(k, std::move(inst)).first;
  } else if (it->second.members.empty() && members_hint) {
    it->second.members = *members_hint;
    it->second.majority = static_cast<int>(members_hint->size()) / 2 + 1;
  }
  return it->second;
}

void PaxosConsensus::propose(std::uint64_t k, Bytes value, std::vector<ProcessId> members) {
  assert(!members.empty());
  if (auto it = decisions_.find(k); it != decisions_.end()) {
    for (const auto& fn : decide_fns_) fn(k, it->second);
    return;
  }
  Instance& inst = get_instance(k, &members);
  if (inst.started || inst.decided) return;
  inst.started = true;
  inst.started_at = ctx_.now();
  inst.my_value = std::move(value);
  ctx_.metrics().inc(m_started_);
  ctx_.trace_begin(obs::Names::get().consensus_instance, MsgId{obs::kConsensusKey, k});
  fd_.monitor_group(fd_class_, inst.members);
  // Pull passive members in (they must at least act as acceptors with the
  // member set known, and as takeover candidates).
  Encoder announce;
  announce.put_byte(kAnnounce);
  announce.put_u64(k);
  announce.put_vector(inst.members, [](Encoder& e, ProcessId p) { e.put_i32(p); });
  announce.put_bytes(inst.my_value);
  for (ProcessId p : inst.members) {
    if (p != ctx_.self()) channel_.send(p, tag_, announce.bytes());
  }
  // Ballot 0's owner drives first; everyone else waits on the FD.
  if (inst.owner(0) == ctx_.self()) {
    start_ballot(k, inst, 0);
  } else if (fd_.suspects(fd_class_, inst.owner(0))) {
    maybe_take_over(k, inst);
  }
}

void PaxosConsensus::start_ballot(std::uint64_t k, Instance& inst, std::int64_t ballot) {
  if (inst.decided) return;
  auto& attempt = inst.attempts[ballot];
  if (attempt.preparing || attempt.accepting) return;
  attempt.preparing = true;
  attempt.value = inst.my_value;
  inst.max_ballot_seen = std::max(inst.max_ballot_seen, ballot);
  ctx_.metrics().inc(m_ballots_);
  ctx_.trace_instant(obs::Names::get().consensus_propose, MsgId{obs::kConsensusKey, k},
                     ballot);
  Encoder enc;
  enc.put_byte(kPrepare);
  enc.put_u64(k);
  enc.put_i64(ballot);
  channel_.send_group(inst.members, tag_, enc.take());
}

void PaxosConsensus::maybe_take_over(std::uint64_t k, Instance& inst) {
  if (inst.decided || !inst.started || inst.members.empty()) return;
  const std::int64_t current = std::max<std::int64_t>(0, inst.max_ballot_seen);
  if (!fd_.suspects(fd_class_, inst.owner(current))) return;
  const std::int64_t mine = inst.next_owned_ballot(ctx_.self(), current);
  // Small delay bounds ballot churn and lets heartbeats revoke mistakes.
  ctx_.after(msec(1), [this, k, mine] {
    auto it = instances_.find(k);
    if (it == instances_.end()) return;
    Instance& i = it->second;
    if (i.decided || !i.started) return;
    const std::int64_t cur = std::max<std::int64_t>(0, i.max_ballot_seen);
    if (mine <= cur) return;  // someone else moved on already
    if (!fd_.suspects(fd_class_, i.owner(cur))) return;
    start_ballot(k, i, mine);
  });
}

void PaxosConsensus::on_fd_suspect(ProcessId q) {
  std::vector<std::uint64_t> candidates;
  for (auto& [k, inst] : instances_) {
    if (inst.started && !inst.decided && !inst.members.empty() &&
        inst.owner(std::max<std::int64_t>(0, inst.max_ballot_seen)) == q) {
      candidates.push_back(k);
    }
  }
  for (std::uint64_t k : candidates) {
    auto it = instances_.find(k);
    if (it != instances_.end()) maybe_take_over(k, it->second);
  }
}

void PaxosConsensus::on_message(ProcessId from, BytesView payload) {
  Decoder dec(payload);
  const std::uint8_t kind = dec.get_byte();
  const std::uint64_t k = dec.get_u64();
  switch (kind) {
    case kPrepare: {
      const std::int64_t b = dec.get_i64();
      if (dec.ok()) handle_prepare(from, k, b);
      break;
    }
    case kPromise: {
      const std::int64_t b = dec.get_i64();
      const std::int64_t ab = dec.get_i64();
      Bytes av = dec.get_bytes();
      if (dec.ok()) handle_promise(from, k, b, ab, std::move(av));
      break;
    }
    case kAccept: {
      const std::int64_t b = dec.get_i64();
      Bytes v = dec.get_bytes();
      if (dec.ok()) handle_accept(from, k, b, std::move(v));
      break;
    }
    case kAccepted: {
      const std::int64_t b = dec.get_i64();
      if (dec.ok()) handle_accepted(from, k, b);
      break;
    }
    case kNack: {
      const std::int64_t b_high = dec.get_i64();
      if (dec.ok()) handle_nack(k, b_high);
      break;
    }
    case kDecide: {
      Bytes v = dec.get_bytes();
      if (dec.ok()) handle_decide(k, std::move(v));
      break;
    }
    case kAnnounce: {
      auto members = dec.get_vector<ProcessId>([](Decoder& d) { return d.get_i32(); });
      Bytes v = dec.get_bytes();
      if (!dec.ok() || decisions_.count(k)) break;
      Instance& inst = get_instance(k, &members);
      if (!inst.started && !inst.decided) propose(k, std::move(v), std::move(members));
      break;
    }
    default:
      break;
  }
}

void PaxosConsensus::handle_prepare(ProcessId from, std::uint64_t k, std::int64_t b) {
  if (decisions_.count(k)) return;
  Instance& inst = get_instance(k, nullptr);
  if (inst.decided) return;
  inst.max_ballot_seen = std::max(inst.max_ballot_seen, b);
  Encoder enc;
  if (b >= inst.promised) {
    inst.promised = b;
    enc.put_byte(kPromise);
    enc.put_u64(k);
    enc.put_i64(b);
    enc.put_i64(inst.accepted_ballot);
    enc.put_bytes(inst.accepted_value);
  } else {
    enc.put_byte(kNack);
    enc.put_u64(k);
    enc.put_i64(inst.promised);
  }
  channel_.send(from, tag_, enc.take());
}

void PaxosConsensus::handle_promise(ProcessId /*from*/, std::uint64_t k, std::int64_t b,
                                    std::int64_t ab, Bytes av) {
  if (decisions_.count(k)) return;
  Instance& inst = get_instance(k, nullptr);
  if (inst.decided || inst.members.empty()) return;
  auto ait = inst.attempts.find(b);
  if (ait == inst.attempts.end() || !ait->second.preparing || ait->second.accepting) return;
  auto& attempt = ait->second;
  ++attempt.promises;
  if (ab > attempt.best_accepted_ballot) {
    attempt.best_accepted_ballot = ab;
    attempt.best_accepted_value = std::move(av);
  }
  if (attempt.promises < inst.majority) return;
  attempt.accepting = true;
  // The Paxos invariant: adopt the highest-ballot accepted value seen.
  const Bytes& chosen = attempt.best_accepted_ballot >= 0 ? attempt.best_accepted_value
                                                          : attempt.value;
  Encoder enc;
  enc.put_byte(kAccept);
  enc.put_u64(k);
  enc.put_i64(b);
  enc.put_bytes(chosen);
  channel_.send_group(inst.members, tag_, enc.take());
}

void PaxosConsensus::handle_accept(ProcessId from, std::uint64_t k, std::int64_t b, Bytes v) {
  if (decisions_.count(k)) return;
  Instance& inst = get_instance(k, nullptr);
  if (inst.decided) return;
  inst.max_ballot_seen = std::max(inst.max_ballot_seen, b);
  Encoder enc;
  if (b >= inst.promised) {
    inst.promised = b;
    inst.accepted_ballot = b;
    inst.accepted_value = std::move(v);
    enc.put_byte(kAccepted);
    enc.put_u64(k);
    enc.put_i64(b);
  } else {
    enc.put_byte(kNack);
    enc.put_u64(k);
    enc.put_i64(inst.promised);
  }
  channel_.send(from, tag_, enc.take());
}

void PaxosConsensus::handle_accepted(ProcessId /*from*/, std::uint64_t k, std::int64_t b) {
  if (decisions_.count(k)) return;
  Instance& inst = get_instance(k, nullptr);
  if (inst.decided || inst.members.empty()) return;
  auto ait = inst.attempts.find(b);
  if (ait == inst.attempts.end() || !ait->second.accepting) return;
  if (++ait->second.accepteds < inst.majority) return;
  inst.decided = true;
  // The accepted value of this ballot is what we sent in ACCEPT.
  const Bytes chosen = ait->second.best_accepted_ballot >= 0
                           ? ait->second.best_accepted_value
                           : ait->second.value;
  Encoder enc;
  enc.put_byte(kDecide);
  enc.put_u64(k);
  enc.put_bytes(chosen);
  channel_.send_group(inst.members, tag_, enc.take());
}

void PaxosConsensus::handle_nack(std::uint64_t k, std::int64_t b_high) {
  if (decisions_.count(k)) return;
  Instance& inst = get_instance(k, nullptr);
  if (inst.decided) return;
  // Someone promised a higher ballot: abandon lower attempts; the FD path
  // decides whether we should take over later.
  inst.max_ballot_seen = std::max(inst.max_ballot_seen, b_high);
  for (auto& [ballot, attempt] : inst.attempts) {
    if (ballot < b_high) {
      attempt.preparing = false;
      attempt.accepting = false;
    }
  }
  maybe_take_over(k, inst);
}

void PaxosConsensus::handle_decide(std::uint64_t k, Bytes value) {
  if (decisions_.count(k)) return;
  decisions_.emplace(k, value);
  ++decided_count_;
  ctx_.metrics().inc(m_decided_);
  ctx_.trace_instant(obs::Names::get().consensus_decide, MsgId{obs::kConsensusKey, k},
                     static_cast<std::int64_t>(value.size()));
  ctx_.trace_end(obs::Names::get().consensus_instance, MsgId{obs::kConsensusKey, k});
  auto it = instances_.find(k);
  if (it != instances_.end()) {
    if (it->second.started_at >= 0) {
      ctx_.metrics().observe(h_latency_, ctx_.now() - it->second.started_at);
    }
    if (!it->second.decided && !it->second.members.empty()) {
      Encoder enc;
      enc.put_byte(kDecide);
      enc.put_u64(k);
      enc.put_bytes(value);
      channel_.send_group(it->second.members, tag_, enc.take());
    }
    instances_.erase(it);
  }
  for (const auto& fn : decide_fns_) fn(k, value);
}

void PaxosConsensus::forget_below(std::uint64_t k) {
  for (auto it = decisions_.begin(); it != decisions_.end();) {
    it = (it->first < k) ? decisions_.erase(it) : ++it;
  }
}

}  // namespace gcs
