#include "consensus/consensus.hpp"

#include <algorithm>
#include <cassert>

#include "util/codec.hpp"

namespace gcs {

namespace {
constexpr std::uint8_t kEstimate = 0;
constexpr std::uint8_t kPropose = 1;
constexpr std::uint8_t kAck = 2;
constexpr std::uint8_t kNack = 3;
constexpr std::uint8_t kDecide = 4;
constexpr std::uint8_t kAnnounce = 5;
}  // namespace

Consensus::Consensus(sim::Context& ctx, ReliableChannel& channel, FailureDetector& fd,
                     FailureDetector::ClassId fd_class, Tag tag)
    : ctx_(ctx), channel_(channel), fd_(fd), fd_class_(fd_class), tag_(tag),
      m_started_(metric_id("consensus.instances_started")),
      m_rounds_(metric_id("consensus.rounds")),
      m_decided_(metric_id("consensus.decided")),
      h_latency_(metric_id("consensus.latency_us")) {
  channel_.subscribe(tag_, [this](ProcessId from, BytesView b) { on_message(from, b); });
  fd_.on_suspect(fd_class_, [this](ProcessId q) { on_fd_suspect(q); });
}

Consensus::Instance& Consensus::get_instance(std::uint64_t k,
                                             const std::vector<ProcessId>* members_hint) {
  auto it = instances_.find(k);
  if (it == instances_.end()) {
    Instance inst;
    if (members_hint) inst.members = *members_hint;
    inst.majority = inst.members.empty()
                        ? 0
                        : static_cast<int>(inst.members.size()) / 2 + 1;
    it = instances_.emplace(k, std::move(inst)).first;
  } else if (it->second.members.empty() && members_hint) {
    it->second.members = *members_hint;
    it->second.majority = static_cast<int>(members_hint->size()) / 2 + 1;
  }
  return it->second;
}

void Consensus::propose(std::uint64_t k, Bytes value, std::vector<ProcessId> members) {
  assert(!members.empty());
  if (auto it = decisions_.find(k); it != decisions_.end()) {
    // Instance already decided (we learned the decision passively).
    for (const auto& fn : decide_fns_) fn(k, it->second);
    return;
  }
  Instance& inst = get_instance(k, &members);
  if (inst.started || inst.decided) return;
  inst.started = true;
  inst.started_at = ctx_.now();
  ctx_.trace_begin(obs::Names::get().consensus_instance,
                   MsgId{obs::kConsensusKey, k});
  // Do not clobber an estimate adopted while participating passively: it may
  // be locked by a majority (CT safety argument relies on keeping it).
  if (inst.estimate_ts < 0) {
    inst.estimate = std::move(value);
    inst.estimate_ts = 0;
  }
  ctx_.metrics().inc(m_started_);
  // FD must watch everyone who may become coordinator.
  fd_.monitor_group(fd_class_, inst.members);
  // CT assumes every correct member proposes. Announce the instance so
  // members with nothing to propose join in with our value (validity is
  // preserved: the value is still some process's proposal). This makes a
  // lone proposer terminate without upper-layer help.
  Encoder announce;
  announce.put_byte(kAnnounce);
  announce.put_u64(k);
  announce.put_vector(inst.members, [](Encoder& e, ProcessId p) { e.put_i32(p); });
  announce.put_bytes(inst.estimate);
  for (ProcessId p : inst.members) {
    if (p != ctx_.self()) channel_.send(p, tag_, announce.bytes());
  }
  enter_round(k, inst, inst.round);
}

void Consensus::enter_round(std::uint64_t k, Instance& inst, std::int64_t r) {
  if (inst.decided) return;
  inst.round = r;
  inst.responded = false;
  ctx_.metrics().inc(m_rounds_);
  const ProcessId c = inst.coordinator(r);
  ctx_.trace_instant(obs::Names::get().consensus_estimate, MsgId{obs::kConsensusKey, k},
                     r);
  // Phase 1: send estimate to the coordinator.
  Encoder enc;
  enc.put_byte(kEstimate);
  enc.put_u64(k);
  enc.put_i64(r);
  enc.put_i64(inst.estimate_ts);
  enc.put_bytes(inst.estimate);
  channel_.send(c, tag_, enc.take());
  // Phase 3 shortcut: if the coordinator is already suspected, NACK soon.
  // The small delay bounds round churn when many coordinators are suspected
  // at once (e.g. during a partition) and lets heartbeats revoke mistakes.
  if (fd_.suspects(fd_class_, c)) {
    ctx_.after(msec(1), [this, k, r] {
      auto it = instances_.find(k);
      if (it == instances_.end()) return;
      Instance& i = it->second;
      if (i.decided || i.round != r || i.responded) return;
      if (fd_.suspects(fd_class_, i.coordinator(r))) nack_round(k, i);
    });
  }
}

void Consensus::nack_round(std::uint64_t k, Instance& inst) {
  if (inst.decided || inst.responded) return;
  inst.responded = true;
  const std::int64_t r = inst.round;
  ctx_.trace_instant(obs::Names::get().consensus_nack, MsgId{obs::kConsensusKey, k}, r);
  Encoder enc;
  enc.put_byte(kNack);
  enc.put_u64(k);
  enc.put_i64(r);
  channel_.send(inst.coordinator(r), tag_, enc.take());
  enter_round(k, inst, r + 1);
}

void Consensus::on_fd_suspect(ProcessId q) {
  // A suspicion may unblock any started instance waiting on coordinator q.
  // Collect the instance ids first: nack_round() mutates instances_ state.
  std::vector<std::uint64_t> waiting;
  for (auto& [k, inst] : instances_) {
    if (inst.started && !inst.decided && !inst.responded && !inst.members.empty() &&
        inst.coordinator(inst.round) == q) {
      waiting.push_back(k);
    }
  }
  for (std::uint64_t k : waiting) {
    auto it = instances_.find(k);
    if (it != instances_.end()) nack_round(k, it->second);
  }
}

void Consensus::on_message(ProcessId from, BytesView payload) {
  Decoder dec(payload);
  const std::uint8_t kind = dec.get_byte();
  const std::uint64_t k = dec.get_u64();
  switch (kind) {
    case kEstimate: {
      const std::int64_t r = dec.get_i64();
      const std::int64_t ts = dec.get_i64();
      Bytes value = dec.get_bytes();
      if (dec.ok()) handle_estimate(from, k, r, ts, std::move(value));
      break;
    }
    case kPropose: {
      const std::int64_t r = dec.get_i64();
      Bytes value = dec.get_bytes();
      if (dec.ok()) handle_propose(from, k, r, std::move(value));
      break;
    }
    case kAck:
    case kNack: {
      const std::int64_t r = dec.get_i64();
      if (dec.ok()) handle_ack(from, k, r, kind == kAck);
      break;
    }
    case kDecide: {
      Bytes value = dec.get_bytes();
      if (dec.ok()) handle_decide(k, std::move(value));
      break;
    }
    case kAnnounce: {
      auto members = dec.get_vector<ProcessId>([](Decoder& d) { return d.get_i32(); });
      Bytes value = dec.get_bytes();
      if (!dec.ok() || decisions_.count(k)) break;
      Instance& inst = get_instance(k, &members);
      if (!inst.started && !inst.decided) propose(k, std::move(value), std::move(members));
      break;
    }
    default:
      break;
  }
}

void Consensus::handle_estimate(ProcessId /*from*/, std::uint64_t k, std::int64_t r,
                                std::int64_t ts, Bytes value) {
  if (decisions_.count(k)) return;
  Instance& inst = get_instance(k, nullptr);
  if (inst.decided) return;
  auto& round = inst.rounds[r];
  round.estimates.emplace_back(ts, std::move(value));
  maybe_propose_round(k, inst, r);
}

void Consensus::maybe_propose_round(std::uint64_t k, Instance& inst, std::int64_t r) {
  // Coordinator phase 2: needs to know the member set to count a majority.
  // Estimates may arrive before propose() told us the members; they are kept
  // in rounds[] and re-examined when propose() runs (via enter_round ->
  // the coordinator receives its own estimate through the loopback channel).
  if (inst.members.empty()) return;
  if (inst.coordinator(r) != ctx_.self()) return;
  auto& round = inst.rounds[r];
  if (round.proposed || static_cast<int>(round.estimates.size()) < inst.majority) return;
  // Adopt the estimate with the highest timestamp (most recently locked).
  const auto best = std::max_element(
      round.estimates.begin(), round.estimates.end(),
      [](const auto& a, const auto& b) { return a.first < b.first; });
  round.proposed = true;
  round.proposal = best->second;
  ctx_.trace_instant(obs::Names::get().consensus_propose, MsgId{obs::kConsensusKey, k}, r);
  Encoder enc;
  enc.put_byte(kPropose);
  enc.put_u64(k);
  enc.put_i64(r);
  enc.put_bytes(round.proposal);
  channel_.send_group(inst.members, tag_, enc.take());
}

void Consensus::handle_propose(ProcessId from, std::uint64_t k, std::int64_t r, Bytes value) {
  if (decisions_.count(k)) return;
  Instance& inst = get_instance(k, nullptr);
  if (inst.decided) return;
  // Round monotonicity is a SAFETY requirement for everyone, passive
  // participants included: once a process has ACKed round r it must never
  // ACK a round < r, or two coordinators could both assemble majorities
  // with different values.
  if (r < inst.round) return;  // stale round
  if (r > inst.round) {
    // Fast-forward: we lagged behind; join the newer round.
    inst.round = r;
    inst.responded = false;
  }
  if (inst.responded) return;
  inst.responded = true;
  inst.estimate = std::move(value);
  // Lock with ts = r + 1 so a round-0 lock (ts 1) outranks initial
  // proposals (ts 0): the coordinator's max-ts selection must always prefer
  // a possibly-decided value over a fresh one.
  inst.estimate_ts = r + 1;
  ctx_.trace_instant(obs::Names::get().consensus_ack, MsgId{obs::kConsensusKey, k}, r);
  Encoder enc;
  enc.put_byte(kAck);
  enc.put_u64(k);
  enc.put_i64(r);
  channel_.send(from, tag_, enc.take());
  if (inst.started) {
    enter_round(k, inst, r + 1);
  } else {
    // Passive participant: advance the round marker so a later propose()
    // resumes at the right round instead of regressing to round 0.
    inst.round = r + 1;
    inst.responded = false;
  }
}

void Consensus::handle_ack(ProcessId /*from*/, std::uint64_t k, std::int64_t r, bool positive) {
  if (decisions_.count(k)) return;
  Instance& inst = get_instance(k, nullptr);
  if (inst.decided || inst.members.empty()) return;
  auto& round = inst.rounds[r];
  if (!round.proposed) return;  // not our round / never proposed
  if (positive) {
    if (++round.acks >= inst.majority) {
      decide(k, inst, round.proposal);
    }
  } else {
    ++round.nacks;
  }
}

void Consensus::decide(std::uint64_t k, Instance& inst, const Bytes& value) {
  if (inst.decided) return;
  inst.decided = true;
  Encoder enc;
  enc.put_byte(kDecide);
  enc.put_u64(k);
  enc.put_bytes(value);
  channel_.send_group(inst.members, tag_, enc.take());
  // Our own DECIDE arrives via loopback and runs handle_decide.
}

void Consensus::forget_below(std::uint64_t k) {
  for (auto it = decisions_.begin(); it != decisions_.end();) {
    it = (it->first < k) ? decisions_.erase(it) : ++it;
  }
}

void Consensus::handle_decide(std::uint64_t k, Bytes value) {
  if (decisions_.count(k)) return;
  decisions_.emplace(k, value);
  ++decided_count_;
  ctx_.metrics().inc(m_decided_);
  ctx_.trace_instant(obs::Names::get().consensus_decide, MsgId{obs::kConsensusKey, k},
                     static_cast<std::int64_t>(value.size()));
  ctx_.trace_end(obs::Names::get().consensus_instance, MsgId{obs::kConsensusKey, k});
  if (ctx_.log().enabled(LogLevel::kDebug)) {
    ctx_.log().debug("consensus decide k=" + std::to_string(k) + " bytes=" +
                     std::to_string(value.size()));
  }
  auto it = instances_.find(k);
  if (it != instances_.end()) {
    if (it->second.started_at >= 0) {
      ctx_.metrics().observe(h_latency_, ctx_.now() - it->second.started_at);
    }
    // Echo the decision once to the members we know, then drop round state.
    if (!it->second.decided && !it->second.members.empty()) {
      Encoder enc;
      enc.put_byte(kDecide);
      enc.put_u64(k);
      enc.put_bytes(value);
      channel_.send_group(it->second.members, tag_, enc.take());
    }
    instances_.erase(it);
  }
  for (const auto& fn : decide_fns_) fn(k, value);
}

}  // namespace gcs
