/// \file consensus_protocol.hpp
/// The consensus abstraction the rest of the stack builds on.
///
/// The paper observes (§2.3) that every historical architecture was shaped
/// by its ordering algorithm. The new architecture inverts that: anything
/// satisfying this interface — uniform multi-instance consensus over an
/// explicit member set, tolerating false suspicions — can sit at the
/// bottom of the stack. Two implementations are provided:
///   - Consensus        Chandra–Toueg ◇S rotating coordinator (consensus.hpp)
///   - PaxosConsensus   classic single-decree Paxos per instance (paxos.hpp)
/// Both run unchanged under the same atomic broadcast, membership, generic
/// broadcast and replication layers; bench_e8 compares their costs.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "util/types.hpp"

namespace gcs {

class ConsensusProtocol {
 public:
  using DecideFn = std::function<void(std::uint64_t instance, const Bytes& value)>;

  virtual ~ConsensusProtocol() = default;

  /// Propose \p value for instance \p k among \p members (self included).
  virtual void propose(std::uint64_t k, Bytes value, std::vector<ProcessId> members) = 0;

  /// Decision callback; fired exactly once per instance per subscriber.
  virtual void on_decide(DecideFn fn) = 0;

  /// True if instance \p k has decided locally.
  virtual bool decided(std::uint64_t k) const = 0;

  /// Number of instances decided locally (ordering-work metric).
  virtual std::int64_t instances_decided() const = 0;

  /// Instances currently tracked locally and not yet decided (probe gauge:
  /// open = in-flight ordering work).
  virtual std::int64_t open_instances() const = 0;

  /// Garbage-collect decision values for instances < \p k.
  virtual void forget_below(std::uint64_t k) = 0;
};

}  // namespace gcs
