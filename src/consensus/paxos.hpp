/// \file paxos.hpp
/// Classic single-decree Paxos, one instance per consensus (multi-instance
/// manager like consensus.hpp).
///
/// The alternative bottom layer proving the architecture's point: any
/// uniform consensus tolerating false suspicions slots under the same
/// atomic broadcast. Ballot b is owned by members[b mod n]; processes
/// monitor the current ballot owner with the ◇S failure-detector class and
/// take over with their next-owned ballot on suspicion — the standard
/// Paxos liveness recipe (safety never depends on the FD).
///
/// Per ballot, the owner runs:
///   phase 1  PREPARE(b) to all; acceptors with promised <= b reply
///            PROMISE(b, accepted_ballot, accepted_value), else NACK(b).
///   phase 2  on a majority of PROMISEs: value := highest-ballot accepted
///            value among them (or the owner's proposal); ACCEPT(b, value);
///            acceptors with promised <= b record (b, value), reply
///            ACCEPTED(b); on a majority of ACCEPTEDs the owner DECIDEs.
/// DECIDE is sent to all members over the reliable channel.
#pragma once

#include <cstdint>
#include <map>
#include <unordered_map>
#include <vector>

#include "channel/reliable_channel.hpp"
#include "consensus/consensus_protocol.hpp"
#include "fd/failure_detector.hpp"
#include "sim/context.hpp"

namespace gcs {

class PaxosConsensus final : public ConsensusProtocol {
 public:
  PaxosConsensus(sim::Context& ctx, ReliableChannel& channel, FailureDetector& fd,
                 FailureDetector::ClassId fd_class, Tag tag = Tag::kConsensus);

  void propose(std::uint64_t k, Bytes value, std::vector<ProcessId> members) override;
  void on_decide(DecideFn fn) override { decide_fns_.push_back(std::move(fn)); }
  bool decided(std::uint64_t k) const override { return decisions_.count(k) != 0; }
  std::int64_t instances_decided() const override { return decided_count_; }
  std::int64_t open_instances() const override {
    std::int64_t n = 0;
    for (const auto& [k, inst] : instances_) {
      (void)k;
      if (!inst.decided) ++n;
    }
    return n;
  }
  void forget_below(std::uint64_t k) override;

 private:
  struct Instance {
    std::vector<ProcessId> members;
    int majority = 0;
    bool started = false;
    bool decided = false;
    Bytes my_value;
    TimePoint started_at = -1;  // when propose() ran locally (latency metric)

    // Acceptor state.
    std::int64_t promised = -1;
    std::int64_t accepted_ballot = -1;
    Bytes accepted_value;

    // Proposer (ballot owner) state, per ballot.
    struct Attempt {
      bool preparing = false;
      bool accepting = false;
      int promises = 0;
      int accepteds = 0;
      std::int64_t best_accepted_ballot = -1;
      Bytes best_accepted_value;
      Bytes value;
    };
    std::map<std::int64_t, Attempt> attempts;

    // The highest ballot we have observed anyone drive.
    std::int64_t max_ballot_seen = -1;

    ProcessId owner(std::int64_t ballot) const {
      return members[static_cast<std::size_t>(ballot) % members.size()];
    }
    /// Smallest ballot > from owned by \p self.
    std::int64_t next_owned_ballot(ProcessId self, std::int64_t from) const {
      for (std::int64_t b = from + 1;; ++b) {
        if (owner(b) == self) return b;
      }
    }
  };

  void on_message(ProcessId from, BytesView payload);
  void start_ballot(std::uint64_t k, Instance& inst, std::int64_t ballot);
  void maybe_take_over(std::uint64_t k, Instance& inst);
  void handle_prepare(ProcessId from, std::uint64_t k, std::int64_t b);
  void handle_promise(ProcessId from, std::uint64_t k, std::int64_t b, std::int64_t ab,
                      Bytes av);
  void handle_accept(ProcessId from, std::uint64_t k, std::int64_t b, Bytes v);
  void handle_accepted(ProcessId from, std::uint64_t k, std::int64_t b);
  void handle_nack(std::uint64_t k, std::int64_t b_high);
  void handle_decide(std::uint64_t k, Bytes value);
  void on_fd_suspect(ProcessId q);
  Instance& get_instance(std::uint64_t k, const std::vector<ProcessId>* members_hint);

  sim::Context& ctx_;
  ReliableChannel& channel_;
  FailureDetector& fd_;
  FailureDetector::ClassId fd_class_;
  Tag tag_;
  MetricId m_started_;
  MetricId m_ballots_;
  MetricId m_decided_;
  MetricId h_latency_;  ///< propose() -> local decision (time-in-consensus)
  std::unordered_map<std::uint64_t, Instance> instances_;
  std::unordered_map<std::uint64_t, Bytes> decisions_;
  std::vector<DecideFn> decide_fns_;
  std::int64_t decided_count_ = 0;
};

}  // namespace gcs
