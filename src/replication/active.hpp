/// \file active.hpp
/// Active replication / state machine approach (paper §3.2.2, [Schneider]).
///
/// Every replica applies every command in the total order established by
/// the atomic broadcast. ActiveReplication is the textbook variant over
/// abcast; GenericActiveReplication exploits command semantics via generic
/// broadcast: commands in commutative classes skip consensus entirely —
/// the paper's bank-account argument (§4.2).
#pragma once

#include <functional>
#include <map>
#include <memory>

#include "core/stack.hpp"
#include "replication/state_machine.hpp"

namespace gcs::replication {

class ActiveReplication {
 public:
  using ResultFn = std::function<void(const Bytes& result)>;

  ActiveReplication(GcsStack& stack, std::unique_ptr<StateMachine> sm);

  /// Submit a command from this replica. \p on_result fires when the
  /// command has been applied locally (in total order) — i.e. it is
  /// committed at this replica.
  MsgId submit(Bytes command, ResultFn on_result = nullptr);

  StateMachine& state() { return *sm_; }
  std::uint64_t applied() const { return applied_; }

 private:
  GcsStack& stack_;
  std::unique_ptr<StateMachine> sm_;
  std::map<MsgId, ResultFn> pending_;
  std::uint64_t applied_ = 0;
};

/// Active replication over GENERIC broadcast: each command carries a
/// conflict class; commuting classes are delivered on the fast path.
/// Correctness requires that commands whose classes do not conflict truly
/// commute on the state machine.
class GenericActiveReplication {
 public:
  using ResultFn = std::function<void(const Bytes& result)>;

  GenericActiveReplication(GcsStack& stack, std::unique_ptr<StateMachine> sm);

  MsgId submit(MsgClass cls, Bytes command, ResultFn on_result = nullptr);

  StateMachine& state() { return *sm_; }
  std::uint64_t applied() const { return applied_; }

 private:
  GcsStack& stack_;
  std::unique_ptr<StateMachine> sm_;
  std::map<MsgId, ResultFn> pending_;
  std::uint64_t applied_ = 0;
};

}  // namespace gcs::replication
