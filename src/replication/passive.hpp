/// \file passive.hpp
/// Passive replication (primary-backup) over generic broadcast — the
/// paper's Figure 8 scenario and §3.2.3 conflict table.
///
/// The primary is the head of a rotating replica list. It handles client
/// requests and generic-broadcasts `update` messages (non-conflicting
/// class: updates commute with each other, so they take the fast path).
/// When a backup suspects the primary it generic-broadcasts a
/// `primary-change` message (conflicting class). The conflict relation
/// (§3.2.3) guarantees exactly two outcomes for a racing update/change
/// pair:
///   1. the update is delivered first: it commits under the old primary;
///   2. the primary-change is delivered first: the update, now carrying a
///      stale epoch, is IGNORED by every replica — the client times out
///      and reissues to the new primary.
/// A primary change does NOT exclude the old primary from the membership
/// (footnote 10); a truly crashed primary is removed much later by the
/// monitoring component.
///
/// The paper requires FIFO generic broadcast for updates; our generic
/// broadcast is unordered on the fast path, so this layer adds per-epoch
/// sequence numbers with a hold-back queue.
#pragma once

#include <deque>
#include <functional>
#include <map>
#include <memory>

#include "core/stack.hpp"
#include "replication/state_machine.hpp"

namespace gcs::replication {

class PassiveReplication {
 public:
  using ResultFn = std::function<void(bool committed, const Bytes& result)>;

  struct Config {
    /// Suspicion timeout for the primary (its own FD class). Aggressive
    /// values are fine: a false primary change costs one rotation, never an
    /// exclusion.
    Duration primary_suspect_timeout = msec(120);
    /// Automatically issue primary-change on suspicion. Disable to drive
    /// primary changes manually (tests, Fig 8 reproduction).
    bool auto_primary_change = true;
  };

  PassiveReplication(GcsStack& stack, std::unique_ptr<StateMachine> sm, Config config);
  PassiveReplication(GcsStack& stack, std::unique_ptr<StateMachine> sm);

  /// Handle a client request. Must be invoked on the current primary;
  /// other replicas report failure immediately (the client should retry at
  /// the primary). \p on_result fires with committed=true when the update
  /// is delivered under the issuing epoch, committed=false if it was
  /// preempted by a primary change (Fig 8, outcome 2).
  void handle_request(const Bytes& command, ResultFn on_result);

  /// Force a primary change now (Fig 8 reproduction / manual policies).
  void request_primary_change();

  bool is_primary() const { return primary() == stack_.self(); }
  ProcessId primary() const { return order_.empty() ? kNoProcess : order_.front(); }
  const std::vector<ProcessId>& replica_order() const { return order_; }
  std::uint64_t epoch() const { return epoch_; }

  StateMachine& state() { return *sm_; }
  std::uint64_t updates_applied() const { return updates_applied_; }
  std::uint64_t updates_ignored() const { return updates_ignored_; }
  std::uint64_t primary_changes() const { return primary_changes_; }

 private:
  void on_gdeliver(const MsgId& id, MsgClass cls, const Bytes& payload);
  void apply_update(std::uint64_t epoch, std::uint64_t seq, const MsgId& id,
                    const Bytes& command);
  void drain_holdback();
  void on_view(const View& v);
  void on_primary_suspect(ProcessId q);

  GcsStack& stack_;
  std::unique_ptr<StateMachine> sm_;
  Config config_;
  FailureDetector::ClassId fd_class_;

  std::vector<ProcessId> order_;  // rotating replica list; head = primary
  std::uint64_t epoch_ = 0;       // incremented per primary change
  bool change_pending_ = false;   // a primary-change we issued is in flight

  std::uint64_t next_update_seq_ = 0;           // primary side, per epoch
  std::uint64_t next_expected_seq_ = 0;         // backup side, per epoch
  std::map<std::uint64_t, std::pair<MsgId, Bytes>> holdback_;  // seq -> update
  std::map<MsgId, ResultFn> pending_;           // our in-flight updates

  std::uint64_t updates_applied_ = 0;
  std::uint64_t updates_ignored_ = 0;
  std::uint64_t primary_changes_ = 0;
};

}  // namespace gcs::replication
