/// \file state_machine.hpp
/// Deterministic state machines for replication (paper §3.2.2).
///
/// Commands and results are opaque byte strings; implementations must be
/// deterministic (same command sequence => same state and results) for
/// active replication to be correct.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "util/codec.hpp"
#include "util/types.hpp"

namespace gcs::replication {

class StateMachine {
 public:
  virtual ~StateMachine() = default;
  /// Apply a command, mutate state, return the response.
  virtual Bytes apply(const Bytes& command) = 0;
  /// Serialize full state (for state transfer to joiners).
  virtual Bytes snapshot() const = 0;
  /// Replace state from a snapshot.
  virtual void restore(const Bytes& snapshot) = 0;
};

/// The paper's §4.2 example: a bank account whose deposits commute (they
/// can ride generic broadcast's fast path) while withdrawals must be
/// totally ordered (a withdrawal may not exceed the balance).
class BankAccount final : public StateMachine {
 public:
  enum Op : std::uint8_t { kDeposit = 0, kWithdraw = 1, kBalance = 2 };

  static Bytes make_deposit(std::int64_t amount) {
    Encoder enc;
    enc.put_byte(kDeposit);
    enc.put_i64(amount);
    return enc.take();
  }
  static Bytes make_withdraw(std::int64_t amount) {
    Encoder enc;
    enc.put_byte(kWithdraw);
    enc.put_i64(amount);
    return enc.take();
  }
  static Bytes make_balance() {
    Encoder enc;
    enc.put_byte(kBalance);
    return enc.take();
  }
  /// Decode a response: (ok, value). For deposits/withdrawals value is the
  /// new balance; a failed withdrawal has ok = false.
  static std::pair<bool, std::int64_t> decode_result(const Bytes& result) {
    Decoder dec(result);
    const bool ok = dec.get_bool();
    const std::int64_t value = dec.get_i64();
    return {ok && dec.ok(), value};
  }

  Bytes apply(const Bytes& command) override {
    Decoder dec(command);
    const std::uint8_t op = dec.get_byte();
    Encoder out;
    switch (op) {
      case kDeposit: {
        const std::int64_t amount = dec.get_i64();
        balance_ += amount;
        out.put_bool(true);
        out.put_i64(balance_);
        break;
      }
      case kWithdraw: {
        const std::int64_t amount = dec.get_i64();
        if (amount <= balance_) {
          balance_ -= amount;
          out.put_bool(true);
        } else {
          out.put_bool(false);  // insufficient funds
        }
        out.put_i64(balance_);
        break;
      }
      case kBalance:
      default:
        out.put_bool(true);
        out.put_i64(balance_);
        break;
    }
    return out.take();
  }

  Bytes snapshot() const override {
    Encoder enc;
    enc.put_i64(balance_);
    return enc.take();
  }
  void restore(const Bytes& snapshot) override {
    Decoder dec(snapshot);
    balance_ = dec.get_i64();
  }

  std::int64_t balance() const { return balance_; }

 private:
  std::int64_t balance_ = 0;
};

/// A replicated key-value store (for examples and integration tests).
class KvStore final : public StateMachine {
 public:
  enum Op : std::uint8_t { kPut = 0, kGet = 1, kDel = 2 };

  static Bytes make_put(const std::string& key, const std::string& value) {
    Encoder enc;
    enc.put_byte(kPut);
    enc.put_string(key);
    enc.put_string(value);
    return enc.take();
  }
  static Bytes make_get(const std::string& key) {
    Encoder enc;
    enc.put_byte(kGet);
    enc.put_string(key);
    return enc.take();
  }
  static Bytes make_del(const std::string& key) {
    Encoder enc;
    enc.put_byte(kDel);
    enc.put_string(key);
    return enc.take();
  }
  /// (found, value)
  static std::pair<bool, std::string> decode_result(const Bytes& result) {
    Decoder dec(result);
    const bool found = dec.get_bool();
    std::string value = dec.get_string();
    return {found && dec.ok(), std::move(value)};
  }

  Bytes apply(const Bytes& command) override {
    Decoder dec(command);
    const std::uint8_t op = dec.get_byte();
    const std::string key = dec.get_string();
    Encoder out;
    switch (op) {
      case kPut: {
        std::string value = dec.get_string();
        data_[key] = std::move(value);
        out.put_bool(true);
        out.put_string(data_[key]);
        break;
      }
      case kGet: {
        auto it = data_.find(key);
        out.put_bool(it != data_.end());
        out.put_string(it != data_.end() ? it->second : "");
        break;
      }
      case kDel:
      default: {
        const bool existed = data_.erase(key) > 0;
        out.put_bool(existed);
        out.put_string("");
        break;
      }
    }
    return out.take();
  }

  Bytes snapshot() const override {
    Encoder enc;
    enc.put_u64(data_.size());
    for (const auto& [k, v] : data_) {
      enc.put_string(k);
      enc.put_string(v);
    }
    return enc.take();
  }
  void restore(const Bytes& snapshot) override {
    data_.clear();
    Decoder dec(snapshot);
    const std::uint64_t n = dec.get_u64();
    for (std::uint64_t i = 0; i < n && dec.ok(); ++i) {
      std::string k = dec.get_string();
      data_[std::move(k)] = dec.get_string();
    }
  }

  std::size_t size() const { return data_.size(); }
  const std::map<std::string, std::string>& data() const { return data_; }

 private:
  std::map<std::string, std::string> data_;
};

/// Trivial counter state machine (tests).
class Counter final : public StateMachine {
 public:
  Bytes apply(const Bytes& command) override {
    Decoder dec(command);
    count_ += dec.get_i64();
    Encoder out;
    out.put_i64(count_);
    return out.take();
  }
  Bytes snapshot() const override {
    Encoder enc;
    enc.put_i64(count_);
    return enc.take();
  }
  void restore(const Bytes& snapshot) override {
    Decoder dec(snapshot);
    count_ = dec.get_i64();
  }
  std::int64_t count() const { return count_; }

 private:
  std::int64_t count_ = 0;
};

}  // namespace gcs::replication
