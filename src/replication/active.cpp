#include "replication/active.hpp"

namespace gcs::replication {

ActiveReplication::ActiveReplication(GcsStack& stack, std::unique_ptr<StateMachine> sm)
    : stack_(stack), sm_(std::move(sm)) {
  stack_.on_adeliver([this](const MsgId& id, const Bytes& command) {
    Bytes result = sm_->apply(command);
    ++applied_;
    auto it = pending_.find(id);
    if (it != pending_.end()) {
      if (it->second) it->second(result);
      pending_.erase(it);
    }
  });
  // Joiners receive the machine state via the membership's state transfer.
  stack_.membership().set_snapshot_provider([this] { return sm_->snapshot(); });
  stack_.membership().set_snapshot_installer(
      [this](const Bytes& snapshot) { sm_->restore(snapshot); });
}

MsgId ActiveReplication::submit(Bytes command, ResultFn on_result) {
  const MsgId id = stack_.abcast(std::move(command));
  if (on_result) pending_.emplace(id, std::move(on_result));
  return id;
}

GenericActiveReplication::GenericActiveReplication(GcsStack& stack,
                                                   std::unique_ptr<StateMachine> sm)
    : stack_(stack), sm_(std::move(sm)) {
  stack_.on_gdeliver([this](const MsgId& id, MsgClass, const Bytes& command) {
    Bytes result = sm_->apply(command);
    ++applied_;
    auto it = pending_.find(id);
    if (it != pending_.end()) {
      if (it->second) it->second(result);
      pending_.erase(it);
    }
  });
  stack_.membership().set_snapshot_provider([this] { return sm_->snapshot(); });
  stack_.membership().set_snapshot_installer(
      [this](const Bytes& snapshot) { sm_->restore(snapshot); });
}

MsgId GenericActiveReplication::submit(MsgClass cls, Bytes command, ResultFn on_result) {
  const MsgId id = stack_.gbcast(cls, std::move(command));
  if (on_result) pending_.emplace(id, std::move(on_result));
  return id;
}

}  // namespace gcs::replication
