#include "replication/lock_service.hpp"

#include <algorithm>

namespace gcs::replication {

// ---------------------------------------------------------------------------
// LockTable
// ---------------------------------------------------------------------------

Bytes LockTable::make_acquire(const std::string& lock, const std::string& owner) {
  Encoder enc;
  enc.put_byte(kAcquire);
  enc.put_string(lock);
  enc.put_string(owner);
  return enc.take();
}

Bytes LockTable::make_release(const std::string& lock, const std::string& owner) {
  Encoder enc;
  enc.put_byte(kRelease);
  enc.put_string(lock);
  enc.put_string(owner);
  return enc.take();
}

Bytes LockTable::make_cleanup(const std::string& owner) {
  Encoder enc;
  enc.put_byte(kCleanup);
  enc.put_string("");
  enc.put_string(owner);
  return enc.take();
}

std::pair<bool, std::string> LockTable::decode_result(const Bytes& result) {
  Decoder dec(result);
  const bool granted = dec.get_bool();
  std::string holder = dec.get_string();
  return {granted && dec.ok(), std::move(holder)};
}

void LockTable::grant_front(const std::string& lock) {
  auto it = queues_.find(lock);
  if (it == queues_.end() || it->second.empty()) return;
  grant_log_.emplace_back(lock, it->second.front());
}

Bytes LockTable::apply(const Bytes& command) {
  Decoder dec(command);
  const std::uint8_t op = dec.get_byte();
  const std::string lock = dec.get_string();
  const std::string owner = dec.get_string();
  Encoder out;
  if (!dec.ok()) {
    out.put_bool(false);
    out.put_string("");
    return out.take();
  }
  switch (op) {
    case kAcquire: {
      auto& q = queues_[lock];
      if (std::find(q.begin(), q.end(), owner) == q.end()) {
        q.push_back(owner);
        if (q.size() == 1) grant_front(lock);  // free lock: immediate grant
      }
      out.put_bool(q.front() == owner);
      out.put_string(q.front());
      break;
    }
    case kRelease: {
      auto it = queues_.find(lock);
      if (it != queues_.end()) {
        auto& q = it->second;
        const bool was_holder = !q.empty() && q.front() == owner;
        q.erase(std::remove(q.begin(), q.end(), owner), q.end());
        if (was_holder) grant_front(lock);  // next in line takes over
        if (q.empty()) queues_.erase(it);
      }
      out.put_bool(true);
      out.put_string(holder(lock));
      break;
    }
    case kCleanup: {
      // Remove the owner everywhere; grant whatever it was holding.
      for (auto it = queues_.begin(); it != queues_.end();) {
        auto& q = it->second;
        const bool was_holder = !q.empty() && q.front() == owner;
        q.erase(std::remove(q.begin(), q.end(), owner), q.end());
        if (was_holder) grant_front(it->first);
        it = q.empty() ? queues_.erase(it) : ++it;
      }
      out.put_bool(true);
      out.put_string("");
      break;
    }
    default:
      out.put_bool(false);
      out.put_string("");
      break;
  }
  return out.take();
}

Bytes LockTable::snapshot() const {
  Encoder enc;
  enc.put_u64(queues_.size());
  for (const auto& [lock, q] : queues_) {
    enc.put_string(lock);
    enc.put_u64(q.size());
    for (const auto& owner : q) enc.put_string(owner);
  }
  enc.put_u64(grant_log_.size());
  for (const auto& [lock, owner] : grant_log_) {
    enc.put_string(lock);
    enc.put_string(owner);
  }
  return enc.take();
}

void LockTable::restore(const Bytes& snapshot) {
  queues_.clear();
  grant_log_.clear();
  Decoder dec(snapshot);
  const std::uint64_t locks = dec.get_u64();
  for (std::uint64_t i = 0; i < locks && dec.ok(); ++i) {
    const std::string lock = dec.get_string();
    const std::uint64_t len = dec.get_u64();
    auto& q = queues_[lock];
    for (std::uint64_t j = 0; j < len && dec.ok(); ++j) q.push_back(dec.get_string());
  }
  const std::uint64_t grants = dec.get_u64();
  for (std::uint64_t i = 0; i < grants && dec.ok(); ++i) {
    const std::string lock = dec.get_string();
    grant_log_.emplace_back(lock, dec.get_string());
  }
}

std::string LockTable::holder(const std::string& lock) const {
  auto it = queues_.find(lock);
  return (it == queues_.end() || it->second.empty()) ? "" : it->second.front();
}

std::size_t LockTable::queue_length(const std::string& lock) const {
  auto it = queues_.find(lock);
  return it == queues_.end() ? 0 : it->second.size();
}

// ---------------------------------------------------------------------------
// LockService
// ---------------------------------------------------------------------------

LockService::LockService(GcsStack& stack)
    : stack_(stack), owned_table_(std::make_unique<LockTable>()),
      tag_(owner_tag(stack.self())) {
  table_ = owned_table_.get();
  prev_members_ = stack_.view().members;
  stack_.on_adeliver([this](const MsgId&, const Bytes& command) {
    table_->apply(command);
    on_apply();
  });
  stack_.on_view([this](const View& v) { on_view(v); });
  stack_.membership().set_snapshot_provider([this] { return table_->snapshot(); });
  stack_.membership().set_snapshot_installer([this](const Bytes& s) {
    table_->restore(s);
    grants_seen_ = table_->grant_log().size();
  });
}

void LockService::acquire(const std::string& lock, GrantedFn on_granted) {
  if (holds(lock) || waiting_.count(lock)) return;
  waiting_[lock] = std::move(on_granted);
  stack_.abcast(LockTable::make_acquire(lock, tag_));
}

void LockService::release(const std::string& lock) {
  waiting_.erase(lock);
  stack_.abcast(LockTable::make_release(lock, tag_));
}

bool LockService::holds(const std::string& lock) const {
  return table_->holder(lock) == tag_;
}

void LockService::on_apply() {
  // Fire grant callbacks for every new grant aimed at us.
  const auto& log = table_->grant_log();
  while (grants_seen_ < log.size()) {
    const auto& [lock, owner] = log[grants_seen_++];
    if (owner != tag_) continue;
    auto it = waiting_.find(lock);
    if (it == waiting_.end()) continue;
    GrantedFn fn = std::move(it->second);
    waiting_.erase(it);
    if (fn) fn(lock);
  }
}

void LockService::on_view(const View& v) {
  // Crash cleanup: the view head submits one cleanup command per departed
  // member (deterministic single submitter; dedup at the table is a no-op
  // for absent owners anyway).
  for (ProcessId p : prev_members_) {
    if (!v.contains(p) && v.primary() == stack_.self()) {
      stack_.abcast(LockTable::make_cleanup(owner_tag(p)));
    }
  }
  prev_members_ = v.members;
}

}  // namespace gcs::replication
