/// \file lock_service.hpp
/// A replicated lock service — the classic group-communication application
/// (mutual exclusion via total order): acquire/release commands are
/// atomically broadcast, every replica replays the same queue transitions,
/// so the holder sequence of every lock is identical everywhere. When the
/// membership excludes a crashed holder, its locks are cleaned up and
/// granted onward.
#pragma once

#include <deque>
#include <functional>
#include <map>
#include <string>

#include "core/stack.hpp"
#include "replication/state_machine.hpp"

namespace gcs::replication {

/// The deterministic state machine: named FIFO lock queues.
class LockTable final : public StateMachine {
 public:
  enum Op : std::uint8_t { kAcquire = 0, kRelease = 1, kCleanup = 2 };

  static Bytes make_acquire(const std::string& lock, const std::string& owner);
  static Bytes make_release(const std::string& lock, const std::string& owner);
  /// Remove \p owner from every queue (crash cleanup).
  static Bytes make_cleanup(const std::string& owner);

  /// Result: (granted-to-requester now?, current holder).
  static std::pair<bool, std::string> decode_result(const Bytes& result);

  Bytes apply(const Bytes& command) override;
  Bytes snapshot() const override;
  void restore(const Bytes& snapshot) override;

  /// Current holder of \p lock ("" if free).
  std::string holder(const std::string& lock) const;
  std::size_t queue_length(const std::string& lock) const;

  /// Full grant history per lock (the mutual-exclusion audit trail):
  /// every holder in order. Identical at every replica.
  const std::vector<std::pair<std::string, std::string>>& grant_log() const {
    return grant_log_;
  }

 private:
  void grant_front(const std::string& lock);

  std::map<std::string, std::deque<std::string>> queues_;
  std::vector<std::pair<std::string, std::string>> grant_log_;  // (lock, owner)
};

/// Per-replica facade: submit lock operations, get grant notifications.
class LockService {
 public:
  /// Fired when OUR pending acquire reaches the front of the queue.
  using GrantedFn = std::function<void(const std::string& lock)>;

  explicit LockService(GcsStack& stack);

  /// Request the lock; on_granted fires (possibly much later) when we hold
  /// it. Re-acquiring a lock we already hold or wait for is a no-op.
  void acquire(const std::string& lock, GrantedFn on_granted);

  /// Release a lock we hold (or abandon our queue slot).
  void release(const std::string& lock);

  bool holds(const std::string& lock) const;
  const LockTable& table() const { return *table_; }
  const std::string& my_tag() const { return tag_; }

 private:
  void on_apply();
  void on_view(const View& v);
  static std::string owner_tag(ProcessId p) { return "p" + std::to_string(p); }

  GcsStack& stack_;
  LockTable* table_;  // owned via ActiveReplication-like wiring below
  std::unique_ptr<LockTable> owned_table_;
  std::string tag_;
  std::map<std::string, GrantedFn> waiting_;
  std::size_t grants_seen_ = 0;
  std::vector<ProcessId> prev_members_;
};

}  // namespace gcs::replication
