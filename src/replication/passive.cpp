#include "replication/passive.hpp"

#include <algorithm>

#include "util/codec.hpp"

namespace gcs::replication {

namespace {
// Payload kinds inside gbcast messages.
constexpr std::uint8_t kUpdate = 0;        // class kRbcastClass
constexpr std::uint8_t kPrimaryChange = 1; // class kAbcastClass
}  // namespace

PassiveReplication::PassiveReplication(GcsStack& stack, std::unique_ptr<StateMachine> sm)
    : PassiveReplication(stack, std::move(sm), Config{}) {}

PassiveReplication::PassiveReplication(GcsStack& stack, std::unique_ptr<StateMachine> sm,
                                       Config config)
    : stack_(stack), sm_(std::move(sm)), config_(config),
      fd_class_(stack.fd().add_class(config.primary_suspect_timeout)) {
  order_ = stack_.view().members;
  stack_.on_gdeliver([this](const MsgId& id, MsgClass cls, const Bytes& b) {
    on_gdeliver(id, cls, b);
  });
  stack_.on_view([this](const View& v) { on_view(v); });
  stack_.fd().on_suspect(fd_class_, [this](ProcessId q) { on_primary_suspect(q); });
  if (!order_.empty() && primary() != stack_.self()) {
    stack_.fd().monitor(fd_class_, primary());
  }
  stack_.membership().set_snapshot_provider([this] { return sm_->snapshot(); });
  stack_.membership().set_snapshot_installer(
      [this](const Bytes& snapshot) { sm_->restore(snapshot); });
}

void PassiveReplication::handle_request(const Bytes& command, ResultFn on_result) {
  if (!is_primary()) {
    // Not the primary: the client must retry at the right replica.
    if (on_result) on_result(false, {});
    return;
  }
  // The primary processes the request (deterministically re-executed by the
  // backups on update delivery) and broadcasts the update with its epoch.
  Encoder enc;
  enc.put_byte(kUpdate);
  enc.put_u64(epoch_);
  enc.put_u64(next_update_seq_++);
  enc.put_bytes(command);
  const MsgId id = stack_.gbcast(kRbcastClass, enc.take());
  if (on_result) pending_.emplace(id, std::move(on_result));
  stack_.metrics().inc("passive.requests_handled");
}

void PassiveReplication::request_primary_change() {
  if (change_pending_) return;
  change_pending_ = true;
  Encoder enc;
  enc.put_byte(kPrimaryChange);
  enc.put_u64(epoch_);
  enc.put_i32(primary());  // the primary being deposed
  stack_.gbcast(kAbcastClass, enc.take());
  stack_.metrics().inc("passive.primary_changes_requested");
}

void PassiveReplication::on_primary_suspect(ProcessId q) {
  if (!config_.auto_primary_change) return;
  if (q != primary() || is_primary()) return;
  request_primary_change();
}

void PassiveReplication::on_gdeliver(const MsgId& id, MsgClass /*cls*/, const Bytes& payload) {
  Decoder dec(payload);
  const std::uint8_t kind = dec.get_byte();
  const std::uint64_t msg_epoch = dec.get_u64();
  if (kind == kUpdate) {
    const std::uint64_t seq = dec.get_u64();
    Bytes command = dec.get_bytes();
    if (!dec.ok()) return;
    if (msg_epoch != epoch_) {
      // Fig 8, outcome 2: the primary change was delivered first; this
      // update belongs to a deposed primary and must be ignored.
      ++updates_ignored_;
      stack_.metrics().inc("passive.updates_ignored");
      auto it = pending_.find(id);
      if (it != pending_.end()) {
        if (it->second) it->second(false, {});
        pending_.erase(it);
      }
      return;
    }
    // FIFO within the epoch.
    holdback_.emplace(seq, std::make_pair(id, std::move(command)));
    drain_holdback();
  } else if (kind == kPrimaryChange) {
    if (!dec.ok() || msg_epoch != epoch_) return;  // stale change: ignored
    // Rotate the list: [s1; s2; s3] -> [s2; s3; s1] (footnote 10: the old
    // primary is NOT excluded).
    std::rotate(order_.begin(), order_.begin() + 1, order_.end());
    ++epoch_;
    ++primary_changes_;
    change_pending_ = false;
    next_update_seq_ = 0;
    next_expected_seq_ = 0;
    // Updates held back from the old epoch are now stale: fail them.
    for (auto& [seq, entry] : holdback_) {
      (void)seq;
      ++updates_ignored_;
      auto it = pending_.find(entry.first);
      if (it != pending_.end()) {
        if (it->second) it->second(false, {});
        pending_.erase(it);
      }
    }
    holdback_.clear();
    stack_.metrics().inc("passive.primary_changes_applied");
    // Re-point the failure detector at the new primary.
    if (!is_primary()) stack_.fd().monitor(fd_class_, primary());
  }
}

void PassiveReplication::drain_holdback() {
  while (!holdback_.empty() && holdback_.begin()->first == next_expected_seq_) {
    auto node = holdback_.extract(holdback_.begin());
    ++next_expected_seq_;
    const MsgId& id = node.mapped().first;
    Bytes result = sm_->apply(node.mapped().second);
    ++updates_applied_;
    stack_.metrics().inc("passive.updates_applied");
    auto it = pending_.find(id);
    if (it != pending_.end()) {
      if (it->second) it->second(true, result);
      pending_.erase(it);
    }
  }
}

void PassiveReplication::on_view(const View& v) {
  // Reconcile the rotation with the membership: drop departed replicas,
  // append joiners at the tail, preserving the current rotation prefix.
  std::vector<ProcessId> next;
  for (ProcessId p : order_) {
    if (v.contains(p)) next.push_back(p);
  }
  for (ProcessId p : v.members) {
    if (std::find(next.begin(), next.end(), p) == next.end()) next.push_back(p);
  }
  const ProcessId old_primary = primary();
  order_ = std::move(next);
  if (primary() != old_primary) {
    // The primary itself was excluded by the membership: epoch advances so
    // its in-flight updates die.
    ++epoch_;
    next_update_seq_ = 0;
    next_expected_seq_ = 0;
    holdback_.clear();
    change_pending_ = false;
  }
  if (!order_.empty() && !is_primary()) stack_.fd().monitor(fd_class_, primary());
}

}  // namespace gcs::replication
