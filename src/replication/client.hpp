/// \file client.hpp
/// Client access to replicated services (the missing half of Fig 8).
///
/// The paper's passive-replication scenario ends with: "The client will
/// timeout, learn that s2 is the new primary, and reissue its request."
/// This module implements that client, plus its active-replication
/// counterpart:
///
///   - Client: lives OUTSIDE the group (a universe process that is never a
///     member). Submits requests over the reliable channel, retries on
///     timeout, follows redirects to the current primary.
///   - ActiveService / PassiveService: server-side adapters that accept
///     remote requests, answer redirects, and give *exactly-once*
///     semantics through a replicated request cache: a retried request
///     whose original execution committed returns the cached result
///     instead of executing twice.
///
/// Exactly-once mechanics: commands travel through the group wrapped as
/// (client, request-id, command); CachingStateMachine applies the inner
/// command at most once per (client, request-id) and caches the result —
/// deterministically, so any replica (e.g. a new primary) can answer a
/// retry of a command committed under its predecessor.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>

#include "channel/reliable_channel.hpp"
#include "replication/passive.hpp"
#include "replication/state_machine.hpp"
#include "sim/context.hpp"
#include "transport/sim_transport.hpp"

namespace gcs::replication {

/// Deterministic exactly-once wrapper: commands are (client, request-id,
/// inner-command) triples; duplicates return the cached result without
/// re-executing. The cache is part of the replicated state (snapshots
/// include it), so it is identical at every replica.
class CachingStateMachine final : public StateMachine {
 public:
  explicit CachingStateMachine(std::unique_ptr<StateMachine> inner)
      : inner_(std::move(inner)) {}

  static Bytes wrap(ProcessId client, std::uint64_t request_id, const Bytes& command);

  Bytes apply(const Bytes& wrapped) override;
  Bytes snapshot() const override;
  void restore(const Bytes& snapshot) override;

  /// Cached result for a (client, request) pair, if it committed already.
  std::optional<Bytes> cached(ProcessId client, std::uint64_t request_id) const;

  StateMachine& inner() { return *inner_; }
  std::uint64_t duplicates_suppressed() const { return duplicates_; }

 private:
  std::unique_ptr<StateMachine> inner_;
  std::map<std::pair<ProcessId, std::uint64_t>, Bytes> cache_;
  std::uint64_t duplicates_ = 0;
};

/// Server-side adapter: remote clients drive an actively replicated state
/// machine. Any replica accepts requests.
class ActiveService {
 public:
  ActiveService(GcsStack& stack, std::unique_ptr<StateMachine> sm);

  StateMachine& state() { return machine_.inner(); }
  CachingStateMachine& caching_machine() { return machine_; }
  std::uint64_t applied() const { return applied_; }

 private:
  void on_request(ProcessId client, BytesView payload);
  void on_adeliver(const Bytes& wrapped);
  void reply(ProcessId client, std::uint64_t request_id, const Bytes& result);

  GcsStack& stack_;
  CachingStateMachine machine_;
  // Requests this replica received and must answer once applied.
  std::set<std::pair<ProcessId, std::uint64_t>> waiting_;
  std::uint64_t applied_ = 0;
};

/// Server-side adapter for passive replication: only the primary executes,
/// backups send redirects (so the client "learns that s2 is the new
/// primary" — Fig 8).
class PassiveService {
 public:
  PassiveService(GcsStack& stack, std::unique_ptr<StateMachine> sm,
                 PassiveReplication::Config config = {});

  PassiveReplication& replication() { return *passive_; }
  StateMachine& state();
  CachingStateMachine& caching_machine();

 private:
  void on_request(ProcessId client, BytesView payload);
  void reply(ProcessId client, std::uint64_t request_id, bool ok, const Bytes& result);
  void redirect(ProcessId client, std::uint64_t request_id);

  GcsStack& stack_;
  CachingStateMachine* machine_;  // owned by passive_
  std::unique_ptr<PassiveReplication> passive_;
  std::set<std::pair<ProcessId, std::uint64_t>> executing_;
};

/// Client proxy: submits commands, retries on timeout, follows redirects.
class Client {
 public:
  struct Config {
    /// Give up on a replica after this long and try the next one (or the
    /// redirect target) — the "client will timeout" of Fig 8.
    Duration request_timeout = msec(150);
    /// Total attempts before reporting failure.
    int max_attempts = 10;
  };

  /// Completion: ok=false only after max_attempts exhausted.
  using DoneFn = std::function<void(bool ok, const Bytes& result)>;

  Client(sim::Context& ctx, sim::Network& network, std::vector<ProcessId> replicas,
         Config config);
  Client(sim::Context& ctx, sim::Network& network, std::vector<ProcessId> replicas);

  /// Submit a command.
  void submit(Bytes command, DoneFn done);

  std::uint64_t retries() const { return retries_; }
  std::uint64_t redirects_followed() const { return redirects_followed_; }

 private:
  struct PendingRequest {
    Bytes command;
    DoneFn done;
    int attempts = 0;
    ProcessId target = kNoProcess;
    sim::TimerId timer = sim::kNoTimer;
  };

  void attempt(std::uint64_t request_id);
  void on_message(ProcessId from, BytesView payload);

  sim::Context& ctx_;
  SimTransport transport_;
  ReliableChannel channel_;
  std::vector<ProcessId> replicas_;
  Config config_;
  std::size_t next_replica_ = 0;
  std::uint64_t next_request_id_ = 0;
  std::map<std::uint64_t, PendingRequest> pending_;
  std::uint64_t retries_ = 0;
  std::uint64_t redirects_followed_ = 0;
};

}  // namespace gcs::replication
