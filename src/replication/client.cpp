#include "replication/client.hpp"

#include "util/codec.hpp"

namespace gcs::replication {

namespace {
// Channel messages on Tag::kApp between clients and service replicas.
constexpr std::uint8_t kRequest = 0;
constexpr std::uint8_t kResponse = 1;
constexpr std::uint8_t kRedirect = 2;
}  // namespace

// ---------------------------------------------------------------------------
// CachingStateMachine
// ---------------------------------------------------------------------------

Bytes CachingStateMachine::wrap(ProcessId client, std::uint64_t request_id,
                                const Bytes& command) {
  Encoder enc;
  enc.put_i32(client);
  enc.put_u64(request_id);
  enc.put_bytes(command);
  return enc.take();
}

Bytes CachingStateMachine::apply(const Bytes& wrapped) {
  Decoder dec(wrapped);
  const ProcessId client = dec.get_i32();
  const std::uint64_t request_id = dec.get_u64();
  const Bytes command = dec.get_bytes();
  if (!dec.ok()) return {};
  const auto key = std::make_pair(client, request_id);
  auto it = cache_.find(key);
  if (it != cache_.end()) {
    // Retried command that already committed: at-most-once execution.
    ++duplicates_;
    return it->second;
  }
  Bytes result = inner_->apply(command);
  cache_.emplace(key, result);
  return result;
}

Bytes CachingStateMachine::snapshot() const {
  Encoder enc;
  enc.put_u64(cache_.size());
  for (const auto& [key, result] : cache_) {
    enc.put_i32(key.first);
    enc.put_u64(key.second);
    enc.put_bytes(result);
  }
  enc.put_bytes(inner_->snapshot());
  return enc.take();
}

void CachingStateMachine::restore(const Bytes& snapshot) {
  Decoder dec(snapshot);
  cache_.clear();
  const std::uint64_t n = dec.get_u64();
  for (std::uint64_t i = 0; i < n && dec.ok(); ++i) {
    const ProcessId client = dec.get_i32();
    const std::uint64_t request_id = dec.get_u64();
    cache_[std::make_pair(client, request_id)] = dec.get_bytes();
  }
  inner_->restore(dec.get_bytes());
}

std::optional<Bytes> CachingStateMachine::cached(ProcessId client,
                                                 std::uint64_t request_id) const {
  auto it = cache_.find(std::make_pair(client, request_id));
  if (it == cache_.end()) return std::nullopt;
  return it->second;
}

// ---------------------------------------------------------------------------
// ActiveService
// ---------------------------------------------------------------------------

ActiveService::ActiveService(GcsStack& stack, std::unique_ptr<StateMachine> sm)
    : stack_(stack), machine_(std::move(sm)) {
  stack_.channel().subscribe(Tag::kApp, [this](ProcessId client, BytesView b) {
    on_request(client, b);
  });
  stack_.on_adeliver([this](const MsgId&, const Bytes& wrapped) { on_adeliver(wrapped); });
  stack_.membership().set_snapshot_provider([this] { return machine_.snapshot(); });
  stack_.membership().set_snapshot_installer(
      [this](const Bytes& snapshot) { machine_.restore(snapshot); });
}

void ActiveService::on_request(ProcessId client, BytesView payload) {
  Decoder dec(payload);
  if (dec.get_byte() != kRequest) return;
  const std::uint64_t request_id = dec.get_u64();
  const Bytes command = dec.get_bytes();
  if (!dec.ok()) return;
  const auto key = std::make_pair(client, request_id);
  if (auto cached = machine_.cached(client, request_id)) {
    reply(client, request_id, *cached);  // committed earlier: serve the cache
    return;
  }
  if (!waiting_.insert(key).second) return;  // in flight; reply comes later
  stack_.abcast(CachingStateMachine::wrap(client, request_id, command));
  stack_.metrics().inc("service.requests_accepted");
}

void ActiveService::on_adeliver(const Bytes& wrapped) {
  Decoder dec(wrapped);
  const ProcessId client = dec.get_i32();
  const std::uint64_t request_id = dec.get_u64();
  if (!dec.ok()) return;
  const Bytes result = machine_.apply(wrapped);
  ++applied_;
  const auto key = std::make_pair(client, request_id);
  if (waiting_.erase(key) > 0) reply(client, request_id, result);
}

void ActiveService::reply(ProcessId client, std::uint64_t request_id, const Bytes& result) {
  Encoder enc;
  enc.put_byte(kResponse);
  enc.put_u64(request_id);
  enc.put_bool(true);
  enc.put_bytes(result);
  stack_.channel().send(client, Tag::kApp, enc.take());
}

// ---------------------------------------------------------------------------
// PassiveService
// ---------------------------------------------------------------------------

PassiveService::PassiveService(GcsStack& stack, std::unique_ptr<StateMachine> sm,
                               PassiveReplication::Config config)
    : stack_(stack) {
  auto caching = std::make_unique<CachingStateMachine>(std::move(sm));
  machine_ = caching.get();
  passive_ = std::make_unique<PassiveReplication>(stack, std::move(caching), config);
  stack_.channel().subscribe(Tag::kApp, [this](ProcessId client, BytesView b) {
    on_request(client, b);
  });
}

StateMachine& PassiveService::state() { return machine_->inner(); }
CachingStateMachine& PassiveService::caching_machine() { return *machine_; }

void PassiveService::on_request(ProcessId client, BytesView payload) {
  Decoder dec(payload);
  if (dec.get_byte() != kRequest) return;
  const std::uint64_t request_id = dec.get_u64();
  const Bytes command = dec.get_bytes();
  if (!dec.ok()) return;
  if (auto cached = machine_->cached(client, request_id)) {
    // Committed — possibly under a previous primary. Serve the cache.
    reply(client, request_id, true, *cached);
    return;
  }
  if (!passive_->is_primary()) {
    redirect(client, request_id);
    return;
  }
  const auto key = std::make_pair(client, request_id);
  if (!executing_.insert(key).second) return;  // duplicate while in flight
  stack_.metrics().inc("service.requests_accepted");
  passive_->handle_request(
      CachingStateMachine::wrap(client, request_id, command),
      [this, client, request_id, key](bool committed, const Bytes& result) {
        executing_.erase(key);
        if (committed) {
          reply(client, request_id, true, result);
        } else {
          // Preempted by a primary change (Fig 8, outcome 2): point the
          // client at the new primary so it can reissue.
          redirect(client, request_id);
        }
      });
}

void PassiveService::reply(ProcessId client, std::uint64_t request_id, bool ok,
                           const Bytes& result) {
  Encoder enc;
  enc.put_byte(kResponse);
  enc.put_u64(request_id);
  enc.put_bool(ok);
  enc.put_bytes(result);
  stack_.channel().send(client, Tag::kApp, enc.take());
}

void PassiveService::redirect(ProcessId client, std::uint64_t request_id) {
  Encoder enc;
  enc.put_byte(kRedirect);
  enc.put_u64(request_id);
  enc.put_i32(passive_->primary());
  stack_.channel().send(client, Tag::kApp, enc.take());
  stack_.metrics().inc("service.redirects_sent");
}

// ---------------------------------------------------------------------------
// Client
// ---------------------------------------------------------------------------

Client::Client(sim::Context& ctx, sim::Network& network, std::vector<ProcessId> replicas)
    : Client(ctx, network, std::move(replicas), Config{}) {}

Client::Client(sim::Context& ctx, sim::Network& network, std::vector<ProcessId> replicas,
               Config config)
    : ctx_(ctx), transport_(ctx, network), channel_(ctx, transport_),
      replicas_(std::move(replicas)), config_(config) {
  channel_.subscribe(Tag::kApp,
                     [this](ProcessId from, BytesView b) { on_message(from, b); });
}

void Client::submit(Bytes command, DoneFn done) {
  const std::uint64_t request_id = next_request_id_++;
  PendingRequest req;
  req.command = std::move(command);
  req.done = std::move(done);
  req.target = replicas_[next_replica_ % replicas_.size()];
  pending_.emplace(request_id, std::move(req));
  attempt(request_id);
}

void Client::attempt(std::uint64_t request_id) {
  auto it = pending_.find(request_id);
  if (it == pending_.end()) return;
  PendingRequest& req = it->second;
  if (req.attempts >= config_.max_attempts) {
    DoneFn done = std::move(req.done);
    pending_.erase(it);
    if (done) done(false, {});
    return;
  }
  ++req.attempts;
  if (req.attempts > 1) ++retries_;
  Encoder enc;
  enc.put_byte(kRequest);
  enc.put_u64(request_id);
  enc.put_bytes(req.command);
  channel_.send(req.target, Tag::kApp, enc.take());
  // Arm the retry timer: on timeout, rotate to the next replica.
  req.timer = ctx_.after(config_.request_timeout, [this, request_id] {
    auto pit = pending_.find(request_id);
    if (pit == pending_.end()) return;
    next_replica_ = (next_replica_ + 1) % replicas_.size();
    pit->second.target = replicas_[next_replica_];
    attempt(request_id);
  });
}

void Client::on_message(ProcessId /*from*/, BytesView payload) {
  Decoder dec(payload);
  const std::uint8_t kind = dec.get_byte();
  const std::uint64_t request_id = dec.get_u64();
  auto it = pending_.find(request_id);
  if (it == pending_.end() || !dec.ok()) return;
  if (kind == kResponse) {
    const bool ok = dec.get_bool();
    Bytes result = dec.get_bytes();
    if (!dec.ok()) return;
    ctx_.cancel(it->second.timer);
    DoneFn done = std::move(it->second.done);
    pending_.erase(it);
    if (done) done(ok, result);
  } else if (kind == kRedirect) {
    const ProcessId primary = dec.get_i32();
    if (!dec.ok()) return;
    ++redirects_followed_;
    ctx_.cancel(it->second.timer);
    if (primary >= 0) it->second.target = primary;
    attempt(request_id);
  }
}

}  // namespace gcs::replication
