/// \file failure_detector.hpp
/// Heartbeat failure detector with independent timeout classes.
///
/// The paper (§3.3.2) requires the *same* failure-detection component to
/// serve two very different customers:
///   - consensus, which wants aggressive (seconds-scale) timeouts and can
///     tolerate an unbounded number of false suspicions (◇S), and
///   - monitoring, which wants conservative (minutes-scale) timeouts
///     because its suspicions lead to exclusion from the membership.
///
/// A *timeout class* is a (timeout, monitored-set, callbacks) triple; each
/// class forms its own suspected set over the shared stream of heartbeats.
/// Suspicions are revoked (on_restore) when a heartbeat from a suspected
/// process arrives — the eventually-strong (◇S) pattern.
#pragma once

#include <functional>
#include <set>
#include <vector>

#include "sim/context.hpp"
#include "transport/transport.hpp"

namespace gcs {

class FailureDetector {
 public:
  using ClassId = int;
  using SuspectFn = std::function<void(ProcessId)>;

  struct Config {
    Duration heartbeat_interval = msec(10);
  };

  FailureDetector(sim::Context& ctx, Transport& transport, Config config);
  FailureDetector(sim::Context& ctx, Transport& transport);

  /// Start emitting heartbeats and checking timeouts. Idempotent.
  void start();
  /// Stop heartbeating (used when a process leaves the group voluntarily).
  void stop();

  /// Create a timeout class. Suspicion fires when no heartbeat from a
  /// monitored process has been seen for \p timeout.
  ClassId add_class(Duration timeout);

  /// Adjust a class's timeout (e.g. adaptive policies).
  void set_timeout(ClassId cls, Duration timeout);

  /// Switch a class to an ADAPTIVE timeout (Chen-style): per monitored
  /// process, the timeout becomes
  ///     ewma(inter-arrival) + safety_factor * ewma(|jitter|) + slack
  /// clamped to [floor, ceiling]. Adapts to real link behaviour instead of
  /// guessing — the practical way to get §4.3's aggressive-but-rarely-wrong
  /// suspicions.
  void enable_adaptive(ClassId cls, double safety_factor, Duration slack,
                       Duration floor, Duration ceiling);

  /// Effective timeout the class currently applies to \p q.
  Duration effective_timeout(ClassId cls, ProcessId q) const;
  Duration timeout(ClassId cls) const { return classes_[static_cast<std::size_t>(cls)].timeout; }

  /// Start/stop monitoring q in a class (Fig 9: start_stop_monitor).
  void monitor(ClassId cls, ProcessId q);
  void unmonitor(ClassId cls, ProcessId q);
  void monitor_group(ClassId cls, const std::vector<ProcessId>& group);

  bool suspects(ClassId cls, ProcessId q) const;
  std::vector<ProcessId> suspected(ClassId cls) const;

  /// Callbacks fire on suspicion transitions (Fig 9: suspect).
  void on_suspect(ClassId cls, SuspectFn fn);
  void on_restore(ClassId cls, SuspectFn fn);

  /// Testing/benchmark hook: force an (incorrect) suspicion now. The next
  /// heartbeat restores it, exactly like a naturally occurring mistake.
  void inject_suspicion(ClassId cls, ProcessId q);

  /// Number of false suspicions observed (suspicions later restored).
  std::int64_t false_suspicions() const { return false_suspicions_; }

 private:
  struct TimeoutClass {
    Duration timeout;
    std::set<ProcessId> monitored;
    std::set<ProcessId> suspected;
    std::vector<SuspectFn> suspect_fns;
    std::vector<SuspectFn> restore_fns;
    // Adaptive mode.
    bool adaptive = false;
    double safety_factor = 2.0;
    Duration slack = 0;
    Duration floor = 0;
    Duration ceiling = 0;
  };

  struct ArrivalStats {
    double ewma_interval = 0;  // microseconds
    double ewma_jitter = 0;    // mean absolute deviation
    bool primed = false;
  };

  void on_heartbeat(ProcessId from);
  void heartbeat_tick();
  void check_tick();
  void mark_suspected(ClassId cls, ProcessId q);

  sim::Context& ctx_;
  Transport& transport_;
  Config config_;
  bool running_ = false;
  std::vector<TimePoint> last_heard_;
  std::vector<ArrivalStats> arrivals_;
  std::vector<TimeoutClass> classes_;
  std::int64_t false_suspicions_ = 0;
};

}  // namespace gcs
