#include "fd/failure_detector.hpp"

#include <cassert>
#include <cmath>

namespace gcs {

FailureDetector::FailureDetector(sim::Context& ctx, Transport& transport)
    : FailureDetector(ctx, transport, Config{}) {}

FailureDetector::FailureDetector(sim::Context& ctx, Transport& transport, Config config)
    : ctx_(ctx), transport_(transport), config_(config),
      last_heard_(static_cast<std::size_t>(transport.universe_size()), 0),
      arrivals_(static_cast<std::size_t>(transport.universe_size())) {
  transport_.subscribe(Tag::kFd,
                       [this](ProcessId from, BytesView) { on_heartbeat(from); });
}

void FailureDetector::start() {
  if (running_) return;
  running_ = true;
  // Grace period: everyone counts as freshly heard at start time.
  for (auto& t : last_heard_) t = ctx_.now();
  heartbeat_tick();
  check_tick();
}

void FailureDetector::stop() { running_ = false; }

FailureDetector::ClassId FailureDetector::add_class(Duration timeout) {
  classes_.push_back(TimeoutClass{timeout, {}, {}, {}, {}});
  return static_cast<ClassId>(classes_.size() - 1);
}

void FailureDetector::set_timeout(ClassId cls, Duration timeout) {
  classes_[static_cast<std::size_t>(cls)].timeout = timeout;
}

void FailureDetector::enable_adaptive(ClassId cls, double safety_factor, Duration slack,
                                      Duration floor, Duration ceiling) {
  auto& c = classes_[static_cast<std::size_t>(cls)];
  c.adaptive = true;
  c.safety_factor = safety_factor;
  c.slack = slack;
  c.floor = floor;
  c.ceiling = ceiling;
}

Duration FailureDetector::effective_timeout(ClassId cls, ProcessId q) const {
  const auto& c = classes_[static_cast<std::size_t>(cls)];
  if (!c.adaptive) return c.timeout;
  const auto& stats = arrivals_[static_cast<std::size_t>(q)];
  if (!stats.primed) return c.ceiling > 0 ? c.ceiling : c.timeout;
  const double t = stats.ewma_interval + c.safety_factor * stats.ewma_jitter +
                   static_cast<double>(c.slack);
  auto clamped = static_cast<Duration>(t);
  if (clamped < c.floor) clamped = c.floor;
  if (c.ceiling > 0 && clamped > c.ceiling) clamped = c.ceiling;
  return clamped;
}

void FailureDetector::monitor(ClassId cls, ProcessId q) {
  if (q == ctx_.self()) return;  // never monitor self
  classes_[static_cast<std::size_t>(cls)].monitored.insert(q);
}

void FailureDetector::unmonitor(ClassId cls, ProcessId q) {
  auto& c = classes_[static_cast<std::size_t>(cls)];
  c.monitored.erase(q);
  c.suspected.erase(q);
}

void FailureDetector::monitor_group(ClassId cls, const std::vector<ProcessId>& group) {
  for (ProcessId q : group) monitor(cls, q);
}

bool FailureDetector::suspects(ClassId cls, ProcessId q) const {
  const auto& c = classes_[static_cast<std::size_t>(cls)];
  return c.suspected.count(q) != 0;
}

std::vector<ProcessId> FailureDetector::suspected(ClassId cls) const {
  const auto& c = classes_[static_cast<std::size_t>(cls)];
  return {c.suspected.begin(), c.suspected.end()};
}

void FailureDetector::on_suspect(ClassId cls, SuspectFn fn) {
  classes_[static_cast<std::size_t>(cls)].suspect_fns.push_back(std::move(fn));
}

void FailureDetector::on_restore(ClassId cls, SuspectFn fn) {
  classes_[static_cast<std::size_t>(cls)].restore_fns.push_back(std::move(fn));
}

void FailureDetector::inject_suspicion(ClassId cls, ProcessId q) {
  mark_suspected(cls, q);
}

void FailureDetector::on_heartbeat(ProcessId from) {
  auto& stats = arrivals_[static_cast<std::size_t>(from)];
  const TimePoint prev = last_heard_[static_cast<std::size_t>(from)];
  if (prev > 0) {
    const double interval = static_cast<double>(ctx_.now() - prev);
    if (!stats.primed) {
      stats.ewma_interval = interval;
      stats.primed = true;
    } else {
      const double err = interval - stats.ewma_interval;
      stats.ewma_interval += 0.125 * err;                       // alpha 1/8
      stats.ewma_jitter += 0.25 * (std::abs(err) - stats.ewma_jitter);  // beta 1/4
    }
  }
  last_heard_[static_cast<std::size_t>(from)] = ctx_.now();
  for (std::size_t i = 0; i < classes_.size(); ++i) {
    auto& c = classes_[i];
    if (c.suspected.erase(from) > 0) {
      // The process was alive after all: the suspicion was false.
      ++false_suspicions_;
      ctx_.metrics().inc("fd.false_suspicions");
      ctx_.trace_instant(obs::Names::get().fd_restore, MsgId{}, from);
      for (const auto& fn : c.restore_fns) fn(from);
    }
  }
}

void FailureDetector::heartbeat_tick() {
  if (!running_) return;
  const int n = transport_.universe_size();
  for (ProcessId q = 0; q < n; ++q) {
    if (q != ctx_.self()) transport_.u_send(q, Tag::kFd, {});
  }
  ctx_.after(config_.heartbeat_interval, [this] { heartbeat_tick(); });
}

void FailureDetector::check_tick() {
  if (!running_) return;
  for (std::size_t i = 0; i < classes_.size(); ++i) {
    auto& c = classes_[i];
    for (ProcessId q : c.monitored) {
      if (c.suspected.count(q)) continue;
      if (ctx_.now() - last_heard_[static_cast<std::size_t>(q)] >
          effective_timeout(static_cast<ClassId>(i), q)) {
        mark_suspected(static_cast<ClassId>(i), q);
      }
    }
  }
  ctx_.after(config_.heartbeat_interval, [this] { check_tick(); });
}

void FailureDetector::mark_suspected(ClassId cls, ProcessId q) {
  auto& c = classes_[static_cast<std::size_t>(cls)];
  if (!c.monitored.count(q) || c.suspected.count(q)) return;
  c.suspected.insert(q);
  ctx_.metrics().inc("fd.suspicions");
  ctx_.trace_instant(obs::Names::get().fd_suspect, MsgId{}, q);
  if (ctx_.log().enabled(LogLevel::kDebug)) {
    ctx_.log().debug("suspect p" + std::to_string(q) + " (class " +
                     std::to_string(cls) + ")");
  }
  for (const auto& fn : c.suspect_fns) fn(q);
}

}  // namespace gcs
