/// \file bench_e5_viewchange.cpp
/// E5 — §4.4: sender blocking during view changes.
///
/// A process joins the group mid-stream while every member keeps sending.
/// The traditional VS layer implements SENDING view delivery: it must block
/// all senders for the whole flush. The new architecture implements SAME
/// view delivery for free (a view change is just another totally ordered
/// message), so senders never block. We measure, around the join:
///   - sender blocked time (directly, traditional only),
///   - the worst send->deliver latency ("throughput dip"),
///   - the number of sends that had to be queued.
#include <memory>

#include "bench/bench_util.hpp"
#include "traditional/gmvs_stack.hpp"

namespace gcs::bench {
namespace {

constexpr Duration kSendGap = msec(1);
constexpr int kProcs = 5;  // 4 initial members + 1 joiner

struct JoinStats {
  Duration blocked_time = 0;
  Duration worst_latency = 0;
  Duration baseline_latency = 0;  // worst latency well before the join
  std::int64_t queued_sends = 0;
  bool join_ok = false;
};

JoinStats run_traditional(std::uint64_t seed) {
  sim::Engine engine;
  sim::Network network(engine, kProcs, sim::LinkModel{}, seed);
  traditional::GmVsStack::Config cfg;
  std::vector<std::unique_ptr<traditional::GmVsStack>> stacks;
  for (ProcessId p = 0; p < kProcs; ++p) {
    stacks.push_back(
        std::make_unique<traditional::GmVsStack>(engine, network, p, seed, cfg));
  }
  std::map<MsgId, TimePoint> sent_at;
  Duration worst_after = 0, worst_before = 0;
  const TimePoint join_time = msec(200);
  stacks[1]->on_adeliver([&](const MsgId& id, const Bytes&) {
    auto it = sent_at.find(id);
    if (it == sent_at.end()) return;
    const Duration lat = engine.now() - it->second;
    if (it->second >= join_time - msec(20)) {
      worst_after = std::max(worst_after, lat);
    } else {
      worst_before = std::max(worst_before, lat);
    }
  });
  for (ProcessId p = 0; p < 4; ++p) {
    stacks[static_cast<std::size_t>(p)]->init_view({0, 1, 2, 3});
    stacks[static_cast<std::size_t>(p)]->start();
  }
  int sent = 0;
  std::function<void()> tick = [&] {
    if (engine.now() > join_time + sec(1)) return;
    sent_at[stacks[static_cast<std::size_t>(1 + sent % 3)]->abcast(payload_of(sent))] =
        engine.now();
    ++sent;
    engine.schedule_after(kSendGap, tick);
  };
  engine.schedule_after(0, tick);
  engine.schedule_at(join_time, [&] {
    stacks[4]->request_join(0);
    stacks[4]->start();
  });
  engine.run_until(join_time + sec(3));
  JoinStats s;
  s.blocked_time = stacks[1]->total_blocked_time();
  s.worst_latency = worst_after;
  s.baseline_latency = worst_before;
  s.queued_sends = stacks[1]->metrics().counter("gmvs.sends_blocked") +
                   stacks[2]->metrics().counter("gmvs.sends_blocked") +
                   stacks[3]->metrics().counter("gmvs.sends_blocked");
  s.join_ok = stacks[4]->is_member();
  return s;
}

JoinStats run_new(std::uint64_t seed) {
  World::Config config;
  config.n = kProcs;
  config.seed = seed;
  World world(config);
  OracleScope oracle(world, "e5/join");
  std::map<MsgId, TimePoint> sent_at;
  Duration worst_after = 0, worst_before = 0;
  const TimePoint join_time = msec(200);
  world.stack(1).on_adeliver([&](const MsgId& id, const Bytes&) {
    auto it = sent_at.find(id);
    if (it == sent_at.end()) return;
    const Duration lat = world.engine().now() - it->second;
    if (it->second >= join_time - msec(20)) {
      worst_after = std::max(worst_after, lat);
    } else {
      worst_before = std::max(worst_before, lat);
    }
  });
  world.found_group({0, 1, 2, 3});
  int sent = 0;
  std::function<void()> tick = [&] {
    if (world.engine().now() > join_time + sec(1)) return;
    sent_at[world.stack(static_cast<ProcessId>(1 + sent % 3)).abcast(payload_of(sent))] =
        world.engine().now();
    ++sent;
    world.engine().schedule_after(kSendGap, tick);
  };
  world.engine().schedule_after(0, tick);
  world.engine().schedule_at(join_time, [&] { world.stack(4).join(0); });
  world.engine().run_until(join_time + sec(3));
  JoinStats s;
  s.blocked_time = 0;  // the new stack has no blocking machinery at all
  s.worst_latency = worst_after;
  s.baseline_latency = worst_before;
  s.queued_sends = 0;
  s.join_ok = world.stack(4).membership().is_member();
  return s;
}

}  // namespace
}  // namespace gcs::bench

int main(int argc, char** argv) {
  using namespace gcs;
  using namespace gcs::bench;
  oracle_setup(argc, argv);
  banner("E5: view-change blocking (paper §4.4)",
         "a joiner arrives at t=200ms while 3 members send 1 msg/ms each;\n"
         "sending view delivery (traditional) vs same view delivery (new)");

  Table table({"stack", "join ok", "sender blocked (ms)", "sends queued",
               "worst latency around join (ms)", "baseline worst (ms)"});
  const auto tr = run_traditional(17);
  const auto nw = run_new(17);
  table.add_row({"traditional (GM+VS, flush)", tr.join_ok ? "yes" : "NO",
                 fmt_ms(tr.blocked_time), fmt_int(tr.queued_sends), fmt_ms(tr.worst_latency),
                 fmt_ms(tr.baseline_latency)});
  table.add_row({"new AB-GB (membership on top)", nw.join_ok ? "yes" : "NO", fmt_ms(nw.blocked_time),
                 fmt_int(nw.queued_sends), fmt_ms(nw.worst_latency),
                 fmt_ms(nw.baseline_latency)});
  table.print();
  std::printf(
      "\nReading: the traditional flush blocks every sender for the whole view\n"
      "change and queues their messages; the new architecture never blocks —\n"
      "its worst latency around the join stays at the baseline, because a\n"
      "view change is just one more message in the total order.\n");
  return oracle_verdict();
}
