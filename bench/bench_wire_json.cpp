/// \file bench_wire_json.cpp
/// Bytes-on-wire report for the ordering layers (DESIGN.md §12): runs the
/// E6-style abcast workload and an E3-style generic-broadcast workload
/// under both proposal wire formats and emits BENCH_wire.json with, per
/// cell, the bytes the consensus tag actually carried per delivered
/// message. The slim format keeps application payloads out of consensus
/// proposals and GB resolution reports, so its consensus traffic should be
/// independent of payload size — that is the claim this report measures.
///
/// This translation unit replaces global operator new/delete with counting
/// versions (same idiom as bench_e7_micro), which also powers the GB
/// fast-path steady-state allocation check: after warm-up, a commutative
/// gbcast workload must not grow the heap per delivery (pooled wire
/// buffers, recycled map nodes). The check failing flips the exit status.
///
///   ./bench/bench_wire_json [--json=PATH]   (default BENCH_wire.json)
#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <new>
#include <string>
#include <vector>

#include "bench/bench_util.hpp"

// --------------------------------------------------------------------------
// Counting allocator (see bench_e7_micro.cpp for the rationale).
// --------------------------------------------------------------------------

namespace {
std::atomic<std::uint64_t> g_allocs{0};
std::atomic<std::uint64_t> g_frees{0};

struct AllocSnapshot {
  std::uint64_t allocs;
  std::uint64_t frees;
};

AllocSnapshot alloc_snapshot() {
  return {g_allocs.load(std::memory_order_relaxed), g_frees.load(std::memory_order_relaxed)};
}

void* counted_alloc(std::size_t size) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}

void* counted_aligned_alloc(std::size_t size, std::size_t align) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  const std::size_t rounded = (size + align - 1) / align * align;
  if (void* p = std::aligned_alloc(align, rounded ? rounded : align)) return p;
  throw std::bad_alloc();
}

void counted_free(void* p) noexcept {
  if (!p) return;
  g_frees.fetch_add(1, std::memory_order_relaxed);
  std::free(p);
}
}  // namespace

void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }
void* operator new(std::size_t size, std::align_val_t align) {
  return counted_aligned_alloc(size, static_cast<std::size_t>(align));
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return counted_aligned_alloc(size, static_cast<std::size_t>(align));
}
void operator delete(void* p) noexcept { counted_free(p); }
void operator delete[](void* p) noexcept { counted_free(p); }
void operator delete(void* p, std::size_t) noexcept { counted_free(p); }
void operator delete[](void* p, std::size_t) noexcept { counted_free(p); }
void operator delete(void* p, std::align_val_t) noexcept { counted_free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { counted_free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept { counted_free(p); }
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept { counted_free(p); }

namespace gcs::bench {
namespace {

const char* format_name(WireFormat f) {
  return f == WireFormat::kSlim ? "slim" : "legacy";
}

Bytes sized_payload(int i, std::size_t bytes) {
  std::string s = "m" + std::to_string(i) + ":";
  s.resize(bytes, 'x');
  return Bytes(s.begin(), s.end());
}

std::int64_t sum_counter(World& world, int n, const std::string& name) {
  std::int64_t total = 0;
  for (ProcessId p = 0; p < n; ++p) total += world.stack(p).metrics().counter(name);
  return total;
}

/// One measured (layer, n, payload, format) cell of the report.
struct Cell {
  std::string layer;  // "abcast" or "gbcast"
  int n = 0;
  std::size_t payload_bytes = 0;
  WireFormat format = WireFormat::kSlim;
  std::int64_t delivered = 0;            // deliveries summed over processes
  std::int64_t consensus_wire_bytes = 0; // what rides the consensus tag
  std::int64_t consensus_wire_msgs = 0;
  std::int64_t flood_wire_bytes = 0;     // rbcast / gbdata payload flooding
  std::int64_t pull_wire_bytes = 0;      // abcast/gbcast channel fallback
  std::uint64_t net_allocs = 0;          // heap growth across the whole run
  bool completed = false;

  double per_delivered(std::int64_t bytes) const {
    return delivered > 0 ? static_cast<double>(bytes) / static_cast<double>(delivered) : 0.0;
  }
  std::int64_t total_wire_bytes() const {
    return consensus_wire_bytes + flood_wire_bytes + pull_wire_bytes;
  }
  double allocs_per_delivered() const {
    return delivered > 0 ? static_cast<double>(net_allocs) / static_cast<double>(delivered)
                         : 0.0;
  }
};

constexpr int kMsgs = 150;
constexpr Duration kGap = msec(1);

/// E6-style abcast workload: every member sends in round-robin at a steady
/// rate; the cell records what each wire tag carried until everyone
/// delivered everything.
Cell run_abcast_cell(int n, std::size_t payload_bytes, WireFormat format) {
  Cell cell;
  cell.layer = "abcast";
  cell.n = n;
  cell.payload_bytes = payload_bytes;
  cell.format = format;

  World::Config config;
  config.n = n;
  config.seed = 101 + static_cast<std::uint64_t>(n);
  config.stack.wire_format = format;
  World world(config);
  OracleScope oracle(world, std::string("wire/abcast/") + format_name(format));
  std::vector<int> delivered(static_cast<std::size_t>(n), 0);
  for (ProcessId p = 0; p < n; ++p) {
    world.stack(p).on_adeliver([&delivered, p](const MsgId&, const Bytes&) {
      ++delivered[static_cast<std::size_t>(p)];
    });
  }
  world.found_group_all();
  world.run_for(msec(20));

  const AllocSnapshot a0 = alloc_snapshot();
  int sent = 0;
  std::function<void()> tick = [&] {
    if (sent >= kMsgs) return;
    world.stack(static_cast<ProcessId>(sent % n)).abcast(sized_payload(sent, payload_bytes));
    ++sent;
    world.engine().schedule_after(kGap, tick);
  };
  world.engine().schedule_after(0, tick);
  cell.completed = drive(world.engine(), sec(120), [&] {
    for (int d : delivered) {
      if (d < kMsgs) return false;
    }
    return true;
  });
  world.run_for(msec(200));
  const AllocSnapshot a1 = alloc_snapshot();

  cell.delivered = sum_counter(world, n, "abcast.delivered");
  cell.consensus_wire_bytes = sum_counter(world, n, "consensus.wire_bytes");
  cell.consensus_wire_msgs = sum_counter(world, n, "consensus.wire_msgs");
  cell.flood_wire_bytes = sum_counter(world, n, "rbcast.wire_bytes");
  cell.pull_wire_bytes = sum_counter(world, n, "abcast.wire_bytes");
  cell.net_allocs = (a1.allocs - a0.allocs) - (a1.frees - a0.frees);
  return cell;
}

/// E3-style gbcast workload with a 25% conflicting mix, so both the fast
/// path and the resolution reports (which ride consensus) are on the wire.
Cell run_gbcast_cell(int n, std::size_t payload_bytes, WireFormat format) {
  Cell cell;
  cell.layer = "gbcast";
  cell.n = n;
  cell.payload_bytes = payload_bytes;
  cell.format = format;

  World::Config config;
  config.n = n;
  config.seed = 211 + static_cast<std::uint64_t>(n);
  config.stack.wire_format = format;
  World world(config);
  OracleScope oracle(world, std::string("wire/gbcast/") + format_name(format));
  std::vector<int> delivered(static_cast<std::size_t>(n), 0);
  for (ProcessId p = 0; p < n; ++p) {
    world.stack(p).on_gdeliver([&delivered, p](const MsgId&, MsgClass, const Bytes&) {
      ++delivered[static_cast<std::size_t>(p)];
    });
  }
  world.found_group_all();
  world.run_for(msec(20));

  Rng rng(7);
  int sent = 0;
  std::function<void()> tick = [&] {
    if (sent >= kMsgs) return;
    const MsgClass cls = rng.chance(0.25) ? kAbcastClass : kRbcastClass;
    world.stack(static_cast<ProcessId>(sent % n)).gbcast(cls, sized_payload(sent, payload_bytes));
    ++sent;
    world.engine().schedule_after(kGap, tick);
  };
  world.engine().schedule_after(0, tick);
  cell.completed = drive(world.engine(), sec(120), [&] {
    for (int d : delivered) {
      if (d < kMsgs) return false;
    }
    return true;
  });
  world.run_for(msec(200));

  cell.delivered = sum_counter(world, n, "gbcast.fast_delivered") +
                   sum_counter(world, n, "gbcast.resolved_delivered");
  cell.consensus_wire_bytes = sum_counter(world, n, "consensus.wire_bytes");
  cell.consensus_wire_msgs = sum_counter(world, n, "consensus.wire_msgs");
  cell.flood_wire_bytes = sum_counter(world, n, "gbdata.wire_bytes");
  cell.pull_wire_bytes = sum_counter(world, n, "gbcast.wire_bytes");
  return cell;
}

/// GB fast-path steady-state allocation check: a purely commutative
/// workload after warm-up must not grow the heap — wire buffers come from
/// the pool, dedup/store map nodes are freed as fast as they are made.
/// The budget of 1 net allocation per delivery absorbs the engine's and
/// metrics' amortized growth (vector doublings, timing-wheel spill) while
/// still catching a per-message leak or an unpooled encode path.
struct FastPathCheck {
  std::int64_t deliveries = 0;
  std::int64_t net_allocs = 0;
  bool passed = false;

  double net_per_delivery() const {
    return deliveries > 0 ? static_cast<double>(net_allocs) / static_cast<double>(deliveries)
                          : 0.0;
  }
};

FastPathCheck run_fastpath_alloc_check() {
  const int n = 3;
  World::Config config;
  config.n = n;
  config.seed = 307;
  config.stack.wire_format = WireFormat::kSlim;
  // Steady state needs the bounded-memory machinery running: stability
  // gossip prunes the rbcast dedup index, and the warm-up below pushes
  // more messages than GenericBroadcast's retired-payload cap so the
  // retire ring is evicting (not growing) when the measurement starts.
  config.stack.stability_interval = msec(20);
  World world(config);
  std::int64_t delivered = 0;
  for (ProcessId p = 0; p < n; ++p) {
    world.stack(p).on_gdeliver([&delivered](const MsgId&, MsgClass, const Bytes&) {
      ++delivered;
    });
  }
  world.found_group_all();
  world.run_for(msec(20));

  constexpr int kWarmup = 400;
  constexpr int kMeasured = 400;
  int sent = 0;
  std::function<void()> tick = [&] {
    if (sent >= kWarmup + kMeasured) return;
    world.stack(static_cast<ProcessId>(sent % n)).gbcast(kRbcastClass, sized_payload(sent, 256));
    ++sent;
    world.engine().schedule_after(kGap, tick);
  };
  world.engine().schedule_after(0, tick);
  drive(world.engine(), sec(60), [&] { return delivered >= std::int64_t{kWarmup} * n; });
  world.run_for(msec(100));  // drain in-flight acks so the pool is primed

  const std::int64_t base = delivered;
  const AllocSnapshot a0 = alloc_snapshot();
  drive(world.engine(), sec(60),
        [&] { return delivered >= std::int64_t{kWarmup + kMeasured} * n; });
  world.run_for(msec(100));
  const AllocSnapshot a1 = alloc_snapshot();

  FastPathCheck check;
  check.deliveries = delivered - base;
  check.net_allocs = static_cast<std::int64_t>(a1.allocs - a0.allocs) -
                     static_cast<std::int64_t>(a1.frees - a0.frees);
  // The warm-up drain keeps the ticker running, so part of the nominal
  // kMeasured budget lands before the base snapshot; demand a minimum
  // window rather than the full count.
  check.passed = check.deliveries >= std::int64_t{kMeasured} * n / 2 &&
                 check.net_per_delivery() < 1.0;
  return check;
}

int run_suite(const std::string& json_path) {
  banner("wire path — bytes on the wire per delivered message",
         "E6-style abcast and E3-style gbcast workloads under the slim\n"
         "(id-only) and legacy (payload-inline) proposal formats; the\n"
         "consensus column is the cost the slim format exists to cut");

  std::vector<Cell> cells;
  for (const int n : {3, 5, 7}) {
    for (const std::size_t payload : {std::size_t{64}, std::size_t{1024}, std::size_t{8192}}) {
      for (const WireFormat format : {WireFormat::kSlim, WireFormat::kLegacy}) {
        cells.push_back(run_abcast_cell(n, payload, format));
      }
    }
  }
  for (const WireFormat format : {WireFormat::kSlim, WireFormat::kLegacy}) {
    cells.push_back(run_gbcast_cell(7, 1024, format));
  }

  Table table({"layer", "n", "payload", "format", "delivered", "consensus B/msg",
               "flood B/msg", "pull B/msg"});
  for (const Cell& c : cells) {
    table.add_row({c.layer, std::to_string(c.n), std::to_string(c.payload_bytes),
                   format_name(c.format), std::to_string(c.delivered),
                   fmt_double(c.per_delivered(c.consensus_wire_bytes), 1),
                   fmt_double(c.per_delivered(c.flood_wire_bytes), 1),
                   fmt_double(c.per_delivered(c.pull_wire_bytes), 1)});
  }
  table.print();

  const FastPathCheck fastpath = run_fastpath_alloc_check();
  std::printf("\n  gb fast-path steady state: %lld deliveries, net allocs %lld (%.3f/delivery) — %s\n",
              static_cast<long long>(fastpath.deliveries),
              static_cast<long long>(fastpath.net_allocs), fastpath.net_per_delivery(),
              fastpath.passed ? "OK" : "FAILED");

  std::FILE* out = std::fopen(json_path.c_str(), "w");
  if (!out) {
    std::fprintf(stderr, "cannot open %s for writing\n", json_path.c_str());
    return 1;
  }
  std::fprintf(out, "{\n  \"suite\": \"wire\",\n  \"schema\": 1,\n  \"cells\": [\n");
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const Cell& c = cells[i];
    std::fprintf(
        out,
        "    {\"layer\": \"%s\", \"n\": %d, \"payload_bytes\": %zu, \"format\": \"%s\",\n"
        "     \"completed\": %s, \"delivered\": %lld,\n"
        "     \"consensus_wire_bytes\": %lld, \"consensus_wire_msgs\": %lld,\n"
        "     \"flood_wire_bytes\": %lld, \"pull_wire_bytes\": %lld,\n"
        "     \"consensus_bytes_per_delivered\": %s, \"total_bytes_per_delivered\": %s,\n"
        "     \"net_allocs_per_delivered\": %s}%s\n",
        c.layer.c_str(), c.n, c.payload_bytes, format_name(c.format),
        c.completed ? "true" : "false", static_cast<long long>(c.delivered),
        static_cast<long long>(c.consensus_wire_bytes),
        static_cast<long long>(c.consensus_wire_msgs),
        static_cast<long long>(c.flood_wire_bytes), static_cast<long long>(c.pull_wire_bytes),
        json_num(c.per_delivered(c.consensus_wire_bytes)).c_str(),
        json_num(c.per_delivered(c.total_wire_bytes())).c_str(),
        json_num(c.allocs_per_delivered()).c_str(), i + 1 < cells.size() ? "," : "");
  }
  std::fprintf(out,
               "  ],\n  \"fastpath_alloc_check\": {\"layer\": \"gbcast\", \"deliveries\": %lld, "
               "\"net_allocs\": %lld, \"net_allocs_per_delivery\": %s, \"passed\": %s}\n}\n",
               static_cast<long long>(fastpath.deliveries),
               static_cast<long long>(fastpath.net_allocs),
               json_num(fastpath.net_per_delivery()).c_str(), fastpath.passed ? "true" : "false");
  std::fclose(out);
  std::printf("\n  wrote %s\n", json_path.c_str());

  bool all_completed = true;
  for (const Cell& c : cells) all_completed = all_completed && c.completed;
  if (!all_completed) std::fprintf(stderr, "some cells did not finish within budget\n");
  return (fastpath.passed && all_completed) ? 0 : 1;
}

}  // namespace
}  // namespace gcs::bench

int main(int argc, char** argv) {
  std::string json_path = "BENCH_wire.json";
  gcs::bench::oracle_setup(argc, argv);
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--json=", 7) == 0) json_path = argv[i] + 7;
  }
  const int rc = gcs::bench::run_suite(json_path);
  const int oracle_rc = gcs::bench::oracle_verdict();
  return rc != 0 ? rc : oracle_rc;
}
