/// \file bench_util.hpp
/// Shared helpers for the experiment benchmarks (E1..E7).
///
/// Experiments run under VIRTUAL time: latencies and throughputs reported
/// in the tables are simulation-time quantities, which is what makes the
/// runs deterministic and the comparisons fair (identical link models,
/// identical workloads, identical seeds).
#pragma once

#include <cstdio>
#include <cstdlib>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "core/stack.hpp"
#include "obs/oracle.hpp"
#include "util/metrics.hpp"

namespace gcs::bench {

inline Bytes payload_of(int i) {
  const std::string s = "msg-" + std::to_string(i);
  return Bytes(s.begin(), s.end());
}

/// Drive the engine until \p done or \p budget virtual time passed.
inline bool drive(sim::Engine& engine, Duration budget, const std::function<bool()>& done) {
  const TimePoint deadline = engine.now() + budget;
  while (!done()) {
    if (engine.now() > deadline) return false;
    if (!engine.step()) return done();
  }
  return true;
}

/// Pretty table printer: fixed-width columns from string cells.
class Table {
 public:
  explicit Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

  void add_row(std::vector<std::string> cells) { rows_.push_back(std::move(cells)); }

  void print() const {
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
    for (const auto& row : rows_) {
      for (std::size_t c = 0; c < row.size() && c < widths.size(); ++c) {
        widths[c] = std::max(widths[c], row[c].size());
      }
    }
    auto print_row = [&](const std::vector<std::string>& row) {
      std::printf("  ");
      for (std::size_t c = 0; c < row.size(); ++c) {
        std::printf("%-*s  ", static_cast<int>(widths[c]), row[c].c_str());
      }
      std::printf("\n");
    };
    print_row(headers_);
    std::vector<std::string> rule;
    for (auto w : widths) rule.push_back(std::string(w, '-'));
    print_row(rule);
    for (const auto& row : rows_) print_row(row);
  }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

inline std::string fmt_ms(double us_value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", us_value / 1000.0);
  return buf;
}
inline std::string fmt_ms(Duration us_value) { return fmt_ms(static_cast<double>(us_value)); }
inline std::string fmt_int(std::int64_t v) { return std::to_string(v); }
inline std::string fmt_pct(double fraction) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.0f%%", fraction * 100.0);
  return buf;
}
inline std::string fmt_double(double v, int digits = 2) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, v);
  return buf;
}

inline void banner(const std::string& title, const std::string& subtitle) {
  std::printf("\n=== %s ===\n%s\n\n", title.c_str(), subtitle.c_str());
}

/// ---- protocol-oracle gating (--oracle / NGGCS_BENCH_ORACLE=1) -------------
///
/// Benchmarks measure; the oracle certifies. Off by default, so the
/// measured hot path pays nothing beyond one null check per tap. When
/// enabled, every World wrapped in an OracleScope runs under obs::Oracle;
/// online safety violations are printed and flip the bench's exit status
/// to nonzero (CI's oracle sweep). Bench workloads routinely end
/// mid-flight, so only the online properties are checked — there is no
/// finalize-time agreement pass here.
struct OracleGate {
  static bool& enabled() {
    static bool on = std::getenv("NGGCS_BENCH_ORACLE") != nullptr;
    return on;
  }
  static int& violated_runs() {
    static int n = 0;
    return n;
  }
};

/// Call first thing in main(): recognizes --oracle.
inline void oracle_setup(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--oracle") OracleGate::enabled() = true;
  }
}

/// Call last in main(): per-process verdict, 1 iff any checked run violated.
inline int oracle_verdict() {
  if (!OracleGate::enabled()) return 0;
  if (OracleGate::violated_runs() > 0) {
    std::printf("\n[oracle] %d run(s) violated protocol safety\n",
                OracleGate::violated_runs());
    return 1;
  }
  std::printf("\n[oracle] all checked runs clean\n");
  return 0;
}

/// RAII oracle attachment for one World; construct right after the World
/// (so the scope dies first) and before found_group()/join(). Pass
/// check=false for deliberately unsafe ablations (e.g. E8's sub-2n/3 fast
/// quorum) whose violations are the point, not a failure.
class OracleScope {
 public:
  OracleScope(World& world, std::string label, bool check = true)
      : label_(std::move(label)) {
    if (!OracleGate::enabled() || !check) return;
    oracle_ = std::make_unique<obs::Oracle>();
    world.attach_oracle(*oracle_);
  }
  ~OracleScope() {
    if (!oracle_ || oracle_->passed()) return;
    ++OracleGate::violated_runs();
    std::printf("[oracle] VIOLATIONS in %s:\n%s", label_.c_str(),
                oracle_->summary().c_str());
  }

  OracleScope(const OracleScope&) = delete;
  OracleScope& operator=(const OracleScope&) = delete;

 private:
  std::string label_;
  std::unique_ptr<obs::Oracle> oracle_;
};

/// Escape a string for embedding in a JSON document (BENCH_*.json reports).
inline std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Format a double for JSON: fixed with enough digits for ns-scale values,
/// trailing zeros trimmed.
inline std::string json_num(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.4f", v);
  std::string s = buf;
  while (s.size() > 1 && s.back() == '0') s.pop_back();
  if (!s.empty() && s.back() == '.') s.pop_back();
  return s;
}

}  // namespace gcs::bench
