/// \file bench_e1_architectures.cpp
/// E1 — Architecture comparison (paper Figs 1–5 vs Figs 6/7/9).
///
/// Runs the SAME failure-free atomic-broadcast workload over:
///   - isis-like      traditional GM+VS below a fixed sequencer (Figs 1/2)
///   - totem-like     traditional GM+VS below a rotating token   (Figs 3/4)
///   - new AB-GB      atomic broadcast on ◇S consensus, membership on top
///                    (Figs 6/7/9)
/// and reports per-architecture delivery latency and message cost. The
/// paper makes no absolute performance claim here; the point of the table
/// is that the new architecture provides the same total-order service with
/// ONE ordering mechanism and no membership below it (cf. E6).
#include <memory>

#include "bench/bench_util.hpp"
#include "traditional/gmvs_stack.hpp"

namespace gcs::bench {
namespace {

constexpr int kProcs = 4;
constexpr int kMessages = 200;
constexpr Duration kGap = msec(2);  // inter-send gap per sender

struct RunStats {
  Histogram latency;
  std::int64_t net_messages = 0;
  std::int64_t net_bytes = 0;
  std::int64_t consensus_instances = 0;
  Duration elapsed = 0;
};

/// Workload: kMessages messages round-robin across senders, one every kGap.
template <typename Broadcast>
RunStats run_workload(sim::Engine& engine, sim::Network& network, Broadcast&& send,
                      const std::function<std::size_t()>& delivered_at_p0,
                      const std::function<std::int64_t()>& consensus_count) {
  RunStats stats;
  const TimePoint start = engine.now();
  std::vector<TimePoint> sent_at;
  int sent = 0;
  // Interleaved send loop driven by the engine itself.
  std::function<void()> tick = [&] {
    if (sent >= kMessages) return;
    sent_at.push_back(engine.now());
    send(sent % kProcs, payload_of(sent));
    ++sent;
    engine.schedule_after(kGap, tick);
  };
  engine.schedule_after(0, tick);
  const auto base_msgs = network.metrics().counter("net.sent");
  const auto base_bytes = network.metrics().counter("net.bytes_sent");
  drive(engine, sec(120), [&] { return delivered_at_p0() >= kMessages; });
  stats.elapsed = engine.now() - start;
  // Subtract the FD heartbeat background (kProcs*(kProcs-1) datagrams per
  // 10ms across the run) so the message column reflects protocol cost.
  const double heartbeats = static_cast<double>(kProcs) * (kProcs - 1) *
                            (static_cast<double>(stats.elapsed) / static_cast<double>(msec(10)));
  stats.net_messages = network.metrics().counter("net.sent") - base_msgs -
                       static_cast<std::int64_t>(heartbeats);
  if (stats.net_messages < 0) stats.net_messages = 0;
  stats.net_bytes = network.metrics().counter("net.bytes_sent") - base_bytes;
  stats.consensus_instances = consensus_count();
  (void)sent_at;
  return stats;
}

RunStats run_new_arch() {
  World::Config config;
  config.n = kProcs;
  config.seed = 11;
  World world(config);
  OracleScope oracle(world, "e1/new_arch");
  Histogram latency;
  std::map<MsgId, TimePoint> sent_time;
  std::size_t delivered = 0;
  world.stack(0).on_adeliver([&](const MsgId& id, const Bytes&) {
    ++delivered;
    auto it = sent_time.find(id);
    if (it != sent_time.end()) latency.add(world.engine().now() - it->second);
  });
  world.found_group_all();
  auto stats = run_workload(
      world.engine(), world.network(),
      [&](int p, Bytes payload) {
        const MsgId id = world.stack(static_cast<ProcessId>(p)).abcast(std::move(payload));
        sent_time[id] = world.engine().now();
      },
      [&] { return delivered; },
      [&] { return world.stack(0).consensus().instances_decided(); });
  stats.latency = latency;
  return stats;
}

RunStats run_traditional(traditional::GmVsStack::Ordering ordering) {
  sim::Engine engine;
  sim::Network network(engine, kProcs, sim::LinkModel{}, 11);
  traditional::GmVsStack::Config cfg;
  cfg.ordering = ordering;
  std::vector<std::unique_ptr<traditional::GmVsStack>> stacks;
  Histogram latency;
  std::map<MsgId, TimePoint> sent_time;
  std::size_t delivered = 0;
  for (ProcessId p = 0; p < kProcs; ++p) {
    stacks.push_back(std::make_unique<traditional::GmVsStack>(engine, network, p, 11, cfg));
  }
  stacks[0]->on_adeliver([&](const MsgId& id, const Bytes&) {
    ++delivered;
    auto it = sent_time.find(id);
    if (it != sent_time.end()) latency.add(engine.now() - it->second);
  });
  std::vector<ProcessId> all;
  for (ProcessId p = 0; p < kProcs; ++p) all.push_back(p);
  for (auto& s : stacks) {
    s->init_view(all);
    s->start();
  }
  auto stats = run_workload(
      engine, network,
      [&](int p, Bytes payload) {
        const MsgId id = stacks[static_cast<std::size_t>(p)]->abcast(std::move(payload));
        sent_time[id] = engine.now();
      },
      [&] { return delivered; },
      [&] { return stacks[0]->metrics().counter("consensus.decided"); });
  stats.latency = latency;
  return stats;
}

}  // namespace
}  // namespace gcs::bench

int main(int argc, char** argv) {
  using namespace gcs;
  using namespace gcs::bench;
  oracle_setup(argc, argv);
  banner("E1: architecture comparison (paper Figs 1-5 vs Figs 6/7/9)",
         "identical failure-free workload: " + std::to_string(kMessages) +
             " abcasts over 4 processes, one per 2ms per sender; virtual-time metrics");

  struct Row {
    std::string name;
    RunStats stats;
  };
  std::vector<Row> rows;
  rows.push_back({"isis-like (GM+VS+sequencer)", run_traditional(gcs::traditional::GmVsStack::Ordering::kSequencer)});
  rows.push_back({"totem-like (GM+VS+token)", run_traditional(gcs::traditional::GmVsStack::Ordering::kToken)});
  rows.push_back({"new AB-GB (consensus-based)", run_new_arch()});

  Table table({"architecture", "lat p50 (ms)", "lat p99 (ms)", "lat mean (ms)",
               "net msgs/abcast", "net KB/abcast", "consensus inst."});
  for (auto& [name, s] : rows) {
    table.add_row({name, fmt_ms(s.latency.percentile(50)), fmt_ms(s.latency.percentile(99)),
                   fmt_ms(s.latency.mean()),
                   fmt_double(static_cast<double>(s.net_messages) / kMessages, 1),
                   fmt_double(static_cast<double>(s.net_bytes) / 1024.0 / kMessages, 2),
                   fmt_int(s.consensus_instances)});
  }
  table.print();
  std::printf(
      "\nReading: all three deliver the same total order in a failure-free run.\n"
      "The sequencer is the latency floor (2 hops); the consensus-based new\n"
      "architecture pays more messages for NOT needing membership below it —\n"
      "the benefit shows under failures (E4) and view changes (E5).\n");
  return oracle_verdict();
}
