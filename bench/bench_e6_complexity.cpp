/// \file bench_e6_complexity.cpp
/// E6 — §4.1: where is the ordering problem solved, and how often?
///
/// The paper's structural claim: traditional architectures solve ordering
/// in THREE places (the abcast protocol for messages, the membership for
/// views, the VS flush for messages-vs-views), while the new architecture
/// solves it ONCE (the consensus sequence under atomic broadcast; views and
/// generic-broadcast resolutions are just messages inside that order).
///
/// We run an identical churn workload (traffic + a join + a crash) on each
/// stack and count the invocations of every ordering mechanism.
#include <memory>

#include "bench/bench_util.hpp"
#include "traditional/gmvs_stack.hpp"

namespace gcs::bench {
namespace {

constexpr int kProcs = 5;  // 4 members + 1 joiner
constexpr int kMessages = 100;

struct Counts {
  std::int64_t orderer_assignments = 0;  // sequencer/token seq assignments
  std::int64_t flush_rounds = 0;         // VS flushes (trad only)
  std::int64_t consensus_instances = 0;  // consensus decisions
  std::int64_t view_changes = 0;
  int mechanisms = 0;                    // distinct ordering mechanisms used
};

Counts run_traditional(traditional::GmVsStack::Ordering ordering) {
  sim::Engine engine;
  sim::Network network(engine, kProcs, sim::LinkModel{}, 23);
  traditional::GmVsStack::Config cfg;
  cfg.ordering = ordering;
  cfg.suspect_timeout = msec(300);
  std::vector<std::unique_ptr<traditional::GmVsStack>> stacks;
  for (ProcessId p = 0; p < kProcs; ++p) {
    stacks.push_back(std::make_unique<traditional::GmVsStack>(engine, network, p, 23, cfg));
  }
  for (ProcessId p = 0; p < 4; ++p) {
    stacks[static_cast<std::size_t>(p)]->init_view({0, 1, 2, 3});
    stacks[static_cast<std::size_t>(p)]->start();
  }
  int sent = 0;
  std::function<void()> tick = [&] {
    if (sent >= kMessages) return;
    stacks[static_cast<std::size_t>(1 + sent % 3)]->abcast(payload_of(sent));
    ++sent;
    engine.schedule_after(msec(2), tick);
  };
  engine.schedule_after(0, tick);
  engine.schedule_at(msec(60), [&] {
    stacks[4]->request_join(1);
    stacks[4]->start();
  });
  engine.schedule_at(msec(120), [&] { stacks[3]->crash(); });
  engine.run_until(sec(5));
  Counts c;
  // Sequence numbers are assigned wherever the sequencer/token happens to
  // be: sum over all processes. Flushes and consensus instances are
  // group-wide events: count them at one survivor.
  for (auto& s : stacks) {
    c.orderer_assignments +=
        s->metrics().counter("seq.assigned") + s->metrics().counter("token.assigned");
  }
  auto& m1 = stacks[1]->metrics();
  c.flush_rounds = m1.counter("gmvs.flushes_started");
  c.consensus_instances = m1.counter("consensus.decided");
  c.view_changes = static_cast<std::int64_t>(stacks[1]->view_changes());
  c.mechanisms = 3;  // orderer + flush + membership consensus
  return c;
}

Counts run_new() {
  World::Config config;
  config.n = kProcs;
  config.seed = 23;
  config.stack.monitoring.exclusion_timeout = msec(700);
  World world(config);
  OracleScope oracle(world, "e6/new_arch");
  world.found_group({0, 1, 2, 3});
  int sent = 0;
  std::function<void()> tick = [&] {
    if (sent >= kMessages) return;
    world.stack(static_cast<ProcessId>(1 + sent % 3)).abcast(payload_of(sent));
    ++sent;
    world.engine().schedule_after(msec(2), tick);
  };
  world.engine().schedule_after(0, tick);
  world.engine().schedule_at(msec(60), [&] { world.stack(4).join(1); });
  world.engine().schedule_at(msec(120), [&] { world.crash(3); });
  world.engine().run_until(sec(5));
  Counts c;
  c.orderer_assignments = 0;
  c.flush_rounds = 0;
  c.consensus_instances = world.stack(1).consensus().instances_decided();
  c.view_changes =
      static_cast<std::int64_t>(world.stack(1).membership().views_installed()) - 1;
  c.mechanisms = 1;  // consensus, full stop
  return c;
}

}  // namespace
}  // namespace gcs::bench

int main(int argc, char** argv) {
  using namespace gcs;
  using namespace gcs::bench;
  oracle_setup(argc, argv);
  banner("E6: stack complexity - where is ordering solved? (paper §4.1)",
         "identical churn workload (100 msgs + 1 join + 1 crash) per stack;\n"
         "counting every engagement of every ordering mechanism");

  Table table({"stack", "ordering mechanisms", "orderer assignments", "VS flushes",
               "consensus instances", "view changes"});
  const auto seq = run_traditional(traditional::GmVsStack::Ordering::kSequencer);
  table.add_row({"isis-like (sequencer)", "3 (seq + flush + membership)",
                 fmt_int(seq.orderer_assignments), fmt_int(seq.flush_rounds),
                 fmt_int(seq.consensus_instances), fmt_int(seq.view_changes)});
  const auto tok = run_traditional(traditional::GmVsStack::Ordering::kToken);
  table.add_row({"totem-like (token)", "3 (token + flush + membership)",
                 fmt_int(tok.orderer_assignments), fmt_int(tok.flush_rounds),
                 fmt_int(tok.consensus_instances), fmt_int(tok.view_changes)});
  const auto nw = run_new();
  table.add_row({"new AB-GB", "1 (consensus)", fmt_int(nw.orderer_assignments),
                 fmt_int(nw.flush_rounds), fmt_int(nw.consensus_instances),
                 fmt_int(nw.view_changes)});
  table.print();
  std::printf(
      "\nReading: the traditional stacks keep three ordering mechanisms busy\n"
      "(per-message sequencing, the VS flush, and view agreement); the new\n"
      "architecture routes messages, view changes AND generic-broadcast\n"
      "resolutions through one consensus sequence (§4.1: less complex).\n");
  return oracle_verdict();
}
