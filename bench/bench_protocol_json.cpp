/// \file bench_protocol_json.cpp
/// Protocol-level performance report: runs the E3 generic-broadcast and E5
/// view-change scenarios on the new stack and emits BENCH_protocol.json
/// (alongside bench_e7_micro's BENCH_kernel.json) with the per-phase
/// latency breakdown that the interned-metric histograms now collect:
///
///   channel.residence_us     time-in-channel (first transmit -> cum. ack)
///   consensus.latency_us     propose() -> decision, per instance
///   abcast.order_latency_us  rdelivered -> adelivered (ordering wait)
///   gbcast.fast_latency_us   payload seen -> fast-path delivery
///   gbcast.slow_latency_us   payload seen -> resolution delivery
///
/// plus the GB fast-path ratio (fast vs resolved deliveries). Latencies
/// are virtual-time microseconds, so the report is deterministic for a
/// given seed and comparable across machines.
///
///   ./bench/bench_protocol_json [--json=PATH]   (default BENCH_protocol.json)
#include <cstring>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "bench/bench_util.hpp"

namespace gcs::bench {
namespace {

constexpr int kCommands = 200;
constexpr Duration kGap = msec(1);

/// Summary of one per-phase histogram, merged across all processes.
struct PhaseStats {
  std::size_t count = 0;
  double mean = 0;
  Duration p50 = 0;
  Duration p99 = 0;
  Duration max = 0;
};

PhaseStats merge_phase(World& world, int n, const std::string& name) {
  Histogram merged;
  for (ProcessId p = 0; p < n; ++p) {
    for (Duration s : world.stack(p).metrics().histogram(name).samples()) merged.add(s);
  }
  PhaseStats st;
  st.count = merged.count();
  if (merged.empty()) return st;
  st.mean = merged.mean();
  st.p50 = merged.percentile(50);
  st.p99 = merged.percentile(99);
  st.max = merged.max();
  return st;
}

std::int64_t sum_counter(World& world, int n, const std::string& name) {
  std::int64_t total = 0;
  for (ProcessId p = 0; p < n; ++p) total += world.stack(p).metrics().counter(name);
  return total;
}

/// One finished scenario, ready for the table and the JSON report.
struct Scenario {
  std::string name;
  std::map<std::string, std::string> params;  // insertion-order irrelevant
  std::map<std::string, PhaseStats> phases;
  std::int64_t gb_fast = 0;
  std::int64_t gb_resolved = 0;
  std::int64_t consensus_decided = 0;
  std::int64_t views_installed = 0;

  double fast_ratio() const {
    const std::int64_t total = gb_fast + gb_resolved;
    return total > 0 ? static_cast<double>(gb_fast) / static_cast<double>(total) : 0.0;
  }
};

const char* const kPhaseNames[] = {
    "channel.residence_us", "consensus.latency_us", "abcast.order_latency_us",
    "gbcast.fast_latency_us", "gbcast.slow_latency_us",
};

void collect(World& world, int n, Scenario& sc) {
  for (const char* phase : kPhaseNames) sc.phases[phase] = merge_phase(world, n, phase);
  sc.gb_fast = sum_counter(world, n, "gbcast.fast_delivered");
  sc.gb_resolved = sum_counter(world, n, "gbcast.resolved_delivered");
  sc.consensus_decided = sum_counter(world, n, "consensus.decided");
  sc.views_installed = sum_counter(world, n, "membership.views_installed");
}

/// E3 shape: gbcast workload with a given conflict fraction. Commutative
/// commands take the fast path; conflicting ones fall back to resolution
/// rounds riding the abcast/consensus machinery.
Scenario run_generic_broadcast(double conflict_fraction) {
  const int n = 4;
  World::Config config;
  config.n = n;
  config.seed = 11;
  config.stack.conflict = ConflictRelation::rbcast_abcast();
  World world(config);
  OracleScope oracle(world, "protocol_json/gbcast");
  int delivered = 0;
  for (ProcessId p = 0; p < n; ++p) {
    world.stack(p).on_gdeliver([&delivered](const MsgId&, MsgClass, const Bytes&) {
      ++delivered;
    });
  }
  world.found_group_all();
  world.run_for(msec(20));

  Rng rng(42);
  std::vector<bool> conflicting(kCommands);
  for (int i = 0; i < kCommands; ++i) conflicting[static_cast<std::size_t>(i)] = rng.chance(conflict_fraction);

  int sent = 0;
  std::function<void()> tick = [&] {
    if (sent >= kCommands) return;
    const MsgClass cls = conflicting[static_cast<std::size_t>(sent)] ? kAbcastClass : kRbcastClass;
    world.stack(static_cast<ProcessId>(sent % n)).gbcast(cls, payload_of(sent));
    ++sent;
    world.engine().schedule_after(kGap, tick);
  };
  world.engine().schedule_after(0, tick);
  drive(world.engine(), sec(300), [&] { return delivered >= kCommands * n; });
  world.run_for(sec(1));  // let acks/stragglers settle so residence is complete

  Scenario sc;
  sc.name = "e3_generic_broadcast";
  sc.params["n"] = std::to_string(n);
  sc.params["commands"] = std::to_string(kCommands);
  sc.params["conflict_fraction"] = json_num(conflict_fraction);
  collect(world, n, sc);
  return sc;
}

/// E5 shape: a process joins mid-stream while every member keeps sending
/// abcasts. The per-phase histograms show what the view change costs (and
/// that ordering latency stays in the same regime — senders never block).
Scenario run_view_change() {
  const int n = 5;
  World::Config config;
  config.n = n;
  config.seed = 17;
  World world(config);
  OracleScope oracle(world, "protocol_json/abcast");
  int delivered = 0;
  world.stack(1).on_adeliver([&delivered](const MsgId&, const Bytes&) { ++delivered; });
  world.found_group({0, 1, 2, 3});
  const TimePoint join_time = msec(200);
  int sent = 0;
  std::function<void()> tick = [&] {
    if (world.engine().now() > join_time + sec(1)) return;
    world.stack(static_cast<ProcessId>(sent % 4)).abcast(payload_of(sent));
    ++sent;
    world.engine().schedule_after(kGap, tick);
  };
  world.engine().schedule_after(0, tick);
  world.engine().schedule_at(join_time, [&] { world.stack(4).join(0); });
  world.engine().run_until(join_time + sec(2));

  Scenario sc;
  sc.name = "e5_view_change";
  sc.params["n"] = std::to_string(n);
  sc.params["join_at_ms"] = std::to_string(join_time / 1000);
  sc.params["sends"] = std::to_string(sent);
  sc.params["joined"] = world.stack(4).membership().is_member() ? "true" : "false";
  collect(world, n, sc);
  return sc;
}

std::string phase_json(const PhaseStats& st) {
  return "{\"count\": " + std::to_string(st.count) + ", \"mean_us\": " + json_num(st.mean) +
         ", \"p50_us\": " + std::to_string(st.p50) + ", \"p99_us\": " + std::to_string(st.p99) +
         ", \"max_us\": " + std::to_string(st.max) + "}";
}

int run_suite(const std::string& json_path) {
  banner("protocol perf — per-phase latency breakdown (JSON report)",
         "E3 generic broadcast (fast path vs conflict fallback) and E5\n"
         "view change, measured by the per-phase histograms; virtual time");

  std::vector<Scenario> scenarios;
  scenarios.push_back(run_generic_broadcast(0.0));
  scenarios.push_back(run_generic_broadcast(0.25));
  scenarios.push_back(run_generic_broadcast(1.0));
  scenarios.push_back(run_view_change());

  Table table({"scenario", "phase", "count", "mean (ms)", "p50 (ms)", "p99 (ms)"});
  for (const Scenario& sc : scenarios) {
    for (const char* phase : kPhaseNames) {
      const PhaseStats& st = sc.phases.at(phase);
      if (st.count == 0) continue;
      table.add_row({sc.name, phase, std::to_string(st.count), fmt_ms(st.mean),
                     fmt_ms(st.p50), fmt_ms(st.p99)});
    }
  }
  table.print();
  for (const Scenario& sc : scenarios) {
    if (sc.gb_fast + sc.gb_resolved == 0) continue;
    std::printf("  %s: fast-path ratio %s (%lld fast / %lld resolved), %lld consensus\n",
                sc.name.c_str(), fmt_pct(sc.fast_ratio()).c_str(),
                static_cast<long long>(sc.gb_fast), static_cast<long long>(sc.gb_resolved),
                static_cast<long long>(sc.consensus_decided));
  }

  std::FILE* out = std::fopen(json_path.c_str(), "w");
  if (!out) {
    std::fprintf(stderr, "cannot open %s for writing\n", json_path.c_str());
    return 1;
  }
  std::fprintf(out, "{\n  \"suite\": \"protocol\",\n  \"schema\": 1,\n  \"scenarios\": [\n");
  for (std::size_t i = 0; i < scenarios.size(); ++i) {
    const Scenario& sc = scenarios[i];
    std::fprintf(out, "    {\"name\": \"%s\",\n     \"params\": {", json_escape(sc.name).c_str());
    bool first = true;
    for (const auto& [k, v] : sc.params) {
      const bool quoted = v != "true" && v != "false" &&
                          v.find_first_not_of("0123456789.-") != std::string::npos;
      std::fprintf(out, "%s\"%s\": %s%s%s", first ? "" : ", ", json_escape(k).c_str(),
                   quoted ? "\"" : "", json_escape(v).c_str(), quoted ? "\"" : "");
      first = false;
    }
    std::fprintf(out, "},\n     \"phases\": {");
    first = true;
    for (const char* phase : kPhaseNames) {
      std::fprintf(out, "%s\n       \"%s\": %s", first ? "" : ",", phase,
                   phase_json(sc.phases.at(phase)).c_str());
      first = false;
    }
    std::fprintf(out,
                 "\n     },\n     \"gb\": {\"fast_delivered\": %lld, \"resolved_delivered\": "
                 "%lld, \"fast_ratio\": %s},\n     \"consensus_decided\": %lld,\n"
                 "     \"views_installed\": %lld}%s\n",
                 static_cast<long long>(sc.gb_fast), static_cast<long long>(sc.gb_resolved),
                 json_num(sc.fast_ratio()).c_str(),
                 static_cast<long long>(sc.consensus_decided),
                 static_cast<long long>(sc.views_installed), i + 1 < scenarios.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("\n  wrote %s\n", json_path.c_str());
  return 0;
}

}  // namespace
}  // namespace gcs::bench

int main(int argc, char** argv) {
  std::string json_path = "BENCH_protocol.json";
  gcs::bench::oracle_setup(argc, argv);
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--json=", 7) == 0) json_path = argv[i] + 7;
  }
  const int rc = gcs::bench::run_suite(json_path);
  const int oracle_rc = gcs::bench::oracle_verdict();
  return rc != 0 ? rc : oracle_rc;
}
