/// \file bench_explore.cpp
/// Explorer throughput: wall-clock seeds/second for the schedule explorer,
/// single-threaded and across worker threads, plus the cost split between
/// plan generation and schedule execution. This is the number that sizes
/// CI sweeps: the smoke job's seed count divided by the single-thread rate
/// here is its wall-clock budget.
///
/// Usage: bench_explore [seeds-per-config] (default 50)
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <thread>

#include "explore/runner.hpp"
#include "explore/sweep.hpp"
#include "sim/fault_plan.hpp"

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t seeds = 50;
  if (argc > 1) seeds = std::strtoull(argv[1], nullptr, 10);
  if (seeds == 0) seeds = 50;

  // Plan generation alone (no simulation).
  {
    const auto start = Clock::now();
    std::uint64_t total_steps = 0;
    for (std::uint64_t s = 0; s < seeds * 20; ++s) {
      total_steps += gcs::sim::FaultPlan::generate(s).steps.size();
    }
    const double dt = seconds_since(start);
    std::printf("plan generation:    %8.0f plans/s (%llu steps)\n",
                static_cast<double>(seeds * 20) / dt,
                static_cast<unsigned long long>(total_steps));
  }

  // Full schedules, one worker.
  {
    gcs::explore::SweepOptions options;
    options.begin = 0;
    options.end = seeds;
    options.jobs = 1;
    options.run.trace_capacity = 0;  // measure the simulation, not tracing
    options.shrink = false;
    const auto start = Clock::now();
    const auto result = gcs::explore::sweep(options);
    const double dt = seconds_since(start);
    std::printf("sweep x1 worker:    %8.1f seeds/s (%llu seeds, %zu failures)\n",
                static_cast<double>(result.seeds_run) / dt,
                static_cast<unsigned long long>(result.seeds_run), result.failures.size());
  }

  // Full schedules, all hardware threads.
  {
    const unsigned jobs = std::max(1u, std::thread::hardware_concurrency());
    gcs::explore::SweepOptions options;
    options.begin = 0;
    options.end = seeds * jobs;
    options.jobs = static_cast<int>(jobs);
    options.run.trace_capacity = 0;
    options.shrink = false;
    const auto start = Clock::now();
    const auto result = gcs::explore::sweep(options);
    const double dt = seconds_since(start);
    std::printf("sweep x%u workers:  %8.1f seeds/s (%llu seeds, %zu failures)\n", jobs,
                static_cast<double>(result.seeds_run) / dt,
                static_cast<unsigned long long>(result.seeds_run), result.failures.size());
  }

  // Tracing overhead: same single-worker sweep with the flight recorder on.
  {
    gcs::explore::SweepOptions options;
    options.begin = 0;
    options.end = seeds;
    options.jobs = 1;
    options.run.trace_capacity = 4096;
    options.shrink = false;
    const auto start = Clock::now();
    const auto result = gcs::explore::sweep(options);
    const double dt = seconds_since(start);
    std::printf("sweep x1 + tracing: %8.1f seeds/s\n",
                static_cast<double>(result.seeds_run) / dt);
  }
  return 0;
}
