/// \file bench_e7_micro.cpp
/// E7 — wall-clock microbenchmarks (google-benchmark) of the building
/// blocks: codec, event engine, network, consensus, atomic and generic
/// broadcast end-to-end. These measure REAL time (how fast the simulator
/// executes), complementing the virtual-time experiment tables E1–E6.
#include <benchmark/benchmark.h>

#include <memory>

#include "core/stack.hpp"
#include "replication/state_machine.hpp"
#include "util/codec.hpp"

namespace gcs {
namespace {

void BM_CodecEncode(benchmark::State& state) {
  for (auto _ : state) {
    Encoder enc;
    for (int i = 0; i < 32; ++i) {
      enc.put_u64(static_cast<std::uint64_t>(i) * 977);
      enc.put_msgid(MsgId{static_cast<ProcessId>(i), static_cast<std::uint64_t>(i)});
    }
    benchmark::DoNotOptimize(enc.bytes());
  }
}
BENCHMARK(BM_CodecEncode);

void BM_CodecDecode(benchmark::State& state) {
  Encoder enc;
  for (int i = 0; i < 32; ++i) {
    enc.put_u64(static_cast<std::uint64_t>(i) * 977);
    enc.put_msgid(MsgId{static_cast<ProcessId>(i), static_cast<std::uint64_t>(i)});
  }
  const Bytes buf = enc.take();
  for (auto _ : state) {
    Decoder dec(buf);
    std::uint64_t sum = 0;
    for (int i = 0; i < 32; ++i) {
      sum += dec.get_u64();
      sum += static_cast<std::uint64_t>(dec.get_msgid().seq);
    }
    benchmark::DoNotOptimize(sum);
  }
}
BENCHMARK(BM_CodecDecode);

void BM_EngineScheduleAndRun(benchmark::State& state) {
  for (auto _ : state) {
    sim::Engine engine;
    int fired = 0;
    for (int i = 0; i < 1000; ++i) {
      engine.schedule_at(i, [&fired] { ++fired; });
    }
    engine.run();
    benchmark::DoNotOptimize(fired);
  }
}
BENCHMARK(BM_EngineScheduleAndRun);

void BM_NetworkSendDeliver(benchmark::State& state) {
  for (auto _ : state) {
    sim::Engine engine;
    sim::Network net(engine, 2, sim::LinkModel{}, 1);
    int received = 0;
    net.set_handler(1, [&](ProcessId, const Bytes&) { ++received; });
    for (int i = 0; i < 100; ++i) net.send(0, 1, Bytes{1, 2, 3, 4});
    engine.run();
    benchmark::DoNotOptimize(received);
  }
}
BENCHMARK(BM_NetworkSendDeliver);

/// Full-stack construction cost: n processes with all Fig 9 components.
void BM_StackConstruction(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    World::Config config;
    config.n = n;
    World world(config);
    benchmark::DoNotOptimize(&world.stack(0));
  }
}
BENCHMARK(BM_StackConstruction)->Arg(4)->Arg(8)->Arg(16);

/// One consensus-ordered abcast batch, end to end (simulation wall time).
void BM_AbcastBatch(benchmark::State& state) {
  const int batch = static_cast<int>(state.range(0));
  for (auto _ : state) {
    World::Config config;
    config.n = 4;
    World world(config);
    std::size_t delivered = 0;
    world.stack(0).on_adeliver([&](const MsgId&, const Bytes&) { ++delivered; });
    world.found_group_all();
    for (int i = 0; i < batch; ++i) {
      world.stack(static_cast<ProcessId>(i % 4)).abcast(Bytes{static_cast<std::uint8_t>(i)});
    }
    while (delivered < static_cast<std::size_t>(batch) && world.engine().step()) {
    }
    benchmark::DoNotOptimize(delivered);
  }
}
BENCHMARK(BM_AbcastBatch)->Arg(1)->Arg(16)->Arg(64);

/// Generic broadcast fast path (non-conflicting), end to end.
void BM_GbcastFastPath(benchmark::State& state) {
  const int batch = static_cast<int>(state.range(0));
  for (auto _ : state) {
    World::Config config;
    config.n = 4;
    World world(config);
    std::size_t delivered = 0;
    world.stack(0).on_gdeliver([&](const MsgId&, MsgClass, const Bytes&) { ++delivered; });
    world.found_group_all();
    for (int i = 0; i < batch; ++i) {
      world.stack(static_cast<ProcessId>(i % 4)).rbcast(Bytes{static_cast<std::uint8_t>(i)});
    }
    while (delivered < static_cast<std::size_t>(batch) && world.engine().step()) {
    }
    benchmark::DoNotOptimize(delivered);
  }
}
BENCHMARK(BM_GbcastFastPath)->Arg(1)->Arg(16)->Arg(64);

void BM_BankStateMachineApply(benchmark::State& state) {
  replication::BankAccount bank;
  const Bytes deposit = replication::BankAccount::make_deposit(5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(bank.apply(deposit));
  }
}
BENCHMARK(BM_BankStateMachineApply);

}  // namespace
}  // namespace gcs

BENCHMARK_MAIN();
