/// \file bench_e7_micro.cpp
/// E7 — wall-clock microbenchmarks of the building blocks: codec, event
/// engine, network, consensus, atomic and generic broadcast end-to-end.
/// These measure REAL time (how fast the simulator executes),
/// complementing the virtual-time experiment tables E1–E6.
///
/// Two modes:
///   (default)        google-benchmark suite, usual gbench flags apply.
///   --json[=path]    kernel hot-path suite with the counting allocator:
///                    engine steady-state/cold-start/cancel-churn, network
///                    fan-out and event routing, written as machine-
///                    readable JSON (default ./BENCH_kernel.json). Used by
///                    CI; how to read the numbers is documented in
///                    DESIGN.md ("Kernel performance model").
///
/// This translation unit replaces global operator new/delete with
/// counting versions, so allocations per event can be reported exactly.
/// The counters are process-wide but only this binary opts in.
#include <benchmark/benchmark.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <new>
#include <string>
#include <vector>

#include "bench/bench_util.hpp"
#include "core/stack.hpp"
#include "kernel/attr.hpp"
#include "kernel/event.hpp"
#include "replication/state_machine.hpp"
#include "sim/network.hpp"
#include "util/codec.hpp"

// --------------------------------------------------------------------------
// Counting allocator: every path into the heap increments a counter. Used
// to verify the zero-allocation steady-state claim of the timer engine.
// --------------------------------------------------------------------------

namespace {
std::atomic<std::uint64_t> g_allocs{0};
std::atomic<std::uint64_t> g_frees{0};

struct AllocSnapshot {
  std::uint64_t allocs;
  std::uint64_t frees;
};

AllocSnapshot alloc_snapshot() {
  return {g_allocs.load(std::memory_order_relaxed), g_frees.load(std::memory_order_relaxed)};
}

void* counted_alloc(std::size_t size) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}

void* counted_aligned_alloc(std::size_t size, std::size_t align) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  const std::size_t rounded = (size + align - 1) / align * align;
  if (void* p = std::aligned_alloc(align, rounded ? rounded : align)) return p;
  throw std::bad_alloc();
}

void counted_free(void* p) noexcept {
  if (!p) return;
  g_frees.fetch_add(1, std::memory_order_relaxed);
  std::free(p);
}
}  // namespace

void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }
void* operator new(std::size_t size, std::align_val_t align) {
  return counted_aligned_alloc(size, static_cast<std::size_t>(align));
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return counted_aligned_alloc(size, static_cast<std::size_t>(align));
}
void operator delete(void* p) noexcept { counted_free(p); }
void operator delete[](void* p) noexcept { counted_free(p); }
void operator delete(void* p, std::size_t) noexcept { counted_free(p); }
void operator delete[](void* p, std::size_t) noexcept { counted_free(p); }
void operator delete(void* p, std::align_val_t) noexcept { counted_free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { counted_free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept { counted_free(p); }
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept { counted_free(p); }

namespace gcs {
namespace {

// --------------------------------------------------------------------------
// google-benchmark suite (default mode)
// --------------------------------------------------------------------------

void BM_CodecEncode(benchmark::State& state) {
  for (auto _ : state) {
    Encoder enc;
    for (int i = 0; i < 32; ++i) {
      enc.put_u64(static_cast<std::uint64_t>(i) * 977);
      enc.put_msgid(MsgId{static_cast<ProcessId>(i), static_cast<std::uint64_t>(i)});
    }
    benchmark::DoNotOptimize(enc.bytes());
  }
}
BENCHMARK(BM_CodecEncode);

void BM_CodecDecode(benchmark::State& state) {
  Encoder enc;
  for (int i = 0; i < 32; ++i) {
    enc.put_u64(static_cast<std::uint64_t>(i) * 977);
    enc.put_msgid(MsgId{static_cast<ProcessId>(i), static_cast<std::uint64_t>(i)});
  }
  const Bytes buf = enc.take();
  for (auto _ : state) {
    Decoder dec(buf);
    std::uint64_t sum = 0;
    for (int i = 0; i < 32; ++i) {
      sum += dec.get_u64();
      sum += static_cast<std::uint64_t>(dec.get_msgid().seq);
    }
    benchmark::DoNotOptimize(sum);
  }
}
BENCHMARK(BM_CodecDecode);

/// Cold shape: engine construction + 1000 one-shot timers, every iteration.
void BM_EngineScheduleAndRun(benchmark::State& state) {
  for (auto _ : state) {
    sim::Engine engine;
    int fired = 0;
    for (int i = 0; i < 1000; ++i) {
      engine.schedule_at(i, [&fired] { ++fired; });
    }
    engine.run();
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EngineScheduleAndRun);

/// Steady shape: 64 self-rescheduling timers on a long-lived engine — the
/// state a multi-second simulation run spends nearly all its time in.
void BM_EngineSteadyState(benchmark::State& state) {
  sim::Engine engine;
  long long fired = 0;
  struct Tick {
    sim::Engine* engine;
    long long* fired;
    void operator()() const {
      ++*fired;
      engine->schedule_after(10, Tick{*this});
    }
  };
  for (int i = 0; i < 64; ++i) engine.schedule_after(i, Tick{&engine, &fired});
  for (auto _ : state) {
    engine.run(1000);
  }
  benchmark::DoNotOptimize(fired);
  state.SetItemsProcessed(state.iterations() * 1000);
  // Pending self-rescheduling timers die with the engine.
}
BENCHMARK(BM_EngineSteadyState);

void BM_NetworkSendDeliver(benchmark::State& state) {
  for (auto _ : state) {
    sim::Engine engine;
    sim::Network net(engine, 2, sim::LinkModel{}, 1);
    int received = 0;
    net.set_handler(1, [&](ProcessId, const Bytes&) { ++received; });
    for (int i = 0; i < 100; ++i) net.send(0, 1, Bytes{1, 2, 3, 4});
    engine.run();
    benchmark::DoNotOptimize(received);
  }
  state.SetItemsProcessed(state.iterations() * 100);
}
BENCHMARK(BM_NetworkSendDeliver);

/// Full-stack construction cost: n processes with all Fig 9 components.
void BM_StackConstruction(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    World::Config config;
    config.n = n;
    World world(config);
    benchmark::DoNotOptimize(&world.stack(0));
  }
}
BENCHMARK(BM_StackConstruction)->Arg(4)->Arg(8)->Arg(16);

/// One consensus-ordered abcast batch, end to end (simulation wall time).
void BM_AbcastBatch(benchmark::State& state) {
  const int batch = static_cast<int>(state.range(0));
  for (auto _ : state) {
    World::Config config;
    config.n = 4;
    World world(config);
    bench::OracleScope oracle(world, "e7/abcast");
    std::size_t delivered = 0;
    world.stack(0).on_adeliver([&](const MsgId&, const Bytes&) { ++delivered; });
    world.found_group_all();
    for (int i = 0; i < batch; ++i) {
      world.stack(static_cast<ProcessId>(i % 4)).abcast(Bytes{static_cast<std::uint8_t>(i)});
    }
    while (delivered < static_cast<std::size_t>(batch) && world.engine().step()) {
    }
    benchmark::DoNotOptimize(delivered);
  }
}
BENCHMARK(BM_AbcastBatch)->Arg(1)->Arg(16)->Arg(64);

/// Generic broadcast fast path (non-conflicting), end to end.
void BM_GbcastFastPath(benchmark::State& state) {
  const int batch = static_cast<int>(state.range(0));
  for (auto _ : state) {
    World::Config config;
    config.n = 4;
    World world(config);
    bench::OracleScope oracle(world, "e7/gbcast");
    std::size_t delivered = 0;
    world.stack(0).on_gdeliver([&](const MsgId&, MsgClass, const Bytes&) { ++delivered; });
    world.found_group_all();
    for (int i = 0; i < batch; ++i) {
      world.stack(static_cast<ProcessId>(i % 4)).rbcast(Bytes{static_cast<std::uint8_t>(i)});
    }
    while (delivered < static_cast<std::size_t>(batch) && world.engine().step()) {
    }
    benchmark::DoNotOptimize(delivered);
  }
}
BENCHMARK(BM_GbcastFastPath)->Arg(1)->Arg(16)->Arg(64);

void BM_BankStateMachineApply(benchmark::State& state) {
  replication::BankAccount bank;
  const Bytes deposit = replication::BankAccount::make_deposit(5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(bank.apply(deposit));
  }
}
BENCHMARK(BM_BankStateMachineApply);

// --------------------------------------------------------------------------
// Kernel hot-path suite (--json mode): chrono-timed, allocation-counted.
// --------------------------------------------------------------------------

using Clock = std::chrono::steady_clock;

double elapsed_ns(Clock::time_point t0) {
  return static_cast<double>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() - t0).count());
}

struct KernelRow {
  std::string name;
  std::uint64_t events = 0;
  double wall_ns = 0;
  std::uint64_t allocs = 0;
  std::uint64_t frees = 0;

  double ns_per_event() const {
    return events ? wall_ns / static_cast<double>(events) : 0.0;
  }
  double events_per_sec() const {
    return wall_ns > 0 ? static_cast<double>(events) * 1e9 / wall_ns : 0.0;
  }
  double allocs_per_event() const {
    return events ? static_cast<double>(allocs) / static_cast<double>(events) : 0.0;
  }
};

/// N self-rescheduling timers on a long-lived engine: the state a long
/// simulation run spends nearly all its wall time in. Steady state must be
/// allocation-free: nodes come from the free list, captures fit inline.
KernelRow kernel_engine_steady(const std::string& name, int timers, long long events) {
  sim::Engine engine;
  long long fired = 0;
  const long long warmup = 100000;
  const long long stop = warmup + events;
  struct Tick {
    sim::Engine* engine;
    long long* fired;
    long long stop;
    void operator()() const {
      if (++*fired < stop) engine->schedule_after(10, Tick{*this});
    }
  };
  for (int i = 0; i < timers; ++i) {
    engine.schedule_after(i % 50, Tick{&engine, &fired, stop});
  }
  while (fired < warmup && engine.step()) {
  }
  const long long fired_before = fired;
  const AllocSnapshot a0 = alloc_snapshot();
  const auto t0 = Clock::now();
  engine.run();
  const double wall = elapsed_ns(t0);
  const AllocSnapshot a1 = alloc_snapshot();
  return {name, static_cast<std::uint64_t>(fired - fired_before), wall, a1.allocs - a0.allocs,
          a1.frees - a0.frees};
}

/// Fresh engine + 1000 one-shot timers per round (the BM_EngineScheduleAndRun
/// shape): measures construction and pool/chunk growth on top of dispatch.
KernelRow kernel_engine_cold(long long rounds) {
  long long fired = 0;
  const AllocSnapshot a0 = alloc_snapshot();
  const auto t0 = Clock::now();
  for (long long r = 0; r < rounds; ++r) {
    sim::Engine engine;
    for (int i = 0; i < 1000; ++i) {
      engine.schedule_at(i, [&fired] { ++fired; });
    }
    engine.run();
  }
  const double wall = elapsed_ns(t0);
  const AllocSnapshot a1 = alloc_snapshot();
  return {"engine_cold_start_1000", static_cast<std::uint64_t>(fired), wall,
          a1.allocs - a0.allocs, a1.frees - a0.frees};
}

/// Schedule+cancel churn against a window of armed timeouts — the failure-
/// detector pattern. Exercises O(1) cancel and wheel compaction; queue depth
/// and pool size must stay bounded by the window, not by total churn.
KernelRow kernel_engine_cancel_churn(long long pairs, std::size_t* max_depth,
                                     std::size_t* max_pool) {
  sim::Engine engine;
  const int window = 1024;
  long long sink = 0;
  std::vector<sim::TimerId> ids(window);
  for (int i = 0; i < window; ++i) {
    ids[static_cast<std::size_t>(i)] =
        engine.schedule_after(1000000 + i, [&sink] { ++sink; });
  }
  *max_depth = 0;
  *max_pool = 0;
  const AllocSnapshot a0 = alloc_snapshot();
  const auto t0 = Clock::now();
  for (long long i = 0; i < pairs; ++i) {
    const auto j = static_cast<std::size_t>(i) % window;
    engine.cancel(ids[j]);
    ids[j] = engine.schedule_after(1000000 + static_cast<Duration>(j), [&sink] { ++sink; });
    if ((i & 0xffff) == 0) {
      *max_depth = std::max(*max_depth, engine.queue_depth());
      *max_pool = std::max(*max_pool, engine.pool_size());
    }
  }
  const double wall = elapsed_ns(t0);
  const AllocSnapshot a1 = alloc_snapshot();
  *max_depth = std::max(*max_depth, engine.queue_depth());
  *max_pool = std::max(*max_pool, engine.pool_size());
  return {"engine_cancel_churn", static_cast<std::uint64_t>(pairs), wall, a1.allocs - a0.allocs,
          a1.frees - a0.frees};
}

/// 16-destination multicast of a 64-byte payload through sim::Network: the
/// datagram is built and refcounted once, deliveries share the bytes.
KernelRow kernel_network_fanout(long long multicasts) {
  sim::Engine engine;
  sim::Network net(engine, 17, sim::LinkModel{}, 1);
  long long received = 0;
  std::vector<ProcessId> dests;
  for (ProcessId p = 1; p <= 16; ++p) {
    dests.push_back(p);
    net.set_handler(p, [&received](ProcessId, const Bytes& b) {
      received += static_cast<long long>(!b.empty());
    });
  }
  const Bytes bytes(64, 0xab);
  // Warmup: let slot lists, node pool and rng reach steady state.
  for (int i = 0; i < 2000; ++i) {
    net.multicast(0, dests, Payload(bytes));
    if ((i & 63) == 0) engine.run();
  }
  engine.run();
  const long long received_before = received;
  const AllocSnapshot a0 = alloc_snapshot();
  const auto t0 = Clock::now();
  for (long long i = 0; i < multicasts; ++i) {
    net.multicast(0, dests, Payload(bytes));
    if ((i & 63) == 0) engine.run();
  }
  engine.run();
  const double wall = elapsed_ns(t0);
  const AllocSnapshot a1 = alloc_snapshot();
  return {"network_fanout_16", static_cast<std::uint64_t>(received - received_before), wall,
          a1.allocs - a0.allocs, a1.frees - a0.frees};
}

/// Event construction + two layer-traversal copies + attribute round trip:
/// the per-hop cost of the kernel's event representation. Copies share the
/// payload and keep attributes inline, so the loop is allocation-free.
KernelRow kernel_event_route(long long events) {
  const kernel::AttrId seq_attr = kernel::intern_attr("bench.seq");
  const Payload payload(Bytes(64, 0xcd));
  std::int64_t sum = 0;
  const AllocSnapshot a0 = alloc_snapshot();
  const auto t0 = Clock::now();
  for (long long i = 0; i < events; ++i) {
    kernel::Event event = kernel::Event::deliver_from(1, payload);
    event.attrs[seq_attr] = i;
    kernel::Event hop1 = event;
    kernel::Event hop2 = hop1;
    sum += hop2.attrs.get_or(seq_attr, 0) + static_cast<std::int64_t>(hop2.payload.size());
    benchmark::DoNotOptimize(sum);
  }
  const double wall = elapsed_ns(t0);
  const AllocSnapshot a1 = alloc_snapshot();
  return {"event_route_3hop", static_cast<std::uint64_t>(events), wall, a1.allocs - a0.allocs,
          a1.frees - a0.frees};
}

int run_kernel_suite(const std::string& json_path) {
  bench::banner("E7-kernel — engine/event hot-path microbenchmarks",
                "Wall-clock cost per event with exact allocation counts "
                "(counting operator new/delete). See DESIGN.md, \"Kernel "
                "performance model\".");

  std::size_t churn_depth = 0;
  std::size_t churn_pool = 0;
  std::vector<KernelRow> rows;
  rows.push_back(kernel_engine_steady("engine_steady_64", 64, 8000000));
  rows.push_back(kernel_engine_steady("engine_steady_1024", 1024, 8000000));
  rows.push_back(kernel_engine_cold(3000));
  rows.push_back(kernel_engine_cancel_churn(2000000, &churn_depth, &churn_pool));
  rows.push_back(kernel_network_fanout(200000));
  rows.push_back(kernel_event_route(5000000));

  const bool steady_zero_alloc = rows[0].allocs == 0 && rows[1].allocs == 0;
  const bool churn_bounded = churn_depth <= 4096 && churn_pool <= 8192;

  bench::Table table({"benchmark", "events", "ns/event", "events/sec", "allocs/event"});
  for (const KernelRow& r : rows) {
    table.add_row({r.name, bench::fmt_int(static_cast<std::int64_t>(r.events)),
                   bench::fmt_double(r.ns_per_event(), 1),
                   bench::fmt_double(r.events_per_sec() / 1e6, 2) + "M",
                   bench::fmt_double(r.allocs_per_event(), 4)});
  }
  table.print();
  std::printf("\n  cancel churn: max queue depth %zu, max pool %zu (window 1024)\n",
              churn_depth, churn_pool);
  std::printf("  steady-state zero-alloc: %s\n", steady_zero_alloc ? "PASS" : "FAIL");
  std::printf("  churn bounded: %s\n", churn_bounded ? "PASS" : "FAIL");

  std::FILE* out = std::fopen(json_path.c_str(), "w");
  if (!out) {
    std::fprintf(stderr, "cannot open %s for writing\n", json_path.c_str());
    return 1;
  }
  std::fprintf(out, "{\n  \"suite\": \"kernel\",\n  \"schema\": 1,\n  \"results\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const KernelRow& r = rows[i];
    std::fprintf(out,
                 "    {\"name\": \"%s\", \"events\": %llu, \"wall_ns\": %s, "
                 "\"ns_per_event\": %s, \"events_per_sec\": %s, \"allocs\": %llu, "
                 "\"frees\": %llu, \"allocs_per_event\": %s}%s\n",
                 bench::json_escape(r.name).c_str(),
                 static_cast<unsigned long long>(r.events), bench::json_num(r.wall_ns).c_str(),
                 bench::json_num(r.ns_per_event()).c_str(),
                 bench::json_num(r.events_per_sec()).c_str(),
                 static_cast<unsigned long long>(r.allocs),
                 static_cast<unsigned long long>(r.frees),
                 bench::json_num(r.allocs_per_event()).c_str(),
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(out,
               "  ],\n  \"checks\": {\n    \"steady_state_zero_alloc\": %s,\n"
               "    \"cancel_churn_bounded\": %s,\n    \"churn_max_queue_depth\": %zu,\n"
               "    \"churn_max_pool\": %zu\n  }\n}\n",
               steady_zero_alloc ? "true" : "false", churn_bounded ? "true" : "false",
               churn_depth, churn_pool);
  std::fclose(out);
  std::printf("\n  wrote %s\n", json_path.c_str());
  return steady_zero_alloc && churn_bounded ? 0 : 1;
}

}  // namespace
}  // namespace gcs

int main(int argc, char** argv) {
  std::string json_path;
  bool json_mode = false;
  std::vector<char*> gbench_args;
  gbench_args.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--oracle") == 0) {
      gcs::bench::OracleGate::enabled() = true;
    } else if (std::strcmp(argv[i], "--json") == 0) {
      json_mode = true;
      json_path = "BENCH_kernel.json";
    } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_mode = true;
      json_path = argv[i] + 7;
    } else {
      gbench_args.push_back(argv[i]);
    }
  }
  if (json_mode) return gcs::run_kernel_suite(json_path);
  int gargc = static_cast<int>(gbench_args.size());
  benchmark::Initialize(&gargc, gbench_args.data());
  if (benchmark::ReportUnrecognizedArguments(gargc, gbench_args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return gcs::bench::oracle_verdict();
}
