/// \file bench_e2_fig8_passive.cpp
/// E2 — Figure 8: passive replication over generic broadcast.
///
/// Races an `update` (non-conflicting class) against a `primary-change`
/// (conflicting class) with a sweep of head starts for the change, over
/// many seeds. Reports the outcome distribution and verifies that ONLY the
/// two outcomes of the paper ever occur and that replicas always agree.
#include <memory>

#include "bench/bench_util.hpp"
#include "replication/passive.hpp"
#include "replication/state_machine.hpp"

namespace gcs::bench {
namespace {

using replication::BankAccount;
using replication::PassiveReplication;

struct Outcome {
  bool committed = false;   // Fig 8 outcome 1
  bool preempted = false;   // Fig 8 outcome 2
  bool diverged = false;    // would be a bug: replicas disagree
};

Outcome race(Duration change_lead, std::uint64_t seed) {
  World::Config config;
  config.n = 4;
  config.seed = seed;
  config.stack.conflict = ConflictRelation::update_primary_change();
  World world(config);
  OracleScope oracle(world, "e2/passive");
  world.found_group_all();
  PassiveReplication::Config pcfg;
  pcfg.auto_primary_change = false;
  std::vector<std::unique_ptr<PassiveReplication>> replicas;
  for (ProcessId p = 0; p < 4; ++p) {
    replicas.push_back(std::make_unique<PassiveReplication>(
        world.stack(p), std::make_unique<BankAccount>(), pcfg));
  }
  Outcome out;
  bool done = false;
  auto fire_update = [&] {
    replicas[0]->handle_request(BankAccount::make_deposit(100),
                                [&](bool ok, const Bytes&) {
                                  out.committed = ok;
                                  out.preempted = !ok;
                                  done = true;
                                });
  };
  auto fire_change = [&] { replicas[1]->request_primary_change(); };
  if (change_lead >= 0) {
    world.engine().schedule_after(0, fire_change);
    world.engine().schedule_after(change_lead, fire_update);
  } else {
    world.engine().schedule_after(0, fire_update);
    world.engine().schedule_after(-change_lead, fire_change);
  }
  drive(world.engine(), sec(30), [&] {
    if (!done) return false;
    for (auto& r : replicas) {
      if (r->primary_changes() < 1) return false;
    }
    return true;
  });
  world.run_for(msec(300));
  const auto b0 = static_cast<BankAccount&>(replicas[0]->state()).balance();
  for (ProcessId p = 1; p < 4; ++p) {
    if (static_cast<BankAccount&>(replicas[static_cast<std::size_t>(p)]->state()).balance() !=
        b0) {
      out.diverged = true;
    }
  }
  // Consistency between client outcome and replica state.
  if (out.committed && b0 != 100) out.diverged = true;
  if (out.preempted && b0 != 0) out.diverged = true;
  return out;
}

}  // namespace
}  // namespace gcs::bench

int main(int argc, char** argv) {
  using namespace gcs;
  using namespace gcs::bench;
  oracle_setup(argc, argv);
  banner("E2: Fig 8 - passive replication, update vs primary-change race",
         "update (class: update) from primary p0 races primary-change (class:\n"
         "primary-change) from backup p1; 50 seeds per head-start setting");

  Table table({"change head start", "outcome 1 (committed)", "outcome 2 (ignored)",
               "other/diverged"});
  const Duration leads[] = {-msec(5), -msec(1), 0, msec(1), msec(5)};
  const int kSeeds = 50;
  int total_diverged = 0;
  for (Duration lead : leads) {
    int committed = 0, preempted = 0, diverged = 0;
    for (int s = 0; s < kSeeds; ++s) {
      const auto out = race(lead, 100 + static_cast<std::uint64_t>(s));
      if (out.diverged) ++diverged;
      else if (out.committed) ++committed;
      else if (out.preempted) ++preempted;
    }
    total_diverged += diverged;
    const std::string label = (lead < 0 ? "update +" + std::to_string(-lead / 1000) + "ms"
                                        : (lead == 0 ? "simultaneous"
                                                     : "change +" + std::to_string(lead / 1000) +
                                                           "ms"));
    table.add_row({label, fmt_int(committed) + "/" + std::to_string(kSeeds),
                   fmt_int(preempted) + "/" + std::to_string(kSeeds), fmt_int(diverged)});
  }
  table.print();
  std::printf("\nReading: the conflict relation of §3.2.3 admits exactly the paper's\n"
              "two outcomes; the head start shifts the distribution but never\n"
              "produces divergence. diverged column must be 0. (%s)\n",
              total_diverged == 0 ? "OK" : "VIOLATION!");
  if (total_diverged != 0) return 1;
  return oracle_verdict();
}
