/// \file bench_e9_scaling.cpp
/// E9 — group-size scaling (extension beyond the paper's evaluation).
///
/// How the primitives behave as the group grows: failure-free latency and
/// per-message network cost of
///   - atomic broadcast in the new architecture (consensus-based),
///   - the generic-broadcast fast path (quorum ACKs, no consensus),
///   - the traditional fixed-sequencer stack,
/// for n = 3..13. Expected shapes: the sequencer's latency is flat (two
/// hops regardless of n) with O(n) messages; consensus latency is flat-ish
/// but its message count grows O(n^2); the GB fast path sits in between
/// (two hops, O(n^2) small ACKs).
#include <memory>

#include "bench/bench_util.hpp"
#include "traditional/gmvs_stack.hpp"

namespace gcs::bench {
namespace {

constexpr int kMessages = 60;
constexpr Duration kGap = msec(2);

struct Point {
  double mean_latency = 0;
  double msgs_per_bcast = 0;
};

Point run_new_abcast(int n) {
  World::Config config;
  config.n = n;
  config.seed = 4;
  World world(config);
  OracleScope oracle(world, "e9/abcast");
  Histogram lat;
  std::map<MsgId, TimePoint> sent;
  std::size_t delivered = 0;
  world.stack(0).on_adeliver([&](const MsgId& id, const Bytes&) {
    ++delivered;
    auto it = sent.find(id);
    if (it != sent.end()) lat.add(world.engine().now() - it->second);
  });
  world.found_group_all();
  const auto base_msgs = world.network().metrics().counter("net.sent");
  const TimePoint traffic_start = world.engine().now();
  int i = 0;
  std::function<void()> tick = [&] {
    if (i >= kMessages) return;
    sent[world.stack(static_cast<ProcessId>(i % n)).abcast(payload_of(i))] =
        world.engine().now();
    ++i;
    world.engine().schedule_after(kGap, tick);
  };
  world.engine().schedule_after(0, tick);
  drive(world.engine(), sec(120), [&] { return delivered >= kMessages; });
  Point p;
  p.mean_latency = lat.mean();
  const Duration elapsed = world.engine().now() - traffic_start;
  const double heartbeats = static_cast<double>(n) * (n - 1) *
                            (static_cast<double>(elapsed) / static_cast<double>(msec(10)));
  p.msgs_per_bcast =
      (static_cast<double>(world.network().metrics().counter("net.sent") - base_msgs) -
       heartbeats) /
      kMessages;
  if (p.msgs_per_bcast < 0) p.msgs_per_bcast = 0;
  return p;
}

Point run_new_gbcast_fast(int n) {
  World::Config config;
  config.n = n;
  config.seed = 4;
  World world(config);
  OracleScope oracle(world, "e9/gbcast_fast");
  Histogram lat;
  std::map<MsgId, TimePoint> sent;
  std::size_t delivered = 0;
  world.stack(0).on_gdeliver([&](const MsgId& id, MsgClass, const Bytes&) {
    ++delivered;
    auto it = sent.find(id);
    if (it != sent.end()) lat.add(world.engine().now() - it->second);
  });
  world.found_group_all();
  const auto base_msgs = world.network().metrics().counter("net.sent");
  const TimePoint traffic_start = world.engine().now();
  int i = 0;
  std::function<void()> tick = [&] {
    if (i >= kMessages) return;
    sent[world.stack(static_cast<ProcessId>(i % n)).rbcast(payload_of(i))] =
        world.engine().now();
    ++i;
    world.engine().schedule_after(kGap, tick);
  };
  world.engine().schedule_after(0, tick);
  drive(world.engine(), sec(120), [&] { return delivered >= kMessages; });
  Point p;
  p.mean_latency = lat.mean();
  const Duration elapsed = world.engine().now() - traffic_start;
  const double heartbeats = static_cast<double>(n) * (n - 1) *
                            (static_cast<double>(elapsed) / static_cast<double>(msec(10)));
  p.msgs_per_bcast =
      (static_cast<double>(world.network().metrics().counter("net.sent") - base_msgs) -
       heartbeats) /
      kMessages;
  if (p.msgs_per_bcast < 0) p.msgs_per_bcast = 0;
  return p;
}

Point run_traditional_sequencer(int n) {
  sim::Engine engine;
  sim::Network network(engine, n, sim::LinkModel{}, 4);
  traditional::GmVsStack::Config cfg;
  std::vector<std::unique_ptr<traditional::GmVsStack>> stacks;
  for (ProcessId p = 0; p < n; ++p) {
    stacks.push_back(std::make_unique<traditional::GmVsStack>(engine, network, p, 4, cfg));
  }
  Histogram lat;
  std::map<MsgId, TimePoint> sent;
  std::size_t delivered = 0;
  stacks[0]->on_adeliver([&](const MsgId& id, const Bytes&) {
    ++delivered;
    auto it = sent.find(id);
    if (it != sent.end()) lat.add(engine.now() - it->second);
  });
  std::vector<ProcessId> all;
  for (ProcessId p = 0; p < n; ++p) all.push_back(p);
  for (auto& s : stacks) {
    s->init_view(all);
    s->start();
  }
  const auto base_msgs = network.metrics().counter("net.sent");
  const TimePoint traffic_start = engine.now();
  int i = 0;
  std::function<void()> tick = [&] {
    if (i >= kMessages) return;
    sent[stacks[static_cast<std::size_t>(i % n)]->abcast(payload_of(i))] = engine.now();
    ++i;
    engine.schedule_after(kGap, tick);
  };
  engine.schedule_after(0, tick);
  drive(engine, sec(120), [&] { return delivered >= kMessages; });
  Point p;
  p.mean_latency = lat.mean();
  const Duration elapsed = engine.now() - traffic_start;
  const double heartbeats = static_cast<double>(n) * (n - 1) *
                            (static_cast<double>(elapsed) / static_cast<double>(msec(10)));
  p.msgs_per_bcast =
      (static_cast<double>(network.metrics().counter("net.sent") - base_msgs) - heartbeats) /
      kMessages;
  if (p.msgs_per_bcast < 0) p.msgs_per_bcast = 0;
  return p;
}

}  // namespace
}  // namespace gcs::bench

int main(int argc, char** argv) {
  using namespace gcs;
  using namespace gcs::bench;
  oracle_setup(argc, argv);
  banner("E9: group-size scaling (extension)",
         "failure-free mean latency (virtual ms) and network messages per\n"
         "broadcast as the group grows; 60 broadcasts, one per 2ms");

  Table table({"n", "abcast lat", "abcast msgs", "gb-fast lat", "gb-fast msgs",
               "sequencer lat", "sequencer msgs"});
  for (int n : {3, 5, 7, 9, 13}) {
    const auto ab = run_new_abcast(n);
    const auto gb = run_new_gbcast_fast(n);
    const auto sq = run_traditional_sequencer(n);
    table.add_row({fmt_int(n), fmt_ms(ab.mean_latency), fmt_double(ab.msgs_per_bcast, 0),
                   fmt_ms(gb.mean_latency), fmt_double(gb.msgs_per_bcast, 0),
                   fmt_ms(sq.mean_latency), fmt_double(sq.msgs_per_bcast, 0)});
  }
  table.print();
  std::printf(
      "\nReading: latencies stay roughly flat with n (all protocols are\n"
      "constant-round when failure-free); message complexity separates them:\n"
      "O(n) for the sequencer, O(n^2) for consensus-based abcast and for the\n"
      "generic-broadcast fast path (n^2 ACKs, but tiny and consensus-free).\n"
      "FD heartbeat background traffic is subtracted analytically.\n");
  return oracle_verdict();
}
