/// \file bench_e4_responsiveness.cpp
/// E4 — §4.3: responsiveness in case of failures.
///
/// The paper's argument:
///   - post-crash latency is dominated by the failure-detection timeout, so
///     you want small timeouts;
///   - small timeouts cause false suspicions; in the TRADITIONAL stack a
///     false suspicion EXCLUDES a healthy member (kill + rejoin + state
///     transfer), so traditional systems are forced to large timeouts;
///   - in the NEW architecture suspicion and exclusion are decoupled: a
///     false suspicion costs one consensus round, so timeouts can be small
///     and post-crash responsiveness high.
///
/// Two sweeps over the suspicion timeout, identical workloads:
///   (a) crash the coordinator/sequencer: worst delivery stall afterwards;
///   (b) inject a single false suspicion: worst delivery stall it causes,
///       plus whether a healthy member got excluded.
#include <memory>

#include "bench/bench_util.hpp"
#include "traditional/gmvs_stack.hpp"

namespace gcs::bench {
namespace {

constexpr int kProcs = 4;
constexpr Duration kSendGap = msec(2);

struct Disruption {
  Duration worst_latency = 0;   // max send->deliver latency in the window
  int exclusions = 0;           // healthy members excluded (traditional pathology)
  bool recovered = true;        // deliveries resumed at all
  Duration victim_outage = 0;   // time the falsely suspected member spent outside the view
};

/// Generic driver: runs steady traffic from process 1, applies `fault` at
/// t=300ms, observes until t=+4s. Reports the worst latency of messages
/// sent in the fault window.
template <typename SendFn>
Disruption measure(sim::Engine& engine, SendFn&& send,
                   const std::function<void()>& fault,
                   const std::function<std::size_t()>& delivered_count,
                   const std::function<int()>& exclusion_count) {
  std::map<int, TimePoint> sent_at;
  std::map<int, TimePoint> delivered_at;
  int sent = 0;
  const TimePoint fault_time = engine.now() + msec(300);
  std::function<void()> tick = [&] {
    if (engine.now() > fault_time + sec(4)) return;
    sent_at[sent] = engine.now();
    send(sent);
    ++sent;
    engine.schedule_after(kSendGap, tick);
  };
  engine.schedule_after(0, tick);
  engine.schedule_at(fault_time, fault);
  const auto horizon = fault_time + sec(5);
  while (engine.now() < horizon && engine.step()) {
  }
  (void)delivered_count;
  Disruption d;
  d.exclusions = exclusion_count();
  return d;
}

// --- new architecture ------------------------------------------------------

Disruption run_new(Duration suspect_timeout, bool false_suspicion, std::uint64_t seed) {
  World::Config config;
  config.n = kProcs;
  config.seed = seed;
  config.stack.consensus_suspect_timeout = suspect_timeout;
  config.stack.monitoring.exclusion_timeout = sec(3);  // monitoring stays slow
  World world(config);
  OracleScope oracle(world, "e4/responsiveness");
  std::map<MsgId, TimePoint> sent_at;
  Duration worst = 0;
  TimePoint fault_time = 0;
  std::size_t delivered = 0;
  world.stack(1).on_adeliver([&](const MsgId& id, const Bytes&) {
    ++delivered;
    auto it = sent_at.find(id);
    if (it == sent_at.end()) return;
    if (it->second >= fault_time - msec(50)) {
      worst = std::max(worst, world.engine().now() - it->second);
    }
  });
  world.found_group_all();
  int healthy_exclusions = 0;
  world.stack(1).on_view([&](const View& v) {
    if (!false_suspicion) return;
    if (!v.contains(0)) ++healthy_exclusions;  // p0 is healthy in this mode!
  });
  auto d = measure(
      world.engine(),
      [&](int i) { sent_at[world.stack(1).abcast(payload_of(i))] = world.engine().now(); },
      [&] {
        fault_time = world.engine().now();
        if (false_suspicion) {
          world.stack(1).fd().inject_suspicion(world.stack(1).consensus_fd_class(), 0);
          world.stack(2).fd().inject_suspicion(world.stack(2).consensus_fd_class(), 0);
        } else {
          world.crash(0);
        }
      },
      [&] { return delivered; }, [&] { return healthy_exclusions; });
  fault_time = fault_time == 0 ? world.engine().now() : fault_time;
  d.worst_latency = worst;
  d.recovered = delivered > 0;
  return d;
}

// --- traditional architecture ----------------------------------------------

Disruption run_traditional(Duration suspect_timeout, bool false_suspicion,
                           std::uint64_t seed) {
  sim::Engine engine;
  sim::Network network(engine, kProcs, sim::LinkModel{}, seed);
  traditional::GmVsStack::Config cfg;
  cfg.suspect_timeout = suspect_timeout;
  cfg.rejoin_state_transfer_delay = msec(100);
  std::vector<std::unique_ptr<traditional::GmVsStack>> stacks;
  for (ProcessId p = 0; p < kProcs; ++p) {
    stacks.push_back(
        std::make_unique<traditional::GmVsStack>(engine, network, p, seed, cfg));
  }
  std::map<MsgId, TimePoint> sent_at;
  Duration worst = 0;
  TimePoint fault_time = 0;
  std::size_t delivered = 0;
  TimePoint excluded_at = -1;
  Duration outage = 0;
  stacks[0]->on_view([&](const View& v) {
    if (!v.contains(0) && excluded_at < 0) {
      excluded_at = engine.now();
    } else if (v.contains(0) && excluded_at >= 0) {
      outage += engine.now() - excluded_at;
      excluded_at = -1;
    }
  });
  stacks[1]->on_adeliver([&](const MsgId& id, const Bytes&) {
    ++delivered;
    auto it = sent_at.find(id);
    if (it == sent_at.end()) return;
    if (it->second >= fault_time - msec(50)) {
      worst = std::max(worst, engine.now() - it->second);
    }
  });
  std::vector<ProcessId> all;
  for (ProcessId p = 0; p < kProcs; ++p) all.push_back(p);
  for (auto& s : stacks) {
    s->init_view(all);
    s->start();
  }
  auto d = measure(
      engine,
      [&](int i) { sent_at[stacks[1]->abcast(payload_of(i))] = engine.now(); },
      [&] {
        fault_time = engine.now();
        if (false_suspicion) {
          // One healthy member briefly looks dead to p1 — e.g. a GC pause
          // or a lost heartbeat burst.
          stacks[1]->fd().inject_suspicion(stacks[1]->fd_class(), 0);
        } else {
          stacks[0]->crash();
        }
      },
      [&] { return delivered; },
      [&] { return static_cast<int>(stacks[0]->exclusions_suffered()); });
  d.worst_latency = worst;
  d.recovered = delivered > 0;
  if (excluded_at >= 0) outage += engine.now() - excluded_at;  // never rejoined
  d.victim_outage = outage;
  return d;
}

}  // namespace
}  // namespace gcs::bench

int main(int argc, char** argv) {
  using namespace gcs;
  using namespace gcs::bench;
  oracle_setup(argc, argv);
  banner("E4: responsiveness under failures (paper §4.3)",
         "steady abcast traffic; fault injected at t=300ms; 'stall' = worst\n"
         "send->deliver latency caused by the fault (virtual ms)");

  const Duration timeouts[] = {msec(25), msec(50), msec(100), msec(200), msec(400), msec(800)};

  std::printf("(a) the coordinator/sequencer CRASHES:\n\n");
  Table crash_table({"suspect timeout", "new arch stall (ms)", "traditional stall (ms)"});
  for (Duration t : timeouts) {
    const auto n = run_new(t, /*false_suspicion=*/false, 3);
    const auto tr = run_traditional(t, /*false_suspicion=*/false, 3);
    crash_table.add_row({fmt_ms(t), fmt_ms(n.worst_latency), fmt_ms(tr.worst_latency)});
  }
  crash_table.print();

  std::printf("\n(b) a healthy member is FALSELY suspected once:\n\n");
  Table false_table({"suspect timeout", "new: stall (ms)", "new: excluded?",
                     "trad: stall (ms)", "trad: excluded?", "trad: victim outage (ms)"});
  for (Duration t : timeouts) {
    const auto n = run_new(t, /*false_suspicion=*/true, 3);
    const auto tr = run_traditional(t, /*false_suspicion=*/true, 3);
    false_table.add_row({fmt_ms(t), fmt_ms(n.worst_latency),
                         n.exclusions ? "YES" : "no", fmt_ms(tr.worst_latency),
                         tr.exclusions ? "YES (kill+rejoin)" : "no",
                         fmt_ms(tr.victim_outage)});
  }
  false_table.print();

  std::printf(
      "\nReading: (a) both stalls shrink with the timeout — small timeouts are\n"
      "what you want for responsiveness. (b) is why the traditional stack\n"
      "cannot have them: ANY false suspicion kills a healthy member (view\n"
      "change + state transfer), while the new architecture shrugs it off\n"
      "with one extra consensus round and never excludes anyone (§3.1.3).\n");
  return oracle_verdict();
}
